package perf

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestMeasureFloodSteadyStateAllocFree: the serial flood benchmark —
// the workload BENCH.json records as engine/flood/serial — must report
// zero steady-state allocations per round after its warm-up.
func TestMeasureFloodSteadyStateAllocFree(t *testing.T) {
	b := floodBenchmark("engine/flood/serial/test", 256, 8, 1, "", 20*time.Millisecond)
	// Warm past the next MessagesByRound capacity boundary (2048): the
	// calibration ladder adds at most 255 rounds, so every timed run
	// stays within reserved capacity and must allocate nothing at all.
	b.Warmup = 1300
	b.MaxIters = 128
	res, err := b.Measure()
	if err != nil {
		t.Fatal(err)
	}
	if res.AllocsPerOp != 0 {
		t.Errorf("serial flood allocates in steady state: %.2f allocs/round, want 0", res.AllocsPerOp)
	}
	if res.Metrics["msgs_per_sec"] <= 0 || res.Metrics["rounds_per_sec"] <= 0 {
		t.Errorf("rate metrics missing: %+v", res.Metrics)
	}
}

// TestMeasureCalibrates: the harness doubles iterations until the
// timed run meets MinTime.
func TestMeasureCalibrates(t *testing.T) {
	calls := []int{}
	b := Benchmark{
		Name:    "calib",
		MinTime: 20 * time.Millisecond,
		Setup: func() (func(int) (Totals, error), error) {
			return func(n int) (Totals, error) {
				calls = append(calls, n)
				time.Sleep(time.Duration(n) * time.Millisecond)
				return Totals{}, nil
			}, nil
		},
	}
	res, err := b.Measure()
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 16 {
		t.Errorf("calibration stopped at %d iterations (calls %v), want >= 16", res.Iterations, calls)
	}
	if res.NsPerOp < float64(time.Millisecond.Nanoseconds()) {
		t.Errorf("ns/op %.0f below the 1ms floor of the workload", res.NsPerOp)
	}
}

// TestSuiteShape: the suite covers the engine micro-benchmarks
// (static, virtual-time — unit, jitter, sparse, and tick-skip lanes —
// churn, and churn-byz), the graph substrate workloads (build-hnd,
// build-ws, build-regular, bfs), and all twenty experiments; names are
// unique, and the filter selects by substring.
func TestSuiteShape(t *testing.T) {
	suite := Suite(SuiteConfig{Quick: true})
	if len(suite) != 23+20 {
		t.Fatalf("suite has %d benchmarks, want 43", len(suite))
	}
	seen := map[string]bool{}
	experiments := 0
	for _, b := range suite {
		if seen[b.Name] {
			t.Errorf("duplicate benchmark name %q", b.Name)
		}
		seen[b.Name] = true
		if strings.HasPrefix(b.Name, "expt/") {
			experiments++
			if b.MaxIters != 1 {
				t.Errorf("%s: quick experiment MaxIters = %d, want 1", b.Name, b.MaxIters)
			}
		}
	}
	if experiments != 20 {
		t.Errorf("suite has %d experiment benchmarks, want 20", experiments)
	}
	if !seen["engine/flood/serial/n=1024"] {
		t.Error("suite is missing engine/flood/serial/n=1024")
	}
	if !seen["engine/churn-flood/serial/n=1024"] {
		t.Error("suite is missing engine/churn-flood/serial/n=1024")
	}
	if !seen["graph/build-hnd/n=4096"] {
		t.Error("suite is missing graph/build-hnd/n=4096")
	}
	if !seen["graph/bfs/n=4096"] {
		t.Error("suite is missing graph/bfs/n=4096")
	}
	if !seen["engine/churn-byz/serial/n=1024"] {
		t.Error("suite is missing engine/churn-byz/serial/n=1024")
	}
	if !seen["engine/vt-flood/jitter/serial/n=1024"] {
		t.Error("suite is missing engine/vt-flood/jitter/serial/n=1024")
	}
	if !seen["engine/vt-flood/sparse/serial/n=1024"] {
		t.Error("suite is missing engine/vt-flood/sparse/serial/n=1024")
	}
	if !seen["engine/vt-skip/token/serial/n=1024"] {
		t.Error("suite is missing engine/vt-skip/token/serial/n=1024")
	}
	if !seen["engine/vt-skip/token/parallel=8/n=1024"] {
		t.Error("suite is missing engine/vt-skip/token/parallel=8/n=1024")
	}
	if !seen["engine/vt-flood/sparse/parallel=8/n=1024"] {
		t.Error("suite is missing engine/vt-flood/sparse/parallel=8/n=1024")
	}
	skipFiltered := Suite(SuiteConfig{Quick: true, Filter: "vt-skip"})
	if len(skipFiltered) != 5 {
		t.Errorf("filter vt-skip kept %d benchmarks, want 5", len(skipFiltered))
	}
	filtered := Suite(SuiteConfig{Quick: true, Filter: "engine/flood"})
	if len(filtered) != 3 {
		t.Errorf("filter engine/flood kept %d benchmarks, want 3", len(filtered))
	}
	churnFiltered := Suite(SuiteConfig{Quick: true, Filter: "churn-flood"})
	if len(churnFiltered) != 2 {
		t.Errorf("filter churn-flood kept %d benchmarks, want 2", len(churnFiltered))
	}
}

// TestExperimentBenchmarkRuns: one quick experiment regeneration goes
// end to end through the harness.
func TestExperimentBenchmarkRuns(t *testing.T) {
	res, err := experimentBenchmark("E8", true).Measure()
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 {
		t.Errorf("quick experiment ran %d iterations, want 1", res.Iterations)
	}
	if res.NsPerOp <= 0 {
		t.Errorf("ns/op %.0f, want > 0", res.NsPerOp)
	}
}

// TestRecordRoundTrip: BENCH.json writes, reads back, and validates.
func TestRecordRoundTrip(t *testing.T) {
	rec := NewRecord(true)
	if rec.Schema != Schema {
		t.Fatalf("schema %q", rec.Schema)
	}
	if rec.GOMAXPROCS < 1 || rec.GoVersion == "" || rec.StartedAt == "" {
		t.Fatalf("provenance incomplete: %+v", rec)
	}
	rec.Results = append(rec.Results,
		Result{Name: "b", NsPerOp: 2, Iterations: 1},
		Result{Name: "a", NsPerOp: 1, Iterations: 1, Metrics: map[string]float64{"msgs_per_sec": 5}},
	)
	rec.SortResults()
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := rec.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 2 || got.Results[0].Name != "a" {
		t.Errorf("round trip mangled results: %+v", got.Results)
	}
	if r := got.Find("a"); r == nil || r.Metrics["msgs_per_sec"] != 5 {
		t.Errorf("Find(a) = %+v", r)
	}
	if r := got.Find("missing"); r != nil {
		t.Errorf("Find(missing) = %+v, want nil", r)
	}
}

// TestReadFileRejectsWrongSchema guards the CI consumer against stale
// or foreign files.
func TestReadFileRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	rec := NewRecord(false)
	rec.Schema = "other/v0"
	if err := rec.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Error("wrong schema accepted")
	}
}
