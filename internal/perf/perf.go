// Package perf is the repository's standing performance record: a small
// self-contained benchmark harness (no testing.B dependency, so it runs
// inside the byzcount binary), the standard workload suite covering the
// engine hot path and the E1-E18 experiment regenerations, and a
// machine-readable result format (BENCH.json) that CI archives on every
// run. The trajectory this produces is what makes speedups — and
// regressions — visible instead of anecdotal.
//
// The harness mirrors go test -bench semantics: each benchmark is
// calibrated by doubling the iteration count until the timed run meets
// its minimum duration, ns/op, B/op, and allocs/op are derived from the
// final calibrated run, and workload-specific rates (msgs/sec,
// rounds/sec) ride along in Result.Metrics.
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"
	"time"
)

// Schema identifies the BENCH.json format; bump on incompatible change.
const Schema = "byzcount-bench/v1"

// Totals carries workload-specific unit counts out of a timed run, from
// which Measure derives rate metrics.
type Totals struct {
	// Msgs is the number of messages the workload delivered.
	Msgs int64
	// Rounds is the number of engine rounds the workload executed.
	Rounds int64
}

// Result is one benchmark's measurement.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Record is the full BENCH.json document: environment provenance plus
// one Result per benchmark.
type Record struct {
	Schema     string   `json:"schema"`
	GitSHA     string   `json:"git_sha"`
	GitDirty   bool     `json:"git_dirty"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	Quick      bool     `json:"quick"`
	StartedAt  string   `json:"started_at"`
	WallSecs   float64  `json:"wall_secs"`
	Results    []Result `json:"results"`
}

// Benchmark is one entry of the suite. Setup builds the workload once
// (outside the timed region) and returns the iteration function; fn(n)
// executes n iterations and reports unit totals for rate metrics.
type Benchmark struct {
	Name string
	// Warmup iterations run after Setup and before any timing, so that
	// measurements see the steady state (arenas and scratch buffers at
	// their high-water marks), not the warm-up transient.
	Warmup int
	// MinTime is the target duration of the timed run (default 1s).
	MinTime time.Duration
	// MaxIters caps the calibrated iteration count; 0 means uncapped.
	MaxIters int
	Setup    func() (func(n int) (Totals, error), error)
}

// Measure runs one benchmark to calibration and returns its Result.
func (b Benchmark) Measure() (Result, error) {
	fn, err := b.Setup()
	if err != nil {
		return Result{}, fmt.Errorf("perf: %s setup: %w", b.Name, err)
	}
	if b.Warmup > 0 {
		if _, err := fn(b.Warmup); err != nil {
			return Result{}, fmt.Errorf("perf: %s warmup: %w", b.Name, err)
		}
	}
	minTime := b.MinTime
	if minTime <= 0 {
		minTime = time.Second
	}
	n := 1
	for {
		if b.MaxIters > 0 && n > b.MaxIters {
			n = b.MaxIters
		}
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		totals, err := fn(n)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			return Result{}, fmt.Errorf("perf: %s: %w", b.Name, err)
		}
		if elapsed >= minTime || (b.MaxIters > 0 && n >= b.MaxIters) {
			res := Result{
				Name:        b.Name,
				Iterations:  n,
				NsPerOp:     float64(elapsed.Nanoseconds()) / float64(n),
				BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
				AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(n),
			}
			secs := elapsed.Seconds()
			if secs > 0 && (totals.Msgs > 0 || totals.Rounds > 0) {
				res.Metrics = map[string]float64{}
				if totals.Msgs > 0 {
					res.Metrics["msgs_per_sec"] = float64(totals.Msgs) / secs
				}
				if totals.Rounds > 0 {
					res.Metrics["rounds_per_sec"] = float64(totals.Rounds) / secs
				}
			}
			return res, nil
		}
		n *= 2
	}
}

// NewRecord returns a Record with the environment provenance filled in.
func NewRecord(quick bool) *Record {
	sha, dirty := GitState()
	return &Record{
		Schema:     Schema,
		GitSHA:     sha,
		GitDirty:   dirty,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Quick:      quick,
		StartedAt:  time.Now().UTC().Format(time.RFC3339),
	}
}

// GitState reports the checked-out commit and whether the tree is
// dirty. Outside a git checkout (or without git) it falls back to the
// GITHUB_SHA environment variable, then to "unknown". Exported because
// the sweep manifest records the same provenance.
func GitState() (string, bool) {
	sha := "unknown"
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		sha = strings.TrimSpace(string(out))
	} else if env := os.Getenv("GITHUB_SHA"); env != "" {
		sha = env
	}
	dirty := false
	if out, err := exec.Command("git", "status", "--porcelain").Output(); err == nil {
		dirty = len(strings.TrimSpace(string(out))) > 0
	}
	return sha, dirty
}

// WriteFile writes the record as indented JSON.
func (r *Record) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile parses a BENCH.json and validates its schema tag.
func ReadFile(path string) (*Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Record
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("perf: %s: schema %q, want %q", path, r.Schema, Schema)
	}
	return &r, nil
}

// Find returns the result with the given name, or nil.
func (r *Record) Find(name string) *Result {
	for i := range r.Results {
		if r.Results[i].Name == name {
			return &r.Results[i]
		}
	}
	return nil
}

// SortResults orders results by name for stable diffs between records.
func (r *Record) SortResults() {
	sort.Slice(r.Results, func(i, j int) bool { return r.Results[i].Name < r.Results[j].Name })
}
