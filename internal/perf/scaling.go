package perf

// The multi-core scaling lane: a dedicated workload group sweeping
// network size against engine worker count on the implicit ring
// lattice, so the parallel step-shard path has a measured speedup curve
// instead of a single pinned point. The lattice substrate is implicit
// (graph.RingLattice, d=8) — construction is a couple of field writes
// and adjacency is computed on demand — so the sweep reaches n=10^6
// without materializing a CSR, and setup time stays negligible next to
// the timed rounds. The scenario-level equivalence tests in
// internal/expt pin implicit runs byte-identical to materialized ones,
// which is what licenses these numbers as "the ring scenarios, at
// scale".
//
// CI runs this lane on a multi-core runner (GOMAXPROCS pinned > 1) and
// gates on workers=8 beating serial at n >= 10^5; the full curve lands
// in the uploaded BENCH.json artifact. On a single-core host the
// parallel rows measure the sharding overhead instead of a speedup —
// the record's gomaxprocs field says which reading applies.

import (
	"fmt"
	"time"

	"byzcount/internal/graph"
	"byzcount/internal/sim"
)

// scalingK is the lattice neighborhood radius: degree 2k = 8, matching
// the d=8 H(n,d) scenarios the rest of the suite measures.
const scalingK = 4

// ScalingConfig selects and scales the scaling lane.
type ScalingConfig struct {
	// Quick caps the sweep at n=10^5 and shrinks the timing budget.
	Quick bool
	// Filter, when non-empty, keeps only workloads whose name contains
	// it as a substring.
	Filter string
}

// ScalingSizes returns the network-size axis of the sweep.
func ScalingSizes(quick bool) []int {
	if quick {
		return []int{10_000, 100_000}
	}
	return []int{10_000, 100_000, 1_000_000}
}

// ScalingWorkers is the worker-count axis of the sweep.
var ScalingWorkers = []int{1, 2, 4, 8}

// ScalingName returns the workload name for one (n, workers) cell.
func ScalingName(n, workers int) string {
	return fmt.Sprintf("scaling/flood/n=%d/workers=%d", n, workers)
}

// ScalingSparseName returns the workload name for one (n, workers)
// cell of the sparse virtual-time sweep.
func ScalingSparseName(n, workers int) string {
	return fmt.Sprintf("scaling/vt-sparse/n=%d/workers=%d", n, workers)
}

// NewLatticeFloodEngine builds the flood workload over the implicit
// ring lattice C_n^k: a topology engine resolving neighborhoods on
// demand, one FloodProc per vertex, the given worker count. Exported so
// the testing.B benchmarks exercise the exact workload the scaling
// lane records.
func NewLatticeFloodEngine(n, k, workers int) (*sim.Engine, error) {
	lat, err := graph.NewRingLattice(n, k)
	if err != nil {
		return nil, err
	}
	eng := sim.New(lat, sim.WithSeed(5))
	eng.SetParallelism(workers)
	procs := make([]sim.Proc, n)
	for v := range procs {
		procs[v] = &FloodProc{}
	}
	if err := eng.Attach(procs); err != nil {
		return nil, err
	}
	return eng, nil
}

// scalingSourceSpacing places one pulse source every this many lattice
// vertices in the sparse virtual-time sweep: n=10^5 runs 100 concurrent
// pulse/relay neighborhoods, enough per-tick delivered work for the
// shards to amortize the two phase barriers, while the other ~93% of
// each tick's rows stay untouched — the occupancy overlay's case.
// Sources sit 1000 apart and a TTL-2 pulse reaches ~2k hops (~8 ring
// positions) to a side, so neighborhoods never overlap and traffic
// stays evenly spread across the contiguous worker shards.
const scalingSourceSpacing = 1000

// NewLatticeSparseEngine builds the multi-source sparse virtual-time
// workload over the implicit ring lattice C_n^k: a pulse source every
// scalingSourceSpacing vertices (Period 8, TTL 2), TickDriven relays
// everywhere else, uniform:1-4 jitter. Exported like
// NewLatticeFloodEngine so the testing.B benchmarks can exercise the
// exact workload the scaling lane records.
func NewLatticeSparseEngine(n, k, workers int) (*sim.Engine, error) {
	lat, err := graph.NewRingLattice(n, k)
	if err != nil {
		return nil, err
	}
	delay, err := sim.ParseDelayModel("uniform:1-4")
	if err != nil {
		return nil, err
	}
	eng := sim.New(lat, sim.WithSeed(5), sim.WithDelayModel(delay))
	eng.SetParallelism(workers)
	procs := make([]sim.Proc, n)
	for v := range procs {
		if v%scalingSourceSpacing == 0 {
			procs[v] = &PulseProc{Period: 8, TTL: 2}
		} else {
			procs[v] = &relayProcShared
		}
	}
	if err := eng.Attach(procs); err != nil {
		return nil, err
	}
	// No ReserveInbox/ReserveOutbox here: the arrival-bound reservation
	// would materialize in-degree x max-delay rows for all n vertices —
	// hundreds of MB at n=10^6 — against a workload that only ever
	// occupies a few percent of them. The cells measure throughput, not
	// the allocation gate; capacities reach high water during warmup.
	return eng, nil
}

// scalingWarmup shrinks warm-up with n: at n=10^6 a single round
// already floods 8M arcs, so a handful of rounds reaches the steady
// state the smaller cells need dozens for.
func scalingWarmup(n int) int {
	warmup := 32
	if n >= 100_000 {
		warmup = 8
	}
	if n >= 1_000_000 {
		warmup = 2
	}
	return warmup
}

// scalingBenchmark measures rounds/sec and msgs/sec for one cell of
// the sweep; one iteration is one round.
func scalingBenchmark(n, workers int, minTime time.Duration) Benchmark {
	return Benchmark{
		Name:    ScalingName(n, workers),
		Warmup:  scalingWarmup(n),
		MinTime: minTime,
		Setup: func() (func(int) (Totals, error), error) {
			eng, err := NewLatticeFloodEngine(n, scalingK, workers)
			if err != nil {
				return nil, err
			}
			return func(iters int) (Totals, error) {
				before := eng.Metrics().Messages
				if _, err := eng.Run(iters); err != nil {
					return Totals{}, err
				}
				return Totals{
					Msgs:   eng.Metrics().Messages - before,
					Rounds: int64(iters),
				}, nil
			}, nil
		},
	}
}

// scalingSparseBenchmark measures one cell of the sparse virtual-time
// sweep; one iteration is one virtual tick. The sparse cells keep the
// dense warm-up schedule: a pulse period is 8 ticks, so even the n=10^6
// cells see a full burst before timing starts.
func scalingSparseBenchmark(n, workers int, minTime time.Duration) Benchmark {
	return Benchmark{
		Name:    ScalingSparseName(n, workers),
		Warmup:  scalingWarmup(n),
		MinTime: minTime,
		Setup: func() (func(int) (Totals, error), error) {
			eng, err := NewLatticeSparseEngine(n, scalingK, workers)
			if err != nil {
				return nil, err
			}
			return func(iters int) (Totals, error) {
				before := eng.Metrics().Messages
				if _, err := eng.Run(iters); err != nil {
					return Totals{}, err
				}
				return Totals{
					Msgs:   eng.Metrics().Messages - before,
					Rounds: int64(iters),
				}, nil
			}, nil
		},
	}
}

// ScalingSuite returns the scaling sweep: every (n, workers) cell of
// ScalingSizes x ScalingWorkers, in size-major order so the per-size
// speedup curve reads off the output directly — first the synchronous
// flood group, then the sparse virtual-time group (the asynchronous
// regime's multi-core claim, gated in CI at n=10^5).
func ScalingSuite(cfg ScalingConfig) []Benchmark {
	micro := time.Second
	if cfg.Quick {
		micro = 300 * time.Millisecond
	}
	var benchmarks []Benchmark
	for _, n := range ScalingSizes(cfg.Quick) {
		for _, workers := range ScalingWorkers {
			benchmarks = append(benchmarks, scalingBenchmark(n, workers, micro))
		}
	}
	for _, n := range ScalingSizes(cfg.Quick) {
		for _, workers := range ScalingWorkers {
			benchmarks = append(benchmarks, scalingSparseBenchmark(n, workers, micro))
		}
	}
	if cfg.Filter == "" {
		return benchmarks
	}
	kept := benchmarks[:0]
	for _, b := range benchmarks {
		if containsFold(b.Name, cfg.Filter) {
			kept = append(kept, b)
		}
	}
	return kept
}
