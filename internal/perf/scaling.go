package perf

// The multi-core scaling lane: a dedicated workload group sweeping
// network size against engine worker count on the implicit ring
// lattice, so the parallel step-shard path has a measured speedup curve
// instead of a single pinned point. The lattice substrate is implicit
// (graph.RingLattice, d=8) — construction is a couple of field writes
// and adjacency is computed on demand — so the sweep reaches n=10^6
// without materializing a CSR, and setup time stays negligible next to
// the timed rounds. The scenario-level equivalence tests in
// internal/expt pin implicit runs byte-identical to materialized ones,
// which is what licenses these numbers as "the ring scenarios, at
// scale".
//
// CI runs this lane on a multi-core runner (GOMAXPROCS pinned > 1) and
// gates on workers=8 beating serial at n >= 10^5; the full curve lands
// in the uploaded BENCH.json artifact. On a single-core host the
// parallel rows measure the sharding overhead instead of a speedup —
// the record's gomaxprocs field says which reading applies.

import (
	"fmt"
	"time"

	"byzcount/internal/graph"
	"byzcount/internal/sim"
)

// scalingK is the lattice neighborhood radius: degree 2k = 8, matching
// the d=8 H(n,d) scenarios the rest of the suite measures.
const scalingK = 4

// ScalingConfig selects and scales the scaling lane.
type ScalingConfig struct {
	// Quick caps the sweep at n=10^5 and shrinks the timing budget.
	Quick bool
	// Filter, when non-empty, keeps only workloads whose name contains
	// it as a substring.
	Filter string
}

// ScalingSizes returns the network-size axis of the sweep.
func ScalingSizes(quick bool) []int {
	if quick {
		return []int{10_000, 100_000}
	}
	return []int{10_000, 100_000, 1_000_000}
}

// ScalingWorkers is the worker-count axis of the sweep.
var ScalingWorkers = []int{1, 2, 4, 8}

// ScalingName returns the workload name for one (n, workers) cell.
func ScalingName(n, workers int) string {
	return fmt.Sprintf("scaling/flood/n=%d/workers=%d", n, workers)
}

// NewLatticeFloodEngine builds the flood workload over the implicit
// ring lattice C_n^k: a topology engine resolving neighborhoods on
// demand, one FloodProc per vertex, the given worker count. Exported so
// the testing.B benchmarks exercise the exact workload the scaling
// lane records.
func NewLatticeFloodEngine(n, k, workers int) (*sim.Engine, error) {
	lat, err := graph.NewRingLattice(n, k)
	if err != nil {
		return nil, err
	}
	eng := sim.New(lat, sim.WithSeed(5))
	eng.SetParallelism(workers)
	procs := make([]sim.Proc, n)
	for v := range procs {
		procs[v] = &FloodProc{}
	}
	if err := eng.Attach(procs); err != nil {
		return nil, err
	}
	return eng, nil
}

// scalingBenchmark measures rounds/sec and msgs/sec for one cell of
// the sweep; one iteration is one round. Warmup shrinks with n: at
// n=10^6 a single round already floods 8M arcs, so a handful of rounds
// reaches the steady state the smaller cells need dozens for.
func scalingBenchmark(n, workers int, minTime time.Duration) Benchmark {
	warmup := 32
	if n >= 100_000 {
		warmup = 8
	}
	if n >= 1_000_000 {
		warmup = 2
	}
	return Benchmark{
		Name:    ScalingName(n, workers),
		Warmup:  warmup,
		MinTime: minTime,
		Setup: func() (func(int) (Totals, error), error) {
			eng, err := NewLatticeFloodEngine(n, scalingK, workers)
			if err != nil {
				return nil, err
			}
			return func(iters int) (Totals, error) {
				before := eng.Metrics().Messages
				if _, err := eng.Run(iters); err != nil {
					return Totals{}, err
				}
				return Totals{
					Msgs:   eng.Metrics().Messages - before,
					Rounds: int64(iters),
				}, nil
			}, nil
		},
	}
}

// ScalingSuite returns the scaling sweep: every (n, workers) cell of
// ScalingSizes x ScalingWorkers, in size-major order so the per-size
// speedup curve reads off the output directly.
func ScalingSuite(cfg ScalingConfig) []Benchmark {
	micro := time.Second
	if cfg.Quick {
		micro = 300 * time.Millisecond
	}
	var benchmarks []Benchmark
	for _, n := range ScalingSizes(cfg.Quick) {
		for _, workers := range ScalingWorkers {
			benchmarks = append(benchmarks, scalingBenchmark(n, workers, micro))
		}
	}
	if cfg.Filter == "" {
		return benchmarks
	}
	kept := benchmarks[:0]
	for _, b := range benchmarks {
		if containsFold(b.Name, cfg.Filter) {
			kept = append(kept, b)
		}
	}
	return kept
}
