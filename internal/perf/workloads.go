package perf

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"byzcount/internal/byzantine"
	"byzcount/internal/counting"
	"byzcount/internal/dynamic"
	"byzcount/internal/expt"
	"byzcount/internal/graph"
	"byzcount/internal/sim"
	"byzcount/internal/xrand"
)

// SuiteConfig selects and scales the standard suite.
type SuiteConfig struct {
	// Quick shrinks the iteration budget for CI smoke runs: engine
	// micro-benchmarks time for ~150ms and each experiment regenerates
	// its table exactly once.
	Quick bool
	// Parallel is the worker count of the parallel engine benchmark
	// (default 8, matching the bench_test.go pinned variant).
	Parallel int
	// Filter, when non-empty, keeps only benchmarks whose name contains
	// it as a substring.
	Filter string
}

// FloodProc is the minimal engine-throughput workload: every node
// broadcasts a small payload every round. Exported so the testing.B
// benchmarks and the alloc-regression guards exercise the exact
// workload the BENCH.json trajectory records.
type FloodProc struct{}

// FloodPayload is the flood workload's constant 64-bit payload.
type FloodPayload struct{}

// SizeBits reports the payload size.
func (FloodPayload) SizeBits() int { return 64 }

// Step broadcasts the payload on every incident edge.
func (*FloodProc) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	return env.Broadcast(FloodPayload{})
}

// Halted is always false.
func (*FloodProc) Halted() bool { return false }

// NewFloodEngine builds the flood workload over H(n,d): one engine,
// one FloodProc per vertex, the given worker count.
func NewFloodEngine(n, d, workers int) (*sim.Engine, error) {
	return NewVTFloodEngine(n, d, workers, "")
}

// NewVTFloodEngine is NewFloodEngine with a delay-model spec (see
// sim.ParseDelayModel): the event-queue throughput workload. The empty
// spec keeps the legacy synchronous path, "unit" exercises the
// virtual-time scheduler in its degenerate configuration, and a jitter
// spec like "uniform:1-4" measures the calendar-queue ring under real
// reordering — the configurations the engine/vt-flood/* trajectory
// entries and the TestSteadyStateAllocsVT* gates record.
func NewVTFloodEngine(n, d, workers int, delaySpec string) (*sim.Engine, error) {
	g, err := graph.HND(n, d, xrand.New(4))
	if err != nil {
		return nil, err
	}
	delay, err := sim.ParseDelayModel(delaySpec)
	if err != nil {
		return nil, err
	}
	eng := sim.New(g,
		sim.WithSeed(5),
		sim.WithParallelism(workers),
		sim.WithDelayModel(delay))
	procs := make([]sim.Proc, g.N())
	for v := range procs {
		procs[v] = &FloodProc{}
	}
	if err := eng.Attach(procs); err != nil {
		return nil, err
	}
	// One message per edge per round bounds simultaneous arrivals at a
	// (ring slot, vertex) row by in-degree x max delay; reserving it
	// keeps warm rounds strictly allocation-free (see
	// sim.Engine.ReserveInbox).
	if delay != nil {
		eng.ReserveInbox(d * delay.MaxDelay())
	}
	return eng, nil
}

// floodProcShared is the one FloodProc instance every vertex of the
// churn workloads shares: the proc is stateless, so sharing is safe in
// both engine modes, and the join factory installs it without
// allocating — which is what keeps churn rounds at zero allocations.
var floodProcShared FloodProc

// NewChurnFloodEngine builds the flood workload under continuous churn:
// the dynamically maintained H(n,d) topology with perRound leaves and
// perRound joins applied between every pair of rounds, forever, on the
// unified engine, with well-mixed event randomness (Churn.Mixed, so
// departures hit uniformly random nodes and the whole membership really
// turns over — not the legacy derivation E15 pins). This is the dynamic
// path's entry in the perf trajectory: steady-state churn rounds —
// membership turnover, cycle repair, epoch-driven neighborhood
// re-resolution included — must allocate nothing, exactly like the
// static flood.
func NewChurnFloodEngine(n, d, workers, perRound int) (*dynamic.Runner, error) {
	net, err := dynamic.NewNetwork(n, d, xrand.New(4))
	if err != nil {
		return nil, err
	}
	run, err := dynamic.NewRunner(net, dynamic.Churn{Leaves: perRound, Joins: perRound, Mixed: true}, 5,
		func(slot dynamic.Slot, id sim.NodeID) sim.Proc { return &floodProcShared })
	if err != nil {
		return nil, err
	}
	run.SetParallelism(workers)
	return run, nil
}

// SpamProc is the adversary side of the churn-byz workload: a
// Byzantine node that broadcasts a beacon-sized payload every round.
// Like the honest FloodProc it is stateless and shared across slots, and
// its payload is a zero-size struct, so adversary traffic adds zero
// allocations — which is what lets the churn-byz gate hold the combined
// churn + adversary path to the same 0 allocs/round budget as the
// benign flood.
type SpamProc struct{}

// SpamPayload mimics a 6-hop beacon's wire size (origin + path + tag).
type SpamPayload struct{}

// SizeBits reports the payload size.
func (SpamPayload) SizeBits() int { return 16 + 64 + 64*6 }

// Step broadcasts the spam payload on every incident edge.
func (*SpamProc) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	return env.Broadcast(SpamPayload{})
}

// Halted is always false: the adversary never stops.
func (*SpamProc) Halted() bool { return false }

// spamProcShared is the one SpamProc instance every Byzantine slot
// shares, mirroring floodProcShared.
var spamProcShared SpamProc

// churnByzFrac is the Byzantine fraction the churn-byz workload's
// roster maintains (1/16 of the membership).
const churnByzFrac = 1.0 / 16

// NewChurnByzEngine builds the combined churn + adversary workload: the
// dynamically maintained H(n,d) under perRound leaves and joins per
// round (Mixed randomness, forever), with a byzantine.Roster keeping
// 1/16 of the membership Byzantine as it turns over — initial members
// by RandomPlacement, joiners by the roster's drift-free Bernoulli
// draw. Honest slots flood, Byzantine slots spam beacon-sized payloads.
// Steady-state rounds — turnover, cycle repair, roster re-evaluation,
// epoch-driven re-resolution, adversary traffic included — allocate
// exactly 0 (the engine/churn-byz gate).
func NewChurnByzEngine(n, d, workers, perRound int) (*dynamic.Runner, error) {
	net, err := dynamic.NewNetwork(n, d, xrand.New(4))
	if err != nil {
		return nil, err
	}
	rng := xrand.New(6)
	mask, err := byzantine.RandomPlacement(net, int(churnByzFrac*float64(n)), rng.Split("place"))
	if err != nil {
		return nil, err
	}
	roster, err := byzantine.NewRoster(mask, net.NumAlive(), churnByzFrac, rng.Split("roster"))
	if err != nil {
		return nil, err
	}
	initial := true
	run, err := dynamic.NewRunner(net, dynamic.Churn{Leaves: perRound, Joins: perRound, Mixed: true}, 5,
		func(slot dynamic.Slot, id sim.NodeID) sim.Proc {
			isByz := roster.IsByz(slot)
			if !initial {
				isByz = roster.OnJoin(slot)
			}
			if isByz {
				return &spamProcShared
			}
			return &floodProcShared
		})
	if err != nil {
		return nil, err
	}
	initial = false
	run.SetLeaveHook(roster.OnLeave)
	run.SetParallelism(workers)
	return run, nil
}

// RelayPayload is the hop-limited payload of the sparse pulse/relay
// workload: Hops is the remaining time-to-live.
type RelayPayload struct{ Hops int }

// SizeBits reports the payload size (64-bit body + 16-bit TTL tag).
func (RelayPayload) SizeBits() int { return 80 }

// maxRelayTTL bounds the pulse workload's time-to-live; relayPayloads
// pre-boxes one payload per remaining-hop count so relaying never
// allocates an interface box in steady state.
const maxRelayTTL = 7

var relayPayloads = [maxRelayTTL + 1]sim.Payload{
	RelayPayload{Hops: 0}, RelayPayload{Hops: 1}, RelayPayload{Hops: 2},
	RelayPayload{Hops: 3}, RelayPayload{Hops: 4}, RelayPayload{Hops: 5},
	RelayPayload{Hops: 6}, RelayPayload{Hops: 7},
}

// PulseProc is the sparse workload's seeder: every Period rounds it
// broadcasts a TTL-limited pulse, and stays silent in between. It sends
// on its own schedule — round-driven, NOT TickDriven — so it is also
// the proc that keeps the engine honest about mixing marked and
// unmarked processes: ticks are only skipped when the pulse schedule
// and the ring are both idle... except they never are here, because a
// round-driven proc must be stepped every tick. The sparse win in this
// workload is delivery-side (occupancy rows), not tick-skipping.
type PulseProc struct {
	Period int
	TTL    int
}

// Step broadcasts a pulse on schedule rounds and is silent otherwise.
func (p *PulseProc) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	if round%p.Period != 0 {
		return nil
	}
	return env.Broadcast(relayPayloads[p.TTL])
}

// Halted is always false: the pulse schedule never ends.
func (*PulseProc) Halted() bool { return false }

// relayStep is the shared relay logic: rebroadcast the strongest
// delivered pulse with its TTL decremented, do nothing on an empty
// inbox. Both the marked RelayProc and the unmarked denseRelayProc
// dispatch here, so the sparse/full benchmark pair measures scheduler
// overhead, not workload drift.
func relayStep(env *sim.Env, in []sim.Incoming) []sim.Outgoing {
	if len(in) == 0 {
		return nil
	}
	best := 0
	for _, m := range in {
		if rp, ok := m.Payload.(RelayPayload); ok && rp.Hops > best {
			best = rp.Hops
		}
	}
	if best == 0 {
		return nil
	}
	return env.Broadcast(relayPayloads[best-1])
}

// RelayProc is the sparse workload's message-driven relay: it only ever
// reacts to delivered pulses, so it carries the TickDriven marker and
// lets the engine's occupancy-aware lane skip every row (and, when
// nothing round-driven is attached, every tick) that received nothing.
type RelayProc struct{}

// Step relays the strongest delivered pulse (see relayStep).
func (*RelayProc) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	return relayStep(env, in)
}

// Halted is always false.
func (*RelayProc) Halted() bool { return false }

// StepsOnMessagesOnly marks RelayProc as sim.TickDriven: an empty-inbox
// Step is a no-op by construction.
func (*RelayProc) StepsOnMessagesOnly() {}

// denseRelayProc is RelayProc without the TickDriven marker — the
// control arm of the sparse benchmarks. A separate type rather than an
// embedding so the marker method cannot leak in via promotion.
type denseRelayProc struct{}

func (*denseRelayProc) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	return relayStep(env, in)
}

func (*denseRelayProc) Halted() bool { return false }

// relayProcShared / denseRelayProcShared are the one instance each
// workload shares across vertices (the procs are stateless), mirroring
// floodProcShared.
var (
	relayProcShared      RelayProc
	denseRelayProcShared denseRelayProc
)

// NewVTSparseEngine builds the sparse pulse/relay workload over H(n,d):
// vertex 0 pulses a TTL-2 broadcast every 8 rounds, every other vertex
// relays, all under uniform:1-4 jitter, so each pulse wakes a few
// hundred of the n rows and the rest of the ring stays untouched. With
// dense=false the relays are TickDriven and the engine runs its
// occupancy-aware lane — serial or sharded, delivery cost tracks
// messages actually in flight, not n; with dense=true the relays are
// unmarked and every tick pays the full O(n)-row scan (O(n/workers)
// per worker), which is the control the engine/vt-flood/sparse/full
// entry records.
func NewVTSparseEngine(n, d, workers int, dense bool) (*sim.Engine, error) {
	g, err := graph.HND(n, d, xrand.New(4))
	if err != nil {
		return nil, err
	}
	delay, err := sim.ParseDelayModel("uniform:1-4")
	if err != nil {
		return nil, err
	}
	eng := sim.New(g,
		sim.WithSeed(5),
		sim.WithParallelism(workers),
		sim.WithDelayModel(delay))
	procs := make([]sim.Proc, g.N())
	for v := range procs {
		if dense {
			procs[v] = &denseRelayProcShared
		} else {
			procs[v] = &relayProcShared
		}
	}
	procs[0] = &PulseProc{Period: 8, TTL: 2}
	if err := eng.Attach(procs); err != nil {
		return nil, err
	}
	eng.ReserveInbox(d * delay.MaxDelay())
	// The send-side twin: under the sharded engine each pulse wave is
	// scattered across per-(worker, shard, slot) buckets whose loads are
	// stochastic, so their capacities would converge to high water only
	// asymptotically; 2 x the per-row arrival bound is a comfortable
	// per-bucket burst ceiling, and the reservation makes warm parallel
	// sparse rounds strictly allocation-free (the
	// TestSteadyStateAllocsVTSparseParallel gate).
	eng.ReserveOutbox(2 * d * delay.MaxDelay())
	return eng, nil
}

// TokenPayload is the token workload's constant 64-bit payload.
type TokenPayload struct{}

// SizeBits reports the payload size.
func (TokenPayload) SizeBits() int { return 64 }

// tokenPayloadShared is the pre-boxed token every forward reuses.
var tokenPayloadShared sim.Payload = TokenPayload{}

// TokenInjectProc seeds the token workload: it sends one token to
// vertex 1 in its first Step and then halts. It is round-driven (it
// sends on an empty inbox), so it must NOT carry the TickDriven marker
// — the engine steps it until it halts, and only then does tick
// fast-forwarding engage.
type TokenInjectProc struct{ fired bool }

// Step sends the single token on the first call.
func (p *TokenInjectProc) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	if p.fired {
		return nil
	}
	p.fired = true
	out := append(env.Scratch(), sim.Outgoing{To: 1, Payload: tokenPayloadShared})
	return out
}

// Halted reports whether the token has been injected.
func (p *TokenInjectProc) Halted() bool { return p.fired }

// TokenRelayProc circulates the token around the C_n^2 ring lattice:
// on receipt it forwards to (v+1) mod n, detouring to v+2 when the
// successor is the halted injector at vertex 0 (both are lattice
// neighbors). Exactly one token is ever in flight, so under jittered
// delay most virtual ticks deliver nothing — the workload the
// engine/vt-skip trajectory entries measure fast-forwarding on.
type TokenRelayProc struct{ N int }

// Step forwards any delivered token one position around the ring.
func (p *TokenRelayProc) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	if len(in) == 0 {
		return nil
	}
	next := (env.Vertex + 1) % p.N
	if next == 0 {
		next = 1
	}
	out := env.Scratch()
	for range in {
		out = append(out, sim.Outgoing{To: next, Payload: tokenPayloadShared})
	}
	return out
}

// Halted is always false: the token circulates forever.
func (*TokenRelayProc) Halted() bool { return false }

// StepsOnMessagesOnly marks TokenRelayProc as sim.TickDriven.
func (*TokenRelayProc) StepsOnMessagesOnly() {}

// denseTokenRelayProc is TokenRelayProc without the marker — the full-
// scan control arm of the vt-skip benchmarks (again a separate type, not
// an embedding, so the marker cannot be promoted in).
type denseTokenRelayProc struct{ N int }

func (p *denseTokenRelayProc) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	if len(in) == 0 {
		return nil
	}
	next := (env.Vertex + 1) % p.N
	if next == 0 {
		next = 1
	}
	out := env.Scratch()
	for range in {
		out = append(out, sim.Outgoing{To: next, Payload: tokenPayloadShared})
	}
	return out
}

func (*denseTokenRelayProc) Halted() bool { return false }

// NewVTSkipEngine builds the token-passing workload on the ring lattice
// C_n^2 (WattsStrogatz with beta=0): one token injected at round 0,
// relayed around the ring forever under uniform:1-4 jitter. After the
// injector halts every live proc is message-driven, so with dense=false
// the engine — serial or sharded, both schedulers fast-forward —
// skips through the ~2.5 empty ticks between consecutive hops;
// dense=true swaps in unmarked relays and the engine must execute
// every tick — the before/after pair behind the >= 2x vt-skip
// acceptance gate.
func NewVTSkipEngine(n, workers int, dense bool) (*sim.Engine, error) {
	g, err := graph.WattsStrogatz(n, 2, 0, xrand.New(4))
	if err != nil {
		return nil, err
	}
	delay, err := sim.ParseDelayModel("uniform:1-4")
	if err != nil {
		return nil, err
	}
	eng := sim.New(g,
		sim.WithSeed(5),
		sim.WithParallelism(workers),
		sim.WithDelayModel(delay))
	procs := make([]sim.Proc, g.N())
	if dense {
		relay := &denseTokenRelayProc{N: n}
		for v := range procs {
			procs[v] = relay
		}
	} else {
		relay := &TokenRelayProc{N: n}
		for v := range procs {
			procs[v] = relay
		}
	}
	procs[0] = &TokenInjectProc{}
	if err := eng.Attach(procs); err != nil {
		return nil, err
	}
	eng.ReserveInbox(4 * delay.MaxDelay())
	return eng, nil
}

// sparseBenchmark measures the pulse/relay workload; one iteration is
// one virtual tick.
func sparseBenchmark(name string, n, d, workers int, dense bool, minTime time.Duration) Benchmark {
	return Benchmark{
		Name:    name,
		Warmup:  64,
		MinTime: minTime,
		Setup: func() (func(int) (Totals, error), error) {
			eng, err := NewVTSparseEngine(n, d, workers, dense)
			if err != nil {
				return nil, err
			}
			return func(iters int) (Totals, error) {
				before := eng.Metrics().Messages
				if _, err := eng.Run(iters); err != nil {
					return Totals{}, err
				}
				return Totals{
					Msgs:   eng.Metrics().Messages - before,
					Rounds: int64(iters),
				}, nil
			}, nil
		},
	}
}

// skipBenchmark measures the token workload; one iteration is one
// virtual tick (skipped ticks included — fast-forwarded ticks still
// advance the clock and the metrics, they just cost O(1)).
func skipBenchmark(name string, n, workers int, dense, skip bool, minTime time.Duration) Benchmark {
	return Benchmark{
		Name:    name,
		Warmup:  64,
		MinTime: minTime,
		Setup: func() (func(int) (Totals, error), error) {
			eng, err := NewVTSkipEngine(n, workers, dense)
			if err != nil {
				return nil, err
			}
			eng.SetTickSkip(skip)
			return func(iters int) (Totals, error) {
				before := eng.Metrics().Messages
				if _, err := eng.Run(iters); err != nil {
					return Totals{}, err
				}
				return Totals{
					Msgs:   eng.Metrics().Messages - before,
					Rounds: int64(iters),
				}, nil
			}, nil
		},
	}
}

// churnByzBenchmark measures rounds/sec and msgs/sec on the churn-byz
// workload; one iteration is one round with its between-rounds churn
// and roster re-evaluation.
func churnByzBenchmark(name string, n, d, workers, perRound int, minTime time.Duration) Benchmark {
	return Benchmark{
		Name:    name,
		Warmup:  64,
		MinTime: minTime,
		Setup: func() (func(int) (Totals, error), error) {
			run, err := NewChurnByzEngine(n, d, workers, perRound)
			if err != nil {
				return nil, err
			}
			return func(iters int) (Totals, error) {
				before := run.Metrics().Messages
				if _, err := run.Run(iters); err != nil {
					return Totals{}, err
				}
				return Totals{
					Msgs:   run.Metrics().Messages - before,
					Rounds: int64(iters),
				}, nil
			}, nil
		},
	}
}

// churnFloodBenchmark measures rounds/sec and msgs/sec on the churn
// flood workload; one iteration is one round (with its between-rounds
// churn). Warmup brings every slot's recycled buffers to their
// high-water marks so allocs_per_op records the steady state.
func churnFloodBenchmark(name string, n, d, workers, perRound int, minTime time.Duration) Benchmark {
	return Benchmark{
		Name:    name,
		Warmup:  64,
		MinTime: minTime,
		Setup: func() (func(int) (Totals, error), error) {
			run, err := NewChurnFloodEngine(n, d, workers, perRound)
			if err != nil {
				return nil, err
			}
			return func(iters int) (Totals, error) {
				before := run.Metrics().Messages
				if _, err := run.Run(iters); err != nil {
					return Totals{}, err
				}
				return Totals{
					Msgs:   run.Metrics().Messages - before,
					Rounds: int64(iters),
				}, nil
			}, nil
		},
	}
}

// floodBenchmark measures engine rounds/sec and msgs/sec on the flood
// workload; one iteration is one round. Warmup puts every arena and
// scratch buffer at its high-water mark, so allocs_per_op records the
// steady state (0 for the serial engine; the parallel engine amortizes
// its constant per-Run pool startup across the calibrated rounds). A
// non-empty delaySpec runs the same flood on the virtual-time
// scheduler — the event-queue throughput lane.
func floodBenchmark(name string, n, d, workers int, delaySpec string, minTime time.Duration) Benchmark {
	return Benchmark{
		Name:    name,
		Warmup:  64,
		MinTime: minTime,
		Setup: func() (func(int) (Totals, error), error) {
			eng, err := NewVTFloodEngine(n, d, workers, delaySpec)
			if err != nil {
				return nil, err
			}
			return func(iters int) (Totals, error) {
				before := eng.Metrics().Messages
				if _, err := eng.Run(iters); err != nil {
					return Totals{}, err
				}
				return Totals{
					Msgs:   eng.Metrics().Messages - before,
					Rounds: int64(iters),
				}, nil
			}, nil
		},
	}
}

// graphBuildBenchmark measures a full substrate build through finalize:
// generator draws, CSR finalize, and the sorted-dedup view — everything
// engine construction consumes. One iteration is one complete build from
// a re-seeded stream, so successive iterations are identical work. With
// the flat-CSR graph core a build performs a constant number of
// allocations (gated by TestBuildAllocsConstant in internal/graph).
func graphBuildBenchmark(name string, seed uint64, build func(rng *xrand.Rand) (*graph.Graph, error), minTime time.Duration) Benchmark {
	return Benchmark{
		Name:    name,
		MinTime: minTime,
		Setup: func() (func(int) (Totals, error), error) {
			rng := xrand.New(seed)
			return func(iters int) (Totals, error) {
				for i := 0; i < iters; i++ {
					rng.Reseed(seed)
					g, err := build(rng)
					if err != nil {
						return Totals{}, err
					}
					g.Adj(0)       // finalize the CSR
					g.SortedAdj(0) // and the sorted-dedup view
				}
				return Totals{}, nil
			}, nil
		},
	}
}

// graphBFSBenchmark measures structural traversal over a prebuilt
// substrate: one iteration is one full BFS into a reused distance
// buffer (the placement/diameter machinery's access pattern), from a
// rotating source.
func graphBFSBenchmark(name string, n, d int, minTime time.Duration) Benchmark {
	return Benchmark{
		Name:    name,
		MinTime: minTime,
		Warmup:  4,
		Setup: func() (func(int) (Totals, error), error) {
			g, err := graph.HND(n, d, xrand.New(4))
			if err != nil {
				return nil, err
			}
			dist := make([]int, g.N())
			src := 0
			return func(iters int) (Totals, error) {
				for i := 0; i < iters; i++ {
					g.BFSInto(dist, src, g.N())
					src++
					if src == g.N() {
						src = 0
					}
				}
				return Totals{}, nil
			}, nil
		},
	}
}

// congestBenchmark measures a full benign CONGEST counting run
// (engine construction included); one iteration is one complete run.
func congestBenchmark(minTime time.Duration) Benchmark {
	return Benchmark{
		Name:    "protocol/congest-benign/n=256",
		MinTime: minTime,
		Setup: func() (func(int) (Totals, error), error) {
			g, err := graph.HND(256, 8, xrand.New(6))
			if err != nil {
				return nil, err
			}
			params := counting.DefaultCongestParams(8)
			maxRounds := params.Schedule.RoundsThroughPhase(params.MaxPhase + 1)
			return func(iters int) (Totals, error) {
				var tot Totals
				for i := 0; i < iters; i++ {
					eng := sim.New(g, sim.WithSeed(uint64(i)))
					procs := make([]sim.Proc, g.N())
					for v := range procs {
						procs[v] = counting.NewCongestProc(params)
					}
					if err := eng.Attach(procs); err != nil {
						return Totals{}, err
					}
					rounds, err := eng.Run(maxRounds)
					if err != nil {
						return Totals{}, err
					}
					tot.Msgs += eng.Metrics().Messages
					tot.Rounds += int64(rounds)
				}
				return tot, nil
			}, nil
		},
	}
}

// experimentBenchmark regenerates one experiment table per iteration,
// with the pinned seed 42 so successive iterations measure the same
// workload and ns/op is comparable across runs and commits.
func experimentBenchmark(id string, quick bool) Benchmark {
	b := Benchmark{
		Name:    "expt/" + id,
		MinTime: 2 * time.Second,
		Setup: func() (func(int) (Totals, error), error) {
			return func(iters int) (Totals, error) {
				for i := 0; i < iters; i++ {
					cfg := expt.Config{Seed: 42, Trials: 1, Quick: true, Parallel: 1}
					tbl, err := expt.Run(id, cfg)
					if err != nil {
						return Totals{}, err
					}
					if len(tbl.Rows) == 0 {
						return Totals{}, fmt.Errorf("experiment %s produced an empty table", id)
					}
				}
				return Totals{}, nil
			}, nil
		},
	}
	if quick {
		b.MaxIters = 1
	}
	return b
}

// Suite returns the standard benchmark suite: the engine flood
// micro-benchmarks (serial, pinned-8-worker, and GOMAXPROCS-worker
// parallel), the vt-flood micro-benchmarks (the virtual-time event
// queue: degenerate unit latency, uniform:1-4 jitter, and the sparse
// pulse/relay workload — serial and sharded-parallel — with its dense
// control), the vt-skip token micro-benchmarks (tick fast-forwarding
// on, off, and structurally unavailable, serial and sharded-parallel),
// the churn flood micro-benchmarks (serial and pinned-worker
// — the dynamic-membership path), the churn-byz micro-benchmarks
// (membership turnover with a maintained Byzantine fraction spamming —
// the combined path E16-E18 stand on), a full benign CONGEST protocol
// run, and the E1-E18 quick experiment regenerations.
func Suite(cfg SuiteConfig) []Benchmark {
	workers := cfg.Parallel
	if workers <= 0 {
		workers = 8
	}
	micro := time.Second
	if cfg.Quick {
		micro = 150 * time.Millisecond
	}
	benchmarks := []Benchmark{
		floodBenchmark("engine/flood/serial/n=1024", 1024, 8, 1, "", micro),
		floodBenchmark(fmt.Sprintf("engine/flood/parallel=%d/n=1024", workers), 1024, 8, workers, "", micro),
		floodBenchmark(fmt.Sprintf("engine/flood/gomaxprocs=%d/n=1024", runtime.GOMAXPROCS(0)),
			1024, 8, runtime.GOMAXPROCS(0), "", micro),
		floodBenchmark("engine/vt-flood/unit/serial/n=1024", 1024, 8, 1, "unit", micro),
		floodBenchmark("engine/vt-flood/jitter/serial/n=1024", 1024, 8, 1, "uniform:1-4", micro),
		floodBenchmark(fmt.Sprintf("engine/vt-flood/jitter/parallel=%d/n=1024", workers),
			1024, 8, workers, "uniform:1-4", micro),
		sparseBenchmark("engine/vt-flood/sparse/serial/n=1024", 1024, 8, 1, false, micro),
		sparseBenchmark(fmt.Sprintf("engine/vt-flood/sparse/parallel=%d/n=1024", workers),
			1024, 8, workers, false, micro),
		sparseBenchmark("engine/vt-flood/sparse/full/serial/n=1024", 1024, 8, 1, true, micro),
		skipBenchmark("engine/vt-skip/token/serial/n=1024", 1024, 1, false, true, micro),
		skipBenchmark(fmt.Sprintf("engine/vt-skip/token/parallel=%d/n=1024", workers),
			1024, workers, false, true, micro),
		skipBenchmark("engine/vt-skip/token/noskip/serial/n=1024", 1024, 1, false, false, micro),
		skipBenchmark(fmt.Sprintf("engine/vt-skip/token/noskip/parallel=%d/n=1024", workers),
			1024, workers, false, false, micro),
		skipBenchmark("engine/vt-skip/token/full/serial/n=1024", 1024, 1, true, true, micro),
		churnFloodBenchmark("engine/churn-flood/serial/n=1024", 1024, 8, 1, 2, micro),
		churnFloodBenchmark(fmt.Sprintf("engine/churn-flood/parallel=%d/n=1024", workers),
			1024, 8, workers, 2, micro),
		churnByzBenchmark("engine/churn-byz/serial/n=1024", 1024, 8, 1, 2, micro),
		churnByzBenchmark(fmt.Sprintf("engine/churn-byz/parallel=%d/n=1024", workers),
			1024, 8, workers, 2, micro),
		graphBuildBenchmark("graph/build-hnd/n=4096", 4, func(rng *xrand.Rand) (*graph.Graph, error) {
			return graph.HND(4096, 8, rng)
		}, micro),
		graphBuildBenchmark("graph/build-ws/n=4096", 4, func(rng *xrand.Rand) (*graph.Graph, error) {
			return graph.WattsStrogatz(4096, 4, 0.2, rng)
		}, micro),
		graphBuildBenchmark("graph/build-regular/n=1024", 4, func(rng *xrand.Rand) (*graph.Graph, error) {
			return graph.SimpleRegular(1024, 8, 100, rng)
		}, micro),
		graphBFSBenchmark("graph/bfs/n=4096", 4096, 8, micro),
		congestBenchmark(micro),
	}
	for _, id := range expt.IDs() {
		benchmarks = append(benchmarks, experimentBenchmark(id, cfg.Quick))
	}
	if cfg.Filter == "" {
		return benchmarks
	}
	kept := benchmarks[:0]
	for _, b := range benchmarks {
		if containsFold(b.Name, cfg.Filter) {
			kept = append(kept, b)
		}
	}
	return kept
}

// containsFold is a case-insensitive substring test.
func containsFold(s, sub string) bool {
	return strings.Contains(strings.ToLower(s), strings.ToLower(sub))
}
