package perf

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"byzcount/internal/byzantine"
	"byzcount/internal/counting"
	"byzcount/internal/dynamic"
	"byzcount/internal/expt"
	"byzcount/internal/graph"
	"byzcount/internal/sim"
	"byzcount/internal/xrand"
)

// SuiteConfig selects and scales the standard suite.
type SuiteConfig struct {
	// Quick shrinks the iteration budget for CI smoke runs: engine
	// micro-benchmarks time for ~150ms and each experiment regenerates
	// its table exactly once.
	Quick bool
	// Parallel is the worker count of the parallel engine benchmark
	// (default 8, matching the bench_test.go pinned variant).
	Parallel int
	// Filter, when non-empty, keeps only benchmarks whose name contains
	// it as a substring.
	Filter string
}

// FloodProc is the minimal engine-throughput workload: every node
// broadcasts a small payload every round. Exported so the testing.B
// benchmarks and the alloc-regression guards exercise the exact
// workload the BENCH.json trajectory records.
type FloodProc struct{}

// FloodPayload is the flood workload's constant 64-bit payload.
type FloodPayload struct{}

// SizeBits reports the payload size.
func (FloodPayload) SizeBits() int { return 64 }

// Step broadcasts the payload on every incident edge.
func (*FloodProc) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	return env.Broadcast(FloodPayload{})
}

// Halted is always false.
func (*FloodProc) Halted() bool { return false }

// NewFloodEngine builds the flood workload over H(n,d): one engine,
// one FloodProc per vertex, the given worker count.
func NewFloodEngine(n, d, workers int) (*sim.Engine, error) {
	return NewVTFloodEngine(n, d, workers, "")
}

// NewVTFloodEngine is NewFloodEngine with a delay-model spec (see
// sim.ParseDelayModel): the event-queue throughput workload. The empty
// spec keeps the legacy synchronous path, "unit" exercises the
// virtual-time scheduler in its degenerate configuration, and a jitter
// spec like "uniform:1-4" measures the calendar-queue ring under real
// reordering — the configurations the engine/vt-flood/* trajectory
// entries and the TestSteadyStateAllocsVT* gates record.
func NewVTFloodEngine(n, d, workers int, delaySpec string) (*sim.Engine, error) {
	g, err := graph.HND(n, d, xrand.New(4))
	if err != nil {
		return nil, err
	}
	delay, err := sim.ParseDelayModel(delaySpec)
	if err != nil {
		return nil, err
	}
	eng := sim.New(g,
		sim.WithSeed(5),
		sim.WithParallelism(workers),
		sim.WithDelayModel(delay))
	procs := make([]sim.Proc, g.N())
	for v := range procs {
		procs[v] = &FloodProc{}
	}
	if err := eng.Attach(procs); err != nil {
		return nil, err
	}
	// One message per edge per round bounds simultaneous arrivals at a
	// (ring slot, vertex) row by in-degree x max delay; reserving it
	// keeps warm rounds strictly allocation-free (see
	// sim.Engine.ReserveInbox).
	if delay != nil {
		eng.ReserveInbox(d * delay.MaxDelay())
	}
	return eng, nil
}

// floodProcShared is the one FloodProc instance every vertex of the
// churn workloads shares: the proc is stateless, so sharing is safe in
// both engine modes, and the join factory installs it without
// allocating — which is what keeps churn rounds at zero allocations.
var floodProcShared FloodProc

// NewChurnFloodEngine builds the flood workload under continuous churn:
// the dynamically maintained H(n,d) topology with perRound leaves and
// perRound joins applied between every pair of rounds, forever, on the
// unified engine, with well-mixed event randomness (Churn.Mixed, so
// departures hit uniformly random nodes and the whole membership really
// turns over — not the legacy derivation E15 pins). This is the dynamic
// path's entry in the perf trajectory: steady-state churn rounds —
// membership turnover, cycle repair, epoch-driven neighborhood
// re-resolution included — must allocate nothing, exactly like the
// static flood.
func NewChurnFloodEngine(n, d, workers, perRound int) (*dynamic.Runner, error) {
	net, err := dynamic.NewNetwork(n, d, xrand.New(4))
	if err != nil {
		return nil, err
	}
	run, err := dynamic.NewRunner(net, dynamic.Churn{Leaves: perRound, Joins: perRound, Mixed: true}, 5,
		func(slot dynamic.Slot, id sim.NodeID) sim.Proc { return &floodProcShared })
	if err != nil {
		return nil, err
	}
	run.SetParallelism(workers)
	return run, nil
}

// SpamProc is the adversary side of the churn-byz workload: a
// Byzantine node that broadcasts a beacon-sized payload every round.
// Like the honest FloodProc it is stateless and shared across slots, and
// its payload is a zero-size struct, so adversary traffic adds zero
// allocations — which is what lets the churn-byz gate hold the combined
// churn + adversary path to the same 0 allocs/round budget as the
// benign flood.
type SpamProc struct{}

// SpamPayload mimics a 6-hop beacon's wire size (origin + path + tag).
type SpamPayload struct{}

// SizeBits reports the payload size.
func (SpamPayload) SizeBits() int { return 16 + 64 + 64*6 }

// Step broadcasts the spam payload on every incident edge.
func (*SpamProc) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	return env.Broadcast(SpamPayload{})
}

// Halted is always false: the adversary never stops.
func (*SpamProc) Halted() bool { return false }

// spamProcShared is the one SpamProc instance every Byzantine slot
// shares, mirroring floodProcShared.
var spamProcShared SpamProc

// churnByzFrac is the Byzantine fraction the churn-byz workload's
// roster maintains (1/16 of the membership).
const churnByzFrac = 1.0 / 16

// NewChurnByzEngine builds the combined churn + adversary workload: the
// dynamically maintained H(n,d) under perRound leaves and joins per
// round (Mixed randomness, forever), with a byzantine.Roster keeping
// 1/16 of the membership Byzantine as it turns over — initial members
// by RandomPlacement, joiners by the roster's drift-free Bernoulli
// draw. Honest slots flood, Byzantine slots spam beacon-sized payloads.
// Steady-state rounds — turnover, cycle repair, roster re-evaluation,
// epoch-driven re-resolution, adversary traffic included — allocate
// exactly 0 (the engine/churn-byz gate).
func NewChurnByzEngine(n, d, workers, perRound int) (*dynamic.Runner, error) {
	net, err := dynamic.NewNetwork(n, d, xrand.New(4))
	if err != nil {
		return nil, err
	}
	rng := xrand.New(6)
	mask, err := byzantine.RandomPlacement(net, int(churnByzFrac*float64(n)), rng.Split("place"))
	if err != nil {
		return nil, err
	}
	roster, err := byzantine.NewRoster(mask, net.NumAlive(), churnByzFrac, rng.Split("roster"))
	if err != nil {
		return nil, err
	}
	initial := true
	run, err := dynamic.NewRunner(net, dynamic.Churn{Leaves: perRound, Joins: perRound, Mixed: true}, 5,
		func(slot dynamic.Slot, id sim.NodeID) sim.Proc {
			isByz := roster.IsByz(slot)
			if !initial {
				isByz = roster.OnJoin(slot)
			}
			if isByz {
				return &spamProcShared
			}
			return &floodProcShared
		})
	if err != nil {
		return nil, err
	}
	initial = false
	run.SetLeaveHook(roster.OnLeave)
	run.SetParallelism(workers)
	return run, nil
}

// churnByzBenchmark measures rounds/sec and msgs/sec on the churn-byz
// workload; one iteration is one round with its between-rounds churn
// and roster re-evaluation.
func churnByzBenchmark(name string, n, d, workers, perRound int, minTime time.Duration) Benchmark {
	return Benchmark{
		Name:    name,
		Warmup:  64,
		MinTime: minTime,
		Setup: func() (func(int) (Totals, error), error) {
			run, err := NewChurnByzEngine(n, d, workers, perRound)
			if err != nil {
				return nil, err
			}
			return func(iters int) (Totals, error) {
				before := run.Metrics().Messages
				if _, err := run.Run(iters); err != nil {
					return Totals{}, err
				}
				return Totals{
					Msgs:   run.Metrics().Messages - before,
					Rounds: int64(iters),
				}, nil
			}, nil
		},
	}
}

// churnFloodBenchmark measures rounds/sec and msgs/sec on the churn
// flood workload; one iteration is one round (with its between-rounds
// churn). Warmup brings every slot's recycled buffers to their
// high-water marks so allocs_per_op records the steady state.
func churnFloodBenchmark(name string, n, d, workers, perRound int, minTime time.Duration) Benchmark {
	return Benchmark{
		Name:    name,
		Warmup:  64,
		MinTime: minTime,
		Setup: func() (func(int) (Totals, error), error) {
			run, err := NewChurnFloodEngine(n, d, workers, perRound)
			if err != nil {
				return nil, err
			}
			return func(iters int) (Totals, error) {
				before := run.Metrics().Messages
				if _, err := run.Run(iters); err != nil {
					return Totals{}, err
				}
				return Totals{
					Msgs:   run.Metrics().Messages - before,
					Rounds: int64(iters),
				}, nil
			}, nil
		},
	}
}

// floodBenchmark measures engine rounds/sec and msgs/sec on the flood
// workload; one iteration is one round. Warmup puts every arena and
// scratch buffer at its high-water mark, so allocs_per_op records the
// steady state (0 for the serial engine; the parallel engine amortizes
// its constant per-Run pool startup across the calibrated rounds). A
// non-empty delaySpec runs the same flood on the virtual-time
// scheduler — the event-queue throughput lane.
func floodBenchmark(name string, n, d, workers int, delaySpec string, minTime time.Duration) Benchmark {
	return Benchmark{
		Name:    name,
		Warmup:  64,
		MinTime: minTime,
		Setup: func() (func(int) (Totals, error), error) {
			eng, err := NewVTFloodEngine(n, d, workers, delaySpec)
			if err != nil {
				return nil, err
			}
			return func(iters int) (Totals, error) {
				before := eng.Metrics().Messages
				if _, err := eng.Run(iters); err != nil {
					return Totals{}, err
				}
				return Totals{
					Msgs:   eng.Metrics().Messages - before,
					Rounds: int64(iters),
				}, nil
			}, nil
		},
	}
}

// graphBuildBenchmark measures a full substrate build through finalize:
// generator draws, CSR finalize, and the sorted-dedup view — everything
// engine construction consumes. One iteration is one complete build from
// a re-seeded stream, so successive iterations are identical work. With
// the flat-CSR graph core a build performs a constant number of
// allocations (gated by TestBuildAllocsConstant in internal/graph).
func graphBuildBenchmark(name string, seed uint64, build func(rng *xrand.Rand) (*graph.Graph, error), minTime time.Duration) Benchmark {
	return Benchmark{
		Name:    name,
		MinTime: minTime,
		Setup: func() (func(int) (Totals, error), error) {
			rng := xrand.New(seed)
			return func(iters int) (Totals, error) {
				for i := 0; i < iters; i++ {
					rng.Reseed(seed)
					g, err := build(rng)
					if err != nil {
						return Totals{}, err
					}
					g.Adj(0)       // finalize the CSR
					g.SortedAdj(0) // and the sorted-dedup view
				}
				return Totals{}, nil
			}, nil
		},
	}
}

// graphBFSBenchmark measures structural traversal over a prebuilt
// substrate: one iteration is one full BFS into a reused distance
// buffer (the placement/diameter machinery's access pattern), from a
// rotating source.
func graphBFSBenchmark(name string, n, d int, minTime time.Duration) Benchmark {
	return Benchmark{
		Name:    name,
		MinTime: minTime,
		Warmup:  4,
		Setup: func() (func(int) (Totals, error), error) {
			g, err := graph.HND(n, d, xrand.New(4))
			if err != nil {
				return nil, err
			}
			dist := make([]int, g.N())
			src := 0
			return func(iters int) (Totals, error) {
				for i := 0; i < iters; i++ {
					g.BFSInto(dist, src, g.N())
					src++
					if src == g.N() {
						src = 0
					}
				}
				return Totals{}, nil
			}, nil
		},
	}
}

// congestBenchmark measures a full benign CONGEST counting run
// (engine construction included); one iteration is one complete run.
func congestBenchmark(minTime time.Duration) Benchmark {
	return Benchmark{
		Name:    "protocol/congest-benign/n=256",
		MinTime: minTime,
		Setup: func() (func(int) (Totals, error), error) {
			g, err := graph.HND(256, 8, xrand.New(6))
			if err != nil {
				return nil, err
			}
			params := counting.DefaultCongestParams(8)
			maxRounds := params.Schedule.RoundsThroughPhase(params.MaxPhase + 1)
			return func(iters int) (Totals, error) {
				var tot Totals
				for i := 0; i < iters; i++ {
					eng := sim.New(g, sim.WithSeed(uint64(i)))
					procs := make([]sim.Proc, g.N())
					for v := range procs {
						procs[v] = counting.NewCongestProc(params)
					}
					if err := eng.Attach(procs); err != nil {
						return Totals{}, err
					}
					rounds, err := eng.Run(maxRounds)
					if err != nil {
						return Totals{}, err
					}
					tot.Msgs += eng.Metrics().Messages
					tot.Rounds += int64(rounds)
				}
				return tot, nil
			}, nil
		},
	}
}

// experimentBenchmark regenerates one experiment table per iteration,
// with the pinned seed 42 so successive iterations measure the same
// workload and ns/op is comparable across runs and commits.
func experimentBenchmark(id string, quick bool) Benchmark {
	b := Benchmark{
		Name:    "expt/" + id,
		MinTime: 2 * time.Second,
		Setup: func() (func(int) (Totals, error), error) {
			return func(iters int) (Totals, error) {
				for i := 0; i < iters; i++ {
					cfg := expt.Config{Seed: 42, Trials: 1, Quick: true, Parallel: 1}
					tbl, err := expt.Run(id, cfg)
					if err != nil {
						return Totals{}, err
					}
					if len(tbl.Rows) == 0 {
						return Totals{}, fmt.Errorf("experiment %s produced an empty table", id)
					}
				}
				return Totals{}, nil
			}, nil
		},
	}
	if quick {
		b.MaxIters = 1
	}
	return b
}

// Suite returns the standard benchmark suite: the engine flood
// micro-benchmarks (serial, pinned-8-worker, and GOMAXPROCS-worker
// parallel), the vt-flood micro-benchmarks (the virtual-time event
// queue: degenerate unit latency and uniform:1-4 jitter, serial and
// parallel), the churn flood micro-benchmarks (serial and pinned-worker
// — the dynamic-membership path), the churn-byz micro-benchmarks
// (membership turnover with a maintained Byzantine fraction spamming —
// the combined path E16-E18 stand on), a full benign CONGEST protocol
// run, and the E1-E18 quick experiment regenerations.
func Suite(cfg SuiteConfig) []Benchmark {
	workers := cfg.Parallel
	if workers <= 0 {
		workers = 8
	}
	micro := time.Second
	if cfg.Quick {
		micro = 150 * time.Millisecond
	}
	benchmarks := []Benchmark{
		floodBenchmark("engine/flood/serial/n=1024", 1024, 8, 1, "", micro),
		floodBenchmark(fmt.Sprintf("engine/flood/parallel=%d/n=1024", workers), 1024, 8, workers, "", micro),
		floodBenchmark(fmt.Sprintf("engine/flood/gomaxprocs=%d/n=1024", runtime.GOMAXPROCS(0)),
			1024, 8, runtime.GOMAXPROCS(0), "", micro),
		floodBenchmark("engine/vt-flood/unit/serial/n=1024", 1024, 8, 1, "unit", micro),
		floodBenchmark("engine/vt-flood/jitter/serial/n=1024", 1024, 8, 1, "uniform:1-4", micro),
		floodBenchmark(fmt.Sprintf("engine/vt-flood/jitter/parallel=%d/n=1024", workers),
			1024, 8, workers, "uniform:1-4", micro),
		churnFloodBenchmark("engine/churn-flood/serial/n=1024", 1024, 8, 1, 2, micro),
		churnFloodBenchmark(fmt.Sprintf("engine/churn-flood/parallel=%d/n=1024", workers),
			1024, 8, workers, 2, micro),
		churnByzBenchmark("engine/churn-byz/serial/n=1024", 1024, 8, 1, 2, micro),
		churnByzBenchmark(fmt.Sprintf("engine/churn-byz/parallel=%d/n=1024", workers),
			1024, 8, workers, 2, micro),
		graphBuildBenchmark("graph/build-hnd/n=4096", 4, func(rng *xrand.Rand) (*graph.Graph, error) {
			return graph.HND(4096, 8, rng)
		}, micro),
		graphBuildBenchmark("graph/build-ws/n=4096", 4, func(rng *xrand.Rand) (*graph.Graph, error) {
			return graph.WattsStrogatz(4096, 4, 0.2, rng)
		}, micro),
		graphBuildBenchmark("graph/build-regular/n=1024", 4, func(rng *xrand.Rand) (*graph.Graph, error) {
			return graph.SimpleRegular(1024, 8, 100, rng)
		}, micro),
		graphBFSBenchmark("graph/bfs/n=4096", 4096, 8, micro),
		congestBenchmark(micro),
	}
	for _, id := range expt.IDs() {
		benchmarks = append(benchmarks, experimentBenchmark(id, cfg.Quick))
	}
	if cfg.Filter == "" {
		return benchmarks
	}
	kept := benchmarks[:0]
	for _, b := range benchmarks {
		if containsFold(b.Name, cfg.Filter) {
			kept = append(kept, b)
		}
	}
	return kept
}

// containsFold is a case-insensitive substring test.
func containsFold(s, sub string) bool {
	return strings.Contains(strings.ToLower(s), strings.ToLower(sub))
}
