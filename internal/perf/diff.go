package perf

// Record diffing: the comparison half of the BENCH.json trajectory.
// CI (and anyone bisecting a slowdown) runs `byzcount bench -diff
// old.json new.json` to compare two records workload-by-workload; the
// command exits non-zero when any common workload slowed past the
// tolerance, which turns the committed snapshot into an enforced
// floor instead of a decoration.

import (
	"fmt"
	"sort"
	"strings"
)

// DiffEntry compares one workload present in both records.
type DiffEntry struct {
	Name         string
	OldNs, NewNs float64
	// Ratio is NewNs/OldNs: 1.0 unchanged, 2.0 twice as slow.
	Ratio float64
}

// DiffReport is the full comparison of two records.
type DiffReport struct {
	// Common holds one entry per workload in both records, by name.
	Common []DiffEntry
	// Added and Removed are workload names present in only one record.
	Added, Removed []string
	// Tolerance is the relative slowdown allowed before an entry
	// counts as a regression (0.5 = up to 1.5x the old ns/op).
	Tolerance float64
	// Overrides maps workload names to per-workload tolerances that
	// replace Tolerance where they match. A key ending in '*' is a
	// prefix pattern ("engine/vt-*"); exact keys win over patterns, and
	// among patterns the longest prefix wins. This is how CI holds
	// noisy sub-microsecond workloads to a loose gate while pinning the
	// stable hot paths tight.
	Overrides map[string]float64
}

// ToleranceFor resolves the tolerance applied to one workload name.
func (r *DiffReport) ToleranceFor(name string) float64 {
	if tol, ok := r.Overrides[name]; ok {
		return tol
	}
	best, bestLen := r.Tolerance, -1
	for pat, tol := range r.Overrides {
		if !strings.HasSuffix(pat, "*") {
			continue
		}
		prefix := pat[:len(pat)-1]
		if strings.HasPrefix(name, prefix) && len(prefix) > bestLen {
			best, bestLen = tol, len(prefix)
		}
	}
	return best
}

// DiffRecords compares two records. Workloads are matched by name;
// tolerance is the allowed relative slowdown on ns/op.
func DiffRecords(old, cur *Record, tolerance float64) *DiffReport {
	return DiffRecordsOverrides(old, cur, tolerance, nil)
}

// DiffRecordsOverrides is DiffRecords with per-workload tolerance
// overrides (see DiffReport.Overrides for matching rules).
func DiffRecordsOverrides(old, cur *Record, tolerance float64, overrides map[string]float64) *DiffReport {
	rep := &DiffReport{Tolerance: tolerance, Overrides: overrides}
	oldByName := make(map[string]*Result, len(old.Results))
	for i := range old.Results {
		oldByName[old.Results[i].Name] = &old.Results[i]
	}
	seen := make(map[string]bool, len(cur.Results))
	for i := range cur.Results {
		res := &cur.Results[i]
		seen[res.Name] = true
		prev, ok := oldByName[res.Name]
		if !ok {
			rep.Added = append(rep.Added, res.Name)
			continue
		}
		e := DiffEntry{Name: res.Name, OldNs: prev.NsPerOp, NewNs: res.NsPerOp}
		if prev.NsPerOp > 0 {
			e.Ratio = res.NsPerOp / prev.NsPerOp
		}
		rep.Common = append(rep.Common, e)
	}
	for name := range oldByName {
		if !seen[name] {
			rep.Removed = append(rep.Removed, name)
		}
	}
	sort.Slice(rep.Common, func(i, j int) bool { return rep.Common[i].Name < rep.Common[j].Name })
	sort.Strings(rep.Added)
	sort.Strings(rep.Removed)
	return rep
}

// Regressed reports whether the entry slowed past the tolerance.
func (e DiffEntry) Regressed(tolerance float64) bool {
	return e.Ratio > 1+tolerance
}

// Regressions returns the common entries that slowed past their
// (possibly overridden) tolerance, worst first.
func (r *DiffReport) Regressions() []DiffEntry {
	var out []DiffEntry
	for _, e := range r.Common {
		if e.Regressed(r.ToleranceFor(e.Name)) {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ratio > out[j].Ratio })
	return out
}

// Render formats the report as the bench -diff table: one line per
// common workload (regressions flagged), then the added/removed names.
func (r *DiffReport) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-44s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "ratio")
	for _, e := range r.Common {
		flag := ""
		tol := r.ToleranceFor(e.Name)
		if e.Regressed(tol) {
			flag = "  REGRESSED"
		}
		if tol != r.Tolerance {
			flag += fmt.Sprintf("  (tol %.2g)", tol)
		}
		fmt.Fprintf(&sb, "%-44s %14.0f %14.0f %7.2fx%s\n", e.Name, e.OldNs, e.NewNs, e.Ratio, flag)
	}
	for _, name := range r.Added {
		fmt.Fprintf(&sb, "%-44s %s\n", name, "(added)")
	}
	for _, name := range r.Removed {
		fmt.Fprintf(&sb, "%-44s %s\n", name, "(removed)")
	}
	return sb.String()
}

// Diff reads two BENCH.json files and compares them; the convenience
// wrapper the CLI calls.
func Diff(oldPath, newPath string, tolerance float64) (*DiffReport, error) {
	return DiffOverrides(oldPath, newPath, tolerance, nil)
}

// DiffOverrides is Diff with per-workload tolerance overrides.
func DiffOverrides(oldPath, newPath string, tolerance float64, overrides map[string]float64) (*DiffReport, error) {
	old, err := ReadFile(oldPath)
	if err != nil {
		return nil, err
	}
	cur, err := ReadFile(newPath)
	if err != nil {
		return nil, err
	}
	return DiffRecordsOverrides(old, cur, tolerance, overrides), nil
}

// ParseOverride parses one "name=tol" or "prefix*=tol" spec (the CLI's
// repeatable -tolerance-override flag) into the overrides map.
func ParseOverride(overrides map[string]float64, spec string) error {
	name, val, ok := strings.Cut(spec, "=")
	if !ok || name == "" {
		return fmt.Errorf("perf: bad tolerance override %q (want name=tol or prefix*=tol)", spec)
	}
	var tol float64
	if _, err := fmt.Sscanf(val, "%g", &tol); err != nil || tol < 0 {
		return fmt.Errorf("perf: bad tolerance in override %q", spec)
	}
	overrides[name] = tol
	return nil
}
