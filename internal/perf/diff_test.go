package perf

import (
	"strings"
	"testing"
)

func mkRecord(pairs ...any) *Record {
	r := &Record{Schema: Schema}
	for i := 0; i < len(pairs); i += 2 {
		r.Results = append(r.Results, Result{
			Name:    pairs[i].(string),
			NsPerOp: pairs[i+1].(float64),
		})
	}
	return r
}

func TestDiffRecords(t *testing.T) {
	old := mkRecord("a", 100.0, "b", 200.0, "gone", 50.0)
	cur := mkRecord("a", 110.0, "b", 900.0, "new", 75.0)
	rep := DiffRecords(old, cur, 0.5)
	if len(rep.Common) != 2 {
		t.Fatalf("common = %v, want a and b", rep.Common)
	}
	if rep.Common[0].Name != "a" || rep.Common[1].Name != "b" {
		t.Fatalf("common order = %v, want name-sorted", rep.Common)
	}
	if got := rep.Common[0].Ratio; got != 1.1 {
		t.Errorf("a ratio = %v, want 1.1", got)
	}
	if rep.Common[0].Regressed(0.5) {
		t.Errorf("a (1.10x) flagged as regression at tolerance 0.5")
	}
	if !rep.Common[1].Regressed(0.5) {
		t.Errorf("b (4.50x) not flagged as regression at tolerance 0.5")
	}
	regs := rep.Regressions()
	if len(regs) != 1 || regs[0].Name != "b" {
		t.Errorf("Regressions() = %v, want just b", regs)
	}
	if len(rep.Added) != 1 || rep.Added[0] != "new" {
		t.Errorf("Added = %v, want [new]", rep.Added)
	}
	if len(rep.Removed) != 1 || rep.Removed[0] != "gone" {
		t.Errorf("Removed = %v, want [gone]", rep.Removed)
	}
	out := rep.Render()
	if !strings.Contains(out, "REGRESSED") {
		t.Errorf("Render() lacks the REGRESSED flag:\n%s", out)
	}
	if !strings.Contains(out, "(added)") || !strings.Contains(out, "(removed)") {
		t.Errorf("Render() lacks added/removed lines:\n%s", out)
	}
}

func TestDiffRegressionsSortedWorstFirst(t *testing.T) {
	old := mkRecord("a", 100.0, "b", 100.0)
	cur := mkRecord("a", 300.0, "b", 1000.0)
	regs := DiffRecords(old, cur, 0.1).Regressions()
	if len(regs) != 2 || regs[0].Name != "b" || regs[1].Name != "a" {
		t.Fatalf("Regressions() = %v, want b (10x) before a (3x)", regs)
	}
}

func TestDiffZeroOldNs(t *testing.T) {
	// A zero old ns/op (corrupt or hand-written record) must not flag
	// or divide by zero.
	rep := DiffRecords(mkRecord("a", 0.0), mkRecord("a", 100.0), 0.5)
	if rep.Common[0].Ratio != 0 || rep.Common[0].Regressed(0.5) {
		t.Errorf("zero-old entry = %+v, want ratio 0, not regressed", rep.Common[0])
	}
}

func TestDiffFiles(t *testing.T) {
	dir := t.TempDir()
	old := mkRecord("a", 100.0)
	cur := mkRecord("a", 120.0)
	oldPath := dir + "/old.json"
	newPath := dir + "/new.json"
	if err := old.WriteFile(oldPath); err != nil {
		t.Fatal(err)
	}
	if err := cur.WriteFile(newPath); err != nil {
		t.Fatal(err)
	}
	rep, err := Diff(oldPath, newPath, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Common) != 1 || rep.Common[0].Ratio != 1.2 {
		t.Fatalf("Diff() = %+v, want one 1.2x entry", rep.Common)
	}
	if _, err := Diff(oldPath, dir+"/missing.json", 0.5); err == nil {
		t.Error("Diff() with a missing file succeeded")
	}
}

func TestDiffOverrides(t *testing.T) {
	old := mkRecord("engine/vt-skip", 100.0, "engine/flood", 100.0, "expt/E1", 100.0)
	cur := mkRecord("engine/vt-skip", 250.0, "engine/flood", 250.0, "expt/E1", 250.0)
	rep := DiffRecordsOverrides(old, cur, 2.0, map[string]float64{
		"engine/vt-skip": 5.0, // exact: loosened, 2.5x passes
		"expt/*":         0.5, // prefix: tightened, 2.5x fails
	})
	regs := rep.Regressions()
	if len(regs) != 1 || regs[0].Name != "expt/E1" {
		t.Fatalf("Regressions() = %v, want just expt/E1 (tightened by prefix override)", regs)
	}
	if tol := rep.ToleranceFor("engine/flood"); tol != 2.0 {
		t.Errorf("unmatched workload tolerance = %v, want the global 2.0", tol)
	}
	out := rep.Render()
	if !strings.Contains(out, "(tol 5)") {
		t.Errorf("Render() does not show the overridden tolerance:\n%s", out)
	}
}

func TestDiffOverridePrecedence(t *testing.T) {
	rep := &DiffReport{Tolerance: 1.0, Overrides: map[string]float64{
		"engine/*":    2.0,
		"engine/vt-*": 3.0,
		"engine/vt-a": 4.0,
	}}
	for name, want := range map[string]float64{
		"engine/vt-a": 4.0, // exact beats every pattern
		"engine/vt-b": 3.0, // longest prefix wins
		"engine/x":    2.0,
		"graph/x":     1.0, // no match: global
	} {
		if got := rep.ToleranceFor(name); got != want {
			t.Errorf("ToleranceFor(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestParseOverride(t *testing.T) {
	ov := map[string]float64{}
	if err := ParseOverride(ov, "engine/vt-*=3.5"); err != nil || ov["engine/vt-*"] != 3.5 {
		t.Errorf("ParseOverride: %v %v", ov, err)
	}
	for _, bad := range []string{"noequals", "=2", "a=notnum", "a=-1"} {
		if err := ParseOverride(ov, bad); err == nil {
			t.Errorf("ParseOverride(%q) accepted", bad)
		}
	}
}

func TestScalingSuiteShape(t *testing.T) {
	quick := ScalingSuite(ScalingConfig{Quick: true})
	if want := 2 * len(ScalingSizes(true)) * len(ScalingWorkers); len(quick) != want {
		t.Fatalf("quick suite has %d cells, want %d", len(quick), want)
	}
	for _, n := range ScalingSizes(true) {
		for _, w := range ScalingWorkers {
			for _, name := range []string{ScalingName(n, w), ScalingSparseName(n, w)} {
				found := false
				for _, b := range quick {
					if b.Name == name {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("quick suite missing %s", name)
				}
			}
		}
	}
	full := ScalingSuite(ScalingConfig{})
	if len(full) <= len(quick) {
		t.Errorf("full suite (%d cells) not larger than quick (%d)", len(full), len(quick))
	}
	filtered := ScalingSuite(ScalingConfig{Quick: true, Filter: "workers=8"})
	if want := 2 * len(ScalingSizes(true)); len(filtered) != want {
		t.Errorf("workers=8 filter kept %d cells, want %d", len(filtered), want)
	}
	sparseFiltered := ScalingSuite(ScalingConfig{Quick: true, Filter: "vt-sparse"})
	if want := len(ScalingSizes(true)) * len(ScalingWorkers); len(sparseFiltered) != want {
		t.Errorf("vt-sparse filter kept %d cells, want %d", len(sparseFiltered), want)
	}
}

func TestScalingCellMeasures(t *testing.T) {
	// One tiny cell end-to-end through Measure: the implicit-lattice
	// flood workload must report both rate metrics.
	b := scalingBenchmark(1000, 2, 0)
	b.MinTime = 1
	b.Warmup = 1
	res, err := b.Measure()
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["msgs_per_sec"] <= 0 || res.Metrics["rounds_per_sec"] <= 0 {
		t.Errorf("scaling cell metrics = %v, want positive rates", res.Metrics)
	}
}
