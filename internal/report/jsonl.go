package report

import (
	"encoding/json"
	"io"
	"math"
)

// JSONL writes machine-readable report lines: one compact JSON object
// per line, the grep/jq-friendly dual of the human tables. The sweep
// summary emitter streams through it so a summary's memory cost is one
// row, never the whole grid.
type JSONL struct {
	enc *json.Encoder
}

// NewJSONL returns an emitter writing to w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Emit writes one value as a single JSON line.
func (j *JSONL) Emit(v any) error { return j.enc.Encode(v) }

// SafeFloat returns f when JSON can carry it, and the strings "NaN",
// "+Inf", "-Inf" otherwise — encoding/json rejects non-finite float64s
// outright, and a summary row with no decided trials legitimately has
// a NaN quantile.
func SafeFloat(f float64) any {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "+Inf"
	case math.IsInf(f, -1):
		return "-Inf"
	}
	return f
}
