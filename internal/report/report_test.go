package report

import (
	"math"
	"strings"
	"testing"
)

func TestCSVBasic(t *testing.T) {
	got := CSV([]string{"a", "b"}, [][]string{{"1", "2"}, {"x,y", `q"t`}})
	want := "a,b\n1,2\n\"x,y\",\"q\"\"t\"\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestCSVNewlineQuoting(t *testing.T) {
	got := CSV([]string{"h"}, [][]string{{"line1\nline2"}})
	if !strings.Contains(got, "\"line1\nline2\"") {
		t.Errorf("newline cell not quoted: %q", got)
	}
}

func TestBars(t *testing.T) {
	out := Bars([]string{"aa", "b"}, []float64{10, 5}, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %v", lines)
	}
	if !strings.Contains(lines[0], strings.Repeat("#", 20)) {
		t.Errorf("max bar not full width: %q", lines[0])
	}
	if !strings.Contains(lines[1], strings.Repeat("#", 10)) {
		t.Errorf("half bar wrong: %q", lines[1])
	}
	if strings.Count(lines[1], "#") != 10 {
		t.Errorf("half bar length: %q", lines[1])
	}
}

func TestBarsEdgeCases(t *testing.T) {
	out := Bars([]string{"neg", "nan", "zero"}, []float64{-1, math.NaN(), 0}, 5)
	if strings.Contains(out, "#") {
		t.Errorf("degenerate values produced bars: %q", out)
	}
}

func TestBarsPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Bars did not panic")
		}
	}()
	Bars([]string{"a"}, []float64{1, 2}, 10)
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Error("empty sparkline")
	}
	s := []rune(Sparkline([]float64{0, 1, 2, 4}))
	if len(s) != 4 {
		t.Fatalf("length %d", len(s))
	}
	if s[3] != '█' {
		t.Errorf("max should be full block, got %q", s[3])
	}
	if s[0] != '▁' {
		t.Errorf("zero should be lowest block, got %q", s[0])
	}
	// Monotone input -> monotone blocks.
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			t.Errorf("sparkline not monotone: %q", string(s))
		}
	}
}

func TestSparklineAllZero(t *testing.T) {
	s := Sparkline([]float64{0, 0, 0})
	if s != "▁▁▁" {
		t.Errorf("all-zero sparkline = %q", s)
	}
}

func TestDownsample(t *testing.T) {
	in := []float64{1, 1, 3, 3, 5, 5}
	out := Downsample(in, 3)
	if len(out) != 3 || out[0] != 1 || out[1] != 3 || out[2] != 5 {
		t.Errorf("Downsample = %v", out)
	}
	// No-op cases.
	if got := Downsample(in, 10); len(got) != 6 {
		t.Errorf("short input downsampled: %v", got)
	}
	if got := Downsample(in, 0); len(got) != 6 {
		t.Errorf("zero buckets: %v", got)
	}
	// Copies, not aliases.
	same := Downsample(in, 10)
	same[0] = 99
	if in[0] == 99 {
		t.Error("Downsample aliased its input")
	}
}

func TestInts(t *testing.T) {
	got := Ints([]int64{1, 2})
	if len(got) != 2 || got[1] != 2 {
		t.Errorf("Ints = %v", got)
	}
}
