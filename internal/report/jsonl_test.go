package report

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestJSONLEmit(t *testing.T) {
	var sb strings.Builder
	j := NewJSONL(&sb)
	if err := j.Emit(map[string]any{"a": 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Emit(map[string]any{"b": SafeFloat(math.NaN())}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("emitted %d lines, want 2: %q", len(lines), sb.String())
	}
	for i, line := range lines {
		var v map[string]any
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Errorf("line %d not valid JSON: %v", i, err)
		}
	}
	if lines[1] != `{"b":"NaN"}` {
		t.Errorf("NaN line = %q", lines[1])
	}
}

func TestSafeFloat(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want any
	}{
		{1.5, 1.5},
		{0, 0.0},
		{math.NaN(), "NaN"},
		{math.Inf(1), "+Inf"},
		{math.Inf(-1), "-Inf"},
	} {
		if got := SafeFloat(tc.in); got != tc.want {
			t.Errorf("SafeFloat(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
