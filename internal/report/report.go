// Package report renders experiment output in figure-like forms: CSV for
// external tooling, horizontal ASCII bar charts for claim-vs-measured
// comparisons, and sparklines for per-round time series (e.g. the phase
// structure of Algorithm 2's message traffic). The paper has no numbered
// figures, so these are the "figures" of the reproduction.
package report

import (
	"fmt"
	"math"
	"strings"
)

// CSV renders a header and rows as RFC-4180-ish CSV (quoting cells that
// contain commas, quotes, or newlines).
func CSV(header []string, rows [][]string) string {
	var b strings.Builder
	writeRecord(&b, header)
	for _, row := range rows {
		writeRecord(&b, row)
	}
	return b.String()
}

func writeRecord(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(escapeCSV(c))
	}
	b.WriteByte('\n')
}

func escapeCSV(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// Bars renders a horizontal bar chart: one row per label, bar length
// proportional to value, annotated with the numeric value. Negative and
// NaN values render as empty bars. width is the maximum bar width in
// characters (minimum 10).
func Bars(labels []string, values []float64, width int) string {
	if len(labels) != len(values) {
		panic("report: labels and values length mismatch")
	}
	if width < 10 {
		width = 10
	}
	maxLabel := 0
	maxVal := 0.0
	for i, l := range labels {
		if len(l) > maxLabel {
			maxLabel = len(l)
		}
		if v := values[i]; !math.IsNaN(v) && v > maxVal {
			maxVal = v
		}
	}
	var b strings.Builder
	for i, l := range labels {
		v := values[i]
		n := 0
		if maxVal > 0 && !math.IsNaN(v) && v > 0 {
			n = int(math.Round(v / maxVal * float64(width)))
		}
		fmt.Fprintf(&b, "%-*s |%-*s| %.4g\n", maxLabel, l, width, strings.Repeat("#", n), v)
	}
	return b.String()
}

// sparkLevels are the eight block characters used by Sparkline.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a series as a single line of block characters scaled
// to the series maximum. Empty input yields an empty string.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	maxVal := 0.0
	for _, v := range values {
		if !math.IsNaN(v) && v > maxVal {
			maxVal = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		if math.IsNaN(v) || v <= 0 || maxVal == 0 {
			b.WriteRune(sparkLevels[0])
			continue
		}
		idx := int(v / maxVal * float64(len(sparkLevels)-1))
		if idx >= len(sparkLevels) {
			idx = len(sparkLevels) - 1
		}
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}

// Downsample reduces a series to at most buckets points by averaging
// consecutive windows; used to fit long round series into one terminal
// line.
func Downsample(values []float64, buckets int) []float64 {
	if buckets < 1 || len(values) <= buckets {
		return append([]float64(nil), values...)
	}
	out := make([]float64, buckets)
	window := float64(len(values)) / float64(buckets)
	for i := 0; i < buckets; i++ {
		lo := int(float64(i) * window)
		hi := int(float64(i+1) * window)
		if hi > len(values) {
			hi = len(values)
		}
		if lo >= hi {
			lo = hi - 1
		}
		sum := 0.0
		for _, v := range values[lo:hi] {
			sum += v
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}

// Ints converts an int64 series for charting.
func Ints(xs []int64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
