package expt

// Implicit-substrate scenario equivalence: a cell run on an implicit
// family must be byte-identical to the same cell on its materialized
// counterpart — outcomes, honest mask, Byzantine placement, rounds, and
// the full engine metrics — at every worker count. This is the
// registry-level counterpart of the sim-layer transcript pin, and it is
// what licenses the scaling lane to report implicit-lattice numbers as
// "the ring/torus scenarios, at n=10^6".

import (
	"reflect"
	"testing"

	"byzcount/internal/graph"
	"byzcount/internal/sim"
	"byzcount/internal/xrand"
)

// runCell executes one scenario cell from a fresh seed-derived stream.
func runCell(t *testing.T, sc Scenario, workers int) *ScenarioOutcome {
	t.Helper()
	out, err := RunScenario(sc, xrand.New(42).Split("cell"), RunOptions{Workers: workers})
	if err != nil {
		t.Fatalf("RunScenario(%s): %v", sc.Label(), err)
	}
	return out
}

// diffOutcomes compares everything two scenario outcomes observable
// agree on (Graph/Topology/Engine/Procs/Runner identities excluded).
func diffOutcomes(t *testing.T, label string, a, b *ScenarioOutcome) {
	t.Helper()
	if !reflect.DeepEqual(a.Outcomes, b.Outcomes) {
		t.Errorf("%s: outcomes diverge", label)
	}
	if !reflect.DeepEqual(a.Honest, b.Honest) {
		t.Errorf("%s: honest masks diverge", label)
	}
	if !reflect.DeepEqual(a.Byz, b.Byz) {
		t.Errorf("%s: Byzantine placements diverge", label)
	}
	if a.Rounds != b.Rounds {
		t.Errorf("%s: rounds %d != %d", label, a.Rounds, b.Rounds)
	}
	if !reflect.DeepEqual(a.Metrics, b.Metrics) {
		t.Errorf("%s: metrics diverge", label)
	}
}

// TestImplicitScenarioMatchesMaterialized pins the registered implicit
// families to their materialized counterparts, serial and parallel,
// benign and under spam.
func TestImplicitScenarioMatchesMaterialized(t *testing.T) {
	pairs := []struct {
		implicit, materialized string
	}{
		{"ring-implicit", "ring"},
		{"torus-implicit", "torus"},
	}
	for _, pair := range pairs {
		for _, byz := range []int{0, 6} {
			sc := Scenario{Substrate: pair.materialized, N: 240, D: 8, Byz: byz, MaxPhase: 6}
			if byz > 0 {
				sc.Adversary = "spam"
			}
			ref := runCell(t, sc, 1)
			if ref.Graph == nil || ref.Topology != nil {
				t.Fatalf("%s: materialized cell should carry a Graph", pair.materialized)
			}
			for _, workers := range []int{1, 8} {
				sci := sc
				sci.Substrate = pair.implicit
				got := runCell(t, sci, workers)
				if got.Graph != nil || got.Topology == nil {
					t.Fatalf("%s: implicit cell should carry a Topology, not a Graph", pair.implicit)
				}
				diffOutcomes(t, pair.implicit+"/byz="+string(rune('0'+byz)), ref, got)
			}
		}
	}
}

// TestLatticeScenarioMatchesMaterialized checks the k-nearest lattice
// family (which has no standing materialized registry name) against a
// temporary registry entry built from RingLattice.Materialize.
func TestLatticeScenarioMatchesMaterialized(t *testing.T) {
	const matName = "lattice-materialized-for-test"
	Substrates[matName] = Substrate{Name: matName, Deterministic: true,
		Build: func(n, d int, rng *xrand.Rand) (*graph.Graph, error) {
			lat, err := graph.NewRingLattice(n, latticeK(d))
			if err != nil {
				return nil, err
			}
			return lat.Materialize()
		}}
	defer delete(Substrates, matName)
	sc := Scenario{Substrate: matName, N: 246, D: 8, Byz: 6, Adversary: "spam", Placement: "spread", MaxPhase: 6}
	ref := runCell(t, sc, 1)
	for _, workers := range []int{1, 8} {
		sci := sc
		sci.Substrate = "lattice"
		got := runCell(t, sci, workers)
		diffOutcomes(t, "lattice", ref, got)
	}
}

// TestImplicitChurnRejected: churn composes only with the dynamically
// maintained hnd family; implicit families must be rejected loudly.
func TestImplicitChurnRejected(t *testing.T) {
	for _, name := range []string{"ring-implicit", "torus-implicit", "lattice"} {
		sc := Scenario{Substrate: name, Churn: ChurnProfile{Leaves: 1, Joins: 1}}
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: churn accepted on an implicit substrate", name)
		}
	}
}

// Compile-time: the implicit builders return topologies that are also
// TopologyDegrees, so the engine's slab budgets engage on every
// registered implicit family.
var _ = func() bool {
	for _, name := range []string{"ring-implicit", "torus-implicit", "lattice"} {
		topo, err := Substrates[name].Implicit(64, 8)
		if err != nil {
			panic(err)
		}
		if _, ok := topo.(sim.TopologyDegrees); !ok {
			panic(name + " topology lacks degree hints")
		}
	}
	return true
}()
