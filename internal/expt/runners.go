package expt

import (
	"fmt"
	"math"

	"byzcount/internal/counting"
	"byzcount/internal/graph"
	"byzcount/internal/sim"
	"byzcount/internal/xrand"
)

// runOutcome bundles what an experiment needs from one protocol run.
type runOutcome struct {
	outcomes []counting.Outcome
	honest   []bool
	rounds   int
	metrics  sim.Metrics
	engine   *sim.Engine
	procs    []sim.Proc
}

// mkProc builds the process for one vertex; the engine is available for
// adversaries that need global knowledge (the omniscient-adversary model).
type mkProc func(v int, eng *sim.Engine) sim.Proc

// runProtocol wires processes onto a graph and runs. If stopWhenDecided
// is true the run ends as soon as every honest Estimator has decided
// (the decision-time metric of Definition 2); otherwise it runs until all
// processes halt or maxRounds passes.
func runProtocol(g *graph.Graph, byz []bool, seed uint64, honestProc, byzProc mkProc,
	maxRounds int, stopWhenDecided bool) (runOutcome, error) {
	frac := 0.0
	if stopWhenDecided {
		frac = 1.0
	}
	return runProtocolFrac(g, byz, seed, honestProc, byzProc, maxRounds, frac)
}

// runProtocolFrac is runProtocol with a fractional stop condition: the
// run ends once at least stopFrac of the honest nodes have decided
// (Theorem 2 only promises (1-beta)n deciders — Byzantine-adjacent
// stragglers may never decide on their own). stopFrac <= 0 runs to halt.
func runProtocolFrac(g *graph.Graph, byz []bool, seed uint64, honestProc, byzProc mkProc,
	maxRounds int, stopFrac float64) (runOutcome, error) {
	return runProtocolFracPar(g, byz, seed, honestProc, byzProc, maxRounds, stopFrac, engineOpts{})
}

// engineOpts is the execution-shape bundle RunScenario threads to the
// engine: the Step-shard worker count plus the virtual-time delivery
// models (nil delay and fault keep the synchronous round loop, and with
// it byte-for-byte compatibility with every pre-virtual-time table).
type engineOpts struct {
	workers int // 0 or 1 = serial
	delay   sim.DelayModel
	fault   sim.FaultModel
	// tickSkip / tickSkipSet carry an explicit SetTickSkip request (the
	// CLI's -tickskip). Explicit means fail-fast when the run cannot
	// consult the knob: skip only exists on the virtual-time sparse path,
	// which needs at least one TickDriven proc.
	tickSkip    bool
	tickSkipSet bool
	// done, when non-nil, cancels the run cooperatively: the engine polls
	// it each round and aborts with sim.ErrCanceled when it closes. The
	// durable sweep driver uses it for per-cell timeouts and SIGTERM
	// drains.
	done <-chan struct{}
}

// runProtocolFracPar is runProtocolFrac with explicit engine options
// (executions are bit-identical for every worker count, so only the CLI
// ever asks for parallelism).
func runProtocolFracPar(g *graph.Graph, byz []bool, seed uint64, honestProc, byzProc mkProc,
	maxRounds int, stopFrac float64, eo engineOpts) (runOutcome, error) {
	return runProtocolOnEngine(sim.New(g, sim.WithSeed(seed)), g.N(), byz, honestProc, byzProc, maxRounds, stopFrac, eo)
}

// runProtocolFracParTopo is runProtocolFracPar over an implicit
// topology: the engine resolves neighborhoods on demand instead of
// ingesting a materialized CSR. Both sim.New dispatch paths assign IDs
// from the same seed-derived stream in slot order, so over identical
// adjacency the two paths produce byte-identical runs.
func runProtocolFracParTopo(topo sim.Topology, byz []bool, seed uint64, honestProc, byzProc mkProc,
	maxRounds int, stopFrac float64, eo engineOpts) (runOutcome, error) {
	return runProtocolOnEngine(sim.New(topo, sim.WithSeed(seed)), topo.Slots(), byz, honestProc, byzProc, maxRounds, stopFrac, eo)
}

// runProtocolOnEngine is the substrate-independent protocol run body
// shared by the static and implicit paths.
func runProtocolOnEngine(eng *sim.Engine, n int, byz []bool, honestProc, byzProc mkProc,
	maxRounds int, stopFrac float64, eo engineOpts) (runOutcome, error) {
	if eo.delay != nil {
		eng.SetDelayModel(eo.delay)
	}
	if eo.fault != nil {
		eng.SetFaultModel(eo.fault)
	}
	if eo.done != nil {
		eng.SetCancel(eo.done)
	}
	eng.SetParallelism(max(eo.workers, 1))
	procs := make([]sim.Proc, n)
	for v := range procs {
		if byz != nil && byz[v] {
			procs[v] = byzProc(v, eng)
		} else {
			procs[v] = honestProc(v, eng)
		}
	}
	if err := eng.Attach(procs); err != nil {
		return runOutcome{}, err
	}
	if eo.tickSkipSet {
		// Fail fast instead of silently ignoring the knob: tick
		// fast-forwarding only exists on the sparse virtual-time path,
		// which engages when at least one proc is TickDriven.
		if !eng.HasTickDriven() {
			return runOutcome{}, fmt.Errorf(
				"expt: -tickskip set but no attached process is TickDriven; " +
					"tick fast-forwarding is structurally disabled for this protocol")
		}
		eng.SetTickSkip(eo.tickSkip)
	}
	honest := make([]bool, n)
	for v := range honest {
		honest[v] = byz == nil || !byz[v]
	}
	if stopFrac > 0 {
		honestTotal := 0
		for _, h := range honest {
			if h {
				honestTotal++
			}
		}
		eng.SetStopCondition(func(round int) bool {
			decided := 0
			for v, p := range procs {
				if !honest[v] {
					continue
				}
				if e, ok := p.(counting.Estimator); ok && e.Outcome().Decided {
					decided++
				}
			}
			return honestTotal == 0 || float64(decided) >= stopFrac*float64(honestTotal)
		})
	}
	rounds, err := eng.Run(maxRounds)
	if err != nil {
		return runOutcome{}, err
	}
	return runOutcome{
		outcomes: counting.Outcomes(procs),
		honest:   honest,
		rounds:   rounds,
		metrics:  eng.Metrics(),
		engine:   eng,
		procs:    procs,
	}, nil
}

// byzCount returns the paper's Byzantine budget floor(n^exponent).
func byzCount(n int, exponent float64) int {
	b := int(math.Floor(math.Pow(float64(n), exponent)))
	if b < 0 {
		b = 0
	}
	if b >= n {
		b = n - 1
	}
	return b
}

// meanEstimate returns the mean decided estimate among honest vertices.
func meanEstimate(o runOutcome) float64 {
	vals := counting.DecidedEstimates(o.outcomes, o.honest)
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += float64(v)
	}
	return sum / float64(len(vals))
}

// congestMaxRounds bounds a CONGEST run safely past the MaxPhase wall.
func congestMaxRounds(p counting.CongestParams) int {
	return p.Schedule.RoundsThroughPhase(p.MaxPhase + 1)
}

// hnd builds the H(n,d) substrate or fails the experiment. Builds go
// through the deterministic substrate cache: rng must be a stream
// dedicated to this build (every caller passes a fresh split), so its
// seed identifies the draw and identical streams reuse one graph.
func hnd(n, d int, rng *xrand.Rand) (*graph.Graph, error) {
	g, err := cachedSubstrate("hnd", n, d, rng.Seed(), false,
		func() (*graph.Graph, error) { return graph.HND(n, d, rng) })
	if err != nil {
		return nil, fmt.Errorf("expt: building H(%d,%d): %w", n, d, err)
	}
	return g, nil
}

// nSweep returns the network-size sweep for the config.
func nSweep(cfg Config, full []int, quick []int) []int {
	if cfg.Quick {
		return quick
	}
	return full
}
