package expt

import (
	"byzcount/internal/stats"
	"byzcount/internal/xrand"
)

// E19-E20 are the virtual-time cells: the delivery axes (delay and
// fault models) composed with the counting protocol. Before the
// event-ring scheduler the engine could only speak lockstep synchrony —
// partial synchrony (a Global Stabilization Time), per-edge latency
// jitter, and partitions were inexpressible. Both experiments run
// through RunScenario like every other cell, so their tables are pure
// functions of the seed and byte-identical at every worker count
// (pinned by TestVirtualTimeExperimentsDeterministic).

// E19 — extension: CONGEST counting under partial synchrony. Before the
// GST round, message latency is uniform jitter on [1,6]; from GST on,
// every edge delivers next round (the synchronous model the paper
// assumes throughout). The counting schedule is phase-locked to round
// numbers, so pre-GST reordering delivers beacons after the slots that
// expected them and the protocol reads the gap as silence: jittered
// rows decide earlier, on less evidence and fewer messages, and the
// GST row falls between the synchronous and never-stable extremes.
func E19(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E19",
		Title:   "Extension: CONGEST counting under partial synchrony (jitter until GST)",
		Claim:   "Theorem 2 assumes lockstep synchrony; under partial synchrony the guarantee should hold once delivery stabilizes (GST) and degrade with the span of the asynchronous prefix",
		Columns: []string{"delay", "rounds", "decided_frac", "bounded_frac", "msgs/n"},
	}
	const d = 8
	n := 256
	if cfg.Quick {
		n = 128
	}
	delays := []string{"unit", "gst:8/uniform:1-6", "gst:32/uniform:1-6", "uniform:1-6"}
	if cfg.Quick {
		delays = []string{"unit", "gst:8/uniform:1-6", "uniform:1-6"}
	}
	root := xrand.New(cfg.Seed)
	type res struct {
		rounds, decided, bounded, msgs float64
	}
	results, err := sweepRows(cfg, root, delays,
		func(spec string) string { return "e19-" + spec },
		func(spec string, trial int, rng *xrand.Rand) (res, error) {
			r, err := RunScenario(Scenario{
				Proto: "congest", Substrate: "hnd",
				N: n, D: d, MaxPhase: 8, StopFrac: 1,
				Delay: spec,
			}, rng, RunOptions{})
			if err != nil {
				return res{}, err
			}
			dec, bnd, _ := congestBand(r, n, d)
			return res{
				rounds:  float64(r.Rounds),
				decided: dec,
				bounded: bnd,
				msgs:    float64(r.Metrics.Messages) / float64(n),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	for i, spec := range delays {
		rs := results[i]
		t.AddRow(spec,
			stats.Mean(column(rs, func(r res) float64 { return r.rounds })),
			stats.Mean(column(rs, func(r res) float64 { return r.decided })),
			stats.Mean(column(rs, func(r res) float64 { return r.bounded })),
			stats.Mean(column(rs, func(r res) float64 { return r.msgs })))
	}
	t.Notes = append(t.Notes,
		"delay specs per sim.ParseDelayModel; \"unit\" runs the virtual-time scheduler in its degenerate synchronous configuration and must match the legacy tables",
		"the CONGEST schedule is phase-locked to rounds: pre-GST jitter delivers beacons after the slots that expected them, which the protocol reads as silence")
	return t, nil
}

// E20 — extension: counting across a partition that heals. The fault
// axis cuts every edge between the two vertex-parity groups inside a
// configurable window; the storyline sweeps the heal round from "never
// cut" through "heals before the schedule's decision slots" to "never
// heals". A partitioned half sees a network of n/2 — within the
// log-scale estimate band at these scales, so the cut shows up as the
// decision-time and message-ledger shift, with the dropped column
// counting every delivery the cut suppressed.
func E20(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E20",
		Title:   "Extension: CONGEST counting across a partition window (cut at 10, heal swept)",
		Claim:   "counting needs cross-network beacon flow: a partition that heals before the decision slots costs rounds, one that persists costs the estimate band",
		Columns: []string{"fault", "rounds", "decided_frac", "bounded_frac", "dropped/n"},
	}
	const d = 8
	n := 256
	if cfg.Quick {
		n = 128
	}
	faults := []string{"none", "partition:2@10-40", "partition:2@10-70", "partition:2@10"}
	if cfg.Quick {
		faults = []string{"none", "partition:2@10-40", "partition:2@10"}
	}
	root := xrand.New(cfg.Seed)
	type res struct {
		rounds, decided, bounded, dropped float64
	}
	results, err := sweepRows(cfg, root, faults,
		func(spec string) string { return "e20-" + spec },
		func(spec string, trial int, rng *xrand.Rand) (res, error) {
			r, err := RunScenario(Scenario{
				Proto: "congest", Substrate: "hnd",
				N: n, D: d, MaxPhase: 8, StopFrac: 1,
				// "unit" delivery keeps the only perturbation the cut
				// itself: rows differ purely in the fault window.
				Delay: "unit",
				Fault: spec,
			}, rng, RunOptions{})
			if err != nil {
				return res{}, err
			}
			dec, bnd, _ := congestBand(r, n, d)
			return res{
				rounds:  float64(r.Rounds),
				decided: dec,
				bounded: bnd,
				dropped: float64(r.Metrics.Dropped) / float64(n),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	for i, spec := range faults {
		rs := results[i]
		t.AddRow(spec,
			stats.Mean(column(rs, func(r res) float64 { return r.rounds })),
			stats.Mean(column(rs, func(r res) float64 { return r.decided })),
			stats.Mean(column(rs, func(r res) float64 { return r.bounded })),
			stats.Mean(column(rs, func(r res) float64 { return r.dropped })))
	}
	t.Notes = append(t.Notes,
		"fault specs per sim.ParseFaultModel: partition:2@FROM[-HEAL] cuts every edge whose endpoints differ in vertex parity for rounds [FROM, HEAL); omitting HEAL never heals",
		"dropped counts messages suppressed by the cut (charged to the sender's edge budget, excluded from Messages) — the virtual-time ledger the synchronous engine had no column for")
	return t, nil
}
