package expt

import (
	"fmt"

	"byzcount/internal/byzantine"
	"byzcount/internal/counting"
	"byzcount/internal/graph"
	"byzcount/internal/sim"
	"byzcount/internal/stats"
	"byzcount/internal/xrand"
)

// E13 — extension: crash-fault churn. The paper's motivating line of
// work ([3,4,5]) runs in dynamic networks with churn; crash faults are
// the weakest churn model, and the counting protocol must shrug them
// off (they are strictly weaker than the Byzantine faults of Theorem 2).
func E13(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E13",
		Title:   "Extension: CONGEST counting under crash-fault churn",
		Claim:   "Crash faults are strictly weaker than Byzantine faults, so Theorem 2's guarantees must persist under fail-stop churn",
		Columns: []string{"crash_frac", "decided_frac", "bounded_frac", "mean_est"},
	}
	const d = 8
	n := 256
	if cfg.Quick {
		n = 128
	}
	root := xrand.New(cfg.Seed)
	for _, crashFrac := range []float64{0, 0.05, 0.10, 0.20} {
		crashers := int(crashFrac * float64(n))
		var decided, bounded, meanEsts []float64
		for trial := 0; trial < cfg.trials(); trial++ {
			rng := root.SplitN(fmt.Sprintf("e13-%.2f", crashFrac), trial)
			g, err := hnd(n, d, rng.Split("graph"))
			if err != nil {
				return nil, err
			}
			mask, err := byzantine.RandomPlacement(g, crashers, rng.Split("place"))
			if err != nil {
				return nil, err
			}
			params := counting.DefaultCongestParams(d)
			params.MaxPhase = 9
			when := rng.Split("when")
			res, err := runProtocol(g, mask, rng.Split("run").Uint64(),
				func(v int, eng *sim.Engine) sim.Proc { return counting.NewCongestProc(params) },
				func(v int, eng *sim.Engine) sim.Proc {
					return byzantine.NewCrash(counting.NewCongestProc(params), 20+when.SplitN("c", v).Intn(200))
				},
				congestMaxRounds(params), true)
			if err != nil {
				return nil, err
			}
			decided = append(decided, counting.DecidedFraction(res.outcomes, res.honest))
			logd := counting.LogD(n, d)
			bounded = append(bounded,
				counting.FractionWithinFactor(res.outcomes, res.honest, 0.5*logd, 2*logd+2))
			meanEsts = append(meanEsts, meanEstimate(res))
		}
		t.AddRow(crashFrac, stats.Mean(decided), stats.Mean(bounded), stats.Mean(meanEsts))
	}
	t.Notes = append(t.Notes,
		"crashed nodes are excluded from the honest metrics; decided/bounded fractions are over surviving correct nodes")
	return t, nil
}

// E14 — extension: topology sensitivity. The protocol's guarantee needs
// an expander (Theorem 3 says expansion is necessary); this measures what
// actually happens on non-expander substrates, including the small-world
// topology that the prior work of Chatterjee et al. [14] required.
func E14(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E14",
		Title:   "Extension: CONGEST counting across topologies",
		Claim:   "Theorems 2 & 3: the guarantee holds on (almost all) d-regular graphs; expansion is necessary — low-expansion substrates under-estimate",
		Columns: []string{"topology", "expansion_est", "mode", "frac_within_1", "log2(n)"},
	}
	n := 256
	if cfg.Quick {
		n = 128
	}
	root := xrand.New(cfg.Seed)
	type topo struct {
		name string
		gen  func(rng *xrand.Rand) (*graph.Graph, int, error) // graph, degree param
	}
	topos := []topo{
		{"H(n,8)", func(rng *xrand.Rand) (*graph.Graph, int, error) {
			g, err := graph.HND(n, 8, rng)
			return g, 8, err
		}},
		{"small-world", func(rng *xrand.Rand) (*graph.Graph, int, error) {
			g, err := graph.WattsStrogatz(n, 4, 0.2, rng)
			return g, 8, err
		}},
		{"torus", func(rng *xrand.Rand) (*graph.Graph, int, error) {
			side := 1
			for side*side < n {
				side++
			}
			g, err := graph.Torus(side, side)
			return g, 4, err
		}},
		{"ring", func(rng *xrand.Rand) (*graph.Graph, int, error) {
			g, err := graph.Ring(n)
			return g, 2, err
		}},
	}
	for _, tp := range topos {
		hist := stats.NewHistogram()
		var hEst []float64
		for trial := 0; trial < cfg.trials(); trial++ {
			rng := root.SplitN("e14-"+tp.name, trial)
			g, d, err := tp.gen(rng.Split("graph"))
			if err != nil {
				return nil, err
			}
			hEst = append(hEst, g.EstimateVertexExpansion(8, rng.Split("sweep")))
			params := counting.DefaultCongestParams(d)
			params.MaxPhase = 12
			res, err := runProtocol(g, nil, rng.Split("run").Uint64(),
				func(v int, eng *sim.Engine) sim.Proc { return counting.NewCongestProc(params) },
				nil2byz, congestMaxRounds(params), true)
			if err != nil {
				return nil, err
			}
			for _, e := range counting.DecidedEstimates(res.outcomes, res.honest) {
				hist.Add(e)
			}
		}
		mode, _ := hist.Mode()
		t.AddRow(tp.name, stats.Mean(hEst), mode, hist.Fraction(mode-1, mode+1), counting.Log2(n))
	}
	t.Notes = append(t.Notes,
		"each topology's mode tracks log_d(n) for its own degree d (ring d=2 -> ~log2 n): BENIGN counting does not need expansion",
		"expansion is needed against Byzantine nodes (Theorem 3) — see E10, where one Byzantine cut vertex on a low-expansion graph hides an 8x size difference",
		"the small-world row shows this paper's algorithm does NOT need the clustering that [14] required")
	return t, nil
}
