package expt

import (
	"fmt"

	"byzcount/internal/byzantine"
	"byzcount/internal/counting"
	"byzcount/internal/graph"
	"byzcount/internal/sim"
	"byzcount/internal/stats"
	"byzcount/internal/xrand"
)

// E13 — extension: crash-fault churn. The paper's motivating line of
// work ([3,4,5]) runs in dynamic networks with churn; crash faults are
// the weakest churn model, and the counting protocol must shrug them
// off (they are strictly weaker than the Byzantine faults of Theorem 2).
func E13(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E13",
		Title:   "Extension: CONGEST counting under crash-fault churn",
		Claim:   "Crash faults are strictly weaker than Byzantine faults, so Theorem 2's guarantees must persist under fail-stop churn",
		Columns: []string{"crash_frac", "decided_frac", "bounded_frac", "mean_est"},
	}
	const d = 8
	n := 256
	if cfg.Quick {
		n = 128
	}
	root := xrand.New(cfg.Seed)
	crashFracs := []float64{0, 0.05, 0.10, 0.20}
	type res struct {
		decided, bounded, meanEst float64
	}
	results, err := sweepRows(cfg, root, crashFracs,
		func(crashFrac float64) string { return fmt.Sprintf("e13-%.2f", crashFrac) },
		func(crashFrac float64, trial int, rng *xrand.Rand) (res, error) {
			crashers := int(crashFrac * float64(n))
			g, err := hnd(n, d, rng.Split("graph"))
			if err != nil {
				return res{}, err
			}
			mask, err := byzantine.RandomPlacement(g, crashers, rng.Split("place"))
			if err != nil {
				return res{}, err
			}
			params := counting.DefaultCongestParams(d)
			params.MaxPhase = 9
			when := rng.Split("when")
			r, err := runProtocol(g, mask, rng.Split("run").Uint64(),
				func(v int, eng *sim.Engine) sim.Proc { return counting.NewCongestProc(params) },
				func(v int, eng *sim.Engine) sim.Proc {
					return byzantine.NewCrash(counting.NewCongestProc(params), 20+when.SplitN("c", v).Intn(200))
				},
				congestMaxRounds(params), true)
			if err != nil {
				return res{}, err
			}
			logd := counting.LogD(n, d)
			return res{
				decided: counting.DecidedFraction(r.outcomes, r.honest),
				bounded: counting.FractionWithinFactor(r.outcomes, r.honest,
					0.5*logd, 2*logd+2),
				meanEst: meanEstimate(r),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	for i, crashFrac := range crashFracs {
		rs := results[i]
		t.AddRow(crashFrac,
			stats.Mean(column(rs, func(r res) float64 { return r.decided })),
			stats.Mean(column(rs, func(r res) float64 { return r.bounded })),
			stats.Mean(column(rs, func(r res) float64 { return r.meanEst })))
	}
	t.Notes = append(t.Notes,
		"crashed nodes are excluded from the honest metrics; decided/bounded fractions are over surviving correct nodes")
	return t, nil
}

// E14 — extension: topology sensitivity. The protocol's guarantee needs
// an expander (Theorem 3 says expansion is necessary); this measures what
// actually happens on non-expander substrates, including the small-world
// topology that the prior work of Chatterjee et al. [14] required.
func E14(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E14",
		Title:   "Extension: CONGEST counting across topologies",
		Claim:   "Theorems 2 & 3: the guarantee holds on (almost all) d-regular graphs; expansion is necessary — low-expansion substrates under-estimate",
		Columns: []string{"topology", "expansion_est", "mode", "frac_within_1", "log2(n)"},
	}
	n := 256
	if cfg.Quick {
		n = 128
	}
	root := xrand.New(cfg.Seed)
	type topo struct {
		name string
		gen  func(rng *xrand.Rand) (*graph.Graph, int, error) // graph, degree param
	}
	topos := []topo{
		{"H(n,8)", func(rng *xrand.Rand) (*graph.Graph, int, error) {
			g, err := graph.HND(n, 8, rng)
			return g, 8, err
		}},
		{"small-world", func(rng *xrand.Rand) (*graph.Graph, int, error) {
			g, err := graph.WattsStrogatz(n, 4, 0.2, rng)
			return g, 8, err
		}},
		{"torus", func(rng *xrand.Rand) (*graph.Graph, int, error) {
			side := 1
			for side*side < n {
				side++
			}
			g, err := graph.Torus(side, side)
			return g, 4, err
		}},
		{"ring", func(rng *xrand.Rand) (*graph.Graph, int, error) {
			g, err := graph.Ring(n)
			return g, 2, err
		}},
	}
	type res struct {
		hEst float64
		ests []int
	}
	results, err := sweepRows(cfg, root, topos,
		func(tp topo) string { return "e14-" + tp.name },
		func(tp topo, trial int, rng *xrand.Rand) (res, error) {
			g, d, err := tp.gen(rng.Split("graph"))
			if err != nil {
				return res{}, err
			}
			out := res{hEst: g.EstimateVertexExpansion(8, rng.Split("sweep"))}
			params := counting.DefaultCongestParams(d)
			params.MaxPhase = 12
			r, err := runProtocol(g, nil, rng.Split("run").Uint64(),
				func(v int, eng *sim.Engine) sim.Proc { return counting.NewCongestProc(params) },
				nil2byz, congestMaxRounds(params), true)
			if err != nil {
				return res{}, err
			}
			out.ests = counting.DecidedEstimates(r.outcomes, r.honest)
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	for i, tp := range topos {
		rs := results[i]
		hist := stats.NewHistogram()
		for _, r := range rs {
			for _, e := range r.ests {
				hist.Add(e)
			}
		}
		mode, _ := hist.Mode()
		t.AddRow(tp.name,
			stats.Mean(column(rs, func(r res) float64 { return r.hEst })),
			mode, hist.Fraction(mode-1, mode+1), counting.Log2(n))
	}
	t.Notes = append(t.Notes,
		"each topology's mode tracks log_d(n) for its own degree d (ring d=2 -> ~log2 n): BENIGN counting does not need expansion",
		"expansion is needed against Byzantine nodes (Theorem 3) — see E10, where one Byzantine cut vertex on a low-expansion graph hides an 8x size difference",
		"the small-world row shows this paper's algorithm does NOT need the clustering that [14] required")
	return t, nil
}
