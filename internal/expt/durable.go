package expt

// The durable matrix driver: `byzcount sweep`. Where RunMatrix holds
// the whole grid's results in memory and dies with the process, this
// driver writes every completed (row, trial) cell to an append-only
// CRC-framed log (internal/sweep) as it lands, streams the table
// aggregates through constant-memory stats.Online accumulators, and on
// restart replays the log and runs only the cells that are missing.
// Because every cell is a pure function of root.SplitN(label, trial),
// a resumed run's tables are byte-identical to an uninterrupted run's
// — interruption costs wall time, never correctness.
//
// Failure isolation rides the same machinery. A panicking cell is
// caught, recorded in the log as a quarantined failure (with its label,
// sub-seed, and stack), and the rest of the grid keeps running; plain
// errors get a bounded retry with backoff first. Cancellation (SIGTERM,
// per-cell timeout) is cooperative: in-flight engines abort at their
// next round boundary, finished results are flushed, and a checkpoint
// records how far the sweep got.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"byzcount/internal/counting"
	"byzcount/internal/report"
	"byzcount/internal/stats"
	"byzcount/internal/sweep"
	"byzcount/internal/xrand"
)

// SweepOptions tunes the durable driver's robustness policy. The zero
// value is sensible for production: two retries, no per-cell timeout.
type SweepOptions struct {
	// Retries is how many times a cell failing with a plain error is
	// re-attempted before quarantine (panics are never retried — a panic
	// is deterministic in a pure-function cell, so retrying it only
	// burns time). 0 means the default of 2; negative disables retry.
	Retries int
	// RetryBackoff is the sleep before the first retry, doubled each
	// further attempt. 0 means the default of 5ms.
	RetryBackoff time.Duration
	// CellTimeout, when positive, bounds one attempt of one cell; an
	// attempt exceeding it is quarantined as a timeout (the engine
	// aborts at the next round boundary, so a cell is only as far from
	// interruptible as one round).
	CellTimeout time.Duration
	// OnCell, when non-nil, is called serially from the collector after
	// every completed cell (including replayed ones, once, at startup)
	// with cumulative progress. It is the CLI's progress line and the
	// tests' cooperative fault point.
	OnCell func(done, total int)
	// GitSHA is recorded in the manifest for provenance (the caller
	// supplies it — typically perf.GitState() — because this package
	// cannot import perf). Empty is recorded as "unknown".
	GitSHA string
	// SyncEvery overrides the log's fsync batch size (0 keeps the log's
	// default). Tests use 1 to make every append durable immediately.
	SyncEvery int
}

func (o SweepOptions) retries() int {
	if o.Retries == 0 {
		return 2
	}
	if o.Retries < 0 {
		return 0
	}
	return o.Retries
}

func (o SweepOptions) backoff() time.Duration {
	if o.RetryBackoff <= 0 {
		return 5 * time.Millisecond
	}
	return o.RetryBackoff
}

// QuarantinedCell is one cell the sweep could not complete: the grid
// key, the exact sub-seed to reproduce it (xrand.New(Seed) is the
// cell's root stream), and the failure, with stack when it panicked.
type QuarantinedCell struct {
	Row      string
	Trial    int
	Seed     uint64
	Err      string
	Stack    string
	Attempts int
}

// SweepSummary is the outcome of a durable sweep run or resume.
type SweepSummary struct {
	// Table is the rendered matrix table; nil when the run was
	// interrupted before completing the grid.
	Table *Table
	// Total is the grid size; Completed counts healthy cells (replayed
	// and fresh); Replayed counts cells restored from the log rather
	// than run.
	Total, Completed, Replayed int
	// Quarantined lists failed cells in deterministic (row, trial)
	// order. Quarantine does not abort the grid; callers decide the
	// exit code.
	Quarantined []QuarantinedCell
	// Interrupted reports the run stopped on context cancellation; the
	// sweep directory is resumable.
	Interrupted bool
}

// RunMatrixSweep initializes dir as a durable sweep directory (manifest
// plus cell log) and runs the matrix through the durable driver. dir
// must not already hold a sweep — resuming an existing one is
// ResumeMatrixSweep's job, and the split keeps "start over" from
// silently absorbing a half-finished run with different flags.
func RunMatrixSweep(ctx context.Context, cfg Config, m Matrix, dir string, opts SweepOptions) (*SweepSummary, error) {
	scs, skipped, err := m.Scenarios()
	if err != nil {
		return nil, err
	}
	if len(scs) == 0 {
		return nil, fmt.Errorf("expt: empty matrix (%d cells skipped as incompatible)", skipped)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if _, err := os.Stat(filepath.Join(dir, sweep.ManifestName)); err == nil {
		return nil, fmt.Errorf("expt: %s already holds a sweep; use resume", dir)
	}
	spec, err := json.Marshal(m)
	if err != nil {
		return nil, err
	}
	sha := opts.GitSHA
	if sha == "" {
		sha = "unknown"
	}
	man := &sweep.Manifest{
		Schema:    sweep.ManifestSchema,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		GitSHA:    sha,
		Seed:      cfg.Seed,
		Trials:    cfg.trials(),
		Cells:     len(scs),
		Columns:   matrixMetricCols,
		Spec:      spec,
	}
	if err := sweep.WriteManifest(dir, man); err != nil {
		return nil, err
	}
	return runDurable(ctx, cfg, scs, skipped, dir, opts, nil)
}

// ResumeMatrixSweep reopens dir and completes the sweep recorded in its
// manifest: logged cells are replayed, missing ones run. The manifest,
// not the caller, supplies the grid, seed, and trial count — cfg
// contributes only execution shape (Parallel). The resumed run's
// tables are byte-identical to what the uninterrupted run would have
// produced.
func ResumeMatrixSweep(ctx context.Context, dir string, cfg Config, opts SweepOptions) (*SweepSummary, error) {
	man, err := sweep.ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	var m Matrix
	if err := json.Unmarshal(man.Spec, &m); err != nil {
		return nil, fmt.Errorf("expt: %s: manifest spec: %w", dir, err)
	}
	scs, skipped, err := m.Scenarios()
	if err != nil {
		return nil, err
	}
	if len(scs) != man.Cells {
		return nil, fmt.Errorf("expt: %s: manifest records %d cells but the spec enumerates %d — grid vocabulary changed under the log",
			dir, man.Cells, len(scs))
	}
	cfg.Seed = man.Seed
	cfg.Trials = man.Trials
	log, replayed, err := sweep.OpenLog(dir)
	if err != nil {
		return nil, err
	}
	log.Close()
	return runDurable(ctx, cfg, scs, skipped, dir, opts, replayed)
}

// cellKey identifies one grid cell.
type cellKey struct {
	row   int
	trial int
}

// rowAgg streams one row's completed trials, in trial order, through
// constant-memory aggregates. pending is a reorder buffer: cells land
// in scheduling order, but float accumulation order determines the
// bits of the result, so trials are fed strictly in index order (its
// size is bounded by the scheduler's parallelism, not the grid).
type rowAgg struct {
	next    int
	pending map[int]sweep.Record
	agg     [numCellMetrics]stats.Online
	p50     [numCellMetrics]*stats.P2
}

// runDurable is the shared driver body: replay, run, aggregate, flush.
func runDurable(ctx context.Context, cfg Config, scs []Scenario, skipped int,
	dir string, opts SweepOptions, replayed []sweep.Record) (*SweepSummary, error) {
	trials := cfg.trials()
	total := len(scs) * trials
	rowIdx := make(map[string]int, len(scs))
	labels := make([]string, len(scs))
	for i, sc := range scs {
		labels[i] = sc.Label()
		rowIdx[labels[i]] = i
	}

	rows := make([]rowAgg, len(scs))
	for i := range rows {
		rows[i].pending = make(map[int]sweep.Record)
		for k := range rows[i].p50 {
			rows[i].p50[k] = stats.NewP2(0.5)
		}
	}
	var quarantined []QuarantinedCell
	completedHealthy := 0
	// account records a cell's outcome the moment it is logged — the
	// WAL, not the aggregate feed, is what resume sees, so the
	// checkpoint's counts must match it.
	account := func(rec sweep.Record) {
		if rec.Failed() {
			quarantined = append(quarantined, QuarantinedCell{
				Row: rec.Row, Trial: rec.Trial, Seed: rec.Seed,
				Err: rec.Err, Stack: rec.Stack, Attempts: rec.Attempts,
			})
			return
		}
		completedHealthy++
	}
	// deliver feeds one landed record through the reorder buffer,
	// advancing each row's aggregates strictly in trial order — float
	// accumulation order determines the bits of the table, so a cell
	// landing ahead of a lower-numbered trial waits in pending.
	deliver := func(rec sweep.Record) {
		r := rowIdx[rec.Row]
		ra := &rows[r]
		ra.pending[rec.Trial] = rec
		for {
			next, ok := ra.pending[ra.next]
			if !ok {
				break
			}
			delete(ra.pending, ra.next)
			ra.next++
			if next.Failed() {
				continue
			}
			for k, v := range next.Floats() {
				if k >= numCellMetrics {
					break
				}
				ra.agg[k].Add(v)
				ra.p50[k].Add(v)
			}
		}
	}

	// Replay: last record per key wins (a crash-resume cycle can log a
	// key twice), then feed in deterministic (row, trial) order so the
	// aggregates see the same sequence an uninterrupted run fed them.
	byKey := make(map[cellKey]sweep.Record, len(replayed))
	for _, rec := range replayed {
		r, ok := rowIdx[rec.Row]
		if !ok {
			return nil, fmt.Errorf("expt: %s: log row %q is not in the manifest grid", dir, rec.Row)
		}
		if rec.Trial < 0 || rec.Trial >= trials {
			return nil, fmt.Errorf("expt: %s: log trial %d out of range for %q", dir, rec.Trial, rec.Row)
		}
		byKey[cellKey{r, rec.Trial}] = rec
	}
	done := len(byKey)
	skipKeys := make(map[cellKey]bool, len(byKey))
	for i := range scs {
		for t := 0; t < trials; t++ {
			k := cellKey{i, t}
			if rec, ok := byKey[k]; ok {
				skipKeys[k] = true
				account(rec)
				deliver(rec)
				delete(byKey, k)
			}
		}
	}
	if opts.OnCell != nil {
		opts.OnCell(done, total)
	}

	log, _, err := sweep.OpenLog(dir)
	if err != nil {
		return nil, err
	}
	defer log.Close()
	if opts.SyncEvery > 0 {
		log.SyncEvery = opts.SyncEvery
	}

	// Launch the missing cells with bounded parallelism. Every launched
	// goroutine sends exactly one outcome — possibly a skip marker when
	// cancellation beat it to its semaphore slot — so the collector
	// drains an exact count and a drain IS a barrier: when the loop
	// ends, no cell is still writing.
	type outcome struct {
		rec     sweep.Record
		skipped bool
	}
	root := xrand.New(cfg.Seed)
	sem := make(chan struct{}, cfg.parallel())
	resCh := make(chan outcome, cfg.parallel())
	launched := 0
	var wg sync.WaitGroup
	for i := range scs {
		for t := 0; t < trials; t++ {
			if skipKeys[cellKey{i, t}] {
				continue
			}
			launched++
			wg.Add(1)
			go func(i, t int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				if ctx.Err() != nil {
					resCh <- outcome{skipped: true}
					return
				}
				rec, skip := runDurableCell(ctx, scs[i], labels[i], t, root, opts)
				resCh <- outcome{rec: rec, skipped: skip}
			}(i, t)
		}
	}

	var walErr error
	for n := 0; n < launched; n++ {
		o := <-resCh
		if o.skipped {
			continue
		}
		if walErr == nil {
			walErr = log.Append(o.rec)
		}
		account(o.rec)
		deliver(o.rec)
		done++
		if opts.OnCell != nil {
			opts.OnCell(done, total)
		}
	}
	wg.Wait()
	if walErr == nil {
		walErr = log.Sync()
	}
	if walErr != nil {
		return nil, walErr
	}

	sort.Slice(quarantined, func(a, b int) bool {
		qa, qb := quarantined[a], quarantined[b]
		if qa.Row != qb.Row {
			return rowIdx[qa.Row] < rowIdx[qb.Row]
		}
		return qa.Trial < qb.Trial
	})
	sum := &SweepSummary{
		Total:       total,
		Completed:   completedHealthy,
		Replayed:    len(skipKeys),
		Quarantined: quarantined,
		Interrupted: ctx.Err() != nil,
	}
	ck := &sweep.Checkpoint{
		UpdatedAt:   time.Now().UTC().Format(time.RFC3339),
		Completed:   completedHealthy,
		Quarantined: len(quarantined),
		Total:       total,
		Interrupted: sum.Interrupted,
	}
	if err := sweep.WriteCheckpoint(dir, ck); err != nil {
		return nil, err
	}
	if sum.Interrupted {
		return sum, ctx.Err()
	}

	// Grid complete: render the table from the streamed aggregates and
	// emit the machine-readable summary. SumMean adds the same float64s
	// in the same order batch stats.Mean does, so on a healthy grid
	// this table is byte-identical to RunMatrix's.
	t := matrixTable(len(scs), trials, skipped)
	for i, sc := range scs {
		ra := &rows[i]
		scd := sc.withDefaults()
		t.AddRow(labels[i],
			ra.agg[cellByz].SumMean(),
			ra.agg[cellRounds].SumMean(),
			ra.agg[cellDecided].SumMean(),
			ra.agg[cellBounded].SumMean(),
			ra.agg[cellMedian].SumMean(),
			counting.LogD(scd.N, scd.D),
			ra.agg[cellMsgs].SumMean())
	}
	sum.Table = t
	if err := os.WriteFile(filepath.Join(dir, "table.txt"), []byte(t.Render()), 0o644); err != nil {
		return nil, err
	}
	if err := writeSummaryJSONL(dir, labels, rows, quarantined); err != nil {
		return nil, err
	}
	return sum, nil
}

// runDurableCell executes one missing cell under the robustness
// policy. The second return is true when the cell was abandoned due to
// parent-context cancellation: nothing is logged and resume re-runs it.
func runDurableCell(ctx context.Context, sc Scenario, label string, trial int,
	root *xrand.Rand, opts SweepOptions) (sweep.Record, bool) {
	// SplitN is a pure derivation, so the seed is attempt-independent
	// and recorded even for failures — `byzcount run` on it reproduces
	// the quarantined cell exactly.
	seed := root.SplitN(label, trial).Seed()
	backoff := opts.backoff()
	for attempt := 1; ; attempt++ {
		cellCtx, cancel := ctx, context.CancelFunc(func() {})
		if opts.CellTimeout > 0 {
			cellCtx, cancel = context.WithTimeout(ctx, opts.CellTimeout)
		}
		vals, stack, err := runCellOnce(cellCtx, sc, root.SplitN(label, trial))
		cellTimedOut := cellCtx.Err() != nil && ctx.Err() == nil
		cancel()
		switch {
		case err == nil:
			return sweep.Record{Row: label, Trial: trial, Seed: seed,
				Vals: sweep.PackFloats(vals[:]), Attempts: attempt}, false
		case ctx.Err() != nil:
			// Shutdown, not failure: drop the attempt entirely.
			return sweep.Record{}, true
		case stack != "":
			// A panic in a pure-function cell is deterministic;
			// quarantine immediately rather than retrying it.
			return sweep.Record{Row: label, Trial: trial, Seed: seed,
				Err: err.Error(), Stack: stack, Attempts: attempt}, false
		case cellTimedOut:
			return sweep.Record{Row: label, Trial: trial, Seed: seed,
				Err:      fmt.Sprintf("cell timeout after %v: %v", opts.CellTimeout, err),
				Attempts: attempt}, false
		case attempt > opts.retries():
			return sweep.Record{Row: label, Trial: trial, Seed: seed,
				Err: err.Error(), Attempts: attempt}, false
		}
		time.Sleep(backoff)
		backoff *= 2
	}
}

// runCellOnce is one attempt with panic containment: a panicking cell
// returns an error plus its stack instead of taking down the sweep.
func runCellOnce(ctx context.Context, sc Scenario, rng *xrand.Rand) (vals [numCellMetrics]float64, stack string, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
			stack = string(debug.Stack())
		}
	}()
	vals, err = matrixCellVals(ctx, sc, rng)
	return
}

// writeSummaryJSONL emits summary.jsonl: one line per row with the full
// online statistics per metric (count, mean, variance, min, max,
// median estimate), then one line per quarantined cell. Non-finite
// floats are carried as strings — see report.SafeFloat.
func writeSummaryJSONL(dir string, labels []string, rows []rowAgg, quarantined []QuarantinedCell) error {
	f, err := os.Create(filepath.Join(dir, "summary.jsonl"))
	if err != nil {
		return err
	}
	defer f.Close()
	j := report.NewJSONL(f)
	for i, label := range labels {
		metrics := make(map[string]any, numCellMetrics)
		for k, name := range matrixMetricCols {
			a := &rows[i].agg[k]
			metrics[name] = map[string]any{
				"n":    a.N(),
				"mean": report.SafeFloat(a.Mean()),
				"var":  report.SafeFloat(a.Variance()),
				"min":  report.SafeFloat(a.Min()),
				"max":  report.SafeFloat(a.Max()),
				"p50":  report.SafeFloat(rows[i].p50[k].Quantile()),
			}
		}
		if err := j.Emit(map[string]any{"kind": "row", "row": label, "metrics": metrics}); err != nil {
			return err
		}
	}
	for _, q := range quarantined {
		if err := j.Emit(map[string]any{
			"kind": "quarantined", "row": q.Row, "trial": q.Trial,
			"seed": q.Seed, "err": q.Err, "attempts": q.Attempts,
		}); err != nil {
			return err
		}
	}
	return f.Sync()
}
