package expt

import (
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Seed: 42, Trials: 1, Quick: true} }

func TestIDsComplete(t *testing.T) {
	ids := IDs()
	if len(ids) != 20 {
		t.Fatalf("registry has %d experiments: %v", len(ids), ids)
	}
	if ids[0] != "E1" || ids[len(ids)-1] != "E20" {
		t.Errorf("IDs order: %v", ids)
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("E99", quickCfg()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID:      "T",
		Title:   "demo",
		Claim:   "c",
		Columns: []string{"a", "long_column"},
		Notes:   []string{"a note"},
	}
	tbl.AddRow(1, 2.34567)
	tbl.AddRow("xyz", 0.5)
	out := tbl.Render()
	for _, want := range []string{"T — demo", "paper claim: c", "long_column", "2.35", "xyz", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestConfigTrialsDefault(t *testing.T) {
	if (Config{}).trials() != 3 {
		t.Error("default trials")
	}
	if (Config{Trials: 7}).trials() != 7 {
		t.Error("explicit trials")
	}
}

// Every experiment must run to completion in quick mode and produce a
// well-formed table. These are the integration smoke tests of the whole
// reproduction pipeline.
func TestAllExperimentsQuick(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tbl, err := Run(id, quickCfg())
			if err != nil {
				t.Fatalf("%s failed: %v", id, err)
			}
			if tbl.ID != id {
				t.Errorf("table ID %q", tbl.ID)
			}
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s produced no rows", id)
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Columns) {
					t.Errorf("%s row width %d != %d columns", id, len(row), len(tbl.Columns))
				}
			}
			if tbl.Render() == "" {
				t.Error("empty render")
			}
		})
	}
}

func TestByzCountHelper(t *testing.T) {
	if byzCount(256, 0.45) != 12 {
		t.Errorf("byzCount(256,0.45) = %d", byzCount(256, 0.45))
	}
	if byzCount(2, 2) != 1 { // clamped below n
		t.Errorf("clamp failed: %d", byzCount(2, 2))
	}
	if byzCount(10, -1) != 0 {
		t.Errorf("floor failed: %d", byzCount(10, -1))
	}
}

func TestFarMask(t *testing.T) {
	// Build via the E2 helper on a tiny graph.
	tbl, err := E2(Config{Seed: 1, Trials: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Errorf("E2 rows = %d", len(tbl.Rows))
	}
}
