package expt

// The deterministic substrate cache. Every substrate a trial runs on is
// drawn from a dedicated split stream, and xrand splitting is a pure
// function of (parent seed, label): the split stream's seed IS the
// identity of the draw sequence, so two cells whose generator streams
// carry the same seed would build byte-identical graphs. The cache keys
// on exactly that — (family, n, d, generator-stream seed) — and returns
// one immutable finalized graph for every cell of the key, instead of
// regenerating it per adversary/placement cell, per repeated run, or
// per benchmark iteration. Deterministic families (ring, torus, ...)
// ignore their stream entirely, so their key drops the seed and every
// trial of every cell at one scale shares a single build.
//
// Correctness: a cache hit skips the generator's draws from the split
// stream, which is observable only if the caller reuses that stream
// afterwards — no call site does (the stream is split off purely for
// the build, and cachedSubstrate's contract requires it). Graphs are
// never mutated after construction (enforced by convention and the
// race detector: lazy CSR/diameter views build under the graph's own
// synchronization), so sharing across concurrent (row, trial) cells is
// safe. Tables are byte-identical with the cache on or off — the golden
// cross-check in cache_test.go pins this for E1/E3/E15 across
// -parallel 1/8.
//
// Implicit families (Substrate.Implicit set) never reach this cache:
// building an implicit topology is a couple of field writes — strictly
// cheaper than the lock-and-lookup — and there is no CSR to share. Keys
// therefore never need an "implicit" dimension: the cache holds only
// materialized *graph.Graph builds.

import (
	"sync"
	"sync/atomic"

	"byzcount/internal/graph"
)

// substrateKey identifies one deterministic build.
type substrateKey struct {
	family string
	n, d   int
	seed   uint64 // generator stream seed; 0 for deterministic families
}

// maxCachedSubstrates bounds the cache's footprint: a full sweep touches
// a few dozen distinct (family, scale, seed) cells per experiment, and
// graphs at simulation scale are O(100KB), so this is a few hundred MB
// worst case shared process-wide. On overflow the whole map is dropped —
// correctness never depends on residency.
const maxCachedSubstrates = 512

var subCache = struct {
	sync.Mutex
	m       map[substrateKey]*graph.Graph
	enabled atomic.Bool
	hits    atomic.Int64
	misses  atomic.Int64
}{m: make(map[substrateKey]*graph.Graph)}

func init() { subCache.enabled.Store(true) }

// SetSubstrateCache enables or disables the substrate cache (enabled by
// default) and returns the previous setting. Disabling clears it. The
// switch exists for the golden cache-on/off table cross-checks and for
// A/B timing from the CLI — outputs are identical either way.
func SetSubstrateCache(on bool) bool {
	prev := subCache.enabled.Swap(on)
	if !on {
		subCache.Lock()
		subCache.m = make(map[substrateKey]*graph.Graph)
		subCache.Unlock()
	}
	return prev
}

// SubstrateCacheStats reports cumulative cache hits and misses (for
// tests and the bench harness).
func SubstrateCacheStats() (hits, misses int64) {
	return subCache.hits.Load(), subCache.misses.Load()
}

// cachedSubstrate returns the graph the build function would produce,
// reusing a previous identical build when possible. seed must be the
// build's generator-stream seed (ignored when deterministic is true),
// and build must draw from nothing but that stream. Concurrent misses
// on the same key may build twice; the first stored build wins, and both
// are byte-identical by construction.
func cachedSubstrate(family string, n, d int, seed uint64, deterministic bool,
	build func() (*graph.Graph, error)) (*graph.Graph, error) {
	if !subCache.enabled.Load() {
		return build()
	}
	key := substrateKey{family: family, n: n, d: d}
	if !deterministic {
		key.seed = seed
	}
	subCache.Lock()
	g, ok := subCache.m[key]
	subCache.Unlock()
	if ok {
		subCache.hits.Add(1)
		return g, nil
	}
	subCache.misses.Add(1)
	g, err := build()
	if err != nil {
		return nil, err
	}
	subCache.Lock()
	if prev, ok := subCache.m[key]; ok {
		g = prev // a concurrent identical build won the race
	} else {
		if len(subCache.m) >= maxCachedSubstrates {
			subCache.m = make(map[substrateKey]*graph.Graph)
		}
		subCache.m[key] = g
	}
	subCache.Unlock()
	return g, nil
}
