package expt

import (
	"fmt"
	"math"

	"byzcount/internal/counting"
	"byzcount/internal/stats"
	"byzcount/internal/xrand"
)

// E16-E18 are the cross-product cells the scenario layer unlocks:
// Byzantine adversaries on churning topologies. Before the composition
// refactor these were inexpressible — every adversary was hard-coded
// against a static graph and the CLI rejected -byz together with
// -churn.

// congestBand reports the decided/bounded fractions and estimate list
// over the honest members of a churn outcome, against the CONGEST
// estimate band [0.5*log_d n, 2*log_d n + 2].
func congestBand(r *ScenarioOutcome, n, d int) (decided, bounded float64, ests []int) {
	logd := counting.LogD(n, d)
	honestTotal, dec, bnd := 0, 0, 0
	for i, o := range r.Outcomes {
		if !r.Honest[i] {
			continue
		}
		honestTotal++
		if !o.Decided {
			continue
		}
		dec++
		ests = append(ests, o.Estimate)
		if float64(o.Estimate) >= 0.5*logd && float64(o.Estimate) <= 2*logd+2 {
			bnd++
		}
	}
	if honestTotal == 0 {
		return 0, 0, nil
	}
	return float64(dec) / float64(honestTotal), float64(bnd) / float64(honestTotal), ests
}

// E16 — extension: the two halves of the reproduction finally meet —
// CONGEST counting under beacon spam while the membership churns. The
// Byzantine fraction is maintained by the roster as joiners arrive, so
// the adversary neither dilutes away nor accumulates.
func E16(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E16",
		Title:   "Extension: CONGEST counting under beacon spam AND join/leave churn",
		Claim:   "Theorem 2 + Section 1 motivation combined: the guarantee should degrade gracefully when the Byzantine fraction is maintained while membership churns",
		Columns: []string{"churn/round", "turnover", "byz_frac_end", "decided_frac", "bounded_frac", "mode"},
	}
	const d = 8
	const byzFrac = 0.05
	n := 256
	if cfg.Quick {
		n = 128
	}
	root := xrand.New(cfg.Seed)
	perRounds := []int{0, 1, 2, 4}
	type res struct {
		turnover, byzFrac, decided, bounded float64
		ests                                []int
	}
	results, err := sweepRows(cfg, root, perRounds,
		func(perRound int) string { return fmt.Sprintf("e16-%d", perRound) },
		func(perRound, trial int, rng *xrand.Rand) (res, error) {
			r, err := RunScenario(Scenario{
				Proto: "congest", Substrate: "hnd", Dynamic: true,
				Adversary: "spam", Placement: "random",
				N: n, D: d, ByzFrac: byzFrac, MaxPhase: 8,
				Churn: ChurnProfile{Leaves: perRound, Joins: perRound, StopAfter: 150, Mixed: true},
			}, rng, RunOptions{})
			if err != nil {
				return res{}, err
			}
			out := res{
				turnover: float64(r.Runner.Left()) / float64(n),
				byzFrac:  r.Roster.Fraction(),
			}
			out.decided, out.bounded, out.ests = congestBand(r, n, d)
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	for i, perRound := range perRounds {
		rs := results[i]
		hist := stats.NewHistogram()
		for _, r := range rs {
			for _, e := range r.ests {
				hist.Add(e)
			}
		}
		mode, _ := hist.Mode()
		t.AddRow(perRound,
			stats.Mean(column(rs, func(r res) float64 { return r.turnover })),
			stats.Mean(column(rs, func(r res) float64 { return r.byzFrac })),
			stats.Mean(column(rs, func(r res) float64 { return r.decided })),
			stats.Mean(column(rs, func(r res) float64 { return r.bounded })),
			mode)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("the roster maintains a %.0f%% Byzantine fraction: each joiner's allegiance is drawn from the scenario's split stream (drift-free rule), so byz_frac_end stays at the target under any turnover", 100*byzFrac),
		"churn stops at round 150 so the protocol can quiesce; metrics are over honest nodes alive at the end")
	return t, nil
}

// E17 — extension: placement sensitivity under churn. Clustering is the
// worst case on a static graph (E12); under membership turnover the
// roster's random re-placement of joiners erodes the initial cluster,
// so the placement families should converge as churn increases.
func E17(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E17",
		Title:   "Extension: adversarial placement sensitivity under churn",
		Claim:   "Remark 1 under turnover: the initial placement's structure (clustered vs spread) washes out as departures hit it and joiners are re-placed at random",
		Columns: []string{"placement", "churn/round", "byz_frac_end", "decided_frac", "bounded_frac"},
	}
	const d = 8
	const byzFrac = 0.05
	n := 256
	if cfg.Quick {
		n = 128
	}
	root := xrand.New(cfg.Seed)
	type cell struct {
		placement string
		perRound  int
	}
	var cells []cell
	for _, pl := range []string{"random", "clustered", "spread"} {
		for _, perRound := range []int{0, 2} {
			cells = append(cells, cell{pl, perRound})
		}
	}
	type res struct {
		byzFrac, decided, bounded float64
	}
	results, err := sweepRows(cfg, root, cells,
		func(c cell) string { return fmt.Sprintf("e17-%s-%d", c.placement, c.perRound) },
		func(c cell, trial int, rng *xrand.Rand) (res, error) {
			r, err := RunScenario(Scenario{
				Proto: "congest", Substrate: "hnd", Dynamic: true,
				Adversary: "spam", Placement: c.placement,
				N: n, D: d, ByzFrac: byzFrac, MaxPhase: 8,
				Churn: ChurnProfile{Leaves: c.perRound, Joins: c.perRound, StopAfter: 150, Mixed: true},
			}, rng, RunOptions{})
			if err != nil {
				return res{}, err
			}
			out := res{byzFrac: r.Roster.Fraction()}
			out.decided, out.bounded, _ = congestBand(r, n, d)
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		rs := results[i]
		t.AddRow(c.placement, c.perRound,
			stats.Mean(column(rs, func(r res) float64 { return r.byzFrac })),
			stats.Mean(column(rs, func(r res) float64 { return r.decided })),
			stats.Mean(column(rs, func(r res) float64 { return r.bounded })))
	}
	t.Notes = append(t.Notes,
		"churn=0 rows reproduce the static placement gap (E12) on the dynamic substrate; churn=2 rows show it eroding as the roster re-places joiners uniformly")
	return t, nil
}

// E18 — extension: the Section 1.2 baselines collapse when a SINGLE
// Byzantine node joins mid-run, while the paper's protocol shrugs it
// off — the strongest form of the motivation, because the adversary
// does not even have to be present at the start.
func E18(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E18",
		Title:   "Extension: baseline collapse under a single Byzantine joiner",
		Claim:   "Section 1.2 under churn: one adversarial arrival mid-run poisons the geometric/support/KMV baselines for good; Algorithm 2's blacklisting confines it",
		Columns: []string{"protocol", "byz_joiners", "median_est", "truth", "relative_error"},
	}
	const d = 8
	n := 256
	if cfg.Quick {
		n = 128
	}
	root := xrand.New(cfg.Seed)
	truthLog2 := counting.Log2(n)
	type row struct {
		name       string
		byzJoiners int
		truth      float64
		sc         Scenario
	}
	mk := func(name string, byzJoiners int, truth float64, sc Scenario) row {
		sc.N, sc.D, sc.ByzJoiners = n, d, byzJoiners
		sc.Substrate, sc.Dynamic = "hnd", true
		sc.Churn = ChurnProfile{Leaves: 1, Joins: 1, StopAfter: 100, Mixed: true}
		return row{name, byzJoiners, truth, sc}
	}
	rows := []row{
		mk("geometric", 0, truthLog2, Scenario{Proto: "geometric", Adversary: "geo-max", MaxRounds: 2000}),
		mk("geometric", 1, truthLog2, Scenario{Proto: "geometric", Adversary: "geo-max", MaxRounds: 2000}),
		mk("support", 0, truthLog2, Scenario{Proto: "support", Adversary: "support-min", MaxRounds: 2000}),
		mk("support", 1, truthLog2, Scenario{Proto: "support", Adversary: "support-min", MaxRounds: 2000}),
		mk("birthday-kmv", 0, truthLog2, Scenario{Proto: "kmv", Adversary: "kmv-poison", MaxRounds: 2000}),
		mk("birthday-kmv", 1, truthLog2, Scenario{Proto: "kmv", Adversary: "kmv-poison", MaxRounds: 2000}),
		mk("congest(paper)", 0, counting.LogD(n, d), Scenario{Proto: "congest", Adversary: "spam", MaxPhase: 8}),
		mk("congest(paper)", 1, counting.LogD(n, d), Scenario{Proto: "congest", Adversary: "spam", MaxPhase: 8}),
	}
	results, err := sweepRows(cfg, root, rows,
		func(rw row) string { return fmt.Sprintf("e18-%s-%d", rw.name, rw.byzJoiners) },
		func(rw row, trial int, rng *xrand.Rand) (float64, error) {
			r, err := RunScenario(rw.sc, rng, RunOptions{})
			if err != nil {
				return 0, err
			}
			vals := counting.DecidedEstimates(r.Outcomes, r.Honest)
			return stats.Median(stats.Ints(vals)), nil
		})
	if err != nil {
		return nil, err
	}
	for i, rw := range rows {
		med := stats.Mean(results[i])
		relErr := math.Abs(med-rw.truth) / math.Max(rw.truth, 1)
		t.AddRow(rw.name, rw.byzJoiners, med, rw.truth, relErr)
	}
	t.Notes = append(t.Notes,
		"every run churns 1 leave + 1 join per round until round 100; byz_joiners=1 turns exactly the first arrival Byzantine (Scenario.ByzJoiners), everything else stays honest",
		"the baseline poisons are sticky (max/min/sketch floods), so one mid-run arrival corrupts the surviving members' estimates for good")
	return t, nil
}
