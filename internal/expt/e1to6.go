package expt

import (
	"fmt"
	"math"

	"byzcount/internal/byzantine"
	"byzcount/internal/counting"
	"byzcount/internal/graph"
	"byzcount/internal/sim"
	"byzcount/internal/stats"
	"byzcount/internal/xrand"
)

// E1 — Theorem 1: the deterministic LOCAL algorithm decides in O(log n)
// rounds and n-o(n) good nodes land within the approximation band, under
// a consistent fake-network adversary with B = n^0.45 nodes.
func E1(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: "Deterministic LOCAL counting: rounds and approximation vs n",
		Claim: "Theorem 1: O(log n) rounds; n-o(n) good nodes decide a constant-factor estimate of log n under n^(1-gamma) Byzantine nodes",
		Columns: []string{"n", "diam", "log2(n)", "B", "benign_mean", "attack_mean",
			"attack_bounded_frac", "rounds"},
	}
	const d = 8
	delta := d + 2
	root := xrand.New(cfg.Seed)
	ns := nSweep(cfg, []int{64, 128, 256, 512}, []int{64, 128})
	type res struct {
		diam, benignMean, attackMean, boundedFrac, rounds float64
	}
	results, err := sweepRows(cfg, root, ns,
		func(n int) string { return fmt.Sprintf("e1-n%d", n) },
		func(n, trial int, rng *xrand.Rand) (res, error) {
			g, err := hnd(n, d, rng.Split("graph"))
			if err != nil {
				return res{}, err
			}
			diam, err := g.Diameter()
			if err != nil {
				return res{}, err
			}
			params := counting.DefaultLocalParams(delta)

			benign, err := runProtocol(g, nil, rng.Split("benign").Uint64(),
				func(v int, eng *sim.Engine) sim.Proc { return counting.NewLocalProc(params) },
				nil2byz, params.MaxRounds+8, true)
			if err != nil {
				return res{}, err
			}

			b := byzCount(n, 0.45)
			byz, err := byzantine.RandomPlacement(g, b, rng.Split("place"))
			if err != nil {
				return res{}, err
			}
			world, err := byzantine.NewFakeWorld(2*n, d, delta, b, rng.Split("world"))
			if err != nil {
				return res{}, err
			}
			attack, err := runProtocol(g, byz, rng.Split("attack").Uint64(),
				func(v int, eng *sim.Engine) sim.Proc { return counting.NewLocalProc(params) },
				func(v int, eng *sim.Engine) sim.Proc { return byzantine.NewFakeNetworkLocal(world, 1) },
				params.MaxRounds+8, true)
			if err != nil {
				return res{}, err
			}
			return res{
				diam:       float64(diam),
				benignMean: meanEstimate(benign),
				attackMean: meanEstimate(attack),
				boundedFrac: counting.FractionWithinFactor(attack.outcomes, attack.honest,
					1, float64(diam+3)),
				rounds: float64(attack.rounds),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	for i, n := range ns {
		rs := results[i]
		t.AddRow(n, stats.Mean(column(rs, func(r res) float64 { return r.diam })),
			counting.Log2(n), byzCount(n, 0.45),
			stats.Mean(column(rs, func(r res) float64 { return r.benignMean })),
			stats.Mean(column(rs, func(r res) float64 { return r.attackMean })),
			stats.Mean(column(rs, func(r res) float64 { return r.boundedFrac })),
			stats.Mean(column(rs, func(r res) float64 { return r.rounds })))
	}
	t.Notes = append(t.Notes,
		"bounded = estimate within [1, diam+3]; rounds and estimates must grow with log n")
	return t, nil
}

// nil2byz is a placeholder byzProc for runs without Byzantine nodes.
func nil2byz(v int, eng *sim.Engine) sim.Proc { return byzantine.Silent{} }

// E2 — Theorem 1 tolerance sweep: vary gamma (so B = n^(1-gamma)) with
// worst-case clustered placement.
func E2(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "LOCAL algorithm tolerance: Byzantine budget sweep (clustered placement)",
		Claim:   "Theorem 1: up to n^(1-gamma) adversarial nodes for any fixed gamma > 0; the o(n) nodes near the adversary are forfeit (Remark 1)",
		Columns: []string{"gamma", "B", "decided_frac", "bounded_frac", "mean_est", "far_mean_est"},
	}
	const d = 8
	delta := d + 2
	n := 256
	if cfg.Quick {
		n = 128
	}
	root := xrand.New(cfg.Seed)
	gammas := []float64{0.9, 0.7, 0.5, 0.35}
	type res struct {
		decided, bounded, meanAll, meanFar float64
		hasFar                             bool
	}
	results, err := sweepRows(cfg, root, gammas,
		func(gamma float64) string { return fmt.Sprintf("e2-g%.2f", gamma) },
		func(gamma float64, trial int, rng *xrand.Rand) (res, error) {
			b := byzCount(n, 1-gamma)
			g, err := hnd(n, d, rng.Split("graph"))
			if err != nil {
				return res{}, err
			}
			diam, err := g.Diameter()
			if err != nil {
				return res{}, err
			}
			byz, err := byzantine.ClusteredPlacement(g, b, rng.Split("place"))
			if err != nil {
				return res{}, err
			}
			world, err := byzantine.NewFakeWorld(2*n, d, delta, max(b, 1), rng.Split("world"))
			if err != nil {
				return res{}, err
			}
			params := counting.DefaultLocalParams(delta)
			r, err := runProtocol(g, byz, rng.Split("run").Uint64(),
				func(v int, eng *sim.Engine) sim.Proc { return counting.NewLocalProc(params) },
				func(v int, eng *sim.Engine) sim.Proc { return byzantine.NewFakeNetworkLocal(world, 1) },
				params.MaxRounds+8, true)
			if err != nil {
				return res{}, err
			}
			out := res{
				decided: counting.DecidedFraction(r.outcomes, r.honest),
				bounded: counting.FractionWithinFactor(r.outcomes, r.honest,
					1, float64(diam+3)),
				meanAll: meanEstimate(r),
			}
			// "Far" nodes: distance > 2 from every Byzantine vertex — the
			// Good set of Lemma 1 at this scale.
			far := farMask(g, byz, 2)
			var fsum float64
			var fcnt int
			for v, o := range r.outcomes {
				if r.honest[v] && far[v] && o.Decided {
					fsum += float64(o.Estimate)
					fcnt++
				}
			}
			if fcnt > 0 {
				out.meanFar = fsum / float64(fcnt)
				out.hasFar = true
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	for i, gamma := range gammas {
		rs := results[i]
		t.AddRow(gamma, byzCount(n, 1-gamma),
			stats.Mean(column(rs, func(r res) float64 { return r.decided })),
			stats.Mean(column(rs, func(r res) float64 { return r.bounded })),
			stats.Mean(column(rs, func(r res) float64 { return r.meanAll })),
			stats.Mean(columnIf(rs, func(r res) bool { return r.hasFar },
				func(r res) float64 { return r.meanFar })))
	}
	return t, nil
}

// farMask marks vertices farther than radius from every Byzantine vertex.
func farMask(g *graph.Graph, byz []bool, radius int) []bool {
	far := make([]bool, g.N())
	for i := range far {
		far[i] = true
	}
	for v, isByz := range byz {
		if !isByz {
			continue
		}
		for w, dist := range g.BFSLimited(v, radius) {
			if dist != graph.Unreachable {
				far[w] = false
			}
		}
	}
	return far
}

// E3 — Theorem 2: the randomized CONGEST algorithm under beacon spam.
func E3(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E3",
		Title: "Randomized CONGEST counting under beacon spam vs n",
		Claim: "Theorem 2: O(B(n) log^2 n) rounds; >= (1-beta)n nodes decide a constant-factor estimate of log n whp, B(n)=n^(1/2-xi)",
		Columns: []string{"n", "logd(n)", "B", "decided_frac", "bounded_frac",
			"sacrificed_frac", "median_round", "T_round", "T/(B*log2^2 n)"},
	}
	const d = 8
	root := xrand.New(cfg.Seed)
	ns := nSweep(cfg, []int{128, 256, 512, 1024}, []int{64, 128})
	type res struct {
		decided, bounded, sacrificed, median, tRound float64
	}
	results, err := sweepRows(cfg, root, ns,
		func(n int) string { return fmt.Sprintf("e3-n%d", n) },
		func(n, trial int, rng *xrand.Rand) (res, error) {
			b := byzCount(n, 0.45)
			// One cell of the scenario grid: the spec lines up with the
			// axes (protocol, substrate, adversary, placement, scale) and
			// RunScenario reproduces the hand-wired runner byte-for-byte.
			r, err := RunScenario(Scenario{
				Proto: "congest", Substrate: "hnd",
				Adversary: "spam", Placement: "random",
				N: n, D: d, Byz: b, MaxPhase: 9, StopFrac: 1,
			}, rng, RunOptions{})
			if err != nil {
				return res{}, err
			}
			logd := counting.LogD(n, d)
			maxPhase := 9.0
			out := res{
				decided: counting.DecidedFraction(r.Outcomes, r.Honest),
				bounded: counting.FractionWithinFactor(r.Outcomes, r.Honest,
					0.5*logd, 2*logd+2),
				// The sacrificed set: nodes dragged to the phase cap, i.e.
				// (essentially) the spammers' direct neighbors. Its fraction
				// is the beta of Theorem 2 and must shrink as n grows
				// (B*d/n ~ d*n^-0.55).
				sacrificed: counting.FractionWithinFactor(r.Outcomes, r.Honest,
					maxPhase, 1e18),
			}
			var rounds []float64
			for v, o := range r.Outcomes {
				if !r.Honest[v] || !o.Decided {
					continue
				}
				rounds = append(rounds, float64(o.Round))
				// T of Definition 2 for the (1-beta)n guaranteed nodes:
				// the latest decision among nodes inside the estimate
				// band (the sacrificed cap-hitters are the beta fraction
				// the theorem excludes).
				if float64(o.Estimate) >= 0.5*logd && float64(o.Estimate) <= 2*logd+2 {
					if float64(o.Round) > out.tRound {
						out.tRound = float64(o.Round)
					}
				}
			}
			out.median = stats.Median(rounds)
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	for i, n := range ns {
		rs := results[i]
		b := byzCount(n, 0.45)
		log2 := counting.Log2(n)
		tRounds := column(rs, func(r res) float64 { return r.tRound })
		norm := stats.Mean(tRounds) / (float64(max(b, 1)) * log2 * log2)
		t.AddRow(n, counting.LogD(n, d), b,
			stats.Mean(column(rs, func(r res) float64 { return r.decided })),
			stats.Mean(column(rs, func(r res) float64 { return r.bounded })),
			stats.Mean(column(rs, func(r res) float64 { return r.sacrificed })),
			stats.Mean(column(rs, func(r res) float64 { return r.median })),
			stats.Mean(tRounds), norm)
	}
	t.Notes = append(t.Notes,
		"median_round = median decision round among honest nodes; T_round = latest decision among in-band nodes (the T of Definition 2 for the (1-beta)n guaranteed deciders)",
		"T/(B*log2^2 n) staying O(1)-bounded reproduces the O(B log^2 n) round bound's shape",
		"sacrificed_frac is the measured beta: nodes at the phase cap, ~ the spammers' direct neighbors (B*d/n -> 0)")
	return t, nil
}

// E4 — Remark 2: distribution of decided estimates, benign vs attacked.
func E4(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "CONGEST estimate distribution: benign vs beacon spam",
		Claim:   "Remark 2: estimates may differ per node by a constant factor but are upper-bounded by ~log n; most nodes agree within +-1",
		Columns: []string{"scenario", "mode", "frac_within_1_of_mode", "min", "max", "histogram"},
	}
	const d = 8
	n := 512
	if cfg.Quick {
		n = 128
	}
	root := xrand.New(cfg.Seed)

	type scen struct {
		label   string
		withByz bool
	}
	scens := []scen{
		{"benign", false},
		{"spam_B=" + fmt.Sprint(byzCount(n, 0.45)), true},
	}
	results, err := sweepRows(cfg, root, scens,
		func(s scen) string { return "e4-" + s.label },
		func(s scen, trial int, rng *xrand.Rand) ([]int, error) {
			g, err := hnd(n, d, rng.Split("graph"))
			if err != nil {
				return nil, err
			}
			var byz []bool
			if s.withByz {
				byz, err = byzantine.RandomPlacement(g, byzCount(n, 0.45), rng.Split("place"))
				if err != nil {
					return nil, err
				}
			}
			params := counting.DefaultCongestParams(d)
			params.MaxPhase = 12
			r, err := runProtocol(g, byz, rng.Split("run").Uint64(),
				func(v int, eng *sim.Engine) sim.Proc { return counting.NewCongestProc(params) },
				func(v int, eng *sim.Engine) sim.Proc {
					return byzantine.NewBeaconSpammer(params.Schedule, 6, false, rng.SplitN("spam", v))
				},
				congestMaxRounds(params), true)
			if err != nil {
				return nil, err
			}
			return counting.DecidedEstimates(r.outcomes, r.honest), nil
		})
	if err != nil {
		return nil, err
	}
	for i, s := range scens {
		hist := stats.NewHistogram()
		for _, ests := range results[i] {
			for _, e := range ests {
				hist.Add(e)
			}
		}
		mode, _ := hist.Mode()
		t.AddRow(s.label, mode, hist.Fraction(mode-1, mode+1),
			hist.Buckets()[0], hist.Buckets()[len(hist.Buckets())-1], hist.String())
	}
	return t, nil
}

// E5 — Corollary 1: the benign case terminates fast and agrees.
func E5(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E5",
		Title: "Benign CONGEST run: termination, agreement, message size vs n",
		Claim: "Corollary 1: with no Byzantine nodes the algorithm terminates in O(log n) rounds, Omega(n) nodes decide ~ceil(log n), and all messages stay small",
		Columns: []string{"n", "logd(n)", "rounds_to_halt", "rounds/log2(n)",
			"mode", "frac_within_1", "max_msg_bits"},
	}
	const d = 8
	root := xrand.New(cfg.Seed)
	ns := nSweep(cfg, []int{128, 256, 512, 1024, 2048}, []int{64, 128})
	type res struct {
		rounds, frac, maxBits, mode float64
	}
	results, err := sweepRows(cfg, root, ns,
		func(n int) string { return fmt.Sprintf("e5-n%d", n) },
		func(n, trial int, rng *xrand.Rand) (res, error) {
			g, err := hnd(n, d, rng.Split("graph"))
			if err != nil {
				return res{}, err
			}
			params := counting.DefaultCongestParams(d)
			r, err := runProtocol(g, nil, rng.Split("run").Uint64(),
				func(v int, eng *sim.Engine) sim.Proc { return counting.NewCongestProc(params) },
				nil2byz, congestMaxRounds(params), false) // run to full halt
			if err != nil {
				return res{}, err
			}
			hist := stats.NewHistogram()
			for _, e := range counting.DecidedEstimates(r.outcomes, r.honest) {
				hist.Add(e)
			}
			mode, _ := hist.Mode()
			return res{
				rounds:  float64(r.rounds),
				frac:    hist.Fraction(mode-1, mode+1),
				maxBits: float64(r.metrics.MaxMsgBits),
				mode:    float64(mode),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	for i, n := range ns {
		rs := results[i]
		roundss := column(rs, func(r res) float64 { return r.rounds })
		t.AddRow(n, counting.LogD(n, d), stats.Mean(roundss),
			stats.Mean(roundss)/counting.Log2(n),
			stats.Mean(column(rs, func(r res) float64 { return r.mode })),
			stats.Mean(column(rs, func(r res) float64 { return r.frac })),
			stats.Mean(column(rs, func(r res) float64 { return r.maxBits })))
	}
	return t, nil
}

// E6 — baselines collapse under one Byzantine node; the paper's protocol
// does not.
func E6(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "Baseline protocols vs a single Byzantine node",
		Claim:   "Section 1.2: the geometric / support-estimation / spanning-tree protocols are exact benignly but fail with even one Byzantine node",
		Columns: []string{"protocol", "byz", "median_estimate", "truth", "relative_error"},
	}
	const d = 8
	n := 256
	if cfg.Quick {
		n = 128
	}
	root := xrand.New(cfg.Seed)
	truthLog2 := counting.Log2(n)

	// Each row is one cell of the scenario grid: the baseline protocols
	// and their one-node killers are just (protocol, adversary) axis
	// values, decided estimates post-processed per protocol family.
	medianEst := func(r *ScenarioOutcome) float64 {
		vals := counting.DecidedEstimates(r.Outcomes, r.Honest)
		return stats.Median(stats.Ints(vals))
	}
	logMedianEst := func(r *ScenarioOutcome) float64 {
		vals := counting.DecidedEstimates(r.Outcomes, r.Honest)
		if len(vals) == 0 {
			return 0
		}
		return math.Log2(math.Max(1, stats.Median(stats.Ints(vals))))
	}
	type row struct {
		name  string
		byz   int
		truth float64
		sc    Scenario
		post  func(*ScenarioOutcome) float64
	}
	mk := func(name string, byz int, truth float64, sc Scenario, post func(*ScenarioOutcome) float64) row {
		sc.N, sc.D, sc.Byz = n, d, byz
		return row{name, byz, truth, sc, post}
	}
	rows := []row{
		mk("geometric", 0, truthLog2, Scenario{Proto: "geometric", Adversary: "geo-max", MaxRounds: 4000}, medianEst),
		mk("geometric", 1, truthLog2, Scenario{Proto: "geometric", Adversary: "geo-max", MaxRounds: 4000}, medianEst),
		mk("support", 0, truthLog2, Scenario{Proto: "support", Adversary: "support-min", MaxRounds: 4000}, medianEst),
		mk("support", 1, truthLog2, Scenario{Proto: "support", Adversary: "support-min", MaxRounds: 4000}, medianEst),
		mk("birthday-kmv", 0, truthLog2, Scenario{Proto: "kmv", Adversary: "kmv-poison", MaxRounds: 4000}, medianEst),
		mk("birthday-kmv", 1, truthLog2, Scenario{Proto: "kmv", Adversary: "kmv-poison", MaxRounds: 4000}, medianEst),
		mk("return-walk", 0, truthLog2, Scenario{Proto: "walk", Adversary: "silent"}, medianEst), // walk absorber
		mk("return-walk", 4, truthLog2, Scenario{Proto: "walk", Adversary: "silent"}, medianEst),
		mk("spanning-tree", 0, truthLog2, Scenario{Proto: "tree", Adversary: "tree-inflate"}, logMedianEst),
		mk("spanning-tree", 1, truthLog2, Scenario{Proto: "tree", Adversary: "tree-inflate"}, logMedianEst),
		mk("congest(paper)", 0, counting.LogD(n, d),
			Scenario{Proto: "congest", Adversary: "spam-shared", MaxPhase: 12, StopFrac: 1}, medianEst),
		mk("congest(paper)", byzCount(n, 0.45), counting.LogD(n, d),
			Scenario{Proto: "congest", Adversary: "spam-shared", MaxPhase: 12, StopFrac: 1}, medianEst),
	}
	results, err := sweepRows(cfg, root, rows,
		func(rw row) string { return fmt.Sprintf("e6-%s-%d", rw.name, rw.byz) },
		func(rw row, trial int, rng *xrand.Rand) (float64, error) {
			r, err := RunScenario(rw.sc, rng, RunOptions{})
			if err != nil {
				return 0, err
			}
			return rw.post(r), nil
		})
	if err != nil {
		return nil, err
	}
	for i, rw := range rows {
		med := stats.Mean(results[i])
		relErr := math.Abs(med-rw.truth) / math.Max(rw.truth, 1)
		t.AddRow(rw.name, rw.byz, med, rw.truth, relErr)
	}
	t.Notes = append(t.Notes,
		"spanning-tree medians are log2 of the counted total; the congest protocol estimates log_d n")
	return t, nil
}

// findRoot picks the lowest-index honest vertex as the tree-count root.
func findRoot(byz []bool) int {
	if byz == nil {
		return 0
	}
	for v, b := range byz {
		if !b {
			return v
		}
	}
	return 0
}
