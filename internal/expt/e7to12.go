package expt

import (
	"fmt"
	"math"

	"byzcount/internal/agreement"
	"byzcount/internal/byzantine"
	"byzcount/internal/counting"
	"byzcount/internal/graph"
	"byzcount/internal/sim"
	"byzcount/internal/stats"
	"byzcount/internal/xrand"
)

// E7 — the blacklist ablation: with the mechanism of lines 20-32 off,
// beacon spam drags every node to the phase cap.
func E7(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "Blacklisting ablation under beacon spam",
		Claim:   "Section 5: without blacklisting, Byzantine nodes keep generating beacons and good nodes overshoot log n before deciding",
		Columns: []string{"blacklist", "decided_frac", "mean_est", "inflated_frac", "rounds"},
	}
	const d = 8
	n := 128
	root := xrand.New(cfg.Seed)
	disables := []bool{false, true}
	type res struct {
		decided, meanEst, inflated, rounds float64
	}
	results, err := sweepRows(cfg, root, disables,
		func(disable bool) string { return fmt.Sprintf("e7-%v", disable) },
		func(disable bool, trial int, rng *xrand.Rand) (res, error) {
			g, err := hnd(n, d, rng.Split("graph"))
			if err != nil {
				return res{}, err
			}
			byz, err := byzantine.RandomPlacement(g, 2, rng.Split("place"))
			if err != nil {
				return res{}, err
			}
			params := counting.DefaultCongestParams(d)
			params.MaxPhase = 8
			params.DisableBlacklist = disable
			r, err := runProtocol(g, byz, rng.Split("run").Uint64(),
				func(v int, eng *sim.Engine) sim.Proc { return counting.NewCongestProc(params) },
				func(v int, eng *sim.Engine) sim.Proc {
					return byzantine.NewBeaconSpammer(params.Schedule, 6, false, rng.SplitN("spam", v))
				},
				congestMaxRounds(params), true)
			if err != nil {
				return res{}, err
			}
			return res{
				decided: counting.DecidedFraction(r.outcomes, r.honest),
				meanEst: meanEstimate(r),
				inflated: counting.FractionWithinFactor(r.outcomes, r.honest,
					float64(params.MaxPhase), 1e18),
				rounds: float64(r.rounds),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	for i, disable := range disables {
		rs := results[i]
		label := "on"
		if disable {
			label = "off"
		}
		t.AddRow(label,
			stats.Mean(column(rs, func(r res) float64 { return r.decided })),
			stats.Mean(column(rs, func(r res) float64 { return r.meanEst })),
			stats.Mean(column(rs, func(r res) float64 { return r.inflated })),
			stats.Mean(column(rs, func(r res) float64 { return r.rounds })))
	}
	return t, nil
}

// E8 — Lemma 2: the locally tree-like fraction in H(n,d).
func E8(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "Locally tree-like nodes in H(n,d)",
		Claim:   "Lemma 2: whp at least n - O(n^0.8) nodes are locally tree-like at radius log(n)/(10 log d)",
		Columns: []string{"n", "d", "radius", "treelike_frac", "1 - n^-0.2 (predicted floor)"},
	}
	root := xrand.New(cfg.Seed)
	ns := nSweep(cfg, []int{256, 512, 1024, 2048, 4096}, []int{256, 512})
	type row struct{ n, d int }
	var rows []row
	for _, n := range ns {
		for _, d := range []int{8, 16} {
			rows = append(rows, row{n, d})
		}
	}
	results, err := sweepRows(cfg, root, rows,
		func(rw row) string { return fmt.Sprintf("e8-%d-%d", rw.n, rw.d) },
		func(rw row, trial int, rng *xrand.Rand) (float64, error) {
			// Historical derivation: E8 builds from the trial stream
			// itself (not a "graph" split), and its published tables pin
			// that. The stream still satisfies hnd's substrate-cache
			// contract — it is dedicated to the build — so NOTHING else
			// in this closure may draw from rng, before or after.
			g, err := hnd(rw.n, rw.d, rng)
			if err != nil {
				return 0, err
			}
			return g.TreeLikeFraction(graph.TreeLikeRadius(rw.n, rw.d), rw.d), nil
		})
	if err != nil {
		return nil, err
	}
	for i, rw := range rows {
		r := graph.TreeLikeRadius(rw.n, rw.d)
		floor := 1 - 1/math.Pow(float64(rw.n), 0.2)
		t.AddRow(rw.n, rw.d, r, stats.Mean(results[i]), floor)
	}
	t.Notes = append(t.Notes,
		"the O() in Lemma 2 hides a constant; the trend (fraction -> 1 as n grows) is the claim under test")
	return t, nil
}

// E9 — message-size contrast between the two algorithms.
func E9(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "Message sizes: LOCAL vs CONGEST",
		Claim:   "Section 1: Algorithm 1 needs polynomially large messages; Algorithm 2 keeps (most) messages at O(log n) bits",
		Columns: []string{"n", "local_total_Mbit", "local_bits_per_node", "congest_max_bits", "congest_total_Mbit"},
	}
	const d = 8
	root := xrand.New(cfg.Seed)
	ns := nSweep(cfg, []int{64, 128, 256, 512}, []int{64, 128})
	type res struct {
		localTotal, congestMax, congestTotal float64
	}
	results, err := sweepRows(cfg, root, ns,
		func(n int) string { return fmt.Sprintf("e9-n%d", n) },
		func(n, trial int, rng *xrand.Rand) (res, error) {
			g, err := hnd(n, d, rng.Split("graph"))
			if err != nil {
				return res{}, err
			}
			lp := counting.DefaultLocalParams(d)
			lres, err := runProtocol(g, nil, rng.Split("l").Uint64(),
				func(v int, eng *sim.Engine) sim.Proc { return counting.NewLocalProc(lp) },
				nil2byz, lp.MaxRounds+8, true)
			if err != nil {
				return res{}, err
			}
			cp := counting.DefaultCongestParams(d)
			cres, err := runProtocol(g, nil, rng.Split("c").Uint64(),
				func(v int, eng *sim.Engine) sim.Proc { return counting.NewCongestProc(cp) },
				nil2byz, congestMaxRounds(cp), false)
			if err != nil {
				return res{}, err
			}
			return res{
				localTotal:   float64(lres.metrics.Bits),
				congestMax:   float64(cres.metrics.MaxMsgBits),
				congestTotal: float64(cres.metrics.Bits),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	for i, n := range ns {
		rs := results[i]
		lt := stats.Mean(column(rs, func(r res) float64 { return r.localTotal }))
		t.AddRow(n, lt/1e6, lt/float64(n),
			stats.Mean(column(rs, func(r res) float64 { return r.congestMax })),
			stats.Mean(column(rs, func(r res) float64 { return r.congestTotal }))/1e6)
	}
	t.Notes = append(t.Notes,
		"local_bits_per_node grows ~linearly in n (each node ships the whole topology); congest_max_bits grows ~logarithmically")
	return t, nil
}

// E10 — Theorem 3: without expansion, sizes are indistinguishable.
func E10(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E10",
		Title:   "Impossibility without expansion: dumbbell with a Byzantine bridge",
		Claim:   "Theorem 3: with one Byzantine cut node and no expansion, nodes cannot approximate log n — side A's estimates are identical whatever hides behind the bridge",
		Columns: []string{"n_left", "n_right", "true_log2(total)", "exp_estimate", "left_mean_est", "right_mean_est"},
	}
	const d = 8
	nLeft := 128
	if cfg.Quick {
		nLeft = 64
	}
	root := xrand.New(cfg.Seed)
	nRights := []int{nLeft, 8 * nLeft}
	type res struct {
		hEst, leftMean, rightMean float64
		hasLeft, hasRight         bool
	}
	results, err := sweepRows(cfg, root, nRights,
		// The label deliberately excludes nRight: the left bell, the node
		// IDs and coins of its vertices, and the bridge's behaviour are
		// IDENTICAL across the two rows, so any left-side difference could
		// only come from what is behind the bridge — which a silent cut
		// vertex never reveals.
		func(int) string { return "e10" },
		func(nRight, trial int, rng *xrand.Rand) (res, error) {
			g, bridge, err := graph.Dumbbell(nLeft, nRight, d, rng.Split("graph"))
			if err != nil {
				return res{}, err
			}
			out := res{hEst: g.EstimateVertexExpansion(8, rng.Split("sweep"))}
			byz := make([]bool, g.N())
			byz[bridge] = true
			params := counting.DefaultCongestParams(d)
			params.MaxPhase = 12
			r, err := runProtocol(g, byz, rng.Split("run").Uint64(),
				func(v int, eng *sim.Engine) sim.Proc { return counting.NewCongestProc(params) },
				func(v int, eng *sim.Engine) sim.Proc { return byzantine.Silent{} },
				congestMaxRounds(params), true)
			if err != nil {
				return res{}, err
			}
			var lsum, rsum float64
			var lcnt, rcnt int
			for v, o := range r.outcomes {
				if v == bridge || !o.Decided {
					continue
				}
				if v < nLeft {
					lsum += float64(o.Estimate)
					lcnt++
				} else {
					rsum += float64(o.Estimate)
					rcnt++
				}
			}
			if lcnt > 0 {
				out.leftMean = lsum / float64(lcnt)
				out.hasLeft = true
			}
			if rcnt > 0 {
				out.rightMean = rsum / float64(rcnt)
				out.hasRight = true
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	for i, nRight := range nRights {
		rs := results[i]
		t.AddRow(nLeft, nRight, counting.Log2(nLeft+nRight+1),
			stats.Mean(column(rs, func(r res) float64 { return r.hEst })),
			stats.Mean(columnIf(rs, func(r res) bool { return r.hasLeft },
				func(r res) float64 { return r.leftMean })),
			stats.Mean(columnIf(rs, func(r res) bool { return r.hasRight },
				func(r res) float64 { return r.rightMean })))
	}
	t.Notes = append(t.Notes,
		"left_mean_est must be (near) identical across rows: side A cannot tell an 8x larger network behind the bridge from an equal one")
	return t, nil
}

// E11 — the application pipeline: counting output bootstraps agreement.
func E11(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   "Counting as preprocessing for Byzantine agreement",
		Claim:   "Section 1.1: a constant-factor estimate of log n from the counting protocol suffices to run the sampling+majority agreement of [3]",
		Columns: []string{"estimate_source", "log_estimate", "walk_len", "success_frac"},
	}
	const d = 8
	n := 256
	if cfg.Quick {
		n = 128
	}
	root := xrand.New(cfg.Seed)

	type src struct {
		name   string
		logEst func(rng *xrand.Rand, g *graph.Graph) (int, error)
	}
	counted := func(rng *xrand.Rand, g *graph.Graph) (int, error) {
		params := counting.DefaultCongestParams(d)
		res, err := runProtocol(g, nil, rng.Uint64(),
			func(v int, eng *sim.Engine) sim.Proc { return counting.NewCongestProc(params) },
			nil2byz, congestMaxRounds(params), true)
		if err != nil {
			return 0, err
		}
		hist := stats.NewHistogram()
		for _, e := range counting.DecidedEstimates(res.outcomes, res.honest) {
			hist.Add(e)
		}
		mode, _ := hist.Mode()
		return mode, nil
	}
	sources := []src{
		// The oracle knows the mixing-time scale exactly: ceil(log_d n),
		// the walk length the protocol of [3] actually needs on a
		// d-regular expander. (Handing it log2 n instead would make the
		// walks ~3x longer than necessary, which only increases the odds
		// of crossing a Byzantine node — over-estimates hurt too.)
		{"oracle_logd", func(rng *xrand.Rand, g *graph.Graph) (int, error) {
			return int(math.Ceil(counting.LogD(g.N(), d))), nil
		}},
		{"congest_counting", counted},
		{"none (walk len 1)", func(rng *xrand.Rand, g *graph.Graph) (int, error) { return 0, nil }},
	}
	type res struct {
		logEst, walkLen, frac float64
	}
	results, err := sweepRows(cfg, root, sources,
		func(s src) string { return "e11-" + s.name },
		func(s src, trial int, rng *xrand.Rand) (res, error) {
			g, err := hnd(n, d, rng.Split("graph"))
			if err != nil {
				return res{}, err
			}
			byz, err := byzantine.RandomPlacement(g, 4, rng.Split("place"))
			if err != nil {
				return res{}, err
			}
			logEst, err := s.logEst(rng.Split("est"), g)
			if err != nil {
				return res{}, err
			}
			var params agreement.Params
			if s.name == "none (walk len 1)" {
				params = agreement.Params{WalkLen: 1, Iterations: 1, TokensPerNode: 4}
			} else {
				params = agreement.FromEstimate(logEst)
			}
			frac, err := runAgreeWithParams(rng.Split("agree"), g, byz, params)
			if err != nil {
				return res{}, err
			}
			return res{
				logEst:  float64(logEst),
				walkLen: float64(params.WalkLen),
				frac:    frac,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	for i, s := range sources {
		rs := results[i]
		t.AddRow(s.name,
			stats.Mean(column(rs, func(r res) float64 { return r.logEst })),
			stats.Mean(column(rs, func(r res) float64 { return r.walkLen })),
			stats.Mean(column(rs, func(r res) float64 { return r.frac })))
	}
	t.Notes = append(t.Notes,
		"success = fraction of honest nodes holding the initial honest majority bit (1, a 75/25 split)")
	return t, nil
}

// runAgreeWithParams runs the agreement protocol with explicit params.
func runAgreeWithParams(rng *xrand.Rand, g *graph.Graph, byz []bool, params agreement.Params) (float64, error) {
	eng := sim.New(g, sim.WithSeed(rng.Uint64()))
	procs := make([]sim.Proc, g.N())
	honest := make([]bool, g.N())
	for v := range procs {
		if byz != nil && byz[v] {
			procs[v] = &agreement.ValueFlipper{Prefer: 0, Extra: 1}
		} else {
			honest[v] = true
			var bit byte = 1
			if v%4 == 0 {
				bit = 0
			}
			procs[v] = agreement.NewProc(params, bit)
		}
	}
	if err := eng.Attach(procs); err != nil {
		return 0, err
	}
	if _, err := eng.Run(params.TotalRounds() + 4); err != nil {
		return 0, err
	}
	return agreement.AgreementFraction(procs, honest, 1), nil
}

// E12 — placement sensitivity: random vs clustered vs spread.
func E12(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E12",
		Title:   "Adversarial placement sensitivity (CONGEST, beacon spam)",
		Claim:   "Remark 1 / Section 2: the adversary places nodes arbitrarily; clustering controls a neighborhood's termination while most nodes stay correct",
		Columns: []string{"placement", "decided_frac", "bounded_frac", "near_mean_est", "far_mean_est"},
	}
	const d = 8
	n := 256
	if cfg.Quick {
		n = 128
	}
	b := byzCount(n, 0.45)
	root := xrand.New(cfg.Seed)
	// The placement axis straight off the scenario registry: E12 *is* a
	// one-axis slice of the scenario grid. (Row order is the published
	// tables', not the registry's sorted order.)
	placements := []string{"random", "clustered", "spread"}
	type res struct {
		decided, bounded, nearMean, farMean float64
		hasNear, hasFar                     bool
	}
	results, err := sweepRows(cfg, root, placements,
		func(name string) string { return "e12-" + name },
		func(name string, trial int, rng *xrand.Rand) (res, error) {
			r, err := RunScenario(Scenario{
				Proto: "congest", Substrate: "hnd",
				Adversary: "spam", Placement: name,
				N: n, D: d, Byz: b, MaxPhase: 10, StopFrac: 1,
			}, rng, RunOptions{})
			if err != nil {
				return res{}, err
			}
			logd := counting.LogD(n, d)
			out := res{
				decided: counting.DecidedFraction(r.Outcomes, r.Honest),
				bounded: counting.FractionWithinFactor(r.Outcomes, r.Honest,
					0.5*logd, 2*logd+3),
			}
			far := farMask(r.Graph, r.Byz, 2)
			var nsum, fsum float64
			var ncnt, fcnt int
			for v, o := range r.Outcomes {
				if !r.Honest[v] || !o.Decided {
					continue
				}
				if far[v] {
					fsum += float64(o.Estimate)
					fcnt++
				} else {
					nsum += float64(o.Estimate)
					ncnt++
				}
			}
			if ncnt > 0 {
				out.nearMean = nsum / float64(ncnt)
				out.hasNear = true
			}
			if fcnt > 0 {
				out.farMean = fsum / float64(fcnt)
				out.hasFar = true
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	for i, pl := range placements {
		rs := results[i]
		t.AddRow(pl,
			stats.Mean(column(rs, func(r res) float64 { return r.decided })),
			stats.Mean(column(rs, func(r res) float64 { return r.bounded })),
			stats.Mean(columnIf(rs, func(r res) bool { return r.hasNear },
				func(r res) float64 { return r.nearMean })),
			stats.Mean(columnIf(rs, func(r res) bool { return r.hasFar },
				func(r res) float64 { return r.farMean })))
	}
	return t, nil
}
