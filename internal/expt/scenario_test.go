package expt

import (
	"reflect"
	"strings"
	"testing"

	"byzcount/internal/xrand"
)

func TestScenarioValidate(t *testing.T) {
	bad := []struct {
		sc   Scenario
		want string // substring the error must teach
	}{
		{Scenario{Proto: "bogus"}, "congest"},
		{Scenario{Substrate: "bogus"}, "hnd"},
		{Scenario{Adversary: "bogus", Byz: 1}, "spam"},
		{Scenario{Placement: "bogus"}, "clustered"},
		{Scenario{Proto: "geometric", Adversary: "spam", Byz: 1}, "schedule-driven"},
		{Scenario{Substrate: "ring", Churn: ChurnProfile{Leaves: 1, Joins: 1}, Adversary: "silent"}, "hnd"},
		{Scenario{ByzJoiners: 1, Adversary: "silent"}, "churn"},
		{Scenario{ByzJoiners: 1, ByzFrac: 0.05, Adversary: "silent",
			Churn: ChurnProfile{Leaves: 1, Joins: 1}}, "benign"},
		{Scenario{Byz: 2}, "adversary"}, // Byzantine nodes with adversary "none"
		{Scenario{N: 2}, "degenerate"},
		{Scenario{Delay: "bogus"}, "delay"},
		{Scenario{Delay: "uniform:4-1"}, "uniform"},
		{Scenario{Fault: "bogus"}, "fault"},
		{Scenario{Fault: "drop:1.5"}, "drop"},
	}
	for _, tc := range bad {
		err := tc.sc.Validate()
		if err == nil {
			t.Errorf("scenario %+v accepted", tc.sc)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("scenario %+v: error %q does not mention %q", tc.sc, err, tc.want)
		}
	}
	good := Scenario{Proto: "congest", Adversary: "spam", Byz: 4,
		Churn: ChurnProfile{Leaves: 1, Joins: 1}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid scenario rejected: %v", err)
	}
}

func TestScenarioLabel(t *testing.T) {
	sc := Scenario{Proto: "congest", Adversary: "spam", Placement: "clustered",
		N: 128, Byz: 6, Churn: ChurnProfile{Leaves: 2, Joins: 2}}
	if got, want := sc.Label(), "congest/hnd/spam/clustered/n=128/byz=6/churn=2-2"; got != want {
		t.Errorf("label = %q, want %q", got, want)
	}
	benign := Scenario{}
	if got, want := benign.Label(), "congest/hnd/none/n=256"; got != want {
		t.Errorf("benign label = %q, want %q", got, want)
	}
	// The label is the matrix dedupe key and the sweep sub-seed: every
	// cell-selecting field must distinguish it — notably the full churn
	// profile (quiesce round and stream derivation included).
	distinct := []Scenario{
		sc,
		{Proto: "congest", Adversary: "spam", Placement: "clustered", N: 128, Byz: 6,
			Churn: ChurnProfile{Leaves: 2, Joins: 2, StopAfter: 50}},
		{Proto: "congest", Adversary: "spam", Placement: "clustered", N: 128, Byz: 6,
			Churn: ChurnProfile{Leaves: 2, Joins: 2, Mixed: true}},
		{Proto: "congest", Adversary: "spam", Placement: "clustered", N: 128, D: 4, Byz: 6,
			Churn: ChurnProfile{Leaves: 2, Joins: 2}},
		{Dynamic: true},
		{},
	}
	seen := map[string]int{}
	for i, s := range distinct {
		if j, dup := seen[s.Label()]; dup {
			t.Errorf("scenarios %d and %d collapse onto label %q", i, j, s.Label())
		}
		seen[s.Label()] = i
	}
	// The delivery axes select cells too: specs appear verbatim, and
	// fault "none" collapses onto the default.
	vt := Scenario{Delay: "gst:32/uniform:1-6", Fault: "partition:2@16-48"}
	if got, want := vt.Label(), "congest/hnd/none/n=256/delay=gst:32/uniform:1-6/fault=partition:2@16-48"; got != want {
		t.Errorf("virtual-time label = %q, want %q", got, want)
	}
	if got, want := (Scenario{Fault: "none"}).Label(), (Scenario{}).Label(); got != want {
		t.Errorf("fault \"none\" label = %q, want the default %q", got, want)
	}
}

// TestScenarioVirtualTimeDeterminism: cells on the event-ring scheduler
// — jittered latency, GST, drops, partitions, on static and churning
// substrates — are pure functions of the seed and bit-identical across
// engine worker counts, exactly like their synchronous siblings.
func TestScenarioVirtualTimeDeterminism(t *testing.T) {
	cells := []Scenario{
		{Proto: "congest", N: 64, D: 8, MaxPhase: 6, Delay: "uniform:1-4"},
		{Proto: "congest", N: 64, D: 8, MaxPhase: 6, Delay: "gst:12/uniform:1-6", Fault: "drop:0.05"},
		{Proto: "congest", N: 64, D: 8, MaxPhase: 6, Delay: "unit", Fault: "partition:2@8-30"},
		{Proto: "congest", N: 64, D: 8, MaxPhase: 6, Delay: "geo:0.5@6",
			Churn: ChurnProfile{Leaves: 1, Joins: 1, StopAfter: 30, Mixed: true}},
	}
	for _, sc := range cells {
		sc := sc
		t.Run(sc.Label(), func(t *testing.T) {
			t.Parallel()
			type snap struct {
				outcomes any
				metrics  any
				rounds   int
			}
			runOnce := func(workers int) snap {
				t.Helper()
				out, err := RunScenario(sc, xrand.New(99), RunOptions{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				return snap{out.Outcomes, out.Metrics, out.Rounds}
			}
			serial := runOnce(1)
			if serial.rounds == 0 {
				t.Fatal("degenerate run")
			}
			for _, w := range []int{3, 8} {
				if got := runOnce(w); !reflect.DeepEqual(serial, got) {
					t.Errorf("workers=%d diverges from serial", w)
				}
			}
		})
	}
}

func TestMatrixScenarios(t *testing.T) {
	m := Matrix{
		Protos:      []string{"congest"},
		Adversaries: []string{"none", "spam"},
		ByzFracs:    []float64{0, 0.05},
		Churns:      []ChurnProfile{{}, {Leaves: 2, Joins: 2, StopAfter: 50, Mixed: true}},
		Ns:          []int{64},
	}
	scs, skipped, err := m.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	// 2 adversaries x 2 fracs x 2 churns = 8 raw cells; (none, 0.05)
	// pairs are skipped (2) and (spam, 0) collapses onto (none, 0) so
	// the dedupe drops 2 more.
	if len(scs) != 4 || skipped != 2 {
		labels := make([]string, len(scs))
		for i, sc := range scs {
			labels[i] = sc.Label()
		}
		t.Errorf("got %d cells (skipped %d): %v", len(scs), skipped, labels)
	}
	if _, _, err := (Matrix{Adversaries: []string{"bogus"}}).Scenarios(); err == nil {
		t.Error("unknown adversary axis value accepted")
	}
}

// TestMatrixIdenticalAcrossParallelism: matrix tables, like experiment
// tables, are byte-identical whatever the sweep concurrency.
func TestMatrixIdenticalAcrossParallelism(t *testing.T) {
	m := Matrix{
		Adversaries: []string{"none", "spam"},
		ByzFracs:    []float64{0, 0.1},
		Churns:      []ChurnProfile{{Leaves: 2, Joins: 2, StopAfter: 30, Mixed: true}},
		Ns:          []int{48},
		MaxPhase:    6,
	}
	want, err := RunMatrix(Config{Seed: 11, Trials: 2, Parallel: 1}, m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunMatrix(Config{Seed: 11, Trials: 2, Parallel: 8}, m)
	if err != nil {
		t.Fatal(err)
	}
	if want.Render() != got.Render() {
		t.Errorf("matrix differs across parallelism:\n-- serial --\n%s\n-- parallel --\n%s",
			want.Render(), got.Render())
	}
}

// TestScenarioChurnByzDeterminism: the combined churn + Byzantine path
// is a pure function of the seed and bit-identical across engine worker
// counts — metrics, roster state, and membership counts all agree.
func TestScenarioChurnByzDeterminism(t *testing.T) {
	sc := Scenario{
		Proto: "congest", Adversary: "spam", Placement: "clustered",
		N: 64, D: 8, ByzFrac: 0.1, MaxPhase: 6,
		Churn: ChurnProfile{Leaves: 2, Joins: 2, StopAfter: 40, Mixed: true},
	}
	type snap struct {
		metrics  any
		rounds   int
		joined   int
		byzCount int
		frac     float64
	}
	runOnce := func(workers int) snap {
		t.Helper()
		out, err := RunScenario(sc, xrand.New(99), RunOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return snap{out.Metrics, out.Rounds, out.Runner.Joined(), out.Roster.Count(), out.Roster.Fraction()}
	}
	serial := runOnce(1)
	if serial.joined == 0 || serial.byzCount == 0 {
		t.Fatalf("degenerate scenario: %+v", serial)
	}
	for _, w := range []int{4, 8} {
		if got := runOnce(w); !reflect.DeepEqual(serial, got) {
			t.Errorf("workers=%d diverges:\nserial: %+v\ngot:    %+v", w, serial, got)
		}
	}
}

// TestScenarioStaticMatchesHandWired: the scenario layer's static path
// is the old runner decomposed, not a reimplementation — for the E3
// cell shape it must produce the exact runProtocol outcome.
func TestScenarioStaticMatchesHandWired(t *testing.T) {
	rngA := xrand.New(1234)
	out, err := RunScenario(Scenario{
		Proto: "congest", Adversary: "spam", Placement: "random",
		N: 64, D: 8, Byz: 4, MaxPhase: 6, StopFrac: 1,
	}, rngA, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rounds == 0 || out.Metrics.Messages == 0 {
		t.Fatal("degenerate run")
	}
	// Same seed, same cell: byte-identical outcome set.
	out2, err := RunScenario(Scenario{
		Proto: "congest", Adversary: "spam", Placement: "random",
		N: 64, D: 8, Byz: 4, MaxPhase: 6, StopFrac: 1,
	}, xrand.New(1234), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Outcomes, out2.Outcomes) || !reflect.DeepEqual(out.Metrics, out2.Metrics) {
		t.Error("same-seed scenario runs diverge")
	}
}
