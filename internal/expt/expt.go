// Package expt is the experiment harness of the reproduction: one
// runner per experiment E1-E20 (see DESIGN.md for the experiment index
// mapping each to a claim of the paper), the concurrent sweep driver
// they share, and the scenario-composition layer (scenario.go) that
// makes protocol x substrate x adversary x placement x churn an
// enumerable grid (matrix.go). Each runner generates its workload,
// sweeps its parameters, and returns a Table whose rows are the series
// the paper's claims predict.
package expt

import (
	"fmt"
	"runtime"
	"sort"
	"strings"

	"byzcount/internal/report"
)

// Config controls an experiment run.
type Config struct {
	// Seed drives all randomness; equal seeds reproduce tables exactly.
	Seed uint64
	// Trials is the number of independent repetitions per row (default 3).
	Trials int
	// Quick shrinks the sweep for benchmarks and smoke tests.
	Quick bool
	// Parallel bounds how many (row, trial) cells the sweep driver runs
	// concurrently. 0 (the default) means GOMAXPROCS; 1 forces serial
	// execution. Tables are byte-identical for every value: each cell's
	// randomness is a pure sub-seed of (Seed, row label, trial index)
	// and rows are collected in deterministic order.
	Parallel int
}

func (c Config) trials() int {
	if c.Trials <= 0 {
		return 3
	}
	return c.Trials
}

func (c Config) parallel() int {
	if c.Parallel <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Parallel
}

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper claim being exercised
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row; values are Sprint-formatted.
func (t *Table) AddRow(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", x)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render returns the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "paper claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as CSV (without title/claim/notes) for external
// plotting tools.
func (t *Table) CSV() string {
	return report.CSV(t.Columns, t.Rows)
}

// Runner is an experiment entry point.
type Runner func(Config) (*Table, error)

// Registry maps experiment IDs to runners.
var Registry = map[string]Runner{
	"E1":  E1,
	"E2":  E2,
	"E3":  E3,
	"E4":  E4,
	"E5":  E5,
	"E6":  E6,
	"E7":  E7,
	"E8":  E8,
	"E9":  E9,
	"E10": E10,
	"E11": E11,
	"E12": E12,
	"E13": E13,
	"E14": E14,
	"E15": E15,
	"E16": E16,
	"E17": E17,
	"E18": E18,
	"E19": E19,
	"E20": E20,
}

// IDs returns the registered experiment IDs in order.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return out[i] < out[j]
	})
	return out
}

// Run executes one experiment by ID.
func Run(id string, cfg Config) (*Table, error) {
	r, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("expt: unknown experiment %q (have %v)", id, IDs())
	}
	return r(cfg)
}
