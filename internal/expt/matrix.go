package expt

// The matrix runner: enumerate any slice of the scenario grid and run
// every cell through the shared concurrent sweep driver. This is what
// `byzcount matrix` executes — the cross-product counterpart of the
// fixed experiments, for exploring combinations no E-runner hard-wires.

import (
	"context"
	"fmt"

	"byzcount/internal/counting"
	"byzcount/internal/sim"
	"byzcount/internal/stats"
	"byzcount/internal/xrand"
)

// Matrix selects a slice of the scenario grid: the cross-product of the
// listed axis values. Empty axis lists select the single default value
// of that axis.
type Matrix struct {
	Protos      []string
	Substrates  []string
	Adversaries []string
	Placements  []string
	Ns          []int
	ByzFracs    []float64 // 0 entries mean benign
	Churns      []ChurnProfile
	// Delays and Faults are the virtual-time delivery axes: delay-model
	// and fault-model specs per sim.ParseDelayModel/ParseFaultModel.
	// Empty strings (and an empty list) select the synchronous default.
	Delays []string
	Faults []string

	D        int // shared degree parameter (default 8)
	MaxPhase int // congest phase cap (default 8: bounds hostile cells)
	StopFrac float64
}

// orDefault returns vals, or the single fallback when empty.
func orDefault[T any](vals []T, fallback T) []T {
	if len(vals) == 0 {
		return []T{fallback}
	}
	return vals
}

// checkAxes validates every listed axis value against its registry, so
// a typo fails with the registry's vocabulary before any cell runs.
func (m Matrix) checkAxes() error {
	for _, p := range m.Protos {
		if _, ok := Protocols[p]; !ok {
			return fmt.Errorf("expt: unknown protocol %q (have %v)", p, ProtocolNames())
		}
	}
	for _, s := range m.Substrates {
		if _, ok := Substrates[s]; !ok {
			return fmt.Errorf("expt: unknown substrate %q (have %v)", s, SubstrateNames())
		}
	}
	for _, a := range m.Adversaries {
		if _, ok := Adversaries[a]; !ok {
			return fmt.Errorf("expt: unknown adversary %q (have %v)", a, AdversaryNames())
		}
	}
	for _, p := range m.Placements {
		if _, ok := Placements[p]; !ok {
			return fmt.Errorf("expt: unknown placement %q (have %v)", p, PlacementNames())
		}
	}
	for _, spec := range m.Delays {
		if _, err := sim.ParseDelayModel(spec); err != nil {
			return err
		}
	}
	for _, spec := range m.Faults {
		if _, err := sim.ParseFaultModel(spec); err != nil {
			return err
		}
	}
	return nil
}

// Scenarios enumerates the cross-product in axis-major order (protocol
// outermost, fault innermost). Unknown axis values error; cells whose
// axes merely do not compose (a Byzantine budget with the "none"
// adversary, a schedule-driven adversary on a non-CONGEST protocol,
// churn on a static-only substrate) are counted and skipped — a slice
// of a grid legitimately crosses such holes.
func (m Matrix) Scenarios() (cells []Scenario, skipped int, err error) {
	if err := m.checkAxes(); err != nil {
		return nil, 0, err
	}
	d := m.D
	if d == 0 {
		d = 8
	}
	maxPhase := m.MaxPhase
	if maxPhase == 0 {
		maxPhase = 8
	}
	for _, proto := range orDefault(m.Protos, "congest") {
		for _, sub := range orDefault(m.Substrates, "hnd") {
			for _, adv := range orDefault(m.Adversaries, "none") {
				for _, pl := range orDefault(m.Placements, "random") {
					for _, n := range orDefault(m.Ns, 256) {
						for _, frac := range orDefault(m.ByzFracs, 0) {
							for _, churn := range orDefault(m.Churns, ChurnProfile{}) {
								for _, delay := range orDefault(m.Delays, "") {
									for _, fault := range orDefault(m.Faults, "") {
										sc := Scenario{
											Proto: proto, Substrate: sub,
											Adversary: adv, Placement: pl,
											N: n, D: d, ByzFrac: frac,
											Churn: churn, Dynamic: churn.Active(),
											MaxPhase: maxPhase, StopFrac: m.StopFrac,
											Delay: delay, Fault: fault,
										}
										if frac == 0 && adv != "none" {
											// A benign cell is the same run whatever
											// the adversary axis says; keep the grid
											// free of duplicates by naming it "none".
											sc.Adversary = "none"
										}
										if frac > 0 && adv == "none" {
											skipped++
											continue
										}
										if err := sc.Validate(); err != nil {
											skipped++
											continue
										}
										cells = append(cells, sc)
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return dedupeScenarios(cells), skipped, nil
}

// dedupeScenarios drops cells with identical labels (the benign
// collapses above can alias rows).
func dedupeScenarios(scs []Scenario) []Scenario {
	seen := make(map[string]bool, len(scs))
	out := scs[:0]
	for _, sc := range scs {
		l := sc.Label()
		if !seen[l] {
			seen[l] = true
			out = append(out, sc)
		}
	}
	return out
}

// The per-cell metric vector both matrix drivers share: RunMatrix
// retains the vectors per row and feeds batch stats.Mean; the durable
// sweep streams them through stats.Online in trial order. The two ways
// produce byte-identical table rows because the plain running sum adds
// the same float64s in the same order the batch Mean does.
const (
	cellByz = iota
	cellRounds
	cellDecided
	cellBounded
	cellMedian
	cellMsgs
	numCellMetrics
)

// matrixMetricCols are the aggregated metric column names, in cell
// vector order (the full table row prepends "scenario" and interposes
// the analytic log_d(n)).
var matrixMetricCols = []string{"byz", "rounds", "decided_frac", "bounded_frac", "median_est", "msgs"}

// matrixCellVals runs one (scenario, trial) cell and distills the
// outcome into the shared metric vector. This is the single definition
// of what a matrix cell measures — the in-memory table, the durable
// WAL records, and the JSONL summaries all consume it.
func matrixCellVals(ctx context.Context, sc Scenario, rng *xrand.Rand) ([numCellMetrics]float64, error) {
	var out [numCellMetrics]float64
	r, err := RunScenario(sc, rng, RunOptions{Context: ctx})
	if err != nil {
		return out, err
	}
	out[cellRounds] = float64(r.Rounds)
	out[cellMsgs] = float64(r.Metrics.Messages)
	honestTotal, dec := 0, 0
	logd := counting.LogD(sc.withDefaults().N, sc.withDefaults().D)
	bnd := 0
	for i, o := range r.Outcomes {
		if !r.Honest[i] {
			out[cellByz]++
			continue
		}
		honestTotal++
		if !o.Decided {
			continue
		}
		dec++
		if float64(o.Estimate) >= 0.5*logd && float64(o.Estimate) <= 2*logd+2 {
			bnd++
		}
	}
	if honestTotal > 0 {
		out[cellDecided] = float64(dec) / float64(honestTotal)
		out[cellBounded] = float64(bnd) / float64(honestTotal)
	}
	vals := counting.DecidedEstimates(r.Outcomes, r.Honest)
	out[cellMedian] = stats.Median(stats.Ints(vals))
	return out, nil
}

// matrixTable builds the empty matrix table shell shared by RunMatrix
// and the durable sweep (identical Columns and Notes are part of the
// byte-identity contract between the two paths).
func matrixTable(cells, trials, skipped int) *Table {
	t := &Table{
		ID:      "matrix",
		Title:   fmt.Sprintf("Scenario matrix: %d cells x %d trials", cells, trials),
		Columns: []string{"scenario", "byz", "rounds", "decided_frac", "bounded_frac", "median_est", "log_d(n)", "msgs"},
	}
	t.Notes = append(t.Notes,
		"bounded_frac uses the CONGEST band [0.5*log_d n, 2*log_d n + 2]; interpret it per protocol",
		"each cell's randomness is the pure sub-seed of its label: adding or removing cells never perturbs the others")
	if skipped > 0 {
		t.Notes = append(t.Notes,
			fmt.Sprintf("%d cells of the requested cross-product were skipped as incompatible axis combinations", skipped))
	}
	return t
}

// RunMatrix executes every cell of the matrix through the sweep driver
// (cfg.Trials trials per cell, cfg.Parallel concurrent cells, each
// cell's randomness the pure sub-seed of its label) and renders one row
// per cell. Tables are byte-identical for every Parallel value, like
// every experiment.
func RunMatrix(cfg Config, m Matrix) (*Table, error) {
	return RunMatrixCtx(context.Background(), cfg, m)
}

// RunMatrixCtx is RunMatrix with cooperative cancellation: in-flight
// engines abort at their next round boundary and unstarted cells are
// never launched. A canceled matrix returns the context's error, not a
// partial table.
func RunMatrixCtx(ctx context.Context, cfg Config, m Matrix) (*Table, error) {
	scs, skipped, err := m.Scenarios()
	if err != nil {
		return nil, err
	}
	if len(scs) == 0 {
		return nil, fmt.Errorf("expt: empty matrix (%d cells skipped as incompatible)", skipped)
	}
	t := matrixTable(len(scs), cfg.trials(), skipped)
	root := xrand.New(cfg.Seed)
	results, err := sweepRowsCtx(ctx, cfg, root, scs,
		func(sc Scenario) string { return sc.Label() },
		func(ctx context.Context, sc Scenario, trial int, rng *xrand.Rand) ([numCellMetrics]float64, error) {
			return matrixCellVals(ctx, sc, rng)
		})
	if err != nil {
		return nil, err
	}
	for i, sc := range scs {
		rs := results[i]
		scd := sc.withDefaults()
		t.AddRow(sc.Label(),
			stats.Mean(column(rs, func(r [numCellMetrics]float64) float64 { return r[cellByz] })),
			stats.Mean(column(rs, func(r [numCellMetrics]float64) float64 { return r[cellRounds] })),
			stats.Mean(column(rs, func(r [numCellMetrics]float64) float64 { return r[cellDecided] })),
			stats.Mean(column(rs, func(r [numCellMetrics]float64) float64 { return r[cellBounded] })),
			stats.Mean(column(rs, func(r [numCellMetrics]float64) float64 { return r[cellMedian] })),
			counting.LogD(scd.N, scd.D),
			stats.Mean(column(rs, func(r [numCellMetrics]float64) float64 { return r[cellMsgs] })))
	}
	return t, nil
}
