package expt

import (
	"testing"
)

// TestSubstrateCacheGolden pins the substrate cache's determinism
// contract: E1 (graph-bound LOCAL sweep), E3 (scenario-layer CONGEST
// sweep), and E15 (churn — runs on dynamic networks the cache never
// touches) render byte-identical tables with the cache enabled and
// disabled, across serial and 8-way-parallel sweep drivers.
func TestSubstrateCacheGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	prev := SetSubstrateCache(true)
	defer SetSubstrateCache(prev)
	for _, id := range []string{"E1", "E3", "E15"} {
		var want string
		for _, cache := range []bool{true, false} {
			for _, par := range []int{1, 8} {
				SetSubstrateCache(cache)
				cfg := Config{Seed: 42, Trials: 2, Quick: true, Parallel: par}
				tbl, err := Run(id, cfg)
				if err != nil {
					t.Fatalf("%s cache=%v parallel=%d: %v", id, cache, par, err)
				}
				got := tbl.Render()
				if want == "" {
					want = got
					continue
				}
				if got != want {
					t.Fatalf("%s cache=%v parallel=%d: table differs from cache=true parallel=1:\n--- want\n%s\n--- got\n%s",
						id, cache, par, want, got)
				}
			}
		}
	}
}

// TestSubstrateCacheHitsWithinTrial confirms the cache actually dedupes:
// re-running the same experiment in one process reuses every substrate
// of the first run (the repeated-invocation case the perf trajectory's
// expt/E* workloads exercise).
func TestSubstrateCacheHitsWithinTrial(t *testing.T) {
	SetSubstrateCache(false) // clear
	prev := SetSubstrateCache(true)
	defer SetSubstrateCache(prev)
	cfg := Config{Seed: 42, Trials: 1, Quick: true, Parallel: 1}
	if _, err := Run("E5", cfg); err != nil {
		t.Fatal(err)
	}
	h0, m0 := SubstrateCacheStats()
	if _, err := Run("E5", cfg); err != nil {
		t.Fatal(err)
	}
	h1, m1 := SubstrateCacheStats()
	if m1 != m0 {
		t.Errorf("second identical run missed the cache %d times, want 0", m1-m0)
	}
	if h1 == h0 {
		t.Error("second identical run recorded no cache hits")
	}
}
