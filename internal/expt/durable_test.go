package expt

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"byzcount/internal/sim"
	"byzcount/internal/sweep"
	"byzcount/internal/xrand"
)

// sweepTestMatrix is a small but multi-row grid: two protocols x two
// sizes, with a Byzantine row, so resume crosses row boundaries.
func sweepTestMatrix() Matrix {
	return Matrix{
		Protos:      []string{"congest", "geometric"},
		Adversaries: []string{"silent"},
		Ns:          []int{32, 48},
		ByzFracs:    []float64{0, 0.1},
		StopFrac:    1.0,
	}
}

func sweepTestConfig(parallel int) Config {
	return Config{Seed: 7, Trials: 3, Parallel: parallel}
}

// TestSweepMatchesMatrix: on a healthy grid, the durable driver's
// streamed table must be byte-identical to RunMatrix's batch table —
// the two paths share the cell computation, and the online SumMean adds
// the same floats in the same order as the batch Mean.
func TestSweepMatchesMatrix(t *testing.T) {
	cfg := sweepTestConfig(4)
	m := sweepTestMatrix()
	batch, err := RunMatrix(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := RunMatrixSweep(context.Background(), cfg, m, t.TempDir(), SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Quarantined) != 0 || sum.Interrupted {
		t.Fatalf("healthy grid misbehaved: %+v", sum)
	}
	if got, want := sum.Table.Render(), batch.Render(); got != want {
		t.Errorf("sweep table differs from matrix table:\n--- sweep ---\n%s--- matrix ---\n%s", got, want)
	}
}

// interruptSweep runs a sweep that cancels itself once the fault point
// fires at roughly half the grid, returning the interrupted directory.
func interruptSweep(t *testing.T, cfg Config, m Matrix, dir string) *SweepSummary {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := SweepOptions{
		SyncEvery: 1,
		OnCell: func(done, total int) {
			if done >= total/2 {
				cancel()
			}
		},
	}
	sum, err := RunMatrixSweep(ctx, cfg, m, dir, opts)
	if err == nil || !sum.Interrupted {
		t.Fatalf("fault point did not interrupt: sum=%+v err=%v", sum, err)
	}
	if sum.Table != nil {
		t.Fatal("interrupted sweep rendered a table")
	}
	ck, err := sweep.ReadCheckpoint(dir)
	if err != nil || ck == nil || !ck.Interrupted {
		t.Fatalf("interrupted sweep left no checkpoint: %+v err=%v", ck, err)
	}
	return sum
}

// TestSweepResumeByteIdentical: interrupt a sweep mid-grid via the
// cooperative fault point, resume it, and require the resumed table to
// match an uninterrupted run byte for byte — at parallelism 1 and 8.
func TestSweepResumeByteIdentical(t *testing.T) {
	m := sweepTestMatrix()
	clean, err := RunMatrixSweep(context.Background(), sweepTestConfig(4), m, t.TempDir(), SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, parallel := range []int{1, 8} {
		cfg := sweepTestConfig(parallel)
		dir := t.TempDir()
		interruptSweep(t, cfg, m, dir)
		// Resume ignores the caller's seed/trials (manifest wins); hand
		// it a wrong seed on purpose.
		resumed, err := ResumeMatrixSweep(context.Background(), dir, Config{Seed: 999, Parallel: parallel}, SweepOptions{})
		if err != nil {
			t.Fatalf("parallel=%d: resume: %v", parallel, err)
		}
		if resumed.Replayed == 0 {
			t.Errorf("parallel=%d: resume replayed nothing — interruption lost all progress", parallel)
		}
		if got, want := resumed.Table.Render(), clean.Table.Render(); got != want {
			t.Errorf("parallel=%d: resumed table differs from uninterrupted run:\n--- resumed ---\n%s--- clean ---\n%s",
				parallel, got, want)
		}
		// table.txt on disk matches too.
		onDisk, err := os.ReadFile(filepath.Join(dir, "table.txt"))
		if err != nil || string(onDisk) != clean.Table.Render() {
			t.Errorf("parallel=%d: table.txt mismatch (err=%v)", parallel, err)
		}
	}
}

// TestSweepHardKillTornTail simulates a SIGKILL mid-append: interrupt a
// sweep, then chop bytes off the log's final record before resuming.
// The torn cell re-runs and the final table is still byte-identical.
func TestSweepHardKillTornTail(t *testing.T) {
	m := sweepTestMatrix()
	clean, err := RunMatrixSweep(context.Background(), sweepTestConfig(4), m, t.TempDir(), SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sweepTestConfig(4)
	dir := t.TempDir()
	interruptSweep(t, cfg, m, dir)
	path := filepath.Join(dir, sweep.LogName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeMatrixSweep(context.Background(), dir, Config{Parallel: 4}, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resumed.Table.Render(), clean.Table.Render(); got != want {
		t.Errorf("post-torn-tail resume differs:\n--- resumed ---\n%s--- clean ---\n%s", got, want)
	}
}

// registerPanicProto installs a protocol whose processes panic during
// the run, and removes it on cleanup.
func registerPanicProto(t *testing.T) {
	t.Helper()
	base := Protocols["geometric"]
	Protocols["panicproto"] = Protocol{
		Name:      "panicproto",
		MaxRounds: base.MaxRounds,
		Proc: func(ctx *scenarioCtx, v int) sim.Proc {
			panic("injected test panic: cell is poisoned")
		},
	}
	t.Cleanup(func() { delete(Protocols, "panicproto") })
}

// TestSweepQuarantine: a grid with one poisoned row completes the
// healthy rows, quarantines every poisoned cell with its label,
// sub-seed, and panic stack, and reports it all in the summary.
func TestSweepQuarantine(t *testing.T) {
	registerPanicProto(t)
	m := Matrix{
		Protos:   []string{"geometric", "panicproto"},
		Ns:       []int{32},
		StopFrac: 1.0,
	}
	cfg := sweepTestConfig(4)
	dir := t.TempDir()
	sum, err := RunMatrixSweep(context.Background(), cfg, m, dir, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Interrupted {
		t.Fatal("quarantine must not interrupt the grid")
	}
	if len(sum.Quarantined) != cfg.Trials {
		t.Fatalf("quarantined %d cells, want %d (one per poisoned trial)", len(sum.Quarantined), cfg.Trials)
	}
	for i, q := range sum.Quarantined {
		if !strings.Contains(q.Row, "panicproto") {
			t.Errorf("quarantined row %q does not name the poisoned protocol", q.Row)
		}
		if q.Trial != i {
			t.Errorf("quarantine order: got trial %d at %d", q.Trial, i)
		}
		if q.Seed == 0 {
			t.Errorf("quarantined cell lost its sub-seed")
		}
		if !strings.Contains(q.Err, "injected test panic") {
			t.Errorf("quarantine error lost the panic value: %q", q.Err)
		}
		if !strings.Contains(q.Stack, "runCellOnce") {
			t.Errorf("quarantine lost the stack trace")
		}
		if q.Attempts != 1 {
			t.Errorf("panic was retried (%d attempts); panics are deterministic", q.Attempts)
		}
	}
	if sum.Completed != cfg.Trials {
		t.Errorf("healthy row incomplete: %d cells, want %d", sum.Completed, cfg.Trials)
	}
	// The healthy table row renders; the poisoned row's aggregates are
	// empty but present.
	if sum.Table == nil || len(sum.Table.Rows) != 2 {
		t.Fatalf("table missing rows: %+v", sum.Table)
	}
	// summary.jsonl carries the quarantine lines.
	data, err := os.ReadFile(filepath.Join(dir, "summary.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(data), `"kind":"quarantined"`); got != cfg.Trials {
		t.Errorf("summary.jsonl has %d quarantine lines, want %d", got, cfg.Trials)
	}
	// Resume replays the quarantined cells rather than re-running them:
	// the poisoned registry entry is still installed, but even without
	// it the resume must not need to execute those cells.
	delete(Protocols, "panicproto")
	_, err = ResumeMatrixSweep(context.Background(), dir, Config{}, SweepOptions{})
	if err == nil {
		t.Fatal("resume validated a grid with an unregistered protocol — expected the manifest check to fail")
	}
}

// TestSweepQuarantineReplayedOnResume: interrupt a sweep whose grid
// includes a poisoned row, then resume; quarantined cells recorded
// before the interruption are replayed as failures, not re-executed.
func TestSweepQuarantineReplayedOnResume(t *testing.T) {
	registerPanicProto(t)
	m := Matrix{
		Protos:   []string{"geometric", "panicproto"},
		Ns:       []int{32},
		StopFrac: 1.0,
	}
	cfg := sweepTestConfig(1)
	dir := t.TempDir()
	sum, err := RunMatrixSweep(context.Background(), cfg, m, dir, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeMatrixSweep(context.Background(), dir, Config{}, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Replayed != resumed.Total {
		t.Errorf("complete sweep re-ran cells on resume: replayed %d of %d", resumed.Replayed, resumed.Total)
	}
	if len(resumed.Quarantined) != len(sum.Quarantined) {
		t.Errorf("quarantine list changed across resume: %d vs %d", len(resumed.Quarantined), len(sum.Quarantined))
	}
	if resumed.Table.Render() != sum.Table.Render() {
		t.Error("table changed across no-op resume")
	}
}

// TestSweepCellTimeout: with a timeout no real cell can meet, every
// cell is quarantined as a timeout — and the grid still completes.
func TestSweepCellTimeout(t *testing.T) {
	m := Matrix{Protos: []string{"geometric"}, Ns: []int{32}, StopFrac: 1.0}
	cfg := Config{Seed: 7, Trials: 2, Parallel: 2}
	sum, err := RunMatrixSweep(context.Background(), cfg, m, t.TempDir(), SweepOptions{CellTimeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Interrupted {
		t.Fatal("cell timeouts must not mark the sweep interrupted")
	}
	if len(sum.Quarantined) != 2 {
		t.Fatalf("quarantined %d, want 2", len(sum.Quarantined))
	}
	for _, q := range sum.Quarantined {
		if !strings.Contains(q.Err, "cell timeout") {
			t.Errorf("timeout quarantine error: %q", q.Err)
		}
	}
}

// TestSweepRejectsExistingDir: starting a fresh sweep into an already
// initialized directory is an error, not a silent merge.
func TestSweepRejectsExistingDir(t *testing.T) {
	dir := t.TempDir()
	m := Matrix{Protos: []string{"geometric"}, Ns: []int{32}, StopFrac: 1.0}
	cfg := Config{Seed: 7, Trials: 1}
	if _, err := RunMatrixSweep(context.Background(), cfg, m, dir, SweepOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := RunMatrixSweep(context.Background(), cfg, m, dir, SweepOptions{}); err == nil ||
		!strings.Contains(err.Error(), "resume") {
		t.Fatalf("second sweep into the same dir: %v", err)
	}
}

// TestSweepRowsEarlyStop: once a cell errors, cells that have not yet
// started are skipped instead of running the rest of the grid. Every
// cell errs, so after the first failure at most `parallel` cells (the
// ones already holding a slot) can still run.
func TestSweepRowsEarlyStop(t *testing.T) {
	for _, parallel := range []int{1, 4} {
		cfg := Config{Seed: 1, Trials: 10, Parallel: parallel}
		rows := []int{0, 1, 2, 3, 4, 5, 6, 7}
		var ran atomic.Int64
		_, err := sweepRowsCtx(context.Background(), cfg, xrand.New(1), rows,
			func(r int) string { return "row" },
			func(_ context.Context, r, trial int, rng *xrand.Rand) (int, error) {
				ran.Add(1)
				return 0, context.DeadlineExceeded
			})
		if err == nil {
			t.Fatal("error swallowed")
		}
		if n := ran.Load(); n > int64(parallel) {
			t.Errorf("parallel=%d: %d cells ran after the first failure (grid=%d)", parallel, n, len(rows)*10)
		}
	}
}
