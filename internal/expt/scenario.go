package expt

// The scenario-composition layer: a declarative Scenario spec over five
// orthogonal axes — protocol x substrate x adversary x placement x
// churn — with a named registry per axis, so the cross-product of
// everything the reproduction can execute is enumerable (the `byzcount
// matrix` subcommand) instead of hand-wired one runner at a time.
// E3, E6, E12, and E15 are rebased onto RunScenario as proof the old
// runners decompose; their tables are byte-identical to the
// pre-scenario code because every axis implementation derives its
// randomness with the exact split labels the hand-wired runners used
// ("graph", "place", "run", "spam", "net", "eng", ...). New
// cross-product cells — Byzantine adversaries on churning topologies —
// are E16-E18.

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"byzcount/internal/byzantine"
	"byzcount/internal/counting"
	"byzcount/internal/dynamic"
	"byzcount/internal/graph"
	"byzcount/internal/sim"
	"byzcount/internal/xrand"
)

// ChurnProfile is the churn axis: per-round leaves and joins applied
// between rounds, quiescing at StopAfter (0 = churn forever). Mixed
// selects the well-mixed event randomness (see dynamic.Churn.Mixed; the
// legacy derivation exists only because E15's published tables pin it).
type ChurnProfile struct {
	Leaves, Joins, StopAfter int
	Mixed                    bool
}

// Active reports whether the profile applies any churn.
func (c ChurnProfile) Active() bool { return c.Leaves > 0 || c.Joins > 0 }

// Scenario is one cell of the composition grid. Zero values select the
// benign static defaults, so a Scenario literal reads like the sentence
// describing the run.
type Scenario struct {
	Proto     string // Protocols key (default "congest")
	Substrate string // Substrates key (default "hnd")
	Adversary string // Adversaries key (default "none", required if Byz > 0)
	Placement string // Placements key (default "random")

	N, D int // scale axis (defaults 256, 8)

	// Byz is the initial Byzantine count. ByzFrac, when positive,
	// overrides it with round(ByzFrac*N) and is the fraction a churn
	// run's roster maintains as the membership turns over; with only
	// Byz set, the maintained fraction is Byz/N.
	Byz     int
	ByzFrac float64
	// ByzJoiners, when positive, starts the run benign and turns
	// exactly the first ByzJoiners arrivals Byzantine (the E18 "single
	// Byzantine joiner" scenario). Requires churn.
	ByzJoiners int

	Churn ChurnProfile
	// Dynamic forces the dynamically maintained substrate even when the
	// churn profile is all-zero (e.g. E15's churn=0 baseline row, which
	// must run on the same topology family as its churned rows).
	Dynamic bool

	// Delay and Fault are the virtual-time delivery axes: a latency-model
	// spec (sim.ParseDelayModel — "unit", "uniform:1-4", "geo:0.5@8",
	// "region:2/1/6", "gst:32/uniform:1-6") and a message-fault spec
	// (sim.ParseFaultModel — "drop:0.05", "partition:2@16-48"). Empty
	// keeps the synchronous engine and with it byte-for-byte
	// compatibility with every pre-virtual-time table; any non-empty
	// value (including the degenerate "unit") runs the cell on the
	// event-ring scheduler. Specs appear verbatim in Label(), so cells
	// differing only in delivery semantics draw distinct sweep sub-seeds.
	Delay string
	Fault string

	MaxPhase  int     // congest protocols: phase-cap override (0 = default)
	MaxRounds int     // round-budget override (0 = the protocol's default)
	StopFrac  float64 // stop once this fraction of the (alive) honest nodes decided (0 = run to halt)
}

// withDefaults fills the zero-value axes.
func (sc Scenario) withDefaults() Scenario {
	if sc.Proto == "" {
		sc.Proto = "congest"
	}
	if sc.Substrate == "" {
		sc.Substrate = "hnd"
	}
	if sc.Adversary == "" {
		sc.Adversary = "none"
	}
	if sc.Placement == "" {
		sc.Placement = "random"
	}
	if sc.N == 0 {
		sc.N = 256
	}
	if sc.D == 0 {
		sc.D = 8
	}
	return sc
}

// Label renders the scenario's grid-cell identity — every axis value
// plus the scale and Byzantine budget, with the full churn profile —
// as a compact tuple. It is the row label of matrix tables, the matrix
// dedupe key, and the sub-seed label of the sweep driver, so two cells
// whose labels agree draw identical randomness: every field that
// selects a different cell must appear here. Run-shape overrides
// (MaxPhase, MaxRounds, StopFrac) are deliberately excluded — they
// reshape how long a cell runs, not which cell it is, and keeping them
// out means e.g. raising the phase cap reuses the same substrate and
// placement draws.
func (sc Scenario) Label() string {
	sc = sc.withDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s/%s", sc.Proto, sc.Substrate, sc.Adversary)
	if sc.Byz > 0 || sc.ByzFrac > 0 {
		fmt.Fprintf(&b, "/%s", sc.Placement)
	}
	fmt.Fprintf(&b, "/n=%d", sc.N)
	if sc.D != 8 {
		fmt.Fprintf(&b, "/d=%d", sc.D)
	}
	switch {
	case sc.ByzFrac > 0:
		fmt.Fprintf(&b, "/byz=%.3g", sc.ByzFrac)
	case sc.Byz > 0:
		fmt.Fprintf(&b, "/byz=%d", sc.Byz)
	}
	if sc.ByzJoiners > 0 {
		fmt.Fprintf(&b, "/byzjoin=%d", sc.ByzJoiners)
	}
	if sc.Churn.Active() {
		fmt.Fprintf(&b, "/churn=%d-%d", sc.Churn.Leaves, sc.Churn.Joins)
		if sc.Churn.StopAfter > 0 {
			fmt.Fprintf(&b, "@%d", sc.Churn.StopAfter)
		}
		if sc.Churn.Mixed {
			b.WriteString("+mixed")
		}
	} else if sc.Dynamic {
		b.WriteString("/dynamic")
	}
	if sc.Delay != "" {
		fmt.Fprintf(&b, "/delay=%s", sc.Delay)
	}
	if sc.Fault != "" && sc.Fault != "none" {
		fmt.Fprintf(&b, "/fault=%s", sc.Fault)
	}
	return b.String()
}

// byzBudget resolves the initial Byzantine count and the fraction a
// churn roster maintains.
func (sc Scenario) byzBudget() (count int, target float64) {
	if sc.ByzFrac > 0 {
		return int(math.Round(sc.ByzFrac * float64(sc.N))), sc.ByzFrac
	}
	if sc.Byz > 0 {
		return sc.Byz, float64(sc.Byz) / float64(sc.N)
	}
	return 0, 0
}

// Validate checks that every axis name resolves and that the axes
// compose (schedule-driven adversaries need the CONGEST protocol, churn
// needs the dynamically maintainable substrate, ...). Error messages
// enumerate the valid values so CLI typos fail fast and helpfully.
func (sc Scenario) Validate() error {
	sc = sc.withDefaults()
	proto, ok := Protocols[sc.Proto]
	if !ok {
		return fmt.Errorf("expt: unknown protocol %q (have %v)", sc.Proto, ProtocolNames())
	}
	if _, ok := Substrates[sc.Substrate]; !ok {
		return fmt.Errorf("expt: unknown substrate %q (have %v)", sc.Substrate, SubstrateNames())
	}
	adv, ok := Adversaries[sc.Adversary]
	if !ok {
		return fmt.Errorf("expt: unknown adversary %q (have %v)", sc.Adversary, AdversaryNames())
	}
	if _, ok := Placements[sc.Placement]; !ok {
		return fmt.Errorf("expt: unknown placement %q (have %v)", sc.Placement, PlacementNames())
	}
	count, _ := sc.byzBudget()
	if (count > 0 || sc.ByzJoiners > 0) && adv.Proc == nil {
		return fmt.Errorf("expt: %d Byzantine nodes need an adversary (have %v)", max(count, sc.ByzJoiners), AdversaryNames())
	}
	if adv.NeedsSchedule && !proto.Congest {
		return fmt.Errorf("expt: adversary %q is schedule-driven and needs the congest protocol, not %q", sc.Adversary, sc.Proto)
	}
	if (sc.Churn.Active() || sc.Dynamic) && sc.Substrate != "hnd" {
		return fmt.Errorf("expt: churn requires the dynamically maintained hnd substrate, not %q", sc.Substrate)
	}
	if sc.ByzJoiners > 0 && !sc.Churn.Active() {
		return fmt.Errorf("expt: ByzJoiners needs churn (no joiners arrive on a static network)")
	}
	if sc.ByzJoiners > 0 && count > 0 {
		return fmt.Errorf("expt: ByzJoiners starts the run benign and cannot combine with an initial Byzantine budget (Byz/ByzFrac)")
	}
	if sc.N < 3 || sc.D < 1 {
		return fmt.Errorf("expt: degenerate scale n=%d d=%d", sc.N, sc.D)
	}
	if sc.Delay != "" {
		if _, err := sim.ParseDelayModel(sc.Delay); err != nil {
			return err
		}
	}
	if sc.Fault != "" {
		if _, err := sim.ParseFaultModel(sc.Fault); err != nil {
			return err
		}
	}
	return nil
}

// scenarioCtx carries the resolved pieces axis implementations build
// procs from.
type scenarioCtx struct {
	sc      Scenario
	rng     *xrand.Rand // the trial's root stream
	congest counting.CongestParams
	local   counting.LocalParams
	byz     []bool // initial Byzantine mask (by vertex/slot)

	world *byzantine.FakeWorld // fake adversary: the shared region
	when  *xrand.Rand          // crash adversary: the crash-round stream
}

// Protocol is one value of the protocol axis: how honest nodes count.
type Protocol struct {
	Name string
	// Congest marks the CONGEST protocol; its schedule is available to
	// schedule-driven adversaries and its metrics use the log_d band.
	Congest bool
	// MaxRounds is the protocol's default round budget.
	MaxRounds func(ctx *scenarioCtx) int
	// Proc builds the honest process for vertex/slot v.
	Proc func(ctx *scenarioCtx, v int) sim.Proc
}

// Protocols is the protocol-axis registry.
var Protocols = map[string]Protocol{
	"congest": {
		Name: "congest", Congest: true,
		MaxRounds: func(ctx *scenarioCtx) int { return congestMaxRounds(ctx.congest) },
		Proc:      func(ctx *scenarioCtx, v int) sim.Proc { return counting.NewCongestProc(ctx.congest) },
	},
	"local": {
		Name:      "local",
		MaxRounds: func(ctx *scenarioCtx) int { return ctx.local.MaxRounds + 8 },
		Proc:      func(ctx *scenarioCtx, v int) sim.Proc { return counting.NewLocalProc(ctx.local) },
	},
	"geometric": {
		Name:      "geometric",
		MaxRounds: func(ctx *scenarioCtx) int { return 50 * ctx.sc.N },
		Proc:      func(ctx *scenarioCtx, v int) sim.Proc { return counting.NewGeometricProc(16) },
	},
	"support": {
		Name:      "support",
		MaxRounds: func(ctx *scenarioCtx) int { return 50 * ctx.sc.N },
		Proc:      func(ctx *scenarioCtx, v int) sim.Proc { return counting.NewSupportProc(32, 16) },
	},
	"kmv": {
		Name:      "kmv",
		MaxRounds: func(ctx *scenarioCtx) int { return 50 * ctx.sc.N },
		Proc:      func(ctx *scenarioCtx, v int) sim.Proc { return counting.NewKMVProc(32, 16) },
	},
	"walk": {
		Name:      "walk",
		MaxRounds: func(ctx *scenarioCtx) int { return 100 * ctx.sc.N },
		Proc:      func(ctx *scenarioCtx, v int) sim.Proc { return counting.NewReturnWalkProc(4, 64*ctx.sc.N) },
	},
	"tree": {
		Name:      "tree",
		MaxRounds: func(ctx *scenarioCtx) int { return 20 * ctx.sc.N },
		Proc:      func(ctx *scenarioCtx, v int) sim.Proc { return counting.NewTreeCountProc(v == findRoot(ctx.byz)) },
	},
}

// Substrate is one value of the substrate axis: the topology family the
// run executes on. Static families build a graph.Graph; under an active
// churn profile the (dynamically maintainable) hnd family builds a
// dynamic.Network instead — see RunScenario.
type Substrate struct {
	Name string
	// Deterministic marks families that ignore their random stream
	// (ring, torus): every trial at one scale builds the same graph, so
	// the substrate cache drops the seed from their key and all cells
	// share a single build.
	Deterministic bool
	Build         func(n, d int, rng *xrand.Rand) (*graph.Graph, error)
	// Implicit, when set, marks an on-demand family: RunScenario runs it
	// on a sim.New engine over the returned topology instead of
	// materializing a CSR, so a million-vertex cell costs O(1) substrate
	// memory. The run path mirrors the static split-label sequence and
	// both engine constructors share their ID-stream derivation, so an
	// implicit cell's outputs are byte-identical to its materialized
	// counterpart's (pinned by TestImplicitScenarioMatchesMaterialized).
	// Implicit families bypass the substrate cache — building one is a
	// couple of field writes, cheaper than the cache lookup (see
	// cache.go). Build stays populated as the materialized counterpart
	// for tooling that needs a *graph.Graph.
	Implicit func(n, d int) (sim.Topology, error)
}

// torusSide returns the smallest side with side*side >= n — the square
// shape both torus substrates share.
func torusSide(n int) int {
	side := 1
	for side*side < n {
		side++
	}
	return side
}

// latticeK maps the scenario degree axis to the ring-lattice k (2k
// neighbors per vertex), mirroring the smallworld family's d/2.
func latticeK(d int) int { return max(d/2, 1) }

// Substrates is the substrate-axis registry.
var Substrates = map[string]Substrate{
	"hnd": {Name: "hnd", Build: func(n, d int, rng *xrand.Rand) (*graph.Graph, error) {
		return graph.HND(n, d, rng)
	}},
	"regular": {Name: "regular", Build: func(n, d int, rng *xrand.Rand) (*graph.Graph, error) {
		return graph.SimpleRegular(n, d, 100, rng)
	}},
	"smallworld": {Name: "smallworld", Build: func(n, d int, rng *xrand.Rand) (*graph.Graph, error) {
		return graph.WattsStrogatz(n, max(d/2, 1), 0.2, rng)
	}},
	"ring": {Name: "ring", Deterministic: true, Build: func(n, d int, rng *xrand.Rand) (*graph.Graph, error) {
		return graph.Ring(n)
	}},
	"torus": {Name: "torus", Deterministic: true, Build: func(n, d int, rng *xrand.Rand) (*graph.Graph, error) {
		return graph.Torus(torusSide(n), torusSide(n))
	}},
	// Implicit counterparts of the deterministic families, plus the
	// unrewired k-nearest lattice: same adjacency (row for row), no
	// materialized CSR — the substrates the n=10^6 scaling lane runs on.
	"ring-implicit": {Name: "ring-implicit", Deterministic: true,
		Build: func(n, d int, rng *xrand.Rand) (*graph.Graph, error) {
			return graph.Ring(n)
		},
		Implicit: func(n, d int) (sim.Topology, error) {
			return graph.ImplicitRing(n)
		}},
	"torus-implicit": {Name: "torus-implicit", Deterministic: true,
		Build: func(n, d int, rng *xrand.Rand) (*graph.Graph, error) {
			return graph.Torus(torusSide(n), torusSide(n))
		},
		Implicit: func(n, d int) (sim.Topology, error) {
			return graph.NewTorusGrid(torusSide(n), torusSide(n))
		}},
	"lattice": {Name: "lattice", Deterministic: true,
		Build: func(n, d int, rng *xrand.Rand) (*graph.Graph, error) {
			lat, err := graph.NewRingLattice(n, latticeK(d))
			if err != nil {
				return nil, err
			}
			return lat.Materialize()
		},
		Implicit: func(n, d int) (sim.Topology, error) {
			return graph.NewRingLattice(n, latticeK(d))
		}},
}

// Adversary is one value of the adversary axis: what Byzantine nodes
// do. Prepare (optional) builds state shared by every Byzantine node —
// e.g. the consistent fake world. Proc builds the process occupying
// vertex/slot v; implementations derive their randomness from
// ctx.rng with fixed labels so runs are pure functions of the seed.
type Adversary struct {
	Name string
	// NeedsSchedule marks adversaries driven by the CONGEST schedule.
	NeedsSchedule bool
	Prepare       func(ctx *scenarioCtx) error
	Proc          func(ctx *scenarioCtx, v int) sim.Proc
}

// Adversaries is the adversary-axis registry.
var Adversaries = map[string]Adversary{
	"none": {Name: "none"},
	// Beacon spam with a per-vertex stream — the E3/E12/E16 convention
	// (label "spam", indexed by vertex/slot).
	"spam": {
		Name: "spam", NeedsSchedule: true,
		Proc: func(ctx *scenarioCtx, v int) sim.Proc {
			return byzantine.NewBeaconSpammer(ctx.congest.Schedule, 6, false, ctx.rng.SplitN("spam", v))
		},
	},
	// Beacon spam with the shared-seed stream derivation E6's published
	// tables pin ("run"/"spamr": every spammer gets an identical,
	// independent stream instance).
	"spam-shared": {
		Name: "spam-shared", NeedsSchedule: true,
		Proc: func(ctx *scenarioCtx, v int) sim.Proc {
			return byzantine.NewBeaconSpammer(ctx.congest.Schedule, 6, false, ctx.rng.Split("run").Split("spamr"))
		},
	},
	"silent": {
		Name: "silent",
		Proc: func(ctx *scenarioCtx, v int) sim.Proc { return byzantine.Silent{} },
	},
	// The consistent fake-network attack of Remark 1 (LOCAL protocol):
	// all Byzantine nodes share one fabricated region, built from the
	// "world" stream.
	"fake": {
		Name: "fake",
		Prepare: func(ctx *scenarioCtx) error {
			count, _ := ctx.sc.byzBudget()
			world, err := byzantine.NewFakeWorld(2*ctx.sc.N, ctx.sc.D, ctx.sc.D+2,
				max(count, 1), ctx.rng.Split("world"))
			if err != nil {
				return err
			}
			ctx.world = world
			return nil
		},
		Proc: func(ctx *scenarioCtx, v int) sim.Proc { return byzantine.NewFakeNetworkLocal(ctx.world, 1) },
	},
	// Fail-stop churn: the node runs the honest protocol and crashes at
	// a random round — the E13 convention ("when"/"c", per vertex).
	"crash": {
		Name: "crash",
		Prepare: func(ctx *scenarioCtx) error {
			ctx.when = ctx.rng.Split("when")
			return nil
		},
		Proc: func(ctx *scenarioCtx, v int) sim.Proc {
			honest := Protocols[ctx.sc.withDefaults().Proto].Proc(ctx, v)
			return byzantine.NewCrash(honest, 20+ctx.when.SplitN("c", v).Intn(200))
		},
	},
	"geo-max": {
		Name: "geo-max",
		Proc: func(ctx *scenarioCtx, v int) sim.Proc {
			return &byzantine.GeoMaxFaker{FakeValue: 1 << 20, Period: 1}
		},
	},
	"support-min": {
		Name: "support-min",
		Proc: func(ctx *scenarioCtx, v int) sim.Proc {
			return &byzantine.SupportMinFaker{K: 32, Period: 4}
		},
	},
	"kmv-poison": {
		Name: "kmv-poison",
		Proc: func(ctx *scenarioCtx, v int) sim.Proc {
			return &byzantine.KMVPoisoner{K: 32, Period: 4}
		},
	},
	"tree-inflate": {
		Name: "tree-inflate",
		Proc: func(ctx *scenarioCtx, v int) sim.Proc {
			return &byzantine.TreeCountInflater{Inflation: 1 << 20}
		},
	},
}

// Placements is the placement-axis registry: where the Byzantine nodes
// sit, over any Substrate (static or churning).
var Placements = map[string]byzantine.Placement{
	"random":    byzantine.RandomPlacement,
	"clustered": byzantine.ClusteredPlacement,
	"spread":    byzantine.SpreadPlacement,
}

// sortedKeys returns a registry's names, sorted.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ProtocolNames returns the registered protocol names, sorted.
func ProtocolNames() []string { return sortedKeys(Protocols) }

// SubstrateNames returns the registered substrate names, sorted.
func SubstrateNames() []string { return sortedKeys(Substrates) }

// AdversaryNames returns the registered adversary names, sorted.
func AdversaryNames() []string { return sortedKeys(Adversaries) }

// PlacementNames returns the registered placement names, sorted.
func PlacementNames() []string { return sortedKeys(Placements) }

// ScenarioOutcome is what one scenario run produces. Outcomes, Honest,
// and Procs are parallel: indexed by vertex on a static substrate, and
// by position in AliveSlots (the nodes alive at the end, in slot order)
// on a churning one.
type ScenarioOutcome struct {
	Outcomes []counting.Outcome
	Honest   []bool
	Procs    []sim.Proc
	Rounds   int
	Metrics  sim.Metrics

	Byz      []bool       // initial Byzantine mask, by vertex/slot
	Graph    *graph.Graph // static (materialized) runs
	Topology sim.Topology // implicit-substrate runs (Graph stays nil)
	Engine   *sim.Engine  // static and implicit runs

	// Churn runs only:
	Runner     *dynamic.Runner
	Net        *dynamic.Network
	Roster     *byzantine.Roster
	AliveSlots []int
}

// RunOptions is the execution-shape half of a scenario run: everything
// that changes how a cell executes without changing which cell it is.
// The zero value is the default serial run, so call sites read
// RunScenario(sc, rng, RunOptions{}) unless they have something to say.
// (Delivery semantics — delay and fault models — are Scenario axes, not
// options: they select a different cell with its own label and tables.)
type RunOptions struct {
	// Workers is the engine's Step-shard worker count (0 or 1 = serial;
	// outputs are bit-identical for every value).
	Workers int
	// TickSkip, when non-nil, explicitly sets virtual-tick
	// fast-forwarding (default on; transcripts are byte-identical either
	// way, only Metrics.TicksSkipped and wall time differ). An explicit
	// setting on a run that structurally cannot consult it — a
	// synchronous cell, a churn cell (the between-rounds hook pins the
	// dense cadence), or a protocol with no TickDriven procs — is an
	// error rather than a silent no-op. It is an execution-shape option,
	// not a Scenario axis, for exactly that transcript-equality reason.
	TickSkip *bool
	// Context, when non-nil, cancels the run cooperatively: the engine
	// polls ctx.Done() every round and aborts with sim.ErrCanceled once
	// it is closed. Cancellation is an execution-shape option by the same
	// argument as Workers — a run that completes does so bit-identically
	// with or without a context; one that is canceled returns an error,
	// never a partial result.
	Context context.Context
}

// RunScenario executes one scenario cell. rng is the cell's root random
// stream (a sweep driver sub-seed, or xrand.New(seed) from the CLI).
// Static cells run on sim.New over the built graph, churning cells on
// dynamic.Runner with a byzantine.Roster re-evaluating the placement as
// members arrive; a Delay or Fault axis puts the engine on the
// virtual-time scheduler either way.
func RunScenario(sc Scenario, rng *xrand.Rand, opts RunOptions) (*ScenarioOutcome, error) {
	sc = sc.withDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	ctx := &scenarioCtx{sc: sc, rng: rng}
	proto := Protocols[sc.Proto]
	adv := Adversaries[sc.Adversary]
	if proto.Congest {
		ctx.congest = counting.DefaultCongestParams(sc.D)
		if sc.MaxPhase > 0 {
			ctx.congest.MaxPhase = sc.MaxPhase
		}
	}
	if sc.Proto == "local" {
		ctx.local = counting.DefaultLocalParams(sc.D + 2)
	}
	// Validate parsed these already; nil models (empty specs) keep the
	// synchronous engine.
	eo := engineOpts{workers: opts.Workers}
	if opts.Context != nil {
		eo.done = opts.Context.Done()
	}
	eo.delay, _ = sim.ParseDelayModel(sc.Delay)
	eo.fault, _ = sim.ParseFaultModel(sc.Fault)
	if opts.TickSkip != nil {
		if eo.delay == nil && eo.fault == nil {
			return nil, fmt.Errorf(
				"expt: -tickskip set on a synchronous cell; tick fast-forwarding " +
					"only exists under the virtual-time scheduler (pass -delay or -fault)")
		}
		if sc.Churn.Active() || sc.Dynamic {
			return nil, fmt.Errorf(
				"expt: -tickskip set on a churn cell; the between-rounds churn hook " +
					"pins the dense tick cadence, so fast-forwarding is structurally disabled")
		}
		eo.tickSkip = *opts.TickSkip
		eo.tickSkipSet = true
	}
	if sc.Churn.Active() || sc.Dynamic {
		return runScenarioChurn(sc, ctx, proto, adv, eo)
	}
	if Substrates[sc.Substrate].Implicit != nil {
		return runScenarioImplicit(sc, ctx, proto, adv, eo)
	}
	return runScenarioStatic(sc, ctx, proto, adv, eo)
}

// runScenarioImplicit is the on-demand-substrate path: no CSR is
// materialized — the engine resolves neighborhoods lazily from the
// implicit topology. The split-label sequence ("graph", "place", "run")
// mirrors runScenarioStatic call for call (the "graph" stream is split
// even though deterministic implicit builds never draw from it), and
// both sim.New dispatch paths assign IDs the same way, so a cell's
// outputs are byte-identical to the materialized counterpart's.
func runScenarioImplicit(sc Scenario, ctx *scenarioCtx, proto Protocol, adv Adversary, eo engineOpts) (*ScenarioOutcome, error) {
	sub := Substrates[sc.Substrate]
	_ = ctx.rng.Split("graph")
	topo, err := sub.Implicit(sc.N, sc.D)
	if err != nil {
		return nil, fmt.Errorf("expt: building %s(n=%d,d=%d): %w", sc.Substrate, sc.N, sc.D, err)
	}
	count, _ := sc.byzBudget()
	byz := make([]bool, topo.Slots())
	if count > 0 {
		byz, err = Placements[sc.Placement](topo, count, ctx.rng.Split("place"))
		if err != nil {
			return nil, err
		}
	}
	ctx.byz = byz
	if adv.Prepare != nil {
		if err := adv.Prepare(ctx); err != nil {
			return nil, err
		}
	}
	maxRounds := sc.MaxRounds
	if maxRounds == 0 {
		maxRounds = proto.MaxRounds(ctx)
	}
	r, err := runProtocolFracParTopo(topo, byz, ctx.rng.Split("run").Uint64(),
		func(v int, eng *sim.Engine) sim.Proc { return proto.Proc(ctx, v) },
		func(v int, eng *sim.Engine) sim.Proc { return adv.Proc(ctx, v) },
		maxRounds, sc.StopFrac, eo)
	if err != nil {
		return nil, err
	}
	return &ScenarioOutcome{
		Outcomes: r.outcomes,
		Honest:   r.honest,
		Procs:    r.procs,
		Rounds:   r.rounds,
		Metrics:  r.metrics,
		Byz:      byz,
		Topology: topo,
		Engine:   r.engine,
	}, nil
}

// runScenarioStatic is the static-substrate path; its split-label
// sequence ("graph", "place", adversary Prepare labels, "run") is
// exactly the hand-wired runners', which is what keeps the rebased
// E3/E6/E12 tables byte-identical.
func runScenarioStatic(sc Scenario, ctx *scenarioCtx, proto Protocol, adv Adversary, eo engineOpts) (*ScenarioOutcome, error) {
	sub := Substrates[sc.Substrate]
	// The build stream is split off purely for this build, so its seed
	// identifies the draw and the substrate cache can reuse one immutable
	// graph across every cell that derives the same stream.
	grng := ctx.rng.Split("graph")
	g, err := cachedSubstrate(sc.Substrate, sc.N, sc.D, grng.Seed(), sub.Deterministic,
		func() (*graph.Graph, error) { return sub.Build(sc.N, sc.D, grng) })
	if err != nil {
		return nil, fmt.Errorf("expt: building %s(n=%d,d=%d): %w", sc.Substrate, sc.N, sc.D, err)
	}
	count, _ := sc.byzBudget()
	byz := make([]bool, g.N())
	if count > 0 {
		byz, err = Placements[sc.Placement](g, count, ctx.rng.Split("place"))
		if err != nil {
			return nil, err
		}
	}
	ctx.byz = byz
	if adv.Prepare != nil {
		if err := adv.Prepare(ctx); err != nil {
			return nil, err
		}
	}
	maxRounds := sc.MaxRounds
	if maxRounds == 0 {
		maxRounds = proto.MaxRounds(ctx)
	}
	r, err := runProtocolFracPar(g, byz, ctx.rng.Split("run").Uint64(),
		func(v int, eng *sim.Engine) sim.Proc { return proto.Proc(ctx, v) },
		func(v int, eng *sim.Engine) sim.Proc { return adv.Proc(ctx, v) },
		maxRounds, sc.StopFrac, eo)
	if err != nil {
		return nil, err
	}
	return &ScenarioOutcome{
		Outcomes: r.outcomes,
		Honest:   r.honest,
		Procs:    r.procs,
		Rounds:   r.rounds,
		Metrics:  r.metrics,
		Byz:      byz,
		Graph:    g,
		Engine:   r.engine,
	}, nil
}

// runScenarioChurn is the mutable-substrate path: the dynamically
// maintained H(n,d) under the scenario's churn profile, with a Roster
// re-evaluating the Byzantine placement as the membership turns over.
// Split labels ("net", "place", "roster", "eng") match E15's, so its
// rebased tables stay byte-identical (a benign scenario draws nothing
// from "place"/"roster").
func runScenarioChurn(sc Scenario, ctx *scenarioCtx, proto Protocol, adv Adversary, eo engineOpts) (*ScenarioOutcome, error) {
	net, err := dynamic.NewNetwork(sc.N, sc.D, ctx.rng.Split("net"))
	if err != nil {
		return nil, err
	}
	count, target := sc.byzBudget()
	mask := make([]bool, net.Slots())
	if count > 0 {
		mask, err = Placements[sc.Placement](net, count, ctx.rng.Split("place"))
		if err != nil {
			return nil, err
		}
	}
	roster, err := byzantine.NewRoster(mask, net.NumAlive(), target, ctx.rng.Split("roster"))
	if err != nil {
		return nil, err
	}
	ctx.byz = mask
	if adv.Prepare != nil {
		if err := adv.Prepare(ctx); err != nil {
			return nil, err
		}
	}
	// The factory consults the roster: initial members use the
	// placement mask; each arrival is decided by the roster's split
	// stream (maintaining the target fraction), except under
	// ByzJoiners, where exactly the first ByzJoiners arrivals turn
	// Byzantine and everyone else stays honest.
	initial := true
	joinOrd := 0
	factory := func(slot dynamic.Slot, id sim.NodeID) sim.Proc {
		isByz := roster.IsByz(slot)
		if !initial {
			if sc.ByzJoiners > 0 {
				isByz = joinOrd < sc.ByzJoiners
				roster.Record(slot, isByz)
			} else {
				isByz = roster.OnJoin(slot)
			}
			joinOrd++
		}
		if isByz {
			return adv.Proc(ctx, slot)
		}
		return proto.Proc(ctx, slot)
	}
	run, err := dynamic.NewRunner(net,
		dynamic.Churn{Leaves: sc.Churn.Leaves, Joins: sc.Churn.Joins,
			StopAfter: sc.Churn.StopAfter, Mixed: sc.Churn.Mixed},
		ctx.rng.Split("eng").Uint64(), factory)
	if err != nil {
		return nil, err
	}
	initial = false
	run.SetLeaveHook(roster.OnLeave)
	run.SetParallelism(max(eo.workers, 1))
	if eo.done != nil {
		run.Engine().SetCancel(eo.done)
	}
	if eo.delay != nil {
		run.SetDelayModel(eo.delay)
	}
	if eo.fault != nil {
		run.SetFaultModel(eo.fault)
	}
	if sc.StopFrac > 0 {
		// Stop once StopFrac of the currently alive honest nodes have
		// decided. While churn is active fresh joiners keep the decided
		// fraction down, so the condition effectively fires after the
		// churn quiesces — exactly the "let the survivors finish" read.
		eng := run.Engine()
		eng.SetStopCondition(func(round int) bool {
			honestTotal, decided := 0, 0
			for s := 0; s < eng.Slots(); s++ {
				if !net.Alive(s) || roster.IsByz(s) {
					continue
				}
				honestTotal++
				if e, ok := eng.Proc(s).(counting.Estimator); ok && e.Outcome().Decided {
					decided++
				}
			}
			return honestTotal == 0 || float64(decided) >= sc.StopFrac*float64(honestTotal)
		})
	}
	maxRounds := sc.MaxRounds
	if maxRounds == 0 {
		maxRounds = proto.MaxRounds(ctx)
	}
	rounds, err := run.Run(maxRounds)
	if err != nil {
		return nil, err
	}
	if err := net.Validate(); err != nil {
		return nil, fmt.Errorf("expt: topology invariant broken after run: %w", err)
	}
	procs, slots := run.AliveProcs()
	honest := make([]bool, len(procs))
	for i, s := range slots {
		honest[i] = !roster.IsByz(s)
	}
	return &ScenarioOutcome{
		Outcomes:   counting.Outcomes(procs),
		Honest:     honest,
		Procs:      procs,
		Rounds:     rounds,
		Metrics:    run.Metrics(),
		Byz:        mask,
		Runner:     run,
		Net:        net,
		Roster:     roster,
		AliveSlots: slots,
	}, nil
}
