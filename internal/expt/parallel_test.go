package expt

import (
	"errors"
	"fmt"
	"testing"

	"byzcount/internal/xrand"
)

// TestSweepRowsOrderAndSeeds: results come back indexed by (row, trial)
// with the documented sub-seed derivation, whatever the concurrency.
func TestSweepRowsOrderAndSeeds(t *testing.T) {
	cfg := Config{Trials: 4, Parallel: 8}
	root := xrand.New(99)
	rows := []int{10, 20, 30}
	got, err := sweepRows(cfg, root, rows,
		func(n int) string { return fmt.Sprintf("row%d", n) },
		func(n, trial int, rng *xrand.Rand) (uint64, error) { return rng.Uint64(), nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range rows {
		for trial := 0; trial < 4; trial++ {
			want := root.SplitN(fmt.Sprintf("row%d", n), trial).Uint64()
			if got[i][trial] != want {
				t.Errorf("cell (%d,%d): got %d want %d", i, trial, got[i][trial], want)
			}
		}
	}
}

// TestSweepRowsErrorPropagation: the first error in (row, trial) order
// surfaces; a failing cell never panics the driver.
func TestSweepRowsErrorPropagation(t *testing.T) {
	cfg := Config{Trials: 3, Parallel: 8}
	boom := errors.New("boom")
	_, err := sweepRows(cfg, xrand.New(1), []int{1, 2},
		func(n int) string { return fmt.Sprint(n) },
		func(n, trial int, rng *xrand.Rand) (int, error) {
			if n == 2 && trial == 1 {
				return 0, boom
			}
			return n, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

// TestTablesIdenticalAcrossParallelism: the sweep driver must produce
// byte-identical tables whatever its concurrency bound, because every
// (row, trial) cell's randomness is a pure sub-seed and rows are
// collected in deterministic order. The subset below covers every
// runner shape: n-sweeps (E1, E3), scenario rows sharing a histogram
// (E4, E14), the shared-label rows of the impossibility experiment
// (E10), the shared-FakeWorld LOCAL attack (E2), crash churn (E13), the
// dynamic-network engine (E15), the churn x Byzantine cross-product
// cells (E16, E18 — roster-maintained fractions and Byzantine joiners),
// and the virtual-time delivery cells (E19 GST jitter, E20 partition
// windows — whole tables through the event-ring scheduler).
func TestTablesIdenticalAcrossParallelism(t *testing.T) {
	ids := []string{"E1", "E2", "E3", "E4", "E10", "E13", "E14", "E15", "E16", "E18", "E19", "E20"}
	if testing.Short() {
		ids = []string{"E3", "E10"}
	}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			serialCfg := Config{Seed: 7, Trials: 2, Quick: true, Parallel: 1}
			parallelCfg := Config{Seed: 7, Trials: 2, Quick: true, Parallel: 8}
			want, err := Run(id, serialCfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Run(id, parallelCfg)
			if err != nil {
				t.Fatal(err)
			}
			if want.Render() != got.Render() {
				t.Errorf("%s table differs across parallelism:\n-- parallel 1 --\n%s\n-- parallel 8 --\n%s",
					id, want.Render(), got.Render())
			}
			if want.CSV() != got.CSV() {
				t.Errorf("%s CSV differs across parallelism", id)
			}
		})
	}
}

// TestConfigParallelDefault: 0 means GOMAXPROCS, explicit values win.
func TestConfigParallelDefault(t *testing.T) {
	if (Config{}).parallel() < 1 {
		t.Error("default parallel must be >= 1")
	}
	if (Config{Parallel: 5}).parallel() != 5 {
		t.Error("explicit parallel")
	}
}
