package expt

// The shared sweep/trial driver: every experiment is a sweep of rows,
// each repeated for cfg.Trials() independent trials. Trials are pure
// functions of their (row label, trial index) sub-seed — xrand.Split is
// a pure derivation from the parent seed, so the sub-streams are
// identical however the (row, trial) grid is scheduled. The driver
// executes the whole grid concurrently with bounded parallelism and
// collects results in deterministic (row, trial) order, which makes
// every table byte-identical across -parallel 1 and -parallel N.

import (
	"context"
	"sync"
	"sync/atomic"

	"byzcount/internal/xrand"
)

// sweepRows runs fn once per (row, trial) pair, at most cfg.parallel()
// concurrently, and returns results[row][trial]. The sub-seed of a pair
// is root.SplitN(label(row), trial) — exactly what the hand-rolled
// per-runner loops used, so tables are unchanged from the serial days.
// On failure the first error in (row, trial) order is returned.
func sweepRows[P, R any](cfg Config, root *xrand.Rand, rows []P,
	label func(P) string, fn func(row P, trial int, rng *xrand.Rand) (R, error)) ([][]R, error) {
	return sweepRowsCtx(context.Background(), cfg, root, rows, label,
		func(_ context.Context, row P, trial int, rng *xrand.Rand) (R, error) {
			return fn(row, trial, rng)
		})
}

// sweepRowsCtx is sweepRows with two additions the durable sweep path
// needs: a context that stops the grid between cells (cells already
// launched run to completion; their engines observe the context
// separately), and fail-fast scheduling — once any cell records an
// error, cells that have not started yet are skipped instead of
// burning the rest of the grid's compute on a run whose result will be
// discarded anyway. Completed cells keep their results either way, and
// the error returned is still the first in deterministic (row, trial)
// order among the cells that ran.
func sweepRowsCtx[P, R any](ctx context.Context, cfg Config, root *xrand.Rand, rows []P,
	label func(P) string, fn func(ctx context.Context, row P, trial int, rng *xrand.Rand) (R, error)) ([][]R, error) {
	trials := cfg.trials()
	results := make([][]R, len(rows))
	errs := make([][]error, len(rows))
	for i := range rows {
		results[i] = make([]R, trials)
		errs[i] = make([]error, trials)
	}
	sem := make(chan struct{}, cfg.parallel())
	var failed atomic.Bool
	var wg sync.WaitGroup
	for i := range rows {
		for t := 0; t < trials; t++ {
			wg.Add(1)
			go func(i, t int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				// Checked after acquiring the slot, not before: the goroutines
				// all exist from the start, so the slot is the scheduling
				// point — a cell that gets a slot after a failure (or
				// cancellation) is a cell that would otherwise start fresh
				// work.
				if failed.Load() || ctx.Err() != nil {
					return
				}
				rng := root.SplitN(label(rows[i]), t)
				results[i][t], errs[i][t] = fn(ctx, rows[i], t, rng)
				if errs[i][t] != nil {
					failed.Store(true)
				}
			}(i, t)
		}
	}
	wg.Wait()
	for i := range errs {
		for _, err := range errs[i] {
			if err != nil {
				return nil, err
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// column extracts one float64 per trial from a row's results, in trial
// order — the shape stats.Mean and friends consume.
func column[R any](trials []R, get func(R) float64) []float64 {
	out := make([]float64, 0, len(trials))
	for _, r := range trials {
		out = append(out, get(r))
	}
	return out
}

// columnIf is column restricted to trials where keep returns true (for
// per-trial statistics that are undefined on some trials, e.g. a mean
// over an empty vertex class).
func columnIf[R any](trials []R, keep func(R) bool, get func(R) float64) []float64 {
	out := make([]float64, 0, len(trials))
	for _, r := range trials {
		if keep(r) {
			out = append(out, get(r))
		}
	}
	return out
}
