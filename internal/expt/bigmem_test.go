//go:build bigmem && !race

package expt

// The million-vertex end-to-end scenario, opt-in via -tags=bigmem
// (GB-scale live heap, a couple of minutes of CPU):
//
//	go test -tags=bigmem -run TestBig -timeout 30m ./internal/expt/
//
// This is the acceptance path for the implicit-substrate layer: a torus
// scenario at n=10^6 through the full registry pipeline — placement,
// adversary hooks, the congest protocol, engine metrics — without ever
// materializing adjacency. MaxPhase=2 bounds the run at 71 rounds (the
// phase wall; at d=8 congest cannot decide its way to phase ~20 inside
// any reasonable test budget, and the point here is the substrate
// plumbing, not the estimate).

import (
	"testing"

	"byzcount/internal/xrand"
)

func TestBigImplicitTorusScenario(t *testing.T) {
	const n = 1_000_000
	sc := Scenario{
		Proto:     "congest",
		Substrate: "torus-implicit",
		N:         n,
		D:         8,
		MaxPhase:  2,
	}
	out, err := RunScenario(sc, xrand.New(42).Split("big"), RunOptions{})
	if err != nil {
		t.Fatalf("RunScenario at n=%d: %v", n, err)
	}
	if out.Graph != nil {
		t.Fatal("implicit scenario materialized a graph")
	}
	if out.Topology == nil || out.Topology.Slots() != n {
		t.Fatalf("outcome topology = %v, want %d implicit slots", out.Topology, n)
	}
	if len(out.Outcomes) != n || len(out.Honest) != n {
		t.Fatalf("outcome sizes %d/%d, want %d", len(out.Outcomes), len(out.Honest), n)
	}
	if out.Rounds <= 0 {
		t.Fatalf("run reported %d rounds", out.Rounds)
	}
	m := out.Metrics
	if m.Messages <= 0 {
		t.Fatal("run delivered no messages")
	}
	t.Logf("n=%d rounds=%d messages=%d bits=%d", n, out.Rounds, m.Messages, m.Bits)
}
