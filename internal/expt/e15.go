package expt

import (
	"fmt"

	"byzcount/internal/counting"
	"byzcount/internal/stats"
	"byzcount/internal/xrand"
)

// E15 — extension: join/leave churn on the dynamically maintained H(n,d)
// topology. The works the paper aims to serve ([3,4,5]) run in dynamic
// peer-to-peer networks with adversarial churn but a stable size; this
// experiment turns the membership over at increasing rates while the
// counting protocol runs, and checks that surviving nodes still land in
// the estimate band.
func E15(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E15",
		Title:   "Extension: CONGEST counting under join/leave churn (dynamic H(n,d))",
		Claim:   "Section 1 motivation: counting should serve dynamic networks where the size is stable but membership churns ([3,4,5])",
		Columns: []string{"churn/round", "turnover", "decided_frac", "bounded_frac", "mode"},
	}
	const d = 8
	n := 256
	if cfg.Quick {
		n = 128
	}
	root := xrand.New(cfg.Seed)
	perRounds := []int{0, 1, 2, 4}
	type res struct {
		turnover, decided, bounded float64
		ests                       []int
	}
	results, err := sweepRows(cfg, root, perRounds,
		func(perRound int) string { return fmt.Sprintf("e15-%d", perRound) },
		func(perRound, trial int, rng *xrand.Rand) (res, error) {
			// The benign churn cell of the scenario grid. Legacy
			// (non-Mixed) event randomness: the published tables pin the
			// original churn engine's per-event stream derivation, under
			// which balanced churn recycles the same few slots (see
			// Churn.Mixed). Turnover below therefore counts departures,
			// not distinct departed nodes. The factory's CongestProc
			// builds each round's output with the append-into-scratch
			// idiom, and the unified engine recycles slot state across
			// joins, so churn rounds are allocation-free like every other
			// workload (see internal/sim/alloc_test.go's churn case).
			r, err := RunScenario(Scenario{
				Proto: "congest", Substrate: "hnd", Dynamic: true,
				N: n, D: d, MaxPhase: 8,
				Churn: ChurnProfile{Leaves: perRound, Joins: perRound, StopAfter: 150},
			}, rng, RunOptions{})
			if err != nil {
				return res{}, err
			}
			out := res{turnover: float64(r.Runner.Left()) / float64(n)}
			dec, bnd := 0, 0
			logd := counting.LogD(n, d)
			for _, o := range r.Outcomes {
				if !o.Decided {
					continue
				}
				dec++
				out.ests = append(out.ests, o.Estimate)
				if float64(o.Estimate) >= 0.5*logd && float64(o.Estimate) <= 2*logd+2 {
					bnd++
				}
			}
			out.decided = float64(dec) / float64(len(r.Procs))
			out.bounded = float64(bnd) / float64(len(r.Procs))
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	for i, perRound := range perRounds {
		rs := results[i]
		hist := stats.NewHistogram()
		turnover := 0.0
		for _, r := range rs {
			turnover += r.turnover
			for _, e := range r.ests {
				hist.Add(e)
			}
		}
		mode, _ := hist.Mode()
		t.AddRow(perRound, turnover/float64(cfg.trials()),
			stats.Mean(column(rs, func(r res) float64 { return r.decided })),
			stats.Mean(column(rs, func(r res) float64 { return r.bounded })),
			mode)
	}
	t.Notes = append(t.Notes,
		"turnover = departures / initial n during the churn window; churn stops at round 150 so the protocol can quiesce",
		"metrics are over nodes alive at the end (joiners mid-run restart the protocol from the current global round)")
	return t, nil
}
