package graph

import (
	"math"

	"byzcount/internal/xrand"
)

// VertexExpansionExact computes the exact vertex expansion
//
//	h(G) = min over nonempty S with |S| <= n/2 of |Out(S)| / |S|
//
// by enumerating all 2^n - 2 candidate subsets (Definition 1). It is
// intended for validation on tiny graphs; it panics for n > 24.
func (g *Graph) VertexExpansionExact() float64 {
	n := g.n
	if n > 24 {
		panic("graph: VertexExpansionExact limited to n <= 24")
	}
	if n < 2 {
		return 0
	}
	best := math.Inf(1)
	for mask := 1; mask < (1<<uint(n))-1; mask++ {
		size := popcount(mask)
		if size > n/2 {
			continue
		}
		out := g.outSizeMask(mask)
		ratio := float64(out) / float64(size)
		if ratio < best {
			best = ratio
		}
	}
	return best
}

func popcount(x int) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

// outSizeMask returns |Out(S)| for the subset encoded in mask (n <= 24).
func (g *Graph) outSizeMask(mask int) int {
	v := g.view()
	out := 0
	var outMask int
	for u := 0; u < g.n; u++ {
		if mask&(1<<uint(u)) == 0 {
			continue
		}
		for _, w := range v.tgt[v.off[u]:v.off[u+1]] {
			bit := 1 << uint(w)
			if mask&bit == 0 && outMask&bit == 0 {
				outMask |= bit
				out++
			}
		}
	}
	return out
}

// OutNeighbors returns Out(S): the set of vertices outside S adjacent to at
// least one member of S. S is given as a vertex list; duplicates are
// tolerated.
func (g *Graph) OutNeighbors(s []int) []int {
	return g.AppendOutNeighbors(nil, s)
}

// AppendOutNeighbors appends Out(S) to buf and returns the extended slice
// — the allocation-free counterpart of OutNeighbors. Membership and
// dedup bookkeeping live in generation-stamped scratch arrays (the seed
// code built two maps per call). Out(S) is emitted in first-discovery
// order: scanning S in the given order, each member's adjacency in CSR
// order — the same order the seed code produced.
func (g *Graph) AppendOutNeighbors(buf []int, s []int) []int {
	v := g.view()
	sc := getScratch(g.n)
	// A second generation marks emitted out-neighbors; members keep their
	// inGen stamp, so one compare answers both "in S" and "already seen".
	inGen, outGen := sc.nextGen2()
	for _, x := range s {
		g.check(x)
		sc.mark[x] = inGen
	}
	for _, x := range s {
		for _, w := range v.tgt[v.off[x]:v.off[x+1]] {
			if sc.mark[w] != inGen && sc.mark[w] != outGen {
				sc.mark[w] = outGen
				buf = append(buf, int(w))
			}
		}
	}
	putScratch(sc)
	return buf
}

// ExpansionOf returns |Out(S)|/|S| for the subset S (as a vertex list,
// deduplicated internally). Empty S yields +Inf.
func (g *Graph) ExpansionOf(s []int) float64 {
	v := g.view()
	sc := getScratch(g.n)
	inGen, outGen := sc.nextGen2()
	size := 0
	for _, x := range s {
		g.check(x)
		if sc.mark[x] != inGen {
			sc.mark[x] = inGen
			size++
		}
	}
	if size == 0 {
		putScratch(sc)
		return math.Inf(1)
	}
	out := 0
	for _, x := range s {
		for _, w := range v.tgt[v.off[x]:v.off[x+1]] {
			if sc.mark[w] != inGen && sc.mark[w] != outGen {
				sc.mark[w] = outGen
				out++
			}
		}
	}
	putScratch(sc)
	return float64(out) / float64(size)
}

// EstimateVertexExpansion returns an upper bound on h(G) obtained by BFS
// sweeps: for each of the given number of random start vertices it orders
// vertices by BFS discovery and evaluates |Out(S)|/|S| over all prefixes S
// with |S| <= n/2, keeping the minimum. BFS prefixes are exactly the ball
// family the counting algorithms reason about, so this heuristic is tight
// on the topologies in this repository (rings, dumbbells, expanders).
func (g *Graph) EstimateVertexExpansion(sweeps int, rng *xrand.Rand) float64 {
	n := g.n
	if n < 2 {
		return 0
	}
	if sweeps < 1 {
		sweeps = 1
	}
	v := g.view()
	best := math.Inf(1)
	inPrefix := make([]bool, n)
	outCount := make([]bool, n)
	var order []int
	for s := 0; s < sweeps; s++ {
		src := rng.Intn(n)
		order = g.AppendBall(order[:0], src, n) // full BFS order of src's component
		for i := range inPrefix {
			inPrefix[i] = false
			outCount[i] = false
		}
		outSize := 0
		for i, x := range order {
			inPrefix[x] = true
			if outCount[x] {
				outCount[x] = false
				outSize--
			}
			for _, w := range v.tgt[v.off[x]:v.off[x+1]] {
				if !inPrefix[w] && !outCount[w] {
					outCount[w] = true
					outSize++
				}
			}
			size := i + 1
			if size > n/2 {
				break
			}
			if ratio := float64(outSize) / float64(size); ratio < best {
				best = ratio
			}
		}
	}
	return best
}

// BallGrowthProfile returns the sequence |B(u,1)|/|B(u,0)|, ...,
// |B(u,r)|/|B(u,r-1)| of ball growth ratios around u. Expanders keep the
// ratio bounded away from 1 until the ball covers a constant fraction of
// the graph; this is the local expansion signal Algorithm 1 checks.
func (g *Graph) BallGrowthProfile(u, r int) []float64 {
	dist := g.BFSLimited(u, r)
	layerSize := make([]int, r+1)
	for _, d := range dist {
		if d != Unreachable {
			layerSize[d]++
		}
	}
	out := make([]float64, 0, r)
	cum := layerSize[0]
	for i := 1; i <= r; i++ {
		prev := cum
		cum += layerSize[i]
		if prev == 0 {
			out = append(out, 0)
			continue
		}
		out = append(out, float64(cum)/float64(prev))
	}
	return out
}

// CheegerBoundSpectral estimates the spectral gap of the lazy random walk
// on g via power iteration and converts it to a vertex-expansion lower
// bound using the discrete Cheeger inequality h >= gap/2 (valid for
// d-regular graphs; for irregular graphs it is a heuristic). It returns 0
// for graphs where the iteration fails to separate the second eigenvalue
// (e.g. disconnected graphs).
//
// The walk matrix is W = 1/2 (I + P) with P the transition matrix; power
// iteration runs on the component orthogonal to the stationary
// distribution.
func (g *Graph) CheegerBoundSpectral(iters int, rng *xrand.Rand) float64 {
	n := g.n
	if n < 2 || !g.IsConnected() {
		return 0
	}
	if iters < 8 {
		iters = 8
	}
	cv := g.view()
	deg := make([]float64, n)
	var totalDeg float64
	for u := 0; u < n; u++ {
		deg[u] = float64(g.deg[u])
		totalDeg += deg[u]
	}
	// Stationary distribution pi(u) = deg(u)/2m.
	pi := make([]float64, n)
	for u := range pi {
		pi[u] = deg[u] / totalDeg
	}
	x := make([]float64, n)
	for u := range x {
		x[u] = rng.Float64() - 0.5
	}
	y := make([]float64, n)
	var lambda float64
	for it := 0; it < iters; it++ {
		// Project out the stationary component (in the pi inner product the
		// top eigenvector of the reversible walk is the all-ones vector).
		var dot float64
		for u := range x {
			dot += pi[u] * x[u]
		}
		for u := range x {
			x[u] -= dot
		}
		// y = W x with W = (I + P)/2, P x(u) = avg over neighbors.
		for u := range y {
			var sum float64
			for _, w := range cv.tgt[cv.off[u]:cv.off[u+1]] {
				sum += x[w]
			}
			y[u] = 0.5*x[u] + 0.5*sum/deg[u]
		}
		// Rayleigh quotient in the pi inner product.
		var num, den float64
		for u := range x {
			num += pi[u] * x[u] * y[u]
			den += pi[u] * x[u] * x[u]
		}
		if den == 0 {
			return 0
		}
		lambda = num / den
		// Normalize to avoid under/overflow.
		var norm float64
		for u := range y {
			norm += y[u] * y[u]
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return 0
		}
		for u := range y {
			x[u] = y[u] / norm
		}
	}
	gap := 1 - lambda
	if gap < 0 {
		gap = 0
	}
	return gap / 2
}
