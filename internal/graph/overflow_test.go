package graph

import (
	"errors"
	"testing"

	"byzcount/internal/xrand"
)

// wantOverflow asserts err unwraps to *OverflowError naming `what`.
func wantOverflow(t *testing.T, err error, what string) {
	t.Helper()
	var of *OverflowError
	if !errors.As(err, &of) {
		t.Fatalf("err = %v, want *OverflowError", err)
	}
	if of.What != what {
		t.Errorf("OverflowError.What = %q, want %q", of.What, what)
	}
	if of.Error() == "" {
		t.Error("empty error string")
	}
}

func TestCheckEdgeBudget(t *testing.T) {
	if err := CheckEdgeBudget(0); err != nil {
		t.Errorf("0 edges rejected: %v", err)
	}
	if err := CheckEdgeBudget(MaxEdges); err != nil {
		t.Errorf("MaxEdges rejected: %v", err)
	}
	wantOverflow(t, CheckEdgeBudget(MaxEdges+1), "edges")
	wantOverflow(t, CheckEdgeBudget(-1), "edges")
}

// TestGeneratorOverflowGuards drives every generator with sizes whose
// edge count exceeds the int32 arc-offset budget. The guards run before
// any allocation, so these error paths are cheap despite the sizes.
func TestGeneratorOverflowGuards(t *testing.T) {
	rng := xrand.New(1)
	_, err := HND(1<<30, 8, rng)
	wantOverflow(t, err, "edges")
	_, err = Ring(MaxVertices)
	wantOverflow(t, err, "edges")
	_, err = Torus(1<<16, 1<<16)
	wantOverflow(t, err, "edges")
	_, err = Complete(1 << 20)
	wantOverflow(t, err, "edges")
	_, err = WattsStrogatz(1<<28, 17, 0, rng)
	wantOverflow(t, err, "edges")
	_, err = ConfigurationModel([]int{MaxEdges + 2, MaxEdges + 2}, rng)
	wantOverflow(t, err, "edges")
	_, err = NewRingLattice(1<<28, 16)
	wantOverflow(t, err, "edges")
	_, err = NewTorusGrid(1<<16, 1<<16)
	wantOverflow(t, err, "edges")
}

// TestAddEdgeOverflowPanics pins the AddEdge guard at the exact MaxEdges
// boundary (the counter is forced; logging 2^30 real edges would need
// gigabytes).
func TestAddEdgeOverflowPanics(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.ForceEdgeCount(MaxEdges)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("AddEdge past MaxEdges did not panic")
		}
		err, ok := r.(*OverflowError)
		if !ok {
			t.Fatalf("panic value %v, want *OverflowError", r)
		}
		if err.What != "edges" || err.Limit != MaxEdges {
			t.Errorf("panic = %+v", err)
		}
	}()
	g.AddEdge(2, 3)
}

// TestChunkedLogShape asserts the no-copy growth contract: chunks stay
// bounded, a reserved build carves exact-size chunks, and the flattened
// log preserves insertion order either way.
func TestChunkedLogShape(t *testing.T) {
	const m = 200_000
	unres := New(4)
	for i := 0; i < m; i++ {
		unres.AddEdge(i&1, 2+(i&1))
	}
	res := New(4)
	res.Reserve(m)
	for i := 0; i < m; i++ {
		res.AddEdge(i&1, 2+(i&1))
	}
	for name, g := range map[string]*Graph{"unreserved": unres, "reserved": res} {
		total := 0
		for i, ch := range g.EdgeLogChunks() {
			if len(ch)%2 != 0 {
				t.Fatalf("%s chunk %d holds a half pair", name, i)
			}
			if cap(ch) > 2*edgeChunkEdges {
				t.Errorf("%s chunk %d cap %d exceeds bound %d", name, i, cap(ch), 2*edgeChunkEdges)
			}
			total += len(ch) / 2
		}
		if total != m {
			t.Errorf("%s: chunks hold %d edges, want %d", name, total, m)
		}
	}
	// A reserved build carves exactly ceil(m/chunk) chunks.
	if got, want := len(res.EdgeLogChunks()), (m+edgeChunkEdges-1)/edgeChunkEdges; got != want {
		t.Errorf("reserved build carved %d chunks, want %d", got, want)
	}
	// Same CSR from both logs.
	for v := 0; v < 4; v++ {
		if !rowEqual(unres.Neighbors(v), res.Adj(v)) {
			t.Fatalf("vertex %d rows diverge between reserved and unreserved builds", v)
		}
	}
	if err := unres.Validate(); err != nil {
		t.Errorf("unreserved Validate: %v", err)
	}
	if err := res.Validate(); err != nil {
		t.Errorf("reserved Validate: %v", err)
	}
}
