package graph

import (
	"fmt"
	"sort"
	"testing"

	"byzcount/internal/xrand"
)

// refAdj replays the graph's edge log through the seed-era
// slice-of-slices representation: for each logged edge (u,v), u appends
// v and then v appends u (a self-loop appends twice to u). The CSR's
// per-vertex rows must reproduce this exactly — same targets, same
// order.
func refAdj(g *Graph) [][]int32 {
	adj := make([][]int32, g.N())
	eu, ev := g.EdgeLog()
	for i := range eu {
		u, v := eu[i], ev[i]
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	return adj
}

// refBFS is a naive map-based BFS over the reference adjacency.
func refBFS(adj [][]int32, src int) []int {
	dist := make([]int, len(adj))
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	queue := []int32{int32(src)}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, w := range adj[u] {
			if dist[w] == Unreachable {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// TestCSRMatchesReference is the cross-representation property test of
// the CSR substrate core: across every generator family and seeds 1-20,
// the CSR view must agree with the seed slice-of-slices representation
// on N, M, the degree sequence, per-vertex adjacency (including order),
// the sorted-dedup adjacency, and BFS distances.
func TestCSRMatchesReference(t *testing.T) {
	type gen struct {
		name  string
		build func(rng *xrand.Rand) (*Graph, error)
	}
	gens := []gen{
		{"hnd", func(rng *xrand.Rand) (*Graph, error) { return HND(96, 8, rng) }},
		{"hnd-simple", func(rng *xrand.Rand) (*Graph, error) { return HNDSimple(64, 4, 400, rng) }},
		{"config", func(rng *xrand.Rand) (*Graph, error) {
			deg := make([]int, 80)
			for i := range deg {
				deg[i] = 2 + i%4
			}
			if tot := 0; true {
				for _, d := range deg {
					tot += d
				}
				if tot%2 != 0 {
					deg[0]++
				}
			}
			return ConfigurationModel(deg, rng)
		}},
		{"random-regular", func(rng *xrand.Rand) (*Graph, error) { return RandomRegular(64, 4, 400, rng) }},
		{"steger-wormald", func(rng *xrand.Rand) (*Graph, error) { return SimpleRegular(64, 6, 100, rng) }},
		{"watts-strogatz", func(rng *xrand.Rand) (*Graph, error) { return WattsStrogatz(96, 3, 0.3, rng) }},
		{"ring", func(rng *xrand.Rand) (*Graph, error) { return Ring(50) }},
		{"torus", func(rng *xrand.Rand) (*Graph, error) { return Torus(6, 7) }},
		{"dumbbell", func(rng *xrand.Rand) (*Graph, error) {
			g, _, err := Dumbbell(24, 30, 4, rng)
			return g, err
		}},
		{"tree", func(rng *xrand.Rand) (*Graph, error) { return CompleteBinaryTree(6) }},
		{"star", func(rng *xrand.Rand) (*Graph, error) { return Star(40) }},
	}
	for _, gn := range gens {
		for seed := uint64(1); seed <= 20; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", gn.name, seed), func(t *testing.T) {
				g, err := gn.build(xrand.New(seed))
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				ref := refAdj(g)
				if len(ref) != g.N() {
					t.Fatalf("N mismatch: ref %d, got %d", len(ref), g.N())
				}
				arcs := 0
				for _, row := range ref {
					arcs += len(row)
				}
				if arcs != 2*g.M() {
					t.Fatalf("M mismatch: ref %d arcs, M=%d", arcs, g.M())
				}
				for u := 0; u < g.N(); u++ {
					if g.Degree(u) != len(ref[u]) {
						t.Fatalf("degree(%d): ref %d, got %d", u, len(ref[u]), g.Degree(u))
					}
					adj := g.Adj(u)
					if len(adj) != len(ref[u]) {
						t.Fatalf("adj(%d) length: ref %d, got %d", u, len(ref[u]), len(adj))
					}
					for k := range adj {
						if adj[k] != ref[u][k] {
							t.Fatalf("adj(%d)[%d]: ref %d, got %d (order must match the append-built representation)",
								u, k, ref[u][k], adj[k])
						}
					}
					// Sorted-dedup row vs reference sorted-dedup.
					want := append([]int32(nil), ref[u]...)
					sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
					dd := want[:0]
					for i, x := range want {
						if i == 0 || x != want[i-1] {
							dd = append(dd, x)
						}
					}
					got := g.SortedAdj(u)
					if len(got) != len(dd) {
						t.Fatalf("sortedAdj(%d) length: ref %d, got %d", u, len(dd), len(got))
					}
					for k := range got {
						if got[k] != dd[k] {
							t.Fatalf("sortedAdj(%d)[%d]: ref %d, got %d", u, k, dd[k], got[k])
						}
					}
				}
				// BFS distances from a few sources.
				for _, src := range []int{0, g.N() / 2, g.N() - 1} {
					want := refBFS(ref, src)
					got := g.BFS(src)
					for v := range want {
						if got[v] != want[v] {
							t.Fatalf("BFS(%d)[%d]: ref %d, got %d", src, v, want[v], got[v])
						}
					}
				}
			})
		}
	}
}

// TestCSRInterleavedMutation pins the lazy-finalize contract: reads after
// further AddEdge calls observe the new edges, in append order.
func TestCSRInterleavedMutation(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	if got := g.Adj(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("adj(0) = %v before mutation", got)
	}
	g.AddEdge(0, 2)
	g.AddEdge(3, 0)
	if got := g.Adj(0); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("adj(0) = %v after mutation, want [1 2 3]", got)
	}
	if d, err := g.Diameter(); err != nil || d != 2 {
		t.Fatalf("diameter = %d, %v", d, err)
	}
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	if d, err := g.Diameter(); err != nil || d != 1 {
		t.Fatalf("diameter after densifying = %d, %v (memo must invalidate)", d, err)
	}
}
