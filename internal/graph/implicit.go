package graph

// Implicit topologies: deterministic families whose neighborhoods are
// computed on demand instead of materialized into a CSR. A million-slot
// ring lattice costs two ints, not two hundred megabytes of arc arrays.
//
// The contract that makes these safe substitutes is byte-identity: for
// every vertex, AppendNeighbors must produce exactly the row the
// materialized generator's CSR would hold — same targets, same order.
// The CSR fills arcs by replaying the edge log, so a vertex's row is its
// incident edges ordered by log index (each logged edge contributes one
// arc to each endpoint; endpoint orientation inside the pair never
// matters for simple families). The implicit families below therefore
// enumerate their incident edges with the generator's exact log indices
// and sort by index. implicit_test.go pins this per vertex against
// graph.Ring, WattsStrogatz(n,k,0), and graph.Torus.
//
// The method set matches sim.Topology and byzantine.Substrate
// structurally (the graph package cannot import sim — sim imports
// graph), so an implicit topology drops into sim.New and
// the placement/adversary layer unchanged. Epoch is constant 0: the
// topology never mutates, so engines resolve each vertex once and the
// resolved adjacency stays valid forever.

import "fmt"

// ImplicitTopology is the method set shared by the on-demand topology
// families. It is a superset of sim.Topology and byzantine.Substrate
// (structurally — this package cannot name those types): Degree supports
// exact slab pre-carving in engine construction, and Materialize builds
// the byte-identical CSR counterpart for tests and small-n tooling.
type ImplicitTopology interface {
	Slots() int
	Alive(v int) bool
	Epoch() uint64
	EpochOf(v int) uint64
	AppendNeighbors(v int, buf []int) []int
	Degree(v int) int
	N() int
	M() int
	Materialize() (*Graph, error)
}

// RingLattice is the implicit k-nearest-neighbor ring lattice C_n^k:
// vertex v is adjacent to v±1, …, v±k (mod n). With k=1 it is exactly
// the cycle graph.Ring builds; for general k it matches
// WattsStrogatz(n, k, 0) — the unrewired small-world lattice.
type RingLattice struct {
	n, k int
}

// NewRingLattice returns the implicit ring lattice on n vertices with k
// neighbors per side, under the same parameter domain as WattsStrogatz:
// n >= 3, 1 <= k, 2k < n (so the 2k incident edges are distinct and the
// family is simple).
func NewRingLattice(n, k int) (*RingLattice, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: RingLattice requires n >= 3, got %d", n)
	}
	if k < 1 || 2*k >= n {
		return nil, fmt.Errorf("graph: RingLattice requires 1 <= k and 2k < n (k=%d, n=%d)", k, n)
	}
	if err := CheckEdgeBudget(n * k); err != nil {
		return nil, err
	}
	return &RingLattice{n: n, k: k}, nil
}

// ImplicitRing returns the implicit cycle C_n — RingLattice with k=1,
// row-identical to graph.Ring(n).
func ImplicitRing(n int) (*RingLattice, error) { return NewRingLattice(n, 1) }

// N returns the number of vertices.
func (t *RingLattice) N() int { return t.n }

// M returns the number of edges (n*k).
func (t *RingLattice) M() int { return t.n * t.k }

// K returns the per-side neighbor count.
func (t *RingLattice) K() int { return t.k }

// Slots returns the vertex-slot count (sim.Topology).
func (t *RingLattice) Slots() int { return t.n }

// Alive reports whether slot v hosts a node; always true in range.
func (t *RingLattice) Alive(v int) bool { return v >= 0 && v < t.n }

// Epoch is constant 0: the topology never mutates (sim.Topology).
func (t *RingLattice) Epoch() uint64 { return 0 }

// EpochOf is constant 0 for every vertex (sim.Topology).
func (t *RingLattice) EpochOf(v int) uint64 { return 0 }

// Degree returns 2k for every vertex.
func (t *RingLattice) Degree(v int) int {
	t.check(v)
	return 2 * t.k
}

func (t *RingLattice) check(v int) {
	if v < 0 || v >= t.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, t.n))
	}
}

// implicitArc is one incident edge during row reconstruction: the
// generator's edge-log index and the far endpoint.
type implicitArc struct {
	idx, nbr int
}

// sortArcsByIdx insertion-sorts incident arcs by edge-log index —
// degree-sized rows, so insertion sort beats anything general.
func sortArcsByIdx(arcs []implicitArc) {
	for i := 1; i < len(arcs); i++ {
		a := arcs[i]
		p := i - 1
		for p >= 0 && arcs[p].idx > a.idx {
			arcs[p+1] = arcs[p]
			p--
		}
		arcs[p+1] = a
	}
}

// AppendNeighbors appends v's 2k lattice neighbors to buf in the exact
// CSR row order of the materialized lattice. The generator logs edge
// (u, u+j mod n) at index u*k + (j-1); vertex v's row is its incident
// edges sorted by that index. Allocation-free for k <= 8 (the arc
// scratch stays on the stack).
func (t *RingLattice) AppendNeighbors(v int, buf []int) []int {
	t.check(v)
	var stack [16]implicitArc
	arcs := stack[:0]
	if 2*t.k > len(stack) {
		arcs = make([]implicitArc, 0, 2*t.k)
	}
	for j := 1; j <= t.k; j++ {
		l := v - j
		if l < 0 {
			l += t.n
		}
		r := v + j
		if r >= t.n {
			r -= t.n
		}
		// Left neighbor l contributed edge (l, l+j) at index l*k+(j-1);
		// v's own edge (v, v+j) sits at index v*k+(j-1).
		arcs = append(arcs, implicitArc{l*t.k + (j - 1), l}, implicitArc{v*t.k + (j - 1), r})
	}
	sortArcsByIdx(arcs)
	for _, a := range arcs {
		buf = append(buf, a.nbr)
	}
	return buf
}

// Materialize builds the CSR counterpart: the same edge log the
// WattsStrogatz beta=0 lattice pass produces (and, for k=1, graph.Ring),
// so every row is byte-identical to AppendNeighbors output.
func (t *RingLattice) Materialize() (*Graph, error) {
	if err := CheckEdgeBudget(t.n * t.k); err != nil {
		return nil, err
	}
	g := New(t.n)
	g.Reserve(t.n * t.k)
	for u := 0; u < t.n; u++ {
		for j := 1; j <= t.k; j++ {
			g.AddEdge(u, (u+j)%t.n)
		}
	}
	return g, nil
}

// TorusGrid is the implicit rows x cols wraparound grid, row-identical
// to graph.Torus(rows, cols).
type TorusGrid struct {
	rows, cols int
	n          int
}

// NewTorusGrid returns the implicit torus under graph.Torus's parameter
// domain: rows, cols >= 3.
func NewTorusGrid(rows, cols int) (*TorusGrid, error) {
	if rows < 3 || cols < 3 {
		return nil, fmt.Errorf("graph: TorusGrid requires rows, cols >= 3 (got %dx%d)", rows, cols)
	}
	if err := CheckEdgeBudget(2 * rows * cols); err != nil {
		return nil, err
	}
	return &TorusGrid{rows: rows, cols: cols, n: rows * cols}, nil
}

// N returns the number of vertices (rows*cols).
func (t *TorusGrid) N() int { return t.n }

// M returns the number of edges (2*rows*cols).
func (t *TorusGrid) M() int { return 2 * t.n }

// Rows returns the grid row count.
func (t *TorusGrid) Rows() int { return t.rows }

// Cols returns the grid column count.
func (t *TorusGrid) Cols() int { return t.cols }

// Slots returns the vertex-slot count (sim.Topology).
func (t *TorusGrid) Slots() int { return t.n }

// Alive reports whether slot v hosts a node; always true in range.
func (t *TorusGrid) Alive(v int) bool { return v >= 0 && v < t.n }

// Epoch is constant 0: the topology never mutates (sim.Topology).
func (t *TorusGrid) Epoch() uint64 { return 0 }

// EpochOf is constant 0 for every vertex (sim.Topology).
func (t *TorusGrid) EpochOf(v int) uint64 { return 0 }

// Degree returns 4 for every vertex.
func (t *TorusGrid) Degree(v int) int {
	t.check(v)
	return 4
}

func (t *TorusGrid) check(v int) {
	if v < 0 || v >= t.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, t.n))
	}
}

// AppendNeighbors appends v's 4 torus neighbors to buf in the exact CSR
// row order of graph.Torus, which logs each cell's down-edge at index
// 2*(r*cols+c) and right-edge at 2*(r*cols+c)+1. Vertex v's up arc
// comes from the cell above's down-edge, its left arc from the cell to
// the left's right-edge, and its down/right arcs from its own two
// edges; the row is those four sorted by log index. Allocation-free.
func (t *TorusGrid) AppendNeighbors(v int, buf []int) []int {
	t.check(v)
	c := v % t.cols
	up := v - t.cols
	if up < 0 {
		up += t.n
	}
	down := v + t.cols
	if down >= t.n {
		down -= t.n
	}
	left := v - 1
	if c == 0 {
		left += t.cols
	}
	right := v + 1
	if c == t.cols-1 {
		right -= t.cols
	}
	arcs := [4]implicitArc{
		{2 * up, up},
		{2*left + 1, left},
		{2 * v, down},
		{2*v + 1, right},
	}
	sortArcsByIdx(arcs[:])
	for _, a := range arcs {
		buf = append(buf, a.nbr)
	}
	return buf
}

// Materialize builds the CSR counterpart via graph.Torus, so every row
// is byte-identical to AppendNeighbors output.
func (t *TorusGrid) Materialize() (*Graph, error) {
	return Torus(t.rows, t.cols)
}

// Compile-time checks that both families implement the shared implicit
// method set (and therefore sim.Topology / byzantine.Substrate
// structurally).
var (
	_ ImplicitTopology = (*RingLattice)(nil)
	_ ImplicitTopology = (*TorusGrid)(nil)
)
