//go:build !race

// AllocsPerRun counting is meaningless under the race detector: -race
// instruments allocations and sync.Pool deliberately drops items, so
// the pooled scratch reallocates per call. CI's bench-smoke job runs
// this file without -race; the race job covers the determinism suites.

package graph

import (
	"testing"

	"byzcount/internal/xrand"
)

// TestBuildAllocsConstant gates the O(1)-allocations build contract of
// the CSR core: a complete H(n,d) build — generator draws, CSR
// finalize, sorted-dedup view — performs a constant number of
// allocations independent of n (the seed append-built representation
// allocated ~3n). The budget covers the graph struct, the edge log, the
// degree array, both CSR views, and the d/2 permutation draws.
func TestBuildAllocsConstant(t *testing.T) {
	const budget = 24
	for _, n := range []int{256, 1024, 4096} {
		rng := xrand.New(4)
		allocs := testing.AllocsPerRun(8, func() {
			rng.Reseed(4)
			g, err := HND(n, 8, rng)
			if err != nil {
				t.Fatal(err)
			}
			g.Adj(0)
			g.SortedAdj(0)
		})
		if allocs > budget {
			t.Errorf("HND(%d,8) build: %.0f allocs, budget %d (must not scale with n)", n, allocs, budget)
		}
	}
}

// TestStructuralToolAllocs gates the zero-steady-state-allocation
// contract of the map-free structural tools: with warm reusable buffers,
// BFS, balls, out-neighborhoods, expansion, the tree-like test, and the
// simplicity check allocate nothing (the seed code allocated maps per
// call — bfs.go's per-ball map and expansion.go's per-set maps were the
// placement machinery's dominant setup cost).
func TestStructuralToolAllocs(t *testing.T) {
	g, err := HND(1024, 8, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	g.SortedAdj(0) // finalize outside the measured region
	dist := make([]int, g.N())
	ballBuf := make([]int, 0, g.N())
	outBuf := make([]int, 0, g.N())
	set := g.Ball(3, 2)
	src := 0

	cases := []struct {
		name string
		fn   func()
	}{
		{"BFSInto", func() { g.BFSInto(dist, src, g.N()) }},
		{"AppendBall", func() { ballBuf = g.AppendBall(ballBuf[:0], src, 3) }},
		{"BallSize", func() { g.BallSize(src, 3) }},
		{"AppendOutNeighbors", func() { outBuf = g.AppendOutNeighbors(outBuf[:0], set) }},
		{"ExpansionOf", func() { g.ExpansionOf(set) }},
		{"IsLocallyTreeLike", func() { g.IsLocallyTreeLike(src, 2, 8) }},
		{"IsSimple", func() { g.IsSimple() }},
		{"Eccentricity", func() { g.Eccentricity(src) }},
	}
	for _, tc := range cases {
		tc.fn() // warm the scratch pool and buffers
		if allocs := testing.AllocsPerRun(16, tc.fn); allocs != 0 {
			t.Errorf("%s: %.1f allocs/op in steady state, want 0", tc.name, allocs)
		}
	}
}
