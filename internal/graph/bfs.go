package graph

// Unreachable is the distance value reported for vertices not reachable
// from the BFS source.
const Unreachable = -1

// BFS returns the distance from src to every vertex, with Unreachable (-1)
// for vertices in other components.
func (g *Graph) BFS(src int) []int {
	g.check(src)
	dist := make([]int, g.n)
	g.bfsInto(dist, src, g.n)
	return dist
}

// BFSLimited is BFS truncated at the given radius: vertices farther than
// radius keep distance Unreachable. It visits only the ball, so it is fast
// for small radii on large graphs.
func (g *Graph) BFSLimited(src, radius int) []int {
	g.check(src)
	if radius < 0 {
		panic("graph: negative radius")
	}
	dist := make([]int, g.n)
	g.bfsInto(dist, src, radius)
	return dist
}

// BFSInto runs BFS from src truncated at radius, writing distances into
// dist (which must have length N()) and returning it — the
// allocation-free counterpart of BFSLimited for callers that reuse the
// distance buffer across traversals. A radius >= N() is an untruncated
// BFS.
func (g *Graph) BFSInto(dist []int, src, radius int) []int {
	g.check(src)
	if radius < 0 {
		panic("graph: negative radius")
	}
	if len(dist) != g.n {
		panic("graph: BFSInto distance buffer length mismatch")
	}
	g.bfsInto(dist, src, radius)
	return dist
}

// bfsInto is the shared BFS core: dist is fully overwritten (Unreachable
// outside the radius-ball of src). The queue comes from the scratch pool,
// so the only allocation is the caller's dist buffer, if any.
func (g *Graph) bfsInto(dist []int, src, radius int) {
	v := g.view()
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	sc := getScratch(g.n)
	queue := append(sc.queue[:0], int32(src))
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		if du == radius {
			continue
		}
		for _, w := range v.tgt[v.off[u]:v.off[u+1]] {
			if dist[w] == Unreachable {
				dist[w] = du + 1
				queue = append(queue, w)
			}
		}
	}
	sc.queue = queue
	putScratch(sc)
}

// Distance returns the hop distance between u and v, or Unreachable.
func (g *Graph) Distance(u, v int) int {
	g.check(v)
	return g.BFS(u)[v]
}

// Ball returns the inclusive r-hop neighborhood B(u,r) of u, i.e. all
// vertices at distance <= r, in BFS order (u first). Only the ball is
// visited, so the cost is proportional to its size.
func (g *Graph) Ball(u, r int) []int {
	return g.AppendBall(nil, u, r)
}

// ballInto runs the radius-truncated ball BFS from u into the scratch's
// queue (discovery order, u first) and returns the queue, which the
// caller must store back via sc.queue before releasing the scratch.
func (g *Graph) ballInto(sc *scratch, u, r int) []int32 {
	if r < 0 {
		panic("graph: negative radius")
	}
	v := g.view()
	gen := sc.nextGen()
	sc.mark[u] = gen
	sc.dist[u] = 0
	queue := append(sc.queue[:0], int32(u))
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		dx := sc.dist[x]
		if int(dx) == r {
			continue
		}
		for _, w := range v.tgt[v.off[x]:v.off[x+1]] {
			if sc.mark[w] != gen {
				sc.mark[w] = gen
				sc.dist[w] = dx + 1
				queue = append(queue, w)
			}
		}
	}
	return queue
}

// AppendBall appends B(u,r) in BFS order (u first) to buf and returns the
// extended slice — the allocation-free counterpart of Ball. Visited
// bookkeeping lives in generation-stamped scratch arrays (the seed code
// allocated a map per call, which dominated placement and expansion
// sweeps), so with a reused buf at capacity the call allocates nothing.
func (g *Graph) AppendBall(buf []int, u, r int) []int {
	g.check(u)
	sc := getScratch(g.n)
	queue := g.ballInto(sc, u, r)
	for _, x := range queue {
		buf = append(buf, int(x))
	}
	sc.queue = queue
	putScratch(sc)
	return buf
}

// BallSize returns |B(u,r)| without materializing the ball.
func (g *Graph) BallSize(u, r int) int {
	g.check(u)
	sc := getScratch(g.n)
	queue := g.ballInto(sc, u, r)
	size := len(queue)
	sc.queue = queue
	putScratch(sc)
	return size
}

// Boundary returns the r-boundary D(u,r): the vertices at distance exactly
// r from u.
func (g *Graph) Boundary(u, r int) []int {
	dist := g.BFSLimited(u, r)
	var out []int
	for v, d := range dist {
		if d == r {
			out = append(out, v)
		}
	}
	return out
}

// Eccentricity returns the maximum distance from u to any reachable vertex
// and whether all vertices were reachable.
func (g *Graph) Eccentricity(u int) (ecc int, connected bool) {
	g.check(u)
	sc := getScratch(g.n)
	ecc, connected = g.eccInto(sc, u)
	putScratch(sc)
	return ecc, connected
}

// eccInto computes Eccentricity using the scratch's int32 distance array.
func (g *Graph) eccInto(sc *scratch, u int) (ecc int, connected bool) {
	v := g.view()
	gen := sc.nextGen()
	sc.mark[u] = gen
	sc.dist[u] = 0
	queue := append(sc.queue[:0], int32(u))
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		dx := sc.dist[x]
		if int(dx) > ecc {
			ecc = int(dx)
		}
		for _, w := range v.tgt[v.off[x]:v.off[x+1]] {
			if sc.mark[w] != gen {
				sc.mark[w] = gen
				sc.dist[w] = dx + 1
				queue = append(queue, w)
			}
		}
	}
	connected = len(queue) == g.n
	sc.queue = queue
	return ecc, connected
}

// Diameter returns the exact diameter via all-pairs BFS. It returns
// ErrNotConnected for disconnected graphs. O(n*m); intended for the
// simulation sizes used in this repository. The result is memoized on
// the finalized graph (the value is a pure function of the topology), so
// repeated queries — e.g. the benign and attacked runs of one trial, or
// cache-shared substrates across trials — pay for the sweep once.
func (g *Graph) Diameter() (int, error) {
	v := g.view()
	v.diamOnce.Do(func() {
		v.diamVal, v.diamErr = g.diameter()
	})
	return v.diamVal, v.diamErr
}

func (g *Graph) diameter() (int, error) {
	if g.n == 0 {
		return 0, nil
	}
	sc := getScratch(g.n)
	defer putScratch(sc)
	diam := 0
	for u := 0; u < g.n; u++ {
		ecc, conn := g.eccInto(sc, u)
		if !conn {
			return 0, ErrNotConnected
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam, nil
}

// ApproxDiameter returns a lower bound on the diameter computed with the
// double-sweep heuristic from the given start vertex: BFS to the farthest
// vertex, then BFS again from there. For expanders and trees the bound is
// exact or within a small constant. Disconnected graphs yield
// ErrNotConnected.
func (g *Graph) ApproxDiameter(start int) (int, error) {
	g.check(start)
	far, err := g.farthest(start)
	if err != nil {
		return 0, err
	}
	far2, err := g.farthest(far)
	if err != nil {
		return 0, err
	}
	return g.Distance(far, far2), nil
}

func (g *Graph) farthest(u int) (int, error) {
	dist := g.BFS(u)
	best, bestD := u, 0
	for v, d := range dist {
		if d == Unreachable {
			return 0, ErrNotConnected
		}
		if d > bestD {
			best, bestD = v, d
		}
	}
	return best, nil
}

// ConnectedComponents returns a component id per vertex and the number of
// components. Ids are assigned in order of lowest-numbered member.
func (g *Graph) ConnectedComponents() (comp []int, count int) {
	v := g.view()
	comp = make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	sc := getScratch(g.n)
	for u := 0; u < g.n; u++ {
		if comp[u] != -1 {
			continue
		}
		comp[u] = count
		queue := append(sc.queue[:0], int32(u))
		for head := 0; head < len(queue); head++ {
			x := queue[head]
			for _, w := range v.tgt[v.off[x]:v.off[x+1]] {
				if comp[w] == -1 {
					comp[w] = count
					queue = append(queue, w)
				}
			}
		}
		sc.queue = queue
		count++
	}
	putScratch(sc)
	return comp, count
}

// IsConnected reports whether the graph has exactly one connected
// component. The empty graph counts as connected.
func (g *Graph) IsConnected() bool {
	if g.n == 0 {
		return true
	}
	_, c := g.ConnectedComponents()
	return c == 1
}

// ShortestPath returns one shortest u-v path (inclusive of both endpoints)
// or nil if v is unreachable from u.
func (g *Graph) ShortestPath(u, v int) []int {
	g.check(u)
	g.check(v)
	if u == v {
		return []int{u}
	}
	cv := g.view()
	parent := make([]int32, g.n)
	for i := range parent {
		parent[i] = -2
	}
	parent[u] = -1
	queue := []int32{int32(u)}
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		for _, w := range cv.tgt[cv.off[x]:cv.off[x+1]] {
			if parent[w] == -2 {
				parent[w] = x
				if int(w) == v {
					return buildPath(parent, v)
				}
				queue = append(queue, w)
			}
		}
	}
	return nil
}

func buildPath(parent []int32, v int) []int {
	var rev []int
	for x := int32(v); x != -1; x = parent[x] {
		rev = append(rev, int(x))
	}
	out := make([]int, len(rev))
	for i, x := range rev {
		out[len(rev)-1-i] = x
	}
	return out
}
