package graph

// Unreachable is the distance value reported for vertices not reachable
// from the BFS source.
const Unreachable = -1

// BFS returns the distance from src to every vertex, with Unreachable (-1)
// for vertices in other components.
func (g *Graph) BFS(src int) []int {
	g.check(src)
	dist := make([]int, len(g.adj))
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	queue := make([]int32, 1, len(g.adj))
	queue[0] = int32(src)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, w := range g.adj[u] {
			if dist[w] == Unreachable {
				dist[w] = du + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// BFSLimited is BFS truncated at the given radius: vertices farther than
// radius keep distance Unreachable. It visits only the ball, so it is fast
// for small radii on large graphs.
func (g *Graph) BFSLimited(src, radius int) []int {
	g.check(src)
	if radius < 0 {
		panic("graph: negative radius")
	}
	dist := make([]int, len(g.adj))
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	queue := []int32{int32(src)}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		if du == radius {
			continue
		}
		for _, w := range g.adj[u] {
			if dist[w] == Unreachable {
				dist[w] = du + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Distance returns the hop distance between u and v, or Unreachable.
func (g *Graph) Distance(u, v int) int {
	g.check(v)
	return g.BFS(u)[v]
}

// Ball returns the inclusive r-hop neighborhood B(u,r) of u, i.e. all
// vertices at distance <= r, in BFS order (u first). Only the ball is
// visited, so the cost is proportional to its size.
func (g *Graph) Ball(u, r int) []int {
	g.check(u)
	if r < 0 {
		panic("graph: negative radius")
	}
	dist := make(map[int32]int, 64)
	dist[int32(u)] = 0
	queue := []int32{int32(u)}
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		dx := dist[x]
		if dx == r {
			continue
		}
		for _, w := range g.adj[x] {
			if _, seen := dist[w]; !seen {
				dist[w] = dx + 1
				queue = append(queue, w)
			}
		}
	}
	out := make([]int, len(queue))
	for i, x := range queue {
		out[i] = int(x)
	}
	return out
}

// BallSize returns |B(u,r)| without materializing the ball.
func (g *Graph) BallSize(u, r int) int {
	dist := g.BFSLimited(u, r)
	count := 0
	for _, d := range dist {
		if d != Unreachable {
			count++
		}
	}
	return count
}

// Boundary returns the r-boundary D(u,r): the vertices at distance exactly
// r from u.
func (g *Graph) Boundary(u, r int) []int {
	dist := g.BFSLimited(u, r)
	var out []int
	for v, d := range dist {
		if d == r {
			out = append(out, v)
		}
	}
	return out
}

// Eccentricity returns the maximum distance from u to any reachable vertex
// and whether all vertices were reachable.
func (g *Graph) Eccentricity(u int) (ecc int, connected bool) {
	dist := g.BFS(u)
	connected = true
	for _, d := range dist {
		if d == Unreachable {
			connected = false
			continue
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc, connected
}

// Diameter returns the exact diameter via all-pairs BFS. It returns
// ErrNotConnected for disconnected graphs. O(n*m); intended for the
// simulation sizes used in this repository.
func (g *Graph) Diameter() (int, error) {
	if len(g.adj) == 0 {
		return 0, nil
	}
	diam := 0
	for u := range g.adj {
		ecc, conn := g.Eccentricity(u)
		if !conn {
			return 0, ErrNotConnected
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam, nil
}

// ApproxDiameter returns a lower bound on the diameter computed with the
// double-sweep heuristic from the given start vertex: BFS to the farthest
// vertex, then BFS again from there. For expanders and trees the bound is
// exact or within a small constant. Disconnected graphs yield
// ErrNotConnected.
func (g *Graph) ApproxDiameter(start int) (int, error) {
	g.check(start)
	far, err := g.farthest(start)
	if err != nil {
		return 0, err
	}
	far2, err := g.farthest(far)
	if err != nil {
		return 0, err
	}
	return g.Distance(far, far2), nil
}

func (g *Graph) farthest(u int) (int, error) {
	dist := g.BFS(u)
	best, bestD := u, 0
	for v, d := range dist {
		if d == Unreachable {
			return 0, ErrNotConnected
		}
		if d > bestD {
			best, bestD = v, d
		}
	}
	return best, nil
}

// ConnectedComponents returns a component id per vertex and the number of
// components. Ids are assigned in order of lowest-numbered member.
func (g *Graph) ConnectedComponents() (comp []int, count int) {
	comp = make([]int, len(g.adj))
	for i := range comp {
		comp[i] = -1
	}
	for u := range g.adj {
		if comp[u] != -1 {
			continue
		}
		comp[u] = count
		queue := []int32{int32(u)}
		for head := 0; head < len(queue); head++ {
			x := queue[head]
			for _, w := range g.adj[x] {
				if comp[w] == -1 {
					comp[w] = count
					queue = append(queue, w)
				}
			}
		}
		count++
	}
	return comp, count
}

// IsConnected reports whether the graph has exactly one connected
// component. The empty graph counts as connected.
func (g *Graph) IsConnected() bool {
	if len(g.adj) == 0 {
		return true
	}
	_, c := g.ConnectedComponents()
	return c == 1
}

// ShortestPath returns one shortest u-v path (inclusive of both endpoints)
// or nil if v is unreachable from u.
func (g *Graph) ShortestPath(u, v int) []int {
	g.check(u)
	g.check(v)
	if u == v {
		return []int{u}
	}
	parent := make([]int32, len(g.adj))
	for i := range parent {
		parent[i] = -2
	}
	parent[u] = -1
	queue := []int32{int32(u)}
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		for _, w := range g.adj[x] {
			if parent[w] == -2 {
				parent[w] = x
				if int(w) == v {
					return buildPath(parent, v)
				}
				queue = append(queue, w)
			}
		}
	}
	return nil
}

func buildPath(parent []int32, v int) []int {
	var rev []int
	for x := int32(v); x != -1; x = parent[x] {
		rev = append(rev, int(x))
	}
	out := make([]int, len(rev))
	for i, x := range rev {
		out[len(rev)-1-i] = x
	}
	return out
}
