package graph

import "math"

// TreeLikeRadius returns the radius r = log(n) / (10 * log(d)) from
// Section 3.1 at which the locally-tree-like property is evaluated in an
// H(n,d) graph, never less than 1.
func TreeLikeRadius(n, d int) int {
	if n < 2 || d < 2 {
		return 1
	}
	r := int(math.Log(float64(n)) / (10 * math.Log(float64(d))))
	if r < 1 {
		r = 1
	}
	return r
}

// IsLocallyTreeLike reports whether vertex w is locally tree-like at
// radius r per Definition 3: the subgraph induced by B(w,r) is a tree in
// which every vertex at depth < r is "typical" — it has exactly one
// neighbor in the previous layer and d-1 neighbors in the next layer
// (the root has d children). Equivalently: BFS to depth r discovers every
// edge exactly once, encounters no cross, back, or parallel edges, and
// every vertex strictly inside the ball has full degree d.
func (g *Graph) IsLocallyTreeLike(w, r, d int) bool {
	g.check(w)
	if r < 1 {
		return true
	}
	cv := g.view()
	sc := getScratch(g.n)
	defer putScratch(sc)
	// Depth bookkeeping in generation-stamped scratch: depth of v is
	// sc.dist[v], valid iff sc.mark[v] carries the current generation (the
	// seed code allocated a map per vertex tested, n maps per
	// TreeLikeCount sweep).
	gen := sc.nextGen()
	sc.mark[w] = gen
	sc.dist[w] = 0
	queue := append(sc.queue[:0], int32(w))
	defer func() { sc.queue = queue[:0] }()
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := sc.dist[u]
		row := cv.tgt[cv.off[u]:cv.off[u+1]]
		if int(du) == r {
			// Boundary layer: edges leaving the ball are unconstrained, but
			// the induced subgraph must still be a tree, so a boundary node
			// may touch the ball only through its single parent edge.
			parents := 0
			for _, v := range row {
				if sc.mark[v] != gen {
					continue // outside the ball
				}
				if sc.dist[v] != du-1 {
					return false // same-layer or self edge inside the ball
				}
				parents++
			}
			if parents != 1 {
				return false // parallel parent edges or an orphan
			}
			continue
		}
		// Interior vertex: must have exactly d incident edge endpoints.
		if len(row) != d {
			return false
		}
		parents := 0
		for _, v := range row {
			switch {
			case sc.mark[v] != gen:
				sc.mark[v] = gen
				sc.dist[v] = du + 1
				queue = append(queue, v)
			case sc.dist[v] == du-1:
				parents++
				if parents > 1 {
					return false // two parents: a cycle through the previous layer
				}
			default:
				// Same-layer, parallel, or self edge: not tree-like.
				return false
			}
		}
		if u != int32(w) && parents != 1 {
			return false
		}
		if u == int32(w) && parents != 0 {
			return false
		}
	}
	return true
}

// TreeLikeCount returns how many vertices of g are locally tree-like at
// radius r for degree parameter d (Lemma 2 predicts n - O(n^0.8) whp in
// H(n,d)).
func (g *Graph) TreeLikeCount(r, d int) int {
	count := 0
	for w := 0; w < g.n; w++ {
		if g.IsLocallyTreeLike(w, r, d) {
			count++
		}
	}
	return count
}

// TreeLikeFraction returns the fraction of locally tree-like vertices.
func (g *Graph) TreeLikeFraction(r, d int) float64 {
	if g.n == 0 {
		return 0
	}
	return float64(g.TreeLikeCount(r, d)) / float64(g.n)
}
