package graph

import (
	"fmt"

	"byzcount/internal/xrand"
)

// HND generates an H(n,d) random regular multigraph: the union of d/2
// independent uniform Hamiltonian cycles on n vertices (the permutation
// model of Section 2 of the paper). d must be even and >= 2, and n >= 3.
// The result is d-regular; parallel edges are possible (and expected in
// constant number), matching the model the paper analyzes.
func HND(n, d int, rng *xrand.Rand) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: HND requires n >= 3, got %d", n)
	}
	if d < 2 || d%2 != 0 {
		return nil, fmt.Errorf("graph: HND requires even d >= 2, got %d", d)
	}
	if err := CheckEdgeBudget(n * d / 2); err != nil {
		return nil, err
	}
	g := New(n)
	g.Reserve(n * d / 2)
	for c := 0; c < d/2; c++ {
		perm := rng.Perm(n)
		for i := 0; i < n; i++ {
			g.AddEdge(perm[i], perm[(i+1)%n])
		}
	}
	return g, nil
}

// HNDSimple generates H(n,d) graphs until one is simple (no parallel
// edges; Hamiltonian cycles never create self-loops for n >= 3). The
// permutation model is contiguous with the simple d-regular model
// (Greenhill et al.); the probability a draw is simple is a constant in n
// but decays like exp(-Θ(d²)), so pass a maxAttempts budget sized for the
// chosen d (a few hundred suffices for d <= 6).
func HNDSimple(n, d, maxAttempts int, rng *xrand.Rand) (*Graph, error) {
	for i := 0; i < maxAttempts; i++ {
		g, err := HND(n, d, rng)
		if err != nil {
			return nil, err
		}
		if g.IsSimple() {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: no simple H(%d,%d) graph in %d attempts", n, d, maxAttempts)
}

// ConfigurationModel generates a random multigraph with the given degree
// sequence by uniformly pairing half-edges (Bollobas' pairing model,
// Section 2). The degree sum must be even.
func ConfigurationModel(degrees []int, rng *xrand.Rand) (*Graph, error) {
	total := 0
	for v, d := range degrees {
		if d < 0 {
			return nil, fmt.Errorf("graph: negative degree %d for vertex %d", d, v)
		}
		total += d
	}
	if total%2 != 0 {
		return nil, fmt.Errorf("graph: odd degree sum %d", total)
	}
	if err := CheckEdgeBudget(total / 2); err != nil {
		return nil, err
	}
	stubs := make([]int32, 0, total)
	for v, d := range degrees {
		for i := 0; i < d; i++ {
			stubs = append(stubs, int32(v))
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	g := New(len(degrees))
	g.Reserve(total / 2)
	for i := 0; i+1 < len(stubs); i += 2 {
		g.AddEdge(int(stubs[i]), int(stubs[i+1]))
	}
	return g, nil
}

// RandomRegular generates a simple d-regular graph on n vertices by
// rejection-sampling the configuration model. n*d must be even and
// d < n. For constant d the acceptance probability is a constant, so the
// expected number of attempts is O(1); maxAttempts bounds the worst case.
func RandomRegular(n, d, maxAttempts int, rng *xrand.Rand) (*Graph, error) {
	if d >= n {
		return nil, fmt.Errorf("graph: RandomRegular requires d < n (d=%d, n=%d)", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: RandomRegular requires even n*d")
	}
	degrees := make([]int, n)
	for i := range degrees {
		degrees[i] = d
	}
	for i := 0; i < maxAttempts; i++ {
		g, err := ConfigurationModel(degrees, rng)
		if err != nil {
			return nil, err
		}
		if g.IsSimple() {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: no simple %d-regular graph on %d vertices in %d attempts", d, n, maxAttempts)
}

// WattsStrogatz generates a small-world network: a ring lattice where each
// vertex connects to its k nearest neighbors on each side (2k per vertex),
// with each lattice edge rewired to a uniform random endpoint with
// probability beta. This is the topology assumed by the prior work of
// Chatterjee et al. [14] that this paper removes; it appears here as a
// comparison substrate. Self-loops and duplicate edges are avoided during
// rewiring.
func WattsStrogatz(n, k int, beta float64, rng *xrand.Rand) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: WattsStrogatz requires n >= 3, got %d", n)
	}
	if k < 1 || 2*k >= n {
		return nil, fmt.Errorf("graph: WattsStrogatz requires 1 <= k and 2k < n (k=%d, n=%d)", k, n)
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("graph: WattsStrogatz beta %v outside [0,1]", beta)
	}
	if err := CheckEdgeBudget(n * k); err != nil {
		return nil, err
	}
	// Track existing edges to keep the graph simple under rewiring:
	// per-vertex sorted adjacency with binary-search membership and
	// sorted insert/remove. Degrees are ~2k, so the searches are a few
	// compares on a contiguous row — the map this replaces hashed every
	// candidate edge of the rewiring loop. Membership answers (and hence
	// every rng draw) are identical to the map-based seed code.
	type edge struct{ u, v int }
	norm := func(u, v int) edge {
		if u > v {
			u, v = v, u
		}
		return edge{u, v}
	}
	adj := make([][]int32, n)
	for u := range adj {
		adj[u] = make([]int32, 0, 2*k+2)
	}
	has := func(e edge) bool {
		row := adj[e.u]
		i := searchInt32(row, int32(e.v))
		return i < len(row) && row[i] == int32(e.v)
	}
	insertHalf := func(u, v int) {
		row := adj[u]
		i := searchInt32(row, int32(v))
		row = append(row, 0)
		copy(row[i+1:], row[i:])
		row[i] = int32(v)
		adj[u] = row
	}
	removeHalf := func(u, v int) {
		row := adj[u]
		i := searchInt32(row, int32(v))
		copy(row[i:], row[i+1:])
		adj[u] = row[:len(row)-1]
	}
	add := func(e edge) { insertHalf(e.u, e.v); insertHalf(e.v, e.u) }
	del := func(e edge) { removeHalf(e.u, e.v); removeHalf(e.v, e.u) }
	edges := make([]edge, 0, n*k)
	for u := 0; u < n; u++ {
		for j := 1; j <= k; j++ {
			e := norm(u, (u+j)%n)
			if !has(e) {
				add(e)
				edges = append(edges, e)
			}
		}
	}
	for i, e := range edges {
		if !rng.Bernoulli(beta) {
			continue
		}
		// Rewire the far endpoint to a uniform random vertex, avoiding
		// loops and duplicates; keep the original edge if no candidate is
		// found quickly (degenerate only for very dense graphs).
		for attempt := 0; attempt < 32; attempt++ {
			w := rng.Intn(n)
			ne := norm(e.u, w)
			if w == e.u || has(ne) {
				continue
			}
			del(e)
			add(ne)
			edges[i] = ne
			break
		}
	}
	g := New(n)
	g.Reserve(len(edges))
	for _, e := range edges {
		g.AddEdge(e.u, e.v)
	}
	return g, nil
}

// searchInt32 returns the insertion index of x in the ascending row
// (binary search).
func searchInt32(row []int32, x int32) int {
	lo, hi := 0, len(row)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if row[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Ring returns the n-cycle C_n (n >= 3): connected, 2-regular, and with
// vanishing expansion — a natural non-expander control.
func Ring(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: Ring requires n >= 3, got %d", n)
	}
	if err := CheckEdgeBudget(n); err != nil {
		return nil, err
	}
	g := New(n)
	g.Reserve(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g, nil
}

// Path returns the n-vertex path graph.
func Path(n int) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: Path requires n >= 1, got %d", n)
	}
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g, nil
}

// Torus returns the rows x cols wraparound grid (4-regular when both
// dimensions are >= 3).
func Torus(rows, cols int) (*Graph, error) {
	if rows < 3 || cols < 3 {
		return nil, fmt.Errorf("graph: Torus requires rows, cols >= 3 (got %dx%d)", rows, cols)
	}
	if err := CheckEdgeBudget(2 * rows * cols); err != nil {
		return nil, err
	}
	g := New(rows * cols)
	g.Reserve(2 * rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.AddEdge(id(r, c), id((r+1)%rows, c))
			g.AddEdge(id(r, c), id(r, (c+1)%cols))
		}
	}
	return g, nil
}

// Complete returns the complete graph K_n.
func Complete(n int) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: Complete requires n >= 1, got %d", n)
	}
	if err := CheckEdgeBudget(n * (n - 1) / 2); err != nil {
		return nil, err
	}
	g := New(n)
	g.Reserve(n * (n - 1) / 2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g, nil
}

// Hypercube returns the dim-dimensional hypercube on 2^dim vertices.
func Hypercube(dim int) (*Graph, error) {
	if dim < 1 || dim > 24 {
		return nil, fmt.Errorf("graph: Hypercube dim %d outside [1,24]", dim)
	}
	n := 1 << uint(dim)
	g := New(n)
	for u := 0; u < n; u++ {
		for b := 0; b < dim; b++ {
			v := u ^ (1 << uint(b))
			if u < v {
				g.AddEdge(u, v)
			}
		}
	}
	return g, nil
}

// CompleteBinaryTree returns a complete binary tree with the given number
// of levels (level 1 = a single root).
func CompleteBinaryTree(levels int) (*Graph, error) {
	if levels < 1 || levels > 24 {
		return nil, fmt.Errorf("graph: CompleteBinaryTree levels %d outside [1,24]", levels)
	}
	n := (1 << uint(levels)) - 1
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v, (v-1)/2)
	}
	return g, nil
}

// Dumbbell builds the Theorem 3 topology: two H(n,d) expander "bells" of
// sizes n1 and n2 joined only through a single bridge vertex. The bridge
// (returned as bridge) is the natural location for a Byzantine node: it is
// a cut vertex, so the graph has no vertex expansion to speak of, and the
// two sides cannot verify each other's existence except through it.
func Dumbbell(n1, n2, d int, rng *xrand.Rand) (g *Graph, bridge int, err error) {
	if n1 < 3 || n2 < 3 {
		return nil, 0, fmt.Errorf("graph: Dumbbell requires both sides >= 3 (got %d, %d)", n1, n2)
	}
	left, err := HND(n1, d, rng.Split("left"))
	if err != nil {
		return nil, 0, err
	}
	right, err := HND(n2, d, rng.Split("right"))
	if err != nil {
		return nil, 0, err
	}
	// Layout: [0,n1) left, [n1, n1+n2) right, bridge = n1+n2.
	g = New(n1 + n2 + 1)
	for _, e := range left.EdgeList() {
		g.AddEdge(e[0], e[1])
	}
	for _, e := range right.EdgeList() {
		g.AddEdge(e[0]+n1, e[1]+n1)
	}
	bridge = n1 + n2
	g.AddEdge(bridge, rng.Intn(n1))
	g.AddEdge(bridge, n1+rng.Intn(n2))
	return g, bridge, nil
}

// Star returns the star graph K_{1,n-1} with vertex 0 as the hub.
func Star(n int) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: Star requires n >= 2, got %d", n)
	}
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(0, v)
	}
	return g, nil
}
