package graph

import (
	"fmt"

	"byzcount/internal/xrand"
)

// SimpleRegular generates a simple (no loops, no parallel edges)
// d-regular graph on n vertices using the Steger-Wormald algorithm:
// repeatedly pick a uniform random pair of distinct, non-adjacent
// vertices that still have free stubs and connect them; restart if the
// process gets stuck. For constant d the output distribution is
// asymptotically uniform and the expected number of restarts is O(1) —
// unlike plain rejection sampling of the configuration model, whose
// acceptance probability decays like exp(-Θ(d²)).
func SimpleRegular(n, d, maxRestarts int, rng *xrand.Rand) (*Graph, error) {
	if d < 1 || d >= n {
		return nil, fmt.Errorf("graph: SimpleRegular requires 1 <= d < n (d=%d, n=%d)", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: SimpleRegular requires even n*d")
	}
	for restart := 0; restart < maxRestarts; restart++ {
		if g, ok := stegerWormaldAttempt(n, d, rng); ok {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: SimpleRegular(%d,%d) stuck after %d restarts", n, d, maxRestarts)
}

func stegerWormaldAttempt(n, d int, rng *xrand.Rand) (*Graph, bool) {
	g := New(n)
	g.Reserve(n * d / 2)
	deg := make([]int, n)
	// Vertices with free stubs, as a compact slice we sample from.
	free := make([]int32, n)
	for i := range free {
		free[i] = int32(i)
	}
	// Per-vertex sorted adjacency in one fixed slab (every vertex ends at
	// degree exactly d, so row capacity d never grows): membership is a
	// binary search over a contiguous row, insertion a shift of at most
	// d-1 entries. This replaces the n hash maps the seed code allocated
	// per attempt, whose lookups dominated the pairing loop.
	slab := make([]int32, n*d)
	adj := make([][]int32, n)
	for i := range adj {
		adj[i] = slab[i*d : i*d : (i+1)*d]
	}
	hasArc := func(u, v int32) bool {
		row := adj[u]
		i := searchInt32(row, v)
		return i < len(row) && row[i] == v
	}
	addArc := func(u, v int32) {
		row := adj[u]
		i := searchInt32(row, v)
		row = append(row, 0)
		copy(row[i+1:], row[i:])
		row[i] = v
		adj[u] = row
	}
	removeAt := func(i int) {
		free[i] = free[len(free)-1]
		free = free[:len(free)-1]
	}
	edgesNeeded := n * d / 2
	for e := 0; e < edgesNeeded; e++ {
		// Try to find a suitable pair among the free vertices. When few
		// remain, the number of candidate pairs is tiny, so a bounded
		// number of attempts either succeeds or we restart.
		found := false
		for attempt := 0; attempt < 64; attempt++ {
			if len(free) < 2 {
				break
			}
			i := rng.Intn(len(free))
			j := rng.Intn(len(free) - 1)
			if j >= i {
				j++
			}
			u, v := free[i], free[j]
			if u == v || hasArc(u, v) {
				continue
			}
			g.AddEdge(int(u), int(v))
			addArc(u, v)
			addArc(v, u)
			deg[u]++
			deg[v]++
			// Remove saturated endpoints (higher index first so the swap
			// trick stays valid).
			if i < j {
				i, j = j, i
				u, v = v, u
			}
			if deg[u] == d {
				removeAt(i)
			}
			if deg[v] == d {
				removeAt(j)
			}
			found = true
			break
		}
		if !found {
			return nil, false
		}
	}
	return g, true
}
