//go:build bigmem && !race

package graph

// Million-vertex build tests, opt-in via -tags=bigmem (several hundred
// MB of live heap; excluded from the default and -race suites):
//
//	go test -tags=bigmem -run TestBig ./internal/graph/
//
// These pin the streamed CSR finalize at the scale the chunked edge log
// exists for: the build must stay O(m) bytes with an O(1)-per-chunk
// allocation count — no doubling spikes, no per-edge allocations.

import (
	"runtime"
	"testing"

	"byzcount/internal/xrand"
)

// heapDelta runs f on a quiesced heap and reports (mallocs, bytes).
func heapDelta(f func()) (uint64, uint64) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc
}

// TestBigHNDBuild builds H(10^6, 8) through finalize and bounds the
// build's allocation behavior. The budget arithmetic: m = 4M edges,
// so the edge log is 2m int32 = 32MB, the CSR view another 2m int32
// plus n+1 offsets = 36MB, the sorted-dedup view the same again, and
// the generator's cycle/matching permutations are a few n-int slices.
// 400MB of transient total and a few thousand allocations (62 reserved
// log chunks, a handful of views and perms) hold that with 2x headroom;
// a regression to per-edge allocation or append-doubling blows either
// bound by orders of magnitude.
func TestBigHNDBuild(t *testing.T) {
	const n, d = 1_000_000, 8
	if err := CheckEdgeBudget(n * d / 2); err != nil {
		t.Fatalf("edge budget: %v", err)
	}
	var g *Graph
	var err error
	mallocs, bytes := heapDelta(func() {
		g, err = HND(n, d, xrand.New(9))
		if err != nil {
			return
		}
		g.Adj(0)       // streamed two-pass finalize
		g.SortedAdj(0) // sorted-dedup companion
	})
	if err != nil {
		t.Fatalf("HND(%d, %d): %v", n, d, err)
	}
	if g.N() != n || g.M() != n*d/2 {
		t.Fatalf("built n=%d m=%d, want n=%d m=%d", g.N(), g.M(), n, n*d/2)
	}
	t.Logf("H(%d,%d) build+finalize: %d allocs, %d MB", n, d, mallocs, bytes>>20)
	if mallocs >= 20_000 {
		t.Errorf("build allocated %d objects; want O(chunks), not O(m)", mallocs)
	}
	if bytes >= 400<<20 {
		t.Errorf("build allocated %d MB; streamed finalize budget regressed", bytes>>20)
	}
	deg := 0
	for v := 0; v < n; v++ {
		deg += g.Degree(v)
	}
	if deg != 2*g.M() {
		t.Fatalf("degree sum %d != 2m %d", deg, 2*g.M())
	}
}

// TestBigImplicitRows spot-checks implicit row reconstruction at 10^6
// slots without materializing: row identity against the closed-form
// neighbor sets, at the wrap boundaries and interior.
func TestBigImplicitRows(t *testing.T) {
	const n, k = 1_000_000, 4
	lat, err := NewRingLattice(n, k)
	if err != nil {
		t.Fatal(err)
	}
	var buf []int
	for _, v := range []int{0, 1, k, n / 2, n - k, n - 1} {
		buf = lat.AppendNeighbors(v, buf[:0])
		if len(buf) != 2*k {
			t.Fatalf("slot %d: %d neighbors, want %d", v, len(buf), 2*k)
		}
		for _, w := range buf {
			diff := (w - v + n) % n
			if diff > k && diff < n-k {
				t.Fatalf("slot %d: neighbor %d outside the lattice window", v, w)
			}
		}
	}
	side := 1000
	tor, err := NewTorusGrid(side, side)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{0, side - 1, side * side / 2, side*side - 1} {
		buf = tor.AppendNeighbors(v, buf[:0])
		if len(buf) != 4 {
			t.Fatalf("torus slot %d: %d neighbors, want 4", v, len(buf))
		}
	}
}
