package graph

// EdgeLog exposes the insertion-ordered edge log to the
// cross-representation property test, which replays it through a naive
// slice-of-slices adjacency (the seed representation) and compares every
// structural observation against the CSR.
func (g *Graph) EdgeLog() (eu, ev []int32) { return g.eu, g.ev }
