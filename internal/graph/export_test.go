package graph

// EdgeLog exposes the insertion-ordered edge log to the
// cross-representation property test, which replays it through a naive
// slice-of-slices adjacency (the seed representation) and compares every
// structural observation against the CSR. The chunked log is flattened
// into fresh endpoint slices; order is insertion order.
func (g *Graph) EdgeLog() (eu, ev []int32) {
	eu = make([]int32, 0, g.m)
	ev = make([]int32, 0, g.m)
	for _, ch := range g.log {
		for i := 0; i < len(ch); i += 2 {
			eu = append(eu, ch[i])
			ev = append(ev, ch[i+1])
		}
	}
	return eu, ev
}

// EdgeLogChunks exposes the chunk structure so the chunking tests can
// assert chunk bounds and no-copy growth without widening the API.
func (g *Graph) EdgeLogChunks() [][]int32 { return g.log }

// ForceEdgeCount overrides the edge counter so the AddEdge overflow
// panic is testable without logging two billion arcs.
func (g *Graph) ForceEdgeCount(m int) { g.m = m }
