package graph

import (
	"errors"
	"testing"

	"byzcount/internal/xrand"
)

// rowEqual compares an implicit AppendNeighbors row against a CSR row.
func rowEqual(got []int, want []int32) bool {
	if len(got) != len(want) {
		return false
	}
	for i, w := range want {
		if got[i] != int(w) {
			return false
		}
	}
	return true
}

// TestRingLatticeRowsByteIdentical pins the implicit ring lattice to
// the materialized generators: every vertex's AppendNeighbors output
// must equal, element for element and in order, the CSR row of (a) its
// own Materialize, (b) WattsStrogatz(n, k, 0) — the unrewired lattice —
// and (c) graph.Ring for k=1. This is the contract that lets the
// simulator swap an implicit lattice for a materialized one without
// perturbing a single message.
func TestRingLatticeRowsByteIdentical(t *testing.T) {
	cases := []struct{ n, k int }{
		{3, 1}, {4, 1}, {5, 1}, {5, 2}, {8, 3}, {64, 1}, {64, 4},
		{97, 8}, {128, 17}, {1000, 4}, {1001, 5},
	}
	for _, tc := range cases {
		lat, err := NewRingLattice(tc.n, tc.k)
		if err != nil {
			t.Fatalf("NewRingLattice(%d,%d): %v", tc.n, tc.k, err)
		}
		mat, err := lat.Materialize()
		if err != nil {
			t.Fatalf("Materialize(%d,%d): %v", tc.n, tc.k, err)
		}
		ws, err := WattsStrogatz(tc.n, tc.k, 0, xrand.New(1))
		if err != nil {
			t.Fatalf("WattsStrogatz(%d,%d,0): %v", tc.n, tc.k, err)
		}
		var ring *Graph
		if tc.k == 1 {
			ring, err = Ring(tc.n)
			if err != nil {
				t.Fatalf("Ring(%d): %v", tc.n, err)
			}
		}
		if lat.N() != tc.n || lat.M() != tc.n*tc.k || lat.Slots() != tc.n {
			t.Fatalf("(%d,%d): N=%d M=%d Slots=%d", tc.n, tc.k, lat.N(), lat.M(), lat.Slots())
		}
		buf := make([]int, 0, 2*tc.k)
		for v := 0; v < tc.n; v++ {
			row := lat.AppendNeighbors(v, buf[:0])
			if !rowEqual(row, mat.Adj(v)) {
				t.Fatalf("(%d,%d) v=%d: implicit %v != materialized %v", tc.n, tc.k, v, row, mat.Adj(v))
			}
			if !rowEqual(row, ws.Adj(v)) {
				t.Fatalf("(%d,%d) v=%d: implicit %v != WattsStrogatz %v", tc.n, tc.k, v, row, ws.Adj(v))
			}
			if ring != nil && !rowEqual(row, ring.Adj(v)) {
				t.Fatalf("(%d,%d) v=%d: implicit %v != Ring %v", tc.n, tc.k, v, row, ring.Adj(v))
			}
			if lat.Degree(v) != len(row) || mat.Degree(v) != len(row) {
				t.Fatalf("(%d,%d) v=%d: degree %d row len %d", tc.n, tc.k, v, lat.Degree(v), len(row))
			}
			if !lat.Alive(v) || lat.EpochOf(v) != 0 {
				t.Fatalf("(%d,%d) v=%d: alive/epoch broken", tc.n, tc.k, v)
			}
		}
	}
}

// TestTorusGridRowsByteIdentical pins the implicit torus to graph.Torus
// row for row across square and skewed shapes.
func TestTorusGridRowsByteIdentical(t *testing.T) {
	cases := []struct{ rows, cols int }{
		{3, 3}, {3, 5}, {5, 3}, {4, 4}, {8, 8}, {10, 32}, {31, 17},
	}
	for _, tc := range cases {
		grid, err := NewTorusGrid(tc.rows, tc.cols)
		if err != nil {
			t.Fatalf("NewTorusGrid(%d,%d): %v", tc.rows, tc.cols, err)
		}
		mat, err := Torus(tc.rows, tc.cols)
		if err != nil {
			t.Fatalf("Torus(%d,%d): %v", tc.rows, tc.cols, err)
		}
		if grid.N() != tc.rows*tc.cols || grid.M() != 2*tc.rows*tc.cols {
			t.Fatalf("(%dx%d): N=%d M=%d", tc.rows, tc.cols, grid.N(), grid.M())
		}
		mat2, err := grid.Materialize()
		if err != nil {
			t.Fatalf("Materialize(%dx%d): %v", tc.rows, tc.cols, err)
		}
		var buf [8]int
		for v := 0; v < grid.N(); v++ {
			row := grid.AppendNeighbors(v, buf[:0])
			if !rowEqual(row, mat.Adj(v)) {
				t.Fatalf("(%dx%d) v=%d: implicit %v != Torus %v", tc.rows, tc.cols, v, row, mat.Adj(v))
			}
			if !rowEqual(row, mat2.Adj(v)) {
				t.Fatalf("(%dx%d) v=%d: implicit %v != Materialize %v", tc.rows, tc.cols, v, row, mat2.Adj(v))
			}
			if grid.Degree(v) != 4 {
				t.Fatalf("(%dx%d) v=%d: degree %d", tc.rows, tc.cols, v, grid.Degree(v))
			}
		}
	}
}

// TestImplicitParamValidation exercises the constructor error paths,
// which mirror the materialized generators' domains.
func TestImplicitParamValidation(t *testing.T) {
	if _, err := NewRingLattice(2, 1); err == nil {
		t.Error("RingLattice n=2 accepted")
	}
	if _, err := NewRingLattice(8, 0); err == nil {
		t.Error("RingLattice k=0 accepted")
	}
	if _, err := NewRingLattice(8, 4); err == nil {
		t.Error("RingLattice 2k=n accepted")
	}
	if _, err := NewTorusGrid(2, 5); err == nil {
		t.Error("TorusGrid rows=2 accepted")
	}
	if _, err := NewTorusGrid(5, 2); err == nil {
		t.Error("TorusGrid cols=2 accepted")
	}
	var of *OverflowError
	if _, err := NewRingLattice(MaxVertices, 2); !errors.As(err, &of) {
		t.Errorf("RingLattice over edge budget: err=%v, want *OverflowError", err)
	}
}
