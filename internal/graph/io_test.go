package graph

import (
	"strings"
	"testing"

	"byzcount/internal/xrand"
)

func TestEdgeListRoundTrip(t *testing.T) {
	rng := xrand.New(40)
	g, err := HND(50, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := g.WriteEdgeList(&sb); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip: N %d->%d M %d->%d", g.N(), g2.N(), g.M(), g2.M())
	}
	e1, e2 := g.EdgeList(), g2.EdgeList()
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d: %v vs %v", i, e1[i], e2[i])
		}
	}
}

func TestEdgeListRoundTripLoopsAndParallel(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 0)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	var sb strings.Builder
	if err := g.WriteEdgeList(&sb); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != 3 || g2.Degree(0) != 4 {
		t.Fatalf("loops/parallel lost: M=%d deg0=%d", g2.M(), g2.Degree(0))
	}
}

func TestReadEdgeListComments(t *testing.T) {
	in := "# a comment\nn 3\n\n0 1\n# another\n1 2\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"",             // empty
		"x 3\n0 1\n",   // bad header
		"n -1\n",       // negative count
		"n 2\n0\n",     // short edge line
		"n 2\n0 a\n",   // non-numeric
		"n 2\n0 5\n",   // out of range
		"0 1\nn 2\n",   // edge before header
		"n two\n0 1\n", // bad count
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestSimpleRegular(t *testing.T) {
	rng := xrand.New(41)
	for _, tc := range []struct{ n, d int }{{64, 8}, {101, 4}, {32, 3}} {
		g, err := SimpleRegular(tc.n, tc.d, 50, rng)
		if err != nil {
			t.Fatalf("SimpleRegular(%d,%d): %v", tc.n, tc.d, err)
		}
		if !g.IsRegular(tc.d) {
			t.Errorf("not %d-regular", tc.d)
		}
		if !g.IsSimple() {
			t.Error("not simple")
		}
	}
}

func TestSimpleRegularErrors(t *testing.T) {
	rng := xrand.New(42)
	if _, err := SimpleRegular(4, 4, 10, rng); err == nil {
		t.Error("d >= n accepted")
	}
	if _, err := SimpleRegular(5, 3, 10, rng); err == nil {
		t.Error("odd n*d accepted")
	}
	if _, err := SimpleRegular(10, 3, 0, rng); err == nil {
		t.Error("zero restarts accepted")
	}
}

func TestSimpleRegularConnectedUsually(t *testing.T) {
	// d >= 3 random regular graphs are connected whp.
	rng := xrand.New(43)
	connected := 0
	for trial := 0; trial < 10; trial++ {
		g, err := SimpleRegular(100, 4, 50, rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.IsConnected() {
			connected++
		}
	}
	if connected < 9 {
		t.Errorf("only %d/10 connected", connected)
	}
}

func TestSimpleRegularHighDegree(t *testing.T) {
	// The regime where rejection sampling fails: d=8 must work here.
	rng := xrand.New(44)
	g, err := SimpleRegular(256, 8, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsRegular(8) || !g.IsSimple() {
		t.Error("SimpleRegular(256,8) malformed")
	}
}
