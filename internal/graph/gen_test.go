package graph

import (
	"math"
	"testing"

	"byzcount/internal/xrand"
)

func TestHNDRegular(t *testing.T) {
	rng := xrand.New(1)
	for _, tc := range []struct{ n, d int }{{10, 4}, {64, 8}, {101, 6}, {3, 2}} {
		g, err := HND(tc.n, tc.d, rng)
		if err != nil {
			t.Fatalf("HND(%d,%d): %v", tc.n, tc.d, err)
		}
		if g.N() != tc.n {
			t.Errorf("N = %d", g.N())
		}
		if !g.IsRegular(tc.d) {
			t.Errorf("HND(%d,%d) not %d-regular", tc.n, tc.d, tc.d)
		}
		if g.M() != tc.n*tc.d/2 {
			t.Errorf("M = %d, want %d", g.M(), tc.n*tc.d/2)
		}
	}
}

func TestHNDConnected(t *testing.T) {
	// Union of Hamiltonian cycles is always connected (one cycle suffices).
	rng := xrand.New(2)
	for trial := 0; trial < 10; trial++ {
		g, err := HND(50, 4, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsConnected() {
			t.Fatal("HND graph disconnected")
		}
	}
}

func TestHNDNoSelfLoops(t *testing.T) {
	rng := xrand.New(3)
	g, err := HND(30, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		for _, w := range g.Adj(u) {
			if int(w) == u {
				t.Fatalf("self-loop at %d", u)
			}
		}
	}
}

func TestHNDErrors(t *testing.T) {
	rng := xrand.New(1)
	if _, err := HND(2, 4, rng); err == nil {
		t.Error("HND(2,4) should fail")
	}
	if _, err := HND(10, 3, rng); err == nil {
		t.Error("odd d should fail")
	}
	if _, err := HND(10, 0, rng); err == nil {
		t.Error("d=0 should fail")
	}
}

func TestHNDDeterministic(t *testing.T) {
	a, _ := HND(20, 4, xrand.New(7))
	b, _ := HND(20, 4, xrand.New(7))
	ea, eb := a.EdgeList(), b.EdgeList()
	if len(ea) != len(eb) {
		t.Fatal("edge counts differ")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
}

func TestHNDSimple(t *testing.T) {
	rng := xrand.New(4)
	g, err := HNDSimple(64, 4, 2000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsSimple() || !g.IsRegular(4) {
		t.Error("HNDSimple returned non-simple or irregular graph")
	}
}

func TestHNDSimpleExhaustsAttempts(t *testing.T) {
	// With 0 attempts the generator must fail cleanly.
	if _, err := HNDSimple(64, 4, 0, xrand.New(4)); err == nil {
		t.Error("maxAttempts=0 should fail")
	}
}

func TestHNDExpansion(t *testing.T) {
	// H(n,d) graphs are expanders whp; check the sweep estimate is bounded
	// away from zero, and that a ring's is near zero by comparison.
	rng := xrand.New(5)
	g, err := HND(256, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	h := g.EstimateVertexExpansion(8, rng.Split("sweep"))
	ring, _ := Ring(256)
	hr := ring.EstimateVertexExpansion(8, rng.Split("sweep2"))
	if h < 0.3 {
		t.Errorf("H(256,8) expansion estimate %g too small", h)
	}
	if hr > 0.1 {
		t.Errorf("ring expansion estimate %g too large", hr)
	}
	if h <= hr {
		t.Errorf("expander (%g) should beat ring (%g)", h, hr)
	}
}

func TestConfigurationModelDegrees(t *testing.T) {
	rng := xrand.New(6)
	degrees := []int{3, 3, 2, 2, 1, 1}
	g, err := ConfigurationModel(degrees, rng)
	if err != nil {
		t.Fatal(err)
	}
	for v, want := range degrees {
		if got := g.Degree(v); got != want {
			t.Errorf("degree[%d] = %d, want %d", v, got, want)
		}
	}
}

func TestConfigurationModelErrors(t *testing.T) {
	rng := xrand.New(1)
	if _, err := ConfigurationModel([]int{1, 1, 1}, rng); err == nil {
		t.Error("odd degree sum accepted")
	}
	if _, err := ConfigurationModel([]int{-1, 1}, rng); err == nil {
		t.Error("negative degree accepted")
	}
}

func TestRandomRegularSimple(t *testing.T) {
	rng := xrand.New(8)
	g, err := RandomRegular(50, 4, 1000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsSimple() {
		t.Error("not simple")
	}
	if !g.IsRegular(4) {
		t.Error("not 4-regular")
	}
}

func TestRandomRegularErrors(t *testing.T) {
	rng := xrand.New(1)
	if _, err := RandomRegular(4, 5, 10, rng); err == nil {
		t.Error("d >= n accepted")
	}
	if _, err := RandomRegular(5, 3, 10, rng); err == nil {
		t.Error("odd n*d accepted")
	}
}

func TestWattsStrogatz(t *testing.T) {
	rng := xrand.New(9)
	g, err := WattsStrogatz(100, 3, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 100 {
		t.Errorf("N = %d", g.N())
	}
	if g.M() != 300 {
		t.Errorf("M = %d, want 300", g.M())
	}
	if !g.IsSimple() {
		t.Error("WattsStrogatz graph not simple")
	}
}

func TestWattsStrogatzBetaZeroIsLattice(t *testing.T) {
	rng := xrand.New(10)
	g, err := WattsStrogatz(20, 2, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsRegular(4) {
		t.Error("beta=0 lattice should be 2k-regular")
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 2) || g.HasEdge(0, 3) {
		t.Error("lattice structure wrong")
	}
}

func TestWattsStrogatzRewiringShortensDiameter(t *testing.T) {
	rng := xrand.New(11)
	lattice, _ := WattsStrogatz(200, 2, 0, rng.Split("a"))
	rewired, _ := WattsStrogatz(200, 2, 0.3, rng.Split("b"))
	dl, err := lattice.Diameter()
	if err != nil {
		t.Fatal(err)
	}
	dr, err := rewired.Diameter()
	if err != nil {
		t.Skip("rewired graph disconnected for this seed") // extremely unlikely
	}
	if dr >= dl {
		t.Errorf("rewiring should shorten diameter: lattice %d vs rewired %d", dl, dr)
	}
}

func TestWattsStrogatzErrors(t *testing.T) {
	rng := xrand.New(1)
	if _, err := WattsStrogatz(2, 1, 0.5, rng); err == nil {
		t.Error("tiny n accepted")
	}
	if _, err := WattsStrogatz(10, 5, 0.5, rng); err == nil {
		t.Error("2k >= n accepted")
	}
	if _, err := WattsStrogatz(10, 2, 1.5, rng); err == nil {
		t.Error("beta > 1 accepted")
	}
}

func TestRingPathTorus(t *testing.T) {
	if _, err := Ring(2); err == nil {
		t.Error("Ring(2) accepted")
	}
	if _, err := Path(0); err == nil {
		t.Error("Path(0) accepted")
	}
	p, _ := Path(1)
	if p.N() != 1 || p.M() != 0 {
		t.Error("Path(1) wrong")
	}
	tor, err := Torus(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !tor.IsRegular(4) {
		t.Error("torus not 4-regular")
	}
	if !tor.IsConnected() {
		t.Error("torus disconnected")
	}
	if _, err := Torus(2, 5); err == nil {
		t.Error("Torus(2,5) accepted")
	}
}

func TestCompleteAndStar(t *testing.T) {
	k, _ := Complete(5)
	if k.M() != 10 || !k.IsRegular(4) {
		t.Error("K5 wrong")
	}
	if _, err := Complete(0); err == nil {
		t.Error("Complete(0) accepted")
	}
	s, _ := Star(5)
	if s.Degree(0) != 4 || s.Degree(1) != 1 {
		t.Error("star degrees wrong")
	}
	if _, err := Star(1); err == nil {
		t.Error("Star(1) accepted")
	}
}

func TestHypercube(t *testing.T) {
	h, err := Hypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != 16 || !h.IsRegular(4) || !h.IsConnected() {
		t.Error("hypercube wrong")
	}
	d, _ := h.Diameter()
	if d != 4 {
		t.Errorf("Q4 diameter = %d, want 4", d)
	}
	if _, err := Hypercube(0); err == nil {
		t.Error("Hypercube(0) accepted")
	}
}

func TestCompleteBinaryTree(t *testing.T) {
	bt, err := CompleteBinaryTree(4)
	if err != nil {
		t.Fatal(err)
	}
	if bt.N() != 15 || bt.M() != 14 {
		t.Errorf("tree N=%d M=%d", bt.N(), bt.M())
	}
	if !bt.IsConnected() {
		t.Error("tree disconnected")
	}
	if _, err := CompleteBinaryTree(0); err == nil {
		t.Error("levels=0 accepted")
	}
}

func TestDumbbell(t *testing.T) {
	rng := xrand.New(12)
	g, bridge, err := Dumbbell(50, 80, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 131 {
		t.Errorf("N = %d", g.N())
	}
	if bridge != 130 {
		t.Errorf("bridge = %d", bridge)
	}
	if !g.IsConnected() {
		t.Error("dumbbell disconnected")
	}
	if g.Degree(bridge) != 2 {
		t.Errorf("bridge degree = %d", g.Degree(bridge))
	}
	// Removing the bridge must disconnect left from right.
	keep := make([]bool, g.N())
	for i := range keep {
		keep[i] = i != bridge
	}
	sub, _, _ := g.InducedSubgraph(keep)
	if sub.IsConnected() {
		t.Error("bridge is not a cut vertex")
	}
	// Low expansion overall.
	h := g.EstimateVertexExpansion(8, rng.Split("sweep"))
	if h > 0.2 {
		t.Errorf("dumbbell expansion estimate %g too high", h)
	}
}

func TestDumbbellErrors(t *testing.T) {
	rng := xrand.New(1)
	if _, _, err := Dumbbell(2, 50, 4, rng); err == nil {
		t.Error("tiny side accepted")
	}
}

func TestVertexExpansionExactSmall(t *testing.T) {
	k4, _ := Complete(4)
	// For K4 the worst set is any 2-set: |Out| = 2, ratio 1... actually for
	// |S|=1 ratio is 3, |S|=2 ratio is 1. h = 1.
	if got := k4.VertexExpansionExact(); got != 1 {
		t.Errorf("h(K4) = %g, want 1", got)
	}
	ring6, _ := Ring(6)
	// Worst S for C6: a contiguous arc of 3 has Out = 2, ratio 2/3.
	if got, want := ring6.VertexExpansionExact(), 2.0/3.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("h(C6) = %g, want %g", got, want)
	}
	p2, _ := Path(2)
	if got := p2.VertexExpansionExact(); got != 1 {
		t.Errorf("h(P2) = %g", got)
	}
	single := New(1)
	if got := single.VertexExpansionExact(); got != 0 {
		t.Errorf("h(single) = %g", got)
	}
}

func TestVertexExpansionExactPanicsLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("large exact expansion did not panic")
		}
	}()
	g := New(25)
	g.VertexExpansionExact()
}

func TestEstimateMatchesExactOnTinyGraphs(t *testing.T) {
	rng := xrand.New(13)
	for trial := 0; trial < 5; trial++ {
		g, err := HND(12, 4, rng.SplitN("g", trial))
		if err != nil {
			t.Fatal(err)
		}
		exact := g.VertexExpansionExact()
		est := g.EstimateVertexExpansion(20, rng.SplitN("s", trial))
		// Estimate is an upper bound on the exact value.
		if est < exact-1e-9 {
			t.Errorf("estimate %g below exact %g", est, exact)
		}
	}
}

func TestOutNeighborsAndExpansionOf(t *testing.T) {
	g, _ := Ring(6)
	out := g.OutNeighbors([]int{0, 1})
	if len(out) != 2 {
		t.Errorf("Out({0,1}) = %v", out)
	}
	if e := g.ExpansionOf([]int{0, 1}); e != 1 {
		t.Errorf("ExpansionOf = %g", e)
	}
	if e := g.ExpansionOf(nil); !math.IsInf(e, 1) {
		t.Errorf("ExpansionOf(empty) = %g", e)
	}
	// Duplicates deduplicated.
	if e := g.ExpansionOf([]int{0, 0, 1}); e != 1 {
		t.Errorf("ExpansionOf with dups = %g", e)
	}
}

func TestBallGrowthProfile(t *testing.T) {
	rng := xrand.New(14)
	g, _ := HND(512, 8, rng)
	prof := g.BallGrowthProfile(0, 3)
	if len(prof) != 3 {
		t.Fatalf("profile = %v", prof)
	}
	// In an expander the first ratios are large (close to d).
	if prof[0] < 3 {
		t.Errorf("first growth ratio %g too small", prof[0])
	}
	ring, _ := Ring(512)
	rp := ring.BallGrowthProfile(0, 3)
	if rp[2] > 1.7 {
		t.Errorf("ring growth ratio %g too large", rp[2])
	}
}

func TestCheegerBoundSpectral(t *testing.T) {
	rng := xrand.New(15)
	g, _ := HND(256, 8, rng)
	bound := g.CheegerBoundSpectral(100, rng.Split("p"))
	if bound <= 0.01 {
		t.Errorf("spectral bound %g too small for an expander", bound)
	}
	ring, _ := Ring(256)
	rb := ring.CheegerBoundSpectral(100, rng.Split("q"))
	if rb >= bound {
		t.Errorf("ring bound %g should be below expander bound %g", rb, bound)
	}
	disc := New(4)
	if b := disc.CheegerBoundSpectral(50, rng.Split("r")); b != 0 {
		t.Errorf("disconnected bound = %g", b)
	}
}

func TestTreeLikeOnTree(t *testing.T) {
	bt, _ := CompleteBinaryTree(6)
	// Pick a depth-3 vertex: its radius-2 ball contains only vertices of
	// full degree 3 in the interior (the degree-2 root is outside the
	// interior, and the leaves sit exactly on the boundary).
	if !bt.IsLocallyTreeLike(11, 2, 3) {
		t.Error("interior tree vertex should be locally tree-like")
	}
	// Vertex 1 is adjacent to the degree-2 root, which is interior at
	// radius 2 and breaks the full-degree requirement.
	if bt.IsLocallyTreeLike(1, 2, 3) {
		t.Error("vertex next to the low-degree root must not qualify")
	}
}

func TestTreeLikeOnRing(t *testing.T) {
	ring, _ := Ring(20)
	// A ring vertex is tree-like for small radii (its ball is a path)...
	if !ring.IsLocallyTreeLike(0, 3, 2) {
		t.Error("ring vertex should be tree-like at radius 3")
	}
	// ...but not when the ball wraps around and closes the cycle.
	if ring.IsLocallyTreeLike(0, 10, 2) {
		t.Error("ring vertex must not be tree-like once the cycle closes")
	}
}

func TestTreeLikeRejectsTriangle(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	if g.IsLocallyTreeLike(0, 1, 2) {
		t.Error("triangle vertex reported tree-like at radius 1")
	}
}

func TestTreeLikeRadiusZeroTrivial(t *testing.T) {
	g, _ := Complete(5)
	if !g.IsLocallyTreeLike(0, 0, 4) {
		t.Error("radius 0 should be trivially tree-like")
	}
}

func TestTreeLikeFractionHND(t *testing.T) {
	rng := xrand.New(16)
	g, _ := HND(1024, 8, rng)
	r := TreeLikeRadius(1024, 8)
	frac := g.TreeLikeFraction(r, 8)
	// Lemma 2: all but O(n^0.8) nodes are tree-like; at n=1024 that still
	// permits a noticeable minority, so use a soft threshold.
	if frac < 0.5 {
		t.Errorf("tree-like fraction %g too small at radius %d", frac, r)
	}
}

func TestTreeLikeRadius(t *testing.T) {
	if r := TreeLikeRadius(1, 8); r != 1 {
		t.Errorf("degenerate radius = %d", r)
	}
	if r := TreeLikeRadius(1<<20, 2); r < 1 {
		t.Errorf("radius = %d", r)
	}
	big := TreeLikeRadius(1<<30, 4)
	small := TreeLikeRadius(1<<10, 4)
	if big < small {
		t.Errorf("radius should grow with n: %d < %d", big, small)
	}
}

func TestTreeLikeCountMatchesFraction(t *testing.T) {
	rng := xrand.New(17)
	g, _ := HND(128, 4, rng)
	c := g.TreeLikeCount(2, 4)
	f := g.TreeLikeFraction(2, 4)
	if math.Abs(f-float64(c)/128) > 1e-12 {
		t.Error("count and fraction disagree")
	}
	empty := New(0)
	if empty.TreeLikeFraction(2, 4) != 0 {
		t.Error("empty fraction should be 0")
	}
}
