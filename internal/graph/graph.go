// Package graph provides the network substrate for the Byzantine counting
// reproduction: an undirected (multi)graph type, the random-graph
// generators used by the paper (the H(n,d) permutation model, the
// configuration model, Watts-Strogatz small-world networks), deterministic
// topologies for baselines and the impossibility experiment, and the
// structural tools the algorithms rely on (BFS balls and boundaries,
// diameter, vertex expansion, the locally-tree-like test of Definition 3).
//
// Vertices are dense integers 0..N()-1. Edges are undirected; parallel
// edges and self-loops are representable because the H(n,d) and
// configuration models can produce them (the paper notes the expected
// constant number of multi-edges in Section 1.2). Generators that need
// simple graphs resample until simple.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Graph is an undirected multigraph over vertices 0..n-1. The zero value is
// an empty graph with no vertices; use New to create a graph with vertices.
type Graph struct {
	adj [][]int32
	m   int // number of undirected edges (each parallel edge counted once)
}

// New returns a graph with n isolated vertices. It panics if n < 0.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{adj: make([][]int32, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of undirected edges (parallel edges each count).
func (g *Graph) M() int { return g.m }

// AddEdge adds an undirected edge between u and v. Parallel edges and
// self-loops are allowed; a self-loop contributes 2 to the degree of u.
// It panics if either endpoint is out of range.
func (g *Graph) AddEdge(u, v int) {
	g.check(u)
	g.check(v)
	g.adj[u] = append(g.adj[u], int32(v))
	g.adj[v] = append(g.adj[v], int32(u))
	g.m++
}

func (g *Graph) check(u int) {
	if u < 0 || u >= len(g.adj) {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", u, len(g.adj)))
	}
}

// Degree returns the degree of u. A self-loop contributes 2: AddEdge(u,u)
// stores two adjacency entries for u, so the list length is already the
// graph-theoretic degree.
func (g *Graph) Degree(u int) int {
	g.check(u)
	return len(g.adj[u])
}

// Neighbors returns a copy of u's adjacency list (possibly with
// duplicates for parallel edges and u itself for self-loops).
func (g *Graph) Neighbors(u int) []int {
	g.check(u)
	out := make([]int, len(g.adj[u]))
	for i, w := range g.adj[u] {
		out[i] = int(w)
	}
	return out
}

// Adj returns u's adjacency list as a shared read-only view. Callers must
// not modify the returned slice; use Neighbors for a private copy. This
// no-copy accessor exists because the simulator touches adjacency on every
// round for every node.
func (g *Graph) Adj(u int) []int32 {
	g.check(u)
	return g.adj[u]
}

// Slots returns the vertex-slot count — for a static graph, simply N().
// Together with Alive and AppendNeighbors this makes *Graph satisfy the
// substrate view shared with mutable topologies (byzantine.Substrate),
// so placements and adversaries target static and churning networks
// through one interface.
func (g *Graph) Slots() int { return len(g.adj) }

// Alive reports whether slot u hosts a node; on a static graph every
// vertex is always alive.
func (g *Graph) Alive(u int) bool { return u >= 0 && u < len(g.adj) }

// AppendNeighbors appends u's neighbor multiset to buf and returns the
// extended slice, in adjacency order — the allocation-free counterpart
// of Neighbors, matching sim.Topology's accessor.
func (g *Graph) AppendNeighbors(u int, buf []int) []int {
	g.check(u)
	for _, w := range g.adj[u] {
		buf = append(buf, int(w))
	}
	return buf
}

// HasEdge reports whether at least one edge joins u and v.
func (g *Graph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	// Scan the smaller list.
	a, b := u, v
	if len(g.adj[a]) > len(g.adj[b]) {
		a, b = b, a
	}
	for _, w := range g.adj[a] {
		if int(w) == b {
			return true
		}
	}
	return false
}

// MaxDegree returns the maximum vertex degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for u := range g.adj {
		if d := g.Degree(u); d > max {
			max = d
		}
	}
	return max
}

// MinDegree returns the minimum vertex degree, or 0 for an empty graph.
func (g *Graph) MinDegree() int {
	if len(g.adj) == 0 {
		return 0
	}
	min := g.Degree(0)
	for u := 1; u < len(g.adj); u++ {
		if d := g.Degree(u); d < min {
			min = d
		}
	}
	return min
}

// IsRegular reports whether every vertex has degree d.
func (g *Graph) IsRegular(d int) bool {
	for u := range g.adj {
		if g.Degree(u) != d {
			return false
		}
	}
	return true
}

// IsSimple reports whether the graph has no self-loops and no parallel
// edges.
func (g *Graph) IsSimple() bool {
	seen := make(map[int32]bool)
	for u := range g.adj {
		clear(seen)
		for _, w := range g.adj[u] {
			if int(w) == u || seen[w] {
				return false
			}
			seen[w] = true
		}
	}
	return true
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{adj: make([][]int32, len(g.adj)), m: g.m}
	for u, row := range g.adj {
		c.adj[u] = append([]int32(nil), row...)
	}
	return c
}

// Validate checks internal consistency: every directed arc has a matching
// reverse arc and all endpoints are in range. It returns nil for a
// well-formed graph. Graphs built only through AddEdge are always valid;
// Validate guards deserialized or hand-built graphs.
func (g *Graph) Validate() error {
	n := len(g.adj)
	arcs := 0
	type pair struct{ u, v int32 }
	counts := make(map[pair]int)
	for u, row := range g.adj {
		for _, w := range row {
			if w < 0 || int(w) >= n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", u, w)
			}
			counts[pair{int32(u), w}]++
			arcs++
		}
	}
	for p, c := range counts {
		if p.u == p.v {
			continue // self-loop: single arc entry per AddEdge... see below
		}
		if counts[pair{p.v, p.u}] != c {
			return fmt.Errorf("graph: asymmetric adjacency between %d and %d", p.u, p.v)
		}
	}
	return nil
}

// Vertices returns 0..n-1; convenient for range-style iteration in tests
// and examples.
func (g *Graph) Vertices() []int {
	out := make([]int, len(g.adj))
	for i := range out {
		out[i] = i
	}
	return out
}

// EdgeList returns each undirected edge once as a (u,v) pair with u <= v,
// sorted lexicographically. Parallel edges appear once per multiplicity.
func (g *Graph) EdgeList() [][2]int {
	edges := make([][2]int, 0, g.m)
	for u, row := range g.adj {
		loops := 0
		for _, w := range row {
			v := int(w)
			switch {
			case u < v:
				edges = append(edges, [2]int{u, v})
			case u == v:
				// Each loop contributes two adjacency entries; emit once
				// per pair of entries.
				loops++
				if loops%2 == 0 {
					edges = append(edges, [2]int{u, u})
				}
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	return edges
}

// InducedSubgraph returns the subgraph induced by the vertices where
// keep[v] is true, along with old->new and new->old vertex index maps.
// Edges with either endpoint dropped are removed; old->new is -1 for
// dropped vertices.
func (g *Graph) InducedSubgraph(keep []bool) (sub *Graph, oldToNew []int, newToOld []int) {
	if len(keep) != len(g.adj) {
		panic("graph: keep mask length mismatch")
	}
	oldToNew = make([]int, len(g.adj))
	for i := range oldToNew {
		oldToNew[i] = -1
	}
	for v, k := range keep {
		if k {
			oldToNew[v] = len(newToOld)
			newToOld = append(newToOld, v)
		}
	}
	sub = New(len(newToOld))
	for _, e := range g.EdgeList() {
		if keep[e[0]] && keep[e[1]] {
			sub.AddEdge(oldToNew[e[0]], oldToNew[e[1]])
		}
	}
	return sub, oldToNew, newToOld
}

// ErrNotConnected is returned by operations requiring a connected graph.
var ErrNotConnected = errors.New("graph: not connected")
