// Package graph provides the network substrate for the Byzantine counting
// reproduction: an undirected (multi)graph type, the random-graph
// generators used by the paper (the H(n,d) permutation model, the
// configuration model, Watts-Strogatz small-world networks), deterministic
// topologies for baselines and the impossibility experiment, and the
// structural tools the algorithms rely on (BFS balls and boundaries,
// diameter, vertex expansion, the locally-tree-like test of Definition 3).
//
// Vertices are dense integers 0..N()-1. Edges are undirected; parallel
// edges and self-loops are representable because the H(n,d) and
// configuration models can produce them (the paper notes the expected
// constant number of multi-edges in Section 1.2). Generators that need
// simple graphs resample until simple.
//
// # Memory model
//
// A Graph is built incrementally (New + AddEdge append to a chunked
// edge log) and read through a CSR (compressed sparse row) view: one
// offsets array and one targets array backing every adjacency list,
// finalized lazily by a streamed two-pass degree-count/fill step on
// first read after a mutation. The edge log is a sequence of
// bounded-size chunks rather than one flat slice, so growth never
// copies: peak build memory is O(m) with no append-doubling spikes, and
// a reserved build (Reserve up front) carves exactly ceil(m/chunk)
// chunk allocations. Per-vertex adjacency is a slice into a single
// backing array — no per-vertex allocations, cache-friendly traversal.
// Vertex ids and arc offsets are int32 (MaxVertices/MaxEdges); builds
// that would exceed them fail with a typed *OverflowError. A second,
// lazily derived CSR holds the sorted-deduplicated adjacency the
// simulator's membership checks use. Mutation must be externally
// synchronized;
// concurrent reads of a finalized graph are safe (lazy views build under
// a mutex and publish through atomics), which is what lets the
// experiment driver's substrate cache share one immutable graph across
// concurrent trials.
package graph

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// CSR capacity limits: vertex ids live in int32 edge-log entries and
// CSR targets, and CSR offsets index arcs (two per undirected edge)
// with int32.
const (
	// MaxVertices is the largest vertex count a Graph supports.
	MaxVertices = 1<<31 - 1
	// MaxEdges is the largest edge count a Graph supports: each edge
	// stores two int32 arc entries, so offsets overflow past this.
	MaxEdges = (1<<31 - 1) / 2
)

// OverflowError reports a construction that would exceed the CSR's
// int32 limits. Generators return it from their edge-budget precheck;
// AddEdge and New panic with it when a hand-driven build crosses the
// limit (the same contract as their range panics).
type OverflowError struct {
	What  string // "vertices" or "edges"
	Count int    // requested count
	Limit int    // the exceeded limit
}

func (e *OverflowError) Error() string {
	return fmt.Sprintf("graph: %d %s exceed the CSR int32 limit of %d", e.Count, e.What, e.Limit)
}

// CheckEdgeBudget returns a typed *OverflowError when an intended build
// of `edges` edges would overflow the CSR's int32 arc offsets, nil
// otherwise. Generators call it before allocating anything, so the
// error path costs no memory.
func CheckEdgeBudget(edges int) error {
	if edges < 0 || edges > MaxEdges {
		return &OverflowError{What: "edges", Count: edges, Limit: MaxEdges}
	}
	return nil
}

// edgeChunkEdges bounds one edge-log chunk (64Ki edges = 512KiB per
// chunk): large enough that chunk bookkeeping vanishes in build cost,
// small enough that carving never triggers huge-object copies.
const edgeChunkEdges = 1 << 16

// Graph is an undirected multigraph over vertices 0..n-1. The zero value is
// an empty graph with no vertices; use New to create a graph with vertices.
type Graph struct {
	n int
	m int // number of undirected edges (each parallel edge counted once)

	// log is the chunked edge log: (u,v) endpoint pairs interleaved in
	// insertion order, split across bounded-size chunks so growth
	// appends a chunk instead of copying the whole log.
	log      [][]int32
	capEdges int // total edge capacity carved across chunks
	reserved int // Reserve hint: total edge capacity to aim for

	deg []int32 // running degree per vertex (a self-loop contributes 2)

	// csr is the finalized adjacency view, rebuilt on first read after a
	// mutation. Readers load it through the atomic pointer; builders
	// serialize on mu. csr.sorted and the diameter memo hang off the same
	// finalized view so a mutation invalidates everything at once.
	csr atomic.Pointer[csrView]
	mu  sync.Mutex
}

// csrView is one finalized read-only view of the adjacency.
type csrView struct {
	off []int32 // len n+1; vertex u's arcs are tgt[off[u]:off[u+1]]
	tgt []int32 // arc targets, insertion order per vertex

	// sorted-deduplicated adjacency (lazy; nil until first use).
	sorted atomic.Pointer[sortedCSR]

	// diameter memo (lazy).
	diamOnce sync.Once
	diamVal  int
	diamErr  error
}

// sortedCSR is the sorted-deduplicated companion adjacency.
type sortedCSR struct {
	off []int32
	tgt []int32
}

// New returns a graph with n isolated vertices. It panics if n < 0.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	if n > MaxVertices {
		panic(&OverflowError{What: "vertices", Count: n, Limit: MaxVertices})
	}
	return &Graph{n: n, deg: make([]int32, n)}
}

// Reserve records a capacity hint for the chunked edge log: subsequent
// AddEdge calls carve chunks sized toward `edges` total capacity (each
// bounded by edgeChunkEdges), so a generator that knows its edge count
// builds with ceil(edges/chunk) exact-size allocations and never copies.
func (g *Graph) Reserve(edges int) {
	if edges > g.reserved {
		g.reserved = edges
	}
}

// nextChunkEdges sizes the next edge-log chunk: the remaining reserved
// capacity when a hint is outstanding, else geometric growth (match the
// edges logged so far), clamped to [64, edgeChunkEdges]. Either way no
// existing chunk is ever copied, so an unreserved build costs
// O(log m + m/chunk) allocations instead of doubling copies.
func (g *Graph) nextChunkEdges() int {
	want := g.reserved - g.capEdges
	if want < g.m {
		want = g.m
	}
	if want < 64 {
		want = 64
	}
	if want > edgeChunkEdges {
		want = edgeChunkEdges
	}
	return want
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of undirected edges (parallel edges each count).
func (g *Graph) M() int { return g.m }

// AddEdge adds an undirected edge between u and v. Parallel edges and
// self-loops are allowed; a self-loop contributes 2 to the degree of u.
// It panics if either endpoint is out of range, or with a typed
// *OverflowError if the edge would exceed MaxEdges.
func (g *Graph) AddEdge(u, v int) {
	g.check(u)
	g.check(v)
	if g.m >= MaxEdges {
		panic(&OverflowError{What: "edges", Count: g.m + 1, Limit: MaxEdges})
	}
	last := len(g.log) - 1
	if last < 0 || len(g.log[last]) == cap(g.log[last]) {
		size := g.nextChunkEdges()
		g.log = append(g.log, make([]int32, 0, 2*size))
		g.capEdges += size
		last++
	}
	g.log[last] = append(g.log[last], int32(u), int32(v))
	g.deg[u]++
	g.deg[v]++
	g.m++
	g.csr.Store(nil) // invalidate the finalized view (and its memos)
}

func (g *Graph) check(u int) {
	if u < 0 || u >= g.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", u, g.n))
	}
}

// view returns the finalized CSR, building it if the edge log changed.
// The streamed two-pass build (degree prefix-sum, then an arc fill that
// replays the chunked log in insertion order) reproduces exactly the
// per-vertex append order the seed-era slice-of-slices representation
// had: for each logged edge (u,v), u gains arc v and then v gains arc
// u, so a self-loop contributes two consecutive arcs. Peak memory
// during finalize is the log (chunked, O(m)) plus the two output
// arrays — no intermediate copies.
func (g *Graph) view() *csrView {
	if v := g.csr.Load(); v != nil {
		return v
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if v := g.csr.Load(); v != nil { // raced with another builder
		return v
	}
	n := g.n
	v := &csrView{
		off: make([]int32, n+1),
		tgt: make([]int32, 2*g.m),
	}
	// Pass 1: offsets from the running degrees.
	for u := 0; u < n; u++ {
		v.off[u+1] = v.off[u] + g.deg[u]
	}
	// Pass 2: fill, using off[u] as vertex u's write cursor; afterwards
	// off[u] holds end(u) == start(u+1), so one backward shift restores
	// the offsets without a separate cursor array.
	for _, ch := range g.log {
		for i := 0; i < len(ch); i += 2 {
			u, w := ch[i], ch[i+1]
			v.tgt[v.off[u]] = w
			v.off[u]++
			v.tgt[v.off[w]] = u
			v.off[w]++
		}
	}
	for u := n; u > 0; u-- {
		v.off[u] = v.off[u-1]
	}
	v.off[0] = 0
	g.csr.Store(v)
	return v
}

// sortedView returns the sorted-deduplicated CSR, building it on first
// use: a copy of the adjacency with each vertex's arc list sorted
// ascending and consecutive duplicates (parallel edges) dropped.
func (g *Graph) sortedView() *sortedCSR {
	v := g.view()
	if s := v.sorted.Load(); s != nil {
		return s
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if s := v.sorted.Load(); s != nil {
		return s
	}
	n := g.n
	s := &sortedCSR{
		off: make([]int32, n+1),
		tgt: make([]int32, 0, len(v.tgt)),
	}
	for u := 0; u < n; u++ {
		row := v.tgt[v.off[u]:v.off[u+1]]
		start := len(s.tgt)
		s.tgt = append(s.tgt, row...)
		seg := s.tgt[start:]
		sortInt32s(seg)
		// Compact consecutive duplicates in place.
		w := start
		for i, x := range seg {
			if i == 0 || x != seg[i-1] {
				s.tgt[w] = x
				w++
			}
		}
		s.tgt = s.tgt[:w]
		s.off[u+1] = int32(w)
	}
	v.sorted.Store(s)
	return s
}

// sortInt32s sorts a small int32 slice ascending: insertion sort below a
// threshold (adjacency rows are usually degree-sized), sort.Slice-free
// pdqsort via sort.Sort semantics above it.
func sortInt32s(s []int32) {
	if len(s) <= 24 {
		for i := 1; i < len(s); i++ {
			x := s[i]
			j := i - 1
			for j >= 0 && s[j] > x {
				s[j+1] = s[j]
				j--
			}
			s[j+1] = x
		}
		return
	}
	sort.Sort(int32Slice(s))
}

type int32Slice []int32

func (s int32Slice) Len() int           { return len(s) }
func (s int32Slice) Less(i, j int) bool { return s[i] < s[j] }
func (s int32Slice) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

// Degree returns the degree of u. A self-loop contributes 2: AddEdge(u,u)
// stores two adjacency entries for u, so the count is already the
// graph-theoretic degree.
func (g *Graph) Degree(u int) int {
	g.check(u)
	return int(g.deg[u])
}

// Neighbors returns a copy of u's adjacency list (possibly with
// duplicates for parallel edges and u itself for self-loops).
func (g *Graph) Neighbors(u int) []int {
	g.check(u)
	v := g.view()
	row := v.tgt[v.off[u]:v.off[u+1]]
	out := make([]int, len(row))
	for i, w := range row {
		out[i] = int(w)
	}
	return out
}

// Adj returns u's adjacency list as a shared read-only view into the CSR
// targets array. Callers must not modify the returned slice; use
// Neighbors for a private copy. This no-copy accessor exists because the
// simulator touches adjacency on every round for every node.
func (g *Graph) Adj(u int) []int32 {
	g.check(u)
	v := g.view()
	return v.tgt[v.off[u]:v.off[u+1]:v.off[u+1]]
}

// SortedAdj returns u's adjacency sorted ascending with parallel edges
// deduplicated, as a shared read-only view into the sorted CSR. The
// simulator's membership stamps consume this directly, so engine
// construction performs no per-vertex sorting.
func (g *Graph) SortedAdj(u int) []int32 {
	g.check(u)
	s := g.sortedView()
	return s.tgt[s.off[u]:s.off[u+1]:s.off[u+1]]
}

// Slots returns the vertex-slot count — for a static graph, simply N().
// Together with Alive and AppendNeighbors this makes *Graph satisfy the
// substrate view shared with mutable topologies (byzantine.Substrate),
// so placements and adversaries target static and churning networks
// through one interface.
func (g *Graph) Slots() int { return g.n }

// Alive reports whether slot u hosts a node; on a static graph every
// vertex is always alive.
func (g *Graph) Alive(u int) bool { return u >= 0 && u < g.n }

// Epoch returns 0: a finished static graph never changes structure, so
// the structural-change counter is constant. With Epoch and EpochOf,
// *Graph satisfies sim.Topology outright — sim.New dispatches on the
// concrete type to keep the static fast path — and any topology-generic
// code treats a static graph as a network that never churns.
func (g *Graph) Epoch() uint64 { return 0 }

// EpochOf returns 0: no slot's neighborhood ever changes after Finish.
func (g *Graph) EpochOf(int) uint64 { return 0 }

// AppendNeighbors appends u's neighbor multiset to buf and returns the
// extended slice, in adjacency order — the allocation-free counterpart
// of Neighbors, matching sim.Topology's accessor.
func (g *Graph) AppendNeighbors(u int, buf []int) []int {
	g.check(u)
	v := g.view()
	for _, w := range v.tgt[v.off[u]:v.off[u+1]] {
		buf = append(buf, int(w))
	}
	return buf
}

// HasEdge reports whether at least one edge joins u and v.
func (g *Graph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	cv := g.view()
	// Scan the smaller list.
	a, b := int32(u), int32(v)
	if g.deg[a] > g.deg[b] {
		a, b = b, a
	}
	for _, w := range cv.tgt[cv.off[a]:cv.off[a+1]] {
		if w == b {
			return true
		}
	}
	return false
}

// MaxDegree returns the maximum vertex degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := int32(0)
	for _, d := range g.deg {
		if d > max {
			max = d
		}
	}
	return int(max)
}

// MinDegree returns the minimum vertex degree, or 0 for an empty graph.
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	min := g.deg[0]
	for _, d := range g.deg[1:] {
		if d < min {
			min = d
		}
	}
	return int(min)
}

// IsRegular reports whether every vertex has degree d.
func (g *Graph) IsRegular(d int) bool {
	for _, dd := range g.deg {
		if int(dd) != d {
			return false
		}
	}
	return true
}

// IsSimple reports whether the graph has no self-loops and no parallel
// edges. It stamps each row's targets into a scratch mark array, so the
// cost is O(n + m) with no per-vertex maps — this runs inside the
// simple-graph rejection-sampling loops of HNDSimple and RandomRegular.
func (g *Graph) IsSimple() bool {
	v := g.view()
	sc := getScratch(g.n)
	defer putScratch(sc)
	for u := 0; u < g.n; u++ {
		gen := sc.nextGen()
		for _, w := range v.tgt[v.off[u]:v.off[u+1]] {
			if int(w) == u || sc.mark[w] == gen {
				return false
			}
			sc.mark[w] = gen
		}
	}
	return true
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	c.m = g.m
	c.reserved = g.reserved
	c.log = make([][]int32, len(g.log))
	for i, ch := range g.log {
		c.log[i] = append([]int32(nil), ch...)
		c.capEdges += len(ch) / 2
	}
	copy(c.deg, g.deg)
	return c
}

// Validate checks internal consistency: every endpoint of the edge log is
// in range and the derived CSR offsets cover exactly the logged arcs. It
// returns nil for a well-formed graph. Graphs built only through AddEdge
// are always valid; Validate guards deserialized or hand-built graphs.
// (The seed-era asymmetric-adjacency check is structural now: both arc
// directions derive from one edge-log entry, so they cannot disagree.)
func (g *Graph) Validate() error {
	i := 0
	for _, ch := range g.log {
		for p := 0; p < len(ch); p += 2 {
			u, w := ch[p], ch[p+1]
			if u < 0 || int(u) >= g.n {
				return fmt.Errorf("graph: edge %d has out-of-range endpoint %d", i, u)
			}
			if w < 0 || int(w) >= g.n {
				return fmt.Errorf("graph: edge %d has out-of-range endpoint %d", i, w)
			}
			i++
		}
	}
	// Recompute per-vertex degrees from the edge log and compare
	// element-wise: the CSR fill trusts deg as its write cursors, so a
	// per-vertex skew (even one that preserves the total) would corrupt
	// the view silently.
	want := make([]int32, g.n)
	for _, ch := range g.log {
		for p := 0; p < len(ch); p += 2 {
			want[ch[p]]++
			want[ch[p+1]]++
		}
	}
	for u, d := range g.deg {
		if d != want[u] {
			return fmt.Errorf("graph: vertex %d has degree %d but the edge log implies %d", u, d, want[u])
		}
	}
	return nil
}

// Vertices returns 0..n-1; convenient for range-style iteration in tests
// and examples.
func (g *Graph) Vertices() []int {
	out := make([]int, g.n)
	for i := range out {
		out[i] = i
	}
	return out
}

// EdgeList returns each undirected edge once as a (u,v) pair with u <= v,
// sorted lexicographically. Parallel edges appear once per multiplicity.
func (g *Graph) EdgeList() [][2]int {
	edges := make([][2]int, 0, g.m)
	for _, ch := range g.log {
		for i := 0; i < len(ch); i += 2 {
			u, v := ch[i], ch[i+1]
			if u <= v {
				edges = append(edges, [2]int{int(u), int(v)})
			} else {
				edges = append(edges, [2]int{int(v), int(u)})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	return edges
}

// InducedSubgraph returns the subgraph induced by the vertices where
// keep[v] is true, along with old->new and new->old vertex index maps.
// Edges with either endpoint dropped are removed; old->new is -1 for
// dropped vertices.
func (g *Graph) InducedSubgraph(keep []bool) (sub *Graph, oldToNew []int, newToOld []int) {
	if len(keep) != g.n {
		panic("graph: keep mask length mismatch")
	}
	oldToNew = make([]int, g.n)
	for i := range oldToNew {
		oldToNew[i] = -1
	}
	for v, k := range keep {
		if k {
			oldToNew[v] = len(newToOld)
			newToOld = append(newToOld, v)
		}
	}
	sub = New(len(newToOld))
	for _, e := range g.EdgeList() {
		if keep[e[0]] && keep[e[1]] {
			sub.AddEdge(oldToNew[e[0]], oldToNew[e[1]])
		}
	}
	return sub, oldToNew, newToOld
}

// ErrNotConnected is returned by operations requiring a connected graph.
var ErrNotConnected = errors.New("graph: not connected")
