package graph

import (
	"testing"
	"testing/quick"

	"byzcount/internal/xrand"
)

func TestNewEmpty(t *testing.T) {
	g := New(0)
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph N=%d M=%d", g.N(), g.M())
	}
	if !g.IsConnected() {
		t.Error("empty graph should count as connected")
	}
}

func TestNewPanicsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if g.M() != 2 {
		t.Errorf("M = %d, want 2", g.M())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 2 || g.Degree(2) != 1 {
		t.Errorf("degrees = %d,%d,%d", g.Degree(0), g.Degree(1), g.Degree(2))
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Error("HasEdge wrong")
	}
}

func TestAddEdgeOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge out of range did not panic")
		}
	}()
	New(2).AddEdge(0, 2)
}

func TestSelfLoopDegree(t *testing.T) {
	g := New(1)
	g.AddEdge(0, 0)
	if g.Degree(0) != 2 {
		t.Errorf("self-loop degree = %d, want 2", g.Degree(0))
	}
	if g.M() != 1 {
		t.Errorf("M = %d, want 1", g.M())
	}
	if g.IsSimple() {
		t.Error("graph with loop reported simple")
	}
}

func TestParallelEdges(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	if g.Degree(0) != 2 || g.Degree(1) != 2 {
		t.Error("parallel edge degrees wrong")
	}
	if g.IsSimple() {
		t.Error("multigraph reported simple")
	}
	el := g.EdgeList()
	if len(el) != 2 {
		t.Errorf("EdgeList = %v, want two copies", el)
	}
}

func TestNeighborsIsCopy(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	nb := g.Neighbors(0)
	nb[0] = 2
	if g.Neighbors(0)[0] != 1 {
		t.Error("Neighbors returned a shared slice")
	}
}

func TestEdgeListLoopsOnce(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 0)
	g.AddEdge(0, 1)
	el := g.EdgeList()
	if len(el) != 2 {
		t.Fatalf("EdgeList = %v", el)
	}
	if el[0] != [2]int{0, 0} || el[1] != [2]int{0, 1} {
		t.Fatalf("EdgeList = %v", el)
	}
}

func TestCloneIndependent(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	c := g.Clone()
	c.AddEdge(1, 2)
	if g.M() != 1 || c.M() != 2 {
		t.Errorf("clone not independent: g.M=%d c.M=%d", g.M(), c.M())
	}
}

func TestValidate(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 2)
	if err := g.Validate(); err != nil {
		t.Errorf("valid graph rejected: %v", err)
	}
	// Hand-corrupt the edge log: a dangling arc (degree bump without a
	// logged edge) and an out-of-range endpoint. Asymmetric adjacency is
	// structurally impossible in the CSR representation — both arc
	// directions derive from one edge-log entry — so the seed-era
	// asymmetry corruption has no counterpart.
	bad := New(2)
	bad.AddEdge(0, 1)
	bad.deg[0]++ // degree sum no longer matches the edge log
	if err := bad.Validate(); err == nil {
		t.Error("degree/edge-log mismatch accepted")
	}
	bad2 := New(2)
	bad2.AddEdge(0, 1)
	bad2.log[0][1] = 7 // out-of-range endpoint
	if err := bad2.Validate(); err == nil {
		t.Error("out-of-range neighbor accepted")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 0)
	keep := []bool{true, true, true, false, false}
	sub, oldToNew, newToOld := g.InducedSubgraph(keep)
	if sub.N() != 3 || sub.M() != 2 {
		t.Fatalf("sub N=%d M=%d", sub.N(), sub.M())
	}
	if oldToNew[3] != -1 || oldToNew[0] != 0 {
		t.Errorf("oldToNew = %v", oldToNew)
	}
	if len(newToOld) != 3 || newToOld[2] != 2 {
		t.Errorf("newToOld = %v", newToOld)
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) || sub.HasEdge(0, 2) {
		t.Error("sub edges wrong")
	}
}

func TestInducedSubgraphKeepsLoops(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 0)
	g.AddEdge(0, 1)
	sub, _, _ := g.InducedSubgraph([]bool{true, false})
	if sub.N() != 1 || sub.M() != 1 || sub.Degree(0) != 2 {
		t.Errorf("loop subgraph: N=%d M=%d deg=%d", sub.N(), sub.M(), sub.Degree(0))
	}
}

func TestBFSPath(t *testing.T) {
	g, err := Path(5)
	if err != nil {
		t.Fatal(err)
	}
	dist := g.BFS(0)
	for v, want := range []int{0, 1, 2, 3, 4} {
		if dist[v] != want {
			t.Errorf("dist[%d] = %d, want %d", v, dist[v], want)
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	dist := g.BFS(0)
	if dist[2] != Unreachable {
		t.Errorf("dist to isolated vertex = %d", dist[2])
	}
	if g.Distance(0, 2) != Unreachable {
		t.Error("Distance should be Unreachable")
	}
}

func TestBFSLimited(t *testing.T) {
	g, _ := Path(10)
	dist := g.BFSLimited(0, 3)
	if dist[3] != 3 || dist[4] != Unreachable {
		t.Errorf("BFSLimited dist[3]=%d dist[4]=%d", dist[3], dist[4])
	}
}

func TestBallAndBoundary(t *testing.T) {
	g, _ := Ring(10)
	ball := g.Ball(0, 2)
	if len(ball) != 5 { // 0, 1, 9, 2, 8
		t.Fatalf("Ball(0,2) = %v", ball)
	}
	if ball[0] != 0 {
		t.Errorf("ball should start at center: %v", ball)
	}
	if got := g.BallSize(0, 2); got != 5 {
		t.Errorf("BallSize = %d", got)
	}
	bd := g.Boundary(0, 2)
	if len(bd) != 2 {
		t.Errorf("Boundary(0,2) = %v", bd)
	}
}

func TestBallRadiusZero(t *testing.T) {
	g, _ := Ring(5)
	ball := g.Ball(3, 0)
	if len(ball) != 1 || ball[0] != 3 {
		t.Errorf("Ball(3,0) = %v", ball)
	}
}

func TestEccentricityAndDiameter(t *testing.T) {
	g, _ := Path(6)
	ecc, conn := g.Eccentricity(0)
	if !conn || ecc != 5 {
		t.Errorf("Eccentricity(0) = %d,%v", ecc, conn)
	}
	d, err := g.Diameter()
	if err != nil || d != 5 {
		t.Errorf("Diameter = %d, %v", d, err)
	}
	ring, _ := Ring(10)
	d, err = ring.Diameter()
	if err != nil || d != 5 {
		t.Errorf("Ring diameter = %d, %v", d, err)
	}
}

func TestDiameterDisconnected(t *testing.T) {
	g := New(2)
	if _, err := g.Diameter(); err != ErrNotConnected {
		t.Errorf("want ErrNotConnected, got %v", err)
	}
}

func TestApproxDiameterTree(t *testing.T) {
	g, _ := CompleteBinaryTree(5)
	exact, err := g.Diameter()
	if err != nil {
		t.Fatal(err)
	}
	approx, err := g.ApproxDiameter(0)
	if err != nil {
		t.Fatal(err)
	}
	// Double sweep is exact on trees.
	if approx != exact {
		t.Errorf("ApproxDiameter = %d, exact = %d", approx, exact)
	}
}

func TestApproxDiameterDisconnected(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	if _, err := g.ApproxDiameter(0); err != ErrNotConnected {
		t.Errorf("want ErrNotConnected, got %v", err)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	comp, count := g.ConnectedComponents()
	if count != 3 {
		t.Fatalf("count = %d", count)
	}
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[0] == comp[2] || comp[4] == comp[0] {
		t.Errorf("comp = %v", comp)
	}
}

func TestShortestPath(t *testing.T) {
	g, _ := Ring(8)
	p := g.ShortestPath(0, 3)
	if len(p) != 4 || p[0] != 0 || p[3] != 3 {
		t.Errorf("path = %v", p)
	}
	for i := 0; i+1 < len(p); i++ {
		if !g.HasEdge(p[i], p[i+1]) {
			t.Errorf("path uses non-edge %d-%d", p[i], p[i+1])
		}
	}
	if p := g.ShortestPath(2, 2); len(p) != 1 || p[0] != 2 {
		t.Errorf("trivial path = %v", p)
	}
	disc := New(2)
	if p := disc.ShortestPath(0, 1); p != nil {
		t.Errorf("disconnected path = %v", p)
	}
}

func TestShortestPathMatchesBFSDistance(t *testing.T) {
	rng := xrand.New(4)
	g, err := HND(64, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	dist := g.BFS(0)
	for v := 0; v < g.N(); v += 7 {
		p := g.ShortestPath(0, v)
		if len(p)-1 != dist[v] {
			t.Errorf("path length to %d = %d, BFS dist = %d", v, len(p)-1, dist[v])
		}
	}
}

func TestMinMaxDegreeRegular(t *testing.T) {
	g, _ := Ring(6)
	if g.MinDegree() != 2 || g.MaxDegree() != 2 || !g.IsRegular(2) {
		t.Error("ring should be 2-regular")
	}
	if g.IsRegular(3) {
		t.Error("ring is not 3-regular")
	}
	empty := New(0)
	if empty.MinDegree() != 0 || empty.MaxDegree() != 0 {
		t.Error("empty graph degrees")
	}
}

func TestVerticesHelper(t *testing.T) {
	g := New(3)
	vs := g.Vertices()
	if len(vs) != 3 || vs[0] != 0 || vs[2] != 2 {
		t.Errorf("Vertices = %v", vs)
	}
}

func TestDegreeSumInvariant(t *testing.T) {
	// Property: sum of degrees = 2 * M for any sequence of AddEdge calls.
	f := func(edges [][2]uint8) bool {
		g := New(16)
		for _, e := range edges {
			g.AddEdge(int(e[0])%16, int(e[1])%16)
		}
		sum := 0
		for u := 0; u < 16; u++ {
			sum += g.Degree(u)
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBFSTriangleInequality(t *testing.T) {
	rng := xrand.New(9)
	g, err := HND(50, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	d0 := g.BFS(0)
	d1 := g.BFS(1)
	for v := 0; v < g.N(); v++ {
		// |d0[v] - d1[v]| <= d(0,1)
		diff := d0[v] - d1[v]
		if diff < 0 {
			diff = -diff
		}
		if diff > d0[1] {
			t.Fatalf("triangle inequality violated at %d: %d vs %d (d01=%d)", v, d0[v], d1[v], d0[1])
		}
	}
}
