package graph

import "sync"

// scratch is the shared per-traversal workspace of the structural tools:
// a generation-stamped mark array (membership / visited checks become one
// compare, and clearing is a generation bump instead of an O(n) wipe), a
// distance array valid only where mark matches the current generation,
// and a reusable BFS queue. Tools borrow one from a package pool for the
// duration of a call, so steady-state traversals allocate nothing even
// when one immutable graph is shared across concurrent trials (each
// caller holds a private scratch).
type scratch struct {
	mark  []uint32
	dist  []int32
	queue []int32
	gen   uint32
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// getScratch borrows a scratch sized for n vertices.
func getScratch(n int) *scratch {
	sc := scratchPool.Get().(*scratch)
	if cap(sc.mark) < n {
		sc.mark = make([]uint32, n)
		sc.dist = make([]int32, n)
		sc.gen = 0
	}
	sc.mark = sc.mark[:cap(sc.mark)]
	sc.dist = sc.dist[:cap(sc.dist)]
	if sc.queue == nil {
		sc.queue = make([]int32, 0, n)
	}
	return sc
}

// putScratch returns a scratch to the pool.
func putScratch(sc *scratch) {
	sc.queue = sc.queue[:0]
	scratchPool.Put(sc)
}

// nextGen starts a fresh traversal: all previous marks become stale in
// O(1). On the (rare — IsSimple alone burns n generations per call)
// counter wrap the mark array is wiped once.
func (sc *scratch) nextGen() uint32 {
	sc.gen++
	if sc.gen == 0 {
		for i := range sc.mark {
			sc.mark[i] = 0
		}
		sc.gen = 1
	}
	return sc.gen
}

// nextGen2 starts a traversal that keeps TWO generations live at once
// (membership stamps under inGen, emission stamps under outGen). Both
// are drawn after a single wrap check, so the wrap-time wipe can never
// fall between them and erase the first generation's stamps — which is
// exactly what a nextGen();nextGen() pair would do at the counter wrap.
func (sc *scratch) nextGen2() (inGen, outGen uint32) {
	if sc.gen >= ^uint32(0)-1 {
		for i := range sc.mark {
			sc.mark[i] = 0
		}
		sc.gen = 0
	}
	sc.gen += 2
	return sc.gen - 1, sc.gen
}
