package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph in a plain text format:
//
//	n <vertices>
//	<u> <v>        (one line per undirected edge)
//
// Parallel edges repeat; self-loops appear as "u u".
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d\n", g.N()); err != nil {
		return err
	}
	for _, e := range g.EdgeList() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e[0], e[1]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the WriteEdgeList format. Blank lines and lines
// starting with '#' are ignored.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var g *Graph
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if g == nil {
			if len(fields) != 2 || fields[0] != "n" {
				return nil, fmt.Errorf("graph: line %d: expected header \"n <count>\", got %q", line, text)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad vertex count %q", line, fields[1])
			}
			g = New(n)
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: expected \"u v\", got %q", line, text)
		}
		u, err1 := strconv.Atoi(fields[0])
		v, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("graph: line %d: bad edge %q", line, text)
		}
		if u < 0 || u >= g.N() || v < 0 || v >= g.N() {
			return nil, fmt.Errorf("graph: line %d: edge %d-%d out of range [0,%d)", line, u, v, g.N())
		}
		g.AddEdge(u, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graph: empty input")
	}
	return g, nil
}
