package agreement

import (
	"byzcount/internal/sim"
)

// This file implements almost-everywhere leader election, the other
// application named in Section 1 (the protocols of [4,31,32] all assume
// an estimate of log n). The scheme is the standard sampling+flooding
// one: every node self-nominates with probability ~ c / n-hat, where
// n-hat = d^L is derived from the counting estimate L, so Θ(c) candidates
// arise in expectation; candidates flood their IDs for Θ(L) rounds and
// every node adopts the maximum candidate ID it saw. With a correct
// estimate the flood covers the graph and almost all nodes agree.
//
// Against fully Byzantine nodes, max-ID election additionally needs the
// committee machinery of King et al. [32] (a Byzantine node can always
// nominate itself with a huge ID); the implementation here is the
// building block those protocols parameterize with log n, and the tests
// exercise it under crash faults, which it tolerates as-is.

// Nomination is a flooded leader candidacy.
type Nomination struct {
	Candidate sim.NodeID
}

// SizeBits counts the candidate ID.
func (Nomination) SizeBits() int { return 16 + 64 }

// LeaderParams configures the election.
type LeaderParams struct {
	// NHat is the network-size estimate d^L from counting.
	NHat float64
	// C is the expected number of candidates (default 4 when zero).
	C float64
	// FloodRounds is how long nominations are forwarded — Θ(L), at least
	// the diameter for full coverage.
	FloodRounds int
}

// LeaderFromEstimate derives election parameters from a counting estimate
// L on degree-d graphs: n-hat = d^L and flood length 2L+3.
func LeaderFromEstimate(logEstimate, d int) LeaderParams {
	if logEstimate < 1 {
		logEstimate = 1
	}
	nHat := 1.0
	for i := 0; i < logEstimate; i++ {
		nHat *= float64(d)
	}
	return LeaderParams{NHat: nHat, C: 4, FloodRounds: 2*logEstimate + 3}
}

// LeaderProc elects by max-candidate-ID flooding.
type LeaderProc struct {
	params LeaderParams

	leader    sim.NodeID
	hasLeader bool
	candidate bool
	done      bool
}

var _ sim.Proc = (*LeaderProc)(nil)

// NewLeaderProc returns an election process.
func NewLeaderProc(params LeaderParams) *LeaderProc {
	if params.C <= 0 {
		params.C = 4
	}
	if params.FloodRounds < 1 {
		params.FloodRounds = 1
	}
	return &LeaderProc{params: params}
}

// Leader returns the elected leader ID and whether one is known.
func (p *LeaderProc) Leader() (sim.NodeID, bool) { return p.leader, p.hasLeader }

// IsCandidate reports whether this node nominated itself.
func (p *LeaderProc) IsCandidate() bool { return p.candidate }

// Halted reports completion of the flood window.
func (p *LeaderProc) Halted() bool { return p.done }

// Step self-nominates in round 0 and floods maximum candidacies.
func (p *LeaderProc) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	if round > p.params.FloodRounds {
		p.done = true
		return nil
	}
	out := env.Scratch()
	if round == 0 {
		prob := p.params.C / p.params.NHat
		if env.Rand().Bernoulli(prob) {
			p.candidate = true
			p.leader = env.ID
			p.hasLeader = true
			out = env.AppendBroadcast(out, Nomination{Candidate: env.ID})
		}
		return out
	}
	improved := false
	for _, m := range in {
		nom, ok := m.Payload.(Nomination)
		if !ok {
			continue
		}
		if !p.hasLeader || nom.Candidate > p.leader {
			p.leader = nom.Candidate
			p.hasLeader = true
			improved = true
		}
	}
	if improved && round < p.params.FloodRounds {
		out = env.AppendBroadcast(out, Nomination{Candidate: p.leader})
	}
	if round == p.params.FloodRounds {
		p.done = true
	}
	return out
}

// LeaderAgreement returns the fraction of honest nodes that elected the
// most common leader, and that leader's ID.
func LeaderAgreement(procs []sim.Proc, honest []bool) (float64, sim.NodeID) {
	counts := make(map[sim.NodeID]int)
	total := 0
	for v, p := range procs {
		if honest != nil && !honest[v] {
			continue
		}
		lp, ok := p.(*LeaderProc)
		if !ok {
			continue
		}
		total++
		if id, ok := lp.Leader(); ok {
			counts[id]++
		}
	}
	if total == 0 {
		return 0, 0
	}
	var best sim.NodeID
	bestCount := 0
	for id, c := range counts {
		if c > bestCount {
			best, bestCount = id, c
		}
	}
	return float64(bestCount) / float64(total), best
}
