// Package agreement implements the almost-everywhere binary Byzantine
// agreement protocol sketched in Section 1.1 of the paper (the protocol
// of Augustine, Pandurangan & Robinson, PODC'13): nodes sample other
// nodes approximately uniformly via random walks of Θ(log n) steps (the
// mixing time of a bounded-degree expander) and repeatedly update their
// value to the majority of their own value and two sampled values.
//
// The protocol needs a constant-factor upper bound on log n for two
// things — the walk length and the iteration count — and that is exactly
// what the paper's Byzantine counting protocols provide. This package is
// the "application" of the reproduction: E11 runs it with an oracle
// log n, with a counting-derived estimate, and with a deliberately
// undersized estimate, showing that the counting output is sufficient
// and that no estimate is not.
package agreement

import (
	"byzcount/internal/sim"
)

// Token is a random-walk token carrying the value of its origin at launch
// time. Tokens take one uniform-random step per round.
type Token struct {
	Value byte
}

// SizeBits is a small constant.
func (Token) SizeBits() int { return 16 + 8 }

// Params configures the sampling-plus-majority protocol.
type Params struct {
	// WalkLen is the number of random-walk steps per iteration — the
	// mixing-time surrogate, c * logEstimate.
	WalkLen int
	// Iterations is the number of majority-update iterations, also
	// Θ(log n).
	Iterations int
	// TokensPerNode is how many walk tokens each node launches per
	// iteration; the first two arrivals are used as samples.
	TokensPerNode int
}

// FromEstimate derives protocol parameters from a log-size estimate, the
// preprocessing contract of Section 1.1: any constant-factor upper bound
// of log n yields correct walks and enough iterations.
func FromEstimate(logEstimate int) Params {
	if logEstimate < 1 {
		logEstimate = 1
	}
	return Params{
		WalkLen:       2*logEstimate + 2,
		Iterations:    2*logEstimate + 2,
		TokensPerNode: 4,
	}
}

// IterationRounds returns the rounds per iteration (walk plus the landing
// round).
func (p Params) IterationRounds() int { return p.WalkLen + 1 }

// TotalRounds returns the full protocol length in rounds.
func (p Params) TotalRounds() int { return p.Iterations * p.IterationRounds() }

// Proc is the per-node agreement process.
type Proc struct {
	params Params
	value  byte
	done   bool

	samples []byte
}

var _ sim.Proc = (*Proc)(nil)

// NewProc returns an agreement process with the given initial bit (0/1).
func NewProc(params Params, initial byte) *Proc {
	if initial > 1 {
		initial = 1
	}
	return &Proc{params: params, value: initial}
}

// Value returns the node's current (and after TotalRounds, final) value.
func (p *Proc) Value() byte { return p.value }

// Halted reports completion of all iterations.
func (p *Proc) Halted() bool { return p.done }

// Step launches tokens at iteration starts, forwards in-flight tokens one
// random hop per round, and applies the majority rule when tokens land.
func (p *Proc) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	iterLen := p.params.IterationRounds()
	iter := round / iterLen
	offset := round % iterLen
	if iter >= p.params.Iterations {
		p.done = true
		return nil
	}

	out := env.Scratch()
	switch {
	case offset == 0:
		// Launch fresh tokens carrying the current value.
		p.samples = p.samples[:0]
		for i := 0; i < p.params.TokensPerNode; i++ {
			out = append(out, p.hop(env, Token{Value: p.value}))
		}
	case offset < p.params.WalkLen:
		// Forward arriving tokens one more uniform step, under the token
		// budget of the PODC'13 protocol: a node relays at most a
		// constant multiple of the legitimate per-node token rate,
		// dropping a uniform random subset of any excess. The budget is
		// what keeps a flooding Byzantine node from swamping the pool.
		tokens := collectTokens(in)
		budget := 3 * p.params.TokensPerNode
		if len(tokens) > budget {
			env.Rand().Shuffle(len(tokens), func(i, j int) { tokens[i], tokens[j] = tokens[j], tokens[i] })
			tokens = tokens[:budget]
		}
		for _, tok := range tokens {
			out = append(out, p.hop(env, tok))
		}
	default:
		// Landing round: sample two arriving tokens uniformly at random
		// (inbox order is vertex order, which an adversary could exploit).
		p.samples = p.samples[:0]
		for _, tok := range collectTokens(in) {
			p.samples = append(p.samples, tok.Value)
		}
		if len(p.samples) >= 2 {
			i := env.Rand().Intn(len(p.samples))
			j := env.Rand().Intn(len(p.samples) - 1)
			if j >= i {
				j++
			}
			ones := int(p.value)
			for _, s := range []byte{p.samples[i], p.samples[j]} {
				if s > 0 {
					ones++
				}
			}
			if ones >= 2 {
				p.value = 1
			} else {
				p.value = 0
			}
		}
		if iter == p.params.Iterations-1 {
			p.done = true
		}
	}
	return out
}

func collectTokens(in []sim.Incoming) []Token {
	var tokens []Token
	for _, m := range in {
		if tok, ok := m.Payload.(Token); ok {
			tokens = append(tokens, tok)
		}
	}
	return tokens
}

func (p *Proc) hop(env *sim.Env, tok Token) sim.Outgoing {
	return sim.Outgoing{
		To:      env.Neighbors[env.Rand().Intn(len(env.Neighbors))],
		Payload: tok,
	}
}

// ValueFlipper is the Byzantine adversary for agreement: it flips every
// token passing through it and seeds extra tokens of its chosen value.
type ValueFlipper struct {
	Prefer byte
	Extra  int
}

var _ sim.Proc = (*ValueFlipper)(nil)

// Halted is always false.
func (f *ValueFlipper) Halted() bool { return false }

// Step forwards flipped tokens and injects Extra tokens of the preferred
// value each round.
func (f *ValueFlipper) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	out := env.Scratch()
	for _, m := range in {
		if tok, ok := m.Payload.(Token); ok {
			flipped := Token{Value: 1 - min(tok.Value, 1)}
			out = append(out, sim.Outgoing{
				To:      env.Neighbors[env.Rand().Intn(len(env.Neighbors))],
				Payload: flipped,
			})
		}
	}
	for i := 0; i < f.Extra; i++ {
		out = append(out, sim.Outgoing{
			To:      env.Neighbors[env.Rand().Intn(len(env.Neighbors))],
			Payload: Token{Value: f.Prefer},
		})
	}
	return out
}

// AgreementFraction returns the fraction of honest nodes holding `value`.
func AgreementFraction(procs []sim.Proc, honest []bool, value byte) float64 {
	total, match := 0, 0
	for v, p := range procs {
		if !honest[v] {
			continue
		}
		ap, ok := p.(*Proc)
		if !ok {
			continue
		}
		total++
		if ap.Value() == value {
			match++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(match) / float64(total)
}
