package agreement

import (
	"testing"

	"byzcount/internal/graph"
	"byzcount/internal/sim"
	"byzcount/internal/xrand"
)

func runAgreement(t *testing.T, n, d int, params Params, initial func(v int) byte,
	byz []bool, mkByz func(v int) sim.Proc, seed uint64) ([]sim.Proc, []bool) {
	t.Helper()
	g, err := graph.HND(n, d, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New(g, sim.WithSeed(seed+1))
	procs := make([]sim.Proc, n)
	honest := make([]bool, n)
	for v := range procs {
		if byz != nil && byz[v] {
			procs[v] = mkByz(v)
		} else {
			honest[v] = true
			procs[v] = NewProc(params, initial(v))
		}
	}
	if err := eng.Attach(procs); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(params.TotalRounds() + 4); err != nil {
		t.Fatal(err)
	}
	return procs, honest
}

func TestFromEstimate(t *testing.T) {
	p := FromEstimate(5)
	if p.WalkLen != 12 || p.Iterations != 12 || p.TokensPerNode != 4 {
		t.Errorf("params = %+v", p)
	}
	if q := FromEstimate(0); q.WalkLen != 4 {
		t.Errorf("degenerate estimate params = %+v", q)
	}
	if p.IterationRounds() != 13 || p.TotalRounds() != 156 {
		t.Errorf("round math wrong: %d %d", p.IterationRounds(), p.TotalRounds())
	}
}

func TestBenignUnanimousStaysUnanimous(t *testing.T) {
	params := FromEstimate(8)
	procs, honest := runAgreement(t, 128, 8, params, func(v int) byte { return 1 }, nil, nil, 1)
	if f := AgreementFraction(procs, honest, 1); f != 1 {
		t.Errorf("unanimity broken: %g", f)
	}
}

func TestBenignMajorityConverges(t *testing.T) {
	// 75/25 split must converge to the 75% value for almost all nodes.
	params := FromEstimate(8)
	procs, honest := runAgreement(t, 256, 8, params, func(v int) byte {
		if v%4 == 0 {
			return 0
		}
		return 1
	}, nil, nil, 2)
	if f := AgreementFraction(procs, honest, 1); f < 0.95 {
		t.Errorf("majority convergence only %g", f)
	}
}

func TestByzantineMinorityCannotFlip(t *testing.T) {
	// B = 4 = O(sqrt(n)) Byzantine flippers, with walk length derived
	// from a counting-style estimate (log_d n scale, as the counting
	// protocols produce — shorter walks also intersect fewer Byzantine
	// nodes, which is part of why the pipeline works).
	const n = 256
	byz := make([]bool, n)
	rng := xrand.New(3)
	for _, v := range rng.Sample(n, 4) {
		byz[v] = true
	}
	params := FromEstimate(4)
	procs, honest := runAgreement(t, n, 8, params, func(v int) byte {
		if v%4 == 0 {
			return 0
		}
		return 1
	}, byz, func(v int) sim.Proc {
		return &ValueFlipper{Prefer: 0, Extra: 1}
	}, 4)
	if f := AgreementFraction(procs, honest, 1); f < 0.75 {
		t.Errorf("byzantine flipped the majority: only %g hold 1", f)
	}
}

func TestUndersizedEstimateFails(t *testing.T) {
	// The contrast that motivates counting as preprocessing: walks of
	// length far below the mixing time with only one iteration do not mix
	// and the minority survives.
	tiny := Params{WalkLen: 1, Iterations: 1, TokensPerNode: 4}
	procs, honest := runAgreement(t, 256, 8, tiny, func(v int) byte {
		if v%4 == 0 {
			return 0
		}
		return 1
	}, nil, nil, 5)
	if f := AgreementFraction(procs, honest, 1); f > 0.97 {
		t.Errorf("undersized estimate still converged (%g); contrast experiment would be vacuous", f)
	}
}

func TestProcHalts(t *testing.T) {
	params := Params{WalkLen: 2, Iterations: 2, TokensPerNode: 1}
	p := NewProc(params, 1)
	if p.Halted() {
		t.Error("fresh proc halted")
	}
	env := (&sim.Env{Vertex: 0, Neighbors: []int{1}}).WithRand(xrand.New(1))
	for r := 0; r < params.TotalRounds()+1; r++ {
		p.Step(env, r, nil)
	}
	if !p.Halted() {
		t.Error("proc did not halt after TotalRounds")
	}
}

func TestInitialValueClamped(t *testing.T) {
	p := NewProc(FromEstimate(3), 7)
	if p.Value() != 1 {
		t.Errorf("initial value not clamped: %d", p.Value())
	}
}

func TestAgreementFractionEmpty(t *testing.T) {
	if AgreementFraction(nil, nil, 1) != 0 {
		t.Error("empty fraction")
	}
}
