package agreement

import (
	"testing"

	"byzcount/internal/byzantine"
	"byzcount/internal/graph"
	"byzcount/internal/sim"
	"byzcount/internal/xrand"
)

func runLeader(t *testing.T, n, d int, params LeaderParams, byz []bool,
	mkByz func(v int) sim.Proc, seed uint64) ([]sim.Proc, []bool) {
	t.Helper()
	g, err := graph.HND(n, d, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New(g, sim.WithSeed(seed+1))
	procs := make([]sim.Proc, n)
	honest := make([]bool, n)
	for v := range procs {
		if byz != nil && byz[v] {
			procs[v] = mkByz(v)
		} else {
			honest[v] = true
			procs[v] = NewLeaderProc(params)
		}
	}
	if err := eng.Attach(procs); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(params.FloodRounds + 4); err != nil {
		t.Fatal(err)
	}
	return procs, honest
}

func TestLeaderFromEstimate(t *testing.T) {
	p := LeaderFromEstimate(3, 8)
	if p.NHat != 512 {
		t.Errorf("NHat = %g", p.NHat)
	}
	if p.FloodRounds != 9 || p.C != 4 {
		t.Errorf("params = %+v", p)
	}
	if q := LeaderFromEstimate(0, 8); q.NHat != 8 {
		t.Errorf("degenerate NHat = %g", q.NHat)
	}
}

func TestLeaderElectionConverges(t *testing.T) {
	// The counting-derived estimate for n=512, d=8 is ~3; the election
	// should produce near-unanimous agreement on one candidate.
	const n, d = 512, 8
	params := LeaderFromEstimate(3, d)
	procs, honest := runLeader(t, n, d, params, nil, nil, 1)
	frac, leader := LeaderAgreement(procs, honest)
	if frac < 0.99 {
		t.Fatalf("agreement fraction %g", frac)
	}
	if leader == 0 {
		t.Fatal("no leader elected")
	}
	// The winner must be an actual candidate's ID.
	found := false
	for _, p := range procs {
		lp := p.(*LeaderProc)
		if lp.IsCandidate() {
			if id, ok := lp.Leader(); ok && id == leader {
				found = true
			}
		}
	}
	if !found {
		t.Error("elected leader is not a self-nominated candidate holding its own ID")
	}
}

func TestLeaderCandidateCountNearC(t *testing.T) {
	const n, d = 512, 8
	// Average candidates across seeds: expectation is C * n / NHat ≈ 4
	// when the estimate matches the true size.
	params := LeaderFromEstimate(3, d) // NHat = 512 = n
	total := 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		procs, _ := runLeader(t, n, d, params, nil, nil, uint64(10+trial))
		for _, p := range procs {
			if p.(*LeaderProc).IsCandidate() {
				total++
			}
		}
	}
	mean := float64(total) / trials
	if mean < 1.5 || mean > 8 {
		t.Errorf("mean candidates %g, want ~4", mean)
	}
}

func TestLeaderElectionUnderCrashes(t *testing.T) {
	const n, d = 256, 8
	rng := xrand.New(20)
	byz := make([]bool, n)
	for _, v := range rng.Sample(n, 16) {
		byz[v] = true
	}
	params := LeaderFromEstimate(3, d)
	procs, honest := runLeader(t, n, d, params, byz, func(v int) sim.Proc {
		return byzantine.NewCrash(NewLeaderProc(params), 2+rng.SplitN("c", v).Intn(4))
	}, 21)
	frac, _ := LeaderAgreement(procs, honest)
	// Crash faults thin the flood but expander redundancy carries it.
	if frac < 0.95 {
		t.Errorf("agreement fraction %g under crashes", frac)
	}
}

func TestLeaderUndersizedEstimateOverNominates(t *testing.T) {
	// The failure mode counting prevents: an estimate far below log n
	// makes nearly everyone a candidate and the flood window too short,
	// so agreement splinters across the graph.
	const n, d = 512, 8
	params := LeaderParams{NHat: 8, C: 4, FloodRounds: 1}
	procs, honest := runLeader(t, n, d, params, nil, nil, 22)
	candidates := 0
	for _, p := range procs {
		if p.(*LeaderProc).IsCandidate() {
			candidates++
		}
	}
	if candidates < n/4 {
		t.Fatalf("only %d candidates; undersized estimate should over-nominate", candidates)
	}
	frac, _ := LeaderAgreement(procs, honest)
	if frac > 0.5 {
		t.Errorf("agreement %g despite an undersized estimate; contrast would be vacuous", frac)
	}
}

func TestLeaderProcAccessors(t *testing.T) {
	p := NewLeaderProc(LeaderParams{})
	if p.params.C != 4 || p.params.FloodRounds != 1 {
		t.Errorf("defaults = %+v", p.params)
	}
	if _, ok := p.Leader(); ok {
		t.Error("fresh proc has a leader")
	}
	if p.Halted() || p.IsCandidate() {
		t.Error("fresh proc state")
	}
	if f, _ := LeaderAgreement(nil, nil); f != 0 {
		t.Error("empty agreement")
	}
}
