package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: streams diverged: %d != %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	a1 := root.Split("graph")
	// Consuming from one split must not perturb a sibling split.
	for i := 0; i < 57; i++ {
		a1.Uint64()
	}
	b1 := root.Split("coins")
	root2 := New(7)
	b2 := root2.Split("coins")
	for i := 0; i < 100; i++ {
		if b1.Uint64() != b2.Uint64() {
			t.Fatalf("split stream affected by sibling consumption at draw %d", i)
		}
	}
}

func TestSplitLabelsDistinct(t *testing.T) {
	root := New(7)
	a := root.Split("alpha")
	b := root.Split("beta")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("distinct labels produced %d/100 identical draws", same)
	}
}

func TestSplitNDistinct(t *testing.T) {
	root := New(3)
	a := root.SplitN("trial", 0)
	b := root.SplitN("trial", 1)
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Fatal("SplitN indices 0 and 1 produced identical streams")
	}
}

// TestSplitNMatchesNestedSplit pins SplitN's pure seed derivation to
// its definition: every (label, n) stream must be byte-identical to
// Split(label).Split(itoa(n)). All golden tables stand on this — SplitN
// skips materializing the intermediate stream, and the shortcut must
// never drift from the nested form.
func TestSplitNMatchesNestedSplit(t *testing.T) {
	root := New(42)
	for _, label := range []string{"node", "trial", ""} {
		for _, n := range []int{0, 1, 7, -3, 1_000_000} {
			fast := root.SplitN(label, n)
			slow := root.Split(label).Split(itoa(n))
			if fast.Seed() != slow.Seed() {
				t.Fatalf("SplitN(%q, %d) seed %d != nested split seed %d",
					label, n, fast.Seed(), slow.Seed())
			}
			for i := 0; i < 8; i++ {
				if f, s := fast.Uint64(), slow.Uint64(); f != s {
					t.Fatalf("SplitN(%q, %d) draw %d: %d != %d", label, n, i, f, s)
				}
			}
		}
	}
}

func TestBernoulliEdgeCases(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := New(99)
	const trials = 20000
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		for i := 0; i < trials; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		got := float64(hits) / trials
		if math.Abs(got-p) > 0.02 {
			t.Errorf("Bernoulli(%g): observed frequency %g", p, got)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(5)
	const trials = 20000
	sum := 0
	for i := 0; i < trials; i++ {
		sum += r.Geometric()
	}
	mean := float64(sum) / trials
	// E[Geometric(1/2)] = 2.
	if mean < 1.9 || mean > 2.1 {
		t.Fatalf("Geometric mean = %g, want ~2", mean)
	}
}

func TestGeometricSupport(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		if g := r.Geometric(); g < 1 {
			t.Fatalf("Geometric returned %d < 1", g)
		}
	}
}

func TestGeometricPMean(t *testing.T) {
	r := New(6)
	const trials = 40000
	for _, p := range []float64{0.25, 0.5, 0.8} {
		sum := 0
		for i := 0; i < trials; i++ {
			sum += r.GeometricP(p)
		}
		mean := float64(sum) / trials
		want := 1 / p
		if math.Abs(mean-want)/want > 0.05 {
			t.Errorf("GeometricP(%g) mean = %g, want ~%g", p, mean, want)
		}
	}
}

func TestGeometricPOne(t *testing.T) {
	r := New(6)
	for i := 0; i < 100; i++ {
		if g := r.GeometricP(1); g != 1 {
			t.Fatalf("GeometricP(1) = %d, want 1", g)
		}
	}
}

func TestGeometricPPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GeometricP(0) did not panic")
		}
	}()
	New(1).GeometricP(0)
}

func TestExponentialMean(t *testing.T) {
	r := New(8)
	const trials = 40000
	for _, lambda := range []float64{0.5, 1, 4} {
		sum := 0.0
		for i := 0; i < trials; i++ {
			sum += r.Exponential(lambda)
		}
		mean := sum / trials
		want := 1 / lambda
		if math.Abs(mean-want)/want > 0.05 {
			t.Errorf("Exponential(%g) mean = %g, want ~%g", lambda, mean, want)
		}
	}
}

func TestExponentialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exponential(0) did not panic")
		}
	}()
	New(1).Exponential(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleProperties(t *testing.T) {
	r := New(13)
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw)%50 + 1
		k := int(kRaw) % (n + 1)
		s := r.Sample(n, k)
		if len(s) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleFull(t *testing.T) {
	r := New(17)
	s := r.Sample(10, 10)
	seen := make([]bool, 10)
	for _, v := range s {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("Sample(10,10) missing %d: %v", i, s)
		}
	}
}

func TestSamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(3,4) did not panic")
		}
	}()
	New(1).Sample(3, 4)
}

func TestSampleUniformity(t *testing.T) {
	r := New(19)
	counts := make([]int, 5)
	const trials = 20000
	for i := 0; i < trials; i++ {
		for _, v := range r.Sample(5, 2) {
			counts[v]++
		}
	}
	// Each element should appear with probability 2/5.
	want := float64(trials) * 2 / 5
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Errorf("element %d chosen %d times, want ~%g", i, c, want)
		}
	}
}

func TestIDUniqueness(t *testing.T) {
	r := New(23)
	seen := make(map[uint64]bool, 10000)
	for i := 0; i < 10000; i++ {
		id := r.ID()
		if seen[id] {
			t.Fatalf("duplicate 64-bit ID after %d draws", i)
		}
		seen[id] = true
	}
}

func TestItoa(t *testing.T) {
	cases := map[int]string{0: "0", 1: "1", -1: "-1", 12345: "12345", -987: "-987"}
	for n, want := range cases {
		if got := itoa(n); got != want {
			t.Errorf("itoa(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestMixAvalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	for bit := 0; bit < 64; bit += 7 {
		a := mix(12345)
		b := mix(12345 ^ (1 << uint(bit)))
		diff := 0
		for x := a ^ b; x != 0; x &= x - 1 {
			diff++
		}
		if diff < 10 {
			t.Errorf("bit %d: only %d output bits changed", bit, diff)
		}
	}
}

func TestSplitIntoMatchesSplit(t *testing.T) {
	// SplitInto must produce the exact stream Split produces — for a nil
	// destination (fresh allocation) and when reseeding an arbitrary
	// existing stream in place.
	parent := New(31)
	want := make([]uint64, 16)
	for i := range want {
		want[i] = parent.Split("leave").Uint64() // fresh stream each time: same first draw
	}
	fresh := parent.SplitInto("leave", nil)
	if got := fresh.Uint64(); got != want[0] {
		t.Errorf("SplitInto(nil) first draw %d, want %d", got, want[0])
	}
	scratch := New(999) // unrelated stream to be recycled
	scratch.Uint64()    // advance it so reseeding has to reset real state
	for i := range want {
		scratch = parent.SplitInto("leave", scratch)
		if got := scratch.Uint64(); got != want[i] {
			t.Fatalf("reseeded draw %d: got %d want %d", i, got, want[i])
		}
	}
}

func TestSplitIntoAllocFree(t *testing.T) {
	// Re-deriving a labelled stream into existing storage is what keeps
	// steady-state churn rounds allocation-free; pin it.
	parent := New(32)
	scratch := parent.Split("warm")
	allocs := testing.AllocsPerRun(100, func() {
		scratch = parent.SplitInto("leave", scratch)
		scratch.Uint64()
	})
	if allocs != 0 {
		t.Errorf("SplitInto into existing storage allocates: %.1f allocs/run, want 0", allocs)
	}
}

func TestReseedRestartsStream(t *testing.T) {
	a := New(33)
	first := []uint64{a.Uint64(), a.Uint64(), a.Uint64()}
	a.Reseed(33)
	if a.Seed() != 33 {
		t.Errorf("Seed() = %d after Reseed(33)", a.Seed())
	}
	for i, want := range first {
		if got := a.Uint64(); got != want {
			t.Fatalf("draw %d after Reseed: got %d want %d", i, got, want)
		}
	}
	a.Reseed(34)
	b := New(34)
	for i := 0; i < 3; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("Reseed(34) draw %d: got %d, New(34) gives %d", i, got, want)
		}
	}
}
