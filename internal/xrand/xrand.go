// Package xrand provides deterministic, splittable random-number streams
// for reproducible simulations.
//
// Every experiment in this repository is driven by a single root seed. The
// root stream is split into independent sub-streams (one per concern: graph
// generation, protocol coins, adversary choices, ...) so that changing how
// many random numbers one concern draws does not perturb the others. This
// makes table rows reproducible and diffable across code changes.
//
// The package wraps math/rand (stdlib only) with a SplitMix64-style seed
// derivation for splitting, which is sufficient for simulation purposes.
// It is NOT suitable for cryptographic use.
package xrand

import (
	"math/rand"
)

// Rand is a deterministic random stream. The zero value is not usable; use
// New or Split to obtain one.
type Rand struct {
	src  *rand.Rand
	seed uint64
}

// New returns a stream seeded from seed. Two streams created with the same
// seed produce identical sequences.
func New(seed uint64) *Rand {
	return &Rand{
		src:  rand.New(rand.NewSource(int64(mix(seed)))),
		seed: seed,
	}
}

// Seed returns the seed this stream was created from.
func (r *Rand) Seed() uint64 { return r.seed }

// Split derives an independent sub-stream identified by label. Splitting is
// a pure function of (parent seed, label): it does not consume randomness
// from the parent, so the parent's future output is unaffected.
func (r *Rand) Split(label string) *Rand {
	return New(r.splitSeed(label))
}

// SplitInto derives the same sub-stream Split(label) would, but re-seeds
// dst in place instead of allocating a fresh stream, and returns dst (a
// fresh stream is allocated only when dst is nil). Callers that re-derive
// the same labelled stream per event — e.g. the churn driver's per-leave
// and per-join streams — use this to keep steady-state rounds
// allocation-free while producing byte-identical draws.
func (r *Rand) SplitInto(label string, dst *Rand) *Rand {
	seed := r.splitSeed(label)
	if dst == nil {
		return New(seed)
	}
	dst.Reseed(seed)
	return dst
}

// Reseed re-initializes r in place to the state New(seed) creates,
// without allocating.
func (r *Rand) Reseed(seed uint64) {
	r.seed = seed
	r.src.Seed(int64(mix(seed)))
}

// splitSeed is the pure (parent seed, label) -> child seed derivation
// shared by Split and SplitInto.
func (r *Rand) splitSeed(label string) uint64 {
	h := r.seed
	for _, b := range []byte(label) {
		h = mix(h ^ uint64(b))
	}
	return mix(h ^ 0x9e3779b97f4a7c15)
}

// SplitN derives an independent sub-stream identified by label and index,
// e.g. one stream per trial or per node. It produces exactly the stream
// Split(label).Split(itoa(n)) would, but derives the child seed with
// pure arithmetic instead of materializing the intermediate labelled
// stream — one source allocation per call, not two, which matters when
// an engine derives a stream per node.
func (r *Rand) SplitN(label string, n int) *Rand {
	mid := Rand{seed: r.splitSeed(label)}
	return New(mid.splitSeed(itoa(n)))
}

// mix is the SplitMix64 finalizer; it decorrelates nearby seeds.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// itoa converts n to a decimal string without importing strconv (keeps the
// dependency surface of this tiny package minimal).
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [24]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (r *Rand) Intn(n int) int { return r.src.Intn(n) }

// Int63 returns a uniform non-negative 63-bit integer.
func (r *Rand) Int63() int64 { return r.src.Int63() }

// Uint64 returns a uniform 64-bit value.
func (r *Rand) Uint64() uint64 { return r.src.Uint64() }

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 { return r.src.Float64() }

// Bernoulli returns true with probability p. Values of p outside [0,1] are
// clamped.
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.src.Float64() < p
}

// Geometric returns the number of fair-coin flips needed to see the first
// heads: a geometric random variable with support {1, 2, 3, ...} and
// success probability 1/2. This is the X_u variable of the geometric
// network-size estimation protocol discussed in Section 1.2 of the paper.
func (r *Rand) Geometric() int {
	flips := 1
	for r.src.Int63()&1 == 0 {
		flips++
	}
	return flips
}

// GeometricP returns a geometric random variable with success probability
// p in (0, 1]: the number of trials up to and including the first success.
func (r *Rand) GeometricP(p float64) int {
	if p >= 1 {
		return 1
	}
	if p <= 0 {
		panic("xrand: GeometricP requires p in (0, 1]")
	}
	n := 1
	for !r.Bernoulli(p) {
		n++
	}
	return n
}

// Exponential returns an exponential random variable with rate lambda.
// Used by the support-estimation baseline.
func (r *Rand) Exponential(lambda float64) float64 {
	if lambda <= 0 {
		panic("xrand: Exponential requires lambda > 0")
	}
	return r.src.ExpFloat64() / lambda
}

// Perm returns a uniform random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle permutes the n elements addressed by swap uniformly at random.
func (r *Rand) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// Sample returns k distinct values drawn uniformly from [0, n) in random
// order. It panics if k > n or k < 0.
func (r *Rand) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("xrand: Sample requires 0 <= k <= n")
	}
	if k == 0 {
		return nil
	}
	// Partial Fisher-Yates over an index map: O(k) memory.
	chosen := make([]int, 0, k)
	remap := make(map[int]int, k)
	for i := 0; i < k; i++ {
		j := i + r.src.Intn(n-i)
		vj, ok := remap[j]
		if !ok {
			vj = j
		}
		vi, ok := remap[i]
		if !ok {
			vi = i
		}
		remap[j] = vi
		chosen = append(chosen, vj)
	}
	return chosen
}

// ID returns a uniform random 64-bit node identifier. Per the paper's model
// (Section 2), IDs are drawn from an arbitrarily large set whose size is
// unknown, so they leak no information about the network size.
func (r *Rand) ID() uint64 { return r.src.Uint64() }
