package counting

import (
	"testing"

	"byzcount/internal/graph"
	"byzcount/internal/sim"
	"byzcount/internal/xrand"
)

// TestCongestAlgorithmFitsUnderEdgeCap: Algorithm 2 must behave
// identically when the engine enforces the CONGEST bandwidth restriction,
// because its beacons, continues, and path fields are genuinely small.
func TestCongestAlgorithmFitsUnderEdgeCap(t *testing.T) {
	const n, d = 256, 8
	rng := xrand.New(90)
	g, err := graph.HND(n, d, rng)
	if err != nil {
		t.Fatal(err)
	}
	run := func(cap int) ([]Outcome, sim.Metrics) {
		eng := sim.New(g, sim.WithSeed(91))
		if cap > 0 {
			eng.SetEdgeCapacity(cap)
		}
		params := DefaultCongestParams(d)
		procs := make([]sim.Proc, n)
		for v := range procs {
			procs[v] = NewCongestProc(params)
		}
		if err := eng.Attach(procs); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(params.Schedule.RoundsThroughPhase(params.MaxPhase + 1)); err != nil {
			t.Fatal(err)
		}
		return Outcomes(procs), eng.Metrics()
	}
	// A beacon path of length i+2 at the top phase is ~ 64*(log n) bits;
	// 2048 bits per edge per round is a generous O(log n) budget.
	local, _ := run(0)
	congest, m := run(2048)
	if m.Capped != 0 {
		t.Fatalf("algorithm 2 exceeded the CONGEST cap %d times", m.Capped)
	}
	for v := range local {
		if local[v] != congest[v] {
			t.Fatalf("vertex %d outcome differs under the cap: %+v vs %+v", v, local[v], congest[v])
		}
	}
}

// TestLocalAlgorithmViolatesEdgeCap: Algorithm 1's topology deltas exceed
// any O(log n) per-edge budget on a non-trivial network — the reason it
// lives in the LOCAL model (Section 1).
func TestLocalAlgorithmViolatesEdgeCap(t *testing.T) {
	const n, d = 128, 8
	rng := xrand.New(92)
	g, err := graph.HND(n, d, rng)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New(g, sim.WithSeed(93))
	eng.SetEdgeCapacity(2048)
	params := DefaultLocalParams(d)
	procs := make([]sim.Proc, n)
	for v := range procs {
		procs[v] = NewLocalProc(params)
	}
	if err := eng.Attach(procs); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(params.MaxRounds + 8); err != nil {
		t.Fatal(err)
	}
	if eng.Metrics().Capped == 0 {
		t.Fatal("algorithm 1 fit under a CONGEST cap; its LOCAL-model requirement would be refuted")
	}
}
