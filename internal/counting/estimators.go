package counting

import (
	"math"
	"sort"

	"byzcount/internal/sim"
)

// This file implements the two further non-Byzantine-resilient estimation
// approaches that Section 1.2 discusses and dismisses:
//
//   - KMVProc: a "birthday paradox" estimator in the spirit of [21]:
//     every node draws a uniform random hash and the network floods the k
//     minimum values; the k-th minimum estimates n (a k-minimum-values
//     sketch). One Byzantine node flooding tiny values inflates the
//     estimate arbitrarily.
//   - ReturnWalkProc: the random-walk return-time estimator: in a
//     d-regular graph the expected return time of a random walk to its
//     origin is exactly n, so averaging k return times estimates n. The
//     paper notes "long random walks have a high chance of encountering a
//     Byzantine node" — a single absorbing node swallows walks and skews
//     the estimate.

// KMVHash is the flooded payload of the birthday estimator: the k
// smallest hashes seen so far.
type KMVHash struct {
	Mins []uint64
}

// SizeBits counts 64 bits per hash.
func (k KMVHash) SizeBits() int { return 16 + 64*len(k.Mins) }

// KMVProc floods a k-minimum-values sketch of the nodes' random hashes.
type KMVProc struct {
	k           int
	quietRounds int
	mins        []uint64 // sorted ascending, at most k values
	quiet       int
	drawn       bool
	decided     bool
	decRound    int
}

var _ Estimator = (*KMVProc)(nil)

// NewKMVProc returns a birthday-paradox estimator with sketch size k.
func NewKMVProc(k, quietRounds int) *KMVProc {
	if k < 2 {
		k = 2
	}
	if quietRounds < 1 {
		quietRounds = 1
	}
	return &KMVProc{k: k, quietRounds: quietRounds}
}

// EstimateN returns (k-1) * 2^64 / kthMin, the standard KMV estimator,
// or +Inf before the sketch fills.
func (p *KMVProc) EstimateN() float64 {
	if len(p.mins) < p.k {
		return math.Inf(1)
	}
	kth := float64(p.mins[p.k-1])
	if kth <= 0 {
		return math.Inf(1)
	}
	return float64(p.k-1) * math.Exp2(64) / kth
}

// Outcome reports round(log2(n-hat)) for comparability with the other
// protocols.
func (p *KMVProc) Outcome() Outcome {
	est := 0
	if n := p.EstimateN(); !math.IsInf(n, 1) && n >= 1 {
		est = int(math.Round(math.Log2(n)))
	}
	return Outcome{Decided: p.decided, Estimate: est, Round: p.decRound, Exited: p.decided}
}

// Halted reports termination.
func (p *KMVProc) Halted() bool { return p.decided }

// Step merges incoming sketches and floods improvements.
func (p *KMVProc) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	if !p.drawn {
		p.drawn = true
		p.insert(env.Rand().Uint64())
		return env.Broadcast(KMVHash{Mins: append([]uint64(nil), p.mins...)})
	}
	improved := false
	for _, m := range in {
		sketch, ok := m.Payload.(KMVHash)
		if !ok {
			continue
		}
		for _, h := range sketch.Mins {
			if p.insert(h) {
				improved = true
			}
		}
	}
	if improved {
		p.quiet = 0
		return env.Broadcast(KMVHash{Mins: append([]uint64(nil), p.mins...)})
	}
	p.quiet++
	if p.quiet >= p.quietRounds {
		p.decided = true
		p.decRound = round
	}
	return nil
}

// insert adds h to the sketch if it improves it; returns true on change.
func (p *KMVProc) insert(h uint64) bool {
	i := sort.Search(len(p.mins), func(i int) bool { return p.mins[i] >= h })
	if i < len(p.mins) && p.mins[i] == h {
		return false // duplicate
	}
	if len(p.mins) == p.k {
		if i == p.k {
			return false // larger than everything retained
		}
		p.mins = p.mins[:p.k-1]
	}
	p.mins = append(p.mins, 0)
	copy(p.mins[i+1:], p.mins[i:])
	p.mins[i] = h
	return true
}

// WalkToken is a random-walk token for the return-time estimator.
type WalkToken struct {
	Origin sim.NodeID
	Steps  int
}

// SizeBits counts the origin and step fields.
func (WalkToken) SizeBits() int { return 16 + 64 + 32 }

// ReturnWalkProc estimates n from random-walk return times: it launches
// tokens (one at a time), forwards others' tokens one uniform hop per
// round, and upon a token's return records its step count. After
// `samples` returns it decides on round(log2(mean return time)) — in a
// d-regular graph the expected return time is exactly n.
type ReturnWalkProc struct {
	samples  int
	maxSteps int

	inFlight bool
	returns  []int
	decided  bool
	decRound int
	launched int
}

var _ Estimator = (*ReturnWalkProc)(nil)

// NewReturnWalkProc returns an estimator that averages `samples` return
// times, abandoning walks longer than maxSteps (a lost-token guard).
func NewReturnWalkProc(samples, maxSteps int) *ReturnWalkProc {
	if samples < 1 {
		samples = 1
	}
	if maxSteps < 4 {
		maxSteps = 4
	}
	return &ReturnWalkProc{samples: samples, maxSteps: maxSteps}
}

// MeanReturnTime returns the average of the recorded return times (NaN
// before the first return).
func (p *ReturnWalkProc) MeanReturnTime() float64 {
	if len(p.returns) == 0 {
		return math.NaN()
	}
	sum := 0
	for _, r := range p.returns {
		sum += r
	}
	return float64(sum) / float64(len(p.returns))
}

// Outcome reports round(log2(mean return time)).
func (p *ReturnWalkProc) Outcome() Outcome {
	est := 0
	if m := p.MeanReturnTime(); !math.IsNaN(m) && m >= 1 {
		est = int(math.Round(math.Log2(m)))
	}
	return Outcome{Decided: p.decided, Estimate: est, Round: p.decRound, Exited: p.decided}
}

// Halted always returns false: a node that decided must keep forwarding
// other nodes' walks, otherwise early deciders become absorbing states
// and destroy everyone else's return times. (This forwarding obligation
// is itself a fragility of the approach: a single node that stops — let
// alone a Byzantine one — biases every walk that would have crossed it.)
func (p *ReturnWalkProc) Halted() bool { return false }

// Step forwards foreign tokens and manages the node's own walk.
func (p *ReturnWalkProc) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	out := env.Scratch()
	for _, m := range in {
		tok, ok := m.Payload.(WalkToken)
		if !ok {
			continue
		}
		if tok.Origin == env.ID {
			// Our token came home.
			p.inFlight = false
			if !p.decided {
				p.returns = append(p.returns, tok.Steps)
				if len(p.returns) >= p.samples {
					p.decided = true
					p.decRound = round
				}
			}
			continue
		}
		if tok.Steps >= p.maxSteps {
			continue // abandon overlong walks
		}
		out = append(out, sim.Outgoing{
			To:      env.Neighbors[env.Rand().Intn(len(env.Neighbors))],
			Payload: WalkToken{Origin: tok.Origin, Steps: tok.Steps + 1},
		})
	}
	if !p.decided && !p.inFlight {
		p.inFlight = true
		p.launched++
		out = append(out, sim.Outgoing{
			To:      env.Neighbors[env.Rand().Intn(len(env.Neighbors))],
			Payload: WalkToken{Origin: env.ID, Steps: 1},
		})
	}
	return out
}
