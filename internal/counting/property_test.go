package counting

import (
	"testing"
	"testing/quick"

	"byzcount/internal/graph"
	"byzcount/internal/sim"
	"byzcount/internal/xrand"
)

// TestViewMergeOrderIndependent: merging the same consistent seal set in
// any order yields the same sealed view (the flooding order through the
// network must not matter).
func TestViewMergeOrderIndependent(t *testing.T) {
	rng := xrand.New(60)
	g, err := graph.HND(40, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Build truthful seals with IDs = vertex+1.
	seals := make([]SealRecord, g.N())
	for v := 0; v < g.N(); v++ {
		uniq := map[sim.NodeID]bool{}
		var nbrs []sim.NodeID
		for _, w := range g.Neighbors(v) {
			id := sim.NodeID(w + 1)
			if !uniq[id] {
				uniq[id] = true
				nbrs = append(nbrs, id)
			}
		}
		seals[v] = SealRecord{Node: sim.NodeID(v + 1), Neighbors: nbrs}
	}
	f := func(permSeed uint64) bool {
		view := NewView(8)
		order := xrand.New(permSeed).Perm(len(seals))
		for _, i := range order {
			if err := view.Merge(seals[i]); err != nil {
				return false
			}
		}
		if view.SealedCount() != g.N() {
			return false
		}
		// Layer structure from vertex 1 must match the true BFS.
		layers := view.BallLayers(1)
		dist := g.BFS(0)
		for d, layer := range layers {
			for _, x := range layer {
				if dist[int(x)-1] != d {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestViewMergeIdempotent: merging any prefix twice changes nothing.
func TestViewMergeIdempotent(t *testing.T) {
	recs := []SealRecord{
		{Node: 1, Neighbors: ids(2, 3)},
		{Node: 2, Neighbors: ids(1, 3)},
		{Node: 3, Neighbors: ids(1, 2, 4)},
	}
	v1 := NewView(4)
	v2 := NewView(4)
	for _, r := range recs {
		if err := v1.Merge(r); err != nil {
			t.Fatal(err)
		}
		if err := v2.Merge(r); err != nil {
			t.Fatal(err)
		}
		if err := v2.Merge(r); err != nil {
			t.Fatalf("re-merge failed: %v", err)
		}
	}
	if v1.SealedCount() != v2.SealedCount() || v1.KnownCount() != v2.KnownCount() {
		t.Error("idempotence violated")
	}
}

// TestCongestEstimatesNeverBelowStartPhase: no node can decide below the
// schedule's start phase, whatever the topology.
func TestCongestEstimatesNeverBelowStartPhase(t *testing.T) {
	f := func(seedRaw uint16) bool {
		seed := uint64(seedRaw)
		rng := xrand.New(seed)
		g, err := graph.HND(32+int(seedRaw)%32, 4, rng)
		if err != nil {
			return false
		}
		params := DefaultCongestParams(4)
		params.MaxPhase = 8
		eng := sim.New(g, sim.WithSeed(seed+1))
		procs := make([]sim.Proc, g.N())
		for v := range procs {
			procs[v] = NewCongestProc(params)
		}
		if err := eng.Attach(procs); err != nil {
			return false
		}
		if _, err := eng.Run(params.Schedule.RoundsThroughPhase(params.MaxPhase + 1)); err != nil {
			return false
		}
		for _, o := range Outcomes(procs) {
			if o.Decided && o.Estimate < params.Schedule.StartPhase {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestCongestUpdateOnReentry: with the option set, a node reactivated by
// continue messages may raise its estimate to the phase at which it
// finally exits — never lower it.
func TestCongestUpdateOnReentry(t *testing.T) {
	rng := xrand.New(61)
	g, err := graph.HND(128, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	run := func(update bool) []Outcome {
		params := DefaultCongestParams(8)
		params.UpdateOnReentry = update
		eng := sim.New(g, sim.WithSeed(62))
		procs := make([]sim.Proc, g.N())
		for v := range procs {
			procs[v] = NewCongestProc(params)
		}
		if err := eng.Attach(procs); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(params.Schedule.RoundsThroughPhase(params.MaxPhase + 1)); err != nil {
			t.Fatal(err)
		}
		return Outcomes(procs)
	}
	plain := run(false)
	updated := run(true)
	for v := range plain {
		if updated[v].Estimate < plain[v].Estimate {
			t.Fatalf("vertex %d: reentry lowered the estimate (%d -> %d)",
				v, plain[v].Estimate, updated[v].Estimate)
		}
	}
}

// TestLocalEstimatePositive: Algorithm 1 never decides a non-positive
// estimate on a connected graph of more than one node.
func TestLocalEstimatePositive(t *testing.T) {
	f := func(seedRaw uint16) bool {
		seed := uint64(seedRaw)
		rng := xrand.New(seed)
		g, err := graph.HND(16+int(seedRaw)%48, 4, rng)
		if err != nil {
			return false
		}
		params := DefaultLocalParams(4)
		eng := sim.New(g, sim.WithSeed(seed+1))
		procs := make([]sim.Proc, g.N())
		for v := range procs {
			procs[v] = NewLocalProc(params)
		}
		if err := eng.Attach(procs); err != nil {
			return false
		}
		if _, err := eng.Run(params.MaxRounds + 8); err != nil {
			return false
		}
		for _, o := range Outcomes(procs) {
			if !o.Decided || o.Estimate < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
