package counting

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"byzcount/internal/sim"
	"byzcount/internal/xrand"
)

// ErrInconsistent is reported when merged topology information
// contradicts what a node already knows — the trigger of Algorithm 1's
// line 6 (via the `inconsistent` predicate of lines 16-18).
var ErrInconsistent = errors.New("counting: inconsistent topology information")

// SealRecord is the unit of topology information in Algorithm 1: a node's
// complete incident edge set, announced by the node itself and flooded
// outward one hop per round. A record for node X claims "X's neighbors
// are exactly Neighbors".
type SealRecord struct {
	Node      sim.NodeID
	Neighbors []sim.NodeID
}

// LocalDelta is the per-round LOCAL-model message: the seal records the
// sender learned since its previous broadcast. Broadcasting deltas is
// information-equivalent to the paper's "broadcast all of B-hat(u,i)"
// (receivers reconstruct the same view) while keeping the simulation
// polynomial; cumulative bits per node still measure the LOCAL cost.
type LocalDelta struct {
	Seals []SealRecord
}

// SizeBits counts 64 bits per node ID plus a small header per record.
func (d LocalDelta) SizeBits() int {
	bits := 16
	for _, s := range d.Seals {
		bits += 16 + 64*(1+len(s.Neighbors))
	}
	return bits
}

// View is a node's accumulated approximation of the network topology
// (B-hat(u,i) in the paper). It stores seal records and the adjacency
// they imply, and detects the paper's inconsistency conditions during
// merging.
//
// Internally every node ID is interned to a dense int32 index on first
// sight, and all adjacency, seal, and claim bookkeeping runs on flat
// index-keyed slices with generation-stamped scratch for traversals. The
// one remaining map is the ID->index intern table (IDs are uniform
// 64-bit values, so some hashing is unavoidable); it is consulted once
// per ID per record instead of on every adjacency touch, which is what
// removed the map traffic that dominated E1's LOCAL runs. All checks,
// orders, and draws are bit-identical to the seed map-based view.
type View struct {
	maxDegree int

	idx   map[sim.NodeID]int32 // intern table
	nodes []sim.NodeID         // index -> ID

	// Per-index state, parallel to nodes. A node is sealed when
	// sealed[i]; sealNbrs[i] is its sorted full neighbor list (IDs) and
	// sealIdx[i] the same neighbors as interned indices (parallel
	// positions). adj[i] is the symmetric adjacency implied by seals, in
	// first-claim order, deduplicated. claimedBy[i] lists the sealed
	// nodes that claim an edge to the not-yet-sealed i; when i finally
	// seals, its record must name every claimant (and, symmetrically,
	// every sealed node it names must have claimed it).
	sealed      []bool
	sealNbrs    [][]sim.NodeID
	sealIdx     [][]int32
	adj         [][]int32
	claimedBy   [][]int32
	sealedCount int

	// Traversal scratch, reused across calls (a View belongs to one
	// process and is stepped by one goroutine).
	mark  []uint32
	dist  []int32
	gen   uint32
	queue []int32

	// nbrScratch holds the sorted copy of a record's neighbor list while
	// Merge validates it. Flooding delivers every seal many times, and
	// the duplicate path returns before the record is stored, so sorting
	// into this reusable buffer means only first-time seals allocate.
	nbrScratch []sim.NodeID

	// sweep is the SweepCheck workspace, reused across rounds (the check
	// runs every round once views are large enough, and rebuilding its
	// compact sealed-subgraph representation from scratch dominated the
	// check's cost).
	sweep sweepScratch
}

// sweepScratch is SweepCheck's reusable workspace.
type sweepScratch struct {
	nodes    []int32 // sealed nodes (global indices), sorted by ID
	compact  []int32 // global index -> compact sealed index, -1 otherwise
	adj      [][]int32
	adjSlab  []int32
	order    []int
	inPrefix []bool
	outSeal  []bool
	deg      []float64
	pi       []float64
	x        []float64
	y        []float64
}

// NewView returns an empty view that enforces the degree bound maxDegree
// (the Delta known to all nodes in Theorem 1).
func NewView(maxDegree int) *View {
	return &View{
		maxDegree: maxDegree,
		idx:       make(map[sim.NodeID]int32),
	}
}

// intern returns the dense index of x, assigning the next one on first
// sight.
func (v *View) intern(x sim.NodeID) int32 {
	if i, ok := v.idx[x]; ok {
		return i
	}
	i := int32(len(v.nodes))
	v.idx[x] = i
	v.nodes = append(v.nodes, x)
	v.sealed = append(v.sealed, false)
	v.sealNbrs = append(v.sealNbrs, nil)
	v.sealIdx = append(v.sealIdx, nil)
	v.adj = append(v.adj, nil)
	v.claimedBy = append(v.claimedBy, nil)
	return i
}

// lookup returns the dense index of x, or -1 if never seen.
func (v *View) lookup(x sim.NodeID) int32 {
	if i, ok := v.idx[x]; ok {
		return i
	}
	return -1
}

// nextGen starts a fresh stamped traversal over the interned index
// space, growing the scratch arrays to cover newly interned nodes.
func (v *View) nextGen() uint32 {
	if len(v.mark) < len(v.nodes) {
		grown := make([]uint32, len(v.nodes)+len(v.nodes)/2+8)
		copy(grown, v.mark)
		v.mark = grown
		dist := make([]int32, len(grown))
		copy(dist, v.dist)
		v.dist = dist
	}
	v.gen++
	if v.gen == 0 {
		for i := range v.mark {
			v.mark[i] = 0
		}
		v.gen = 1
	}
	return v.gen
}

// SealedCount returns the number of nodes with known full edge sets.
func (v *View) SealedCount() int { return v.sealedCount }

// KnownCount returns the number of nodes the view has heard of (sealed or
// mentioned in someone's seal).
func (v *View) KnownCount() int { return len(v.nodes) }

// IsSealed reports whether node x's full edge set is known.
func (v *View) IsSealed(x sim.NodeID) bool {
	i := v.lookup(x)
	return i >= 0 && v.sealed[i]
}

// Sealed returns the sealed node IDs in unspecified order.
func (v *View) Sealed() []sim.NodeID {
	out := make([]sim.NodeID, 0, v.sealedCount)
	for i, s := range v.sealed {
		if s {
			out = append(out, v.nodes[i])
		}
	}
	return out
}

// Merge incorporates a seal record, returning ErrInconsistent (wrapped
// with context) when the record contradicts existing knowledge:
//
//   - the claimed degree exceeds the known bound Delta (line 17),
//   - the node was already sealed with a different edge set (line 18), or
//   - the claimed edge set disagrees with another sealed node's record
//     (an edge must appear in both endpoints' seals).
//
// Nothing is interned on the error paths, so a rejected record leaves
// the view untouched (matching the seed behavior, where KnownCount only
// grew on commit).
func (v *View) Merge(rec SealRecord) error {
	if len(rec.Neighbors) > v.maxDegree {
		return fmt.Errorf("%w: node %d claims degree %d > %d",
			ErrInconsistent, rec.Node, len(rec.Neighbors), v.maxDegree)
	}
	nbrs := append(v.nbrScratch[:0], rec.Neighbors...)
	v.nbrScratch = nbrs[:0]
	sortIDs(nbrs)
	for i := 1; i < len(nbrs); i++ {
		if nbrs[i] == nbrs[i-1] {
			return fmt.Errorf("%w: node %d claims a parallel edge to %d",
				ErrInconsistent, rec.Node, nbrs[i])
		}
	}
	for _, w := range nbrs {
		if w == rec.Node {
			return fmt.Errorf("%w: node %d claims a self-loop", ErrInconsistent, rec.Node)
		}
	}
	self := v.lookup(rec.Node)
	if self >= 0 && v.sealed[self] {
		if !equalIDs(v.sealNbrs[self], nbrs) {
			return fmt.Errorf("%w: node %d re-sealed with a different edge set",
				ErrInconsistent, rec.Node)
		}
		return nil // duplicate of known information
	}
	// Cross-check against already-sealed neighbors: an edge {a,b} must be
	// claimed by both sides.
	for _, w := range nbrs {
		if wi := v.lookup(w); wi >= 0 && v.sealed[wi] && !containsID(v.sealNbrs[wi], rec.Node) {
			return fmt.Errorf("%w: node %d claims an edge to %d, which is sealed without it",
				ErrInconsistent, rec.Node, w)
		}
	}
	// Reverse direction: every sealed node that previously claimed an edge
	// to rec.Node must appear in rec's neighbor set.
	if self >= 0 {
		for _, claimant := range v.claimedBy[self] {
			if !containsID(nbrs, v.nodes[claimant]) {
				return fmt.Errorf("%w: node %d is sealed with an edge to %d, which now denies it",
					ErrInconsistent, v.nodes[claimant], rec.Node)
			}
		}
	}
	// Commit: the record is stored, so the scratch-sorted list graduates
	// to a private exact-size copy.
	nbrs = append(make([]sim.NodeID, 0, len(nbrs)), nbrs...)
	if self < 0 {
		self = v.intern(rec.Node)
	}
	v.claimedBy[self] = nil
	v.sealed[self] = true
	v.sealNbrs[self] = nbrs
	v.sealedCount++
	var ni []int32
	if len(nbrs) > 0 {
		ni = make([]int32, 0, len(nbrs))
	}
	for _, w := range nbrs {
		wi := v.intern(w)
		ni = append(ni, wi)
		v.addArc(self, wi)
		v.addArc(wi, self)
		if !v.sealed[wi] {
			v.claimedBy[wi] = append(v.claimedBy[wi], self)
		}
	}
	v.sealIdx[self] = ni
	return nil
}

// addArc records the implied adjacency a->b once. The arc lists are
// short (bounded by the degree bound plus the claimants of a node, both
// small in every workload), so a linear dedup scan beats the hash set it
// replaced.
func (v *View) addArc(a, b int32) {
	row := v.adj[a]
	for _, x := range row {
		if x == b {
			return
		}
	}
	if row == nil {
		row = make([]int32, 0, v.maxDegree)
	}
	v.adj[a] = append(row, b)
}

// resize returns buf with length n, reallocating only on growth.
func resize[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// sortIDs sorts a small NodeID slice ascending (insertion sort; records
// are degree-bounded).
func sortIDs(s []sim.NodeID) {
	if len(s) > 32 {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		return
	}
	for i := 1; i < len(s); i++ {
		x := s[i]
		j := i - 1
		for j >= 0 && s[j] > x {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = x
	}
}

func equalIDs(a, b []sim.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsID(sorted []sim.NodeID, x sim.NodeID) bool {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if sorted[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(sorted) && sorted[lo] == x
}

// bfsLayers runs BFS from the interned index c over the implied
// adjacency, filling the scratch queue in discovery order and dist with
// hop counts. It returns the queue (scratch-owned).
func (v *View) bfsLayers(c int32) []int32 {
	gen := v.nextGen()
	v.mark[c] = gen
	v.dist[c] = 0
	queue := append(v.queue[:0], c)
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		dx := v.dist[x]
		for _, w := range v.adj[x] {
			if v.mark[w] != gen {
				v.mark[w] = gen
				v.dist[w] = dx + 1
				queue = append(queue, w)
			}
		}
	}
	v.queue = queue
	return queue
}

// BallLayers runs BFS from center on the view adjacency and returns the
// vertices grouped by distance: layers[0] = {center}, layers[1] = its
// neighbors, and so on.
func (v *View) BallLayers(center sim.NodeID) [][]sim.NodeID {
	c := v.lookup(center)
	if c < 0 {
		return [][]sim.NodeID{{center}}
	}
	queue := v.bfsLayers(c)
	var layers [][]sim.NodeID
	for _, x := range queue {
		d := int(v.dist[x])
		for len(layers) <= d {
			layers = append(layers, nil)
		}
		layers[d] = append(layers[d], v.nodes[x])
	}
	return layers
}

// ExpansionChecks evaluates the Algorithm 1 expansion checks (lines 9-13)
// over the tractable candidate family described in DESIGN.md and returns
// false (check failed, the node must decide) if any candidate subset of
// sealed nodes has vertex expansion below alpha within the view:
//
//  1. every ball B(center, j) consisting solely of sealed nodes, whose
//     out-neighborhood is then exactly the next BFS layer; and
//  2. the set of all sealed nodes, whose out-neighborhood is the unsealed
//     frontier (this catches the "view stopped growing" signal of
//     Lemma 5).
//
// Candidates are restricted to sealed nodes so that their out-edges are
// exactly known; this mirrors the paper's S ⊆ B-hat(u,i) being evaluated
// against B-hat(u,i+1).
func (v *View) ExpansionChecks(center sim.NodeID, alpha float64) bool {
	// An unknown center is its own unsealed one-vertex layer, so the ball
	// checks are vacuous (the seed code's loop broke immediately).
	if c := v.lookup(center); c >= 0 {
		queue := v.bfsLayers(c)
		// Walk the BFS order layer by layer (queue is sorted by dist):
		// evaluate each fully sealed layer's ratio against the next layer,
		// stopping at the first layer containing an unsealed node.
		ballSize := 0
		lo := 0
		for lo < len(queue) {
			d := v.dist[queue[lo]]
			hi := lo
			for hi < len(queue) && v.dist[queue[hi]] == d {
				hi++
			}
			ballSize += hi - lo
			sealedLayer := true
			for _, x := range queue[lo:hi] {
				if !v.sealed[x] {
					sealedLayer = false
					break
				}
			}
			if !sealedLayer {
				break
			}
			next := 0
			for k := hi; k < len(queue) && v.dist[queue[k]] == d+1; k++ {
				next++
			}
			if float64(next) < alpha*float64(ballSize) {
				return false
			}
			lo = hi
		}
	}
	// Full sealed set versus its unsealed frontier.
	return v.sealedOnlyCheck(alpha, 1)
}

// sealedOnlyCheck evaluates candidate 2: the full sealed set against its
// unsealed frontier. minSealed guards the empty-set case.
func (v *View) sealedOnlyCheck(alpha float64, minSealed int) bool {
	if v.sealedCount < minSealed {
		return true
	}
	gen := v.nextGen()
	frontier := 0
	for i, s := range v.sealed {
		if !s {
			continue
		}
		for _, w := range v.sealIdx[i] {
			if !v.sealed[w] && v.mark[w] != gen {
				v.mark[w] = gen
				frontier++
			}
		}
	}
	return float64(frontier) >= alpha*float64(v.sealedCount)
}

// SweepCheck looks for a sparse cut among the sealed nodes using a
// spectral sweep: it computes an approximate second eigenvector of the
// lazy random walk on the sealed subgraph via power iteration, orders the
// sealed nodes by eigenvector value, and evaluates the vertex expansion
// of every prefix (out-neighbors counted in the full view, so unsealed
// frontier nodes count as expansion). It returns false when some prefix
// has expansion below alpha — the polynomial-time stand-in for the
// paper's exponential "every vertex subset" check, in the spirit of the
// spectral blacklisting of King & Saia cited in Section 1.4.
//
// This is the check that defeats the fake-network attack of Remark 1:
// once the real graph is fully discovered, the set of real nodes has an
// out-neighborhood consisting only of the o(n) Byzantine attachment
// points, and the eigenvector ordering separates the two sides of that
// bottleneck.
func (v *View) SweepCheck(alpha float64, iters int, rng *xrand.Rand) bool {
	n := v.sealedCount
	if n < 8 {
		return true // too small for a meaningful spectral signal
	}
	sw := &v.sweep
	// Sealed nodes in deterministic (ascending ID) order, with a compact
	// index per sealed node.
	nodes := sw.nodes[:0] // global indices, sorted by ID
	for i, s := range v.sealed {
		if s {
			nodes = append(nodes, int32(i))
		}
	}
	sw.nodes = nodes
	sort.Slice(nodes, func(a, b int) bool { return v.nodes[nodes[a]] < v.nodes[nodes[b]] })
	compact := resize(sw.compact, len(v.nodes)) // global index -> compact, -1 if unsealed
	sw.compact = compact
	for i := range compact {
		compact[i] = -1
	}
	for ci, gi := range nodes {
		compact[gi] = int32(ci)
	}
	// Sealed-subgraph adjacency (compact indices) in one backing slab,
	// filled CSR-style: row capacities are the seal degrees, so the fill
	// never grows a row.
	total := 0
	for _, gi := range nodes {
		total += len(v.sealIdx[gi])
	}
	slab := resize(sw.adjSlab, total)[:0]
	sw.adjSlab = slab[:cap(slab)]
	adj := sw.adj[:0]
	for _, gi := range nodes {
		lo := len(slab)
		for _, w := range v.sealIdx[gi] {
			if cj := compact[w]; cj >= 0 {
				slab = append(slab, cj)
			}
		}
		adj = append(adj, slab[lo:len(slab):len(slab)])
	}
	sw.adj = adj
	vec := secondEigenvectorInto(sw, adj, iters, rng)
	if vec == nil {
		return true
	}
	order := sw.order[:0]
	for i := 0; i < n; i++ {
		order = append(order, i)
	}
	sw.order = order
	sort.Slice(order, func(a, b int) bool { return vec[order[a]] < vec[order[b]] })

	// Sweep prefixes, counting out-neighbors in the FULL view (sealed
	// members outside the prefix and unsealed frontier nodes both count).
	inPrefix := resize(sw.inPrefix, n)
	sw.inPrefix = inPrefix
	outSealed := resize(sw.outSeal, n) // compact-indexed: sealed, adjacent to prefix, not in it
	sw.outSeal = outSealed
	for i := 0; i < n; i++ {
		inPrefix[i] = false
		outSealed[i] = false
	}
	outSealedCount := 0
	gen := v.nextGen() // stamps unsealed out-neighbors on the global index space
	outUnsealedCount := 0
	for k, oi := range order {
		gi := nodes[oi]
		inPrefix[oi] = true
		if outSealed[oi] {
			outSealed[oi] = false
			outSealedCount--
		}
		for _, w := range v.sealIdx[gi] {
			if cj := compact[w]; cj >= 0 {
				if !inPrefix[cj] && !outSealed[cj] {
					outSealed[cj] = true
					outSealedCount++
				}
			} else if v.mark[w] != gen {
				v.mark[w] = gen
				outUnsealedCount++
			}
		}
		size := k + 1
		if size < 4 || size > n-1 {
			continue // skip degenerate prefixes
		}
		if float64(outSealedCount+outUnsealedCount) < alpha*float64(size) {
			return false
		}
	}
	return true
}

// secondEigenvectorInto approximates the second eigenvector of the lazy
// walk on the given adjacency via power iteration, projecting out the
// stationary component, with all float vectors drawn from the reusable
// sweep workspace. Returns nil when the graph is degenerate. Every rng
// draw is identical to the seed implementation's.
func secondEigenvectorInto(sw *sweepScratch, adj [][]int32, iters int, rng *xrand.Rand) []float64 {
	n := len(adj)
	if n == 0 {
		return nil
	}
	deg := resize(sw.deg, n)
	sw.deg = deg
	var total float64
	for i := range adj {
		deg[i] = float64(len(adj[i]))
		total += deg[i]
		if deg[i] == 0 {
			deg[i] = 1 // isolated sealed node; keep the walk well-defined
		}
	}
	if total == 0 {
		return nil
	}
	pi := resize(sw.pi, n)
	sw.pi = pi
	for i := range pi {
		pi[i] = deg[i] / total
	}
	x := resize(sw.x, n)
	sw.x = x
	for i := range x {
		x[i] = rng.Float64() - 0.5
	}
	y := resize(sw.y, n)
	sw.y = y
	if iters < 8 {
		iters = 8
	}
	for it := 0; it < iters; it++ {
		var dot float64
		for i := range x {
			dot += pi[i] * x[i]
		}
		for i := range x {
			x[i] -= dot
		}
		for i := range y {
			var sum float64
			for _, w := range adj[i] {
				sum += x[w]
			}
			y[i] = 0.5*x[i] + 0.5*sum/deg[i]
		}
		var norm float64
		for i := range y {
			norm += y[i] * y[i]
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return nil
		}
		for i := range y {
			x[i] = y[i] / norm
		}
	}
	return x
}
