package counting

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"byzcount/internal/sim"
	"byzcount/internal/xrand"
)

// ErrInconsistent is reported when merged topology information
// contradicts what a node already knows — the trigger of Algorithm 1's
// line 6 (via the `inconsistent` predicate of lines 16-18).
var ErrInconsistent = errors.New("counting: inconsistent topology information")

// SealRecord is the unit of topology information in Algorithm 1: a node's
// complete incident edge set, announced by the node itself and flooded
// outward one hop per round. A record for node X claims "X's neighbors
// are exactly Neighbors".
type SealRecord struct {
	Node      sim.NodeID
	Neighbors []sim.NodeID
}

// LocalDelta is the per-round LOCAL-model message: the seal records the
// sender learned since its previous broadcast. Broadcasting deltas is
// information-equivalent to the paper's "broadcast all of B-hat(u,i)"
// (receivers reconstruct the same view) while keeping the simulation
// polynomial; cumulative bits per node still measure the LOCAL cost.
type LocalDelta struct {
	Seals []SealRecord
}

// SizeBits counts 64 bits per node ID plus a small header per record.
func (d LocalDelta) SizeBits() int {
	bits := 16
	for _, s := range d.Seals {
		bits += 16 + 64*(1+len(s.Neighbors))
	}
	return bits
}

// View is a node's accumulated approximation of the network topology
// (B-hat(u,i) in the paper). It stores seal records and the adjacency
// they imply, and detects the paper's inconsistency conditions during
// merging.
type View struct {
	maxDegree int
	sealed    map[sim.NodeID][]sim.NodeID // node -> sorted full neighbor list
	adj       map[sim.NodeID][]sim.NodeID // symmetric adjacency implied by seals
	adjSet    map[sim.NodeID]map[sim.NodeID]bool
	// claimedBy[x] lists the sealed nodes that claim an edge to the
	// not-yet-sealed node x; when x finally seals, its record must name
	// every claimant (and, symmetrically, every sealed node it names must
	// have claimed it).
	claimedBy map[sim.NodeID][]sim.NodeID
}

// NewView returns an empty view that enforces the degree bound maxDegree
// (the Delta known to all nodes in Theorem 1).
func NewView(maxDegree int) *View {
	return &View{
		maxDegree: maxDegree,
		sealed:    make(map[sim.NodeID][]sim.NodeID),
		adj:       make(map[sim.NodeID][]sim.NodeID),
		adjSet:    make(map[sim.NodeID]map[sim.NodeID]bool),
		claimedBy: make(map[sim.NodeID][]sim.NodeID),
	}
}

// SealedCount returns the number of nodes with known full edge sets.
func (v *View) SealedCount() int { return len(v.sealed) }

// KnownCount returns the number of nodes the view has heard of (sealed or
// mentioned in someone's seal).
func (v *View) KnownCount() int { return len(v.adjSet) }

// IsSealed reports whether node x's full edge set is known.
func (v *View) IsSealed(x sim.NodeID) bool {
	_, ok := v.sealed[x]
	return ok
}

// Sealed returns the sealed node IDs in unspecified order.
func (v *View) Sealed() []sim.NodeID {
	out := make([]sim.NodeID, 0, len(v.sealed))
	for x := range v.sealed {
		out = append(out, x)
	}
	return out
}

// Merge incorporates a seal record, returning ErrInconsistent (wrapped
// with context) when the record contradicts existing knowledge:
//
//   - the claimed degree exceeds the known bound Delta (line 17),
//   - the node was already sealed with a different edge set (line 18), or
//   - the claimed edge set disagrees with another sealed node's record
//     (an edge must appear in both endpoints' seals).
func (v *View) Merge(rec SealRecord) error {
	if len(rec.Neighbors) > v.maxDegree {
		return fmt.Errorf("%w: node %d claims degree %d > %d",
			ErrInconsistent, rec.Node, len(rec.Neighbors), v.maxDegree)
	}
	nbrs := append([]sim.NodeID(nil), rec.Neighbors...)
	sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
	for i := 1; i < len(nbrs); i++ {
		if nbrs[i] == nbrs[i-1] {
			return fmt.Errorf("%w: node %d claims a parallel edge to %d",
				ErrInconsistent, rec.Node, nbrs[i])
		}
	}
	for _, w := range nbrs {
		if w == rec.Node {
			return fmt.Errorf("%w: node %d claims a self-loop", ErrInconsistent, rec.Node)
		}
	}
	if existing, ok := v.sealed[rec.Node]; ok {
		if !equalIDs(existing, nbrs) {
			return fmt.Errorf("%w: node %d re-sealed with a different edge set",
				ErrInconsistent, rec.Node)
		}
		return nil // duplicate of known information
	}
	// Cross-check against already-sealed neighbors: an edge {a,b} must be
	// claimed by both sides.
	for _, w := range nbrs {
		if wNbrs, ok := v.sealed[w]; ok && !containsID(wNbrs, rec.Node) {
			return fmt.Errorf("%w: node %d claims an edge to %d, which is sealed without it",
				ErrInconsistent, rec.Node, w)
		}
	}
	// Reverse direction: every sealed node that previously claimed an edge
	// to rec.Node must appear in rec's neighbor set.
	for _, claimant := range v.claimedBy[rec.Node] {
		if !containsID(nbrs, claimant) {
			return fmt.Errorf("%w: node %d is sealed with an edge to %d, which now denies it",
				ErrInconsistent, claimant, rec.Node)
		}
	}
	delete(v.claimedBy, rec.Node)
	v.sealed[rec.Node] = nbrs
	v.touch(rec.Node)
	for _, w := range nbrs {
		v.touch(w)
		v.addArc(rec.Node, w)
		v.addArc(w, rec.Node)
		if _, ok := v.sealed[w]; !ok {
			v.claimedBy[w] = append(v.claimedBy[w], rec.Node)
		}
	}
	return nil
}

func (v *View) touch(x sim.NodeID) {
	if v.adjSet[x] == nil {
		v.adjSet[x] = make(map[sim.NodeID]bool)
	}
}

func (v *View) addArc(a, b sim.NodeID) {
	if !v.adjSet[a][b] {
		v.adjSet[a][b] = true
		v.adj[a] = append(v.adj[a], b)
	}
}

func equalIDs(a, b []sim.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsID(sorted []sim.NodeID, x sim.NodeID) bool {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if sorted[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(sorted) && sorted[lo] == x
}

// BallLayers runs BFS from center on the view adjacency and returns the
// vertices grouped by distance: layers[0] = {center}, layers[1] = its
// neighbors, and so on.
func (v *View) BallLayers(center sim.NodeID) [][]sim.NodeID {
	if v.adjSet[center] == nil {
		return [][]sim.NodeID{{center}}
	}
	dist := map[sim.NodeID]int{center: 0}
	queue := []sim.NodeID{center}
	var layers [][]sim.NodeID
	layers = append(layers, []sim.NodeID{center})
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		dx := dist[x]
		for _, w := range v.adj[x] {
			if _, seen := dist[w]; !seen {
				dist[w] = dx + 1
				queue = append(queue, w)
				for len(layers) <= dx+1 {
					layers = append(layers, nil)
				}
				layers[dx+1] = append(layers[dx+1], w)
			}
		}
	}
	return layers
}

// ExpansionChecks evaluates the Algorithm 1 expansion checks (lines 9-13)
// over the tractable candidate family described in DESIGN.md and returns
// false (check failed, the node must decide) if any candidate subset of
// sealed nodes has vertex expansion below alpha within the view:
//
//  1. every ball B(center, j) consisting solely of sealed nodes, whose
//     out-neighborhood is then exactly the next BFS layer; and
//  2. the set of all sealed nodes, whose out-neighborhood is the unsealed
//     frontier (this catches the "view stopped growing" signal of
//     Lemma 5).
//
// Candidates are restricted to sealed nodes so that their out-edges are
// exactly known; this mirrors the paper's S ⊆ B-hat(u,i) being evaluated
// against B-hat(u,i+1).
func (v *View) ExpansionChecks(center sim.NodeID, alpha float64) bool {
	layers := v.BallLayers(center)
	ballSize := 0
	sealedPrefix := true
	for j := 0; j < len(layers); j++ {
		ballSize += len(layers[j])
		for _, x := range layers[j] {
			if !v.IsSealed(x) {
				sealedPrefix = false
				break
			}
		}
		if !sealedPrefix {
			break
		}
		next := 0
		if j+1 < len(layers) {
			next = len(layers[j+1])
		}
		if float64(next) < alpha*float64(ballSize) {
			return false
		}
	}
	// Full sealed set versus its unsealed frontier.
	frontier := make(map[sim.NodeID]bool)
	for _, nbrs := range v.sealed {
		for _, w := range nbrs {
			if !v.IsSealed(w) {
				frontier[w] = true
			}
		}
	}
	if len(v.sealed) > 0 && float64(len(frontier)) < alpha*float64(len(v.sealed)) {
		return false
	}
	return true
}

// SweepCheck looks for a sparse cut among the sealed nodes using a
// spectral sweep: it computes an approximate second eigenvector of the
// lazy random walk on the sealed subgraph via power iteration, orders the
// sealed nodes by eigenvector value, and evaluates the vertex expansion
// of every prefix (out-neighbors counted in the full view, so unsealed
// frontier nodes count as expansion). It returns false when some prefix
// has expansion below alpha — the polynomial-time stand-in for the
// paper's exponential "every vertex subset" check, in the spirit of the
// spectral blacklisting of King & Saia cited in Section 1.4.
//
// This is the check that defeats the fake-network attack of Remark 1:
// once the real graph is fully discovered, the set of real nodes has an
// out-neighborhood consisting only of the o(n) Byzantine attachment
// points, and the eigenvector ordering separates the two sides of that
// bottleneck.
func (v *View) SweepCheck(alpha float64, iters int, rng *xrand.Rand) bool {
	n := len(v.sealed)
	if n < 8 {
		return true // too small for a meaningful spectral signal
	}
	idx := make(map[sim.NodeID]int, n)
	nodes := make([]sim.NodeID, 0, n)
	for x := range v.sealed {
		nodes = append(nodes, x)
	}
	// Deterministic ordering for reproducibility.
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for i, x := range nodes {
		idx[x] = i
	}
	// Sealed-subgraph adjacency (indices) and degrees.
	adj := make([][]int32, n)
	for i, x := range nodes {
		for _, w := range v.sealed[x] {
			if j, ok := idx[w]; ok {
				adj[i] = append(adj[i], int32(j))
			}
		}
	}
	vec := secondEigenvector(adj, iters, rng)
	if vec == nil {
		return true
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return vec[order[a]] < vec[order[b]] })

	// Sweep prefixes, counting out-neighbors in the FULL view (sealed
	// members outside the prefix and unsealed frontier nodes both count).
	inPrefix := make([]bool, n)
	outSealed := make(map[int]bool)          // sealed nodes adjacent to prefix, not in it
	outUnsealed := make(map[sim.NodeID]bool) // unsealed nodes adjacent to prefix
	for k, oi := range order {
		x := nodes[oi]
		inPrefix[oi] = true
		delete(outSealed, oi)
		for _, w := range v.sealed[x] {
			if j, ok := idx[w]; ok {
				if !inPrefix[j] {
					outSealed[j] = true
				}
			} else {
				outUnsealed[w] = true
			}
		}
		size := k + 1
		if size < 4 || size > n-1 {
			continue // skip degenerate prefixes
		}
		out := len(outSealed) + len(outUnsealed)
		if float64(out) < alpha*float64(size) {
			return false
		}
	}
	return true
}

// secondEigenvector approximates the second eigenvector of the lazy walk
// on the given adjacency via power iteration, projecting out the
// stationary component. Returns nil when the graph is degenerate.
func secondEigenvector(adj [][]int32, iters int, rng *xrand.Rand) []float64 {
	n := len(adj)
	if n == 0 {
		return nil
	}
	deg := make([]float64, n)
	var total float64
	for i := range adj {
		deg[i] = float64(len(adj[i]))
		total += deg[i]
		if deg[i] == 0 {
			deg[i] = 1 // isolated sealed node; keep the walk well-defined
		}
	}
	if total == 0 {
		return nil
	}
	pi := make([]float64, n)
	for i := range pi {
		pi[i] = deg[i] / total
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64() - 0.5
	}
	y := make([]float64, n)
	if iters < 8 {
		iters = 8
	}
	for it := 0; it < iters; it++ {
		var dot float64
		for i := range x {
			dot += pi[i] * x[i]
		}
		for i := range x {
			x[i] -= dot
		}
		for i := range y {
			var sum float64
			for _, w := range adj[i] {
				sum += x[w]
			}
			y[i] = 0.5*x[i] + 0.5*sum/deg[i]
		}
		var norm float64
		for i := range y {
			norm += y[i] * y[i]
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return nil
		}
		for i := range y {
			x[i] = y[i] / norm
		}
	}
	return x
}
