package counting

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIterationRounds(t *testing.T) {
	if IterationRounds(3) != 11 {
		t.Errorf("IterationRounds(3) = %d, want 11", IterationRounds(3))
	}
}

func TestIterationsFormula(t *testing.T) {
	s := Schedule{StartPhase: 2, Gamma: 0.5}
	// floor(e^(0.5*4)) + 1 = floor(7.389) + 1 = 8
	if got := s.Iterations(4); got != 8 {
		t.Errorf("Iterations(4) = %d, want 8", got)
	}
}

func TestIterationCap(t *testing.T) {
	s := Schedule{StartPhase: 2, Gamma: 0.2, IterationCap: 5}
	if got := s.Iterations(20); got != 5 {
		t.Errorf("capped Iterations = %d, want 5", got)
	}
}

func TestLocateFirstRounds(t *testing.T) {
	s := Schedule{StartPhase: 2, Gamma: 0.5}
	loc := s.Locate(0)
	if loc.Phase != 2 || loc.Iteration != 1 || loc.Offset != 0 {
		t.Errorf("Locate(0) = %+v", loc)
	}
	// Phase 2 iterations: floor(e^1)+1 = 3; iteration length 9.
	loc = s.Locate(8)
	if loc.Phase != 2 || loc.Iteration != 1 || loc.Offset != 8 {
		t.Errorf("Locate(8) = %+v", loc)
	}
	loc = s.Locate(9)
	if loc.Phase != 2 || loc.Iteration != 2 || loc.Offset != 0 {
		t.Errorf("Locate(9) = %+v", loc)
	}
	loc = s.Locate(27) // 3 iterations x 9 rounds = phase 2 done
	if loc.Phase != 3 || loc.Iteration != 1 || loc.Offset != 0 {
		t.Errorf("Locate(27) = %+v", loc)
	}
}

func TestLocateNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative round did not panic")
		}
	}()
	Schedule{StartPhase: 2, Gamma: 0.5}.Locate(-1)
}

func TestLocateConsistentWithPhaseRounds(t *testing.T) {
	s := Schedule{StartPhase: 2, Gamma: 0.45}
	f := func(roundRaw uint16) bool {
		round := int(roundRaw)
		loc := s.Locate(round)
		// Reconstruct the round from the coordinates.
		base := 0
		for i := s.StartPhase; i < loc.Phase; i++ {
			base += s.PhaseRounds(i)
		}
		reconstructed := base + (loc.Iteration-1)*IterationRounds(loc.Phase) + loc.Offset
		return reconstructed == round &&
			loc.Iteration >= 1 && loc.Iteration <= s.Iterations(loc.Phase) &&
			loc.Offset >= 0 && loc.Offset < IterationRounds(loc.Phase)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundsThroughPhase(t *testing.T) {
	s := Schedule{StartPhase: 2, Gamma: 0.5}
	want := s.PhaseRounds(2) + s.PhaseRounds(3)
	if got := s.RoundsThroughPhase(3); got != want {
		t.Errorf("RoundsThroughPhase(3) = %d, want %d", got, want)
	}
	// First round of phase 4 must be exactly that total.
	if loc := s.Locate(want); loc.Phase != 4 || loc.Offset != 0 {
		t.Errorf("round %d located at %+v", want, loc)
	}
}

func TestBlacklistSuffix(t *testing.T) {
	// Large i: the floor formula dominates.
	if got := BlacklistSuffix(20, 0.8); got != 4 {
		t.Errorf("BlacklistSuffix(20, 0.8) = %d, want 4", got)
	}
	// Small i: the floor would be 0; the trusted suffix is clamped to 1.
	if got := BlacklistSuffix(2, 0.8); got != 1 {
		t.Errorf("BlacklistSuffix(2, 0.8) = %d, want 1", got)
	}
}

func TestDeriveEpsilon(t *testing.T) {
	eps := DeriveEpsilon(0.5, 0.1, 8)
	want := 1 - 0.9*0.5/math.Log(8)
	if math.Abs(eps-want) > 1e-12 {
		t.Errorf("DeriveEpsilon = %g, want %g", eps, want)
	}
	if eps <= 0 || eps >= 1 {
		t.Errorf("epsilon %g outside (0,1)", eps)
	}
}

func TestDeriveEpsilonPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("d=1 did not panic")
		}
	}()
	DeriveEpsilon(0.5, 0.1, 1)
}

func TestActivationProbability(t *testing.T) {
	// c1*i/d^i: 4*2/8^2 = 0.125
	if got := ActivationProbability(4, 2, 8); math.Abs(got-0.125) > 1e-12 {
		t.Errorf("ActivationProbability = %g", got)
	}
	// Degenerate inputs.
	if ActivationProbability(4, 0, 8) != 0 {
		t.Error("i=0 should give 0")
	}
	if ActivationProbability(4, 2, 1) != 0 {
		t.Error("d=1 should give 0")
	}
	// Clamped to 1.
	if got := ActivationProbability(100, 1, 2); got != 1 {
		t.Errorf("clamp failed: %g", got)
	}
	// Monotone decreasing in i eventually.
	if ActivationProbability(4, 10, 8) >= ActivationProbability(4, 3, 8) {
		t.Error("activation probability should decay with phase")
	}
}
