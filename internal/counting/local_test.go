package counting

import (
	"testing"

	"byzcount/internal/graph"
	"byzcount/internal/sim"
	"byzcount/internal/xrand"
)

func runLocalBenign(t *testing.T, g *graph.Graph, d int, seed uint64) ([]Outcome, *sim.Engine, int) {
	t.Helper()
	eng := sim.New(g, sim.WithSeed(seed))
	params := DefaultLocalParams(d)
	procs := make([]sim.Proc, g.N())
	for v := range procs {
		procs[v] = NewLocalProc(params)
	}
	if err := eng.Attach(procs); err != nil {
		t.Fatal(err)
	}
	rounds, err := eng.Run(params.MaxRounds + 8)
	if err != nil {
		t.Fatal(err)
	}
	return Outcomes(procs), eng, rounds
}

func TestLocalBenignAllDecide(t *testing.T) {
	rng := xrand.New(1)
	g, err := graph.HND(256, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	outcomes, _, rounds := runLocalBenign(t, g, 8, 2)
	honest := allHonest(g.N())
	if frac := DecidedFraction(outcomes, honest); frac != 1 {
		t.Fatalf("decided fraction = %g", frac)
	}
	diam, err := g.Diameter()
	if err != nil {
		t.Fatal(err)
	}
	for v, o := range outcomes {
		if o.Estimate < 1 || o.Estimate > diam+2 {
			t.Errorf("vertex %d decided %d outside [1, diam+2=%d]", v, o.Estimate, diam+2)
		}
	}
	if rounds > diam+4 {
		t.Errorf("run took %d rounds, diameter is %d", rounds, diam)
	}
}

func TestLocalBenignEstimateScalesWithN(t *testing.T) {
	meanEst := func(n int, seed uint64) float64 {
		rng := xrand.New(seed)
		g, err := graph.HND(n, 6, rng)
		if err != nil {
			t.Fatal(err)
		}
		outcomes, _, _ := runLocalBenign(t, g, 6, seed+1)
		sum, cnt := 0.0, 0
		for _, o := range outcomes {
			if o.Decided {
				sum += float64(o.Estimate)
				cnt++
			}
		}
		return sum / float64(cnt)
	}
	small := meanEst(64, 3)
	large := meanEst(512, 4)
	if large <= small {
		t.Errorf("estimates did not grow with n: %g vs %g", small, large)
	}
}

func TestLocalBenignDeterministic(t *testing.T) {
	rng := xrand.New(5)
	g, err := graph.HND(128, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	a, _, _ := runLocalBenign(t, g, 6, 6)
	b, _, _ := runLocalBenign(t, g, 6, 6)
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("outcome %d differs", v)
		}
	}
}

// muteByz is a Byzantine process that never sends anything.
type muteByz struct{}

func (muteByz) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing { return nil }
func (muteByz) Halted() bool                                                   { return false }

func TestLocalMuteByzantinePropagatesDistanceDecisions(t *testing.T) {
	// A mute Byzantine node forces neighbors to decide at round 1, their
	// neighbors at round 2, etc. Estimates track distance-to-Byzantine,
	// capped by the benign decision time — exactly the Theorem 1 shape.
	rng := xrand.New(7)
	g, err := graph.HND(256, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New(g, sim.WithSeed(8))
	params := DefaultLocalParams(8)
	procs := make([]sim.Proc, g.N())
	const byzVertex = 0
	for v := range procs {
		if v == byzVertex {
			procs[v] = muteByz{}
		} else {
			procs[v] = NewLocalProc(params)
		}
	}
	if err := eng.Attach(procs); err != nil {
		t.Fatal(err)
	}
	eng.SetStopCondition(func(round int) bool {
		for v, p := range procs {
			if v == byzVertex {
				continue
			}
			if !p.(*LocalProc).decided {
				return false
			}
		}
		return true
	})
	if _, err := eng.Run(params.MaxRounds + 8); err != nil {
		t.Fatal(err)
	}
	dist := g.BFS(byzVertex)
	outcomes := Outcomes(procs)
	for v, o := range outcomes {
		if v == byzVertex {
			continue
		}
		if !o.Decided {
			t.Fatalf("vertex %d undecided", v)
		}
		if o.Estimate > dist[v]+1 {
			t.Errorf("vertex %d at distance %d decided %d (> dist+1)", v, dist[v], o.Estimate)
		}
	}
}

// degreeLiar seals itself with more neighbors than the degree bound.
type degreeLiar struct{ sent bool }

func (dl *degreeLiar) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	if dl.sent {
		// Keep broadcasting empty deltas so the mute check never fires;
		// only the degree lie should trigger detection.
		return env.Broadcast(LocalDelta{})
	}
	dl.sent = true
	fake := make([]sim.NodeID, 0, len(env.NeighborIDs)+8)
	fake = append(fake, env.NeighborIDs...)
	for i := 0; i < 8; i++ {
		fake = append(fake, sim.NodeID(0xdead0000+uint64(i)))
	}
	return env.Broadcast(LocalDelta{Seals: []SealRecord{{Node: env.ID, Neighbors: fake}}})
}
func (dl *degreeLiar) Halted() bool { return false }

func TestLocalDegreeLiarDetected(t *testing.T) {
	rng := xrand.New(9)
	g, err := graph.HND(128, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New(g, sim.WithSeed(10))
	params := DefaultLocalParams(6)
	procs := make([]sim.Proc, g.N())
	const byzVertex = 3
	for v := range procs {
		if v == byzVertex {
			procs[v] = &degreeLiar{}
		} else {
			procs[v] = NewLocalProc(params)
		}
	}
	if err := eng.Attach(procs); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(params.MaxRounds + 8); err != nil {
		t.Fatal(err)
	}
	// The liar's direct neighbors see a degree-7 claim in a degree-6
	// network at round 1 and decide immediately.
	dist := g.BFS(byzVertex)
	for v, o := range Outcomes(procs) {
		if v == byzVertex || dist[v] != 1 {
			continue
		}
		if !o.Decided || o.Estimate != 1 {
			t.Errorf("neighbor %d of the liar decided %+v, want estimate 1", v, o)
		}
	}
}

func TestLocalRingDecidesEarly(t *testing.T) {
	// Rings have no expansion: the growth check fails within a few
	// rounds, long before the diameter. (This is the Theorem 3 intuition:
	// the algorithm cannot certify size without expansion — it halts with
	// whatever small radius it could verify.)
	g, err := graph.Ring(128)
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultLocalParams(2)
	params.Alpha = 0.2
	eng := sim.New(g, sim.WithSeed(11))
	procs := make([]sim.Proc, g.N())
	for v := range procs {
		procs[v] = NewLocalProc(params)
	}
	if err := eng.Attach(procs); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(params.MaxRounds + 8); err != nil {
		t.Fatal(err)
	}
	for v, o := range Outcomes(procs) {
		if !o.Decided {
			t.Fatalf("ring vertex %d undecided", v)
		}
		if o.Estimate > 20 {
			t.Errorf("ring vertex %d decided %d; expected early decision", v, o.Estimate)
		}
	}
}

func TestLocalOutcomeFresh(t *testing.T) {
	p := NewLocalProc(DefaultLocalParams(8))
	if p.Halted() {
		t.Error("fresh proc halted")
	}
	if o := p.Outcome(); o.Decided {
		t.Error("fresh proc decided")
	}
	if p.View() == nil {
		t.Error("nil view")
	}
}
