package counting

import (
	"byzcount/internal/sim"
)

// LocalParams configures Algorithm 1 (the deterministic LOCAL-model
// counting algorithm of Section 4).
type LocalParams struct {
	// MaxDegree is the globally known degree bound Delta of Theorem 1.
	MaxDegree int
	// Alpha is the expansion threshold alpha' of line 11 — a lower bound
	// on the network's vertex expansion known to all nodes (Section 1.3).
	Alpha float64
	// EnableSweep turns on the spectral sweep check (see View.SweepCheck)
	// that defends against consistent fake-network injection. The cheap
	// checks already handle inconsistency, muteness, and saturation.
	EnableSweep bool
	// SweepMinRound delays the sweep until views are large enough to
	// carry a spectral signal (default 3 when zero).
	SweepMinRound int
	// SweepIters is the power-iteration count (default 40 when zero).
	SweepIters int
	// MaxRounds forces a decision as a simulation safety net; 0 disables.
	MaxRounds int
}

// DefaultLocalParams returns the parameter set used in the experiments
// for a network of maximum degree d.
func DefaultLocalParams(d int) LocalParams {
	return LocalParams{
		MaxDegree:     d,
		Alpha:         0.2,
		EnableSweep:   true,
		SweepMinRound: 3,
		SweepIters:    40,
		MaxRounds:     64,
	}
}

// LocalProc is the per-node process of Algorithm 1. Each round it
// broadcasts the topology information it learned in the previous round
// (a delta encoding of the paper's "broadcast B-hat(u,i)"), merges what
// its neighbors sent, and decides the moment it sees an inconsistency, a
// mute neighbor, or an expansion-check failure.
type LocalProc struct {
	params LocalParams

	view     *View
	outbox   []SealRecord // seals learned since the last broadcast
	decided  bool
	estimate int
	decRound int

	// seenScratch and nbrScratch are the reusable distinct-count buffers
	// of the mute check — degrees are bounded by Delta, so linear scans
	// over reused slices replace the two maps the seed code allocated
	// every round. The distinct-neighbor count is recomputed each round
	// (not cached): under a mutable topology env.Neighbors is refreshed
	// as the membership churns, and the mute check must track it.
	seenScratch []int
	nbrScratch  []int
}

var _ Estimator = (*LocalProc)(nil)

// NewLocalProc returns a fresh Algorithm 1 process.
func NewLocalProc(params LocalParams) *LocalProc {
	if params.SweepMinRound == 0 {
		params.SweepMinRound = 3
	}
	if params.SweepIters == 0 {
		params.SweepIters = 40
	}
	return &LocalProc{
		params: params,
		view:   NewView(params.MaxDegree),
	}
}

// Outcome reports the node's decision.
func (l *LocalProc) Outcome() Outcome {
	return Outcome{Decided: l.decided, Estimate: l.estimate, Round: l.decRound, Exited: l.decided}
}

// Halted reports whether the node decided; a decided node terminates and
// goes mute, which is exactly how its neighbors learn about the decision
// (line 5's "some neighbor is mute").
func (l *LocalProc) Halted() bool { return l.decided }

// Step advances one synchronous round.
func (l *LocalProc) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	if l.decided {
		return nil
	}
	if round == 0 {
		// Round 1 of the paper: B-hat(u,1) is the inclusive neighborhood.
		// Parallel edges collapse to one topological edge in the seal.
		uniq := make(map[sim.NodeID]bool, len(env.NeighborIDs))
		nbrs := make([]sim.NodeID, 0, len(env.NeighborIDs))
		for _, id := range env.NeighborIDs {
			if !uniq[id] {
				uniq[id] = true
				nbrs = append(nbrs, id)
			}
		}
		self := SealRecord{Node: env.ID, Neighbors: nbrs}
		if err := l.view.Merge(self); err != nil {
			// Cannot happen for a well-formed environment, but a parallel
			// edge in the underlying multigraph would trip the degree
			// rules; decide defensively rather than panic.
			l.decide(round)
			return nil
		}
		l.outbox = append(l.outbox, self)
		return l.flush(env)
	}

	// Mute check (line 5): every live neighbor broadcast last round.
	if cap(l.nbrScratch) < len(env.Neighbors) {
		l.nbrScratch = make([]int, 0, len(env.Neighbors))
	}
	distinct := countDistinct(l.nbrScratch[:0], env.Neighbors)
	seen := l.seenScratch[:0]
	for _, m := range in {
		if !containsInt(seen, m.From) {
			seen = append(seen, m.From)
		}
	}
	l.seenScratch = seen[:0]
	if len(seen) < distinct {
		l.decide(round)
		return nil
	}

	// Merge received topology information (line 8), deciding on any
	// inconsistency (line 6).
	for _, m := range in {
		delta, ok := m.Payload.(LocalDelta)
		if !ok {
			// A malformed payload is inconsistent information.
			l.decide(round)
			return nil
		}
		for _, rec := range delta.Seals {
			wasSealed := l.view.IsSealed(rec.Node)
			if err := l.view.Merge(rec); err != nil {
				l.decide(round)
				return nil
			}
			if !wasSealed && l.view.IsSealed(rec.Node) {
				l.outbox = append(l.outbox, rec)
			}
		}
	}

	// Expansion checks (lines 9-13) over the tractable candidate family.
	if !l.view.ExpansionChecks(env.ID, l.params.Alpha) {
		l.decide(round)
		return nil
	}
	if l.params.EnableSweep && round >= l.params.SweepMinRound {
		if !l.view.SweepCheck(l.params.Alpha, l.params.SweepIters, env.Rand()) {
			l.decide(round)
			return nil
		}
	}
	if l.params.MaxRounds > 0 && round >= l.params.MaxRounds {
		l.decide(round)
		return nil
	}
	return l.flush(env)
}

// View exposes the accumulated topology knowledge (read-only use).
func (l *LocalProc) View() *View { return l.view }

func (l *LocalProc) decide(round int) {
	l.decided = true
	l.estimate = round
	l.decRound = round
}

// containsInt reports whether x appears in the (short, degree-bounded)
// slice s.
func containsInt(s []int, x int) bool {
	for _, y := range s {
		if y == x {
			return true
		}
	}
	return false
}

// countDistinct returns the number of distinct values in s, using buf as
// scratch.
func countDistinct(buf []int, s []int) int {
	for _, x := range s {
		if !containsInt(buf, x) {
			buf = append(buf, x)
		}
	}
	return len(buf)
}

// flush broadcasts the seals learned since the previous round. An empty
// delta is still sent: it is the heartbeat that distinguishes a live
// neighbor from a mute (decided or Byzantine) one.
func (l *LocalProc) flush(env *sim.Env) []sim.Outgoing {
	delta := LocalDelta{Seals: l.outbox}
	l.outbox = nil
	return env.Broadcast(delta)
}
