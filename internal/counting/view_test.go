package counting

import (
	"errors"
	"testing"

	"byzcount/internal/sim"
	"byzcount/internal/xrand"
)

func ids(xs ...uint64) []sim.NodeID {
	out := make([]sim.NodeID, len(xs))
	for i, x := range xs {
		out[i] = sim.NodeID(x)
	}
	return out
}

func TestViewMergeBasic(t *testing.T) {
	v := NewView(4)
	if err := v.Merge(SealRecord{Node: 1, Neighbors: ids(2, 3)}); err != nil {
		t.Fatal(err)
	}
	if !v.IsSealed(1) || v.IsSealed(2) {
		t.Error("seal state wrong")
	}
	if v.SealedCount() != 1 || v.KnownCount() != 3 {
		t.Errorf("counts: sealed=%d known=%d", v.SealedCount(), v.KnownCount())
	}
}

func TestViewMergeDuplicateOK(t *testing.T) {
	v := NewView(4)
	rec := SealRecord{Node: 1, Neighbors: ids(2, 3)}
	if err := v.Merge(rec); err != nil {
		t.Fatal(err)
	}
	// Same info again (even permuted) is fine.
	if err := v.Merge(SealRecord{Node: 1, Neighbors: ids(3, 2)}); err != nil {
		t.Fatalf("duplicate merge rejected: %v", err)
	}
}

func TestViewMergeReseal(t *testing.T) {
	v := NewView(4)
	if err := v.Merge(SealRecord{Node: 1, Neighbors: ids(2, 3)}); err != nil {
		t.Fatal(err)
	}
	err := v.Merge(SealRecord{Node: 1, Neighbors: ids(2, 4)})
	if !errors.Is(err, ErrInconsistent) {
		t.Fatalf("reseal with different set accepted: %v", err)
	}
}

func TestViewMergeDegreeBound(t *testing.T) {
	v := NewView(2)
	err := v.Merge(SealRecord{Node: 1, Neighbors: ids(2, 3, 4)})
	if !errors.Is(err, ErrInconsistent) {
		t.Fatalf("degree violation accepted: %v", err)
	}
}

func TestViewMergeSelfLoopAndParallel(t *testing.T) {
	v := NewView(4)
	if err := v.Merge(SealRecord{Node: 1, Neighbors: ids(1, 2)}); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("self-loop accepted: %v", err)
	}
	if err := v.Merge(SealRecord{Node: 1, Neighbors: ids(2, 2)}); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("parallel edge accepted: %v", err)
	}
}

func TestViewMergeCrossSealForward(t *testing.T) {
	// 1 seals claiming edge to 2; 2 then seals WITHOUT 1 -> inconsistent.
	v := NewView(4)
	if err := v.Merge(SealRecord{Node: 1, Neighbors: ids(2)}); err != nil {
		t.Fatal(err)
	}
	err := v.Merge(SealRecord{Node: 2, Neighbors: ids(3)})
	if !errors.Is(err, ErrInconsistent) {
		t.Fatalf("edge denial accepted: %v", err)
	}
}

func TestViewMergeCrossSealReverse(t *testing.T) {
	// 2 seals without 1; 1 then claims an edge to 2 -> inconsistent.
	v := NewView(4)
	if err := v.Merge(SealRecord{Node: 2, Neighbors: ids(3)}); err != nil {
		t.Fatal(err)
	}
	if err := v.Merge(SealRecord{Node: 3, Neighbors: ids(2)}); err != nil {
		t.Fatalf("consistent closure rejected: %v", err)
	}
	err := v.Merge(SealRecord{Node: 1, Neighbors: ids(2)})
	if !errors.Is(err, ErrInconsistent) {
		t.Fatalf("unclaimed edge accepted: %v", err)
	}
}

func TestViewBallLayers(t *testing.T) {
	// Path 1-2-3-4, all sealed.
	v := NewView(4)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(v.Merge(SealRecord{Node: 1, Neighbors: ids(2)}))
	must(v.Merge(SealRecord{Node: 2, Neighbors: ids(1, 3)}))
	must(v.Merge(SealRecord{Node: 3, Neighbors: ids(2, 4)}))
	must(v.Merge(SealRecord{Node: 4, Neighbors: ids(3)}))
	layers := v.BallLayers(1)
	if len(layers) != 4 {
		t.Fatalf("layers = %v", layers)
	}
	if len(layers[0]) != 1 || len(layers[1]) != 1 || len(layers[2]) != 1 || len(layers[3]) != 1 {
		t.Errorf("layer sizes wrong: %v", layers)
	}
	// Unknown center yields a singleton layer.
	if l := v.BallLayers(99); len(l) != 1 || len(l[0]) != 1 {
		t.Errorf("unknown center layers = %v", l)
	}
}

func TestExpansionChecksGrowingBall(t *testing.T) {
	// A star's center: ball(0)={c}, layer1 = leaves: expansion fine.
	v := NewView(10)
	if err := v.Merge(SealRecord{Node: 1, Neighbors: ids(2, 3, 4, 5)}); err != nil {
		t.Fatal(err)
	}
	if !v.ExpansionChecks(1, 0.5) {
		t.Error("growing view failed expansion check")
	}
}

func TestExpansionChecksSaturated(t *testing.T) {
	// A fully sealed triangle has an empty frontier: the full-set check
	// must fail for any positive alpha.
	v := NewView(4)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(v.Merge(SealRecord{Node: 1, Neighbors: ids(2, 3)}))
	must(v.Merge(SealRecord{Node: 2, Neighbors: ids(1, 3)}))
	must(v.Merge(SealRecord{Node: 3, Neighbors: ids(1, 2)}))
	if v.ExpansionChecks(1, 0.1) {
		t.Error("saturated view passed expansion check")
	}
}

func TestSweepCheckTooSmall(t *testing.T) {
	v := NewView(4)
	if err := v.Merge(SealRecord{Node: 1, Neighbors: ids(2)}); err != nil {
		t.Fatal(err)
	}
	if !v.SweepCheck(0.3, 40, xrand.New(1)) {
		t.Error("tiny view should pass sweep trivially")
	}
}

func TestSweepCheckExpanderPasses(t *testing.T) {
	// Seal a healthy expander fully... but leave an unsealed frontier so
	// the "whole set" prefix has outward expansion. Build a 3-regular-ish
	// circulant with chords and one extra frontier node per vertex.
	v := NewView(8)
	const n = 24
	nbr := func(i int) []sim.NodeID {
		return ids(
			uint64((i+1)%n+1),
			uint64((i+n-1)%n+1),
			uint64((i+5)%n+1),
			uint64((i+n-5)%n+1),
			uint64(100+i), // private unsealed frontier node
		)
	}
	for i := 0; i < n; i++ {
		if err := v.Merge(SealRecord{Node: sim.NodeID(i + 1), Neighbors: nbr(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if !v.SweepCheck(0.2, 60, xrand.New(2)) {
		t.Error("expander view failed sweep check")
	}
}

func TestSweepCheckDetectsBottleneck(t *testing.T) {
	// Two sealed cliques joined by a single edge, no unsealed frontier:
	// the sweep must find the sparse cut.
	v := NewView(16)
	clique := func(base uint64, size int, extra sim.NodeID) {
		for i := 0; i < size; i++ {
			var nbrs []sim.NodeID
			for j := 0; j < size; j++ {
				if j != i {
					nbrs = append(nbrs, sim.NodeID(base+uint64(j)))
				}
			}
			if i == 0 && extra != 0 {
				nbrs = append(nbrs, extra)
			}
			if err := v.Merge(SealRecord{Node: sim.NodeID(base + uint64(i)), Neighbors: nbrs}); err != nil {
				t.Fatal(err)
			}
		}
	}
	clique(100, 12, 200) // clique A, node 100 links to node 200
	clique(200, 12, 100) // clique B, node 200 links to node 100
	if v.SweepCheck(0.3, 80, xrand.New(3)) {
		t.Error("sweep failed to detect the two-clique bottleneck")
	}
}

func TestLocalDeltaSizeBits(t *testing.T) {
	d := LocalDelta{Seals: []SealRecord{{Node: 1, Neighbors: ids(2, 3)}}}
	want := 16 + 16 + 64*3
	if d.SizeBits() != want {
		t.Errorf("SizeBits = %d, want %d", d.SizeBits(), want)
	}
	empty := LocalDelta{}
	if empty.SizeBits() != 16 {
		t.Errorf("empty SizeBits = %d", empty.SizeBits())
	}
}

func TestContainsID(t *testing.T) {
	s := ids(2, 4, 6, 8)
	for _, x := range []uint64{2, 4, 6, 8} {
		if !containsID(s, sim.NodeID(x)) {
			t.Errorf("containsID missed %d", x)
		}
	}
	for _, x := range []uint64{1, 3, 9} {
		if containsID(s, sim.NodeID(x)) {
			t.Errorf("containsID false positive %d", x)
		}
	}
	if containsID(nil, 1) {
		t.Error("empty containsID")
	}
}
