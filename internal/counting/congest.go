package counting

import (
	"byzcount/internal/sim"
)

// Beacon is the beacon message of Algorithm 2: an origin ID plus the path
// field listing the forwarders the message visited. Honest receivers
// append the engine-stamped sender ID before forwarding, so the suffix of
// the path written by honest nodes is always truthful; only prefixes that
// passed through Byzantine nodes can be bogus (Section 5, "Beacon
// Messages and Path Fields").
type Beacon struct {
	Origin sim.NodeID
	Path   []sim.NodeID
}

// SizeBits counts the origin, the path IDs, and a small tag. A beacon is
// a "small-sized message" as long as its path stays O(log n) long.
func (b Beacon) SizeBits() int { return 16 + 64 + 64*len(b.Path) }

// Continue is the keep-going signal broadcast by undecided nodes at the
// end of each iteration and forwarded for i+3 rounds (line 35).
type Continue struct{}

// SizeBits is the constant tag size of a continue message.
func (Continue) SizeBits() int { return 16 }

// CongestParams configures Algorithm 2.
type CongestParams struct {
	// Schedule fixes the phase structure (start phase c, gamma).
	Schedule Schedule
	// C1 is the activation constant of line 5.
	C1 float64
	// Epsilon is the blacklist-suffix parameter of equation (3); see
	// DeriveEpsilon.
	Epsilon float64
	// MaxPhase forces a decision once the phase counter exceeds it — a
	// safety net for adversaries that would otherwise inflate the phase
	// counter without bound in a finite simulation. 0 disables it.
	MaxPhase int
	// DisableBlacklist turns off lines 20-21 and 31-32 for the E7
	// ablation: shortestPath accepts any beacon and nothing is ever
	// blacklisted.
	DisableBlacklist bool
	// UpdateOnReentry, when set, lets a decided node that is reactivated
	// by continue messages raise its recorded estimate to the phase at
	// which it finally exits (one reading of line 44). The default keeps
	// the first decision, matching the irrevocability of Definition 2.
	UpdateOnReentry bool
}

// DefaultCongestParams returns the parameter set used across the
// experiments: gamma = 0.55 (so tolerated Byzantine count is n^0.45,
// consistent with B(n) = n^(1/2-xi)), delta = 0.1, c = 2, c1 = 4.
func DefaultCongestParams(d int) CongestParams {
	gamma := 0.55
	return CongestParams{
		Schedule: Schedule{StartPhase: 2, Gamma: gamma},
		C1:       4,
		Epsilon:  DeriveEpsilon(gamma, 0.1, d),
		MaxPhase: 30,
	}
}

// CongestProc is the per-node process of Algorithm 2. Create one per
// honest vertex with NewCongestProc.
type CongestProc struct {
	params  CongestParams
	locator Locator

	decided  bool
	estimate int
	decRound int
	exited   bool

	lastPhase int // phase of the previous step, to reset blacklists
	lastIter  int // iteration of the previous step, to reset per-iteration state

	blacklist map[sim.NodeID]struct{}

	spSet bool
	sp    []sim.NodeID

	receivedContinue     bool
	forwardedContinue    bool
	pendingContinueFwd   bool
	pendingBeaconForward *Beacon
}

var _ Estimator = (*CongestProc)(nil)

// NewCongestProc returns a fresh process with the given parameters.
func NewCongestProc(params CongestParams) *CongestProc {
	return &CongestProc{
		params:    params,
		locator:   NewLocator(params.Schedule),
		lastPhase: -1,
		lastIter:  -1,
		blacklist: make(map[sim.NodeID]struct{}),
	}
}

// Outcome reports the node's decision state.
func (c *CongestProc) Outcome() Outcome {
	return Outcome{Decided: c.decided, Estimate: c.estimate, Round: c.decRound, Exited: c.exited}
}

// Halted reports whether the node exited the protocol for good.
func (c *CongestProc) Halted() bool { return c.exited }

// Step advances the node by one synchronous round.
func (c *CongestProc) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	loc := c.locator.Locate(round)
	i := loc.Phase
	suffix := BlacklistSuffix(i, c.params.Epsilon)

	// Phase transition: reset the phase blacklist (line 2).
	if i != c.lastPhase {
		c.lastPhase = i
		clear(c.blacklist)
	}
	// Iteration transition: reset shortestPath (line 4).
	if loc.Iteration != c.lastIter || loc.Offset == 0 {
		if loc.Offset == 0 {
			c.lastIter = loc.Iteration
			c.spSet = false
			c.sp = nil
			c.pendingBeaconForward = nil
		}
	}

	// out is the env's reusable scratch buffer: building the round's
	// output appends into it and allocates nothing once warm.
	out := env.Scratch()

	beaconWindowEnd := i + 2 // offsets 0..i+1 send beacons; receipt through i+2

	switch {
	case loc.Offset == 0:
		// Line 5: become active with probability c1*i/d^i.
		if c.params.MaxPhase > 0 && i > c.params.MaxPhase && !c.decided {
			c.decide(i, round)
			break
		}
		p := ActivationProbability(c.params.C1, i, env.Degree)
		if env.Rand().Bernoulli(p) {
			c.spSet = true
			c.sp = []sim.NodeID{env.ID}
			out = env.AppendBroadcast(out, Beacon{Origin: env.ID})
		}

	case loc.Offset <= beaconWindowEnd:
		// Beacon receive window. Pick one beacon (line 14), append the
		// true sender ID (line 16), maybe accept it (lines 20-25), and
		// forward it while transmission is still allowed (lines 17-19).
		if b, fromID, ok := firstBeacon(in); ok {
			path := make([]sim.NodeID, 0, len(b.Path)+1)
			path = append(path, b.Path...)
			path = append(path, fromID)
			fwd := Beacon{Origin: b.Origin, Path: path}
			if loc.Offset <= i+1 {
				out = env.AppendBroadcast(out, fwd)
			}
			if !c.spSet && c.acceptable(path, suffix) {
				c.spSet = true
				c.sp = path
			}
		}
		if loc.Offset == beaconWindowEnd {
			// Decision point (lines 28-30) and blacklist update (31-32).
			if !c.decided && !c.spSet {
				c.decide(i, round)
			}
			if c.spSet && !c.params.DisableBlacklist {
				for _, id := range prefixToBlacklist(c.sp, suffix) {
					c.blacklist[id] = struct{}{}
				}
			}
			// Continue window starts now: undecided nodes broadcast
			// continue (lines 34-36).
			c.receivedContinue = false
			c.forwardedContinue = false
			if !c.decided {
				out = env.AppendBroadcast(out, Continue{})
			}
		}

	default:
		// Continue window: offsets i+3 .. 2i+4.
		if hasContinue(in) {
			c.receivedContinue = true
			if !c.forwardedContinue && loc.Offset < 2*i+4 {
				c.forwardedContinue = true
				out = env.AppendBroadcast(out, Continue{})
			}
		}
		if loc.Offset == 2*i+4 {
			// End of iteration: a decided node that saw no continue exits
			// (lines 38-39); one that did stays in and, optionally,
			// updates its recorded value (line 44).
			if c.decided {
				if !c.receivedContinue {
					c.exited = true
					if c.params.UpdateOnReentry && i > c.estimate {
						c.estimate = i
					}
				}
			}
		}
	}
	return out
}

func (c *CongestProc) decide(i, round int) {
	c.decided = true
	c.estimate = i
	c.decRound = round
}

// acceptable implements the blacklist filter of lines 20-21: the path is
// accepted when the non-suffix part is disjoint from the blacklist.
func (c *CongestProc) acceptable(path []sim.NodeID, suffix int) bool {
	if c.params.DisableBlacklist {
		return true
	}
	for _, id := range prefixToBlacklist(path, suffix) {
		if _, bad := c.blacklist[id]; bad {
			return false
		}
	}
	return true
}

// prefixToBlacklist returns all path entries except the last `suffix`
// ones (the trusted near-suffix of lines 20 and 31).
func prefixToBlacklist(path []sim.NodeID, suffix int) []sim.NodeID {
	if len(path) <= suffix {
		return nil
	}
	return path[:len(path)-suffix]
}

// firstBeacon returns the first beacon in the inbox, matching line 14's
// "discards all but one arbitrarily chosen message". The engine delivers
// in deterministic vertex order, so runs stay reproducible.
func firstBeacon(in []sim.Incoming) (Beacon, sim.NodeID, bool) {
	for _, m := range in {
		if b, ok := m.Payload.(Beacon); ok {
			return b, m.FromID, true
		}
	}
	return Beacon{}, 0, false
}

func hasContinue(in []sim.Incoming) bool {
	for _, m := range in {
		if _, ok := m.Payload.(Continue); ok {
			return true
		}
	}
	return false
}
