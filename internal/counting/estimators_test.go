package counting

import (
	"math"
	"testing"

	"byzcount/internal/graph"
	"byzcount/internal/sim"
	"byzcount/internal/xrand"
)

func TestKMVBenignEstimatesN(t *testing.T) {
	const n, k = 512, 64
	rng := xrand.New(80)
	g, err := graph.HND(n, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	outcomes, procs := runProtocol(t, g, 81, func(v int) sim.Proc {
		return NewKMVProc(k, 16)
	}, 2000)
	for v, o := range outcomes {
		if !o.Decided {
			t.Fatalf("vertex %d undecided", v)
		}
	}
	est := procs[0].(*KMVProc).EstimateN()
	if est < float64(n)/2 || est > float64(n)*2 {
		t.Errorf("KMV estimate %g, want within 2x of %d", est, n)
	}
	// All nodes converge to the same sketch, hence the same estimate.
	for v := 1; v < n; v += 97 {
		if procs[v].(*KMVProc).EstimateN() != est {
			t.Errorf("vertex %d sketch differs", v)
		}
	}
}

func TestKMVInsert(t *testing.T) {
	p := NewKMVProc(3, 1)
	for _, h := range []uint64{50, 10, 90, 10, 70} {
		p.insert(h)
	}
	// Sketch keeps the 3 smallest distinct: 10, 50, 70.
	if len(p.mins) != 3 || p.mins[0] != 10 || p.mins[1] != 50 || p.mins[2] != 70 {
		t.Fatalf("sketch = %v", p.mins)
	}
	if p.insert(100) {
		t.Error("inserting a too-large value reported a change")
	}
	if !p.insert(5) {
		t.Error("inserting a new minimum reported no change")
	}
	if p.mins[0] != 5 || p.mins[2] != 50 {
		t.Fatalf("sketch after min insert = %v", p.mins)
	}
}

func TestKMVEstimateBeforeFill(t *testing.T) {
	p := NewKMVProc(8, 1)
	if !math.IsInf(p.EstimateN(), 1) {
		t.Error("estimate before fill should be +Inf")
	}
	if o := p.Outcome(); o.Estimate != 0 {
		t.Errorf("outcome estimate = %d", o.Estimate)
	}
}

func TestKMVParamsClamped(t *testing.T) {
	p := NewKMVProc(0, 0)
	if p.k != 2 || p.quietRounds != 1 {
		t.Errorf("params k=%d q=%d", p.k, p.quietRounds)
	}
}

// kmvPoisoner floods tiny hash values — the birthday-estimator attack.
type kmvPoisoner struct{ k int }

func (p *kmvPoisoner) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	if round%4 != 0 {
		return nil
	}
	mins := make([]uint64, p.k)
	for i := range mins {
		mins[i] = uint64(i + 1)
	}
	return env.Broadcast(KMVHash{Mins: mins})
}
func (p *kmvPoisoner) Halted() bool { return false }

func TestKMVSingleByzantineDestroysEstimate(t *testing.T) {
	const n, k = 256, 32
	rng := xrand.New(82)
	g, err := graph.HND(n, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	_, procs := runProtocol(t, g, 83, func(v int) sim.Proc {
		if v == 0 {
			return &kmvPoisoner{k: k}
		}
		return NewKMVProc(k, 16)
	}, 2000)
	est := procs[1].(*KMVProc).EstimateN()
	if est < 1e12 {
		t.Fatalf("poisoned KMV estimate %g should be astronomically inflated", est)
	}
}

func TestReturnWalkBenign(t *testing.T) {
	const n = 64
	rng := xrand.New(84)
	g, err := graph.HND(n, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	outcomes, procs := runProtocol(t, g, 85, func(v int) sim.Proc {
		return NewReturnWalkProc(4, 64*n)
	}, 200*n)
	decided := 0
	var logSum float64
	for v, o := range outcomes {
		if o.Decided {
			decided++
			logSum += float64(o.Estimate)
		}
		_ = v
	}
	if decided < n*9/10 {
		t.Fatalf("only %d/%d decided", decided, n)
	}
	meanLog := logSum / float64(decided)
	// E[return time] = n exactly; the empirical mean of 4 samples on the
	// log2 scale is noisy but must land within a couple of units of
	// log2(n) = 6.
	if meanLog < Log2(n)-2.5 || meanLog > Log2(n)+2.5 {
		t.Errorf("mean log-estimate %g, want near %g", meanLog, Log2(n))
	}
	if procs[0].(*ReturnWalkProc).launched == 0 {
		t.Error("no walks launched")
	}
}

// absorber swallows every token: the Byzantine attack the paper points
// out ("long random walks have a high chance of encountering a Byzantine
// node").
type absorber struct{}

func (absorber) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing { return nil }
func (absorber) Halted() bool                                                   { return false }

func TestReturnWalkByzantineSkews(t *testing.T) {
	const n = 64
	rng := xrand.New(86)
	g, err := graph.HND(n, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	const nByz = 4
	outcomes, _ := runProtocol(t, g, 87, func(v int) sim.Proc {
		if v < nByz {
			return absorber{}
		}
		return NewReturnWalkProc(4, 64*n)
	}, 200*n)
	honest := make([]bool, n)
	for v := nByz; v < n; v++ {
		honest[v] = true
	}
	// Long walks die in the absorbers, so either nodes fail to collect
	// their samples (undecided) or only short returns survive (biased
	// low). Both are failures of the estimator.
	undecided := 0
	biased := 0
	for v, o := range outcomes {
		if !honest[v] {
			continue
		}
		if !o.Decided {
			undecided++
		} else if float64(o.Estimate) < Log2(n)-1 {
			biased++
		}
	}
	if undecided+biased < (n-nByz)/3 {
		t.Errorf("absorbers barely affected the estimator: undecided=%d biased=%d", undecided, biased)
	}
}

func TestReturnWalkParamsClamped(t *testing.T) {
	p := NewReturnWalkProc(0, 0)
	if p.samples != 1 || p.maxSteps != 4 {
		t.Errorf("params = %d %d", p.samples, p.maxSteps)
	}
	if !math.IsNaN(p.MeanReturnTime()) {
		t.Error("mean before returns should be NaN")
	}
}

func TestWalkTokenAndKMVSizes(t *testing.T) {
	if (WalkToken{}).SizeBits() != 112 {
		t.Errorf("WalkToken size %d", (WalkToken{}).SizeBits())
	}
	if (KMVHash{Mins: make([]uint64, 2)}).SizeBits() != 16+128 {
		t.Error("KMVHash size")
	}
}
