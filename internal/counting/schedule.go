package counting

import "math"

// Schedule maps the global synchronized round counter to Algorithm 2's
// (phase, iteration, offset) coordinates. Because the network is
// synchronous and all nodes start at round 0 (Section 2), every node can
// derive the current coordinates locally without communication.
//
// Phase i consists of Iterations(i) iterations of 2i+5 rounds each: i+2
// rounds of beacon transmission followed by i+3 rounds of continue
// transmission (Algorithm 2, line 3).
type Schedule struct {
	// StartPhase is the constant c of line 1; phases run c, c+1, ...
	StartPhase int
	// Gamma is the Byzantine-tolerance exponent: the number of iterations
	// of phase i is floor(e^((1-Gamma)*i)) + 1.
	Gamma float64
	// IterationCap, when positive, truncates the per-phase iteration count
	// (an engineering safety knob; 0 means the paper's exact count).
	IterationCap int
}

// Loc identifies a position within the phase structure.
type Loc struct {
	Phase     int // current phase i
	Iteration int // iteration j within the phase, 1-based
	Offset    int // round offset within the iteration, 0 .. 2*Phase+4
}

// IterationRounds returns the length in rounds of one iteration of
// phase i.
func IterationRounds(i int) int { return 2*i + 5 }

// Iterations returns the number of iterations in phase i:
// floor(e^((1-gamma)*i)) + 1, per line 3 of Algorithm 2.
func (s Schedule) Iterations(i int) int {
	n := int(math.Floor(math.Exp((1-s.Gamma)*float64(i)))) + 1
	if s.IterationCap > 0 && n > s.IterationCap {
		n = s.IterationCap
	}
	return n
}

// PhaseRounds returns the total number of rounds in phase i.
func (s Schedule) PhaseRounds(i int) int {
	return s.Iterations(i) * IterationRounds(i)
}

// Locate converts a global round number to phase coordinates.
func (s Schedule) Locate(round int) Loc {
	if round < 0 {
		panic("counting: negative round")
	}
	i := s.StartPhase
	for {
		pr := s.PhaseRounds(i)
		if round < pr {
			iterLen := IterationRounds(i)
			return Loc{
				Phase:     i,
				Iteration: round/iterLen + 1,
				Offset:    round % iterLen,
			}
		}
		round -= pr
		i++
	}
}

// Locator is an incremental Locate cache for the common access pattern —
// one Locate per round, rounds non-decreasing. It tracks the current
// phase's start round and length, so a lookup inside the same phase is
// pure integer arithmetic and the exp() of Iterations is evaluated once
// per phase transition instead of once per phase per call (the seed
// code's per-round Locate walked every phase from StartPhase, which made
// the schedule arithmetic a top cost of E3-scale CONGEST runs). A round
// before the cached phase resets the walk, so results are identical to
// Schedule.Locate for any access order.
type Locator struct {
	sched  Schedule
	init   bool
	phase  int // cached phase
	start  int // first round of the cached phase
	rounds int // PhaseRounds(phase)
}

// NewLocator returns a Locator for s.
func NewLocator(s Schedule) Locator { return Locator{sched: s} }

// Bind points the locator at s, resetting its cache if s differs from
// the schedule it was built for. Holders whose schedule lives in an
// exported, reassignable field (e.g. byzantine.BeaconSpammer) call this
// before Locate so a struct-literal construction or a field rewrite
// never runs on a stale (or zero-value) schedule.
func (l *Locator) Bind(s Schedule) {
	if l.sched != s {
		*l = Locator{sched: s}
	}
}

// Locate converts a global round number to phase coordinates; it returns
// exactly what l.sched.Locate(round) would.
func (l *Locator) Locate(round int) Loc {
	if round < 0 {
		panic("counting: negative round")
	}
	if !l.init || round < l.start {
		l.init = true
		l.phase = l.sched.StartPhase
		l.start = 0
		l.rounds = l.sched.PhaseRounds(l.phase)
	}
	for round >= l.start+l.rounds {
		l.start += l.rounds
		l.phase++
		l.rounds = l.sched.PhaseRounds(l.phase)
	}
	rel := round - l.start
	iterLen := IterationRounds(l.phase)
	return Loc{
		Phase:     l.phase,
		Iteration: rel/iterLen + 1,
		Offset:    rel % iterLen,
	}
}

// RoundsThroughPhase returns the total number of rounds from round 0 up to
// and including the last round of phase `last`.
func (s Schedule) RoundsThroughPhase(last int) int {
	total := 0
	for i := s.StartPhase; i <= last; i++ {
		total += s.PhaseRounds(i)
	}
	return total
}

// BlacklistSuffix returns the length of the trusted path suffix in phase
// i (Algorithm 2, line 20): floor((1-epsilon)*i), but never less than 1.
// The floor of the paper's expression is 0 in the early phases at
// simulation scale, which would blacklist even the directly attached
// sender whose identity the synchronous model guarantees (a Byzantine
// node cannot fake its ID over an edge, Section 2). Trusting at least the
// final hop preserves the paper's invariant — only nodes at distance
// >= floor((1-eps)i) from the receiver are ever blacklisted — while
// keeping the small-n regime live.
func BlacklistSuffix(i int, epsilon float64) int {
	// The small additive fudge keeps exact products like 0.2*20 from
	// flooring to 3 due to binary rounding.
	s := int(math.Floor((1-epsilon)*float64(i) + 1e-9))
	if s < 1 {
		s = 1
	}
	return s
}

// DeriveEpsilon computes the epsilon of equation (3):
//
//	epsilon = 1 - (1-delta)*gamma/ln(d)
//
// chosen so that the trusted suffix floor((1-eps)*i) matches the
// guaranteed Byzantine-free radius (1-delta)*gamma*log_d(n) when the
// phase counter i reaches ln(n).
func DeriveEpsilon(gamma, delta float64, d int) float64 {
	if d < 2 {
		panic("counting: DeriveEpsilon requires d >= 2")
	}
	return 1 - (1-delta)*gamma/math.Log(float64(d))
}

// ActivationProbability returns c1*i/d^i, the per-iteration probability
// that a node of degree d becomes a beacon origin in phase i (line 5).
func ActivationProbability(c1 float64, i, d int) float64 {
	if i < 1 || d < 2 {
		return 0
	}
	p := c1 * float64(i) / math.Pow(float64(d), float64(i))
	if p > 1 {
		p = 1
	}
	return p
}
