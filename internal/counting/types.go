// Package counting implements the paper's two Byzantine counting
// algorithms and the baseline protocols they are motivated against:
//
//   - Local: the deterministic LOCAL-model algorithm of Section 4
//     (Algorithm 1) — expansion-checked neighborhood growth, O(log n)
//     rounds, tolerates n^(1-γ) Byzantine nodes on any bounded-degree
//     expander.
//   - Congest: the randomized small-message algorithm of Section 5
//     (Algorithm 2) — beacon generation, path fields, per-phase
//     blacklists, and continue messages on H(n,d) random regular graphs,
//     tolerating n^(1/2-ξ) Byzantine nodes in O(B(n)·log² n) rounds.
//   - Geometric / Support: the folklore size-estimation protocols of
//     Section 1.2 that collapse under a single Byzantine node.
//   - SpanningTree: exact counting by convergecast, the non-Byzantine
//     ground truth.
//
// All protocols are sim.Proc implementations; the expt package wires them
// together with adversaries from the byzantine package.
package counting

import (
	"math"

	"byzcount/internal/sim"
)

// Outcome records one node's final state after a run.
type Outcome struct {
	Decided  bool
	Estimate int // the decided estimate L_u (scale depends on the protocol)
	Round    int // round at which the decision was made
	Exited   bool
}

// Estimator is implemented by every honest counting process so the
// harness can read results uniformly.
type Estimator interface {
	sim.Proc
	Outcome() Outcome
}

// Outcomes collects the outcome of every vertex whose process implements
// Estimator; other vertices (e.g. Byzantine ones) yield a zero Outcome
// with Decided=false.
func Outcomes(procs []sim.Proc) []Outcome {
	out := make([]Outcome, len(procs))
	for v, p := range procs {
		if e, ok := p.(Estimator); ok {
			out[v] = e.Outcome()
		}
	}
	return out
}

// DecidedEstimates returns the estimates of decided honest vertices.
// honest[v] must be true for vertices controlled by the protocol.
func DecidedEstimates(outcomes []Outcome, honest []bool) []int {
	var vals []int
	for v, o := range outcomes {
		if honest[v] && o.Decided {
			vals = append(vals, o.Estimate)
		}
	}
	return vals
}

// DecidedFraction returns the fraction of honest vertices that decided.
func DecidedFraction(outcomes []Outcome, honest []bool) float64 {
	total, decided := 0, 0
	for v, o := range outcomes {
		if !honest[v] {
			continue
		}
		total++
		if o.Decided {
			decided++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(decided) / float64(total)
}

// FractionWithinFactor returns the fraction of honest decided estimates L
// with lo <= L <= hi, the "constant factor estimate" success criterion of
// Definition 2 instantiated with concrete bounds.
func FractionWithinFactor(outcomes []Outcome, honest []bool, lo, hi float64) float64 {
	total, ok := 0, 0
	for v, o := range outcomes {
		if !honest[v] {
			continue
		}
		total++
		if o.Decided && float64(o.Estimate) >= lo && float64(o.Estimate) <= hi {
			ok++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(ok) / float64(total)
}

// Log2 returns log base 2 of n as a float (0 for n < 1).
func Log2(n int) float64 {
	if n < 1 {
		return 0
	}
	return math.Log2(float64(n))
}

// LogD returns log base d of n (0 for degenerate inputs). Algorithm 2's
// phase counter converges around log_d n because the ball of radius i in
// an H(n,d) graph holds Θ(d^i) nodes.
func LogD(n, d int) float64 {
	if n < 1 || d < 2 {
		return 0
	}
	return math.Log(float64(n)) / math.Log(float64(d))
}
