package counting

import (
	"math"
	"testing"

	"byzcount/internal/graph"
	"byzcount/internal/sim"
	"byzcount/internal/xrand"
)

func runProtocol(t *testing.T, g *graph.Graph, seed uint64, mk func(v int) sim.Proc, maxRounds int) ([]Outcome, []sim.Proc) {
	t.Helper()
	eng := sim.New(g, sim.WithSeed(seed))
	procs := make([]sim.Proc, g.N())
	for v := range procs {
		procs[v] = mk(v)
	}
	if err := eng.Attach(procs); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(maxRounds); err != nil {
		t.Fatal(err)
	}
	return Outcomes(procs), procs
}

func TestGeometricBenignEstimatesLog2N(t *testing.T) {
	const n = 1024
	rng := xrand.New(1)
	g, err := graph.HND(n, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Average the global max over several seeds: E[max of n geometrics]
	// is ~log2(n) + O(1).
	sum := 0.0
	const trials = 5
	for trial := 0; trial < trials; trial++ {
		outcomes, _ := runProtocol(t, g, uint64(trial+2), func(v int) sim.Proc {
			return NewGeometricProc(16)
		}, 500)
		// All nodes agree on the flooded max.
		first := outcomes[0].Estimate
		for v, o := range outcomes {
			if !o.Decided {
				t.Fatalf("trial %d vertex %d undecided", trial, v)
			}
			if o.Estimate != first {
				t.Fatalf("trial %d: estimates disagree (%d vs %d)", trial, o.Estimate, first)
			}
		}
		sum += float64(first)
	}
	mean := sum / trials
	if mean < Log2(n)-3 || mean > Log2(n)+5 {
		t.Errorf("mean geometric max = %g, want near log2(%d) = %g", mean, n, Log2(n))
	}
}

// maxFaker floods an absurd maximum, the one-Byzantine attack of
// Section 1.2.
type maxFaker struct{ value, period int }

func (m *maxFaker) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	if round%max(1, m.period) == 0 {
		return env.Broadcast(GeoMax{Value: m.value})
	}
	return nil
}
func (m *maxFaker) Halted() bool { return false }

func TestGeometricSingleByzantineDestroysEstimate(t *testing.T) {
	const n = 256
	rng := xrand.New(3)
	g, err := graph.HND(n, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	const fake = 1 << 20
	outcomes, _ := runProtocol(t, g, 4, func(v int) sim.Proc {
		if v == 0 {
			return &maxFaker{value: fake, period: 1}
		}
		return NewGeometricProc(16)
	}, 2000)
	honest := allHonest(n)
	honest[0] = false
	for v, o := range outcomes {
		if !honest[v] {
			continue
		}
		if !o.Decided {
			t.Fatalf("vertex %d undecided", v)
		}
		if o.Estimate != fake {
			t.Errorf("vertex %d estimate %d; the fake max should have poisoned it", v, o.Estimate)
		}
	}
}

func TestSupportBenignEstimatesN(t *testing.T) {
	const n = 512
	rng := xrand.New(5)
	g, err := graph.HND(n, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	outcomes, procs := runProtocol(t, g, 6, func(v int) sim.Proc {
		return NewSupportProc(64, 16)
	}, 1000)
	for v, o := range outcomes {
		if !o.Decided {
			t.Fatalf("vertex %d undecided", v)
		}
	}
	est := procs[0].(*SupportProc).EstimateN()
	if est < float64(n)/2 || est > float64(n)*2 {
		t.Errorf("support estimate %g, want within 2x of %d", est, n)
	}
	// Log-scale outcome agrees.
	if o := outcomes[0]; math.Abs(float64(o.Estimate)-Log2(n)) > 2 {
		t.Errorf("log-scale estimate %d, want near %g", o.Estimate, Log2(n))
	}
}

// minFaker floods near-zero minima to inflate the support estimate.
type minFaker struct{ k int }

func (m *minFaker) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	if round%4 == 0 {
		mins := make([]float64, m.k)
		for i := range mins {
			mins[i] = 1e-12
		}
		return env.Broadcast(SupportMin{Mins: mins})
	}
	return nil
}
func (m *minFaker) Halted() bool { return false }

func TestSupportSingleByzantineDestroysEstimate(t *testing.T) {
	const n = 256
	rng := xrand.New(7)
	g, err := graph.HND(n, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	const k = 32
	outcomes, procs := runProtocol(t, g, 8, func(v int) sim.Proc {
		if v == 0 {
			return &minFaker{k: k}
		}
		return NewSupportProc(k, 16)
	}, 2000)
	_ = outcomes
	est := procs[1].(*SupportProc).EstimateN()
	if est < float64(n)*100 {
		t.Errorf("faked support estimate %g; want inflated far beyond n=%d", est, n)
	}
}

func TestTreeCountExact(t *testing.T) {
	for _, n := range []int{16, 100, 333} {
		rng := xrand.New(uint64(n))
		g, err := graph.HND(n, 4, rng)
		if err != nil {
			t.Fatal(err)
		}
		outcomes, _ := runProtocol(t, g, uint64(n)+1, func(v int) sim.Proc {
			return NewTreeCountProc(v == 0)
		}, 10*n)
		for v, o := range outcomes {
			if !o.Decided {
				t.Fatalf("n=%d: vertex %d undecided", n, v)
			}
			if o.Estimate != n {
				t.Fatalf("n=%d: vertex %d counted %d", n, v, o.Estimate)
			}
		}
	}
}

func TestTreeCountOnPath(t *testing.T) {
	g, err := graph.Path(17)
	if err != nil {
		t.Fatal(err)
	}
	outcomes, _ := runProtocol(t, g, 2, func(v int) sim.Proc {
		return NewTreeCountProc(v == 8) // root mid-path
	}, 300)
	for v, o := range outcomes {
		if !o.Decided || o.Estimate != 17 {
			t.Fatalf("vertex %d outcome %+v", v, o)
		}
	}
}

func TestGeometricQuietRoundsClamped(t *testing.T) {
	p := NewGeometricProc(0)
	if p.quietRounds != 1 {
		t.Errorf("quietRounds = %d", p.quietRounds)
	}
}

func TestSupportParamsClamped(t *testing.T) {
	p := NewSupportProc(1, 0)
	if p.k != 2 || p.quietRounds != 1 {
		t.Errorf("params = k%d q%d", p.k, p.quietRounds)
	}
}

func TestSupportEstimateNEmpty(t *testing.T) {
	p := NewSupportProc(8, 4)
	if !math.IsInf(p.EstimateN(), 1) {
		t.Error("estimate before drawing should be +Inf")
	}
	if o := p.Outcome(); o.Estimate != 0 {
		t.Errorf("outcome estimate = %d", o.Estimate)
	}
}

func TestPayloadSizes(t *testing.T) {
	if (GeoMax{}).SizeBits() != 48 {
		t.Error("GeoMax size")
	}
	if (SupportMin{Mins: make([]float64, 4)}).SizeBits() != 16+256 {
		t.Error("SupportMin size")
	}
	if (TreeJoin{}).SizeBits() != 48 || (TreeParent{}).SizeBits() != 80 ||
		(TreeCount{}).SizeBits() != 48 || (TreeTotal{}).SizeBits() != 48 {
		t.Error("tree payload sizes")
	}
}
