package counting

import (
	"math"

	"byzcount/internal/sim"
)

// This file implements the baseline size-estimation protocols the paper
// motivates against (Section 1.2):
//
//   - GeometricProc: every node flips a fair coin until heads and floods
//     the maximum flip count; the global maximum is Θ(log n) whp. Exact
//     in the benign case, destroyed by a single Byzantine node that fakes
//     a huge value.
//   - SupportProc: support estimation via exponential minima ([7,5]):
//     every node draws k exponential variates and the network floods the
//     coordinate-wise minimum; n is estimated from the sum of minima.
//     Equally fragile: faking tiny minima inflates the estimate
//     arbitrarily.
//   - TreeCountProc: exact counting by BFS-tree convergecast from a root
//     — the "simply building a spanning tree" ground truth that requires
//     a benign network and a designated leader.

// GeoMax is the flooded payload of the geometric protocol.
type GeoMax struct {
	Value int
}

// SizeBits is a small constant: the value is O(log log n) bits whp, padded
// to a fixed field.
func (GeoMax) SizeBits() int { return 16 + 32 }

// GeometricProc floods the maximum geometric sample. After the value
// stabilizes for quietRounds rounds the node decides on the maximum seen,
// which is a (log2 n)-estimate in the benign case.
type GeometricProc struct {
	quietRounds int
	best        int
	quiet       int
	drawn       bool
	decided     bool
	decRound    int
}

var _ Estimator = (*GeometricProc)(nil)

// NewGeometricProc returns a process that decides after quietRounds
// rounds without improvement (use >= diameter for exactness; any
// Θ(log n) bound works at our scales).
func NewGeometricProc(quietRounds int) *GeometricProc {
	if quietRounds < 1 {
		quietRounds = 1
	}
	return &GeometricProc{quietRounds: quietRounds}
}

// Outcome reports the decided estimate (the maximum sample seen).
func (p *GeometricProc) Outcome() Outcome {
	return Outcome{Decided: p.decided, Estimate: p.best, Round: p.decRound, Exited: p.decided}
}

// Halted reports protocol termination.
func (p *GeometricProc) Halted() bool { return p.decided }

// Step floods improvements to the running maximum.
func (p *GeometricProc) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	if !p.drawn {
		p.drawn = true
		p.best = env.Rand().Geometric()
		return env.Broadcast(GeoMax{Value: p.best})
	}
	improved := false
	for _, m := range in {
		if g, ok := m.Payload.(GeoMax); ok && g.Value > p.best {
			p.best = g.Value
			improved = true
		}
	}
	if improved {
		p.quiet = 0
		return env.Broadcast(GeoMax{Value: p.best})
	}
	p.quiet++
	if p.quiet >= p.quietRounds {
		p.decided = true
		p.decRound = round
	}
	return nil
}

// SupportMin is the flooded payload of the support-estimation protocol:
// the coordinate-wise minima of k exponential draws.
type SupportMin struct {
	Mins []float64
}

// SizeBits counts 64 bits per coordinate.
func (s SupportMin) SizeBits() int { return 16 + 64*len(s.Mins) }

// SupportProc implements support estimation. The decided Estimate is
// round(log2(n-hat)) where n-hat = (k-1)/sum(mins), making it directly
// comparable with the other protocols' log-scale estimates.
type SupportProc struct {
	k           int
	quietRounds int
	mins        []float64
	quiet       int
	drawn       bool
	decided     bool
	decRound    int
}

var _ Estimator = (*SupportProc)(nil)

// NewSupportProc returns a support-estimation process with k parallel
// exponential coordinates.
func NewSupportProc(k, quietRounds int) *SupportProc {
	if k < 2 {
		k = 2
	}
	if quietRounds < 1 {
		quietRounds = 1
	}
	return &SupportProc{k: k, quietRounds: quietRounds}
}

// EstimateN returns the size estimate (k-1)/sum(mins), the unbiased
// estimator of n from the minima of n-fold exponential samples.
func (p *SupportProc) EstimateN() float64 {
	sum := 0.0
	for _, m := range p.mins {
		sum += m
	}
	if sum <= 0 {
		return math.Inf(1)
	}
	return float64(p.k-1) / sum
}

// Outcome reports round(log2(n-hat)).
func (p *SupportProc) Outcome() Outcome {
	est := 0
	if n := p.EstimateN(); !math.IsInf(n, 1) && n >= 1 {
		est = int(math.Round(math.Log2(n)))
	}
	return Outcome{Decided: p.decided, Estimate: est, Round: p.decRound, Exited: p.decided}
}

// Halted reports protocol termination.
func (p *SupportProc) Halted() bool { return p.decided }

// Step floods coordinate-wise minima improvements.
func (p *SupportProc) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	if !p.drawn {
		p.drawn = true
		p.mins = make([]float64, p.k)
		for i := range p.mins {
			p.mins[i] = env.Rand().Exponential(1)
		}
		return env.Broadcast(SupportMin{Mins: append([]float64(nil), p.mins...)})
	}
	improved := false
	for _, m := range in {
		s, ok := m.Payload.(SupportMin)
		if !ok || len(s.Mins) != p.k {
			continue
		}
		for i, x := range s.Mins {
			if x < p.mins[i] {
				p.mins[i] = x
				improved = true
			}
		}
	}
	if improved {
		p.quiet = 0
		return env.Broadcast(SupportMin{Mins: append([]float64(nil), p.mins...)})
	}
	p.quiet++
	if p.quiet >= p.quietRounds {
		p.decided = true
		p.decRound = round
	}
	return nil
}

// Tree-counting payloads.

// TreeJoin is flooded from the root to build the BFS tree; Depth is the
// sender's tree depth.
type TreeJoin struct{ Depth int }

// SizeBits is a constant-size header plus the depth field.
func (TreeJoin) SizeBits() int { return 16 + 32 }

// TreeParent announces which neighbor the sender chose as its parent.
type TreeParent struct{ Parent sim.NodeID }

// SizeBits counts the parent ID.
func (TreeParent) SizeBits() int { return 16 + 64 }

// TreeCount carries a subtree count up toward the root.
type TreeCount struct{ Count int }

// SizeBits is a constant-size header plus the count field.
func (TreeCount) SizeBits() int { return 16 + 32 }

// TreeTotal floods the final count down from the root.
type TreeTotal struct{ Total int }

// SizeBits is a constant-size header plus the total field.
func (TreeTotal) SizeBits() int { return 16 + 32 }

// TreeCountProc counts the network exactly by convergecast on a BFS tree
// rooted at the designated root vertex. It assumes no Byzantine nodes and
// an externally chosen leader — the two assumptions the paper shows are
// unavailable in its setting. The decided Estimate is the exact n.
type TreeCountProc struct {
	isRoot bool

	joined     bool
	depth      int
	parent     sim.NodeID
	hasParent  bool
	children   map[sim.NodeID]bool
	childCount map[sim.NodeID]int
	childDone  int
	sentCount  bool
	total      int
	decided    bool
	decRound   int
	// childDeadline is the round after which a node with no announced
	// children knows it is a leaf (parent announcements take two rounds
	// after the join wave passes).
	childDeadline int
}

var _ Estimator = (*TreeCountProc)(nil)

// NewTreeCountProc returns a tree-counting process; exactly one vertex in
// the network must be constructed with isRoot=true.
func NewTreeCountProc(isRoot bool) *TreeCountProc {
	return &TreeCountProc{
		isRoot:     isRoot,
		children:   make(map[sim.NodeID]bool),
		childCount: make(map[sim.NodeID]int),
	}
}

// Outcome reports the exact count (only meaningful once decided).
func (p *TreeCountProc) Outcome() Outcome {
	return Outcome{Decided: p.decided, Estimate: p.total, Round: p.decRound, Exited: p.decided}
}

// Halted reports whether the final total has been learned.
func (p *TreeCountProc) Halted() bool { return p.decided }

// Step implements the three waves: join flood, parent announcements +
// count convergecast, and total flood.
func (p *TreeCountProc) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	out := env.Scratch()

	if p.isRoot && !p.joined {
		p.joined = true
		p.depth = 0
		p.childDeadline = round + 2
		out = env.AppendBroadcast(out, TreeJoin{Depth: 0})
	}

	for _, m := range in {
		switch msg := m.Payload.(type) {
		case TreeJoin:
			if !p.joined {
				p.joined = true
				p.depth = msg.Depth + 1
				p.parent = m.FromID
				p.hasParent = true
				p.childDeadline = round + 2
				out = env.AppendBroadcast(out, TreeJoin{Depth: p.depth})
				out = env.AppendBroadcast(out, TreeParent{Parent: m.FromID})
			}
		case TreeParent:
			if msg.Parent == env.ID {
				p.children[m.FromID] = true
			}
		case TreeCount:
			if p.children[m.FromID] {
				p.childCount[m.FromID] = msg.Count
			}
		case TreeTotal:
			if !p.decided {
				p.total = msg.Total
				p.decided = true
				p.decRound = round
				out = env.AppendBroadcast(out, msg)
			}
		}
	}

	// Convergecast: once all children reported (or the deadline passed
	// with no children), send the subtree count to the parent.
	if p.joined && !p.sentCount && round >= p.childDeadline && len(p.childCount) == len(p.children) {
		sum := 1
		for _, c := range p.childCount {
			sum += c
		}
		p.sentCount = true
		if p.hasParent {
			// Unicast to the parent: find its vertex among neighbors.
			for k, id := range env.NeighborIDs {
				if id == p.parent {
					out = append(out, sim.Outgoing{To: env.Neighbors[k], Payload: TreeCount{Count: sum}})
					break
				}
			}
		} else if p.isRoot && !p.decided {
			p.total = sum
			p.decided = true
			p.decRound = round
			out = env.AppendBroadcast(out, TreeTotal{Total: sum})
		}
	}
	return out
}
