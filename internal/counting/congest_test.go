package counting

import (
	"math"
	"testing"

	"byzcount/internal/graph"
	"byzcount/internal/sim"
	"byzcount/internal/xrand"
)

// runCongestBenign wires a CongestProc onto every vertex of an H(n,d)
// graph and runs until all nodes exit (or maxRounds).
func runCongestBenign(t *testing.T, n, d int, seed uint64) ([]Outcome, *sim.Engine, int) {
	t.Helper()
	rng := xrand.New(seed)
	g, err := graph.HND(n, d, rng)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New(g, sim.WithSeed(seed+1))
	params := DefaultCongestParams(d)
	procs := make([]sim.Proc, n)
	for v := range procs {
		procs[v] = NewCongestProc(params)
	}
	if err := eng.Attach(procs); err != nil {
		t.Fatal(err)
	}
	maxRounds := params.Schedule.RoundsThroughPhase(params.MaxPhase + 1)
	rounds, err := eng.Run(maxRounds)
	if err != nil {
		t.Fatal(err)
	}
	return Outcomes(procs), eng, rounds
}

func allHonest(n int) []bool {
	h := make([]bool, n)
	for i := range h {
		h[i] = true
	}
	return h
}

func TestCongestBenignAllDecide(t *testing.T) {
	const n, d = 256, 8
	outcomes, _, rounds := runCongestBenign(t, n, d, 1)
	honest := allHonest(n)
	if frac := DecidedFraction(outcomes, honest); frac != 1 {
		t.Fatalf("decided fraction = %g, want 1", frac)
	}
	// Corollary 1: the benign run terminates quickly (O(log n) phases
	// means few hundred rounds at this scale, far below the Byzantine
	// bound of O(B log^2 n)).
	if rounds > 2000 {
		t.Errorf("benign run took %d rounds", rounds)
	}
}

func TestCongestBenignEstimateScalesWithN(t *testing.T) {
	// The point of the protocol: bigger networks yield bigger estimates.
	mean := func(n int, seed uint64) float64 {
		outcomes, _, _ := runCongestBenign(t, n, 8, seed)
		vals := DecidedEstimates(outcomes, allHonest(n))
		sum := 0.0
		for _, v := range vals {
			sum += float64(v)
		}
		return sum / float64(len(vals))
	}
	small := mean(64, 2)
	large := mean(1024, 3)
	if large <= small {
		t.Errorf("estimate did not grow with n: mean(64)=%g mean(1024)=%g", small, large)
	}
}

func TestCongestBenignEstimateNearLogDN(t *testing.T) {
	const n, d = 512, 8
	outcomes, _, _ := runCongestBenign(t, n, d, 4)
	honest := allHonest(n)
	logd := LogD(n, d) // = 3
	// Most nodes should land within a constant factor of log_d n; at this
	// scale the algorithm decides within [logd, 3*logd] (the start phase
	// and beacon decay set the constants).
	frac := FractionWithinFactor(outcomes, honest, logd*0.5, logd*3+2)
	if frac < 0.9 {
		t.Errorf("only %g of nodes within factor bounds of log_d n = %g", frac, logd)
	}
}

func TestCongestBenignMostNodesAgreeWithinOne(t *testing.T) {
	const n, d = 256, 8
	outcomes, _, _ := runCongestBenign(t, n, d, 5)
	counts := map[int]int{}
	for _, o := range outcomes {
		if o.Decided {
			counts[o.Estimate]++
		}
	}
	best, bestCount := 0, 0
	for v, c := range counts {
		if c > bestCount {
			best, bestCount = v, c
		}
	}
	near := 0
	for v, c := range counts {
		if v >= best-1 && v <= best+1 {
			near += c
		}
	}
	if frac := float64(near) / float64(n); frac < 0.9 {
		t.Errorf("estimates too dispersed: mode %d covers only %g within ±1 (counts=%v)", best, frac, counts)
	}
}

func TestCongestBenignSmallMessages(t *testing.T) {
	const n, d = 256, 8
	_, eng, _ := runCongestBenign(t, n, d, 6)
	m := eng.Metrics()
	// A beacon path is at most i+2 hops with i = O(log n): message size
	// stays well under a kilobit at this scale.
	if m.MaxMsgBits > 64*(20+2)+80 {
		t.Errorf("max message size %d bits is not small", m.MaxMsgBits)
	}
	if m.Violations != 0 {
		t.Errorf("honest protocol produced %d addressing violations", m.Violations)
	}
}

func TestCongestDeterministicRuns(t *testing.T) {
	a, _, roundsA := runCongestBenign(t, 128, 8, 7)
	b, _, roundsB := runCongestBenign(t, 128, 8, 7)
	if roundsA != roundsB {
		t.Fatalf("round counts differ: %d vs %d", roundsA, roundsB)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("outcome %d differs: %+v vs %+v", v, a[v], b[v])
		}
	}
}

func TestCongestOutcomeBeforeRun(t *testing.T) {
	p := NewCongestProc(DefaultCongestParams(8))
	o := p.Outcome()
	if o.Decided || o.Exited {
		t.Errorf("fresh proc outcome = %+v", o)
	}
	if p.Halted() {
		t.Error("fresh proc halted")
	}
}

func TestCongestMaxPhaseForcesDecision(t *testing.T) {
	// With absurd parameters (c1 so large everyone beacons forever), the
	// MaxPhase safety must still terminate each node.
	const n, d = 64, 4
	rng := xrand.New(8)
	g, err := graph.HND(n, d, rng)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New(g, sim.WithSeed(9))
	params := DefaultCongestParams(d)
	params.C1 = 1e12 // activation probability 1 in every phase
	params.MaxPhase = 4
	procs := make([]sim.Proc, n)
	for v := range procs {
		procs[v] = NewCongestProc(params)
	}
	if err := eng.Attach(procs); err != nil {
		t.Fatal(err)
	}
	maxRounds := params.Schedule.RoundsThroughPhase(params.MaxPhase + 2)
	if _, err := eng.Run(maxRounds); err != nil {
		t.Fatal(err)
	}
	outcomes := Outcomes(procs)
	for v, o := range outcomes {
		if !o.Decided {
			t.Fatalf("vertex %d never decided despite MaxPhase", v)
		}
		if o.Estimate > 5 {
			t.Errorf("vertex %d decided %d beyond MaxPhase+1", v, o.Estimate)
		}
	}
}

func TestCongestRingStillTerminates(t *testing.T) {
	// The algorithm's guarantees need an expander, but it must not hang on
	// a ring: ball sizes grow linearly so beacons die out early and nodes
	// decide small values.
	const n = 64
	g, err := graph.Ring(n)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New(g, sim.WithSeed(10))
	params := DefaultCongestParams(2)
	procs := make([]sim.Proc, n)
	for v := range procs {
		procs[v] = NewCongestProc(params)
	}
	if err := eng.Attach(procs); err != nil {
		t.Fatal(err)
	}
	maxRounds := params.Schedule.RoundsThroughPhase(params.MaxPhase + 1)
	if _, err := eng.Run(maxRounds); err != nil {
		t.Fatal(err)
	}
	for v, o := range Outcomes(procs) {
		if !o.Decided {
			t.Fatalf("ring vertex %d never decided", v)
		}
	}
}

func TestPrefixToBlacklist(t *testing.T) {
	path := []sim.NodeID{1, 2, 3, 4, 5}
	if got := prefixToBlacklist(path, 2); len(got) != 3 || got[2] != 3 {
		t.Errorf("prefixToBlacklist = %v", got)
	}
	if got := prefixToBlacklist(path, 5); got != nil {
		t.Errorf("full-suffix prefix = %v", got)
	}
	if got := prefixToBlacklist(path, 10); got != nil {
		t.Errorf("oversize-suffix prefix = %v", got)
	}
}

func TestBeaconSizeBits(t *testing.T) {
	b := Beacon{Origin: 1, Path: []sim.NodeID{2, 3}}
	if b.SizeBits() != 16+64+128 {
		t.Errorf("SizeBits = %d", b.SizeBits())
	}
	var c Continue
	if c.SizeBits() != 16 {
		t.Errorf("continue SizeBits = %d", c.SizeBits())
	}
}

func TestLogHelpers(t *testing.T) {
	if Log2(8) != 3 {
		t.Errorf("Log2(8) = %g", Log2(8))
	}
	if Log2(0) != 0 {
		t.Errorf("Log2(0) = %g", Log2(0))
	}
	if math.Abs(LogD(512, 8)-3) > 1e-12 {
		t.Errorf("LogD(512,8) = %g", LogD(512, 8))
	}
	if LogD(0, 8) != 0 || LogD(8, 1) != 0 {
		t.Error("degenerate LogD")
	}
}

func TestOutcomesHelpers(t *testing.T) {
	outcomes := []Outcome{
		{Decided: true, Estimate: 4},
		{Decided: true, Estimate: 8},
		{Decided: false},
		{Decided: true, Estimate: 100}, // Byzantine vertex, excluded below
	}
	honest := []bool{true, true, true, false}
	if got := DecidedFraction(outcomes, honest); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("DecidedFraction = %g", got)
	}
	vals := DecidedEstimates(outcomes, honest)
	if len(vals) != 2 || vals[0] != 4 || vals[1] != 8 {
		t.Errorf("DecidedEstimates = %v", vals)
	}
	if got := FractionWithinFactor(outcomes, honest, 3, 5); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("FractionWithinFactor = %g", got)
	}
	if DecidedFraction(outcomes, []bool{false, false, false, false}) != 0 {
		t.Error("no honest nodes should give 0")
	}
}
