package sim

// Delivery-latency models for the virtual-time scheduler. A DelayModel
// decides, per admitted message, how many virtual ticks later the
// message is delivered; the engine schedules it into the delivery ring
// (see the virtual-time notes on Engine) keyed on the deliver tick, the
// sender slot, and the per-sender send sequence, so delivery order is a
// pure function of the seed however vertices are scheduled.
//
// Determinism contract: a model's randomness comes only from the rng
// the engine passes in — the sender's private "delay" stream, derived
// from the engine seed and stepped exclusively by that sender's
// messages in send order. Because each vertex is stepped by exactly one
// goroutine per round and a sender's messages are processed in order,
// the draw sequence (and therefore every latency) is identical at every
// worker count. Models that never draw must report Draws() == false so
// the engine skips deriving streams entirely — a unit-latency run then
// consumes exactly the random streams the legacy synchronous engine
// does, which is what keeps the two byte-identical.

import (
	"fmt"
	"strconv"
	"strings"

	"byzcount/internal/xrand"
)

// DelayModel assigns each admitted message a delivery latency in whole
// virtual ticks. Implementations must be pure: the returned delay may
// depend only on (rng draws, round, from, to).
type DelayModel interface {
	// Name renders the model as its canonical spec string (the grammar
	// ParseDelayModel accepts), so labels and CLI output round-trip.
	Name() string
	// MaxDelay is the inclusive upper bound on Delay's results (>= 1).
	// It sizes the engine's delivery ring; results are clamped to it.
	MaxDelay() int
	// Draws reports whether Delay consumes rng. Non-drawing models let
	// the engine skip per-sender delay streams entirely, which both
	// saves memory and preserves the legacy engine's exact stream
	// consumption under the unit model.
	Draws() bool
	// Delay returns the latency in ticks (1 = next tick) for a message
	// from vertex `from` to vertex `to` sent at tick `round`. rng is the
	// sender's private delay stream, or nil when Draws() is false.
	Delay(rng *xrand.Rand, round, from, to int) int
}

// UnitDelay is the degenerate synchronous model: every message takes
// exactly one tick, recovering lockstep rounds on the virtual-time
// scheduler. It never draws, so a unit-latency run consumes exactly the
// streams the legacy engine does; the two are byte-identical (pinned by
// the TestVTUnit* property tests).
type UnitDelay struct{}

// Name returns "unit".
func (UnitDelay) Name() string { return "unit" }

// MaxDelay returns 1.
func (UnitDelay) MaxDelay() int { return 1 }

// Draws returns false.
func (UnitDelay) Draws() bool { return false }

// Delay returns 1.
func (UnitDelay) Delay(*xrand.Rand, int, int, int) int { return 1 }

// UniformDelay draws each message's latency uniformly from [Min, Max] —
// bounded jitter, the simplest reordering adversary (a slow message is
// overtaken by up to Max-Min rounds of later traffic).
type UniformDelay struct {
	Min, Max int // 1 <= Min <= Max
}

// Name returns "uniform:MIN-MAX".
func (m UniformDelay) Name() string { return fmt.Sprintf("uniform:%d-%d", m.Min, m.Max) }

// MaxDelay returns Max.
func (m UniformDelay) MaxDelay() int { return m.Max }

// Draws reports whether the interval has more than one value.
func (m UniformDelay) Draws() bool { return m.Max > m.Min }

// Delay draws uniformly from [Min, Max] (no draw when Min == Max).
func (m UniformDelay) Delay(rng *xrand.Rand, _, _, _ int) int {
	if m.Max <= m.Min {
		return m.Min
	}
	return m.Min + rng.Intn(m.Max-m.Min+1)
}

// GeometricDelay draws 1 + a geometric tail: each extra tick happens
// with probability 1-P, truncated at Cap — the long-tail straggler
// model (most messages are fast, a few are very late).
type GeometricDelay struct {
	P   float64 // per-tick stop probability in (0, 1]
	Cap int     // inclusive latency bound (>= 1)
}

// Name returns "geo:P@CAP".
func (m GeometricDelay) Name() string { return fmt.Sprintf("geo:%g@%d", m.P, m.Cap) }

// MaxDelay returns Cap.
func (m GeometricDelay) MaxDelay() int { return m.Cap }

// Draws returns true.
func (m GeometricDelay) Draws() bool { return true }

// Delay returns min(GeometricP(P), Cap). The draw happens even when the
// result caps, so the stream advances identically however Cap is set.
func (m GeometricDelay) Delay(rng *xrand.Rand, _, _, _ int) int {
	d := rng.GeometricP(m.P)
	if d > m.Cap {
		d = m.Cap
	}
	return d
}

// RegionDelay models per-region latency asymmetry: vertices are
// assigned round-robin to Regions regions (region = slot mod Regions,
// so the assignment is independent of the network size and a slot keeps
// its region across membership turnover), messages within a region take
// Near ticks and messages crossing regions take Far ticks. It never
// draws.
type RegionDelay struct {
	Regions   int // >= 2
	Near, Far int // 1 <= Near, 1 <= Far
}

// Name returns "region:REGIONS/NEAR/FAR".
func (m RegionDelay) Name() string { return fmt.Sprintf("region:%d/%d/%d", m.Regions, m.Near, m.Far) }

// MaxDelay returns max(Near, Far).
func (m RegionDelay) MaxDelay() int { return max(m.Near, m.Far) }

// Draws returns false.
func (m RegionDelay) Draws() bool { return false }

// Delay returns Near for intra-region messages, Far across regions.
func (m RegionDelay) Delay(_ *xrand.Rand, _, from, to int) int {
	if from%m.Regions == to%m.Regions {
		return m.Near
	}
	return m.Far
}

// GSTDelay is the partial-synchrony model: before the global
// stabilization time the network behaves as Inner prescribes, from tick
// GST on every message takes exactly one tick. Inner's stream advances
// only before GST, so post-GST executions are a pure function of the
// pre-GST traffic — exactly the paper-family model where an adversary
// controls scheduling until an unknown stabilization point.
type GSTDelay struct {
	GST   int // first synchronous tick
	Inner DelayModel
}

// Name returns "gst:GST/INNER".
func (m GSTDelay) Name() string { return fmt.Sprintf("gst:%d/%s", m.GST, m.Inner.Name()) }

// MaxDelay returns the inner model's bound.
func (m GSTDelay) MaxDelay() int { return m.Inner.MaxDelay() }

// Draws reports whether the inner model draws.
func (m GSTDelay) Draws() bool { return m.Inner.Draws() }

// Delay defers to Inner before GST and returns 1 from GST on.
func (m GSTDelay) Delay(rng *xrand.Rand, round, from, to int) int {
	if round >= m.GST {
		return 1
	}
	return m.Inner.Delay(rng, round, from, to)
}

// ParseDelayModel parses a delay spec string:
//
//	unit                   synchronous (one tick per message)
//	uniform:MIN-MAX        uniform jitter in [MIN, MAX] ticks
//	geo:P@CAP              1 + geometric tail, stop probability P, capped
//	region:G/NEAR/FAR      G round-robin regions, NEAR within, FAR across
//	gst:R/SPEC             SPEC before tick R, synchronous after
//
// The empty string parses to nil (no model: the legacy synchronous
// path). Specs are the CLI's and the scenario grid's delay-axis
// vocabulary; Name() on the returned model round-trips to the canonical
// spec.
func ParseDelayModel(spec string) (DelayModel, error) {
	switch {
	case spec == "":
		return nil, nil
	case spec == "unit":
		return UnitDelay{}, nil
	case strings.HasPrefix(spec, "uniform:"):
		lo, hi, err := parseIntRange(strings.TrimPrefix(spec, "uniform:"))
		if err != nil || lo < 1 || hi < lo {
			return nil, fmt.Errorf("sim: bad delay spec %q (want uniform:MIN-MAX with 1 <= MIN <= MAX)", spec)
		}
		return UniformDelay{Min: lo, Max: hi}, nil
	case strings.HasPrefix(spec, "geo:"):
		body := strings.TrimPrefix(spec, "geo:")
		ps, cs, ok := strings.Cut(body, "@")
		if !ok {
			return nil, fmt.Errorf("sim: bad delay spec %q (want geo:P@CAP)", spec)
		}
		p, err1 := strconv.ParseFloat(ps, 64)
		c, err2 := strconv.Atoi(cs)
		if err1 != nil || err2 != nil || p <= 0 || p > 1 || c < 1 {
			return nil, fmt.Errorf("sim: bad delay spec %q (want geo:P@CAP with P in (0,1] and CAP >= 1)", spec)
		}
		return GeometricDelay{P: p, Cap: c}, nil
	case strings.HasPrefix(spec, "region:"):
		parts := strings.Split(strings.TrimPrefix(spec, "region:"), "/")
		if len(parts) != 3 {
			return nil, fmt.Errorf("sim: bad delay spec %q (want region:G/NEAR/FAR)", spec)
		}
		g, err1 := strconv.Atoi(parts[0])
		near, err2 := strconv.Atoi(parts[1])
		far, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil || g < 2 || near < 1 || far < 1 {
			return nil, fmt.Errorf("sim: bad delay spec %q (want region:G/NEAR/FAR with G >= 2 and delays >= 1)", spec)
		}
		return RegionDelay{Regions: g, Near: near, Far: far}, nil
	case strings.HasPrefix(spec, "gst:"):
		body := strings.TrimPrefix(spec, "gst:")
		rs, inner, ok := strings.Cut(body, "/")
		if !ok {
			return nil, fmt.Errorf("sim: bad delay spec %q (want gst:R/SPEC)", spec)
		}
		r, err := strconv.Atoi(rs)
		if err != nil || r < 0 {
			return nil, fmt.Errorf("sim: bad delay spec %q (want gst:R/SPEC with R >= 0)", spec)
		}
		m, err := ParseDelayModel(inner)
		if err != nil {
			return nil, err
		}
		if m == nil {
			return nil, fmt.Errorf("sim: bad delay spec %q (gst needs an inner spec, e.g. gst:%d/uniform:1-4)", spec, r)
		}
		return GSTDelay{GST: r, Inner: m}, nil
	default:
		return nil, fmt.Errorf("sim: unknown delay spec %q (want unit, uniform:MIN-MAX, geo:P@CAP, region:G/NEAR/FAR, or gst:R/SPEC)", spec)
	}
}

// parseIntRange parses "A-B" (or a single "A", meaning A-A).
func parseIntRange(s string) (lo, hi int, err error) {
	as, bs, ok := strings.Cut(s, "-")
	if !ok {
		bs = as
	}
	lo, err = strconv.Atoi(as)
	if err != nil {
		return 0, 0, err
	}
	hi, err = strconv.Atoi(bs)
	if err != nil {
		return 0, 0, err
	}
	return lo, hi, nil
}
