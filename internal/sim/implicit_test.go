package sim_test

// Implicit-substrate equivalence: an engine over an implicit topology
// (graph.RingLattice / graph.TorusGrid) must be byte-identical to the
// engine over the materialized CSR counterpart — same IDs (both
// constructors draw from the same seed-derived stream in slot order),
// same delivery transcript, same metrics — serially and under the
// sharded parallel engine. This is what makes "run the ring at n=10^6
// without materializing adjacency" a substitution, not a new scenario.

import (
	"fmt"
	"hash/fnv"
	"reflect"
	"testing"

	"byzcount/internal/byzantine"
	"byzcount/internal/counting"
	"byzcount/internal/graph"
	"byzcount/internal/sim"
	"byzcount/internal/xrand"
)

// Compile-time: the implicit families satisfy sim.Topology and the
// TopologyDegrees slab hint directly (structural interfaces — the graph
// package cannot import sim).
var (
	_ sim.Topology        = (*graph.RingLattice)(nil)
	_ sim.Topology        = (*graph.TorusGrid)(nil)
	_ sim.TopologyDegrees = (*graph.RingLattice)(nil)
	_ sim.TopologyDegrees = (*graph.TorusGrid)(nil)
)

// latticeTranscript runs the congest-under-spam transcript workload
// over an engine built by build and returns the combined digest plus
// final metrics. The proc wiring is deterministic in (n, d) only, so
// implicit and materialized engines face identical processes.
func latticeTranscript(t *testing.T, eng *sim.Engine, n, d, workers int) (string, sim.Metrics) {
	t.Helper()
	eng.SetParallelism(workers)
	eng.SetEdgeCapacity(512)
	params := counting.DefaultCongestParams(d)
	params.MaxPhase = 6
	maxRounds := params.Schedule.RoundsThroughPhase(params.MaxPhase + 1)
	procs := make([]sim.Proc, n)
	recs := make([]*transcriptProc, n)
	spamRng := xrand.New(1003)
	for v := range procs {
		var inner sim.Proc
		if v%41 == 0 {
			inner = byzantine.NewBeaconSpammer(params.Schedule, 6, true, spamRng.SplitN("spam", v))
		} else {
			inner = counting.NewCongestProc(params)
		}
		recs[v] = &transcriptProc{inner: inner}
		procs[v] = recs[v]
	}
	if err := eng.Attach(procs); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(maxRounds); err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	var buf [8]byte
	for _, rec := range recs {
		for i := 0; i < 8; i++ {
			buf[i] = byte(rec.sum >> (8 * i))
		}
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64()), eng.Metrics()
}

// TestImplicitRingLatticeEngineByteIdentical pins the implicit lattice
// engine to the materialized one across worker counts.
func TestImplicitRingLatticeEngineByteIdentical(t *testing.T) {
	const n, k = 246, 3
	lat, err := graph.NewRingLattice(n, k)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := lat.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	refDigest, refMetrics := latticeTranscript(t, sim.New(mat, sim.WithSeed(7)), n, 2*k, 1)
	for _, w := range []int{1, 4} {
		got, m := latticeTranscript(t, sim.New(lat, sim.WithSeed(7)), n, 2*k, w)
		if got != refDigest {
			t.Errorf("workers=%d: implicit digest %s != materialized %s", w, got, refDigest)
		}
		if !reflect.DeepEqual(m, refMetrics) {
			t.Errorf("workers=%d: implicit metrics diverge from materialized", w)
		}
	}
}

// TestImplicitTorusEngineByteIdentical does the same for the torus.
func TestImplicitTorusEngineByteIdentical(t *testing.T) {
	grid, err := graph.NewTorusGrid(16, 15)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := grid.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	n := grid.N()
	refDigest, refMetrics := latticeTranscript(t, sim.New(mat, sim.WithSeed(7)), n, 4, 1)
	for _, w := range []int{1, 4} {
		got, m := latticeTranscript(t, sim.New(grid, sim.WithSeed(7)), n, 4, w)
		if got != refDigest {
			t.Errorf("workers=%d: implicit digest %s != materialized %s", w, got, refDigest)
		}
		if !reflect.DeepEqual(m, refMetrics) {
			t.Errorf("workers=%d: implicit metrics diverge from materialized", w)
		}
	}
}
