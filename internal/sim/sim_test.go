package sim

import (
	"testing"

	"byzcount/internal/graph"
	"byzcount/internal/xrand"
)

// testPayload is a minimal payload carrying an int value.
type testPayload struct {
	value int
	bits  int
}

func (p testPayload) SizeBits() int { return p.bits }

// floodProc floods the maximum value it has seen; it halts after quiet
// rounds with no new information.
type floodProc struct {
	best     int
	lastSent int
	halted   bool
	quiet    int
}

func (f *floodProc) Step(env *Env, round int, in []Incoming) []Outgoing {
	changed := false
	for _, m := range in {
		if p, ok := m.Payload.(testPayload); ok && p.value > f.best {
			f.best = p.value
			changed = true
		}
	}
	if round == 0 || changed {
		f.quiet = 0
		f.lastSent = f.best
		return env.Broadcast(testPayload{value: f.best, bits: 64})
	}
	f.quiet++
	if f.quiet > 3 {
		f.halted = true
	}
	return nil
}

func (f *floodProc) Halted() bool { return f.halted }

// counterProc counts rounds and received messages.
type counterProc struct {
	steps    int
	received int
	haltAt   int
}

func (c *counterProc) Step(env *Env, round int, in []Incoming) []Outgoing {
	c.steps++
	c.received += len(in)
	return env.Broadcast(testPayload{value: round, bits: 8})
}

func (c *counterProc) Halted() bool { return c.haltAt > 0 && c.steps >= c.haltAt }

func mustRing(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g, err := graph.Ring(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEngineDistinctIDs(t *testing.T) {
	g := mustRing(t, 50)
	e := New(g, WithSeed(1))
	seen := make(map[NodeID]bool)
	for v := 0; v < 50; v++ {
		id := e.ID(v)
		if seen[id] {
			t.Fatalf("duplicate ID at vertex %d", v)
		}
		seen[id] = true
	}
}

func TestEngineDeterministic(t *testing.T) {
	g := mustRing(t, 10)
	a := New(g, WithSeed(42))
	b := New(g, WithSeed(42))
	for v := 0; v < 10; v++ {
		if a.ID(v) != b.ID(v) {
			t.Fatalf("IDs diverge at %d", v)
		}
	}
}

func TestVertexOf(t *testing.T) {
	g := mustRing(t, 5)
	e := New(g, WithSeed(3))
	for v := 0; v < 5; v++ {
		if got := e.VertexOf(e.ID(v)); got != v {
			t.Errorf("VertexOf(ID(%d)) = %d", v, got)
		}
	}
	if e.VertexOf(NodeID(0)) != -1 && e.ID(e.VertexOf(NodeID(0))) != NodeID(0) {
		t.Error("VertexOf(unknown) should be -1")
	}
}

func TestAttachSizeMismatch(t *testing.T) {
	g := mustRing(t, 4)
	e := New(g, WithSeed(1))
	if err := e.Attach(make([]Proc, 3)); err == nil {
		t.Fatal("mismatched Attach accepted")
	}
}

func TestRunBeforeAttach(t *testing.T) {
	g := mustRing(t, 4)
	e := New(g, WithSeed(1))
	if _, err := e.Run(10); err == nil {
		t.Fatal("Run before Attach accepted")
	}
}

func TestRunNegativeRounds(t *testing.T) {
	g := mustRing(t, 4)
	e := New(g, WithSeed(1))
	procs := make([]Proc, 4)
	for i := range procs {
		procs[i] = &counterProc{}
	}
	if err := e.Attach(procs); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(-1); err == nil {
		t.Fatal("negative maxRounds accepted")
	}
}

func TestMaxValueFloodConverges(t *testing.T) {
	// Classic flood: the global max must reach every node in <= diameter
	// rounds; engine must then detect global halt.
	g := mustRing(t, 16)
	e := New(g, WithSeed(7))
	procs := make([]Proc, 16)
	floods := make([]*floodProc, 16)
	for v := range procs {
		f := &floodProc{best: v}
		floods[v] = f
		procs[v] = f
	}
	if err := e.Attach(procs); err != nil {
		t.Fatal(err)
	}
	rounds, err := e.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if rounds >= 1000 {
		t.Fatal("flood did not terminate")
	}
	for v, f := range floods {
		if f.best != 15 {
			t.Errorf("vertex %d converged to %d, want 15", v, f.best)
		}
	}
}

func TestDeliveryNextRound(t *testing.T) {
	// A message sent in round 0 must arrive in round 1, not round 0.
	g := mustRing(t, 3)
	e := New(g, WithSeed(1))
	procs := make([]Proc, 3)
	counters := make([]*counterProc, 3)
	for v := range procs {
		c := &counterProc{haltAt: 3}
		counters[v] = c
		procs[v] = c
	}
	if err := e.Attach(procs); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(3); err != nil {
		t.Fatal(err)
	}
	// Round 0: no deliveries. Rounds 1, 2: 2 messages per node per round.
	for v, c := range counters {
		if c.received != 4 {
			t.Errorf("vertex %d received %d messages, want 4", v, c.received)
		}
	}
}

func TestHaltedSkipped(t *testing.T) {
	g := mustRing(t, 3)
	e := New(g, WithSeed(1))
	procs := make([]Proc, 3)
	counters := make([]*counterProc, 3)
	for v := range procs {
		c := &counterProc{haltAt: 1} // halt after the very first step
		counters[v] = c
		procs[v] = c
	}
	if err := e.Attach(procs); err != nil {
		t.Fatal(err)
	}
	rounds, err := e.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if rounds > 2 {
		t.Errorf("rounds = %d, want early halt", rounds)
	}
	for v, c := range counters {
		if c.steps != 1 {
			t.Errorf("vertex %d stepped %d times after halting", v, c.steps)
		}
	}
}

func TestStopCondition(t *testing.T) {
	g := mustRing(t, 4)
	e := New(g, WithSeed(1))
	procs := make([]Proc, 4)
	for v := range procs {
		procs[v] = &counterProc{}
	}
	if err := e.Attach(procs); err != nil {
		t.Fatal(err)
	}
	e.SetStopCondition(func(round int) bool { return round >= 4 })
	rounds, err := e.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 5 {
		t.Errorf("rounds = %d, want 5", rounds)
	}
}

func TestMetrics(t *testing.T) {
	g := mustRing(t, 4)
	e := New(g, WithSeed(1))
	procs := make([]Proc, 4)
	for v := range procs {
		procs[v] = &counterProc{haltAt: 2}
	}
	if err := e.Attach(procs); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	// 2 steps x 4 nodes x 2 neighbors = 16 messages of 8 bits.
	if m.Messages != 16 {
		t.Errorf("Messages = %d, want 16", m.Messages)
	}
	if m.Bits != 128 {
		t.Errorf("Bits = %d, want 128", m.Bits)
	}
	if m.MaxMsgBits != 8 {
		t.Errorf("MaxMsgBits = %d", m.MaxMsgBits)
	}
	for v, b := range m.PerNodeMaxBit {
		if b != 8 {
			t.Errorf("PerNodeMaxBit[%d] = %d", v, b)
		}
	}
}

// rogueProc tries to send to a non-neighbor.
type rogueProc struct{ stepped bool }

func (r *rogueProc) Step(env *Env, round int, in []Incoming) []Outgoing {
	r.stepped = true
	// Vertex 0 on a ring of 6 is not adjacent to vertex 3.
	return []Outgoing{{To: (env.Vertex + 3) % 6, Payload: testPayload{bits: 8}}}
}
func (r *rogueProc) Halted() bool { return r.stepped }

func TestNonNeighborDropped(t *testing.T) {
	g := mustRing(t, 6)
	e := New(g, WithSeed(1))
	procs := make([]Proc, 6)
	for v := range procs {
		procs[v] = &rogueProc{}
	}
	if err := e.Attach(procs); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(5); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.Violations != 6 {
		t.Errorf("Violations = %d, want 6", m.Violations)
	}
	if m.Messages != 0 {
		t.Errorf("Messages = %d, want 0", m.Messages)
	}
}

func TestSenderIDStamped(t *testing.T) {
	// A process that claims a fake identity in its payload still gets the
	// true FromID stamped by the engine.
	pg, err := graph.Path(2)
	if err != nil {
		t.Fatal(err)
	}
	e := New(pg, WithSeed(9))
	var got []Incoming
	procs := []Proc{
		procFunc(func(env *Env, round int, in []Incoming) []Outgoing {
			if round == 0 {
				return env.Broadcast(testPayload{value: 999, bits: 8})
			}
			return nil
		}),
		procFunc(func(env *Env, round int, in []Incoming) []Outgoing {
			got = append(got, in...)
			return nil
		}),
	}
	if err := e.Attach(procs); err != nil {
		t.Fatal(err)
	}
	e.SetStopCondition(func(round int) bool { return round >= 2 })
	if _, err := e.Run(5); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("received %d messages", len(got))
	}
	if got[0].From != 0 || got[0].FromID != e.ID(0) {
		t.Errorf("stamped sender = (%d, %d), want (0, %d)", got[0].From, got[0].FromID, e.ID(0))
	}
}

// procFunc adapts a function to the Proc interface (never halts).
type procFunc func(env *Env, round int, in []Incoming) []Outgoing

func (f procFunc) Step(env *Env, round int, in []Incoming) []Outgoing { return f(env, round, in) }
func (f procFunc) Halted() bool                                       { return false }

func TestBroadcastMultiEdge(t *testing.T) {
	// Parallel edges mean one copy per edge.
	g := graph.New(2)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	e := New(g, WithSeed(1))
	var count int
	procs := []Proc{
		procFunc(func(env *Env, round int, in []Incoming) []Outgoing {
			if round == 0 {
				return env.Broadcast(testPayload{bits: 8})
			}
			return nil
		}),
		procFunc(func(env *Env, round int, in []Incoming) []Outgoing {
			count += len(in)
			return nil
		}),
	}
	if err := e.Attach(procs); err != nil {
		t.Fatal(err)
	}
	e.SetStopCondition(func(round int) bool { return round >= 2 })
	if _, err := e.Run(5); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Errorf("received %d copies over a double edge, want 2", count)
	}
}

func TestEnvNodeRandIndependent(t *testing.T) {
	g := mustRing(t, 4)
	e1 := New(g, WithSeed(5))
	e2 := New(g, WithSeed(5))
	// Same engine seed: per-node streams identical across engines...
	if e1.Env(2).Rand().Uint64() != e2.Env(2).Rand().Uint64() {
		t.Error("per-node streams not reproducible")
	}
	// ...and distinct across nodes.
	if e1.Env(0).Rand().Uint64() == e1.Env(1).Rand().Uint64() {
		if e1.Env(0).Rand().Uint64() == e1.Env(1).Rand().Uint64() {
			t.Error("node streams identical")
		}
	}
}

func TestEnvironmentFields(t *testing.T) {
	rng := xrand.New(20)
	g, err := graph.HND(12, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	e := New(g, WithSeed(11))
	for v := 0; v < g.N(); v++ {
		env := e.Env(v)
		if env.Vertex != v {
			t.Errorf("Vertex = %d", env.Vertex)
		}
		if env.Degree != g.Degree(v) {
			t.Errorf("Degree[%d] = %d", v, env.Degree)
		}
		if len(env.Neighbors) != g.Degree(v) {
			t.Errorf("Neighbors[%d] length %d", v, len(env.Neighbors))
		}
	}
}
