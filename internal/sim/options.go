package sim

import "byzcount/internal/graph"

// New is the engine constructor: one entry point over any substrate,
// configured by functional options.
// A *graph.Graph dispatches to the static fast path — CSR ingestion,
// adjacency aliasing, zero per-round overhead — and every other
// Topology to the epoch-stamped lazy-resolution path, so callers pick
// a substrate, not a constructor.
//
//	eng := sim.New(g, sim.WithSeed(7), sim.WithEdgeCapacity(512))
//	eng := sim.New(net, sim.WithSeed(9), sim.WithParallelism(8),
//		sim.WithDelayModel(sim.UniformDelay{Min: 1, Max: 4}))
func New(topo Topology, opts ...Option) *Engine {
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	var e *Engine
	if g, ok := topo.(*graph.Graph); ok {
		e = newStaticEngine(g, o.seed)
	} else {
		e = newTopologyEngine(topo, o.seed)
	}
	if o.workers > 1 {
		e.SetParallelism(o.workers)
	}
	if o.capBits > 0 {
		e.SetEdgeCapacity(o.capBits)
	}
	if o.delay != nil {
		e.SetDelayModel(o.delay)
	}
	if o.fault != nil {
		e.SetFaultModel(o.fault)
	}
	return e
}

// options is the merged result of applying Options; zero values mean
// engine defaults (seed 0, serial, LOCAL model, synchronous delivery).
type options struct {
	seed    uint64
	workers int
	capBits int
	delay   DelayModel
	fault   FaultModel
}

// Option configures New.
type Option func(*options)

// WithSeed sets the engine seed that node IDs and every per-slot,
// per-sender random stream derive from. Default 0 (a valid seed — runs
// are deterministic either way).
func WithSeed(seed uint64) Option { return func(o *options) { o.seed = seed } }

// WithParallelism sets the Step-shard worker count (see
// SetParallelism); values <= 1 keep the serial engine.
func WithParallelism(workers int) Option { return func(o *options) { o.workers = workers } }

// WithEdgeCapacity switches the engine to the CONGEST model with the
// given per-edge per-round payload-bit budget (see SetEdgeCapacity);
// values <= 0 keep the LOCAL model.
func WithEdgeCapacity(bits int) Option { return func(o *options) { o.capBits = bits } }

// WithDelayModel installs a delivery-latency model (see SetDelayModel);
// nil keeps synchronous delivery.
func WithDelayModel(m DelayModel) Option { return func(o *options) { o.delay = m } }

// WithFaultModel installs a message-fault model (see SetFaultModel);
// nil keeps the lossless network.
func WithFaultModel(m FaultModel) Option { return func(o *options) { o.fault = m } }
