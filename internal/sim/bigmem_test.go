//go:build bigmem && !race

package sim_test

// Million-slot engine tests, opt-in via -tags=bigmem (a GB-scale live
// heap; excluded from the default and -race suites):
//
//	go test -tags=bigmem -run TestBig ./internal/sim/
//
// These pin the engine's slab budgets at the scale they exist for: a
// topology engine over an implicit lattice must build and run its first
// rounds with O(slots) bytes and O(chunks) allocations — no adjacency
// materialization, no per-slot stream or buffer allocations.

import (
	"runtime"
	"testing"

	"byzcount/internal/graph"
	"byzcount/internal/sim"
)

// bigFloodPayload is a constant 64-bit payload.
type bigFloodPayload struct{}

func (bigFloodPayload) SizeBits() int { return 64 }

// bigFloodProc broadcasts every round and never halts.
type bigFloodProc struct{}

func (*bigFloodProc) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	return env.Broadcast(bigFloodPayload{})
}
func (*bigFloodProc) Halted() bool { return false }

// bigSilentProc never sends and never halts: it isolates the engine's
// own lazy-resolution cost from message-buffer warm-up.
type bigSilentProc struct{}

func (*bigSilentProc) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing { return nil }
func (*bigSilentProc) Halted() bool                                                   { return false }

// TestBigImplicitLatticeResolution pins the slab budgets at n=10^6:
// construction is a few hundred bytes per slot (slot arrays, the ID
// index, and three degree-hinted slabs of 8M arcs — never adjacency
// copies or eager per-slot random streams), and the first round — the
// one that lazily resolves every neighborhood — allocates O(chunks)
// objects, not O(n). Silent processes keep message-buffer warm-up
// (which is per-arc on any workload's first sending round) out of the
// measurement.
func TestBigImplicitLatticeResolution(t *testing.T) {
	const n, k = 1_000_000, 4
	lat, err := graph.NewRingLattice(n, k)
	if err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	eng := sim.New(lat, sim.WithSeed(7))
	runtime.ReadMemStats(&after)
	consBytes := after.TotalAlloc - before.TotalAlloc
	t.Logf("construction: %d MB, %d allocs",
		consBytes>>20, after.Mallocs-before.Mallocs)
	if consBytes >= 1<<30 {
		t.Errorf("construction allocated %d MB for n=%d; slab budget regressed", consBytes>>20, n)
	}

	procs := make([]sim.Proc, n)
	shared := &bigSilentProc{}
	for v := range procs {
		procs[v] = shared
	}
	if err := eng.Attach(procs); err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	runtime.ReadMemStats(&before)
	if _, err := eng.Run(1); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	firstRound := after.Mallocs - before.Mallocs
	t.Logf("first round (resolves %d neighborhoods): %d allocs", n, firstRound)
	if firstRound >= n/4 {
		t.Errorf("first round allocated %d objects; degree-hinted pre-carve regressed", firstRound)
	}
}

// TestBigImplicitLatticeFlood floods the implicit lattice at n=10^6:
// every round must deliver exactly 2nk messages (8M), and rounds past
// the warm-up must allocate (almost) nothing. Warm-up is two rounds,
// not one: the engine double-buffers inboxes (cur/next swap each
// round), so each of the two buffers needs one flooding round to grow
// to its high-water mark before recycling takes over.
func TestBigImplicitLatticeFlood(t *testing.T) {
	const n, k = 1_000_000, 4
	lat, err := graph.NewRingLattice(n, k)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New(lat, sim.WithSeed(7))
	procs := make([]sim.Proc, n)
	shared := &bigFloodProc{}
	for v := range procs {
		procs[v] = shared
	}
	if err := eng.Attach(procs); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(2); err != nil { // warm-up: both inbox buffers + scratch
		t.Fatal(err)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if _, err := eng.Run(2); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	steady := after.Mallocs - before.Mallocs
	t.Logf("rounds 3-4: %d allocs", steady)
	if steady >= n/4 {
		t.Errorf("steady-state flood rounds allocated %d objects; buffer recycling regressed", steady)
	}
	if got, want := eng.Metrics().Messages, int64(4)*int64(2*k)*int64(n); got != want {
		t.Fatalf("4 flood rounds delivered %d messages, want %d", got, want)
	}
}
