package sim_test

// Golden determinism tests for the parallel engine: a parallel run must
// be byte-for-byte identical to a serial run with the same seed — same
// Metrics (Rounds, Messages, Bits, Capped, MessagesByRound, ...), same
// per-node outcomes, same inbox delivery order. One CONGEST counting
// scenario (edge capacity enforced, beacon spammers, so cap decisions
// are exercised) and one LOCAL counting scenario (fake-network
// adversaries sharing a mutable world, so the Sequential pass is
// exercised) are each run serially and with several worker counts.

import (
	"reflect"
	"testing"

	"byzcount/internal/byzantine"
	"byzcount/internal/counting"
	"byzcount/internal/graph"
	"byzcount/internal/sim"
	"byzcount/internal/xrand"
)

// workerCounts covers serial, an uneven shard split, and more shards
// than cores.
var workerCounts = []int{1, 3, 8}

func mustHND(t *testing.T, n, d int, seed uint64) *graph.Graph {
	t.Helper()
	g, err := graph.HND(n, d, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// runScenario executes build() on a fresh engine with the given worker
// count and returns the metrics, outcomes, and final inboxes.
func runScenario(t *testing.T, g *graph.Graph, seed uint64, workers, maxRounds int,
	capBits int, build func(eng *sim.Engine) []sim.Proc) (sim.Metrics, []counting.Outcome, int) {
	t.Helper()
	eng := sim.New(g, sim.WithSeed(seed))
	eng.SetParallelism(workers)
	if capBits > 0 {
		eng.SetEdgeCapacity(capBits)
	}
	procs := build(eng)
	if err := eng.Attach(procs); err != nil {
		t.Fatal(err)
	}
	rounds, err := eng.Run(maxRounds)
	if err != nil {
		t.Fatal(err)
	}
	return eng.Metrics(), counting.Outcomes(procs), rounds
}

func assertIdentical(t *testing.T, workers int, wantM, gotM sim.Metrics,
	wantO, gotO []counting.Outcome, wantR, gotR int) {
	t.Helper()
	if wantR != gotR {
		t.Errorf("workers=%d: rounds %d != serial %d", workers, gotR, wantR)
	}
	if !reflect.DeepEqual(wantM, gotM) {
		t.Errorf("workers=%d: metrics diverge:\nserial:   %+v\nparallel: %+v", workers, wantM, gotM)
	}
	if !reflect.DeepEqual(wantO, gotO) {
		for v := range wantO {
			if wantO[v] != gotO[v] {
				t.Errorf("workers=%d: vertex %d outcome %+v != serial %+v", workers, v, gotO[v], wantO[v])
			}
		}
	}
}

// TestGoldenCongestSerialParallel: the randomized CONGEST counting
// protocol under beacon spam with the edge capacity enforced. The cap is
// set low enough that some messages are dropped, so the parallel
// engine's per-sender budget accounting is exercised, not just present.
func TestGoldenCongestSerialParallel(t *testing.T) {
	const n, d = 192, 8
	g := mustHND(t, n, d, 1001)
	rng := xrand.New(1002)
	byz, err := byzantine.RandomPlacement(g, 6, rng.Split("place"))
	if err != nil {
		t.Fatal(err)
	}
	params := counting.DefaultCongestParams(d)
	params.MaxPhase = 8
	maxRounds := params.Schedule.RoundsThroughPhase(params.MaxPhase + 1)
	build := func(eng *sim.Engine) []sim.Proc {
		procs := make([]sim.Proc, n)
		spamRng := xrand.New(1003)
		for v := range procs {
			if byz[v] {
				procs[v] = byzantine.NewBeaconSpammer(params.Schedule, 6, true, spamRng.SplitN("spam", v))
			} else {
				procs[v] = counting.NewCongestProc(params)
			}
		}
		return procs
	}
	// 512 bits/edge/round: enough for short beacons, tight enough that
	// long-path beacons and spam get capped.
	const capBits = 512
	wantM, wantO, wantR := runScenario(t, g, 7, 1, maxRounds, capBits, build)
	if wantM.Capped == 0 {
		t.Fatal("scenario exercises no cap decisions; lower the edge capacity")
	}
	if wantM.Messages == 0 {
		t.Fatal("scenario delivered no messages")
	}
	for _, w := range workerCounts[1:] {
		gotM, gotO, gotR := runScenario(t, g, 7, w, maxRounds, capBits, build)
		assertIdentical(t, w, wantM, gotM, wantO, gotO, wantR, gotR)
	}
}

// TestGoldenLocalSerialParallel: the deterministic LOCAL counting
// protocol under the consistent fake-network attack. The adversaries
// share one mutable FakeWorld and are marked Sequential, so this pins
// down the parallel engine's in-order sequential pass.
func TestGoldenLocalSerialParallel(t *testing.T) {
	const n, d = 96, 8
	delta := d + 2
	g := mustHND(t, n, d, 2001)
	rng := xrand.New(2002)
	byz, err := byzantine.RandomPlacement(g, 5, rng.Split("place"))
	if err != nil {
		t.Fatal(err)
	}
	params := counting.DefaultLocalParams(delta)
	build := func(eng *sim.Engine) []sim.Proc {
		// A fresh world per run: the engine mutates it through AttachK.
		world, err := byzantine.NewFakeWorld(2*n, d, delta, 5, xrand.New(2003))
		if err != nil {
			t.Fatal(err)
		}
		procs := make([]sim.Proc, n)
		for v := range procs {
			if byz[v] {
				procs[v] = byzantine.NewFakeNetworkLocal(world, 1)
			} else {
				procs[v] = counting.NewLocalProc(params)
			}
		}
		return procs
	}
	wantM, wantO, wantR := runScenario(t, g, 8, 1, params.MaxRounds+8, 0, build)
	if wantM.Messages == 0 {
		t.Fatal("scenario delivered no messages")
	}
	decided := 0
	for v, o := range wantO {
		if !byz[v] && o.Decided {
			decided++
		}
	}
	if decided == 0 {
		t.Fatal("no honest node decided; scenario is degenerate")
	}
	for _, w := range workerCounts[1:] {
		gotM, gotO, gotR := runScenario(t, g, 8, w, params.MaxRounds+8, 0, build)
		assertIdentical(t, w, wantM, gotM, wantO, gotO, wantR, gotR)
	}
}

// TestParallelStopConditionAndHalt: early-exit paths (all-halted and the
// stop condition) must fire on the same round in both modes.
func TestParallelStopConditionAndHalt(t *testing.T) {
	const n, d = 128, 8
	g := mustHND(t, n, d, 3001)
	params := counting.DefaultCongestParams(d)
	run := func(workers int, stopAt int) (int, sim.Metrics) {
		eng := sim.New(g, sim.WithSeed(9))
		eng.SetParallelism(workers)
		procs := make([]sim.Proc, n)
		for v := range procs {
			procs[v] = counting.NewCongestProc(params)
		}
		if err := eng.Attach(procs); err != nil {
			t.Fatal(err)
		}
		if stopAt > 0 {
			eng.SetStopCondition(func(round int) bool { return round >= stopAt })
		}
		rounds, err := eng.Run(params.Schedule.RoundsThroughPhase(params.MaxPhase + 1))
		if err != nil {
			t.Fatal(err)
		}
		return rounds, eng.Metrics()
	}
	for _, stopAt := range []int{0, 25} {
		wantR, wantM := run(1, stopAt)
		for _, w := range workerCounts[1:] {
			gotR, gotM := run(w, stopAt)
			if gotR != wantR {
				t.Errorf("stopAt=%d workers=%d: rounds %d != serial %d", stopAt, w, gotR, wantR)
			}
			if !reflect.DeepEqual(wantM, gotM) {
				t.Errorf("stopAt=%d workers=%d: metrics diverge", stopAt, w)
			}
		}
	}
}
