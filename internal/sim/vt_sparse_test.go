package sim_test

// Tests for the occupancy-aware VT hot path: tick-skipping must be
// unobservable (transcripts and metrics identical with skipping on,
// off, and under every worker count), the sparse lane must agree with
// the dense lane on marked-vs-unmarked procs, and the fault/delay
// boundary cases — drop p=1, a partition spanning the whole run,
// window=2 unit degeneration, out-of-range hand-built delay models —
// must be visible in Metrics instead of silently reshaped.

import (
	"fmt"
	"hash/fnv"
	"reflect"
	"testing"

	"byzcount/internal/expt"
	"byzcount/internal/sim"
	"byzcount/internal/xrand"
)

// hopPayload is the test workload's payload; SizeBits encodes the hop
// tag so the default arm of foldTranscript distinguishes payloads.
type hopPayload struct{ hops int }

func (p hopPayload) SizeBits() int { return 64 + p.hops }

// tokenInjector is the round-driven seeder: it broadcasts one payload
// in its first Step and halts, after which every live proc in the
// marked workload is TickDriven and fast-forwarding may engage.
type tokenInjector struct{ fired bool }

func (p *tokenInjector) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	if p.fired {
		return nil
	}
	p.fired = true
	return env.Broadcast(hopPayload{hops: 2})
}

func (p *tokenInjector) Halted() bool { return p.fired }

// forwardFold is the shared relay logic of the marked and unmarked
// transcript relays: fold the delivered messages into the digest, count
// cross-parity arrivals (the whole-run partition test's invariant), and
// forward each message to a deterministically rotating neighbor so
// traffic circulates indefinitely. Folding only non-empty inboxes keeps
// the digest schedule-independent: a TickDriven proc is not stepped on
// empty ticks in the sparse lane, and skipped ticks step nobody.
func forwardFold(sum *uint64, parity *int64, env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	if len(in) == 0 {
		return nil
	}
	*sum = foldTranscript(*sum, round, env, false, in)
	for _, m := range in {
		if (m.From+env.Vertex)%2 == 1 {
			*parity++
		}
	}
	out := env.Scratch()
	for i, m := range in {
		to := env.Neighbors[(round+i)%env.Degree]
		out = append(out, sim.Outgoing{To: to, Payload: m.Payload})
	}
	return out
}

// markedRelay is the TickDriven transcript relay.
type markedRelay struct {
	sum    uint64
	parity int64
}

func (p *markedRelay) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	return forwardFold(&p.sum, &p.parity, env, round, in)
}

func (p *markedRelay) Halted() bool         { return false }
func (p *markedRelay) StepsOnMessagesOnly() {}

// plainRelay is the identical relay without the marker — the dense
// control (a separate type, not an embedding, so the marker method
// cannot arrive by promotion).
type plainRelay struct {
	sum    uint64
	parity int64
}

func (p *plainRelay) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	return forwardFold(&p.sum, &p.parity, env, round, in)
}

func (p *plainRelay) Halted() bool { return false }

// sparseRun is one execution of the token-forwarding workload: an
// injector at vertex 0, transcript relays everywhere else.
type sparseRun struct {
	digest  string
	parity  int64
	metrics sim.Metrics
}

// runSparseWorkload executes the workload on H(64,8) for the given
// configuration and returns the combined per-vertex digest plus final
// metrics. churn installs a between-rounds hook that recycles one relay
// slot every 8 rounds — Detach (dropping its in-flight deliveries and
// leaving stale occupancy entries behind), then AttachAt with the same
// ID and a fresh relay — a schedule that is a pure function of the
// round index, so it is identical across worker counts and skip
// settings. (A non-nil hook pins the dense tick cadence, so churn cells
// never skip.)
func runSparseWorkload(t *testing.T, workers int, delaySpec, faultSpec string, marked, skip, churn bool, rounds int) sparseRun {
	t.Helper()
	const n, d = 64, 8
	g := mustHND(t, n, d, 1201)
	delay, err := sim.ParseDelayModel(delaySpec)
	if err != nil {
		t.Fatal(err)
	}
	fault, err := sim.ParseFaultModel(faultSpec)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New(g,
		sim.WithSeed(9),
		sim.WithParallelism(workers),
		sim.WithDelayModel(delay),
		sim.WithFaultModel(fault))
	eng.SetTickSkip(skip)
	procs := make([]sim.Proc, n)
	sums := make([]*uint64, n)
	parities := make([]*int64, n)
	procs[0] = &tokenInjector{}
	zero := uint64(0)
	zeroP := int64(0)
	sums[0], parities[0] = &zero, &zeroP
	for v := 1; v < n; v++ {
		if marked {
			p := &markedRelay{}
			sums[v], parities[v] = &p.sum, &p.parity
			procs[v] = p
		} else {
			p := &plainRelay{}
			sums[v], parities[v] = &p.sum, &p.parity
			procs[v] = p
		}
	}
	if churn {
		eng.SetBetweenRounds(func(round int) error {
			if round%8 != 5 {
				return nil
			}
			v := 1 + (round/8)%(n-1)
			id := eng.ID(v)
			if err := eng.Detach(v); err != nil {
				return err
			}
			// The recycled slot's digest restarts from zero — identically
			// in every configuration, since the schedule is fixed.
			if marked {
				p := &markedRelay{}
				sums[v], parities[v] = &p.sum, &p.parity
				return eng.AttachAt(v, id, p)
			}
			p := &plainRelay{}
			sums[v], parities[v] = &p.sum, &p.parity
			return eng.AttachAt(v, id, p)
		})
	}
	if err := eng.Attach(procs); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(rounds); err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	var buf [8]byte
	var parity int64
	for v := 0; v < n; v++ {
		for i := 0; i < 8; i++ {
			buf[i] = byte(*sums[v] >> (8 * i))
		}
		h.Write(buf[:])
		parity += *parities[v]
	}
	return sparseRun{
		digest:  fmt.Sprintf("%016x", h.Sum64()),
		parity:  parity,
		metrics: eng.Metrics(),
	}
}

// sameModuloSkipped compares two runs' metrics with TicksSkipped zeroed
// out — the only field fast-forwarding is allowed to change.
func sameModuloSkipped(a, b sim.Metrics) bool {
	a.TicksSkipped = 0
	b.TicksSkipped = 0
	return reflect.DeepEqual(a, b)
}

// TestVTSkipTranscriptEquality sweeps every E19 delay spec against
// every E20 fault spec, with and without membership churn, and pins the
// workload's transcript digest and metrics across: serial with skipping
// off (the reference), serial with skipping on, the sparse lane vs the
// dense lane (marked vs unmarked relays), and the parallel sparse lane
// at workers 3 and 8 with skipping on and off. Only TicksSkipped and
// the worker count may differ between cells.
func TestVTSkipTranscriptEquality(t *testing.T) {
	delays := []string{"unit", "gst:8/uniform:1-6", "gst:32/uniform:1-6", "uniform:1-6"}
	faults := []string{"none", "partition:2@10-40", "partition:2@10-70", "partition:2@10"}
	const rounds = 96
	type variant struct {
		name    string
		workers int
		marked  bool
		skip    bool
	}
	variants := []variant{
		{"serial-skip", 1, true, true},
		{"serial-dense", 1, false, true},
		{"workers-3-noskip", 3, true, false},
		{"workers-3-skip", 3, true, true},
		{"workers-8-noskip", 8, true, false},
		{"workers-8-skip", 8, true, true},
		{"workers-8-dense", 8, false, true},
	}
	for _, ds := range delays {
		for _, fs := range faults {
			for _, churn := range []bool{false, true} {
				name := ds + "/" + fs
				if churn {
					name += "/churn"
				}
				t.Run(name, func(t *testing.T) {
					ref := runSparseWorkload(t, 1, ds, fs, true, false, churn, rounds)
					if ref.metrics.TicksSkipped != 0 {
						t.Fatalf("skip disabled but TicksSkipped = %d", ref.metrics.TicksSkipped)
					}
					for _, v := range variants {
						got := runSparseWorkload(t, v.workers, ds, fs, v.marked, v.skip, churn, rounds)
						if got.digest != ref.digest {
							t.Errorf("%s: digest %s != reference %s", v.name, got.digest, ref.digest)
						}
						if !sameModuloSkipped(got.metrics, ref.metrics) {
							t.Errorf("%s: metrics diverge beyond TicksSkipped:\n got %+v\nwant %+v",
								v.name, got.metrics, ref.metrics)
						}
					}
				})
			}
		}
	}
}

// TestVTSkipEngages pins that fast-forwarding actually happens on the
// marked workload under jitter (one message in flight leaves most ticks
// empty) — guarding against a silent regression where skipping is
// always structurally disabled and the equality tests above pass
// vacuously — and that the parallel scheduler skips exactly the ticks
// the serial one does (the O(shards) all-empty reduction agrees with
// the serial one-load test).
func TestVTSkipEngages(t *testing.T) {
	got := runSparseWorkload(t, 1, "uniform:1-6", "none", true, true, false, 96)
	if got.metrics.TicksSkipped == 0 {
		t.Fatal("marked jittered workload skipped no ticks; fast-forward never engaged")
	}
	for _, workers := range []int{3, 8} {
		par := runSparseWorkload(t, workers, "uniform:1-6", "none", true, true, false, 96)
		if par.metrics.TicksSkipped != got.metrics.TicksSkipped {
			t.Errorf("workers=%d skipped %d ticks, serial skipped %d; fast-forward must agree",
				workers, par.metrics.TicksSkipped, got.metrics.TicksSkipped)
		}
	}
	dense := runSparseWorkload(t, 1, "uniform:1-6", "none", false, true, false, 96)
	if dense.metrics.TicksSkipped != 0 {
		t.Fatalf("unmarked workload skipped %d ticks; dense lane must execute every tick",
			dense.metrics.TicksSkipped)
	}
}

// TestVTDropAllTerminates: drop p=1 admits nothing — the injector's
// burst is faulted away, no proc ever receives a message, and the run
// must still terminate through the stop condition with the fault ledger
// (not the delivery ledger) carrying the traffic. On the marked
// workload every post-injection tick is skippable.
func TestVTDropAllTerminates(t *testing.T) {
	const n, d = 64, 8
	for _, marked := range []bool{true, false} {
		g := mustHND(t, n, d, 1201)
		delay, err := sim.ParseDelayModel("uniform:1-4")
		if err != nil {
			t.Fatal(err)
		}
		fault, err := sim.ParseFaultModel("drop:1")
		if err != nil {
			t.Fatal(err)
		}
		eng := sim.New(g, sim.WithSeed(9), sim.WithDelayModel(delay), sim.WithFaultModel(fault))
		procs := make([]sim.Proc, n)
		procs[0] = &tokenInjector{}
		for v := 1; v < n; v++ {
			if marked {
				procs[v] = &markedRelay{}
			} else {
				procs[v] = &plainRelay{}
			}
		}
		if err := eng.Attach(procs); err != nil {
			t.Fatal(err)
		}
		eng.SetStopCondition(func(round int) bool { return round >= 30 })
		rounds, err := eng.Run(1000)
		if err != nil {
			t.Fatal(err)
		}
		m := eng.Metrics()
		if rounds != 31 {
			t.Errorf("marked=%v: stop condition fired after %d rounds, want 31", marked, rounds)
		}
		if m.Messages != 0 {
			t.Errorf("marked=%v: %d messages delivered under drop p=1, want 0", marked, m.Messages)
		}
		if m.Dropped != int64(d) {
			t.Errorf("marked=%v: Dropped = %d, want %d (the injector's burst)", marked, m.Dropped, d)
		}
		if marked && m.TicksSkipped == 0 {
			t.Error("marked workload under total loss skipped no ticks")
		}
		if !marked && m.TicksSkipped != 0 {
			t.Errorf("unmarked workload skipped %d ticks", m.TicksSkipped)
		}
	}
}

// TestVTWholeRunPartition: a partition from tick 0 that never heals
// must suppress every cross-parity delivery for the entire run — the
// parity counter folded by every relay stays zero while the intra-group
// traffic keeps flowing.
func TestVTWholeRunPartition(t *testing.T) {
	got := runSparseWorkload(t, 1, "uniform:1-4", "partition:2@0", true, true, false, 96)
	if got.parity != 0 {
		t.Errorf("%d cross-parity deliveries under a whole-run partition, want 0", got.parity)
	}
	if got.metrics.Dropped == 0 {
		t.Error("whole-run partition dropped nothing; the cut never engaged")
	}
	if got.metrics.Messages == 0 {
		t.Error("no intra-group deliveries; the workload died instead of routing around the cut")
	}
}

// flooder broadcasts every round — the window=2 degeneration workload.
type flooder struct{}

func (*flooder) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	return env.Broadcast(hopPayload{hops: 1})
}

func (*flooder) Halted() bool { return false }

// runFloodDigest executes a 24-round flood on H(48,6) under the given
// delay model spec ("" = the legacy synchronous engine) and returns the
// transcript digest.
func runFloodDigest(t *testing.T, delaySpec string) string {
	t.Helper()
	const n, d = 48, 6
	g := mustHND(t, n, d, 1301)
	delay, err := sim.ParseDelayModel(delaySpec)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New(g, sim.WithSeed(11), sim.WithDelayModel(delay))
	procs := make([]sim.Proc, n)
	recs := make([]*transcriptProc, n)
	for v := range procs {
		recs[v] = &transcriptProc{inner: &flooder{}}
		procs[v] = recs[v]
	}
	if err := eng.Attach(procs); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(24); err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	var buf [8]byte
	for _, rec := range recs {
		for i := 0; i < 8; i++ {
			buf[i] = byte(rec.sum >> (8 * i))
		}
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// TestVTWindowTwoDegeneration: uniform:1-1 is a fixed next-tick model —
// the minimal window=2 ring — and must produce the transcript of the
// unit model and of the legacy synchronous engine, byte-for-byte.
func TestVTWindowTwoDegeneration(t *testing.T) {
	legacy := runFloodDigest(t, "")
	unit := runFloodDigest(t, "unit")
	fixed := runFloodDigest(t, "uniform:1-1")
	if unit != legacy {
		t.Errorf("unit VT digest %s != legacy synchronous digest %s", unit, legacy)
	}
	if fixed != legacy {
		t.Errorf("uniform:1-1 digest %s != legacy synchronous digest %s", fixed, legacy)
	}
}

// skewDelay is a deliberately misbehaving hand-built DelayModel: it
// declares MaxDelay 3 but returns 0 or 7 — both outside [1, 3].
type skewDelay struct{}

func (skewDelay) Name() string  { return "skew" }
func (skewDelay) MaxDelay() int { return 3 }
func (skewDelay) Draws() bool   { return false }
func (skewDelay) Delay(rng *xrand.Rand, round, from, to int) int {
	if (round+from)%2 == 0 {
		return 0
	}
	return 7
}

// clampedDelay is skewDelay's in-range twin: it returns the values the
// engine must clamp skewDelay's results to (0 -> 1, 7 -> 3).
type clampedDelay struct{}

func (clampedDelay) Name() string  { return "clamped" }
func (clampedDelay) MaxDelay() int { return 3 }
func (clampedDelay) Draws() bool   { return false }
func (clampedDelay) Delay(rng *xrand.Rand, round, from, to int) int {
	if (round+from)%2 == 0 {
		return 1
	}
	return 3
}

// runModelDigest executes the flood with a hand-built model installed
// and returns the digest plus final metrics.
func runModelDigest(t *testing.T, m sim.DelayModel) (string, sim.Metrics) {
	t.Helper()
	const n, d = 48, 6
	g := mustHND(t, n, d, 1301)
	eng := sim.New(g, sim.WithSeed(11), sim.WithDelayModel(m))
	procs := make([]sim.Proc, n)
	recs := make([]*transcriptProc, n)
	for v := range procs {
		recs[v] = &transcriptProc{inner: &flooder{}}
		procs[v] = recs[v]
	}
	if err := eng.Attach(procs); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(24); err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	var buf [8]byte
	for _, rec := range recs {
		for i := 0; i < 8; i++ {
			buf[i] = byte(rec.sum >> (8 * i))
		}
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64()), eng.Metrics()
}

// TestVTDelayClampCounted: a model returning latencies outside
// [1, MaxDelay] is clamped into range (so schedules match the in-range
// twin exactly) and every clamp is counted in Metrics.DelayClamped —
// the misconfiguration is visible, not silently reshaped.
func TestVTDelayClampCounted(t *testing.T) {
	skewDigest, skewM := runModelDigest(t, skewDelay{})
	cleanDigest, cleanM := runModelDigest(t, clampedDelay{})
	if skewDigest != cleanDigest {
		t.Errorf("clamped skew digest %s != in-range twin digest %s", skewDigest, cleanDigest)
	}
	if cleanM.DelayClamped != 0 {
		t.Errorf("in-range model counted %d clamps, want 0", cleanM.DelayClamped)
	}
	// Every skew draw is out of range, so every sent message (delivered
	// or still in flight at the end) must have been counted. 24 rounds
	// of full broadcast send 24*n*d messages.
	if want := int64(24 * 48 * 6); skewM.DelayClamped != want {
		t.Errorf("DelayClamped = %d, want %d (every message clamps)", skewM.DelayClamped, want)
	}
	if skewM.TicksSkipped != 0 || cleanM.TicksSkipped != 0 {
		t.Error("round-driven flood must never skip ticks")
	}
}

// TestVTScenarioCellsNeverSkip: the E19/E20 scenario cells run
// round-driven counting procs, so tick fast-forwarding must be
// structurally unavailable — TicksSkipped stays 0 even though skipping
// defaults on. (Their tables being byte-identical to PR 7 is pinned by
// the golden suite; this pins the reason.)
func TestVTScenarioCellsNeverSkip(t *testing.T) {
	cells := []expt.Scenario{
		{Proto: "congest", Substrate: "hnd", N: 64, D: 8, MaxPhase: 4, StopFrac: 1,
			Delay: "gst:8/uniform:1-6"},
		{Proto: "congest", Substrate: "hnd", N: 64, D: 8, MaxPhase: 4, StopFrac: 1,
			Delay: "unit", Fault: "partition:2@10-40"},
	}
	for i, sc := range cells {
		r, err := expt.RunScenario(sc, xrand.New(42), expt.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if r.Metrics.TicksSkipped != 0 {
			t.Errorf("cell %d: TicksSkipped = %d on a round-driven scenario, want 0",
				i, r.Metrics.TicksSkipped)
		}
	}
}
