package sim

// The virtual-time hot path: devirtualized delay/fault dispatch, sparse
// (occupancy-tracked) ring delivery, and the marker contract behind tick
// fast-forwarding.
//
// PR 7's scheduler paid two interface calls plus a lazy stream lookup
// per admitted message and an O(n) ring-row scan per tick. Here the
// installed DelayModel/FaultModel are type-switched ONCE per tick into a
// small plain-data dispatch record (vtRound); the per-message loop then
// branches on an enum instead of calling through an interface, draws no
// RNG at all for fixed-latency ticks (unit, post-GST, degenerate
// uniform, region with Near == Far), skips the fault stream entirely for
// drop p=0 / p=1 and for ticks outside the partition window, and hoists
// the per-sender stream lookups out of the message loop. Every inlined
// arm consumes exactly the draws the model's own Delay/Drop would, so
// transcripts are bit-identical to the interface path.
//
// Sparse delivery generalizes this from messages to ticks: each
// (shard, ring slot) pair tracks its pending-message count and a
// compact list of occupied rows, so a tick's delivery scans and clears
// O(delivered) rows instead of O(n) — per worker, O(delivered/shards +
// shard-local always-step) under the pool — and an all-empty tick is
// detected in O(shards), at which point the scheduler may fast-forward
// the virtual clock (see TickDriven). The parallel overlay is race-free
// by ownership: step worker i reads and clears only shard i's
// current-slot region, merge worker s appends only to shard s's
// regions, the two phases are barrier-separated, and no message can
// target the slot being delivered (delays are >= 1).

import (
	"slices"

	"byzcount/internal/xrand"
)

// TickDriven is an opt-in marker for processes that are strictly
// message-driven: a Step with an empty inbox must send nothing and
// change no observable state (Halted must not flip, and the proc must
// not touch its Env stream). Additionally, a TickDriven proc's Halted()
// may transition only during its own Step — never as a side effect of
// another process's Step.
//
// When every live process attached to a virtual-time engine is
// TickDriven, executing an empty tick is provably a no-op, so the
// scheduler — serial or sharded-parallel — jumps the virtual clock over
// it (counted in Metrics.TicksSkipped; Rounds and MessagesByRound
// advance as if the tick had run). The emptiness test is one occCnt
// load per shard. Round-driven processes — timers, beacon schedules,
// flood sources that broadcast unprompted — must NOT carry the marker:
// they are stepped on every tick, empty or not, and their presence
// disables fast-forwarding (but not sparse delivery) automatically.
type TickDriven interface {
	StepsOnMessagesOnly()
}

// Delay dispatch kinds, resolved once per tick by resolveVT. dkFixed
// covers every model arm that needs neither RNG nor per-message
// predicates: unit, any GST model at or past its stabilization tick,
// uniform with Min == Max, region with Near == Far.
const (
	dkFixed   uint8 = iota // constant latency d0; no draw
	dkUniform              // d0 + Intn(dSpan)
	dkGeo                  // GeometricP(dP) capped at d1
	dkRegion               // d0 within a region, d1 across (mod dRegions)
	dkIface                // unknown model: interface call + counted clamps
)

// Fault dispatch kinds. fkNone covers no model, drop p=0, and every
// tick outside a partition's [From, Heal) window — the per-tick
// partition predicate is evaluated here, once, not per message.
const (
	fkNone      uint8 = iota // nothing can drop this tick
	fkDrop                   // Bernoulli(fP) on the sender's fault stream
	fkDropAll                // drop p>=1: every message lost, no draw
	fkPartition              // cross-group loss (mod fGroups), no draw
	fkIface                  // unknown model: interface call
)

// vtRound is one tick's devirtualized model dispatch: plain data, no
// interface values, rebuilt each tick (GST and partition windows make
// the resolution tick-dependent). needD/needF gate the per-vertex
// stream hoists so non-drawing ticks never derive streams.
type vtRound struct {
	dk, dk2      uint8 // dk2 spare for alignment; unused
	fk           uint8
	needD, needF bool
	d0, d1       int     // fixed/min/near; cap/far
	dSpan        int     // uniform: Max-Min+1
	dRegions     int     // region: group modulus
	dP           float64 // geo: stop probability
	fGroups      int     // partition: group modulus
	fP           float64 // drop: loss probability
}

// resolveVT type-switches the installed models into tick t's dispatch
// record. Built-in models with parameters inside the validated ranges
// (what ParseDelayModel/ParseFaultModel emit) get inlined arms; anything
// else — custom models, hand-built structs with out-of-range fields —
// falls back to the interface arm, which preserves the PR-7 semantics
// exactly (including latency clamping, now counted in
// Metrics.DelayClamped instead of silent).
func (e *Engine) resolveVT(tick int) vtRound {
	r := vtRound{dk: dkFixed, d0: 1, fk: fkNone}
	w := e.window
	m := e.delay
	// A GST model is its inner model before the stabilization tick and
	// the unit model after it; the inner stream must advance only before
	// GST, which unwrapping here (instead of per message) guarantees.
	for {
		g, ok := m.(GSTDelay)
		if !ok {
			break
		}
		if tick >= g.GST {
			m = UnitDelay{}
		} else {
			m = g.Inner
		}
	}
	switch d := m.(type) {
	case nil, UnitDelay:
		// dkFixed, d0 = 1
	case UniformDelay:
		switch {
		case d.Min < 1 || d.Max < d.Min || d.Max >= w:
			r.dk = dkIface
		case d.Max == d.Min:
			r.d0 = d.Min // degenerate interval: no draw, like the model
		default:
			r.dk, r.d0, r.dSpan = dkUniform, d.Min, d.Max-d.Min+1
		}
	case GeometricDelay:
		if d.P > 0 && d.P <= 1 && d.Cap >= 1 && d.Cap < w {
			r.dk, r.dP, r.d1 = dkGeo, d.P, d.Cap
		} else {
			r.dk = dkIface
		}
	case RegionDelay:
		switch {
		case d.Regions < 1 || d.Near < 1 || d.Near >= w || d.Far < 1 || d.Far >= w:
			r.dk = dkIface
		case d.Near == d.Far:
			r.d0 = d.Near
		default:
			r.dk, r.dRegions, r.d0, r.d1 = dkRegion, d.Regions, d.Near, d.Far
		}
	default:
		r.dk = dkIface
	}
	switch f := e.fault.(type) {
	case nil:
	case DropFault:
		switch {
		case f.P <= 0:
			// fkNone: nothing to draw — the verdict is known. The fault
			// stream is private to fault verdicts, so not advancing it
			// is unobservable.
		case f.P >= 1:
			r.fk = fkDropAll
		default:
			r.fk, r.fP = fkDrop, f.P
		}
	case PartitionFault:
		switch {
		case tick < f.From || (f.Heal > 0 && tick >= f.Heal):
			// fkNone: outside the partition window.
		case f.Groups >= 1:
			r.fk, r.fGroups = fkPartition, f.Groups
		default:
			r.fk = fkIface
		}
	default:
		r.fk = fkIface
	}
	r.needD = r.dk == dkUniform || r.dk == dkGeo || r.dk == dkIface
	r.needF = r.fk == fkDrop || r.fk == fkIface
	return r
}

// deliverVT admits and schedules one sender's outgoing messages for a
// serial virtual-time round. The admission pipeline order is fixed —
//
//	neighbor check -> capacity budget -> fault verdict -> latency draw
//
// — matching PR 7's roundSerialVT exactly (a faulted message has spent
// the edge but is counted in Dropped, not Messages, and does not
// advance the latency stream). Fully static ticks (dkFixed + fkNone:
// unit latency, post-GST) take a dedicated lane with the destination
// ring slot hoisted out of the loop; that lane is what the
// vt-flood-vs-flood CI floor measures. The admission logic is
// hand-inlined like roundSerial's: this is the engine's hot path.
func (e *Engine) deliverVT(ws *workerState, v, tick int, vtr *vtRound, out []Outgoing) {
	n := e.n
	window := e.window
	capBits := e.edgeCapBits
	nbrMark := ws.nbrMark
	ws.gen++
	gen := ws.gen
	for _, w := range e.sortedAdj[v] {
		nbrMark[w] = gen
	}
	fromID := e.ids[v]
	perNodeMax := e.metrics.PerNodeMaxBit
	maxSent := perNodeMax[v]
	sparse := e.sparse
	var msgs, totalBits int64
	if vtr.dk == dkFixed && vtr.fk == fkNone {
		si := (tick + vtr.d0) % window
		dst := e.ring[si]
		for _, msg := range out {
			to, payload := msg.To, msg.Payload
			if uint(to) >= uint(n) || nbrMark[to] != gen {
				ws.violations++
				continue
			}
			bits := 0
			if payload != nil {
				bits = payload.SizeBits()
			}
			if capBits > 0 {
				if ws.budgetGen[to] != gen {
					ws.budgetGen[to] = gen
					ws.budget[to] = 0
				}
				if ws.budget[to]+bits > capBits {
					ws.capped++
					continue
				}
				ws.budget[to] += bits
			}
			msgs++
			totalBits += int64(bits)
			if bits > ws.maxMsgBits {
				ws.maxMsgBits = bits
			}
			if bits > maxSent {
				maxSent = bits
			}
			row := dst[to]
			if sparse && len(row) == 0 {
				e.occRows[si] = append(e.occRows[si], int32(to))
			}
			dst[to] = append(row, Incoming{From: v, FromID: fromID, Payload: payload})
		}
		if sparse {
			e.occCnt[si] += msgs
		}
	} else {
		var dRng, fRng *xrand.Rand
		if vtr.needD {
			dRng = e.delayStream(v)
		}
		if vtr.needF {
			fRng = e.faultStream(v)
		}
		var clamped int64
		for _, msg := range out {
			to, payload := msg.To, msg.Payload
			if uint(to) >= uint(n) || nbrMark[to] != gen {
				ws.violations++
				continue
			}
			bits := 0
			if payload != nil {
				bits = payload.SizeBits()
			}
			if capBits > 0 {
				if ws.budgetGen[to] != gen {
					ws.budgetGen[to] = gen
					ws.budget[to] = 0
				}
				if ws.budget[to]+bits > capBits {
					ws.capped++
					continue
				}
				ws.budget[to] += bits
			}
			switch vtr.fk {
			case fkNone:
			case fkPartition:
				if v%vtr.fGroups != to%vtr.fGroups {
					ws.dropped++
					continue
				}
			case fkDrop:
				if fRng.Bernoulli(vtr.fP) {
					ws.dropped++
					continue
				}
			case fkDropAll:
				ws.dropped++
				continue
			default:
				if e.fault.Drop(fRng, tick, v, to) {
					ws.dropped++
					continue
				}
			}
			var d int
			switch vtr.dk {
			case dkFixed:
				d = vtr.d0
			case dkUniform:
				d = vtr.d0 + dRng.Intn(vtr.dSpan)
			case dkGeo:
				d = dRng.GeometricP(vtr.dP)
				if d > vtr.d1 {
					d = vtr.d1
				}
			case dkRegion:
				if v%vtr.dRegions == to%vtr.dRegions {
					d = vtr.d0
				} else {
					d = vtr.d1
				}
			default:
				d = e.delay.Delay(dRng, tick, v, to)
				if d < 1 {
					d = 1
					clamped++
				} else if d >= window {
					d = window - 1
					clamped++
				}
			}
			msgs++
			totalBits += int64(bits)
			if bits > ws.maxMsgBits {
				ws.maxMsgBits = bits
			}
			if bits > maxSent {
				maxSent = bits
			}
			si := (tick + d) % window
			dst := e.ring[si]
			row := dst[to]
			if sparse {
				if len(row) == 0 {
					e.occRows[si] = append(e.occRows[si], int32(to))
				}
				e.occCnt[si]++
			}
			dst[to] = append(row, Incoming{From: v, FromID: fromID, Payload: payload})
		}
		ws.delayClamped += clamped
	}
	ws.messages += msgs
	ws.bits += totalBits
	perNodeMax[v] = maxSent
}

// roundSerialVT executes one virtual-time round on the calling
// goroutine: resolve the tick's dispatch record, then either the sparse
// lane (occupancy-tracked engines) or the dense lane (every vertex
// scanned, like the synchronous engine).
func (e *Engine) roundSerialVT(r int) bool {
	n := e.n
	ws := e.ws[0]
	if e.edgeCapBits > 0 && ws.budget == nil {
		ws.budget = make([]int, n)
		ws.budgetGen = make([]uint64, n)
	}
	if ws.nbrMark == nil {
		ws.nbrMark = make([]uint64, n)
	}
	tick := e.metrics.Rounds
	e.tick = tick
	vtr := e.resolveVT(tick)
	if e.sparse {
		return e.roundSparseVT(r, tick, &vtr)
	}
	box := e.ring[tick%e.window]
	dyn := e.topo != nil
	allHalted := true
	for v := 0; v < n; v++ {
		p := e.procs[v]
		if p == nil || p.Halted() {
			box[v] = box[v][:0]
			continue
		}
		allHalted = false
		if dyn && e.epochOf[v] != e.curEpoch {
			e.catchUpVertex(v)
		}
		out := p.Step(&e.envs[v], r, box[v])
		box[v] = box[v][:0]
		if len(out) == 0 {
			continue
		}
		e.deliverVT(ws, v, tick, &vtr, out)
		if cap(out) > cap(e.envs[v].scratch) {
			e.envs[v].scratch = out[:0]
		}
	}
	return allHalted
}

// roundSparseVT executes one occupancy-tracked virtual-time round: it
// steps the union of the always-step vertices (procs without the
// TickDriven marker — stepped every tick, exactly the dense semantics)
// and the rows occupied in this tick's ring slot, in ascending vertex
// order — the dense lane's order restricted to vertices whose Step
// could observably differ from a no-op. Occupied-row lists may carry
// stale entries (a Detach truncated the row) and duplicates (a slot
// recycled mid-flight); sorting plus the prev-dedupe below makes both
// harmless. The slot's list and counter are reset afterwards — O(1)
// amortized per delivered message, never O(n) per tick.
func (e *Engine) roundSparseVT(r, tick int, vtr *vtRound) bool {
	ws := e.ws[0]
	si := tick % e.window
	box := e.ring[si]
	occ := e.occRows[si]
	slices.Sort(occ)
	always := e.alwaysStep
	dyn := e.topo != nil
	liveAlways := 0
	ai, oi := 0, 0
	prev := int32(-1)
	for ai < len(always) || oi < len(occ) {
		var v32 int32
		if oi >= len(occ) || (ai < len(always) && always[ai] <= occ[oi]) {
			v32 = always[ai]
			ai++
		} else {
			v32 = occ[oi]
			oi++
		}
		if v32 == prev {
			continue
		}
		prev = v32
		v := int(v32)
		p := e.procs[v]
		if p == nil || p.Halted() {
			box[v] = box[v][:0]
			continue
		}
		td := e.isTD[v]
		if !td {
			liveAlways++
		}
		if dyn && e.epochOf[v] != e.curEpoch {
			e.catchUpVertex(v)
		}
		out := p.Step(&e.envs[v], r, box[v])
		box[v] = box[v][:0]
		if td && p.Halted() {
			e.tdLive--
		}
		if len(out) == 0 {
			continue
		}
		e.deliverVT(ws, v, tick, vtr, out)
		if cap(out) > cap(e.envs[v].scratch) {
			e.envs[v].scratch = out[:0]
		}
	}
	e.occRows[si] = occ[:0]
	e.occCnt[si] = 0
	return liveAlways == 0 && e.tdLive == 0
}

// vtCanSkip reports whether fast-forwarding over an empty tick is a
// provable no-op: no live always-step proc remains (each would be owed
// a Step), and at least one live TickDriven proc does (otherwise the
// round would end the run via the all-halted return, which a skip must
// not preempt). The scan early-exits on the first live always-step
// proc, so steady skipping costs O(1) per tick for message-driven
// populations.
func (e *Engine) vtCanSkip() bool {
	for _, v := range e.alwaysStep {
		if p := e.procs[v]; p != nil && !p.Halted() {
			return false
		}
	}
	return e.tdLive > 0
}

// recountTickDriven re-derives the live TickDriven count at Run entry.
// Within a run the count is maintained incrementally (Step-time halts,
// AttachAt, Detach); between runs procs may only halt during their own
// Step — part of the TickDriven contract — so this recount is a cheap
// O(n) belt-and-braces pass, not a correctness requirement.
func (e *Engine) recountTickDriven() {
	live := 0
	for v, p := range e.procs {
		if p != nil && v < len(e.isTD) && e.isTD[v] && !p.Halted() {
			live++
		}
	}
	e.tdLive = live
}

// occIdx maps (vertex, ring slot) to the occupancy overlay index. The
// layout is shard-major — occ[shard*window+slot] — so each merge worker
// owns one contiguous region and folds occupancy in race-free. Serial
// engines have one shard and the index degenerates to the slot itself,
// which is what the serial lanes (deliverVT, roundSparseVT) address
// directly. The shardOf length guard covers mid-hook growth: a vertex
// beyond the old capacity lands in slot-only indexing, and the pending
// regrow rebuilds the overlay from ring ground truth before the next
// round anyway.
func (e *Engine) occIdx(v, slot int) int {
	if len(e.ranges) > 1 && v < len(e.shardOf) {
		return int(e.shardOf[v])*e.window + slot
	}
	return slot
}

// occSlotEmpty reports whether ring slot `slot` holds no pending
// messages in any shard — the all-empty-tick test behind fast-forward,
// an O(shards) reduction over the shard-major overlay.
func (e *Engine) occSlotEmpty(slot int) bool {
	for idx := slot; idx < len(e.occCnt); idx += e.window {
		if e.occCnt[idx] != 0 {
			return false
		}
	}
	return true
}

// ensureOccupancy (re)builds the shard-major occupancy overlay from the
// ring's ground truth. Called whenever ensureState enables sparse mode,
// so messages left in flight across a parallelism or capacity change
// are re-discovered rather than stranded — and re-homed to whichever
// shard owns their destination under the new ranges.
func (e *Engine) ensureOccupancy() {
	w := e.window
	shards := len(e.ranges)
	if shards < 1 {
		shards = 1
	}
	total := shards * w
	if len(e.occCnt) != total {
		e.occCnt = make([]int64, total)
		e.occRows = make([][]int32, total)
	}
	for i := range e.occCnt {
		e.occCnt[i] = 0
		e.occRows[i] = e.occRows[i][:0]
	}
	for s := 0; s < w; s++ {
		for v, row := range e.ring[s] {
			if len(row) > 0 {
				idx := e.occIdx(v, s)
				e.occRows[idx] = append(e.occRows[idx], int32(v))
				e.occCnt[idx] += int64(len(row))
			}
		}
	}
}

// stepShardSparseVT is the sparse step phase of one parallel
// virtual-time round: worker i walks the union of its shard's
// always-step vertices (binary-searched out of the engine-wide sorted
// list) and the rows occupied in this tick's ring slot, in ascending
// vertex order — roundSparseVT's walk restricted to the shard, which is
// the dense parallel lane's order restricted to vertices whose Step
// could observably differ from a no-op. Occupancy reads and clears are
// worker-private: the overlay region belongs to shard i, and in-flight
// messages can never target the tick being delivered (delays are >= 1),
// so the merge phase never touches what this phase just cleared. Halt
// bookkeeping lands in the worker-local liveAlways/tdHalts counters;
// the coordinator folds them after the merge barrier.
func (e *Engine) stepShardSparseVT(i int) {
	ws := e.ws[i]
	r := e.round
	idx := i*e.window + e.tick%e.window
	occ := e.occRows[idx]
	slices.Sort(occ)
	lo, hi := e.ranges[i][0], e.ranges[i][1]
	always := e.alwaysStep
	aLo, _ := slices.BinarySearch(always, int32(lo))
	aHi, _ := slices.BinarySearch(always, int32(hi))
	always = always[aLo:aHi]
	box := e.cur
	ai, oi := 0, 0
	prev := int32(-1)
	for ai < len(always) || oi < len(occ) {
		var v32 int32
		if oi >= len(occ) || (ai < len(always) && always[ai] <= occ[oi]) {
			v32 = always[ai]
			ai++
		} else {
			v32 = occ[oi]
			oi++
		}
		if v32 == prev {
			continue
		}
		prev = v32
		v := int(v32)
		p := e.procs[v]
		if p == nil || p.Halted() {
			box[v] = box[v][:0]
			continue
		}
		td := e.isTD[v]
		if !td {
			ws.liveAlways++
		}
		e.stepVertexVT(v, r, ws)
		if td && p.Halted() {
			ws.tdHalts++
		}
	}
	e.occRows[idx] = occ[:0]
	e.occCnt[idx] = 0
}

// mergeShardVTSparse is mergeShardVT plus occupancy folding: while
// draining every worker's buckets for destination shard s into the ring
// (same slot-major, worker-order walk — ascending sender order, so
// transcripts stay byte-identical to serial), it appends each row that
// transitions empty -> nonempty to the shard's occupied-row list and
// counts every delivered message, exactly the accounting deliverVT does
// on the serial path. Rows left nonempty by a stale overlay entry
// (Detach truncation, slot recycling) duplicate their entry here, which
// delivery's sort+dedupe tolerates — the same contract as serial.
func (e *Engine) mergeShardVTSparse(s int) {
	window := e.window
	for slot := 0; slot < window; slot++ {
		box := e.ring[slot]
		idx := s*window + slot
		rows := e.occRows[idx]
		cnt := e.occCnt[idx]
		for i := range e.ranges {
			bucket := e.ws[i].vtb[idx]
			for _, m := range bucket {
				row := box[m.to]
				if len(row) == 0 {
					rows = append(rows, m.to)
				}
				box[m.to] = append(row, Incoming{
					From:    int(m.from),
					FromID:  e.ids[m.from],
					Payload: m.payload,
				})
				cnt++
			}
			e.ws[i].vtb[idx] = bucket[:0]
		}
		e.occRows[idx] = rows
		e.occCnt[idx] = cnt
	}
}

// hasTickDriven reports whether any attached proc carries the marker.
func (e *Engine) hasTickDriven() bool {
	for v := range e.isTD {
		if e.isTD[v] && e.procs[v] != nil {
			return true
		}
	}
	return false
}

// HasTickDriven reports whether any currently attached process carries
// the TickDriven marker — i.e. whether sparse delivery is active and
// tick fast-forwarding can ever engage on this engine. The CLI uses it
// to fail fast when -tickskip is requested for a protocol whose
// processes are all round-driven (fast-forwarding would be structurally
// inert, so an explicit request for it is a configuration error).
func (e *Engine) HasTickDriven() bool { return e.hasTickDriven() }

// SetTickSkip enables or disables virtual-tick fast-forwarding (default
// on). Skipping never changes transcripts or metrics other than
// Metrics.TicksSkipped — it elides ticks that are provable no-ops — so
// the toggle exists for A/B measurement and paranoia, not semantics.
func (e *Engine) SetTickSkip(on bool) { e.skip = on }

// stepVertexVT steps one vertex of a parallel virtual-time round,
// admitting its output into the worker's per-(destination-shard,
// ring-slot) buckets. Same pipeline order as deliverVT (see there); the
// dispatch record was resolved once by roundParallelVT and is read-only
// during the phase. Every stage is sender-local, so each decision is
// identical however vertices are scheduled.
func (e *Engine) stepVertexVT(v, r int, ws *workerState) {
	out := e.stepVertex(v, r, ws)
	if len(out) == 0 {
		if cap(out) > cap(e.envs[v].scratch) {
			e.envs[v].scratch = out[:0]
		}
		return
	}
	vtr := &e.vtr
	tick, window := e.tick, e.window
	n := e.n
	capBits := e.edgeCapBits
	var dRng, fRng *xrand.Rand
	if vtr.needD {
		dRng = e.delayStream(v)
	}
	if vtr.needF {
		fRng = e.faultStream(v)
	}
	perNodeMax := e.metrics.PerNodeMaxBit
	maxSent := perNodeMax[v]
	var clamped int64
	for i := range out {
		msg := &out[i]
		to, payload := msg.To, msg.Payload
		if uint(to) >= uint(n) || ws.nbrMark[to] != ws.gen {
			ws.violations++
			continue
		}
		bits := 0
		if payload != nil {
			bits = payload.SizeBits()
		}
		if capBits > 0 {
			if ws.budget == nil {
				ws.budget = make([]int, n)
				ws.budgetGen = make([]uint64, n)
			}
			if ws.budgetGen[to] != ws.gen {
				ws.budgetGen[to] = ws.gen
				ws.budget[to] = 0
			}
			if ws.budget[to]+bits > capBits {
				ws.capped++
				continue
			}
			ws.budget[to] += bits
		}
		switch vtr.fk {
		case fkNone:
		case fkPartition:
			if v%vtr.fGroups != to%vtr.fGroups {
				ws.dropped++
				continue
			}
		case fkDrop:
			if fRng.Bernoulli(vtr.fP) {
				ws.dropped++
				continue
			}
		case fkDropAll:
			ws.dropped++
			continue
		default:
			if e.fault.Drop(fRng, tick, v, to) {
				ws.dropped++
				continue
			}
		}
		var d int
		switch vtr.dk {
		case dkFixed:
			d = vtr.d0
		case dkUniform:
			d = vtr.d0 + dRng.Intn(vtr.dSpan)
		case dkGeo:
			d = dRng.GeometricP(vtr.dP)
			if d > vtr.d1 {
				d = vtr.d1
			}
		case dkRegion:
			if v%vtr.dRegions == to%vtr.dRegions {
				d = vtr.d0
			} else {
				d = vtr.d1
			}
		default:
			d = e.delay.Delay(dRng, tick, v, to)
			if d < 1 {
				d = 1
				clamped++
			} else if d >= window {
				d = window - 1
				clamped++
			}
		}
		ws.messages++
		ws.bits += int64(bits)
		if bits > ws.maxMsgBits {
			ws.maxMsgBits = bits
		}
		if bits > maxSent {
			maxSent = bits
		}
		idx := int(e.shardOf[to])*window + (tick+d)%window
		ws.vtb[idx] = append(ws.vtb[idx],
			routed{to: int32(to), from: int32(v), payload: payload})
	}
	ws.delayClamped += clamped
	perNodeMax[v] = maxSent
	if cap(out) > cap(e.envs[v].scratch) {
		e.envs[v].scratch = out[:0]
	}
}
