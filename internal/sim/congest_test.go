package sim

import (
	"testing"

	"byzcount/internal/graph"
)

// bigPayload simulates a LOCAL-model topology dump.
type bigPayload struct{ bits int }

func (p bigPayload) SizeBits() int { return p.bits }

// chattyProc sends count messages of size bits to one neighbor per round.
type chattyProc struct {
	bits, count int
	received    int
}

func (c *chattyProc) Step(env *Env, round int, in []Incoming) []Outgoing {
	c.received += len(in)
	out := make([]Outgoing, 0, c.count)
	for i := 0; i < c.count; i++ {
		out = append(out, Outgoing{To: env.Neighbors[0], Payload: bigPayload{bits: c.bits}})
	}
	return out
}
func (c *chattyProc) Halted() bool { return false }

func TestEdgeCapacityAdmitsSmallMessages(t *testing.T) {
	g, err := graph.Path(2)
	if err != nil {
		t.Fatal(err)
	}
	e := New(g, WithSeed(1))
	e.SetEdgeCapacity(512)
	recv := &chattyProc{bits: 0, count: 0}
	procs := []Proc{&chattyProc{bits: 400, count: 1}, recv}
	if err := e.Attach(procs); err != nil {
		t.Fatal(err)
	}
	e.SetStopCondition(func(r int) bool { return r >= 3 })
	if _, err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.Capped != 0 {
		t.Errorf("small messages capped: %d", m.Capped)
	}
	if recv.received == 0 {
		t.Error("nothing delivered")
	}
}

func TestEdgeCapacityDropsOversized(t *testing.T) {
	g, err := graph.Path(2)
	if err != nil {
		t.Fatal(err)
	}
	e := New(g, WithSeed(1))
	e.SetEdgeCapacity(512)
	recv := &chattyProc{}
	procs := []Proc{&chattyProc{bits: 4096, count: 1}, recv}
	if err := e.Attach(procs); err != nil {
		t.Fatal(err)
	}
	e.SetStopCondition(func(r int) bool { return r >= 3 })
	if _, err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.Capped == 0 {
		t.Error("oversized message not capped")
	}
	if recv.received != 0 {
		t.Errorf("oversized message delivered %d times", recv.received)
	}
}

func TestEdgeCapacityBudgetIsPerEdgePerRound(t *testing.T) {
	g, err := graph.Path(2)
	if err != nil {
		t.Fatal(err)
	}
	e := New(g, WithSeed(1))
	e.SetEdgeCapacity(512)
	recv := &chattyProc{}
	// Three 200-bit messages per round on one edge: two fit, one is capped.
	procs := []Proc{&chattyProc{bits: 200, count: 3}, recv}
	if err := e.Attach(procs); err != nil {
		t.Fatal(err)
	}
	e.SetStopCondition(func(r int) bool { return r >= 4 })
	if _, err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.Capped == 0 {
		t.Fatal("no capping with 600 > 512 bits per round")
	}
	// Each sending round: 2 delivered (one round later), 1 capped. The
	// run executes rounds 0..4, so sends from rounds 0..3 are delivered.
	if recv.received != 8 {
		t.Errorf("received %d messages, want 8 (2 per sending round x 4 delivered rounds)", recv.received)
	}
	if m.Capped != 5 {
		t.Errorf("capped %d, want 5 (1 per sending round x 5 rounds)", m.Capped)
	}
}

func TestEdgeCapacityZeroMeansLocalModel(t *testing.T) {
	g, err := graph.Path(2)
	if err != nil {
		t.Fatal(err)
	}
	e := New(g, WithSeed(1))
	recv := &chattyProc{}
	procs := []Proc{&chattyProc{bits: 1 << 20, count: 4}, recv}
	if err := e.Attach(procs); err != nil {
		t.Fatal(err)
	}
	e.SetStopCondition(func(r int) bool { return r >= 2 })
	if _, err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if e.Metrics().Capped != 0 {
		t.Error("LOCAL model capped messages")
	}
	if recv.received == 0 {
		t.Error("nothing delivered")
	}
}
