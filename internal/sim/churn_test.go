package sim_test

// Determinism and safety guards for the unified engine's mutable-
// topology path: a transcript digest over every delivered message of a
// CONGEST counting run under a join/leave storm, pinned serial vs the
// sharded parallel engine; a property run asserting the topology
// invariants hold after every round of a 500-round churn run (balanced,
// growing, and shrinking churn, serial and parallel); and unit tests
// for the Detach/AttachAt membership lifecycle.

import (
	"fmt"
	"hash/fnv"
	"reflect"
	"testing"

	"byzcount/internal/byzantine"
	"byzcount/internal/counting"
	"byzcount/internal/dynamic"
	"byzcount/internal/perf"
	"byzcount/internal/sim"
	"byzcount/internal/xrand"
)

// slotDigestProc folds every delivered message into a per-slot digest
// (foldTranscript with the receiving ID included, so slot recycling is
// pinned too) shared across the slot's successive occupants: each
// joiner's wrapper chains onto the accumulator the departed node left,
// so the combined digest covers the whole membership history in slot
// order. Per-slot state keeps the wrapper safe under the sharded
// parallel engine.
type slotDigestProc struct {
	inner sim.Proc
	slot  int
	sums  []uint64
}

func (p *slotDigestProc) Halted() bool { return p.inner.Halted() }

func (p *slotDigestProc) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	p.sums[p.slot] = foldTranscript(p.sums[p.slot], round, env, true, in)
	return p.inner.Step(env, round, in)
}

// runChurnTranscript executes a CONGEST counting run under a churn storm
// (two leaves and two joins between every round for the first 60 rounds)
// with transcript recording, and returns the combined digest plus the
// run's metrics and churn counts.
func runChurnTranscript(t *testing.T, workers int) (string, sim.Metrics, int, int) {
	t.Helper()
	const n, d = 128, 8
	params := counting.DefaultCongestParams(d)
	params.MaxPhase = 8
	maxRounds := params.Schedule.RoundsThroughPhase(params.MaxPhase + 1)
	net, err := dynamic.NewNetwork(n, d, xrand.New(4001))
	if err != nil {
		t.Fatal(err)
	}
	sums := make([]uint64, 4*n) // room for slot-table growth
	run, err := dynamic.NewRunner(net, dynamic.Churn{Leaves: 2, Joins: 2, StopAfter: 60, Mixed: true}, 4002,
		func(slot dynamic.Slot, id sim.NodeID) sim.Proc {
			return &slotDigestProc{inner: counting.NewCongestProc(params), slot: slot, sums: sums}
		})
	if err != nil {
		t.Fatal(err)
	}
	run.SetParallelism(workers)
	if _, err := run.Run(maxRounds); err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	var buf [8]byte
	for _, sum := range sums {
		for i := 0; i < 8; i++ {
			buf[i] = byte(sum >> (8 * i))
		}
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64()), run.Metrics(), run.Joined(), run.Left()
}

// TestChurnTranscriptSerialParallel pins the parallel engine's delivery
// transcript under a join/leave storm to the serial engine's: same
// digest, same metrics, same churn counts for workers 3 and 8.
func TestChurnTranscriptSerialParallel(t *testing.T) {
	want, wantM, wantJ, wantL := runChurnTranscript(t, 1)
	if wantJ == 0 || wantL == 0 {
		t.Fatal("storm applied no churn; the scenario is degenerate")
	}
	if wantM.Messages == 0 {
		t.Fatal("scenario delivered no messages")
	}
	for _, w := range []int{3, 8} {
		got, gotM, gotJ, gotL := runChurnTranscript(t, w)
		if got != want {
			t.Errorf("workers=%d: churn transcript digest %s != serial %s", w, got, want)
		}
		if !reflect.DeepEqual(wantM, gotM) {
			t.Errorf("workers=%d: metrics diverge:\nserial:   %+v\nparallel: %+v", w, wantM, gotM)
		}
		if gotJ != wantJ || gotL != wantL {
			t.Errorf("workers=%d: churn %d/%d != serial %d/%d", w, gotJ, gotL, wantJ, wantL)
		}
	}
}

// runChurnByzTranscript executes a CONGEST counting run under
// SIMULTANEOUS churn and beacon spam — the cross-product path E16-E18
// exercise: a join/leave storm for the first 60 rounds while a roster
// keeps ~8% of the membership Byzantine (initial members by placement,
// joiners by the roster's stream), honest slots counting and Byzantine
// slots spamming fabricated beacons. Returns the combined per-slot
// transcript digest plus metrics and churn counts.
func runChurnByzTranscript(t *testing.T, workers int) (string, sim.Metrics, int, int) {
	t.Helper()
	const n, d = 128, 8
	byzFrac := 0.08
	params := counting.DefaultCongestParams(d)
	params.MaxPhase = 8
	rng := xrand.New(4005)
	net, err := dynamic.NewNetwork(n, d, rng.Split("net"))
	if err != nil {
		t.Fatal(err)
	}
	mask, err := byzantine.RandomPlacement(net, int(byzFrac*float64(n)), rng.Split("place"))
	if err != nil {
		t.Fatal(err)
	}
	roster, err := byzantine.NewRoster(mask, net.NumAlive(), byzFrac, rng.Split("roster"))
	if err != nil {
		t.Fatal(err)
	}
	sums := make([]uint64, 4*n)
	initial := true
	run, err := dynamic.NewRunner(net, dynamic.Churn{Leaves: 2, Joins: 2, StopAfter: 60, Mixed: true}, 4006,
		func(slot dynamic.Slot, id sim.NodeID) sim.Proc {
			isByz := roster.IsByz(slot)
			if !initial {
				isByz = roster.OnJoin(slot)
			}
			var inner sim.Proc = counting.NewCongestProc(params)
			if isByz {
				inner = byzantine.NewBeaconSpammer(params.Schedule, 6, false, rng.SplitN("spam", slot))
			}
			return &slotDigestProc{inner: inner, slot: slot, sums: sums}
		})
	if err != nil {
		t.Fatal(err)
	}
	initial = false
	run.SetLeaveHook(roster.OnLeave)
	run.SetParallelism(workers)
	if _, err := run.Run(400); err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	var buf [8]byte
	for _, sum := range sums {
		for i := 0; i < 8; i++ {
			buf[i] = byte(sum >> (8 * i))
		}
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64()), run.Metrics(), run.Joined(), run.Left()
}

// TestChurnByzTranscriptSerialParallel pins the delivery transcript of
// the combined churn + Byzantine scenario to the serial engine's for
// workers 3 and 8 — the determinism contract extended to the
// cross-product path (adversary procs stepping on recycled slots while
// the roster turns the membership over).
func TestChurnByzTranscriptSerialParallel(t *testing.T) {
	want, wantM, wantJ, wantL := runChurnByzTranscript(t, 1)
	if wantJ == 0 || wantL == 0 {
		t.Fatal("storm applied no churn; the scenario is degenerate")
	}
	if wantM.Messages == 0 {
		t.Fatal("scenario delivered no messages")
	}
	for _, w := range []int{3, 8} {
		got, gotM, gotJ, gotL := runChurnByzTranscript(t, w)
		if got != want {
			t.Errorf("workers=%d: churn+byz transcript digest %s != serial %s", w, got, want)
		}
		if !reflect.DeepEqual(wantM, gotM) {
			t.Errorf("workers=%d: metrics diverge:\nserial:   %+v\nparallel: %+v", w, wantM, gotM)
		}
		if gotJ != wantJ || gotL != wantL {
			t.Errorf("workers=%d: churn %d/%d != serial %d/%d", w, gotJ, gotL, wantJ, wantL)
		}
	}
}

// TestChurnValidateEveryRound: over a 500-round churn run the topology
// invariants (every cycle a single ring over exactly the alive slots)
// hold after every round — for balanced churn, net growth (which forces
// the engine's slot arrays and worker shards to rebuild mid-run), and
// net shrink down to the 3-node floor, serially and sharded.
func TestChurnValidateEveryRound(t *testing.T) {
	churns := []dynamic.Churn{
		{Leaves: 2, Joins: 2, Mixed: true},
		{Leaves: 1, Joins: 2, Mixed: true}, // grows past the constructed capacity
		{Leaves: 2, Joins: 1, Mixed: true}, // shrinks to the floor
	}
	for _, churn := range churns {
		t.Run(fmt.Sprintf("leaves=%d,joins=%d", churn.Leaves, churn.Joins), func(t *testing.T) {
			runOnce := func(workers int) sim.Metrics {
				t.Helper()
				net, err := dynamic.NewNetwork(64, 4, xrand.New(4003))
				if err != nil {
					t.Fatal(err)
				}
				run, err := dynamic.NewRunner(net, churn, 4004,
					func(slot dynamic.Slot, id sim.NodeID) sim.Proc { return &perf.FloodProc{} })
				if err != nil {
					t.Fatal(err)
				}
				run.SetParallelism(workers)
				var invariant error
				rounds := 0
				// The stop condition runs after every round's churn has been
				// applied, so it observes exactly the topology the next round
				// will execute on.
				run.Engine().SetStopCondition(func(round int) bool {
					rounds++
					if err := net.Validate(); err != nil && invariant == nil {
						invariant = fmt.Errorf("round %d: %w", round, err)
					}
					return invariant != nil
				})
				if _, err := run.Run(500); err != nil {
					t.Fatal(err)
				}
				if invariant != nil {
					t.Fatalf("workers=%d: %v", workers, invariant)
				}
				if rounds != 500 {
					t.Fatalf("workers=%d: run stopped after %d rounds, want 500", workers, rounds)
				}
				alive := 0
				for s := 0; s < net.Slots(); s++ {
					if net.Alive(s) {
						if run.Proc(s) == nil {
							t.Fatalf("alive slot %d has no process", s)
						}
						alive++
					} else if run.Proc(s) != nil {
						t.Fatalf("dead slot %d still has a process", s)
					}
				}
				if alive != net.NumAlive() {
					t.Fatalf("alive mask counts %d, NumAlive says %d", alive, net.NumAlive())
				}
				return run.Metrics()
			}
			// Growth and shrink must not perturb determinism either: the
			// sharded run's metrics match the serial run's exactly, mid-run
			// worker-shard rebuilds included.
			serialM := runOnce(1)
			if gotM := runOnce(3); !reflect.DeepEqual(serialM, gotM) {
				t.Errorf("metrics diverge from serial:\nserial:   %+v\nparallel: %+v", serialM, gotM)
			}
		})
	}
}

// TestDetachAttachLifecycle covers the membership API directly on a
// static engine: detached vertices are skipped, recycled slots accept a
// joiner exactly once, the ID index follows the turnover, and the
// neighbors' cached NeighborIDs are patched in place.
func TestDetachAttachLifecycle(t *testing.T) {
	g := mustHND(t, 32, 4, 5001)
	eng := sim.New(g, sim.WithSeed(5002))
	procs := make([]sim.Proc, 32)
	for v := range procs {
		procs[v] = &perf.FloodProc{}
	}
	if err := eng.Attach(procs); err != nil {
		t.Fatal(err)
	}
	oldID := eng.ID(7)
	if err := eng.Detach(7); err != nil {
		t.Fatal(err)
	}
	if err := eng.Detach(7); err == nil {
		t.Error("double Detach accepted")
	}
	if eng.VertexOf(oldID) != -1 {
		t.Error("departed ID still resolves")
	}
	if eng.Proc(7) != nil {
		t.Error("detached slot still has a process")
	}
	if _, err := eng.Run(3); err != nil {
		t.Fatal(err)
	}
	const newID = sim.NodeID(0xfeedface)
	if err := eng.AttachAt(7, newID, &perf.FloodProc{}); err != nil {
		t.Fatal(err)
	}
	if err := eng.AttachAt(7, sim.NodeID(1), &perf.FloodProc{}); err == nil {
		t.Error("AttachAt on an occupied slot accepted")
	}
	if err := eng.AttachAt(3, newID, &perf.FloodProc{}); err == nil {
		t.Error("duplicate-ID AttachAt accepted")
	}
	if err := eng.AttachAt(5, sim.NodeID(2), nil); err == nil {
		t.Error("nil-process AttachAt accepted")
	}
	if err := eng.AttachAt(64, sim.NodeID(3), &perf.FloodProc{}); err == nil {
		t.Error("growth beyond a static graph accepted")
	}
	if eng.VertexOf(newID) != 7 || eng.ID(7) != newID {
		t.Error("ID index did not follow the join")
	}
	for _, w := range g.Neighbors(7) {
		env := eng.Env(w)
		for k, x := range env.Neighbors {
			if x == 7 && env.NeighborIDs[k] != newID {
				t.Errorf("vertex %d still caches the old ID of vertex 7", w)
			}
		}
	}
	if _, err := eng.Run(3); err != nil {
		t.Fatal(err)
	}
	if eng.Metrics().Messages == 0 {
		t.Error("no traffic after recycling")
	}
}
