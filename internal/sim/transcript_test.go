package sim_test

// Transcript golden test: a FNV-1a digest over every delivered message
// (round, receiving vertex, sender vertex, sender ID, payload content)
// in delivery order. The constant below was recorded from the seed
// serial engine; any change to delivery order, admission decisions, or
// message content — e.g. from the arena/scratch-buffer memory model or
// the parallel worker pool — breaks this test. Parallel runs must
// produce the identical digest.

import (
	"fmt"
	"hash/fnv"
	"testing"

	"byzcount/internal/byzantine"
	"byzcount/internal/counting"
	"byzcount/internal/sim"
	"byzcount/internal/xrand"
)

// seedCongestTranscript is the digest of the scenario below as produced
// by the seed (pre-arena) serial engine.
const seedCongestTranscript = "4515ce4d3c5d24e5"

// foldTranscript chains one round's delivered messages onto sum with
// FNV-1a: round, receiving vertex (plus its current ID when withID is
// set — the churn tests need it to pin slot recycling), then each
// message's sender vertex, sender ID, and payload content. Shared by
// the static transcript pin below and the churn transcript pin in
// churn_test.go, so the payload coverage cannot drift apart.
func foldTranscript(sum uint64, round int, env *sim.Env, withID bool, in []sim.Incoming) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w64 := func(x uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(x >> (8 * i))
		}
		h.Write(buf[:])
	}
	w64(sum)
	w64(uint64(round))
	w64(uint64(env.Vertex))
	if withID {
		w64(uint64(env.ID))
	}
	for _, m := range in {
		w64(uint64(m.From))
		w64(uint64(m.FromID))
		switch p := m.Payload.(type) {
		case counting.Beacon:
			w64(1)
			w64(uint64(p.Origin))
			for _, id := range p.Path {
				w64(uint64(id))
			}
		case counting.Continue:
			w64(2)
		default:
			w64(3)
			w64(uint64(p.SizeBits()))
		}
	}
	return h.Sum64()
}

// transcriptProc wraps a process and folds every delivered message into
// a per-vertex FNV-1a digest before delegating. Per-vertex state keeps
// the wrapper safe under the sharded parallel engine; digests are
// combined in vertex order afterwards, so the total is schedule-independent.
type transcriptProc struct {
	inner sim.Proc
	sum   uint64
}

func (t *transcriptProc) Halted() bool { return t.inner.Halted() }

func (t *transcriptProc) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	t.sum = foldTranscript(t.sum, round, env, false, in)
	return t.inner.Step(env, round, in)
}

// runTranscript executes the congest-under-spam scenario of the golden
// tests with transcript recording and returns the combined digest.
func runTranscript(t *testing.T, workers int) string {
	t.Helper()
	const n, d = 192, 8
	g := mustHND(t, n, d, 1001)
	rng := xrand.New(1002)
	byz, err := byzantine.RandomPlacement(g, 6, rng.Split("place"))
	if err != nil {
		t.Fatal(err)
	}
	params := counting.DefaultCongestParams(d)
	params.MaxPhase = 8
	maxRounds := params.Schedule.RoundsThroughPhase(params.MaxPhase + 1)

	eng := sim.New(g, sim.WithSeed(7))
	eng.SetParallelism(workers)
	eng.SetEdgeCapacity(512)
	procs := make([]sim.Proc, n)
	recs := make([]*transcriptProc, n)
	spamRng := xrand.New(1003)
	for v := range procs {
		var inner sim.Proc
		if byz[v] {
			inner = byzantine.NewBeaconSpammer(params.Schedule, 6, true, spamRng.SplitN("spam", v))
		} else {
			inner = counting.NewCongestProc(params)
		}
		recs[v] = &transcriptProc{inner: inner}
		procs[v] = recs[v]
	}
	if err := eng.Attach(procs); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(maxRounds); err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	var buf [8]byte
	for _, rec := range recs {
		for i := 0; i < 8; i++ {
			buf[i] = byte(rec.sum >> (8 * i))
		}
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// TestTranscriptGoldenSerial pins the serial engine's delivery
// transcript to the digest recorded from the seed engine.
func TestTranscriptGoldenSerial(t *testing.T) {
	if got := runTranscript(t, 1); got != seedCongestTranscript {
		t.Errorf("serial transcript digest %s != seed %s", got, seedCongestTranscript)
	}
}

// TestTranscriptGoldenParallel pins the parallel engine (several worker
// counts) to the same seed transcript, inbox order included.
func TestTranscriptGoldenParallel(t *testing.T) {
	for _, w := range workerCounts[1:] {
		if got := runTranscript(t, w); got != seedCongestTranscript {
			t.Errorf("workers=%d transcript digest %s != seed %s", w, got, seedCongestTranscript)
		}
	}
}
