//go:build !race

package sim_test

// Slab-budget guard for topology-engine construction: with a
// TopologyDegrees hint, the first round's lazy neighborhood resolution
// appends into pre-carved slab chunks instead of growing nil slices.
// Without the pre-carve, resolving n vertices costs ~3n allocations
// (Neighbors, NeighborIDs, sortedAdj each); with it, O(arcs/chunk).
// The race detector changes allocation behavior, so this file is
// excluded under -race (same convention as graph/alloc_test.go).

import (
	"runtime"
	"testing"

	"byzcount/internal/graph"
	"byzcount/internal/sim"
)

// silentProc never sends and never halts — it isolates the engine's own
// resolution cost from inbox-slab growth.
type silentProc struct{}

func (silentProc) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing { return nil }
func (silentProc) Halted() bool                                                   { return false }

// mallocsDuring counts heap allocations across f on a quiesced heap.
func mallocsDuring(f func()) uint64 {
	mallocs, _ := heapDuring(f)
	return mallocs
}

// heapDuring counts heap allocations and bytes across f on a quiesced
// heap.
func heapDuring(f func()) (mallocs, bytes uint64) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc
}

// TestEngineConstructionBudget pins construction cost for both engine
// paths: O(1) allocations (slot arrays + slab chunks, never per-vertex
// allocs) and a few hundred bytes per slot. Two regressions this
// catches, both of which shipped briefly during development: a slab
// carve that burned a fresh chunk per vertex (~O(arcs^2) bytes), and
// eager per-slot random streams (~10KiB per slot — the stdlib source is
// 607 words, and SplitN used to materialize two of them).
func TestEngineConstructionBudget(t *testing.T) {
	const n, k = 8192, 4
	lat, err := graph.NewRingLattice(n, k)
	if err != nil {
		t.Fatal(err)
	}
	g, err := lat.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	g.Adj(0)       // finalize outside the measured region
	g.SortedAdj(0) // (the static-graph engine aliases the shared sorted CSR)
	for _, tc := range []struct {
		name  string
		build func() *sim.Engine
	}{
		{"topology", func() *sim.Engine { return sim.New(lat, sim.WithSeed(7)) }},
		{"static", func() *sim.Engine { return sim.New(g, sim.WithSeed(7)) }},
	} {
		var eng *sim.Engine
		allocs, bytes := heapDuring(func() { eng = tc.build() })
		_ = eng
		if allocs >= 512 {
			t.Errorf("%s construction allocated %d objects (n=%d); want O(1), not per-vertex", tc.name, allocs, n)
		}
		if bytes >= 8<<20 {
			t.Errorf("%s construction allocated %d bytes (n=%d); slab or stream budget regressed", tc.name, bytes, n)
		}
	}
}

// TestTopologyEnginePrecarvedFirstRound pins the slab budget: the first
// round over a degree-hinted implicit lattice — the round that resolves
// every neighborhood — must allocate far fewer than one object per
// vertex. A regression to per-vertex buffer growth (~3n allocations)
// fails this by an order of magnitude.
func TestTopologyEnginePrecarvedFirstRound(t *testing.T) {
	const n, k = 8192, 4
	lat, err := graph.NewRingLattice(n, k)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New(lat, sim.WithSeed(7))
	procs := make([]sim.Proc, n)
	for v := range procs {
		procs[v] = silentProc{}
	}
	if err := eng.Attach(procs); err != nil {
		t.Fatal(err)
	}
	allocs := mallocsDuring(func() {
		if _, err := eng.Run(1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs >= n/4 {
		t.Errorf("first round over a degree-hinted lattice allocated %d objects (n=%d); pre-carve regressed", allocs, n)
	}
}
