package sim_test

// Allocation-regression guards for the steady-state round loop: after
// warm-up (scratch buffers and inbox slabs grown to their high-water
// marks, MessagesByRound within reserved capacity), the flood workload
// must execute rounds without a single heap allocation — serially and
// under the sharded parallel engine. CI runs these under the
// bench-smoke job; a failure means someone reintroduced a per-round or
// per-vertex allocation into the hot path.
//
// The workload is perf.NewFloodEngine — the exact configuration the
// BENCH.json trajectory records as engine/flood/*, so the gate guards
// what the record reports.

import (
	"testing"

	"byzcount/internal/dynamic"
	"byzcount/internal/perf"
	"byzcount/internal/sim"
)

// warmFloodEngine returns the 1024-node flood engine warmed past the
// next MessagesByRound capacity boundary: 1300 rounds leave the series
// reserved through round 2048, so the ≤ 400 rounds the tests run next
// append strictly within capacity and the measurements see no
// amortized regrowth, only the round loop itself.
func warmFloodEngine(t *testing.T, workers int) *sim.Engine {
	t.Helper()
	eng, err := perf.NewFloodEngine(1024, 8, workers)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(1300); err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestSteadyStateAllocsSerial: a warm serial round allocates nothing,
// strictly.
func TestSteadyStateAllocsSerial(t *testing.T) {
	eng := warmFloodEngine(t, 1)
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := eng.Run(1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("serial steady-state round allocates: %.1f allocs/round, want 0", allocs)
	}
}

// warmChurnFloodEngine returns the 1024-node churn flood runner (two
// leaves and two joins between every pair of rounds, forever) warmed the
// same way as warmFloodEngine: past the MessagesByRound capacity
// boundary and with every recycled slot buffer at its high-water mark.
func warmChurnFloodEngine(t *testing.T, workers int) *dynamic.Runner {
	t.Helper()
	run, err := perf.NewChurnFloodEngine(1024, 8, workers, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.Run(1300); err != nil {
		t.Fatal(err)
	}
	return run
}

// TestSteadyStateAllocsChurnSerial: a warm serial round under continuous
// membership churn — cycle repair, slot recycling, epoch-driven
// neighborhood re-resolution, per-event stream re-derivation — allocates
// nothing, strictly. The dynamic path is held to the same budget as the
// static engine.
func TestSteadyStateAllocsChurnSerial(t *testing.T) {
	run := warmChurnFloodEngine(t, 1)
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := run.Run(1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("serial steady-state churn round allocates: %.1f allocs/round, want 0", allocs)
	}
}

// TestSteadyStateAllocsChurnParallel: the churn workload under the
// sharded engine must not allocate per round beyond the constant per-Run
// pool startup, pinned the same way as the static parallel guard.
func TestSteadyStateAllocsChurnParallel(t *testing.T) {
	run := warmChurnFloodEngine(t, 8)
	measure := func(rounds int) float64 {
		return testing.AllocsPerRun(1, func() {
			if _, err := run.Run(rounds); err != nil {
				t.Fatal(err)
			}
		})
	}
	short := measure(20)
	long := measure(120)
	if delta := long - short; delta != 0 {
		t.Errorf("parallel churn rounds allocate: %d rounds cost %.0f allocs, %d rounds cost %.0f (delta %.0f, want 0)",
			20, short, 120, long, delta)
	}
	if short >= 20 {
		t.Errorf("pool startup costs %.0f allocs, which is >= 1 per round over 20 rounds", short)
	}
}

// warmChurnByzEngine returns the 1024-node churn-byz runner (two leaves
// and two joins per round, a roster maintaining a 1/16 Byzantine spam
// fraction) warmed like the other steady-state engines.
func warmChurnByzEngine(t *testing.T, workers int) *dynamic.Runner {
	t.Helper()
	run, err := perf.NewChurnByzEngine(1024, 8, workers, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.Run(1300); err != nil {
		t.Fatal(err)
	}
	return run
}

// TestSteadyStateAllocsChurnByzSerial: the combined churn + adversary
// path — membership turnover, roster re-evaluation (the joiner
// allegiance draw included), cycle repair, spam traffic — allocates
// nothing per warm serial round, strictly. This is the budget E16-E18
// and `run -byz -churn` stand on.
func TestSteadyStateAllocsChurnByzSerial(t *testing.T) {
	run := warmChurnByzEngine(t, 1)
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := run.Run(1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("serial steady-state churn+byz round allocates: %.1f allocs/round, want 0", allocs)
	}
}

// TestSteadyStateAllocsChurnByzParallel: the same budget under the
// sharded engine, modulo the constant per-Run pool startup.
func TestSteadyStateAllocsChurnByzParallel(t *testing.T) {
	run := warmChurnByzEngine(t, 8)
	measure := func(rounds int) float64 {
		return testing.AllocsPerRun(1, func() {
			if _, err := run.Run(rounds); err != nil {
				t.Fatal(err)
			}
		})
	}
	short := measure(20)
	long := measure(120)
	if delta := long - short; delta != 0 {
		t.Errorf("parallel churn+byz rounds allocate: %d rounds cost %.0f allocs, %d rounds cost %.0f (delta %.0f, want 0)",
			20, short, 120, long, delta)
	}
	if short >= 20 {
		t.Errorf("pool startup costs %.0f allocs, which is >= 1 per round over 20 rounds", short)
	}
}

// warmVTFloodEngine returns the flood engine on the virtual-time
// scheduler under uniform:1-4 jitter, warmed like warmFloodEngine.
// Jitter spreads each round's traffic over 4 ring slots, so delivery
// rows would otherwise converge to their high-water marks only
// asymptotically; NewVTFloodEngine reserves the in-degree x max-delay
// arrival bound up front (sim.Engine.ReserveInbox), which makes the
// strict zero-allocation budget below attainable at the same warm-up
// the synchronous gates use.
func warmVTFloodEngine(t *testing.T, workers int) *sim.Engine {
	t.Helper()
	eng, err := perf.NewVTFloodEngine(1024, 8, workers, "uniform:1-4")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(1300); err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestSteadyStateAllocsVTSerial: the event-queue gate — a warm serial
// virtual-time round (ring delivery, per-sender latency draws included)
// allocates nothing, strictly. Same budget as the synchronous engine.
func TestSteadyStateAllocsVTSerial(t *testing.T) {
	eng := warmVTFloodEngine(t, 1)
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := eng.Run(1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("serial steady-state virtual-time round allocates: %.1f allocs/round, want 0", allocs)
	}
}

// TestSteadyStateAllocsVTParallel: the same budget under the sharded
// engine — per-(worker, shard, ring-slot) buckets at high water, merges
// included — modulo the constant per-Run pool startup.
func TestSteadyStateAllocsVTParallel(t *testing.T) {
	eng := warmVTFloodEngine(t, 8)
	measure := func(rounds int) float64 {
		return testing.AllocsPerRun(1, func() {
			if _, err := eng.Run(rounds); err != nil {
				t.Fatal(err)
			}
		})
	}
	short := measure(20)
	long := measure(120)
	if delta := long - short; delta != 0 {
		t.Errorf("parallel virtual-time rounds allocate: %d rounds cost %.0f allocs, %d rounds cost %.0f (delta %.0f, want 0)",
			20, short, 120, long, delta)
	}
	if short >= 20 {
		t.Errorf("pool startup costs %.0f allocs, which is >= 1 per round over 20 rounds", short)
	}
}

// TestSteadyStateAllocsVTSparse: the occupancy-lane gate — the sparse
// pulse/relay workload (TickDriven relays, serial engine, occupancy
// rows sorted and cleared per tick) allocates nothing per warm round,
// strictly. Guards what BENCH.json records as engine/vt-flood/sparse/*.
func TestSteadyStateAllocsVTSparse(t *testing.T) {
	eng, err := perf.NewVTSparseEngine(1024, 8, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(1300); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := eng.Run(1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("serial steady-state sparse round allocates: %.1f allocs/round, want 0", allocs)
	}
}

// TestSteadyStateAllocsVTSparseParallel: the parallel occupancy-lane
// gate — the sparse pulse/relay workload under the sharded engine at
// workers 8 (occupancy folded in per destination shard during merge,
// per-shard union walks, per-worker halt counters) must not allocate
// per round beyond the constant per-Run pool startup, pinned the same
// way as the other parallel guards: two Run calls of different lengths
// must cost identical allocations, i.e. a steady-state sparse parallel
// tick allocates exactly zero. Guards what BENCH.json records as
// engine/vt-flood/sparse/parallel=8.
func TestSteadyStateAllocsVTSparseParallel(t *testing.T) {
	eng, err := perf.NewVTSparseEngine(1024, 8, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(1300); err != nil {
		t.Fatal(err)
	}
	measure := func(rounds int) float64 {
		return testing.AllocsPerRun(1, func() {
			if _, err := eng.Run(rounds); err != nil {
				t.Fatal(err)
			}
		})
	}
	short := measure(20)
	long := measure(120)
	if delta := long - short; delta != 0 {
		t.Errorf("parallel sparse rounds allocate: %d rounds cost %.0f allocs, %d rounds cost %.0f (delta %.0f, want 0)",
			20, short, 120, long, delta)
	}
	if short >= 20 {
		t.Errorf("pool startup costs %.0f allocs, which is >= 1 per round over 20 rounds", short)
	}
}

// TestSteadyStateAllocsVTSkip: the fast-forward gate — the token
// workload (one message in flight, most ticks skipped in O(1)) must
// keep skipped and executed ticks both allocation-free. MessagesByRound
// grows one entry per tick even when skipping, so the warm-up leaves
// the series reserved past the measured rounds exactly like the other
// gates — and it runs a full lap of the ring (one hop per ~2.5 ticks,
// 1023 relays), because each relay derives its per-sender delay stream
// lazily on its first send and the steady state only starts once every
// vertex has hosted the token. Guards what BENCH.json records as
// engine/vt-skip/*.
func TestSteadyStateAllocsVTSkip(t *testing.T) {
	eng, err := perf.NewVTSkipEngine(1024, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(3000); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := eng.Run(1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("serial steady-state tick-skip round allocates: %.1f allocs/round, want 0", allocs)
	}
}

// TestSteadyStateAllocsParallel: with SetParallelism(8), allocations
// must not scale with the number of rounds executed. Each Run call pays
// a constant pool-startup cost (one goroutine spawn per worker); the
// rounds themselves must be allocation-free, which the test pins by
// running two Run calls of different lengths and requiring identical
// allocation counts.
func TestSteadyStateAllocsParallel(t *testing.T) {
	eng := warmFloodEngine(t, 8)
	measure := func(rounds int) float64 {
		return testing.AllocsPerRun(1, func() {
			if _, err := eng.Run(rounds); err != nil {
				t.Fatal(err)
			}
		})
	}
	short := measure(20)
	long := measure(120)
	if delta := long - short; delta != 0 {
		t.Errorf("parallel rounds allocate: %d rounds cost %.0f allocs, %d rounds cost %.0f (delta %.0f, want 0)",
			20, short, 120, long, delta)
	}
	// And the startup cost itself stays bounded: a handful of goroutine
	// spawns, nowhere near one allocation per round.
	if short >= 20 {
		t.Errorf("pool startup costs %.0f allocs, which is >= 1 per round over 20 rounds", short)
	}
}
