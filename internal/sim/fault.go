package sim

// Message-fault models for the virtual-time scheduler. A FaultModel
// decides, per admitted message, whether the network loses it. Faults
// apply after admission control (neighbor check, edge-capacity budget)
// and before the latency draw: a dropped message has already consumed
// the sender's per-round capacity — the sender spent the edge — but it
// never reaches an inbox, is not counted in Metrics.Messages, and does
// not advance the delay stream. Drops are counted in Metrics.Dropped.
//
// The same determinism contract as DelayModel applies: randomness comes
// only from the sender's private "fault" stream, stepped in send order
// by exactly one goroutine, so verdicts are identical at every worker
// count.

import (
	"fmt"
	"strconv"
	"strings"

	"byzcount/internal/xrand"
)

// FaultModel decides which admitted messages the network loses.
// Implementations must be pure: the verdict may depend only on (rng
// draws, round, from, to).
type FaultModel interface {
	// Name renders the model as its canonical spec string (the grammar
	// ParseFaultModel accepts).
	Name() string
	// Draws reports whether Drop consumes rng. Non-drawing models let
	// the engine skip per-sender fault streams entirely.
	Draws() bool
	// Drop reports whether the message from vertex `from` to vertex
	// `to` sent at tick `round` is lost. rng is the sender's private
	// fault stream, or nil when Draws() is false.
	Drop(rng *xrand.Rand, round, from, to int) bool
}

// DropFault loses each message independently with probability P — the
// iid message-loss adversary.
type DropFault struct {
	P float64 // in [0, 1]
}

// Name returns "drop:P".
func (m DropFault) Name() string { return fmt.Sprintf("drop:%g", m.P) }

// Draws returns true.
func (m DropFault) Draws() bool { return true }

// Drop flips a P-weighted coin on the sender's fault stream.
func (m DropFault) Drop(rng *xrand.Rand, _, _, _ int) bool {
	return rng.Bernoulli(m.P)
}

// PartitionFault splits the network into Groups round-robin groups
// (group = slot mod Groups, size-independent and churn-stable, matching
// RegionDelay's assignment) and loses every cross-group message during
// ticks [From, Heal). Heal == 0 means the partition never heals. Within
// a group, delivery is unaffected. It never draws.
type PartitionFault struct {
	Groups int // >= 2
	From   int // first partitioned tick
	Heal   int // first healed tick; 0 = never heals
}

// Name returns "partition:GROUPS@FROM-HEAL" (no -HEAL suffix when the
// partition never heals).
func (m PartitionFault) Name() string {
	if m.Heal == 0 {
		return fmt.Sprintf("partition:%d@%d", m.Groups, m.From)
	}
	return fmt.Sprintf("partition:%d@%d-%d", m.Groups, m.From, m.Heal)
}

// Draws returns false.
func (m PartitionFault) Draws() bool { return false }

// Drop loses cross-group messages while the partition is up.
func (m PartitionFault) Drop(_ *xrand.Rand, round, from, to int) bool {
	if round < m.From || (m.Heal > 0 && round >= m.Heal) {
		return false
	}
	return from%m.Groups != to%m.Groups
}

// ParseFaultModel parses a fault spec string:
//
//	none                        no faults (same as the empty string)
//	drop:P                      iid loss with probability P
//	partition:G@FROM[-HEAL]     G round-robin groups, cross-group loss
//	                            during [FROM, HEAL) (omit -HEAL: forever)
//
// The empty string and "none" parse to nil (no fault model). Name() on
// the returned model round-trips to the canonical spec.
func ParseFaultModel(spec string) (FaultModel, error) {
	switch {
	case spec == "" || spec == "none":
		return nil, nil
	case strings.HasPrefix(spec, "drop:"):
		p, err := strconv.ParseFloat(strings.TrimPrefix(spec, "drop:"), 64)
		if err != nil || p < 0 || p > 1 {
			return nil, fmt.Errorf("sim: bad fault spec %q (want drop:P with P in [0,1])", spec)
		}
		return DropFault{P: p}, nil
	case strings.HasPrefix(spec, "partition:"):
		body := strings.TrimPrefix(spec, "partition:")
		gs, win, ok := strings.Cut(body, "@")
		if !ok {
			return nil, fmt.Errorf("sim: bad fault spec %q (want partition:G@FROM[-HEAL])", spec)
		}
		g, err := strconv.Atoi(gs)
		if err != nil || g < 2 {
			return nil, fmt.Errorf("sim: bad fault spec %q (want partition:G@FROM[-HEAL] with G >= 2)", spec)
		}
		from, heal, err := parseIntRange(win)
		if !strings.Contains(win, "-") {
			heal = 0 // bare FROM: never heals
		}
		if err != nil || from < 0 || (heal != 0 && heal <= from) {
			return nil, fmt.Errorf("sim: bad fault spec %q (want partition:G@FROM[-HEAL] with HEAL > FROM)", spec)
		}
		return PartitionFault{Groups: g, From: from, Heal: heal}, nil
	default:
		return nil, fmt.Errorf("sim: unknown fault spec %q (want none, drop:P, or partition:G@FROM[-HEAL])", spec)
	}
}
