package sim_test

// Virtual-time scheduler guards.
//
// The load-bearing one is the unit-latency equivalence property: the
// virtual-time engine under sim.UnitDelay must produce delivery
// transcripts (and metrics) byte-identical to the legacy synchronous
// loop — across seeds {42, 7}, worker counts {1, 3, 8}, and churn
// on/off. That property is what lets E1–E18's golden tables and the
// seed transcript digest keep pinning ONE engine while the scheduler
// underneath grows delay and fault models.
//
// The rest are direct checks of the scheduler itself: fixed latencies
// arrive exactly d ticks later, jittered and region/GST schedules are
// identical at every worker count, partitions drop cross-group traffic
// during exactly their window, drop faults count in Dropped but never
// in Messages, Sequential procs under parallel virtual time are
// rejected with the typed error, and the spec-string grammar
// round-trips.

import (
	"errors"
	"fmt"
	"hash/fnv"
	"reflect"
	"testing"

	"byzcount/internal/byzantine"
	"byzcount/internal/counting"
	"byzcount/internal/dynamic"
	"byzcount/internal/graph"
	"byzcount/internal/sim"
	"byzcount/internal/xrand"
)

// vtSeeds are the seed pairs the unit-latency equivalence property is
// checked across (ISSUE 7 satellite: seeds {42, 7}).
var vtSeeds = []uint64{42, 7}

// runTranscriptSeeded is runTranscript with every seed derived from
// `seed` and the delivery models configurable — the workhorse of the
// equivalence property. A nil delay and fault runs the legacy
// synchronous engine; sim.UnitDelay{} runs the virtual-time scheduler
// in its degenerate synchronous configuration.
func runTranscriptSeeded(t *testing.T, seed uint64, workers int, delay sim.DelayModel, fault sim.FaultModel) (string, sim.Metrics, int) {
	t.Helper()
	const n, d = 192, 8
	g := mustHND(t, n, d, seed+1)
	rng := xrand.New(seed + 2)
	byz, err := byzantine.RandomPlacement(g, 6, rng.Split("place"))
	if err != nil {
		t.Fatal(err)
	}
	params := counting.DefaultCongestParams(d)
	params.MaxPhase = 8
	maxRounds := params.Schedule.RoundsThroughPhase(params.MaxPhase + 1)

	eng := sim.New(g,
		sim.WithSeed(seed),
		sim.WithParallelism(workers),
		sim.WithEdgeCapacity(512),
		sim.WithDelayModel(delay),
		sim.WithFaultModel(fault))
	procs := make([]sim.Proc, n)
	recs := make([]*transcriptProc, n)
	spamRng := xrand.New(seed + 3)
	for v := range procs {
		var inner sim.Proc
		if byz[v] {
			inner = byzantine.NewBeaconSpammer(params.Schedule, 6, true, spamRng.SplitN("spam", v))
		} else {
			inner = counting.NewCongestProc(params)
		}
		recs[v] = &transcriptProc{inner: inner}
		procs[v] = recs[v]
	}
	if err := eng.Attach(procs); err != nil {
		t.Fatal(err)
	}
	rounds, err := eng.Run(maxRounds)
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	var buf [8]byte
	for _, rec := range recs {
		for i := 0; i < 8; i++ {
			buf[i] = byte(rec.sum >> (8 * i))
		}
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64()), eng.Metrics(), rounds
}

// runChurnTranscriptSeeded is the churn-side workhorse: the congest
// counting run under a join/leave storm of churn_test.go, with the
// seeds parameterized and the delay model configurable.
func runChurnTranscriptSeeded(t *testing.T, seed uint64, workers int, delay sim.DelayModel) (string, sim.Metrics) {
	t.Helper()
	const n, d = 128, 8
	params := counting.DefaultCongestParams(d)
	params.MaxPhase = 8
	maxRounds := params.Schedule.RoundsThroughPhase(params.MaxPhase + 1)
	net, err := dynamic.NewNetwork(n, d, xrand.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	sums := make([]uint64, 4*n) // room for slot-table growth
	run, err := dynamic.NewRunner(net, dynamic.Churn{Leaves: 2, Joins: 2, StopAfter: 60, Mixed: true}, seed+2,
		func(slot dynamic.Slot, id sim.NodeID) sim.Proc {
			return &slotDigestProc{inner: counting.NewCongestProc(params), slot: slot, sums: sums}
		})
	if err != nil {
		t.Fatal(err)
	}
	run.SetParallelism(workers)
	run.SetDelayModel(delay)
	if _, err := run.Run(maxRounds); err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	var buf [8]byte
	for _, sum := range sums {
		for i := 0; i < 8; i++ {
			buf[i] = byte(sum >> (8 * i))
		}
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64()), run.Metrics()
}

// TestVTUnitMatchesLegacyStatic is the equivalence property on the
// static congest-under-spam scenario: for every seed and worker count,
// the unit-latency virtual-time engine reproduces the legacy engine's
// transcript digest, metrics, and round count exactly.
func TestVTUnitMatchesLegacyStatic(t *testing.T) {
	for _, seed := range vtSeeds {
		for _, w := range workerCounts {
			legacyDig, legacyM, legacyR := runTranscriptSeeded(t, seed, w, nil, nil)
			vtDig, vtM, vtR := runTranscriptSeeded(t, seed, w, sim.UnitDelay{}, nil)
			if vtDig != legacyDig {
				t.Errorf("seed=%d workers=%d: unit-latency digest %s != legacy %s", seed, w, vtDig, legacyDig)
			}
			if !reflect.DeepEqual(vtM, legacyM) {
				t.Errorf("seed=%d workers=%d: metrics diverge:\nlegacy: %+v\nvt:     %+v", seed, w, legacyM, vtM)
			}
			if vtR != legacyR {
				t.Errorf("seed=%d workers=%d: rounds %d != legacy %d", seed, w, vtR, legacyR)
			}
		}
	}
}

// TestVTUnitMatchesLegacyChurn is the same property with churn on: a
// join/leave storm over the mutable topology, where Detach/AttachAt
// must drop and reset ring rows exactly as they drop the double
// buffer's.
func TestVTUnitMatchesLegacyChurn(t *testing.T) {
	for _, seed := range vtSeeds {
		for _, w := range workerCounts {
			legacyDig, legacyM := runChurnTranscriptSeeded(t, seed, w, nil)
			vtDig, vtM := runChurnTranscriptSeeded(t, seed, w, sim.UnitDelay{})
			if vtDig != legacyDig {
				t.Errorf("seed=%d workers=%d: churn unit-latency digest %s != legacy %s", seed, w, vtDig, legacyDig)
			}
			if !reflect.DeepEqual(vtM, legacyM) {
				t.Errorf("seed=%d workers=%d: churn metrics diverge:\nlegacy: %+v\nvt:     %+v", seed, w, legacyM, vtM)
			}
		}
	}
}

// TestVTDelayDeterministicAcrossWorkers pins the new determinism claim
// itself: under drawing and non-drawing delay models (and a drop
// fault), the parallel virtual-time engine produces the serial engine's
// transcript digest and metrics at every worker count.
func TestVTDelayDeterministicAcrossWorkers(t *testing.T) {
	cases := []struct {
		name  string
		delay sim.DelayModel
		fault sim.FaultModel
	}{
		{"uniform", sim.UniformDelay{Min: 1, Max: 4}, nil},
		{"geometric", sim.GeometricDelay{P: 0.5, Cap: 6}, nil},
		{"region", sim.RegionDelay{Regions: 3, Near: 1, Far: 3}, nil},
		{"gst", sim.GSTDelay{GST: 20, Inner: sim.UniformDelay{Min: 1, Max: 5}}, nil},
		{"drop", sim.UniformDelay{Min: 1, Max: 2}, sim.DropFault{P: 0.1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantDig, wantM, wantR := runTranscriptSeeded(t, 42, 1, tc.delay, tc.fault)
			if wantM.Messages == 0 {
				t.Fatal("scenario delivered no messages")
			}
			for _, w := range workerCounts[1:] {
				gotDig, gotM, gotR := runTranscriptSeeded(t, 42, w, tc.delay, tc.fault)
				if gotDig != wantDig {
					t.Errorf("workers=%d: digest %s != serial %s", w, gotDig, wantDig)
				}
				if !reflect.DeepEqual(gotM, wantM) {
					t.Errorf("workers=%d: metrics diverge:\nserial:   %+v\nparallel: %+v", w, wantM, gotM)
				}
				if gotR != wantR {
					t.Errorf("workers=%d: rounds %d != serial %d", w, gotR, wantR)
				}
			}
		})
	}
}

// probe is a tiny payload for the directed scheduler checks.
type probe struct{}

func (probe) SizeBits() int { return 8 }

// proberProc broadcasts a probe in the rounds sendIn reports true for
// and counts deliveries per round. It never halts.
type proberProc struct {
	sendIn func(round int) bool
	recv   map[int]int
}

func (p *proberProc) Halted() bool { return false }

func (p *proberProc) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	if len(in) > 0 {
		if p.recv == nil {
			p.recv = make(map[int]int)
		}
		p.recv[round] += len(in)
	}
	if p.sendIn != nil && p.sendIn(round) {
		return env.Broadcast(probe{})
	}
	return nil
}

// runProbePair runs a two-vertex engine where vertex 0 broadcasts in
// the selected rounds and vertex 1 listens, and returns vertex 1's
// per-round delivery counts plus the metrics.
func runProbePair(t *testing.T, delay sim.DelayModel, fault sim.FaultModel, rounds int, sendIn func(int) bool) (map[int]int, sim.Metrics) {
	t.Helper()
	g := graph.New(2)
	g.AddEdge(0, 1)
	eng := sim.New(g, sim.WithSeed(9), sim.WithDelayModel(delay), sim.WithFaultModel(fault))
	sender := &proberProc{sendIn: sendIn}
	receiver := &proberProc{}
	if err := eng.Attach([]sim.Proc{sender, receiver}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(rounds); err != nil {
		t.Fatal(err)
	}
	return receiver.recv, eng.Metrics()
}

// TestVTFixedDelayArrival checks the ring arithmetic directly: a probe
// sent at tick s under a fixed delay d arrives at tick s+d, for d
// beyond the double-buffer horizon and across ring wraparound.
func TestVTFixedDelayArrival(t *testing.T) {
	for _, d := range []int{1, 2, 5} {
		recv, m := runProbePair(t, sim.UniformDelay{Min: d, Max: d}, nil, 20,
			func(r int) bool { return r == 0 || r == 7 })
		want := map[int]int{0 + d: 1, 7 + d: 1}
		if !reflect.DeepEqual(recv, want) {
			t.Errorf("delay=%d: arrivals %v, want %v", d, recv, want)
		}
		if m.Messages != 2 || m.Dropped != 0 {
			t.Errorf("delay=%d: metrics %+v, want 2 messages, 0 dropped", d, m)
		}
	}
}

// TestVTGSTDelayArrival checks the partial-synchrony switch: before GST
// the inner fixed delay applies, from GST on everything takes one tick.
func TestVTGSTDelayArrival(t *testing.T) {
	model := sim.GSTDelay{GST: 5, Inner: sim.UniformDelay{Min: 4, Max: 4}}
	recv, _ := runProbePair(t, model, nil, 20,
		func(r int) bool { return r == 0 || r == 10 })
	want := map[int]int{4: 1, 11: 1} // pre-GST: 0+4; post-GST: 10+1
	if !reflect.DeepEqual(recv, want) {
		t.Errorf("arrivals %v, want %v", recv, want)
	}
}

// TestVTRegionDelayArrival checks the asymmetric model: vertices 0 and
// 1 fall in different regions of a 2-region split, so their edge gets
// the Far latency.
func TestVTRegionDelayArrival(t *testing.T) {
	recv, _ := runProbePair(t, sim.RegionDelay{Regions: 2, Near: 1, Far: 3}, nil, 10,
		func(r int) bool { return r == 2 })
	want := map[int]int{5: 1}
	if !reflect.DeepEqual(recv, want) {
		t.Errorf("arrivals %v, want %v", recv, want)
	}
}

// TestVTDropFault checks the loss accounting at the extremes: P=1 loses
// everything into Dropped (Messages stays 0), P=0 loses nothing.
func TestVTDropFault(t *testing.T) {
	always := func(int) bool { return true }
	recv, m := runProbePair(t, nil, sim.DropFault{P: 1}, 10, always)
	if len(recv) != 0 || m.Messages != 0 || m.Dropped != 10 {
		t.Errorf("P=1: arrivals %v, metrics %+v; want none delivered, 10 dropped", recv, m)
	}
	recv, m = runProbePair(t, nil, sim.DropFault{P: 0}, 10, always)
	if m.Messages != 10 || m.Dropped != 0 || len(recv) != 9 {
		t.Errorf("P=0: arrivals %v, metrics %+v; want 10 delivered (9 in-window), 0 dropped", recv, m)
	}
}

// TestVTPartitionWindow checks the partition fault's exact window on a
// 4-cycle whose every edge crosses the 2-group round-robin split:
// deliveries stop for sends in [From, Heal) and resume after, and every
// blocked send is counted in Dropped.
func TestVTPartitionWindow(t *testing.T) {
	const rounds, from, heal = 12, 3, 7
	g := graph.New(4)
	for v := 0; v < 4; v++ {
		g.AddEdge(v, (v+1)%4)
	}
	eng := sim.New(g, sim.WithSeed(11),
		sim.WithFaultModel(sim.PartitionFault{Groups: 2, From: from, Heal: heal}))
	procs := make([]sim.Proc, 4)
	recs := make([]*proberProc, 4)
	for v := range procs {
		recs[v] = &proberProc{sendIn: func(int) bool { return true }}
		procs[v] = recs[v]
	}
	if err := eng.Attach(procs); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(rounds); err != nil {
		t.Fatal(err)
	}
	for v, rec := range recs {
		for r := 1; r < rounds; r++ {
			blocked := r-1 >= from && r-1 < heal // delivery at r carries sends from r-1
			if blocked && rec.recv[r] != 0 {
				t.Errorf("vertex %d: %d deliveries at round %d inside the partition window", v, rec.recv[r], r)
			}
			if !blocked && rec.recv[r] != 2 {
				t.Errorf("vertex %d: %d deliveries at round %d outside the window, want 2", v, rec.recv[r], r)
			}
		}
	}
	m := eng.Metrics()
	wantDropped := int64(4 * 2 * (heal - from)) // 4 senders x 2 edges x window
	if m.Dropped != wantDropped {
		t.Errorf("Dropped = %d, want %d", m.Dropped, wantDropped)
	}
}

// seqProbe is a proberProc that opts into the Sequential contract.
type seqProbe struct{ proberProc }

func (*seqProbe) StepsSequentially() {}

// TestVTSequentialParallelRejected pins the typed error: Sequential
// processes on a parallel virtual-time engine are rejected, and the
// same scenario runs fine serially.
func TestVTSequentialParallelRejected(t *testing.T) {
	build := func(workers int) *sim.Engine {
		g := mustHND(t, 64, 4, 5)
		eng := sim.New(g, sim.WithSeed(5),
			sim.WithParallelism(workers),
			sim.WithDelayModel(sim.UniformDelay{Min: 1, Max: 2}))
		procs := make([]sim.Proc, 64)
		for v := range procs {
			if v == 0 {
				procs[v] = &seqProbe{proberProc{sendIn: func(int) bool { return true }}}
			} else {
				procs[v] = &proberProc{sendIn: func(int) bool { return true }}
			}
		}
		if err := eng.Attach(procs); err != nil {
			t.Fatal(err)
		}
		return eng
	}
	if _, err := build(4).Run(10); !errors.Is(err, sim.ErrSequentialVirtualTime) {
		t.Errorf("parallel run error = %v, want ErrSequentialVirtualTime", err)
	}
	if _, err := build(1).Run(10); err != nil {
		t.Errorf("serial run error = %v, want nil", err)
	}
}

// TestParseDelayModel checks the spec grammar: canonical specs
// round-trip through Name, and malformed specs error.
func TestParseDelayModel(t *testing.T) {
	valid := []string{"unit", "uniform:1-4", "uniform:2-2", "geo:0.5@6", "region:3/1/4", "gst:16/uniform:1-6", "gst:0/unit"}
	for _, spec := range valid {
		m, err := sim.ParseDelayModel(spec)
		if err != nil {
			t.Errorf("ParseDelayModel(%q): %v", spec, err)
			continue
		}
		if m.Name() != spec {
			t.Errorf("ParseDelayModel(%q).Name() = %q, want round-trip", spec, m.Name())
		}
		if m.MaxDelay() < 1 {
			t.Errorf("ParseDelayModel(%q).MaxDelay() = %d, want >= 1", spec, m.MaxDelay())
		}
	}
	if m, err := sim.ParseDelayModel(""); err != nil || m != nil {
		t.Errorf("ParseDelayModel(\"\") = %v, %v; want nil, nil", m, err)
	}
	invalid := []string{"bogus", "uniform:", "uniform:0-4", "uniform:5-2", "geo:1.5@4", "geo:0.5", "region:1/1/2", "region:2/0/2", "gst:-1/unit", "gst:4/", "gst:4/bogus"}
	for _, spec := range invalid {
		if _, err := sim.ParseDelayModel(spec); err == nil {
			t.Errorf("ParseDelayModel(%q): expected error", spec)
		}
	}
}

// TestParseFaultModel is TestParseDelayModel's fault-side counterpart.
func TestParseFaultModel(t *testing.T) {
	valid := []string{"drop:0.1", "drop:1", "partition:2@10", "partition:3@5-40"}
	for _, spec := range valid {
		m, err := sim.ParseFaultModel(spec)
		if err != nil {
			t.Errorf("ParseFaultModel(%q): %v", spec, err)
			continue
		}
		if m.Name() != spec {
			t.Errorf("ParseFaultModel(%q).Name() = %q, want round-trip", spec, m.Name())
		}
	}
	for _, spec := range []string{"", "none"} {
		if m, err := sim.ParseFaultModel(spec); err != nil || m != nil {
			t.Errorf("ParseFaultModel(%q) = %v, %v; want nil, nil", spec, m, err)
		}
	}
	invalid := []string{"bogus", "drop:", "drop:1.5", "drop:-0.1", "partition:1@5", "partition:2@5-3", "partition:2@-1", "partition:2"}
	for _, spec := range invalid {
		if _, err := sim.ParseFaultModel(spec); err == nil {
			t.Errorf("ParseFaultModel(%q): expected error", spec)
		}
	}
}

// TestVTNewDispatch pins New's constructor dispatch: a *graph.Graph
// takes the static fast path, any other Topology the mutable path, and
// the two paths assign identical IDs from the same seed (what lets a
// static run be re-hosted on a mutable topology without re-deriving
// anything).
func TestVTNewDispatch(t *testing.T) {
	g := mustHND(t, 64, 4, 3)
	a := sim.New(g, sim.WithSeed(77))
	if a.Graph() == nil {
		t.Fatal("New over a *graph.Graph must take the static path")
	}
	net, err := dynamic.NewNetwork(64, 4, xrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	d := sim.New(sim.Topology(net), sim.WithSeed(77))
	if d.Graph() != nil {
		t.Fatal("New over a non-graph topology must not take the static path")
	}
	if a.Slots() != d.Slots() || a.ID(0) != d.ID(0) {
		t.Fatalf("constructor paths disagree: slots %d/%d id %d/%d", a.Slots(), d.Slots(), a.ID(0), d.ID(0))
	}
}
