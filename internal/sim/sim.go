// Package sim implements the synchronous message-passing model of
// Section 2 of the paper: computation proceeds in rounds, a message sent
// over an edge in round r is delivered at the start of round r+1, local
// computation is free, and the engine stamps the true sender on every
// message so that Byzantine nodes cannot fake their IDs.
//
// The engine is single-threaded and deterministic: identical seeds and
// processes produce identical executions, which makes every experiment
// row reproducible.
package sim

import (
	"errors"
	"fmt"

	"byzcount/internal/graph"
	"byzcount/internal/xrand"
)

// NodeID is a node identifier drawn uniformly from the full 64-bit space.
// Per the model, IDs are comparable black boxes that leak no information
// about the network size.
type NodeID uint64

// Payload is the interface satisfied by all message payloads. SizeBits
// reports the payload's size for the message-size metrics that distinguish
// the CONGEST-style algorithm (small messages) from the LOCAL one.
type Payload interface {
	SizeBits() int
}

// Incoming is a delivered message. From is the true sender vertex and
// FromID its true ID — both stamped by the engine, never by the sender.
type Incoming struct {
	From    int
	FromID  NodeID
	Payload Payload
}

// Outgoing is a message to send. To must be a neighbor of the sender in
// the network graph; messages addressed elsewhere are dropped and counted
// as violations.
type Outgoing struct {
	To      int
	Payload Payload
}

// Env carries the static, strictly local knowledge a process is allowed:
// its vertex index (for the engine's bookkeeping only — protocols must not
// infer anything from it), its random ID, its degree, its neighbor list,
// and a private random stream.
type Env struct {
	Vertex    int
	ID        NodeID
	Degree    int
	Neighbors []int
	// NeighborIDs[k] is the ID of Neighbors[k]. The paper's Algorithm 1
	// starts from the inclusive 1-hop neighborhood B(u,1), so knowledge of
	// neighbor IDs is part of the model.
	NeighborIDs []NodeID
	Rand        *xrand.Rand
}

// Broadcast returns one Outgoing per incident edge carrying payload.
// With parallel edges a neighbor receives one copy per edge, matching the
// model where each edge is an independent channel.
func (e *Env) Broadcast(payload Payload) []Outgoing {
	out := make([]Outgoing, len(e.Neighbors))
	for i, w := range e.Neighbors {
		out[i] = Outgoing{To: w, Payload: payload}
	}
	return out
}

// Proc is a per-node process. Step is invoked exactly once per round with
// the messages delivered this round and returns the messages to send.
// Halted processes are skipped (they neither receive nor send); once
// Halted returns true it must remain true.
type Proc interface {
	Step(env *Env, round int, in []Incoming) []Outgoing
	Halted() bool
}

// Metrics aggregates message-level measurements across a run.
type Metrics struct {
	Rounds        int   // rounds executed
	Messages      int64 // messages delivered
	Bits          int64 // total payload bits delivered
	MaxMsgBits    int   // largest single payload
	Violations    int64 // messages addressed to non-neighbors (dropped)
	Capped        int64 // messages dropped by the CONGEST edge capacity
	PerNodeMaxBit []int // per-vertex largest payload sent
	// MessagesByRound[r] is the number of messages sent in round r — the
	// per-round traffic series that makes Algorithm 2's phase structure
	// visible (see report.Sparkline).
	MessagesByRound []int64
}

// Engine drives a set of processes over a network graph in lock-step
// rounds.
type Engine struct {
	g     *graph.Graph
	procs []Proc
	envs  []Env
	ids   []NodeID

	// stop, if non-nil, is evaluated after every round; returning true
	// ends the run early (used for "all honest nodes decided" detection).
	stop func(round int) bool

	// edgeCapBits, when positive, enforces the CONGEST model's bandwidth
	// restriction: a sender may push at most this many payload bits over
	// one edge per round; excess messages on that edge are dropped and
	// counted in Metrics.Capped. Zero means the LOCAL model (unbounded).
	edgeCapBits int
	// edgeBudget[v] tracks per-destination bits used by v this round.
	edgeBudget map[int]int

	metrics Metrics

	// double-buffered inboxes, indexed by vertex
	cur, next [][]Incoming

	// isNeighbor caches adjacency for O(1) destination checks
	neighborSet []map[int]bool
}

// ErrSizeMismatch is returned when the number of attached processes does
// not equal the number of graph vertices.
var ErrSizeMismatch = errors.New("sim: process count does not match vertex count")

// NewEngine creates an engine over g. Node IDs and per-node random streams
// derive from seed; vertex v's stream is independent of all others.
func NewEngine(g *graph.Graph, seed uint64) *Engine {
	n := g.N()
	root := xrand.New(seed)
	idStream := root.Split("ids")
	e := &Engine{
		g:           g,
		envs:        make([]Env, n),
		ids:         make([]NodeID, n),
		cur:         make([][]Incoming, n),
		next:        make([][]Incoming, n),
		neighborSet: make([]map[int]bool, n),
	}
	e.metrics.PerNodeMaxBit = make([]int, n)
	seen := make(map[NodeID]bool, n)
	for v := 0; v < n; v++ {
		id := NodeID(idStream.ID())
		for seen[id] {
			id = NodeID(idStream.ID())
		}
		seen[id] = true
		e.ids[v] = id
	}
	for v := 0; v < n; v++ {
		nbrs := g.Neighbors(v)
		set := make(map[int]bool, len(nbrs))
		nbrIDs := make([]NodeID, len(nbrs))
		for k, w := range nbrs {
			set[w] = true
			nbrIDs[k] = e.ids[w]
		}
		e.neighborSet[v] = set
		e.envs[v] = Env{
			Vertex:      v,
			ID:          e.ids[v],
			Degree:      g.Degree(v),
			Neighbors:   nbrs,
			NeighborIDs: nbrIDs,
			Rand:        root.SplitN("node", v),
		}
	}
	return e
}

// Attach installs one process per vertex. It must be called before Run.
func (e *Engine) Attach(procs []Proc) error {
	if len(procs) != e.g.N() {
		return fmt.Errorf("%w: %d processes for %d vertices", ErrSizeMismatch, len(procs), e.g.N())
	}
	e.procs = procs
	return nil
}

// SetStopCondition installs a predicate evaluated after each round; the
// run ends early once it returns true.
func (e *Engine) SetStopCondition(stop func(round int) bool) { e.stop = stop }

// SetEdgeCapacity switches the engine from the LOCAL model (unbounded
// messages, the default) to the CONGEST model: at most bits payload bits
// per edge per round per sender. Messages beyond the budget are dropped
// and counted in Metrics.Capped. A "small-sized message" in the paper is
// O(log n) bits plus a constant number of node IDs; a cap of a few
// hundred bits admits Algorithm 2's beacons while rejecting Algorithm 1's
// topology dumps.
func (e *Engine) SetEdgeCapacity(bits int) {
	e.edgeCapBits = bits
	if bits > 0 && e.edgeBudget == nil {
		e.edgeBudget = make(map[int]int)
	}
}

// Graph returns the underlying network graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// ID returns the node ID of vertex v.
func (e *Engine) ID(v int) NodeID { return e.ids[v] }

// VertexOf returns the vertex with the given ID, or -1.
func (e *Engine) VertexOf(id NodeID) int {
	for v, x := range e.ids {
		if x == id {
			return v
		}
	}
	return -1
}

// Proc returns the process attached to vertex v (nil before Attach).
func (e *Engine) Proc(v int) Proc {
	if e.procs == nil {
		return nil
	}
	return e.procs[v]
}

// Env returns the environment of vertex v (engine-owned; do not mutate).
func (e *Engine) Env(v int) *Env { return &e.envs[v] }

// Metrics returns the measurements accumulated so far.
func (e *Engine) Metrics() Metrics { return e.metrics }

// Run executes up to maxRounds rounds and returns the number of rounds
// executed. The run ends early when every process has halted or the stop
// condition fires. Attach must have been called.
func (e *Engine) Run(maxRounds int) (int, error) {
	if e.procs == nil {
		return 0, errors.New("sim: Run called before Attach")
	}
	if maxRounds < 0 {
		return 0, errors.New("sim: negative maxRounds")
	}
	n := e.g.N()
	for r := 0; r < maxRounds; r++ {
		allHalted := true
		roundStartMsgs := e.metrics.Messages
		for v := 0; v < n; v++ {
			p := e.procs[v]
			if p.Halted() {
				e.cur[v] = e.cur[v][:0]
				continue
			}
			allHalted = false
			out := p.Step(&e.envs[v], r, e.cur[v])
			e.cur[v] = e.cur[v][:0]
			if e.edgeCapBits > 0 {
				clear(e.edgeBudget)
			}
			for _, msg := range out {
				if !e.neighborSet[v][msg.To] {
					e.metrics.Violations++
					continue
				}
				bits := 0
				if msg.Payload != nil {
					bits = msg.Payload.SizeBits()
				}
				if e.edgeCapBits > 0 {
					if e.edgeBudget[msg.To]+bits > e.edgeCapBits {
						e.metrics.Capped++
						continue
					}
					e.edgeBudget[msg.To] += bits
				}
				e.metrics.Messages++
				e.metrics.Bits += int64(bits)
				if bits > e.metrics.MaxMsgBits {
					e.metrics.MaxMsgBits = bits
				}
				if bits > e.metrics.PerNodeMaxBit[v] {
					e.metrics.PerNodeMaxBit[v] = bits
				}
				e.next[msg.To] = append(e.next[msg.To], Incoming{
					From:    v,
					FromID:  e.ids[v],
					Payload: msg.Payload,
				})
			}
		}
		e.metrics.Rounds++
		e.metrics.MessagesByRound = append(e.metrics.MessagesByRound,
			e.metrics.Messages-roundStartMsgs)
		e.cur, e.next = e.next, e.cur
		if allHalted {
			return r, nil
		}
		if e.stop != nil && e.stop(r) {
			return r + 1, nil
		}
	}
	return maxRounds, nil
}
