// Package sim implements the synchronous message-passing model of
// Section 2 of the paper: computation proceeds in rounds, a message sent
// over an edge in round r is delivered at the start of round r+1, local
// computation is free, and the engine stamps the true sender on every
// message so that Byzantine nodes cannot fake their IDs.
//
// The engine is deterministic: identical seeds and processes produce
// identical executions, which makes every experiment row reproducible.
// It runs serially by default; SetParallelism switches it to a sharded
// worker-pool mode that steps vertices concurrently and then merges
// outboxes in ascending vertex order, so delivery order, edge-capacity
// decisions, and metrics are byte-for-byte identical to the serial
// engine (see round ordering notes on roundParallel).
//
// The network may be static (a graph.Graph — the zero-overhead fast
// path) or mutable (any other Topology): a mutable topology is
// epoch-stamped, neighborhoods are re-resolved into per-vertex buffers
// only when the epoch changes, and membership turns over at round
// boundaries via Detach/AttachAt with slot recycling, so churn runs
// share the static engine's allocation-free steady state and its
// serial/parallel bit-equality. New is the constructor for both cases;
// functional options select seed, parallelism, edge capacity, and
// delivery models.
//
// Partial synchrony is a configuration, not a different engine: with a
// DelayModel (and/or FaultModel) installed, Run schedules every
// admitted message into a calendar-queue delivery ring on virtual time,
// keyed on (deliver tick, sender slot, per-sender send sequence), with
// latency drawn from per-sender split streams — see delay.go for the
// determinism argument. The unit-latency model degenerates to exactly
// the synchronous engine, byte for byte.
package sim

import (
	"errors"
	"fmt"
	"slices"
	"sync"

	"byzcount/internal/graph"
	"byzcount/internal/xrand"
)

// NodeID is a node identifier drawn uniformly from the full 64-bit space.
// Per the model, IDs are comparable black boxes that leak no information
// about the network size.
type NodeID uint64

// Topology is the engine's view of a mutable network: a dense slot space
// (alive slots plus recycled ones), per-slot neighbor multisets, and an
// epoch counter that must be bumped on every structural change. The
// engine re-resolves a vertex's neighborhood (into reusable buffers, so
// steady-state rounds stay allocation-free) exactly when the topology's
// epoch differs from the vertex's last-seen epoch. Topologies may only
// change at round boundaries — from a between-rounds hook (see
// SetBetweenRounds), never from a Step.
type Topology interface {
	// Slots is the size of the vertex index space, alive or not.
	Slots() int
	// Alive reports whether slot v currently hosts a node.
	Alive(v int) bool
	// Epoch is a counter bumped on every structural change (join, leave,
	// rewire). A constant epoch means the engine never re-resolves.
	Epoch() uint64
	// EpochOf reports the Epoch value at which slot v's neighborhood
	// last changed (0 if never). It lets the engine refresh only the
	// slots a churn event actually touched — O(churn * degree) per
	// round instead of O(n * degree) — so implementations must stamp
	// every slot whose neighbor multiset (or whose presence in others'
	// multisets) a mutation alters.
	EpochOf(v int) uint64
	// AppendNeighbors appends v's neighbor multiset to buf and returns
	// the extended slice (one entry per incident edge; duplicates mean
	// parallel edges). It must not retain buf.
	AppendNeighbors(v int, buf []int) []int
}

// staleEpoch marks a vertex whose neighborhood has never been resolved
// (or was force-invalidated by AttachAt); topology epochs start at 0 and
// only increment, so they never collide with it.
const staleEpoch = ^uint64(0)

// TopologyDegrees is the optional Topology extension that serves as the
// engine's slab capacity hint: when a topology can report per-slot
// degrees up front (static implicit families always can), the topology
// constructor pre-carves every Env's Neighbors/NeighborIDs and
// the sorted-adjacency buffer out of bounded slab chunks. The first
// lazy resolve of each vertex then appends into its carved buffer
// instead of growing a nil slice, so a million-slot engine's first
// round costs O(slots/chunk) slab allocations instead of three
// per-vertex allocations each.
type TopologyDegrees interface {
	// Degree reports slot v's current neighbor-multiset size.
	Degree(v int) int
}

// slabChunkEntries bounds one slab chunk (2MiB for []int): big enough
// that chunk turnover vanishes in construction cost, small enough that
// million-slot engines never demand one giant contiguous block or pay
// append-doubling copies.
const slabChunkEntries = 1 << 18

// slab carves exact-capacity slices out of bounded chunks. Each carve
// is a three-index sub-slice (its own capacity limit, so a later append
// past the carved degree safely migrates that slice instead of
// clobbering its neighbor), chunks are never grown or copied, and
// at most one carve's worth of tail waste is abandoned per chunk.
type slab[T any] struct {
	cur       []T
	remaining int // entries still expected; sizes the next chunk
}

func newSlab[T any](total int) *slab[T] { return &slab[T]{remaining: total} }

// carve returns a zero-length slice with capacity exactly n, backed by
// the current chunk (a fresh chunk is carved when n does not fit).
func (s *slab[T]) carve(n int) []T {
	if len(s.cur)+n > cap(s.cur) {
		size := s.remaining
		if size > slabChunkEntries {
			size = slabChunkEntries
		}
		if size < n {
			size = n // single carve larger than the chunk bound
		}
		s.cur = make([]T, 0, size)
	}
	lo := len(s.cur)
	s.cur = s.cur[:lo+n]
	s.remaining -= n
	return s.cur[lo : lo : lo+n]
}

// Payload is the interface satisfied by all message payloads. SizeBits
// reports the payload's size for the message-size metrics that distinguish
// the CONGEST-style algorithm (small messages) from the LOCAL one.
type Payload interface {
	SizeBits() int
}

// Incoming is a delivered message. From is the true sender vertex and
// FromID its true ID — both stamped by the engine, never by the sender.
type Incoming struct {
	From    int
	FromID  NodeID
	Payload Payload
}

// Outgoing is a message to send. To must be a neighbor of the sender in
// the network graph; messages addressed elsewhere are dropped and counted
// as violations.
type Outgoing struct {
	To      int
	Payload Payload
}

// Env carries the static, strictly local knowledge a process is allowed:
// its vertex index (for the engine's bookkeeping only — protocols must not
// infer anything from it), its random ID, its degree, its neighbor list,
// and a private random stream.
type Env struct {
	Vertex    int
	ID        NodeID
	Degree    int
	Neighbors []int
	// NeighborIDs[k] is the ID of Neighbors[k]. The paper's Algorithm 1
	// starts from the inclusive 1-hop neighborhood B(u,1), so knowledge of
	// neighbor IDs is part of the model.
	NeighborIDs []NodeID

	// rand is the slot's private stream, derived lazily by Rand(); root
	// is the engine stream it derives from. A stream's state is ~5KiB
	// (the stdlib source), so slots whose processes never draw — flood
	// workloads, vacant slots, adversaries — must not pay for one; at a
	// million slots eager derivation would dominate the engine's entire
	// footprint.
	rand *xrand.Rand
	root *xrand.Rand

	// scratch is the env's reusable outgoing buffer. Each vertex is
	// stepped by exactly one goroutine per round, and the engine consumes
	// the slice returned by Step before that vertex's next Step, so the
	// buffer can be recycled round after round. After a Step returns, the
	// engine adopts the returned slice back into scratch (keeping any
	// growth), which is what makes steady-state sending allocation-free.
	scratch []Outgoing
}

// Rand returns the slot's private random stream, deriving it from the
// engine seed on first use. The stream is a pure function of
// (engine seed, vertex) — when it is created changes nothing about what
// it draws — and it persists across membership turnover: a joiner
// recycling the slot continues the stream where the leaver left it.
func (e *Env) Rand() *xrand.Rand {
	if e.rand == nil {
		e.rand = e.root.SplitN("node", e.Vertex)
	}
	return e.rand
}

// WithRand returns a pointer to a copy of the env using rng as its
// private stream — the constructor for standalone envs in tests and
// examples. The receiver is never mutated: the copy shares the
// receiver's slices (Neighbors, NeighborIDs, scratch) but replaces the
// stream, so an engine-owned env passed through WithRand keeps its own
// lazily-derived stream. Engine slots derive theirs from the engine
// seed instead.
func (e *Env) WithRand(rng *xrand.Rand) *Env {
	c := *e
	c.rand = rng
	return &c
}

// Scratch returns the env's reusable outgoing buffer truncated to zero
// length. Step implementations append into it (directly or via
// AppendBroadcast) and return it; once the buffer has grown to the
// workload's high-water mark, building the round's output allocates
// nothing. The returned slice is engine-owned from the moment Step
// returns until the process's next Step — processes must not retain it
// across rounds or mix it with Broadcast in the same Step.
func (e *Env) Scratch() []Outgoing { return e.scratch[:0] }

// AppendBroadcast appends one Outgoing per incident edge carrying
// payload to buf and returns the extended slice. With parallel edges a
// neighbor receives one copy per edge, matching the model where each
// edge is an independent channel.
func (e *Env) AppendBroadcast(buf []Outgoing, payload Payload) []Outgoing {
	for _, w := range e.Neighbors {
		buf = append(buf, Outgoing{To: w, Payload: payload})
	}
	return buf
}

// Broadcast returns one Outgoing per incident edge carrying payload,
// built in the env's scratch buffer (see Scratch for the ownership
// rules): after the first round it performs no allocation.
func (e *Env) Broadcast(payload Payload) []Outgoing {
	out := e.AppendBroadcast(e.scratch[:0], payload)
	e.scratch = out
	return out
}

// Proc is a per-node process. Step is invoked exactly once per round with
// the messages delivered this round and returns the messages to send.
// Halted processes are skipped (they neither receive nor send); once
// Halted returns true it must remain true.
//
// Ownership: the slice returned by Step (and the inbox slice passed in)
// belongs to the engine until the process's next Step. The engine
// recycles returned slices as the vertex's future scratch buffer (see
// Env.Scratch), so processes must not retain either across rounds.
type Proc interface {
	Step(env *Env, round int, in []Incoming) []Outgoing
	Halted() bool
}

// Sequential marks processes whose Step must not run concurrently with
// other processes' Steps — typically adversaries sharing one mutable
// structure (e.g. the consistent fake world of the Remark 1 attack,
// where attachment order is observable). The parallel engine steps every
// Sequential process on a single goroutine in ascending vertex order,
// which is exactly the serial engine's mutation order, so executions
// stay bit-identical. Processes whose state is strictly per-vertex need
// not (and should not) implement this.
type Sequential interface {
	StepsSequentially()
}

// Metrics aggregates message-level measurements across a run.
type Metrics struct {
	Rounds     int   // rounds executed
	Messages   int64 // messages delivered
	Bits       int64 // total payload bits delivered
	MaxMsgBits int   // largest single payload
	Violations int64 // messages addressed to non-neighbors (dropped)
	Capped     int64 // messages dropped by the CONGEST edge capacity
	Dropped    int64 // messages lost to the fault model (admitted, never delivered)
	// DelayClamped counts admitted messages whose DelayModel returned a
	// latency outside [1, MaxDelay] and had it clamped into range. The
	// parsed built-in models never clamp (their parameters are
	// validated), so a nonzero count flags a misconfigured hand-built
	// model instead of silently reshaping its schedule.
	DelayClamped int64
	// TicksSkipped counts empty virtual ticks the serial scheduler
	// fast-forwarded over (see TickDriven). Skipped ticks still count in
	// Rounds and MessagesByRound, so the series' shape is unchanged.
	TicksSkipped  int64
	PerNodeMaxBit []int // per-vertex largest payload sent
	// MessagesByRound[r] is the number of messages sent in round r — the
	// per-round traffic series that makes Algorithm 2's phase structure
	// visible (see report.Sparkline).
	MessagesByRound []int64
}

// routed is an admitted message waiting in an outbox for the merge
// phase of a parallel round.
type routed struct {
	to      int32
	from    int32
	payload Payload
}

// workerState is the per-worker scratch of one round: admission budgets
// and shard-local metric accumulators. The accumulators are flushed into
// Metrics after every round; all of them are order-independent
// (integer sums and maxes), so the flush order never changes totals.
type workerState struct {
	// budget[w] is the payload bits the current sender has used toward
	// destination w this round; budgetGen lazily resets it per sender so
	// the slice never needs clearing (the indexed-slice replacement for
	// the old per-round map).
	budget    []int
	budgetGen []uint64
	gen       uint64

	// nbrMark[w] == gen marks w as a neighbor of the sender being
	// processed. Stamping costs O(degree) per sender but makes every
	// membership check one predictable load — a scan or binary search
	// mispredicts its data-dependent exit on nearly every message,
	// which costs more than the whole map lookup it replaced.
	nbrMark []uint64

	// buckets[s] holds this worker's admitted messages destined for
	// shard s, in ascending sender order (the worker steps a contiguous
	// vertex range in order). The merge phase for shard s concatenates
	// workers' buckets in worker order, so each merge worker touches
	// only its own messages instead of scanning everyone's.
	buckets [][]routed

	// vtb[s*window+slot] is the virtual-time analogue of buckets:
	// admitted messages destined for shard s and ring slot `slot`, in
	// ascending sender order. Buckets are merged into the ring EVERY
	// round (not at the delivery tick), so each ring row accumulates
	// messages round-major, sender-major — exactly the serial schedule.
	vtb [][]routed

	messages     int64
	bits         int64
	violations   int64
	capped       int64
	dropped      int64
	delayClamped int64
	maxMsgBits   int
	allHalted    bool

	// liveAlways / tdHalts are the sparse virtual-time halt bookkeeping
	// of one round: how many live always-step procs this worker stepped,
	// and how many TickDriven procs halted during their own Step. Reset
	// by roundParallelVT before the step phase and summed by the
	// coordinator after the merge barrier — the parallel split of
	// roundSparseVT's liveAlways counter and tdLive decrements.
	liveAlways int
	tdHalts    int
}

// Engine drives a set of processes over a network in lock-step rounds.
// The network is either a static graph or a mutable Topology (both via
// New); in the latter case vacant slots carry nil processes and
// membership changes at round boundaries via Detach/AttachAt.
type Engine struct {
	g    *graph.Graph // static substrate; nil for topology engines
	topo Topology     // mutable substrate; nil for static engines
	n    int          // slot capacity (== g.N() for static engines)
	root *xrand.Rand  // engine seed stream; derives per-slot streams on growth

	// idStream assigns node IDs: the initially alive slots draw in slot
	// order at construction, and assignID serves any engine-assigned ID
	// later (joiner IDs normally arrive explicitly via AttachAt).
	idStream *xrand.Rand

	procs []Proc
	envs  []Env
	ids   []NodeID

	// vertexOf inverts ids for O(1) VertexOf lookups. Detach deletes the
	// departed ID and AttachAt inserts the joiner's, so under balanced
	// churn the map's population is stable and updates never allocate.
	vertexOf map[NodeID]int

	// epochOf[v] is the topology epoch v's neighborhood buffers were
	// last resolved against (topology engines only). curEpoch caches
	// Topology.Epoch() once per round.
	epochOf  []uint64
	curEpoch uint64

	// betweenRounds, if non-nil, runs after every round's delivery swap
	// and before the all-halted check — the churn hook point.
	betweenRounds func(round int) error

	// regrow is set when the slot arrays grew mid-run (topology growth):
	// worker ranges, shard maps, and scratch are sized to n and must be
	// rebuilt before the next round.
	regrow bool

	// hookAttached records that the current between-rounds hook invoked
	// AttachAt; Run then suppresses the all-halted early return so the
	// joiners get their promised first Step next round.
	hookAttached bool

	// stop, if non-nil, is evaluated after every round; returning true
	// ends the run early (used for "all honest nodes decided" detection).
	stop func(round int) bool

	// cancel, if non-nil, is polled at the top of every round; a closed
	// channel aborts the run with ErrCanceled. This is the cooperative
	// escape hatch for pure-CPU runs: a per-cell timeout or a SIGTERM
	// drain cannot preempt a round, but it never has to wait for more
	// than one.
	cancel <-chan struct{}

	// edgeCapBits, when positive, enforces the CONGEST model's bandwidth
	// restriction: a sender may push at most this many payload bits over
	// one edge per round; excess messages on that edge are dropped and
	// counted in Metrics.Capped. Zero means the LOCAL model (unbounded).
	edgeCapBits int

	metrics Metrics

	// The inbox arena: double-buffered per-vertex inbox slabs, indexed
	// by vertex. cur holds the messages delivered this round, next
	// collects the messages for the coming round; Run swaps them after
	// every round and slabs are truncated, never freed, so each slab
	// stays at its high-water capacity and steady-state delivery
	// allocates nothing. Together with the Env scratch buffers on the
	// send side this is what makes warm rounds allocation-free (see
	// DESIGN.md, "Memory model").
	cur, next [][]Incoming

	// sortedAdj[v] is v's adjacency, deduplicated and sorted ascending.
	// Each round a sender stamps these into its worker's nbrMark array
	// so destination checks are one compare (replaces the old
	// []map[int]bool, whose per-vertex maps dominated setup memory).
	sortedAdj [][]int32

	// --- virtual time ---
	// delay/fault select the virtual-time scheduler: when either is
	// non-nil, Run schedules admitted messages into the delivery ring
	// below instead of the cur/next double buffer. Configure both before
	// the first Run (SetDelayModel/SetFaultModel).
	delay DelayModel
	fault FaultModel
	// window is the ring length: the delay model's MaxDelay()+1, at
	// least 2, so an in-flight message's slot (tick+d) mod window never
	// collides with the slot currently being delivered.
	window int
	// ring[s][v] is vertex v's inbox for virtual ticks ≡ s (mod window)
	// — the calendar-queue generalization of the cur/next double buffer
	// (window == 2 with unit latency degenerates to exactly that
	// structure). Rows are truncated after delivery, never freed, so
	// each row stays at its high-water capacity and steady-state
	// virtual-time rounds allocate nothing.
	ring [][][]Incoming
	// delayRng[v] / faultRng[v] are v's private latency/fault streams
	// (pure functions of the engine seed and v), derived lazily on v's
	// first draw. Only models that draw get streams at all (see
	// DelayModel.Draws) — a stream's state is ~5KiB, and the unit model
	// must consume exactly the streams the legacy engine does.
	delayRng []*xrand.Rand
	faultRng []*xrand.Rand
	// tick is the absolute virtual tick of the round being executed —
	// the engine's total executed rounds, not Run's local round index —
	// published to pool workers via dispatch. Ring indexing and the
	// models' round argument use it so in-flight messages stay aligned
	// across consecutive Run calls.
	tick int
	// vtr is the tick's devirtualized model dispatch (see resolveVT),
	// resolved once per parallel round before the step phase and read
	// by every worker; serial rounds resolve into a local instead.
	vtr vtRound

	// --- sparse virtual-time delivery ---
	// sparse is set by ensureState when the virtual-time scheduler has
	// at least one TickDriven proc attached: ring slots then maintain
	// the occupancy overlay below and rounds step only the union of
	// always-step vertices and occupied rows — serially on the calling
	// goroutine, in parallel via the phaseStepVTSparse/phaseMergeVTSparse
	// pool phases. Dense workloads (no marked procs) keep the plain
	// lanes and pay nothing.
	sparse bool
	// skip enables fast-forwarding over empty ticks when every live
	// proc is TickDriven (default on; see SetTickSkip / TickDriven).
	skip bool
	// occRows[shard*window+slot] lists the vertex rows of shard `shard`
	// that may hold pending messages in ring slot `slot`
	// (append-on-first-message; entries can be stale after a Detach
	// truncated the row, and duplicated after slot recycling — delivery
	// sorts and dedupes). occCnt[shard*window+slot] is the exact
	// pending-message count, so the all-empty-tick test is an O(shards)
	// reduction (see occSlotEmpty). The layout is shard-major so each
	// merge worker owns one contiguous [window]-sized region; serial
	// engines have one shard and the index degenerates to the slot
	// itself, which is what the serial lanes address directly.
	occRows [][]int32
	occCnt  []int64
	// alwaysStep lists (ascending) the vertices whose procs do NOT
	// carry the TickDriven marker — they are stepped on every tick,
	// preserving the dense semantics for round-driven procs. isTD is
	// the marker membership mask; tdLive counts live marked procs
	// (maintained at Step-time halts and membership changes, recounted
	// at Run entry).
	alwaysStep []int32
	isTD       []bool
	tdLive     int

	// --- parallel mode ---
	workers int            // requested Step-shard workers; <=1 means serial
	ranges  [][2]int       // contiguous vertex ranges, one per worker
	shardOf []int32        // vertex -> owning range index
	seq     []int          // vertices whose procs implement Sequential, ascending
	isSeq   []bool         // membership mask for seq
	ws      []*workerState // one per range worker, plus one for seq, plus [0] reused serially
	acc     [][]routed     // per-sender outboxes (fallback rounds with Sequential procs)

	// vtbReserve, when positive, is the per-bucket capacity every
	// per-(worker, destination-shard, ring-slot) outbox is pre-sized to
	// (see ReserveOutbox) — recorded here so the reservation survives
	// the worker-state rebuilds of SetParallelism and topology growth.
	vtbReserve int

	// Persistent worker pool. Spawning goroutines per round allocates
	// (closure + scheduler bookkeeping), which alone breaks the
	// zero-allocs-per-round contract; instead Run starts len(ranges)+1
	// workers once, parks them on their wake channels, and drives each
	// round's step and merge phases by sending phase tokens. Channel
	// sends of small scalars and WaitGroup operations allocate nothing,
	// so a steady-state parallel round performs zero heap allocations.
	// The pool lives exactly as long as one Run call (started after
	// ensureState, stopped on return), so engines never leak goroutines.
	wake   []chan poolPhase // one per worker; worker len(ranges) is the Sequential pass
	poolWG sync.WaitGroup   // completion barrier for each dispatched phase
	round  int              // round being executed, published via dispatch
	pool   bool             // workers currently parked on wake
}

// poolPhase is a work token sent to pool workers.
type poolPhase uint8

const (
	phaseStepBuckets   poolPhase = iota // step contiguous range into shard buckets
	phaseStepScan                       // step range into per-vertex outboxes (Sequential fallback)
	phaseMergeBuckets                   // merge this worker's destination shard from buckets
	phaseMergeScan                      // merge this worker's destination range from outboxes
	phaseStepVT                         // step contiguous range into per-(shard, ring-slot) buckets
	phaseMergeVT                        // merge this worker's destination shard into the ring
	phaseStepVTSparse                   // step only occupied/always-step vertices of the range
	phaseMergeVTSparse                  // merge this worker's shard, folding in occupancy
	phaseExit                           // unwind the worker goroutine
)

// ErrSizeMismatch is returned when the number of attached processes does
// not equal the number of graph vertices.
var ErrSizeMismatch = errors.New("sim: process count does not match vertex count")

// ErrSequentialVirtualTime is returned by Run when Sequential processes
// are attached to a parallel virtual-time engine. The sequential pass
// steps scattered vertices on one extra goroutine; interleaving its
// sends into the per-shard ring buckets in exact sender order would
// serialize the merge, so the combination is rejected rather than
// supported slowly — run such scenarios serially (the serial
// virtual-time engine handles Sequential processes fine).
var ErrSequentialVirtualTime = errors.New("sim: Sequential processes require serial execution under virtual time")

// ErrCanceled is returned by Run when the channel installed with
// SetCancel closes mid-run. The engine stops on a round boundary, so
// metrics and transcripts cover exactly the rounds executed; the run's
// results are partial and should be discarded, not interpreted.
var ErrCanceled = errors.New("sim: run canceled")

// newStaticEngine builds the engine over a static graph. Node IDs and
// per-node random streams derive from seed; vertex v's stream is
// independent of all others.
//
// Construction ingests the graph's CSR arrays directly: every Env's
// Neighbors and NeighborIDs slices are carved out of engine-owned
// bounded slab chunks sized to the total arc count (O(arcs/chunk)
// exact-size allocations — no per-vertex copies and no append-doubling
// spikes, so a million-slot engine's tables build without transient 2×
// peaks), and the sorted-deduplicated adjacency used by the membership
// stamps aliases the graph's shared sorted CSR — no per-vertex sorting.
// Static engines never mutate those rows, so aliasing an immutable
// (possibly cache-shared) graph is safe; topology engines re-resolve
// into private buffers instead.
func newStaticEngine(g *graph.Graph, seed uint64) *Engine {
	e := newEngine(g.N(), seed)
	e.g = g
	for v := 0; v < e.n; v++ {
		e.assignID(v)
	}
	arcs := 0
	for v := 0; v < e.n; v++ {
		arcs += g.Degree(v)
	}
	nbrSlab := newSlab[int](arcs)
	idSlab := newSlab[NodeID](arcs)
	for v := 0; v < e.n; v++ {
		adj := g.Adj(v)
		nbrs := nbrSlab.carve(len(adj))
		ids := idSlab.carve(len(adj))
		for _, w := range adj {
			nbrs = append(nbrs, int(w))
			ids = append(ids, e.ids[w])
		}
		e.sortedAdj[v] = g.SortedAdj(v)
		e.envs[v].ID = e.ids[v]
		e.envs[v].Degree = len(adj)
		e.envs[v].Neighbors = nbrs
		e.envs[v].NeighborIDs = ids
	}
	return e
}

// newTopologyEngine builds the engine over a mutable topology. IDs are
// assigned to the initially alive slots in ascending slot order from the
// same seed-derived stream the static path uses; vacant slots receive an ID
// (and a process) only when a joiner arrives via AttachAt. Neighborhoods
// are resolved lazily against the topology's epoch, so construction does
// not walk adjacency at all.
//
// When the topology also implements TopologyDegrees, its degrees serve
// as slab budgets: every Env's Neighbors/NeighborIDs and the
// sorted-adjacency buffer are pre-carved at exact degree capacity out
// of bounded chunks, so the lazy resolves append in place instead of
// growing nil slices — the difference between O(slots/chunk) and three
// allocations per slot on a million-slot first round. Degrees are a
// hint, not a contract: a slot that later outgrows its carve migrates
// to a private buffer on append, so mutable topologies stay correct.
func newTopologyEngine(topo Topology, seed uint64) *Engine {
	e := newEngine(topo.Slots(), seed)
	e.topo = topo
	e.epochOf = make([]uint64, e.n)
	for v := 0; v < e.n; v++ {
		e.epochOf[v] = staleEpoch
		if topo.Alive(v) {
			e.assignID(v)
			e.envs[v].ID = e.ids[v]
		}
	}
	if dg, ok := topo.(TopologyDegrees); ok {
		arcs := 0
		for v := 0; v < e.n; v++ {
			arcs += dg.Degree(v)
		}
		nbrSlab := newSlab[int](arcs)
		idSlab := newSlab[NodeID](arcs)
		saSlab := newSlab[int32](arcs)
		for v := 0; v < e.n; v++ {
			d := dg.Degree(v)
			e.envs[v].Neighbors = nbrSlab.carve(d)
			e.envs[v].NeighborIDs = idSlab.carve(d)
			e.sortedAdj[v] = saSlab.carve(d)
		}
	}
	return e
}

// newEngine builds the substrate-independent core: slot arrays sized n
// and per-slot random streams. A slot's stream is a pure function of
// (seed, slot), so it survives membership turnover — a joiner recycling
// slot v continues v's stream where the leaver left it, which is what
// keeps churn runs reproducible however the membership history unfolds.
func newEngine(n int, seed uint64) *Engine {
	root := xrand.New(seed)
	e := &Engine{
		n:         n,
		root:      root,
		skip:      true,
		idStream:  root.Split("ids"),
		envs:      make([]Env, n),
		ids:       make([]NodeID, n),
		vertexOf:  make(map[NodeID]int, n),
		cur:       make([][]Incoming, n),
		next:      make([][]Incoming, n),
		sortedAdj: make([][]int32, n),
	}
	e.metrics.PerNodeMaxBit = make([]int, n)
	for v := 0; v < n; v++ {
		e.envs[v] = Env{Vertex: v, root: root}
	}
	return e
}

// assignID draws a fresh unique ID for vertex v from the engine's ID
// stream.
func (e *Engine) assignID(v int) {
	id := NodeID(e.idStream.ID())
	for _, dup := e.vertexOf[id]; dup; _, dup = e.vertexOf[id] {
		id = NodeID(e.idStream.ID())
	}
	e.vertexOf[id] = v
	e.ids[v] = id
}

// dedupSorted compacts consecutive duplicates (parallel edges) in place.
func dedupSorted(s []int32) []int32 {
	out := s[:0]
	for i, x := range s {
		if i == 0 || x != s[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// Attach installs one process per vertex slot. It must be called before
// Run. Nil entries mark vacant slots (dead topology slots awaiting a
// joiner); they are skipped every round until AttachAt fills them.
func (e *Engine) Attach(procs []Proc) error {
	if len(procs) != e.n {
		return fmt.Errorf("%w: %d processes for %d vertices", ErrSizeMismatch, len(procs), e.n)
	}
	e.procs = procs
	e.ws = nil // worker scratch depends on which procs are Sequential
	e.seq = e.seq[:0]
	e.isSeq = make([]bool, len(procs))
	e.alwaysStep = e.alwaysStep[:0]
	e.isTD = make([]bool, len(procs))
	for v, p := range procs {
		if _, ok := p.(Sequential); ok {
			e.seq = append(e.seq, v)
			e.isSeq[v] = true
		}
		if _, ok := p.(TickDriven); ok {
			e.isTD[v] = true
		} else if p != nil {
			e.alwaysStep = append(e.alwaysStep, int32(v))
		}
	}
	return nil
}

// SetBetweenRounds installs a hook that runs at every round boundary —
// after the round's messages have been delivered and before the
// all-halted check. It is the only place topology mutations and
// Detach/AttachAt membership changes are allowed; a non-nil error aborts
// the run. Matching the dynamic-network convention, a node that departs
// in the hook never sees the messages delivered to it this boundary, and
// processes attached in the hook first step in the next round — a round
// in which every pre-existing process had halted does not end the run
// when the hook attached fresh ones.
func (e *Engine) SetBetweenRounds(hook func(round int) error) { e.betweenRounds = hook }

// Detach retires the process at vertex v at a round boundary (a leave):
// the slot's pending deliveries are dropped, its ID leaves the index,
// and the slot is skipped by every subsequent round until AttachAt
// recycles it. The slot's buffers — inbox slabs, scratch, random stream
// — are retained, so a later joiner inherits their capacity and churn
// stays allocation-free in steady state.
func (e *Engine) Detach(v int) error {
	if v < 0 || v >= e.n || e.procs == nil || e.procs[v] == nil {
		return fmt.Errorf("sim: Detach of vacant vertex %d", v)
	}
	delete(e.vertexOf, e.ids[v])
	if e.isTD != nil && v < len(e.isTD) && e.isTD[v] {
		if !e.procs[v].Halted() {
			e.tdLive--
		}
		e.isTD[v] = false
	} else if i, found := slices.BinarySearch(e.alwaysStep, int32(v)); found {
		e.alwaysStep = slices.Delete(e.alwaysStep, i, i+1)
	}
	e.procs[v] = nil
	e.cur[v] = e.cur[v][:0]
	e.next[v] = e.next[v][:0]
	// Under virtual time pending deliveries live in the ring, up to
	// window-1 ticks out; drop them all (the departed node never sees
	// them, matching the synchronous convention). Sparse engines keep
	// the per-slot counts exact; the occupied-row entries go stale,
	// which delivery tolerates (it re-checks row lengths).
	for s := range e.ring {
		if row := e.ring[s][v]; len(row) > 0 {
			if e.sparse {
				if idx := e.occIdx(v, s); idx < len(e.occCnt) {
					e.occCnt[idx] -= int64(len(row))
				}
			}
			e.ring[s][v] = row[:0]
		}
	}
	if e.isSeq != nil && e.isSeq[v] {
		e.isSeq[v] = false
		if i := slices.Index(e.seq, v); i >= 0 {
			e.seq = slices.Delete(e.seq, i, i+1)
		}
	}
	return nil
}

// AttachAt installs process p at vertex v with node ID id at a round
// boundary (a join). The slot must be vacant — freshly detached, dead
// since construction, or beyond the current capacity (the arrays grow
// to cover it). Recycled slots keep their random stream, resuming where
// the departed occupant left it, so executions remain a pure function
// of the seed and the membership history. On a static engine the
// neighbors' cached NeighborIDs entries for v are patched in place; on
// a topology engine every vertex re-resolves at the next epoch change,
// and v itself is force-refreshed here.
func (e *Engine) AttachAt(v int, id NodeID, p Proc) error {
	if p == nil {
		return fmt.Errorf("sim: AttachAt(%d) with nil process", v)
	}
	if v < 0 {
		return fmt.Errorf("sim: AttachAt of negative vertex %d", v)
	}
	if e.procs == nil {
		return errors.New("sim: AttachAt before Attach")
	}
	if v >= e.n {
		if e.topo == nil {
			return fmt.Errorf("sim: AttachAt(%d) beyond the static graph's %d vertices", v, e.n)
		}
		e.growTo(v + 1)
	}
	if e.procs[v] != nil {
		return fmt.Errorf("sim: AttachAt(%d): slot already occupied", v)
	}
	if w, dup := e.vertexOf[id]; dup {
		return fmt.Errorf("sim: AttachAt(%d): ID already held by vertex %d", v, w)
	}
	e.ids[v] = id
	e.vertexOf[id] = v
	env := &e.envs[v]
	env.ID = id
	e.cur[v] = e.cur[v][:0]
	e.next[v] = e.next[v][:0]
	for s := range e.ring {
		if row := e.ring[s][v]; len(row) > 0 {
			if e.sparse {
				if idx := e.occIdx(v, s); idx < len(e.occCnt) {
					e.occCnt[idx] -= int64(len(row))
				}
			}
			e.ring[s][v] = row[:0]
		}
	}
	e.procs[v] = p
	e.hookAttached = true
	if _, ok := p.(TickDriven); ok {
		if e.isTD == nil || len(e.isTD) < e.n {
			grown := make([]bool, e.n)
			copy(grown, e.isTD)
			e.isTD = grown
		}
		e.isTD[v] = true
		if !p.Halted() {
			e.tdLive++
		}
	} else {
		if i, found := slices.BinarySearch(e.alwaysStep, int32(v)); !found {
			e.alwaysStep = slices.Insert(e.alwaysStep, i, int32(v))
		}
	}
	if _, ok := p.(Sequential); ok {
		if e.isSeq == nil || len(e.isSeq) < e.n {
			grown := make([]bool, e.n)
			copy(grown, e.isSeq)
			e.isSeq = grown
		}
		e.isSeq[v] = true
		if i, found := slices.BinarySearch(e.seq, v); !found {
			e.seq = slices.Insert(e.seq, i, v)
		}
		if len(e.ranges) > 1 && len(e.acc) < e.n {
			e.acc = make([][]routed, e.n)
		}
	}
	e.patchNeighborIDs(v)
	return nil
}

// patchNeighborIDs updates the cached NeighborIDs entries pointing at v
// after its ID changed. On a topology engine v's own neighborhood is
// re-resolved first (the join usually bumped the epoch anyway); its
// neighbors' entries are patched in place so even an epoch-neutral
// replacement is observed immediately.
func (e *Engine) patchNeighborIDs(v int) {
	if e.topo != nil {
		e.refreshVertex(v)
		for _, w := range e.envs[v].Neighbors {
			patchOne(&e.envs[w], v, e.ids[v])
		}
		return
	}
	for _, w := range e.g.Adj(v) {
		patchOne(&e.envs[w], v, e.ids[v])
	}
}

// patchOne rewrites env's NeighborIDs entries for neighbor v.
func patchOne(env *Env, v int, id NodeID) {
	for k, x := range env.Neighbors {
		if x == v {
			env.NeighborIDs[k] = id
		}
	}
}

// growTo extends the slot arrays to at least m vertices (topology
// growth beyond the constructed capacity). Growth allocates — it is a
// capacity change, not steady state — and flags the worker ranges,
// shard map, and scratch for rebuild at the next round boundary. The
// arrays grow with doubling headroom (the extra slots sit vacant until
// the topology reaches them), so a net-growing churn run that adds one
// slot per round pays O(log growth) rebuilds and pool restarts, not
// one per round.
func (e *Engine) growTo(m int) {
	if m < 2*e.n {
		m = 2 * e.n
	}
	for v := e.n; v < m; v++ {
		e.procs = append(e.procs, nil)
		e.ids = append(e.ids, 0)
		e.envs = append(e.envs, Env{Vertex: v, root: e.root})
		e.cur = append(e.cur, nil)
		e.next = append(e.next, nil)
		e.sortedAdj = append(e.sortedAdj, nil)
		e.metrics.PerNodeMaxBit = append(e.metrics.PerNodeMaxBit, 0)
		if e.epochOf != nil {
			e.epochOf = append(e.epochOf, staleEpoch)
		}
		if e.isSeq != nil {
			e.isSeq = append(e.isSeq, false)
		}
		if e.isTD != nil {
			e.isTD = append(e.isTD, false)
		}
	}
	for s := range e.ring {
		for len(e.ring[s]) < m {
			e.ring[s] = append(e.ring[s], nil)
		}
	}
	for len(e.delayRng) > 0 && len(e.delayRng) < m {
		e.delayRng = append(e.delayRng, nil)
	}
	for len(e.faultRng) > 0 && len(e.faultRng) < m {
		e.faultRng = append(e.faultRng, nil)
	}
	e.n = m
	e.regrow = true
}

// catchUpVertex brings a vertex whose last-seen epoch is stale up to
// the current one: its neighborhood buffers are rebuilt only if the
// topology stamped the slot since the vertex last looked (EpochOf),
// otherwise the stamp alone advances. Rounds without churn therefore
// cost one compare per vertex, and churn rounds re-resolve only the
// slots the events actually touched.
func (e *Engine) catchUpVertex(v int) {
	if e.epochOf[v] != staleEpoch && e.topo.EpochOf(v) <= e.epochOf[v] {
		e.epochOf[v] = e.curEpoch
		return
	}
	e.refreshVertex(v)
}

// refreshVertex re-resolves v's neighborhood against the mutable
// topology, reusing the env's slices and the sorted-adjacency buffer so
// a refresh at the buffers' high-water capacity allocates nothing.
func (e *Engine) refreshVertex(v int) {
	env := &e.envs[v]
	nbrs := e.topo.AppendNeighbors(v, env.Neighbors[:0])
	env.Neighbors = nbrs
	env.Degree = len(nbrs)
	env.ID = e.ids[v]
	ids := env.NeighborIDs[:0]
	for _, w := range nbrs {
		ids = append(ids, e.ids[w])
	}
	env.NeighborIDs = ids
	sa := e.sortedAdj[v][:0]
	for _, w := range nbrs {
		sa = append(sa, int32(w))
	}
	slices.Sort(sa)
	e.sortedAdj[v] = dedupSorted(sa)
	// Stamp the topology's live epoch, not the per-round cache: during a
	// round they are equal (topologies mutate only between rounds), but
	// an AttachAt-time refresh runs after the hook's mutations bumped the
	// epoch past the cache, and stamping the live value is what lets the
	// joiner's resolve stick instead of being redone next round.
	e.epochOf[v] = e.topo.Epoch()
}

// SetStopCondition installs a predicate evaluated after each round; the
// run ends early once it returns true.
func (e *Engine) SetStopCondition(stop func(round int) bool) { e.stop = stop }

// SetCancel installs a cancellation channel polled once per round:
// when done is closed, Run returns ErrCanceled at the next round
// boundary. nil (the default) disables the check. Unlike a stop
// condition, cancellation is an abort, not a result — Run reports the
// error so callers cannot mistake a partial run for a completed one.
func (e *Engine) SetCancel(done <-chan struct{}) { e.cancel = done }

// SetEdgeCapacity switches the engine from the LOCAL model (unbounded
// messages, the default) to the CONGEST model: at most bits payload bits
// per edge per round per sender. Messages beyond the budget are dropped
// and counted in Metrics.Capped. A "small-sized message" in the paper is
// O(log n) bits plus a constant number of node IDs; a cap of a few
// hundred bits admits Algorithm 2's beacons while rejecting Algorithm 1's
// topology dumps.
func (e *Engine) SetEdgeCapacity(bits int) {
	e.edgeCapBits = bits
}

// SetDelayModel installs a delivery-latency model, switching Run to the
// virtual-time scheduler; nil restores the synchronous default.
// Configure before the first Run: changing the model re-sizes the
// delivery ring, and messages still in flight do not survive that.
func (e *Engine) SetDelayModel(m DelayModel) {
	e.delay = m
	e.ws = nil // ring and buckets are (re)built by ensureState
	e.ring = nil
	e.window = 0
}

// DelayModel returns the installed delivery-latency model (nil =
// synchronous).
func (e *Engine) DelayModel() DelayModel { return e.delay }

// SetFaultModel installs a message-fault model, switching Run to the
// virtual-time scheduler; nil removes it. Like SetDelayModel, configure
// before the first Run.
func (e *Engine) SetFaultModel(m FaultModel) {
	e.fault = m
	e.ws = nil
	e.ring = nil
	e.window = 0
}

// FaultModel returns the installed message-fault model (nil = none).
func (e *Engine) FaultModel() FaultModel { return e.fault }

// ReserveInbox pre-sizes every virtual-time delivery row to hold perRow
// messages without growing. Under a jittered delay model the per-(slot,
// vertex) delivery load is stochastic, so row capacities converge to
// their high-water marks only asymptotically — long steady-state runs
// keep paying rare amortized regrowth. A workload that knows a bound on
// simultaneous arrivals (for one message per edge per round: in-degree
// times the maximum delay) can reserve it up front and make warm rounds
// strictly allocation-free, which is what the perf workloads behind the
// TestSteadyStateAllocsVT* gates do. No-op outside virtual-time mode;
// rows already at capacity perRow or above are left alone.
func (e *Engine) ReserveInbox(perRow int) {
	if perRow <= 0 || !e.vtMode() || e.procs == nil {
		return
	}
	e.ensureState()
	for s := range e.ring {
		slot := e.ring[s]
		var slab []Incoming
		for v := range slot {
			if cap(slot[v]) >= perRow {
				continue
			}
			if slab == nil {
				slab = make([]Incoming, 0, len(slot)*perRow)
			}
			row := slab[len(slab) : len(slab) : len(slab)+perRow]
			slab = slab[:len(slab)+perRow]
			slot[v] = append(row, slot[v]...)
		}
	}
}

// ReserveOutbox pre-sizes every per-(worker, destination-shard,
// ring-slot) outbox bucket of the parallel virtual-time engine to hold
// perBucket messages without growing, and — on sparse engines — every
// occupied-row list to its shard's full size. It is ReserveInbox's
// send-side twin: under a jittered delay model the per-bucket load is
// stochastic, so bucket capacities converge to their high-water marks
// only asymptotically and long runs keep paying rare amortized
// regrowth; a workload that knows a burst bound can reserve it up front
// and make warm parallel sparse rounds strictly allocation-free. The
// reservation is remembered and re-applied when worker state is rebuilt
// (SetParallelism, topology growth). No-op outside virtual-time mode.
func (e *Engine) ReserveOutbox(perBucket int) {
	if perBucket <= 0 || !e.vtMode() || e.procs == nil {
		return
	}
	e.vtbReserve = perBucket
	e.ensureState()
	e.applyOutboxReserve()
}

// applyOutboxReserve carves each worker's outbox buckets out of one
// slab at the recorded per-bucket capacity (three-index slices, so a
// bucket overflowing its reservation regrows independently), and brings
// occupied-row lists up to shard capacity. Buckets already at or above
// the reservation are left alone.
func (e *Engine) applyOutboxReserve() {
	per := e.vtbReserve
	if per <= 0 {
		return
	}
	for _, ws := range e.ws {
		if ws.vtb == nil {
			continue
		}
		var slab []routed
		for i := range ws.vtb {
			if cap(ws.vtb[i]) >= per {
				continue
			}
			if slab == nil {
				slab = make([]routed, 0, len(ws.vtb)*per)
			}
			bucket := slab[len(slab) : len(slab) : len(slab)+per]
			slab = slab[:len(slab)+per]
			ws.vtb[i] = append(bucket, ws.vtb[i]...)
		}
	}
	if !e.sparse {
		return
	}
	for s, r := range e.ranges {
		size := r[1] - r[0]
		for slot := 0; slot < e.window; slot++ {
			idx := s*e.window + slot
			if idx < len(e.occRows) && cap(e.occRows[idx]) < size {
				grown := make([]int32, len(e.occRows[idx]), size)
				copy(grown, e.occRows[idx])
				e.occRows[idx] = grown
			}
		}
	}
}

// vtMode reports whether Run uses the virtual-time scheduler.
func (e *Engine) vtMode() bool { return e.delay != nil || e.fault != nil }

// SetParallelism sets the number of Step-shard workers used by Run.
// Values <= 1 select the serial engine. Parallel execution is
// deterministic and bit-identical to serial execution for any worker
// count: vertices are stepped concurrently into per-vertex outboxes that
// are merged in ascending sender order, and processes that share mutable
// state across vertices (see Sequential) are stepped on one goroutine in
// vertex order.
func (e *Engine) SetParallelism(workers int) {
	if workers < 1 {
		workers = 1
	}
	e.workers = workers
	e.ws = nil // force rebuild on next Run
}

// Parallelism reports the configured worker count (1 = serial).
func (e *Engine) Parallelism() int {
	if e.workers < 1 {
		return 1
	}
	return e.workers
}

// Graph returns the underlying static network graph, or nil for an
// engine built over a mutable Topology.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Topology returns the underlying mutable topology, or nil for an
// engine built over a static graph.
func (e *Engine) Topology() Topology { return e.topo }

// Slots returns the engine's vertex-slot capacity (alive plus vacant).
func (e *Engine) Slots() int { return e.n }

// ID returns the node ID of vertex v.
func (e *Engine) ID(v int) NodeID { return e.ids[v] }

// VertexOf returns the vertex with the given ID, or -1.
func (e *Engine) VertexOf(id NodeID) int {
	if v, ok := e.vertexOf[id]; ok {
		return v
	}
	return -1
}

// Proc returns the process attached to vertex v (nil before Attach).
func (e *Engine) Proc(v int) Proc {
	if e.procs == nil {
		return nil
	}
	return e.procs[v]
}

// Env returns the environment of vertex v (engine-owned; do not mutate).
func (e *Engine) Env(v int) *Env { return &e.envs[v] }

// Metrics returns the measurements accumulated so far.
func (e *Engine) Metrics() Metrics { return e.metrics }

// admit validates one outgoing message from v against the topology and
// the per-edge capacity, accumulating metrics into ws. It returns whether
// the message is delivered. The caller must have stamped v's neighbors
// into ws.nbrMark under ws.gen (see stepVertexInto). The decision
// depends only on v's own this-round traffic, so it is identical
// however vertices are scheduled.
func (e *Engine) admit(ws *workerState, v int, msg *Outgoing) bool {
	if uint(msg.To) >= uint(e.n) || ws.nbrMark[msg.To] != ws.gen {
		ws.violations++
		return false
	}
	bits := 0
	if msg.Payload != nil {
		bits = msg.Payload.SizeBits()
	}
	if e.edgeCapBits > 0 {
		if ws.budget == nil {
			ws.budget = make([]int, e.n)
			ws.budgetGen = make([]uint64, e.n)
		}
		if ws.budgetGen[msg.To] != ws.gen {
			ws.budgetGen[msg.To] = ws.gen
			ws.budget[msg.To] = 0
		}
		if ws.budget[msg.To]+bits > e.edgeCapBits {
			ws.capped++
			return false
		}
		ws.budget[msg.To] += bits
	}
	ws.messages++
	ws.bits += int64(bits)
	if bits > ws.maxMsgBits {
		ws.maxMsgBits = bits
	}
	if bits > e.metrics.PerNodeMaxBit[v] {
		e.metrics.PerNodeMaxBit[v] = bits
	}
	return true
}

// ensureState builds (or rebuilds) the worker ranges and scratch used by
// Run. Serial mode uses ws[0] only.
func (e *Engine) ensureState() {
	if e.ws != nil {
		return
	}
	n := e.n
	w := e.Parallelism()
	if w > n && n > 0 {
		w = n
	}
	e.ranges = e.ranges[:0]
	for i := 0; i < w; i++ {
		lo, hi := i*n/w, (i+1)*n/w
		e.ranges = append(e.ranges, [2]int{lo, hi})
	}
	// One state per range worker plus one for the sequential pass.
	e.ws = make([]*workerState, w+1)
	for i := range e.ws {
		e.ws[i] = &workerState{buckets: make([][]routed, w)}
	}
	if w > 1 {
		e.shardOf = make([]int32, n)
		for i, r := range e.ranges {
			for v := r[0]; v < r[1]; v++ {
				e.shardOf[v] = int32(i)
			}
		}
		if len(e.seq) > 0 && len(e.acc) < n {
			e.acc = make([][]routed, n)
		}
	}
	if e.vtMode() {
		e.ensureVT()
		if w > 1 {
			for _, ws := range e.ws {
				ws.vtb = make([][]routed, w*e.window)
			}
		}
		// Sparse delivery needs at least one marked proc to pay for
		// itself; rebuilding the overlay from the ring here means
		// messages in flight across a reconfiguration (parallelism or
		// capacity change) are re-discovered, never stranded. Parallel
		// engines keep the overlay race-free by ownership: the serial
		// lanes append single-threaded, the parallel lanes fold
		// occupancy in during the merge phase, where each worker owns
		// exactly its destination shard's overlay region.
		e.sparse = e.hasTickDriven()
		if e.sparse {
			e.ensureOccupancy()
		}
		e.applyOutboxReserve()
	} else {
		e.sparse = false
	}
}

// ensureVT builds (or re-sizes after growth) the virtual-time state:
// the delivery ring — window per-vertex inbox arrays — and, for models
// that draw, the per-sender stream tables (streams themselves derive
// lazily on first draw).
func (e *Engine) ensureVT() {
	w := 2
	if e.delay != nil {
		if d := e.delay.MaxDelay(); d >= 1 {
			w = d + 1
		}
	}
	e.window = w
	if len(e.ring) != w {
		e.ring = make([][][]Incoming, w)
	}
	for s := range e.ring {
		if e.ring[s] == nil {
			e.ring[s] = make([][]Incoming, e.n)
		}
		for len(e.ring[s]) < e.n {
			e.ring[s] = append(e.ring[s], nil)
		}
	}
	if e.delay != nil && e.delay.Draws() && len(e.delayRng) < e.n {
		grown := make([]*xrand.Rand, e.n)
		copy(grown, e.delayRng)
		e.delayRng = grown
	}
	if e.fault != nil && e.fault.Draws() && len(e.faultRng) < e.n {
		grown := make([]*xrand.Rand, e.n)
		copy(grown, e.faultRng)
		e.faultRng = grown
	}
}

// delayStream returns sender v's private latency stream, deriving it on
// first use (a pure function of the engine seed and v, so when it is
// derived changes nothing). Returns nil when the model never draws.
// Race-free in parallel rounds: v's entry is only touched by the worker
// owning v.
func (e *Engine) delayStream(v int) *xrand.Rand {
	if e.delayRng == nil {
		return nil
	}
	s := e.delayRng[v]
	if s == nil {
		s = e.root.SplitN("delay", v)
		e.delayRng[v] = s
	}
	return s
}

// faultStream is delayStream's fault-model counterpart.
func (e *Engine) faultStream(v int) *xrand.Rand {
	if e.faultRng == nil {
		return nil
	}
	s := e.faultRng[v]
	if s == nil {
		s = e.root.SplitN("fault", v)
		e.faultRng[v] = s
	}
	return s
}

// flushRound folds every worker's per-round accumulators into Metrics
// and returns this round's message count. All accumulators are integer
// sums or maxes over disjoint message sets, so totals are exact and
// independent of worker scheduling.
func (e *Engine) flushRound() int64 {
	var roundMsgs int64
	for _, ws := range e.ws {
		roundMsgs += ws.messages
		e.metrics.Messages += ws.messages
		e.metrics.Bits += ws.bits
		e.metrics.Violations += ws.violations
		e.metrics.Capped += ws.capped
		e.metrics.Dropped += ws.dropped
		e.metrics.DelayClamped += ws.delayClamped
		if ws.maxMsgBits > e.metrics.MaxMsgBits {
			e.metrics.MaxMsgBits = ws.maxMsgBits
		}
		ws.messages, ws.bits, ws.violations, ws.capped, ws.dropped, ws.delayClamped, ws.maxMsgBits = 0, 0, 0, 0, 0, 0, 0
	}
	return roundMsgs
}

// roundSerial executes one round on the calling goroutine, delivering
// straight into next. Returns whether every process had halted. The
// admission logic is hand-inlined (see admit for the commented version):
// this loop is the engine's hot path and an uninlined call per message
// costs ~50% throughput.
func (e *Engine) roundSerial(r int) bool {
	n := e.n
	ws := e.ws[0]
	capBits := e.edgeCapBits
	if capBits > 0 && ws.budget == nil {
		ws.budget = make([]int, n)
		ws.budgetGen = make([]uint64, n)
	}
	if ws.nbrMark == nil {
		ws.nbrMark = make([]uint64, n)
	}
	nbrMark := ws.nbrMark
	perNodeMax := e.metrics.PerNodeMaxBit
	dyn := e.topo != nil
	allHalted := true
	for v := 0; v < n; v++ {
		p := e.procs[v]
		if p == nil || p.Halted() {
			e.cur[v] = e.cur[v][:0]
			continue
		}
		allHalted = false
		if dyn && e.epochOf[v] != e.curEpoch {
			e.catchUpVertex(v)
		}
		out := p.Step(&e.envs[v], r, e.cur[v])
		e.cur[v] = e.cur[v][:0]
		if len(out) == 0 {
			continue
		}
		ws.gen++
		gen := ws.gen
		adj := e.sortedAdj[v]
		for _, w := range adj {
			nbrMark[w] = gen
		}
		fromID := e.ids[v]
		maxSent := perNodeMax[v]
		var msgs, totalBits int64
		for _, msg := range out {
			to, payload := msg.To, msg.Payload
			if uint(to) >= uint(n) || nbrMark[to] != gen {
				ws.violations++
				continue
			}
			bits := 0
			if payload != nil {
				bits = payload.SizeBits()
			}
			if capBits > 0 {
				if ws.budgetGen[to] != ws.gen {
					ws.budgetGen[to] = ws.gen
					ws.budget[to] = 0
				}
				if ws.budget[to]+bits > capBits {
					ws.capped++
					continue
				}
				ws.budget[to] += bits
			}
			msgs++
			totalBits += int64(bits)
			if bits > ws.maxMsgBits {
				ws.maxMsgBits = bits
			}
			if bits > maxSent {
				maxSent = bits
			}
			e.next[to] = append(e.next[to], Incoming{
				From:    v,
				FromID:  fromID,
				Payload: payload,
			})
		}
		ws.messages += msgs
		ws.bits += totalBits
		perNodeMax[v] = maxSent
		if cap(out) > cap(e.envs[v].scratch) {
			e.envs[v].scratch = out[:0]
		}
	}
	return allHalted
}

// stepVertex runs the shared prologue of one parallel step: halt
// check, Step, inbox truncation, and stamping the sender's neighbors
// for admission. It returns the vertex's outgoing messages (nil when
// halted or silent). Every vertex is owned by exactly one goroutine
// per round, so cur, envs, procs and PerNodeMaxBit entries are
// touched race-free.
func (e *Engine) stepVertex(v, r int, ws *workerState) []Outgoing {
	p := e.procs[v]
	if p == nil || p.Halted() {
		e.cur[v] = e.cur[v][:0]
		return nil
	}
	ws.allHalted = false
	if e.topo != nil && e.epochOf[v] != e.curEpoch {
		e.catchUpVertex(v)
	}
	out := p.Step(&e.envs[v], r, e.cur[v])
	e.cur[v] = e.cur[v][:0]
	if len(out) == 0 {
		return nil
	}
	if ws.nbrMark == nil {
		ws.nbrMark = make([]uint64, e.n)
	}
	ws.gen++
	for _, w := range e.sortedAdj[v] {
		ws.nbrMark[w] = ws.gen
	}
	return out
}

// stepVertexBuckets steps one vertex, admitting its output into the
// worker's per-destination-shard buckets (the fast path: no Sequential
// procs, buckets are worker-private).
func (e *Engine) stepVertexBuckets(v, r int, ws *workerState) {
	out := e.stepVertex(v, r, ws)
	for i := range out {
		msg := &out[i]
		if e.admit(ws, v, msg) {
			s := e.shardOf[msg.To]
			ws.buckets[s] = append(ws.buckets[s],
				routed{to: int32(msg.To), from: int32(v), payload: msg.Payload})
		}
	}
	if cap(out) > cap(e.envs[v].scratch) {
		e.envs[v].scratch = out[:0]
	}
}

// stepVertexInto steps one vertex, admitting its output into its private
// outbox acc[v]. Used by the parallel round's fallback path when
// Sequential procs are attached (their vertices are scattered across
// ranges, so per-vertex outboxes are what keeps the merge order exact).
func (e *Engine) stepVertexInto(v, r int, ws *workerState) {
	out := e.stepVertex(v, r, ws)
	for i := range out {
		msg := &out[i]
		if e.admit(ws, v, msg) {
			e.acc[v] = append(e.acc[v], routed{to: int32(msg.To), from: int32(v), payload: msg.Payload})
		}
	}
	if cap(out) > cap(e.envs[v].scratch) {
		e.envs[v].scratch = out[:0]
	}
}

// startPool parks len(ranges)+1 workers on their wake channels. Wake
// channels are engine-owned and reused across Runs (recreated only when
// the worker count changes), so restarting the pool costs one goroutine
// spawn per worker and nothing per round.
func (e *Engine) startPool() {
	if e.pool {
		return
	}
	w := len(e.ranges)
	if len(e.wake) != w+1 {
		e.wake = make([]chan poolPhase, w+1)
		for i := range e.wake {
			e.wake[i] = make(chan poolPhase, 1)
		}
	}
	for i := 0; i <= w; i++ {
		go e.poolWorker(i)
	}
	e.pool = true
}

// stopPool unwinds all pool workers and waits until they are gone.
func (e *Engine) stopPool() {
	if !e.pool {
		return
	}
	e.dispatch(phaseExit)
	e.pool = false
}

// dispatch publishes one phase to every worker and blocks until all have
// completed it. The channel send publishes e.round and everything the
// main goroutine wrote before the send; poolWG.Done/Wait publishes the
// workers' writes back. Nothing in here allocates.
func (e *Engine) dispatch(ph poolPhase) {
	e.poolWG.Add(len(e.wake))
	for _, ch := range e.wake {
		ch <- ph
	}
	e.poolWG.Wait()
}

// poolWorker is the body of pool worker i. Workers 0..w-1 own vertex
// range i during step phases and destination shard/range i during merge
// phases; worker w steps the Sequential vertices in ascending vertex
// order (the serial mutation order) and idles through merges.
func (e *Engine) poolWorker(i int) {
	w := len(e.ranges)
	for ph := range e.wake[i] {
		switch ph {
		case phaseExit:
			e.poolWG.Done()
			return
		case phaseStepBuckets:
			if i < w {
				ws := e.ws[i]
				for v := e.ranges[i][0]; v < e.ranges[i][1]; v++ {
					e.stepVertexBuckets(v, e.round, ws)
				}
			}
		case phaseStepScan:
			if i < w {
				ws := e.ws[i]
				for v := e.ranges[i][0]; v < e.ranges[i][1]; v++ {
					if e.isSeq[v] {
						continue
					}
					e.stepVertexInto(v, e.round, ws)
				}
			} else {
				ws := e.ws[w]
				for _, v := range e.seq {
					e.stepVertexInto(v, e.round, ws)
				}
			}
		case phaseMergeBuckets:
			if i < w {
				e.mergeShard(i)
			}
		case phaseMergeScan:
			if i < w {
				e.mergeRange(i)
			}
		case phaseStepVT:
			if i < w {
				ws := e.ws[i]
				for v := e.ranges[i][0]; v < e.ranges[i][1]; v++ {
					e.stepVertexVT(v, e.round, ws)
				}
			}
		case phaseMergeVT:
			if i < w {
				e.mergeShardVT(i)
			}
		case phaseStepVTSparse:
			if i < w {
				e.stepShardSparseVT(i)
			}
		case phaseMergeVTSparse:
			if i < w {
				e.mergeShardVTSparse(i)
			}
		}
		e.poolWG.Done()
	}
}

// mergeShard drains every worker's bucket for destination shard s, in
// worker order — ascending sender order, so each inbox receives its
// messages in exactly the serial delivery order.
func (e *Engine) mergeShard(s int) {
	for i := range e.ranges {
		bucket := e.ws[i].buckets[s]
		for _, m := range bucket {
			e.next[m.to] = append(e.next[m.to], Incoming{
				From:    int(m.from),
				FromID:  e.ids[m.from],
				Payload: m.payload,
			})
		}
		e.ws[i].buckets[s] = bucket[:0]
	}
}

// mergeShardVT drains every worker's virtual-time buckets for
// destination shard s into the delivery ring — for each ring slot, in
// worker order, which is ascending sender order. Because buckets are
// merged EVERY round rather than held until their delivery tick, each
// ring row accumulates its messages round-major, sender-major: exactly
// the order roundSerialVT appends them, so parallel virtual-time
// delivery is byte-identical to serial.
func (e *Engine) mergeShardVT(s int) {
	window := e.window
	for slot := 0; slot < window; slot++ {
		box := e.ring[slot]
		idx := s*window + slot
		for i := range e.ranges {
			bucket := e.ws[i].vtb[idx]
			for _, m := range bucket {
				box[m.to] = append(box[m.to], Incoming{
					From:    int(m.from),
					FromID:  e.ids[m.from],
					Payload: m.payload,
				})
			}
			e.ws[i].vtb[idx] = bucket[:0]
		}
	}
}

// mergeRange scans all senders in ascending order and delivers the
// messages addressed into destination range i (the Sequential fallback's
// merge, where admitted messages sit in per-vertex outboxes).
func (e *Engine) mergeRange(i int) {
	lo, hi := e.ranges[i][0], e.ranges[i][1]
	for v := 0; v < e.n; v++ {
		for _, m := range e.acc[v] {
			to := int(m.to)
			if to < lo || to >= hi {
				continue
			}
			e.next[to] = append(e.next[to], Incoming{
				From:    v,
				FromID:  e.ids[v],
				Payload: m.payload,
			})
		}
	}
}

// roundParallel executes one round with the sharded worker pool:
//
//  1. Step phase — each worker steps a contiguous vertex range into
//     per-(worker, destination-shard) buckets; Sequential processes run
//     on one extra worker in ascending vertex order (the serial mutation
//     order). Admission (neighbor check, edge-capacity budget) is
//     sender-local, so each decision is identical to the serial engine's.
//  2. Merge phase — each worker owns a contiguous destination shard and
//     drains senders in ascending order, so every inbox receives its
//     messages in exactly the serial delivery order.
//
// Metrics are shard-local sums/maxes flushed after the round. The net
// effect is byte-for-byte equivalence with roundSerial, at zero heap
// allocations per steady-state round (see the pool fields).
func (e *Engine) roundParallel(r int) bool {
	e.round = r
	for _, ws := range e.ws {
		ws.allHalted = true
	}
	if len(e.seq) == 0 {
		e.dispatch(phaseStepBuckets)
		e.dispatch(phaseMergeBuckets)
	} else {
		e.dispatch(phaseStepScan)
		e.dispatch(phaseMergeScan)
		for v := range e.acc {
			e.acc[v] = e.acc[v][:0]
		}
	}
	allHalted := true
	for _, ws := range e.ws {
		allHalted = allHalted && ws.allHalted
	}
	return allHalted
}

// roundParallelVT executes one virtual-time round with the sharded
// worker pool: the step phase admits each range's output into
// per-(worker, destination-shard, ring-slot) buckets, and the merge
// phase drains them into the ring (see mergeShardVT for the ordering
// argument). e.cur is aliased to the tick's ring slot so stepVertex —
// shared with the legacy parallel round — reads and truncates the right
// inboxes. Sequential processes are rejected before dispatch (see
// ErrSequentialVirtualTime), so only the bucket path exists here.
func (e *Engine) roundParallelVT(r int) bool {
	e.round = r
	e.tick = e.metrics.Rounds
	e.vtr = e.resolveVT(e.tick)
	e.cur = e.ring[e.tick%e.window]
	for _, ws := range e.ws {
		ws.allHalted = true
	}
	if e.sparse {
		// The sparse lane: each worker walks the union of its shard's
		// always-step vertices and occupied rows (stepShardSparseVT),
		// then folds occupancy into its destination shard's overlay
		// while merging (mergeShardVTSparse). The halt verdict mirrors
		// roundSparseVT's: per-worker liveAlways/tdHalts counters are
		// summed here, after the merge barrier published them.
		for _, ws := range e.ws {
			ws.liveAlways = 0
			ws.tdHalts = 0
		}
		e.dispatch(phaseStepVTSparse)
		e.dispatch(phaseMergeVTSparse)
		liveAlways := 0
		for _, ws := range e.ws {
			liveAlways += ws.liveAlways
			e.tdLive -= ws.tdHalts
		}
		return liveAlways == 0 && e.tdLive == 0
	}
	e.dispatch(phaseStepVT)
	e.dispatch(phaseMergeVT)
	allHalted := true
	for _, ws := range e.ws {
		allHalted = allHalted && ws.allHalted
	}
	return allHalted
}

// Run executes up to maxRounds rounds and returns the number of rounds
// executed. The run ends early when every process has halted or the stop
// condition fires. Attach must have been called.
func (e *Engine) Run(maxRounds int) (int, error) {
	if e.procs == nil {
		return 0, errors.New("sim: Run called before Attach")
	}
	if maxRounds < 0 {
		return 0, errors.New("sim: negative maxRounds")
	}
	// Growth between Run calls (AttachAt beyond capacity outside a hook,
	// or a hook that errored right after growing) leaves worker state
	// sized to the old capacity; rebuild before executing anything.
	if e.regrow {
		e.regrow = false
		e.ws = nil
	}
	e.ensureState()
	if e.sparse {
		e.recountTickDriven()
	}
	// Reserve the traffic series up front (rounded to a power of two,
	// bounded so a huge maxRounds with an early stop condition cannot
	// balloon memory) so appending inside the round loop never grows it
	// — the last per-round allocation the engine would otherwise make.
	const reserveCap = 1 << 16
	reserve := maxRounds
	if reserve > reserveCap {
		reserve = reserveCap
	}
	if need := len(e.metrics.MessagesByRound) + reserve; cap(e.metrics.MessagesByRound) < need {
		size := 1
		for size < need {
			size <<= 1
		}
		grown := make([]int64, len(e.metrics.MessagesByRound), size)
		copy(grown, e.metrics.MessagesByRound)
		e.metrics.MessagesByRound = grown
	}
	parallel := len(e.ranges) > 1
	vt := e.vtMode()
	if parallel {
		e.startPool()
	}
	defer e.stopPool()
	for r := 0; r < maxRounds; r++ {
		if e.cancel != nil {
			select {
			case <-e.cancel:
				return r, ErrCanceled
			default:
			}
		}
		if e.topo != nil {
			e.curEpoch = e.topo.Epoch()
		}
		var allHalted bool
		switch {
		case vt:
			// Checked every round, not just up front: a between-rounds
			// hook may AttachAt a Sequential process mid-run.
			if parallel && len(e.seq) > 0 {
				return r, ErrSequentialVirtualTime
			}
			// Fast-forward: an empty slot (an O(shards) occCnt
			// reduction) plus an all-TickDriven live population means
			// executing this tick would step nothing and deliver
			// nothing — jump the virtual clock instead, serial and
			// parallel alike (a skipped parallel tick bypasses the
			// pool entirely; no phase is dispatched). A between-rounds
			// hook pins the dense cadence (it observes every boundary),
			// and the skipped tick's bookkeeping matches an executed
			// empty tick exactly, so transcripts and metrics (minus
			// TicksSkipped) are identical with skipping on or off.
			if e.sparse && e.skip && e.betweenRounds == nil &&
				e.occSlotEmpty(e.metrics.Rounds%e.window) && e.vtCanSkip() {
				e.metrics.Rounds++
				e.metrics.TicksSkipped++
				e.metrics.MessagesByRound = append(e.metrics.MessagesByRound, 0)
				if e.stop != nil && e.stop(r) {
					return r + 1, nil
				}
				continue
			}
			if parallel {
				allHalted = e.roundParallelVT(r)
			} else {
				allHalted = e.roundSerialVT(r)
			}
		case parallel:
			allHalted = e.roundParallel(r)
		default:
			allHalted = e.roundSerial(r)
		}
		roundMsgs := e.flushRound()
		e.metrics.Rounds++
		e.metrics.MessagesByRound = append(e.metrics.MessagesByRound, roundMsgs)
		if !vt {
			// Virtual time has no swap: the ring advances by tick index
			// (the next tick's slot already holds its pending messages).
			e.cur, e.next = e.next, e.cur
		}
		if e.betweenRounds != nil {
			e.hookAttached = false
			if err := e.betweenRounds(r); err != nil {
				return r + 1, err
			}
			// Freshly attached processes are owed a first Step; the round's
			// all-halted verdict predates them.
			if e.hookAttached {
				allHalted = false
			}
			if e.regrow {
				// The slot arrays grew: ranges, the shard map, and worker
				// scratch are sized to the old capacity. Rebuild them (and
				// the pool, whose workers cache range bounds) before the
				// next round.
				e.regrow = false
				e.stopPool()
				e.ws = nil
				e.ensureState()
				parallel = len(e.ranges) > 1
				if parallel {
					e.startPool()
				}
			}
		}
		if allHalted {
			return r, nil
		}
		if e.stop != nil && e.stop(r) {
			return r + 1, nil
		}
	}
	return maxRounds, nil
}
