package stats

// Online aggregates: constant-memory counterparts of the batch
// Mean/Variance/Quantile functions, for sweeps too large to retain
// per-trial rows. A million-cell matrix run streams every completed
// trial through one Online (and optionally one P2 per tracked
// quantile) per row, so steady-state sweep memory is O(rows), not
// O(rows x trials).
//
// Accumulation order matters in floating point: feeding the same
// values in the same order always produces bit-identical aggregates,
// which is what lets a resumed sweep (recorded results replayed in
// trial order) emit tables byte-identical to an uninterrupted run.

import (
	"math"
	"sort"
)

// Online accumulates count, mean, variance (Welford's algorithm), an
// order-stable plain sum, and min/max of a stream of observations in
// O(1) memory. The zero value is ready to use.
type Online struct {
	n    int64
	mean float64 // Welford running mean
	m2   float64 // sum of squared deviations from the running mean
	sum  float64 // plain left-to-right sum (bit-identical to batch Mean)
	min  float64
	max  float64
}

// Add records one observation.
func (o *Online) Add(x float64) {
	o.n++
	o.sum += x
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
	if o.n == 1 {
		o.min, o.max = math.Inf(1), math.Inf(-1)
	}
	// NaN comparisons are false, so NaNs never displace min/max —
	// exactly the batch Min/Max behavior.
	if x < o.min {
		o.min = x
	}
	if x > o.max {
		o.max = x
	}
}

// N returns the number of observations.
func (o *Online) N() int64 { return o.n }

// Mean returns the Welford running mean, or 0 when empty (matching
// the batch Mean). It is numerically stabler than SumMean but not
// bit-identical to it.
func (o *Online) Mean() float64 {
	if o.n == 0 {
		return 0
	}
	return o.mean
}

// SumMean returns sum/n accumulated in arrival order — bit-identical
// to the batch Mean over the same values in the same order, which is
// what table columns use so streamed tables match batch-computed ones
// byte for byte. 0 when empty.
func (o *Online) SumMean() float64 {
	if o.n == 0 {
		return 0
	}
	return o.sum / float64(o.n)
}

// Variance returns the unbiased sample variance, or 0 when fewer than
// two observations are present (matching the batch Variance).
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// StdDev returns the sample standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Min returns the minimum observation, or +Inf when empty.
func (o *Online) Min() float64 {
	if o.n == 0 {
		return math.Inf(1)
	}
	return o.min
}

// Max returns the maximum observation, or -Inf when empty.
func (o *Online) Max() float64 {
	if o.n == 0 {
		return math.Inf(-1)
	}
	return o.max
}

// P2 estimates a single quantile of a stream in O(1) memory using the
// P-squared algorithm (Jain & Chlamtac, CACM 1985): five markers whose
// heights track the quantile and whose positions are nudged toward
// their ideal spots with piecewise-parabolic interpolation. For five
// or fewer observations the estimate is exact (the observations are
// retained and the batch Quantile applied); beyond that it is an
// approximation whose error shrinks as the stream grows — see
// TestP2TracksBatchQuantile for the documented tolerance.
type P2 struct {
	q    float64
	n    int64
	h    [5]float64 // marker heights
	pos  [5]float64 // actual marker positions (1-based)
	want [5]float64 // desired marker positions
	inc  [5]float64 // desired-position increment per observation
	init []float64  // first five observations, sorted on the fifth
}

// NewP2 returns an estimator for the q-quantile, q in [0, 1].
func NewP2(q float64) *P2 {
	if q < 0 || q > 1 {
		panic("stats: P2 quantile outside [0,1]")
	}
	return &P2{
		q:    q,
		want: [5]float64{1, 1 + 2*q, 1 + 4*q, 3 + 2*q, 5},
		inc:  [5]float64{0, q / 2, q, (1 + q) / 2, 1},
		init: make([]float64, 0, 5),
	}
}

// Add records one observation.
func (p *P2) Add(x float64) {
	p.n++
	if p.n <= 5 {
		p.init = append(p.init, x)
		if p.n == 5 {
			sorted := append([]float64(nil), p.init...)
			sort.Float64s(sorted)
			copy(p.h[:], sorted)
			p.pos = [5]float64{1, 2, 3, 4, 5}
		}
		return
	}
	// Locate the cell containing x and clamp the extreme markers.
	var k int
	switch {
	case x < p.h[0]:
		p.h[0] = x
		k = 0
	case x >= p.h[4]:
		p.h[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < p.h[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	for i := range p.want {
		p.want[i] += p.inc[i]
	}
	// Nudge the interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := p.want[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			hp := p.parabolic(i, s)
			if p.h[i-1] < hp && hp < p.h[i+1] {
				p.h[i] = hp
			} else {
				p.h[i] = p.linear(i, s)
			}
			p.pos[i] += s
		}
	}
}

// parabolic is the P-squared piecewise-parabolic height prediction for
// moving marker i by s (+1 or -1).
func (p *P2) parabolic(i int, s float64) float64 {
	return p.h[i] + s/(p.pos[i+1]-p.pos[i-1])*
		((p.pos[i]-p.pos[i-1]+s)*(p.h[i+1]-p.h[i])/(p.pos[i+1]-p.pos[i])+
			(p.pos[i+1]-p.pos[i]-s)*(p.h[i]-p.h[i-1])/(p.pos[i]-p.pos[i-1]))
}

// linear is the fallback height prediction when the parabola would
// violate marker monotonicity.
func (p *P2) linear(i int, s float64) float64 {
	j := i + int(s)
	return p.h[i] + s*(p.h[j]-p.h[i])/(p.pos[j]-p.pos[i])
}

// N returns the number of observations.
func (p *P2) N() int64 { return p.n }

// Quantile returns the current estimate: NaN when empty, exact for up
// to five observations, the P-squared estimate beyond.
func (p *P2) Quantile() float64 {
	if p.n == 0 {
		return math.NaN()
	}
	if p.n <= 5 {
		return Quantile(p.init, p.q)
	}
	switch p.q {
	case 0:
		return p.h[0]
	case 1:
		return p.h[4]
	}
	return p.h[2]
}
