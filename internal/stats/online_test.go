package stats

import (
	"math"
	"testing"

	"byzcount/internal/xrand"
)

// drawStream produces n samples from one of a few shapes, so the
// property tests cover uniform, heavy-tailed, discrete, and shifted
// distributions rather than one friendly one.
func drawStream(rng *xrand.Rand, shape string, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		switch shape {
		case "uniform":
			out[i] = rng.Float64()
		case "exponential":
			out[i] = rng.Exponential(0.5)
		case "discrete":
			out[i] = float64(rng.Intn(7))
		case "shifted":
			out[i] = 1e6 + rng.Float64()
		default:
			panic("unknown shape " + shape)
		}
	}
	return out
}

var streamShapes = []string{"uniform", "exponential", "discrete", "shifted"}

// TestOnlineMatchesBatch: the Online aggregate fed element by element
// must agree with the batch Mean/Variance/Min/Max over the same slice.
// SumMean is required bit-identical (it is the same left-to-right sum);
// the Welford mean and variance to 1e-9 relative error.
func TestOnlineMatchesBatch(t *testing.T) {
	rng := xrand.New(7)
	for _, shape := range streamShapes {
		for _, n := range []int{1, 2, 3, 10, 1000} {
			xs := drawStream(rng.SplitN(shape, n), shape, n)
			var o Online
			for _, x := range xs {
				o.Add(x)
			}
			if got, want := o.SumMean(), Mean(xs); got != want {
				t.Errorf("%s n=%d: SumMean=%v batch Mean=%v (must be bit-identical)", shape, n, got, want)
			}
			if got, want := o.Mean(), Mean(xs); !closeRel(got, want, 1e-9) {
				t.Errorf("%s n=%d: Welford Mean=%v batch=%v", shape, n, got, want)
			}
			if got, want := o.Variance(), Variance(xs); !closeRel(got, want, 1e-9) {
				t.Errorf("%s n=%d: Variance=%v batch=%v", shape, n, got, want)
			}
			if got, want := o.Min(), Min(xs); got != want {
				t.Errorf("%s n=%d: Min=%v batch=%v", shape, n, got, want)
			}
			if got, want := o.Max(), Max(xs); got != want {
				t.Errorf("%s n=%d: Max=%v batch=%v", shape, n, got, want)
			}
			if o.N() != int64(n) {
				t.Errorf("%s n=%d: N=%d", shape, n, o.N())
			}
		}
	}
}

// closeRel reports |a-b| <= tol * max(1, |a|, |b|).
func closeRel(a, b, tol float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

// TestOnlineEmpty pins the empty-aggregate conventions to the batch
// functions' (Mean 0, Variance 0, Min +Inf, Max -Inf).
func TestOnlineEmpty(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.SumMean() != 0 || o.Variance() != 0 {
		t.Errorf("empty Online mean/variance not 0: %v %v %v", o.Mean(), o.SumMean(), o.Variance())
	}
	if !math.IsInf(o.Min(), 1) || !math.IsInf(o.Max(), -1) {
		t.Errorf("empty Online min/max: %v %v", o.Min(), o.Max())
	}
}

// TestOnlineDeterministicOrder: two aggregates fed the same values in
// the same order are bit-identical in every statistic — the property
// resumed sweeps rely on when replaying recorded trials.
func TestOnlineDeterministicOrder(t *testing.T) {
	xs := drawStream(xrand.New(3), "exponential", 257)
	var a, b Online
	for _, x := range xs {
		a.Add(x)
		b.Add(x)
	}
	if a != b {
		t.Errorf("identical streams produced different aggregates: %+v vs %+v", a, b)
	}
}

// TestP2ExactSmall: with five or fewer observations the P2 estimate
// must equal the batch Quantile exactly.
func TestP2ExactSmall(t *testing.T) {
	rng := xrand.New(11)
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 1} {
		for n := 1; n <= 5; n++ {
			xs := drawStream(rng.SplitN("s", n*10+int(q*100)), "uniform", n)
			p := NewP2(q)
			for _, x := range xs {
				p.Add(x)
			}
			if got, want := p.Quantile(), Quantile(xs, q); got != want {
				t.Errorf("q=%v n=%d: P2=%v batch=%v", q, n, got, want)
			}
		}
	}
	if !math.IsNaN(NewP2(0.5).Quantile()) {
		t.Error("empty P2 quantile not NaN")
	}
}

// TestP2TracksBatchQuantile documents the estimator's accuracy
// contract: on streams of >= 1000 iid samples the P2 estimate of the
// q-quantile lies within 5% of the observed range of the exact batch
// Quantile, for q in {0.1, 0.25, 0.5, 0.75, 0.9}. Heavily tied
// streams (the "discrete" shape: seven distinct values) get 10% —
// P-squared interpolates a continuous CDF, so on ties its markers can
// sit a sizable fraction of a quantization step from the exact order
// statistic. (The marker extremes are exact: q=0 tracks the minimum
// and q=1 the maximum by construction, checked separately.)
func TestP2TracksBatchQuantile(t *testing.T) {
	rng := xrand.New(19)
	for _, shape := range streamShapes {
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
			for _, n := range []int{1000, 5000} {
				xs := drawStream(rng.SplitN(shape, n+int(q*1000)), shape, n)
				p := NewP2(q)
				var o Online
				for _, x := range xs {
					p.Add(x)
					o.Add(x)
				}
				exact := Quantile(xs, q)
				relTol := 0.05
				if shape == "discrete" {
					relTol = 0.10
				}
				tol := relTol * (o.Max() - o.Min())
				if d := math.Abs(p.Quantile() - exact); d > tol {
					t.Errorf("%s q=%v n=%d: P2=%v exact=%v (|diff|=%v > tol=%v)",
						shape, q, n, p.Quantile(), exact, d, tol)
				}
			}
		}
	}
}

// TestP2Extremes: q=0 and q=1 markers clamp to the running min/max,
// so the extreme quantiles are exact at any stream length.
func TestP2Extremes(t *testing.T) {
	xs := drawStream(xrand.New(23), "exponential", 2000)
	lo, hi := NewP2(0), NewP2(1)
	var o Online
	for _, x := range xs {
		lo.Add(x)
		hi.Add(x)
		o.Add(x)
	}
	if lo.Quantile() != o.Min() {
		t.Errorf("P2(0)=%v min=%v", lo.Quantile(), o.Min())
	}
	if hi.Quantile() != o.Max() {
		t.Errorf("P2(1)=%v max=%v", hi.Quantile(), o.Max())
	}
}
