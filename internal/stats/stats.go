// Package stats provides the small set of descriptive statistics used by
// the experiment harness: means, quantiles, histograms, and summaries of
// repeated trials.
//
// All functions treat their input as immutable: slices passed in are never
// reordered in place (quantile computations copy first).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs, or 0 when fewer than
// two samples are present.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile of xs (0 <= q <= 1) using linear
// interpolation between order statistics. It returns NaN for an empty
// slice and panics if q is outside [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
	}
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the median of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// FractionWithin returns the fraction of xs lying in the closed interval
// [lo, hi]. An empty slice yields 0.
func FractionWithin(xs []float64, lo, hi float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	in := 0
	for _, x := range xs {
		if x >= lo && x <= hi {
			in++
		}
	}
	return float64(in) / float64(len(xs))
}

// Ints converts an int slice to float64 for use with the functions above.
func Ints(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// Summary bundles the descriptive statistics reported for one experiment
// measurement across trials.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P25    float64
	Median float64
	P75    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		P25:    Quantile(xs, 0.25),
		Median: Median(xs),
		P75:    Quantile(xs, 0.75),
		Max:    Max(xs),
	}
}

// String renders the summary compactly, e.g. "n=10 mean=3.2±0.4 [1 3 5]".
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3g±%.2g [min=%.3g med=%.3g max=%.3g]",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.Max)
}

// Histogram counts values into integer-valued buckets; it is used to show
// the distribution of decided estimates across nodes.
type Histogram struct {
	counts map[int]int
	total  int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]int)}
}

// Add records one observation of value v.
func (h *Histogram) Add(v int) {
	h.counts[v]++
	h.total++
}

// AddN records n observations of value v.
func (h *Histogram) AddN(v, n int) {
	if n <= 0 {
		return
	}
	h.counts[v] += n
	h.total += n
}

// Count returns the number of observations of value v.
func (h *Histogram) Count(v int) int { return h.counts[v] }

// Total returns the total number of observations.
func (h *Histogram) Total() int { return h.total }

// Buckets returns the observed values in ascending order.
func (h *Histogram) Buckets() []int {
	out := make([]int, 0, len(h.counts))
	for v := range h.counts {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Mode returns the most frequent value and its count. Ties break toward the
// smaller value. An empty histogram returns (0, 0).
func (h *Histogram) Mode() (value, count int) {
	best, bestCount := 0, 0
	for _, v := range h.Buckets() {
		if c := h.counts[v]; c > bestCount {
			best, bestCount = v, c
		}
	}
	return best, bestCount
}

// Fraction returns the fraction of observations with value in [lo, hi].
func (h *Histogram) Fraction(lo, hi int) float64 {
	if h.total == 0 {
		return 0
	}
	in := 0
	for v, c := range h.counts {
		if v >= lo && v <= hi {
			in += c
		}
	}
	return float64(in) / float64(h.total)
}

// String renders the histogram as "v:count" pairs in ascending value order.
func (h *Histogram) String() string {
	var b strings.Builder
	for i, v := range h.Buckets() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%d", v, h.counts[v])
	}
	return b.String()
}
