package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3}, 2},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	if got := Variance(nil); got != 0 {
		t.Errorf("Variance(nil) = %g", got)
	}
	if got := Variance([]float64{7}); got != 0 {
		t.Errorf("Variance(single) = %g", got)
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance of this classic data set is 32/7.
	if got, want := Variance(xs), 32.0/7.0; !almostEqual(got, want, 1e-9) {
		t.Errorf("Variance = %g, want %g", got, want)
	}
	if got, want := StdDev(xs), math.Sqrt(32.0/7.0); !almostEqual(got, want, 1e-9) {
		t.Errorf("StdDev = %g, want %g", got, want)
	}
}

func TestMinMax(t *testing.T) {
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max should be ±Inf")
	}
	xs := []float64{3, -2, 8, 0}
	if Min(xs) != -2 || Max(xs) != 8 {
		t.Errorf("Min/Max(%v) = %g/%g", xs, Min(xs), Max(xs))
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // unsorted on purpose
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {0.75, 3.25},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	// Input must not be reordered.
	if xs[0] != 4 || xs[3] != 2 {
		t.Error("Quantile mutated its input")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(empty) should be NaN")
	}
	if got := Quantile([]float64{9}, 0.3); got != 9 {
		t.Errorf("Quantile(single, 0.3) = %g", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile with q>1 did not panic")
		}
	}()
	Quantile([]float64{1}, 1.5)
}

func TestQuantileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMedianOddEven(t *testing.T) {
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Errorf("odd median = %g", got)
	}
	if got := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("even median = %g", got)
	}
}

func TestFractionWithin(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := FractionWithin(xs, 2, 4); got != 0.6 {
		t.Errorf("FractionWithin = %g, want 0.6", got)
	}
	if got := FractionWithin(xs, 10, 20); got != 0 {
		t.Errorf("out-of-range fraction = %g", got)
	}
	if got := FractionWithin(nil, 0, 1); got != 0 {
		t.Errorf("empty fraction = %g", got)
	}
}

func TestInts(t *testing.T) {
	got := Ints([]int{1, -2, 3})
	want := []float64{1, -2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ints = %v, want %v", got, want)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("Summarize = %+v", s)
	}
	if s.String() == "" {
		t.Error("Summary.String empty")
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Errorf("empty Summarize N = %d", empty.N)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Total() != 0 {
		t.Fatal("fresh histogram not empty")
	}
	h.Add(3)
	h.Add(3)
	h.Add(5)
	h.AddN(1, 4)
	h.AddN(9, 0)  // no-op
	h.AddN(9, -2) // no-op
	if h.Total() != 7 {
		t.Errorf("Total = %d, want 7", h.Total())
	}
	if h.Count(3) != 2 || h.Count(1) != 4 || h.Count(42) != 0 {
		t.Errorf("counts wrong: %s", h)
	}
	want := []int{1, 3, 5}
	got := h.Buckets()
	if len(got) != len(want) {
		t.Fatalf("Buckets = %v", got)
	}
	if !sort.IntsAreSorted(got) {
		t.Errorf("Buckets not sorted: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Buckets = %v, want %v", got, want)
		}
	}
}

func TestHistogramMode(t *testing.T) {
	h := NewHistogram()
	v, c := h.Mode()
	if v != 0 || c != 0 {
		t.Errorf("empty Mode = %d,%d", v, c)
	}
	h.AddN(4, 3)
	h.AddN(2, 3) // tie; smaller value wins
	h.Add(7)
	v, c = h.Mode()
	if v != 2 || c != 3 {
		t.Errorf("Mode = %d,%d; want 2,3", v, c)
	}
}

func TestHistogramFraction(t *testing.T) {
	h := NewHistogram()
	if h.Fraction(0, 10) != 0 {
		t.Error("empty Fraction != 0")
	}
	h.AddN(1, 2)
	h.AddN(5, 2)
	h.AddN(10, 4)
	if got := h.Fraction(1, 5); got != 0.5 {
		t.Errorf("Fraction(1,5) = %g", got)
	}
	if got := h.Fraction(10, 10); got != 0.5 {
		t.Errorf("Fraction(10,10) = %g", got)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram()
	h.Add(2)
	h.AddN(1, 3)
	if got, want := h.String(), "1:3 2:1"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestMeanQuantileConsistency(t *testing.T) {
	// Property: min <= p25 <= median <= p75 <= max and min <= mean <= max.
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.P25+1e-9 && s.P25 <= s.Median+1e-9 &&
			s.Median <= s.P75+1e-9 && s.P75 <= s.Max+1e-9 &&
			s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
