// Package sweep is the durability layer of the matrix sweep service:
// an append-only, CRC-framed JSONL log of completed (row, trial) cell
// results, and an atomically renamed run manifest pinning the grid
// spec a log belongs to. Together they make an interrupted sweep
// resumable: every trial is a pure function of its sub-seed, so
// replaying the log's completed cells and re-running the rest
// reproduces the uninterrupted run byte for byte.
//
// The log is built to survive exactly the failures a sweep meets in
// practice. Appends are buffered and fsync'd in batches, so a hard
// kill (SIGKILL, OOM, power loss) can lose at most the unsynced tail
// — and a torn final record is tolerated on reopen: the log is
// truncated back to its last whole record and the lost cells simply
// re-run. Corruption anywhere before the tail (a CRC or framing
// mismatch followed by more data) is never silently skipped: reopen
// fails naming the byte offset.
package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
)

// LogName is the cell log's filename inside a sweep directory.
const LogName = "cells.wal"

// Record is one logged cell result: the (Row, Trial) grid key, the
// trial's derived sub-seed, and either the result values (Vals, as
// IEEE-754 bit patterns so NaN/Inf round-trip exactly) or a
// quarantined failure (Err, with the panic stack when there was one).
type Record struct {
	Row   string   `json:"row"`
	Trial int      `json:"trial"`
	Seed  uint64   `json:"seed"`
	Vals  []uint64 `json:"vals,omitempty"`
	Err   string   `json:"err,omitempty"`
	Stack string   `json:"stack,omitempty"`
	// Attempts is how many executions the cell consumed before the
	// recorded outcome (1 for a first-try success; retries count).
	Attempts int `json:"attempts,omitempty"`
}

// Failed reports whether the record is a quarantined failure.
func (r Record) Failed() bool { return r.Err != "" }

// Floats unpacks Vals into float64s.
func (r Record) Floats() []float64 {
	out := make([]float64, len(r.Vals))
	for i, b := range r.Vals {
		out[i] = math.Float64frombits(b)
	}
	return out
}

// PackFloats converts values to their IEEE-754 bit patterns for Vals.
// JSON cannot carry NaN or Inf as numbers, and a resumed table must
// replay the exact float64 a trial produced; bits round-trip both.
func PackFloats(vals []float64) []uint64 {
	out := make([]uint64, len(vals))
	for i, v := range vals {
		out[i] = math.Float64bits(v)
	}
	return out
}

// CorruptError reports a framing or checksum failure at a byte offset
// that is not a torn tail — data follows it, so skipping it would
// silently drop completed cells.
type CorruptError struct {
	Path   string
	Offset int64
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("sweep: corrupt log %s at byte offset %d: %s", e.Path, e.Offset, e.Reason)
}

// castagnoli is the CRC-32C table shared by framing and verification.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Each record is one line: an 8-hex-digit payload length, a space, an
// 8-hex-digit CRC-32C of the payload, a space, the JSON payload, and a
// newline. The header is fixed-width so a reader can frame records
// without trusting the payload, and the whole line stays greppable.
const headerLen = 18 // 8 hex + ' ' + 8 hex + ' '

// appendFrame appends the framed encoding of payload to dst.
func appendFrame(dst, payload []byte) []byte {
	dst = append(dst, fmt.Sprintf("%08x %08x ", len(payload), crc32.Checksum(payload, castagnoli))...)
	dst = append(dst, payload...)
	return append(dst, '\n')
}

// Log is the append half: an open cell log with buffered, batch-synced
// appends. Not safe for concurrent use; the sweep driver serializes
// appends through its collector.
type Log struct {
	f        *os.File
	path     string
	buf      []byte
	records  int // records appended since open
	unsynced int
	// SyncEvery is the fsync batch size: the log syncs after every
	// SyncEvery buffered appends (and on Sync/Close). Smaller batches
	// bound the work a hard kill can lose; larger ones amortize the
	// fsync. Default 64.
	SyncEvery int
}

// OpenLog opens (creating if absent) the cell log in dir, replays its
// existing records, and positions the log for appending. A torn final
// record — a crash mid-append — is tolerated: the file is truncated
// back to the last whole record. Corruption before the tail fails
// with a *CorruptError naming the offset.
func OpenLog(dir string) (*Log, []Record, error) {
	path := filepath.Join(dir, LogName)
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, err
	}
	recs, good, err := decodeAll(path, data)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if int64(len(data)) > good {
		// Torn tail: drop it so the next append starts on a record
		// boundary instead of extending garbage.
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &Log{f: f, path: path, SyncEvery: 64}, recs, nil
}

// decodeAll parses every whole record in data, returning them plus the
// byte offset of the end of the last whole record. An incomplete
// suffix (truncated header or payload at EOF) is tolerated; anything
// malformed that is followed by more data, or a checksum mismatch on a
// complete record, is a *CorruptError.
func decodeAll(path string, data []byte) ([]Record, int64, error) {
	var recs []Record
	off := int64(0)
	for int(off) < len(data) {
		rest := data[off:]
		if len(rest) < headerLen {
			break // torn tail: header cut off by a crash
		}
		var plen, sum uint32
		if _, err := fmt.Sscanf(string(rest[:headerLen]), "%08x %08x ", &plen, &sum); err != nil ||
			rest[8] != ' ' || rest[17] != ' ' {
			return nil, 0, &CorruptError{Path: path, Offset: off, Reason: "malformed frame header"}
		}
		end := headerLen + int(plen) + 1
		if len(rest) < end {
			break // torn tail: payload cut off by a crash
		}
		payload := rest[headerLen : headerLen+int(plen)]
		if rest[end-1] != '\n' {
			return nil, 0, &CorruptError{Path: path, Offset: off, Reason: "missing record terminator"}
		}
		if got := crc32.Checksum(payload, castagnoli); got != sum {
			return nil, 0, &CorruptError{Path: path, Offset: off,
				Reason: fmt.Sprintf("checksum mismatch (stored %08x, computed %08x)", sum, got)}
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return nil, 0, &CorruptError{Path: path, Offset: off, Reason: "payload not valid JSON: " + err.Error()}
		}
		recs = append(recs, rec)
		off += int64(end)
	}
	return recs, off, nil
}

// Append buffers one record and syncs if the batch is full.
func (l *Log) Append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if bytes.ContainsRune(payload, '\n') {
		return fmt.Errorf("sweep: record payload contains newline") // cannot happen with json.Marshal
	}
	l.buf = appendFrame(l.buf, payload)
	l.records++
	l.unsynced++
	if l.SyncEvery > 0 && l.unsynced >= l.SyncEvery {
		return l.Sync()
	}
	return nil
}

// Records returns the number of records appended since open.
func (l *Log) Records() int { return l.records }

// Sync flushes buffered records and fsyncs the file, making every
// append so far durable.
func (l *Log) Sync() error {
	if len(l.buf) > 0 {
		if _, err := l.f.Write(l.buf); err != nil {
			return err
		}
		l.buf = l.buf[:0]
	}
	if l.unsynced == 0 {
		return nil
	}
	l.unsynced = 0
	return l.f.Sync()
}

// Close syncs and closes the log.
func (l *Log) Close() error {
	if err := l.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}
