package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// ManifestSchema identifies the manifest format; bump on incompatible
// change.
const ManifestSchema = "byzcount-sweep/v1"

// ManifestName is the manifest's filename inside a sweep directory.
const ManifestName = "manifest.json"

// Manifest pins a sweep directory to one exact run: the full grid
// spec, the root seed and trial count that derive every cell's
// sub-seed, the result-column names the logged Vals are ordered by,
// and the code version that produced it. Resume re-enumerates the
// grid from Spec, so a resumed run cannot drift from the original
// request — the manifest, not the resumer's flags, is the source of
// truth.
type Manifest struct {
	Schema    string `json:"schema"`
	CreatedAt string `json:"created_at"`
	GitSHA    string `json:"git_sha"`
	Seed      uint64 `json:"seed"`
	Trials    int    `json:"trials"`
	// Cells is the enumerated grid size, a cheap cross-check that the
	// resuming binary enumerates Spec to the same cells.
	Cells   int      `json:"cells"`
	Columns []string `json:"columns"`
	// Spec is the driver-owned grid spec (the expt.Matrix), opaque to
	// this package so the durability layer needs no knowledge of the
	// scenario vocabulary.
	Spec json.RawMessage `json:"spec"`
}

// WriteManifest writes the manifest atomically: marshal to a temp file
// in dir, fsync it, rename over the final name, fsync the directory.
// A crash at any point leaves either the old manifest or the new one,
// never a torn in-between.
func WriteManifest(dir string, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(dir, ManifestName+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(dir, ManifestName)); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a rename into it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// ReadManifest reads and schema-checks dir's manifest.
func ReadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("sweep: %s: %w", filepath.Join(dir, ManifestName), err)
	}
	if m.Schema != ManifestSchema {
		return nil, fmt.Errorf("sweep: %s: schema %q, want %q", filepath.Join(dir, ManifestName), m.Schema, ManifestSchema)
	}
	return &m, nil
}

// Checkpoint is the human-facing progress file a sweep rewrites
// atomically at shutdown (graceful or completed). Resume derives its
// truth from the log, not from this file — it exists so `cat
// checkpoint.json` answers "how far did it get" without parsing the
// WAL.
type Checkpoint struct {
	UpdatedAt   string `json:"updated_at"`
	Completed   int    `json:"completed"`
	Quarantined int    `json:"quarantined"`
	Total       int    `json:"total"`
	Interrupted bool   `json:"interrupted"`
}

// CheckpointName is the checkpoint's filename inside a sweep directory.
const CheckpointName = "checkpoint.json"

// WriteCheckpoint writes the checkpoint atomically (same temp+rename
// protocol as the manifest).
func WriteCheckpoint(dir string, c *Checkpoint) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(dir, CheckpointName+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmpName)
		if werr != nil {
			return werr
		}
		if serr != nil {
			return serr
		}
		return cerr
	}
	if err := os.Rename(tmpName, filepath.Join(dir, CheckpointName)); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// ReadCheckpoint reads dir's checkpoint; missing file is not an error
// (nil, nil).
func ReadCheckpoint(dir string) (*Checkpoint, error) {
	data, err := os.ReadFile(filepath.Join(dir, CheckpointName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var c Checkpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, err
	}
	return &c, nil
}
