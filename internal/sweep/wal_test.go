package sweep

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testRecords(n int) []Record {
	out := make([]Record, n)
	for i := range out {
		out[i] = Record{
			Row:      "congest/hnd/none/n=256",
			Trial:    i,
			Seed:     uint64(i) * 0x9e3779b97f4a7c15,
			Vals:     PackFloats([]float64{float64(i), 1.5 * float64(i), math.NaN()}),
			Attempts: 1,
		}
	}
	return out
}

func writeAll(t *testing.T, dir string, recs []Record) {
	t.Helper()
	l, prior, err := OpenLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != 0 {
		t.Fatalf("fresh log replayed %d records", len(prior))
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := testRecords(17)
	writeAll(t, dir, want)
	l, got, err := OpenLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		a, _ := json.Marshal(got[i])
		b, _ := json.Marshal(want[i])
		if string(a) != string(b) {
			t.Errorf("record %d: got %s want %s", i, a, b)
		}
	}
	// NaN must round-trip through the bit packing.
	if !math.IsNaN(got[3].Floats()[2]) {
		t.Errorf("NaN did not survive the round trip: %v", got[3].Floats())
	}
}

func TestWALAppendAfterReopen(t *testing.T) {
	dir := t.TempDir()
	writeAll(t, dir, testRecords(5))
	l, got, err := OpenLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("replayed %d, want 5", len(got))
	}
	if err := l.Append(Record{Row: "x", Trial: 99, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, got, err = OpenLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 || got[5].Trial != 99 {
		t.Fatalf("append after reopen lost: %d records, last %+v", len(got), got[len(got)-1])
	}
}

// TestWALTruncatedTailTolerated chops the file mid-record at several
// depths — inside the final payload, inside the final header — and
// expects reopen to replay every whole record, truncate the torn
// tail, and support further appends.
func TestWALTruncatedTailTolerated(t *testing.T) {
	for _, chop := range []int{1, 5, headerLen - 3, headerLen + 4} {
		dir := t.TempDir()
		writeAll(t, dir, testRecords(9))
		path := filepath.Join(dir, LogName)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Find the start of the last record and cut `chop` bytes into it.
		lastStart := strings.LastIndex(string(data[:len(data)-1]), "\n") + 1
		if err := os.WriteFile(path, data[:lastStart+chop], 0o644); err != nil {
			t.Fatal(err)
		}
		l, got, err := OpenLog(dir)
		if err != nil {
			t.Fatalf("chop=%d: reopen failed: %v", chop, err)
		}
		if len(got) != 8 {
			t.Fatalf("chop=%d: replayed %d records, want 8", chop, len(got))
		}
		if err := l.Append(Record{Row: "y", Trial: 8, Seed: 2}); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		_, got, err = OpenLog(dir)
		if err != nil {
			t.Fatalf("chop=%d: reopen after repair failed: %v", chop, err)
		}
		if len(got) != 9 || got[8].Row != "y" {
			t.Fatalf("chop=%d: repaired log has %d records, last %+v", chop, len(got), got[len(got)-1])
		}
	}
}

// TestWALMidFileCorruptionRejected flips a payload byte in a record
// that is NOT the tail and expects a CorruptError naming the offset of
// the damaged record.
func TestWALMidFileCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	writeAll(t, dir, testRecords(9))
	path := filepath.Join(dir, LogName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Damage a byte inside the third record's payload.
	lines := strings.SplitAfter(string(data), "\n")
	wantOff := int64(len(lines[0]) + len(lines[1]))
	corrupt := []byte(strings.Join(lines, ""))
	corrupt[wantOff+int64(headerLen)+2] ^= 0x40
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = OpenLog(dir)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("mid-file corruption not rejected: err=%v", err)
	}
	if ce.Offset != wantOff {
		t.Errorf("corruption offset %d, want %d", ce.Offset, wantOff)
	}
	if !strings.Contains(ce.Error(), "checksum mismatch") {
		t.Errorf("error does not name the checksum: %v", ce)
	}
}

// TestWALHeaderCorruptionRejected mangles a mid-file frame header.
func TestWALHeaderCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	writeAll(t, dir, testRecords(4))
	path := filepath.Join(dir, LogName)
	data, _ := os.ReadFile(path)
	lines := strings.SplitAfter(string(data), "\n")
	off := len(lines[0])
	b := []byte(strings.Join(lines, ""))
	b[off] = 'z' // not hex
	os.WriteFile(path, b, 0o644)
	_, _, err := OpenLog(dir)
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Offset != int64(off) {
		t.Fatalf("header corruption not rejected with offset %d: %v", off, err)
	}
}

func TestWALSyncBatching(t *testing.T) {
	dir := t.TempDir()
	l, _, err := OpenLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	l.SyncEvery = 4
	for i := 0; i < 3; i++ {
		if err := l.Append(Record{Row: "r", Trial: i}); err != nil {
			t.Fatal(err)
		}
	}
	// Three appends, batch of four: nothing written yet.
	if fi, err := os.Stat(filepath.Join(dir, LogName)); err != nil || fi.Size() != 0 {
		t.Fatalf("appends flushed before the batch filled: size=%d err=%v", fi.Size(), err)
	}
	if err := l.Append(Record{Row: "r", Trial: 3}); err != nil {
		t.Fatal(err)
	}
	if fi, _ := os.Stat(filepath.Join(dir, LogName)); fi.Size() == 0 {
		t.Fatal("full batch did not flush")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, got, err := OpenLog(dir)
	if err != nil || len(got) != 4 {
		t.Fatalf("replay after batched writes: %d records, err=%v", len(got), err)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	spec, _ := json.Marshal(map[string]any{"Ns": []int{64, 128}})
	m := &Manifest{
		Schema: ManifestSchema, CreatedAt: "2026-08-08T00:00:00Z", GitSHA: "deadbeef",
		Seed: 42, Trials: 3, Cells: 4,
		Columns: []string{"a", "b"}, Spec: spec,
	}
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != 42 || got.Trials != 3 || got.Cells != 4 {
		t.Errorf("manifest did not round-trip: %+v", got)
	}
	// MarshalIndent re-indents the embedded RawMessage; compare compacted.
	var gotSpec bytes.Buffer
	if err := json.Compact(&gotSpec, got.Spec); err != nil || gotSpec.String() != string(spec) {
		t.Errorf("spec did not round-trip: %s err=%v", gotSpec.String(), err)
	}
	// Overwrite is atomic: the temp file must not linger.
	m.Seed = 43
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temp file left behind: %s", e.Name())
		}
	}
	got, _ = ReadManifest(dir)
	if got.Seed != 43 {
		t.Errorf("overwrite lost: seed=%d", got.Seed)
	}
}

func TestManifestSchemaChecked(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, ManifestName), []byte(`{"schema":"bogus/v9"}`), 0o644)
	if _, err := ReadManifest(dir); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong schema accepted: %v", err)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if c, err := ReadCheckpoint(dir); c != nil || err != nil {
		t.Fatalf("missing checkpoint should be (nil, nil): %v %v", c, err)
	}
	want := &Checkpoint{UpdatedAt: "now", Completed: 7, Quarantined: 1, Total: 20, Interrupted: true}
	if err := WriteCheckpoint(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(dir)
	if err != nil || *got != *want {
		t.Fatalf("checkpoint round trip: %+v err=%v", got, err)
	}
}
