package dynamic

import (
	"errors"
	"fmt"

	"byzcount/internal/sim"
	"byzcount/internal/xrand"
)

// Churn describes the per-round churn process: each round, Leaves random
// alive nodes depart and Joins new nodes arrive (after the round's
// messages have been delivered, matching the "topology changes between
// rounds" convention of the dynamic-network literature).
type Churn struct {
	Leaves int
	Joins  int
	// StopAfter, when positive, disables churn from that round on (so
	// runs can quiesce and protocols can terminate).
	StopAfter int
	// Mixed selects the well-mixed event randomness: the "leave" and
	// "join" streams are derived once and advance across events, so
	// departures hit uniformly random nodes and the membership really
	// turns over. The default (legacy) derivation restarts those
	// streams for every event — the behavior of the original churn
	// engine, which E15's published tables pin byte-for-byte — and is
	// degenerate under balanced churn: the restarted stream redraws the
	// same slot sequence while the LIFO free list hands back the slots
	// it just freed, so the same few nodes leave and rejoin round after
	// round. New workloads should set Mixed.
	Mixed bool
}

// ProcFactory builds the process for a newly joined (or initial) node.
type ProcFactory func(slot Slot, id sim.NodeID) sim.Proc

// Runner couples a Network to the unified round engine: the Network is
// the engine's Topology, and the churn process runs as the engine's
// between-rounds hook — Leave/Join repair the cycles, Detach/AttachAt
// retire and install processes on the recycled slots. There is no
// package-local round loop anymore: rounds execute on sim.Engine with
// everything that implies (deterministic sharded parallelism via
// SetParallelism, allocation-free steady state, CONGEST edge budgets,
// per-round traffic metrics).
//
// Determinism: all randomness is a pure function of seed. Initial IDs
// come from the engine's seed-derived ID stream, joiner IDs from the
// "joinids" sub-stream in join order, each departure re-derives the
// "leave" sub-stream and each arrival the "join" sub-stream (via
// xrand.SplitInto, so steady-state churn allocates nothing), and a slot
// recycled to a joiner resumes the slot's random stream where the
// departed node left it.
type Runner struct {
	net     *Network
	eng     *sim.Engine
	churn   Churn
	factory ProcFactory

	rng     *xrand.Rand
	joinIDs *xrand.Rand
	// leaveRng/joinRng drive the churn events: advancing streams under
	// Churn.Mixed, per-event reseeded scratch streams (xrand.SplitInto)
	// under the legacy derivation. Allocation-free either way.
	leaveRng, joinRng *xrand.Rand

	// onLeave, if non-nil, observes every departure (before the engine
	// detaches the slot) — the hook Byzantine rosters use to keep their
	// fraction accounting in step with the membership.
	onLeave func(slot Slot)

	joined, left int
}

// NewRunner builds the churn engine over net. factory is invoked for
// every initial node and every joiner.
func NewRunner(net *Network, churn Churn, seed uint64, factory ProcFactory) (*Runner, error) {
	if factory == nil {
		return nil, errors.New("dynamic: nil ProcFactory")
	}
	r := &Runner{
		net:     net,
		churn:   churn,
		factory: factory,
		rng:     xrand.New(seed),
		eng:     sim.New(net, sim.WithSeed(seed)),
	}
	r.joinIDs = r.rng.Split("joinids")
	r.leaveRng = r.rng.Split("leave")
	r.joinRng = r.rng.Split("join")
	procs := make([]sim.Proc, net.Slots())
	for s := range procs {
		if net.Alive(s) {
			procs[s] = factory(s, r.eng.ID(s))
		}
	}
	if err := r.eng.Attach(procs); err != nil {
		return nil, err
	}
	r.eng.SetBetweenRounds(r.apply)
	return r, nil
}

// Run executes up to maxRounds rounds on the unified engine, applying
// churn between rounds, and returns the number of rounds executed. The
// run ends early when every alive process has halted.
func (r *Runner) Run(maxRounds int) (int, error) { return r.eng.Run(maxRounds) }

// Engine exposes the underlying sim.Engine (e.g. for SetParallelism,
// SetEdgeCapacity, or SetStopCondition).
func (r *Runner) Engine() *sim.Engine { return r.eng }

// SetParallelism forwards to the engine; churn runs are bit-identical
// for every worker count, like every other workload.
func (r *Runner) SetParallelism(workers int) { r.eng.SetParallelism(workers) }

// SetDelayModel forwards to the engine: churn under virtual time means
// membership events still apply at tick boundaries while messages are
// in flight (a departure drops the slot's undelivered messages, exactly
// as the synchronous convention drops its next-round inbox).
func (r *Runner) SetDelayModel(m sim.DelayModel) { r.eng.SetDelayModel(m) }

// SetFaultModel forwards to the engine.
func (r *Runner) SetFaultModel(m sim.FaultModel) { r.eng.SetFaultModel(m) }

// Network returns the underlying topology.
func (r *Runner) Network() *Network { return r.net }

// SetLeaveHook registers a callback invoked for every departure, with
// the departing slot, before the engine detaches it. Arrivals need no
// counterpart: the ProcFactory already observes every join. Together
// they let scenario-level state (e.g. a byzantine.Roster maintaining an
// adversary fraction) follow the membership exactly.
func (r *Runner) SetLeaveHook(fn func(slot Slot)) { r.onLeave = fn }

// Metrics returns the engine's accumulated measurements.
func (r *Runner) Metrics() sim.Metrics { return r.eng.Metrics() }

// Proc returns the process at slot s (nil for dead slots).
func (r *Runner) Proc(s Slot) sim.Proc {
	if s < 0 || s >= r.eng.Slots() || !r.net.Alive(s) {
		return nil
	}
	return r.eng.Proc(s)
}

// AliveProcs returns the processes of currently alive slots, with their
// slots.
func (r *Runner) AliveProcs() (procs []sim.Proc, slots []Slot) {
	for s := 0; s < r.net.Slots(); s++ {
		if p := r.Proc(s); p != nil {
			procs = append(procs, p)
			slots = append(slots, s)
		}
	}
	return procs, slots
}

// Joined reports the number of arrivals so far.
func (r *Runner) Joined() int { return r.joined }

// Left reports the number of departures so far.
func (r *Runner) Left() int { return r.left }

// apply is the between-rounds hook: departures then arrivals. Under the
// legacy derivation the per-event streams are reseeded exactly as the
// engine this package used to carry derived them, so pre-unification
// runs reproduce byte-for-byte; under Churn.Mixed they simply advance.
func (r *Runner) apply(round int) error {
	if r.churn.StopAfter > 0 && round >= r.churn.StopAfter {
		return nil
	}
	for i := 0; i < r.churn.Leaves && r.net.NumAlive() > 3; i++ {
		if !r.churn.Mixed {
			r.leaveRng = r.rng.SplitInto("leave", r.leaveRng)
		}
		s := r.net.RandomAlive(r.leaveRng)
		if r.onLeave != nil {
			r.onLeave(s)
		}
		if err := r.net.Leave(s); err != nil {
			return fmt.Errorf("dynamic: leave: %w", err)
		}
		if err := r.eng.Detach(s); err != nil {
			return fmt.Errorf("dynamic: detach: %w", err)
		}
		r.left++
	}
	for i := 0; i < r.churn.Joins; i++ {
		if !r.churn.Mixed {
			r.joinRng = r.rng.SplitInto("join", r.joinRng)
		}
		s := r.net.Join(r.joinRng)
		id := sim.NodeID(r.joinIDs.ID())
		if err := r.eng.AttachAt(s, id, r.factory(s, id)); err != nil {
			return fmt.Errorf("dynamic: join: %w", err)
		}
		r.joined++
	}
	return nil
}
