// Package dynamic provides the churn-capable network substrate: an
// H(n,d) topology maintained as d/2 Hamiltonian cycles under node joins
// and leaves (the local O(1) repair of Law & Siu and the self-healing
// expanders of Pandurangan & Trehan, both cited in Section 2). The
// Network implements sim.Topology, so churn runs execute on the unified
// sim.Engine — with its deterministic parallelism, CONGEST budgeting,
// and allocation-free steady state — rather than on a package-local
// round loop; Runner wires the churn process in as the engine's
// between-rounds hook.
//
// The paper's motivation is dynamic peer-to-peer networks ([3,4,5]) whose
// protocols assume knowledge of log n even as nodes come and go; this
// package lets the reproduction measure how the counting protocol behaves
// when that churn actually happens.
package dynamic

import (
	"fmt"

	"byzcount/internal/sim"
	"byzcount/internal/xrand"
)

// Slot is a dense vertex index. Slots of departed nodes are recycled for
// joiners, so process arrays stay compact.
type Slot = int

// Network is an H(n,d)-style topology under churn: d/2 circular
// doubly-linked cycles over the alive slots. Every alive slot appears
// exactly once in every cycle, so the (multigraph) degree is exactly d.
// It implements sim.Topology: every Leave and Join bumps the epoch, and
// the engine re-resolves neighborhoods against it.
type Network struct {
	d      int
	succ   [][]Slot // succ[c][s]: successor of slot s in cycle c (-1 if dead)
	pred   [][]Slot
	alive  []bool
	free   []Slot
	nAlive int
	epoch  uint64
	// slotEpoch[s] is the epoch at which s's neighborhood last changed —
	// the per-slot dirty stamp behind sim.Topology.EpochOf, which keeps
	// the engine's refresh cost proportional to the churn rate, not n.
	slotEpoch []uint64
}

var _ sim.Topology = (*Network)(nil)

// NewNetwork builds an initial network of n nodes with degree d (even,
// >= 2; n >= 3) from the given random stream.
func NewNetwork(n, d int, rng *xrand.Rand) (*Network, error) {
	if n < 3 {
		return nil, fmt.Errorf("dynamic: need n >= 3, got %d", n)
	}
	if d < 2 || d%2 != 0 {
		return nil, fmt.Errorf("dynamic: need even d >= 2, got %d", d)
	}
	net := &Network{
		d:         d,
		succ:      make([][]Slot, d/2),
		pred:      make([][]Slot, d/2),
		alive:     make([]bool, n),
		nAlive:    n,
		slotEpoch: make([]uint64, n),
	}
	for i := range net.alive {
		net.alive[i] = true
	}
	for c := 0; c < d/2; c++ {
		net.succ[c] = make([]Slot, n)
		net.pred[c] = make([]Slot, n)
		perm := rng.SplitN("cycle", c).Perm(n)
		for i, s := range perm {
			next := perm[(i+1)%n]
			net.succ[c][s] = next
			net.pred[c][next] = s
		}
	}
	return net, nil
}

// Degree returns the constant degree d.
func (net *Network) Degree() int { return net.d }

// NumAlive returns the current number of alive nodes.
func (net *Network) NumAlive() int { return net.nAlive }

// Slots returns the capacity of the slot table (alive + recycled).
func (net *Network) Slots() int { return len(net.alive) }

// Alive reports whether slot s currently hosts a node.
func (net *Network) Alive(s Slot) bool { return s >= 0 && s < len(net.alive) && net.alive[s] }

// Epoch is bumped on every Leave and Join; the engine re-resolves
// neighborhoods exactly when it changes.
func (net *Network) Epoch() uint64 { return net.epoch }

// EpochOf reports the epoch at which slot s's neighborhood last changed
// (0 if never): the slot itself and, for every cycle, the slots whose
// links a Leave repair or Join splice rewired.
func (net *Network) EpochOf(s Slot) uint64 { return net.slotEpoch[s] }

// AppendNeighbors appends the neighbor multiset of s — its predecessor
// and successor in every cycle (2 * d/2 = d entries, possibly
// repeating) — to buf and returns the extended slice. Dead slots append
// nothing.
func (net *Network) AppendNeighbors(s Slot, buf []int) []int {
	if !net.Alive(s) {
		return buf
	}
	for c := range net.succ {
		buf = append(buf, net.pred[c][s], net.succ[c][s])
	}
	return buf
}

// Neighbors returns the neighbor multiset of s as a fresh slice (nil for
// dead slots); the engine uses the allocation-free AppendNeighbors.
func (net *Network) Neighbors(s Slot) []Slot {
	if !net.Alive(s) {
		return nil
	}
	return net.AppendNeighbors(s, make([]Slot, 0, net.d))
}

// Leave removes slot s: in every cycle its predecessor is stitched
// directly to its successor — the O(1) local repair. The slot is recycled
// for future joins. Removing below 3 alive nodes is rejected.
func (net *Network) Leave(s Slot) error {
	if !net.Alive(s) {
		return fmt.Errorf("dynamic: slot %d is not alive", s)
	}
	if net.nAlive <= 3 {
		return fmt.Errorf("dynamic: cannot shrink below 3 nodes")
	}
	net.epoch++
	for c := range net.succ {
		p, n := net.pred[c][s], net.succ[c][s]
		net.succ[c][p] = n
		net.pred[c][n] = p
		net.succ[c][s] = -1
		net.pred[c][s] = -1
		net.slotEpoch[p] = net.epoch
		net.slotEpoch[n] = net.epoch
	}
	net.slotEpoch[s] = net.epoch
	net.alive[s] = false
	net.free = append(net.free, s)
	net.nAlive--
	return nil
}

// Join inserts a new node and returns its slot: in every cycle it splices
// itself after an independently chosen random alive node — the join rule
// that keeps the topology distributed as a union of random cycles.
func (net *Network) Join(rng *xrand.Rand) Slot {
	var s Slot
	if len(net.free) > 0 {
		s = net.free[len(net.free)-1]
		net.free = net.free[:len(net.free)-1]
	} else {
		s = len(net.alive)
		net.alive = append(net.alive, false)
		net.slotEpoch = append(net.slotEpoch, 0)
		for c := range net.succ {
			net.succ[c] = append(net.succ[c], -1)
			net.pred[c] = append(net.pred[c], -1)
		}
	}
	net.epoch++
	for c := range net.succ {
		after := net.RandomAlive(rng)
		next := net.succ[c][after]
		net.succ[c][after] = s
		net.pred[c][s] = after
		net.succ[c][s] = next
		net.pred[c][next] = s
		net.slotEpoch[after] = net.epoch
		net.slotEpoch[next] = net.epoch
	}
	net.slotEpoch[s] = net.epoch
	net.alive[s] = true
	net.nAlive++
	return s
}

// RandomAlive returns a uniformly random alive slot.
func (net *Network) RandomAlive(rng *xrand.Rand) Slot {
	for {
		s := rng.Intn(len(net.alive))
		if net.alive[s] {
			return s
		}
	}
}

// Validate checks the cycle invariants: every alive slot appears exactly
// once per cycle, successor/predecessor pointers are mutually consistent,
// and each cycle is a single ring over all alive slots. Error messages
// name the offending slot together with its neighbor multiset, so a
// broken repair is debuggable from the message alone.
func (net *Network) Validate() error {
	for c := range net.succ {
		seen := 0
		var start Slot = -1
		for s, a := range net.alive {
			if a {
				start = s
				break
			}
		}
		if start == -1 {
			return fmt.Errorf("dynamic: no alive slots")
		}
		cur := start
		for {
			next := net.succ[c][cur]
			if next < 0 || next >= len(net.alive) || net.pred[c][next] != cur {
				return fmt.Errorf("dynamic: cycle %d has inconsistent links at slot %d (pred=%d succ=%d, neighbors %v)",
					c, cur, net.pred[c][cur], next, net.Neighbors(cur))
			}
			if !net.alive[next] {
				return fmt.Errorf("dynamic: cycle %d passes through dead slot %d (entered from slot %d, neighbors %v)",
					c, next, cur, net.Neighbors(cur))
			}
			seen++
			if seen > net.nAlive {
				return fmt.Errorf("dynamic: cycle %d longer than alive count %d (last slot %d, neighbors %v)",
					c, net.nAlive, cur, net.Neighbors(cur))
			}
			cur = next
			if cur == start {
				break
			}
		}
		if seen != net.nAlive {
			return fmt.Errorf("dynamic: cycle %d covers %d of %d alive slots (start slot %d, neighbors %v)",
				c, seen, net.nAlive, start, net.Neighbors(start))
		}
	}
	return nil
}
