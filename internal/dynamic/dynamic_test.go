package dynamic

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"byzcount/internal/counting"
	"byzcount/internal/sim"
	"byzcount/internal/xrand"
)

// idleProc is a minimal never-halting process for churn-mechanics tests
// that do not care about traffic.
type idleProc struct{}

func (idleProc) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing { return nil }
func (idleProc) Halted() bool                                                   { return false }

func mustNet(t *testing.T, n, d int, seed uint64) *Network {
	t.Helper()
	net, err := NewNetwork(n, d, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestNewNetworkInvariants(t *testing.T) {
	net := mustNet(t, 50, 8, 1)
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	if net.NumAlive() != 50 || net.Degree() != 8 {
		t.Errorf("alive=%d degree=%d", net.NumAlive(), net.Degree())
	}
	for s := 0; s < 50; s++ {
		if len(net.Neighbors(s)) != 8 {
			t.Fatalf("slot %d has %d neighbors", s, len(net.Neighbors(s)))
		}
	}
}

func TestNewNetworkErrors(t *testing.T) {
	rng := xrand.New(1)
	if _, err := NewNetwork(2, 4, rng); err == nil {
		t.Error("n=2 accepted")
	}
	if _, err := NewNetwork(10, 3, rng); err == nil {
		t.Error("odd d accepted")
	}
}

func TestLeaveRepairsCycles(t *testing.T) {
	net := mustNet(t, 20, 4, 2)
	if err := net.Leave(7); err != nil {
		t.Fatal(err)
	}
	if net.Alive(7) {
		t.Error("slot still alive")
	}
	if net.NumAlive() != 19 {
		t.Errorf("alive = %d", net.NumAlive())
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	// Nobody lists the departed slot as a neighbor.
	for s := 0; s < net.Slots(); s++ {
		if !net.Alive(s) {
			continue
		}
		for _, w := range net.Neighbors(s) {
			if w == 7 {
				t.Fatalf("slot %d still points at departed 7", s)
			}
		}
	}
}

func TestLeaveErrors(t *testing.T) {
	net := mustNet(t, 20, 4, 3)
	if err := net.Leave(7); err != nil {
		t.Fatal(err)
	}
	if err := net.Leave(7); err == nil {
		t.Error("double leave accepted")
	}
	// Shrink guard.
	small := mustNet(t, 4, 2, 4)
	if err := small.Leave(0); err != nil {
		t.Fatal(err)
	}
	if err := small.Leave(1); err == nil {
		t.Error("shrink below 3 accepted")
	}
}

func TestJoinRecyclesSlots(t *testing.T) {
	net := mustNet(t, 10, 4, 5)
	rng := xrand.New(6)
	if err := net.Leave(3); err != nil {
		t.Fatal(err)
	}
	s := net.Join(rng)
	if s != 3 {
		t.Errorf("join got slot %d, want recycled 3", s)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	// Joining with no free slots extends the table.
	s2 := net.Join(rng)
	if s2 != 10 {
		t.Errorf("fresh join got slot %d, want 10", s2)
	}
	if net.NumAlive() != 11 {
		t.Errorf("alive = %d", net.NumAlive())
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestChurnStormKeepsInvariants(t *testing.T) {
	// Property: any interleaving of joins and leaves preserves the cycle
	// invariants and d-regularity.
	f := func(ops []bool, seedRaw uint16) bool {
		rng := xrand.New(uint64(seedRaw))
		net, err := NewNetwork(12, 4, rng.Split("init"))
		if err != nil {
			return false
		}
		churn := rng.Split("churn")
		for _, isJoin := range ops {
			if isJoin {
				net.Join(churn)
			} else if net.NumAlive() > 3 {
				if err := net.Leave(net.RandomAlive(churn)); err != nil {
					return false
				}
			}
		}
		if net.Validate() != nil {
			return false
		}
		for s := 0; s < net.Slots(); s++ {
			if net.Alive(s) && len(net.Neighbors(s)) != 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func mustRunner(t *testing.T, net *Network, churn Churn, seed uint64, factory ProcFactory) *Runner {
	t.Helper()
	r, err := NewRunner(net, churn, seed, factory)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunnerZeroChurnMatchesStaticBehaviour(t *testing.T) {
	const n, d = 128, 8
	net := mustNet(t, n, d, 7)
	params := counting.DefaultCongestParams(d)
	eng := mustRunner(t, net, Churn{}, 8, func(slot Slot, id sim.NodeID) sim.Proc {
		return counting.NewCongestProc(params)
	})
	rounds, err := eng.Run(params.Schedule.RoundsThroughPhase(params.MaxPhase + 1))
	if err != nil {
		t.Fatal(err)
	}
	if rounds >= params.Schedule.RoundsThroughPhase(params.MaxPhase+1) {
		t.Error("zero-churn run did not terminate early")
	}
	procs, _ := eng.AliveProcs()
	decided, bounded := 0, 0
	for _, p := range procs {
		o := p.(*counting.CongestProc).Outcome()
		if o.Decided {
			decided++
			if o.Estimate >= 2 && o.Estimate <= 8 {
				bounded++
			}
		}
	}
	if decided != n {
		t.Fatalf("decided %d/%d", decided, n)
	}
	if bounded < n*9/10 {
		t.Errorf("bounded %d/%d", bounded, n)
	}
}

func TestRunnerUnderChurn(t *testing.T) {
	const n, d = 128, 8
	net := mustNet(t, n, d, 9)
	params := counting.DefaultCongestParams(d)
	params.MaxPhase = 8
	// One leave and one join per round for the first 120 rounds, then
	// quiesce: the size stays ~n while roughly the whole membership turns
	// over once.
	eng := mustRunner(t, net, Churn{Leaves: 1, Joins: 1, StopAfter: 120}, 10,
		func(slot Slot, id sim.NodeID) sim.Proc {
			return counting.NewCongestProc(params)
		})
	if _, err := eng.Run(params.Schedule.RoundsThroughPhase(params.MaxPhase + 1)); err != nil {
		t.Fatal(err)
	}
	if eng.Joined() == 0 || eng.Left() == 0 {
		t.Fatal("churn did not happen")
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	procs, _ := eng.AliveProcs()
	decided, bounded := 0, 0
	for _, p := range procs {
		o := p.(*counting.CongestProc).Outcome()
		if o.Decided {
			decided++
			if o.Estimate >= 2 && o.Estimate <= params.MaxPhase {
				bounded++
			}
		}
	}
	frac := float64(decided) / float64(len(procs))
	if frac < 0.9 {
		t.Errorf("decided fraction %g under churn", frac)
	}
	if float64(bounded) < 0.85*float64(len(procs)) {
		t.Errorf("bounded %d of %d alive under churn", bounded, len(procs))
	}
}

func TestRunnerNegativeRounds(t *testing.T) {
	net := mustNet(t, 10, 4, 11)
	eng := mustRunner(t, net, Churn{}, 12, func(slot Slot, id sim.NodeID) sim.Proc {
		return counting.NewCongestProc(counting.DefaultCongestParams(4))
	})
	if _, err := eng.Run(-1); err == nil {
		t.Error("negative rounds accepted")
	}
}

func TestRunnerMetricsAndAccessors(t *testing.T) {
	net := mustNet(t, 16, 4, 13)
	eng := mustRunner(t, net, Churn{}, 14, func(slot Slot, id sim.NodeID) sim.Proc {
		return counting.NewCongestProc(counting.DefaultCongestParams(4))
	})
	if eng.Network() != net {
		t.Error("Network accessor")
	}
	if eng.Engine() == nil || eng.Engine().Topology() != sim.Topology(net) {
		t.Error("Engine/Topology accessor")
	}
	if eng.Proc(0) == nil || eng.Proc(-1) != nil || eng.Proc(99) != nil {
		t.Error("Proc accessor")
	}
	if _, err := eng.Run(50); err != nil {
		t.Fatal(err)
	}
	if eng.Metrics().Messages == 0 {
		t.Error("no messages recorded")
	}
}

// TestRunnerParallelMatchesSerial: the same churn scenario must produce
// identical joined/left counts, metrics, and outcomes for every engine
// worker count — churn runs inherit the unified engine's determinism
// contract (the full transcript pin lives in internal/sim/churn_test.go).
func TestRunnerParallelMatchesSerial(t *testing.T) {
	const n, d = 96, 8
	params := counting.DefaultCongestParams(d)
	params.MaxPhase = 6
	run := func(workers int) (sim.Metrics, int, int, []counting.Outcome) {
		net := mustNet(t, n, d, 21)
		eng := mustRunner(t, net, Churn{Leaves: 2, Joins: 2, StopAfter: 60}, 22,
			func(slot Slot, id sim.NodeID) sim.Proc {
				return counting.NewCongestProc(params)
			})
		eng.SetParallelism(workers)
		if _, err := eng.Run(params.Schedule.RoundsThroughPhase(params.MaxPhase + 1)); err != nil {
			t.Fatal(err)
		}
		procs, _ := eng.AliveProcs()
		return eng.Metrics(), eng.Joined(), eng.Left(), counting.Outcomes(procs)
	}
	wantM, wantJ, wantL, wantO := run(1)
	if wantJ == 0 || wantL == 0 {
		t.Fatal("churn did not happen")
	}
	for _, w := range []int{3, 8} {
		gotM, gotJ, gotL, gotO := run(w)
		if gotJ != wantJ || gotL != wantL {
			t.Errorf("workers=%d: churn %d/%d != serial %d/%d", w, gotJ, gotL, wantJ, wantL)
		}
		if !reflect.DeepEqual(wantM, gotM) {
			t.Errorf("workers=%d: metrics diverge:\nserial:   %+v\nparallel: %+v", w, wantM, gotM)
		}
		if !reflect.DeepEqual(wantO, gotO) {
			t.Errorf("workers=%d: outcomes diverge", w)
		}
	}
}

// TestMixedChurnTurnsMembershipOver: under Churn.Mixed departures hit
// uniformly random nodes, so a long balanced run touches most of the
// slot table; the legacy derivation (pinned by E15's published tables)
// restarts the per-event streams and keeps recycling the same few
// slots. This pins both behaviors so neither regresses silently.
func TestMixedChurnTurnsMembershipOver(t *testing.T) {
	countDistinct := func(mixed bool) int {
		churn := Churn{Leaves: 2, Joins: 2, Mixed: mixed}
		net := mustNet(t, 64, 4, 17)
		joinSlots := map[Slot]int{}
		initial := true
		eng := mustRunner(t, net, churn, 18, func(slot Slot, id sim.NodeID) sim.Proc {
			if !initial {
				joinSlots[slot]++
			}
			return idleProc{}
		})
		initial = false
		if _, err := eng.Run(100); err != nil {
			t.Fatal(err)
		}
		if eng.Joined() != 200 {
			t.Fatalf("mixed=%v: joined %d, want 200", mixed, eng.Joined())
		}
		return len(joinSlots)
	}
	legacy := countDistinct(false)
	mixed := countDistinct(true)
	if legacy > 8 {
		t.Errorf("legacy churn touched %d distinct slots; the pinned degenerate behavior changed", legacy)
	}
	if mixed < 32 {
		t.Errorf("mixed churn touched only %d of 64 slots over 200 joins, want real turnover", mixed)
	}
}

// TestValidateErrorsNameNeighbors: a corrupted repair is reported with
// the offending slot's neighbor list in the message.
func TestValidateErrorsNameNeighbors(t *testing.T) {
	net := mustNet(t, 8, 4, 15)
	// Break cycle 0: point a successor somewhere its pred link disagrees.
	s := 0
	net.succ[0][s] = net.succ[0][net.succ[0][s]]
	err := net.Validate()
	if err == nil {
		t.Fatal("corrupted network validated")
	}
	if !strings.Contains(err.Error(), "neighbors [") {
		t.Errorf("error %q does not include the offending neighbor list", err)
	}
}
