package dynamic

import (
	"errors"
	"fmt"

	"byzcount/internal/sim"
	"byzcount/internal/xrand"
)

// Churn describes the per-round churn process: each round, Leaves random
// alive nodes depart and Joins new nodes arrive (after the round's
// messages have been delivered, matching the "topology changes between
// rounds" convention of the dynamic-network literature).
type Churn struct {
	Leaves int
	Joins  int
	// StopAfter, when positive, disables churn from that round on (so
	// runs can quiesce and protocols can terminate).
	StopAfter int
}

// ProcFactory builds the process for a newly joined (or initial) node.
type ProcFactory func(slot Slot, id sim.NodeID) sim.Proc

// Engine drives processes over a Network under churn. It mirrors
// sim.Engine's semantics — synchronous rounds, next-round delivery,
// engine-stamped sender IDs — but re-derives each node's neighborhood
// every round and applies the churn process between rounds.
type Engine struct {
	net   *Network
	churn Churn
	rng   *xrand.Rand

	procs []sim.Proc
	ids   []sim.NodeID
	envs  []sim.Env

	inbox   [][]sim.Incoming
	next    [][]sim.Incoming
	factory ProcFactory

	metrics sim.Metrics
	joined  int
	left    int
}

// NewEngine creates a churn engine over net. factory is invoked for every
// initial node and every joiner.
func NewEngine(net *Network, churn Churn, seed uint64, factory ProcFactory) *Engine {
	rng := xrand.New(seed)
	e := &Engine{
		net:     net,
		churn:   churn,
		rng:     rng,
		factory: factory,
	}
	idStream := rng.Split("ids")
	for s := 0; s < net.Slots(); s++ {
		e.grow(s)
		if net.Alive(s) {
			e.ids[s] = sim.NodeID(idStream.ID())
			e.procs[s] = factory(s, e.ids[s])
		}
	}
	return e
}

func (e *Engine) grow(s Slot) {
	for len(e.procs) <= s {
		e.procs = append(e.procs, nil)
		e.ids = append(e.ids, 0)
		e.envs = append(e.envs, sim.Env{})
		e.inbox = append(e.inbox, nil)
		e.next = append(e.next, nil)
	}
}

// Metrics returns the accumulated measurements.
func (e *Engine) Metrics() sim.Metrics { return e.metrics }

// Network returns the underlying topology.
func (e *Engine) Network() *Network { return e.net }

// Proc returns the process at slot s (nil for dead slots).
func (e *Engine) Proc(s Slot) sim.Proc {
	if s < 0 || s >= len(e.procs) || !e.net.Alive(s) {
		return nil
	}
	return e.procs[s]
}

// AliveProcs returns the processes of currently alive slots, with their
// slots.
func (e *Engine) AliveProcs() (procs []sim.Proc, slots []Slot) {
	for s := 0; s < e.net.Slots(); s++ {
		if e.net.Alive(s) && e.procs[s] != nil {
			procs = append(procs, e.procs[s])
			slots = append(slots, s)
		}
	}
	return procs, slots
}

// Joined and Left report the total churn applied so far.
func (e *Engine) Joined() int { return e.joined }

// Left reports the number of departures so far.
func (e *Engine) Left() int { return e.left }

// Run executes up to maxRounds rounds, applying churn between rounds, and
// returns the number of rounds executed. The run ends early when every
// alive process has halted.
func (e *Engine) Run(maxRounds int) (int, error) {
	if maxRounds < 0 {
		return 0, errors.New("dynamic: negative maxRounds")
	}
	idStream := e.rng.Split("joinids")
	for r := 0; r < maxRounds; r++ {
		allHalted := true
		for s := 0; s < e.net.Slots(); s++ {
			if !e.net.Alive(s) || e.procs[s] == nil {
				e.inbox[s] = e.inbox[s][:0]
				continue
			}
			p := e.procs[s]
			if p.Halted() {
				e.inbox[s] = e.inbox[s][:0]
				continue
			}
			allHalted = false
			env := e.refreshEnv(s)
			out := p.Step(env, r, e.inbox[s])
			e.inbox[s] = e.inbox[s][:0]
			nbrs := map[int]bool{}
			for _, w := range env.Neighbors {
				nbrs[w] = true
			}
			for _, msg := range out {
				if !nbrs[msg.To] {
					e.metrics.Violations++
					continue
				}
				bits := 0
				if msg.Payload != nil {
					bits = msg.Payload.SizeBits()
				}
				e.metrics.Messages++
				e.metrics.Bits += int64(bits)
				if bits > e.metrics.MaxMsgBits {
					e.metrics.MaxMsgBits = bits
				}
				e.next[msg.To] = append(e.next[msg.To], sim.Incoming{
					From:    s,
					FromID:  e.ids[s],
					Payload: msg.Payload,
				})
			}
		}
		e.metrics.Rounds++
		e.inbox, e.next = e.next, e.inbox
		// Drop messages addressed to nodes that depart this round — the
		// receiver is gone before delivery.
		if e.churn.StopAfter <= 0 || r < e.churn.StopAfter {
			if err := e.applyChurn(idStream); err != nil {
				return r + 1, err
			}
		}
		if allHalted {
			return r, nil
		}
	}
	return maxRounds, nil
}

func (e *Engine) applyChurn(idStream *xrand.Rand) error {
	for i := 0; i < e.churn.Leaves && e.net.NumAlive() > 3; i++ {
		s := e.net.RandomAliveSlot(e.rng.Split("leave"))
		if err := e.net.Leave(s); err != nil {
			return fmt.Errorf("dynamic: leave: %w", err)
		}
		e.procs[s] = nil
		e.inbox[s] = nil
		e.left++
	}
	for i := 0; i < e.churn.Joins; i++ {
		s := e.net.Join(e.rng.Split("join"))
		e.grow(s)
		e.ids[s] = sim.NodeID(idStream.ID())
		e.procs[s] = e.factory(s, e.ids[s])
		e.inbox[s] = nil
		e.joined++
	}
	return nil
}

// refreshEnv rebuilds slot s's environment against the current topology.
func (e *Engine) refreshEnv(s Slot) *sim.Env {
	nbrs := e.net.Neighbors(s)
	ids := make([]sim.NodeID, len(nbrs))
	for i, w := range nbrs {
		ids[i] = e.ids[w]
	}
	env := &e.envs[s]
	if env.Rand == nil {
		env.Rand = e.rng.SplitN("node", s)
	}
	env.Vertex = s
	env.ID = e.ids[s]
	env.Degree = len(nbrs)
	env.Neighbors = nbrs
	env.NeighborIDs = ids
	return env
}
