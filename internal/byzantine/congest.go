package byzantine

import (
	"byzcount/internal/counting"
	"byzcount/internal/sim"
	"byzcount/internal/xrand"
)

// This file implements the attacks against Algorithm 2 (the CONGEST
// counting protocol): beacon spam to inflate the estimate, silence to
// starve neighborhoods of beacons, path tampering to poison blacklists
// with honest IDs, and continue flooding to keep the network awake.

// BeaconSpammer fabricates a fresh beacon every iteration with a bogus
// origin and a fabricated path prefix, trying to convince good nodes that
// the network is larger than it is (the attack that the blacklisting of
// lines 20-32 is designed to stop: the spammer's true ID is appended by
// its honest neighbors, so it lands in the blacklistable prefix of every
// receiver beyond the trusted suffix).
type BeaconSpammer struct {
	Schedule counting.Schedule
	locator  counting.Locator
	// PrefixLen is the number of fabricated IDs prepended to each spam
	// beacon, mimicking an origin PrefixLen hops beyond the spammer.
	PrefixLen int
	// EveryRound, when set, spams every round of the beacon window rather
	// than once per iteration — crowding out honest beacons too.
	EveryRound bool
	rng        *xrand.Rand
}

var _ sim.Proc = (*BeaconSpammer)(nil)

// NewBeaconSpammer returns a spammer driven by the given schedule; the
// schedule must match the honest nodes' so spam lands inside beacon
// windows.
func NewBeaconSpammer(sched counting.Schedule, prefixLen int, everyRound bool, rng *xrand.Rand) *BeaconSpammer {
	return &BeaconSpammer{Schedule: sched, locator: counting.NewLocator(sched), PrefixLen: prefixLen, EveryRound: everyRound, rng: rng}
}

// Halted is always false: the adversary never stops.
func (b *BeaconSpammer) Halted() bool { return false }

// Step emits fabricated beacons at iteration starts (or every beacon-
// window round when EveryRound is set).
func (b *BeaconSpammer) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	b.locator.Bind(b.Schedule) // Schedule is an exported field; track rewrites
	loc := b.locator.Locate(round)
	inBeaconWindow := loc.Offset <= loc.Phase+1
	if !inBeaconWindow {
		return nil
	}
	if !b.EveryRound && loc.Offset != 0 {
		return nil
	}
	prefix := make([]sim.NodeID, b.PrefixLen)
	for i := range prefix {
		prefix[i] = sim.NodeID(b.rng.Uint64())
	}
	origin := sim.NodeID(b.rng.Uint64())
	return env.Broadcast(counting.Beacon{Origin: origin, Path: prefix})
}

// Silent drops everything and sends nothing: the starvation adversary.
// Honest nodes near a silent cluster receive fewer beacons and may decide
// early — the degradation Remark 1 shows is unavoidable for the o(n)
// nodes the adversary surrounds.
type Silent struct{}

var _ sim.Proc = Silent{}

// Step ignores all input and produces no output.
func (Silent) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing { return nil }

// Halted is always false; the node occupies its vertex forever.
func (Silent) Halted() bool { return false }

// PathTamperer forwards honest beacons but rewrites the path prefix to
// contain the IDs of innocent honest nodes (its frame targets), trying to
// get them blacklisted so that later honest beacons are rejected and good
// nodes decide early.
type PathTamperer struct {
	Schedule counting.Schedule
	// Frame is the pool of honest IDs to implant into path prefixes.
	Frame []sim.NodeID
	rng   *xrand.Rand
}

var _ sim.Proc = (*PathTamperer)(nil)

// NewPathTamperer returns a tamperer that frames the given IDs.
func NewPathTamperer(sched counting.Schedule, frame []sim.NodeID, rng *xrand.Rand) *PathTamperer {
	return &PathTamperer{Schedule: sched, Frame: frame, rng: rng}
}

// Halted is always false.
func (p *PathTamperer) Halted() bool { return false }

// Step rewrites and forwards one received beacon per round.
func (p *PathTamperer) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	loc := p.Schedule.Locate(round)
	if loc.Offset > loc.Phase+1 {
		return nil
	}
	for _, m := range in {
		if bc, ok := m.Payload.(counting.Beacon); ok {
			// Replace the prefix with framed IDs, keep length plausible.
			tampered := make([]sim.NodeID, 0, len(bc.Path)+2)
			k := len(bc.Path)
			if k == 0 {
				k = 1
			}
			for i := 0; i < k; i++ {
				if len(p.Frame) > 0 {
					tampered = append(tampered, p.Frame[p.rng.Intn(len(p.Frame))])
				}
			}
			return env.Broadcast(counting.Beacon{Origin: bc.Origin, Path: tampered})
		}
	}
	return nil
}

// ContinueFlooder broadcasts continue messages in every continue window,
// preventing decided honest nodes from ever exiting. It does not change
// what they decide — it burns rounds and messages, demonstrating that
// liveness of *termination* (not correctness) is what this attack
// touches.
type ContinueFlooder struct {
	Schedule counting.Schedule
}

var _ sim.Proc = ContinueFlooder{}

// Halted is always false.
func (ContinueFlooder) Halted() bool { return false }

// Step floods a continue at the start of every continue window.
func (c ContinueFlooder) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	loc := c.Schedule.Locate(round)
	if loc.Offset >= loc.Phase+2 && loc.Offset < 2*loc.Phase+4 {
		return env.Broadcast(counting.Continue{})
	}
	return nil
}
