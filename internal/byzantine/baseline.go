package byzantine

import (
	"byzcount/internal/counting"
	"byzcount/internal/sim"
)

// This file implements the one-node attacks that destroy the baseline
// protocols of Section 1.2, demonstrating why Byzantine counting needs
// the machinery of the paper's algorithms.

// GeoMaxFaker floods an absurd maximum through the geometric-distribution
// protocol. One such node suffices to push every honest estimate to
// FakeValue ("Byzantine nodes can fake the maximum value", Section 1.2).
type GeoMaxFaker struct {
	FakeValue int
	Period    int // broadcast every Period rounds (>=1)
}

var _ sim.Proc = (*GeoMaxFaker)(nil)

// Halted is always false.
func (g *GeoMaxFaker) Halted() bool { return false }

// Step periodically floods the fake maximum.
func (g *GeoMaxFaker) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	period := g.Period
	if period < 1 {
		period = 1
	}
	if round%period == 0 {
		return env.Broadcast(counting.GeoMax{Value: g.FakeValue})
	}
	return nil
}

// SupportMinFaker floods near-zero minima through the support-estimation
// protocol, driving the size estimate toward infinity.
type SupportMinFaker struct {
	K      int     // coordinate count, must match the honest protocol's k
	Value  float64 // the fake minimum (tiny positive)
	Period int
}

var _ sim.Proc = (*SupportMinFaker)(nil)

// Halted is always false.
func (s *SupportMinFaker) Halted() bool { return false }

// Step periodically floods fake minima.
func (s *SupportMinFaker) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	period := s.Period
	if period < 1 {
		period = 1
	}
	if round%period != 0 {
		return nil
	}
	mins := make([]float64, s.K)
	v := s.Value
	if v <= 0 {
		v = 1e-12
	}
	for i := range mins {
		mins[i] = v
	}
	return env.Broadcast(counting.SupportMin{Mins: mins})
}

// KMVPoisoner floods tiny hash values through the birthday-paradox (KMV)
// estimator, driving the size estimate toward 2^64.
type KMVPoisoner struct {
	K      int
	Period int
}

var _ sim.Proc = (*KMVPoisoner)(nil)

// Halted is always false.
func (p *KMVPoisoner) Halted() bool { return false }

// Step periodically floods a sketch of the K smallest possible hashes.
func (p *KMVPoisoner) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	period := p.Period
	if period < 1 {
		period = 1
	}
	if round%period != 0 {
		return nil
	}
	mins := make([]uint64, p.K)
	for i := range mins {
		mins[i] = uint64(i + 1)
	}
	return env.Broadcast(counting.KMVHash{Mins: mins})
}

// TreeCountInflater participates in the spanning-tree count but reports a
// wildly inflated subtree, corrupting the exact count — the reason the
// "just build a spanning tree" approach (Section 1.2) has no Byzantine
// tolerance whatsoever.
type TreeCountInflater struct {
	Inflation int

	joined    bool
	depth     int
	parent    sim.NodeID
	hasParent bool
	reported  bool
}

var _ sim.Proc = (*TreeCountInflater)(nil)

// Halted is always false.
func (t *TreeCountInflater) Halted() bool { return false }

// Step joins the BFS tree normally but convergecasts Inflation instead of
// a truthful subtree count.
func (t *TreeCountInflater) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	out := env.Scratch()
	for _, m := range in {
		switch msg := m.Payload.(type) {
		case counting.TreeJoin:
			if !t.joined {
				t.joined = true
				t.depth = msg.Depth + 1
				t.parent = m.FromID
				t.hasParent = true
				out = env.AppendBroadcast(out, counting.TreeJoin{Depth: t.depth})
				out = env.AppendBroadcast(out, counting.TreeParent{Parent: m.FromID})
			}
		case counting.TreeTotal:
			// Forward so the poisoned total still floods everywhere.
			out = env.AppendBroadcast(out, msg)
		}
	}
	if t.joined && t.hasParent && !t.reported {
		t.reported = true
		for k, id := range env.NeighborIDs {
			if id == t.parent {
				out = append(out, sim.Outgoing{
					To:      env.Neighbors[k],
					Payload: counting.TreeCount{Count: t.Inflation},
				})
				break
			}
		}
	}
	return out
}
