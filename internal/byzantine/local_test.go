package byzantine

import (
	"testing"

	"byzcount/internal/counting"
	"byzcount/internal/graph"
	"byzcount/internal/sim"
	"byzcount/internal/xrand"
)

func runLocal(t *testing.T, g *graph.Graph, byz []bool, params counting.LocalParams,
	mkByz func(v int) sim.Proc, seed uint64) []counting.Outcome {
	t.Helper()
	eng := sim.New(g, sim.WithSeed(seed))
	procs := make([]sim.Proc, g.N())
	for v := range procs {
		if byz[v] {
			procs[v] = mkByz(v)
		} else {
			procs[v] = counting.NewLocalProc(params)
		}
	}
	if err := eng.Attach(procs); err != nil {
		t.Fatal(err)
	}
	eng.SetStopCondition(func(round int) bool {
		for v, p := range procs {
			if byz[v] {
				continue
			}
			if e, ok := p.(counting.Estimator); ok && !e.Outcome().Decided {
				return false
			}
		}
		return true
	})
	if _, err := eng.Run(params.MaxRounds + 8); err != nil {
		t.Fatal(err)
	}
	return counting.Outcomes(procs)
}

func TestFakeWorldConstruction(t *testing.T) {
	rng := xrand.New(1)
	w, err := NewFakeWorld(64, 4, 8, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.adj) != 64 {
		t.Fatalf("fake world size %d", len(w.adj))
	}
	if len(w.roots) != 2 {
		t.Fatalf("roots = %d", len(w.roots))
	}
	// Attach two Byzantine IDs; each gets a root, idempotently.
	r1 := w.Attach(sim.NodeID(100))
	r2 := w.Attach(sim.NodeID(200))
	if r1 == r2 {
		t.Error("round-robin should use both roots")
	}
	if w.Attach(sim.NodeID(100)) != r1 {
		t.Error("Attach not idempotent")
	}
	// The root's seal must include the attached Byzantine ID.
	seal := w.SealOf(r1)
	found := false
	for _, x := range seal.Neighbors {
		if x == sim.NodeID(100) {
			found = true
		}
	}
	if !found {
		t.Error("root seal missing back-reference to Byzantine node")
	}
	// Layers start at the root and cover the world.
	layers := w.Layers(r1)
	total := 0
	for _, l := range layers {
		total += len(l)
	}
	if total != 64 {
		t.Errorf("layers cover %d of 64", total)
	}
	if len(layers[0]) != 1 || layers[0][0] != r1 {
		t.Error("layer 0 should be the root")
	}
}

func TestFakeWorldSealsAreConsistent(t *testing.T) {
	// Merging every fake seal into a View must produce no inconsistency:
	// the attack is locally undetectable by construction.
	rng := xrand.New(2)
	w, err := NewFakeWorld(128, 6, 10, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	w.Attach(sim.NodeID(42))
	view := counting.NewView(10)
	for x := range w.adj {
		if err := view.Merge(w.SealOf(x)); err != nil {
			t.Fatalf("fake seal for %d inconsistent: %v", x, err)
		}
	}
}

func meanHonestEstimate(outs []counting.Outcome, byz []bool) float64 {
	sum, cnt := 0.0, 0
	for v, o := range outs {
		if !byz[v] && o.Decided {
			sum += float64(o.Estimate)
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

func TestLocalFakeNetworkNarrowCutBounded(t *testing.T) {
	// The Lemma 5 phenomenon: a consistent fabricated expander attached
	// through a narrow cut (one edge per Byzantine node) CANNOT inflate
	// the estimates, because the layer growth through the cut pinches to
	// the cut width, far below alpha * |real ball|, and the expansion
	// check fires at the real graph's saturation point.
	const n, d, b, fakeN = 256, 8, 2, 1024
	g := testGraph(t, n, d, 30)
	rng := xrand.New(31)
	byz, err := RandomPlacement(g, b, rng.Split("place"))
	if err != nil {
		t.Fatal(err)
	}
	diam, err := g.Diameter()
	if err != nil {
		t.Fatal(err)
	}
	world, err := NewFakeWorld(fakeN, d, d+2, b, rng.Split("world"))
	if err != nil {
		t.Fatal(err)
	}
	params := counting.DefaultLocalParams(d + 2)
	outcomes := runLocal(t, g, byz, params, func(v int) sim.Proc {
		return NewFakeNetworkLocal(world, 1)
	}, 32)
	honest := HonestMask(byz)
	if frac := counting.DecidedFraction(outcomes, honest); frac < 0.99 {
		t.Fatalf("decided fraction %g", frac)
	}
	boundedFrac := counting.FractionWithinFactor(outcomes, honest, 1, float64(diam+3))
	if boundedFrac < 0.9 {
		t.Errorf("narrow-cut attack: only %g of honest nodes bounded by diam+3=%d", boundedFrac, diam+3)
	}
}

func TestLocalFakeNetworkWideCutSweepIsTheDefense(t *testing.T) {
	// A wide attachment cut (k extra edges per Byzantine node) defeats
	// the pinch that the ball-growth check relies on: layer growth
	// through the cut stays above alpha * |ball|. What still catches the
	// attack is the spectral sweep, because vertex expansion counts
	// VERTICES: the out-neighborhood of the honest set is exactly the B
	// Byzantine vertices no matter how many fake edges they claim —
	// Lemma 5's R-set argument. The ablation contrast (sweep off →
	// estimates inflate by about log(fakeN/cut)) measures exactly that.
	const n, d, fakeN = 128, 4, 8192
	const b, k = 8, 8 // edge cut width 64 > alpha*n = 25.6; vertex cut = 8
	g := testGraph(t, n, d, 33)
	rng := xrand.New(34)
	delta := d + k // degree bound with headroom for the attack edges

	byz, err := RandomPlacement(g, b, rng.Split("p1"))
	if err != nil {
		t.Fatal(err)
	}
	run := func(sweep bool, worldLabel string, seed uint64) []counting.Outcome {
		world, err := NewFakeWorld(fakeN, d, delta, b*k, rng.Split(worldLabel))
		if err != nil {
			t.Fatal(err)
		}
		params := counting.DefaultLocalParams(delta)
		params.EnableSweep = sweep
		return runLocal(t, g, byz, params, func(v int) sim.Proc {
			return NewFakeNetworkLocal(world, k)
		}, seed)
	}

	withSweep := run(true, "w1", 35)
	withoutSweep := run(false, "w2", 36)

	mSweep := meanHonestEstimate(withSweep, byz)
	mNoSweep := meanHonestEstimate(withoutSweep, byz)
	if mNoSweep <= mSweep+1 {
		t.Errorf("sweep ablation contrast too weak: with=%g without=%g", mSweep, mNoSweep)
	}
}

func TestLocalSplitBrainDetected(t *testing.T) {
	const n, d = 128, 6
	g := testGraph(t, n, d, 34)
	rng := xrand.New(35)
	byz, err := RandomPlacement(g, 1, rng.Split("place"))
	if err != nil {
		t.Fatal(err)
	}
	params := counting.DefaultLocalParams(d + 2)
	outcomes := runLocal(t, g, byz, params, func(v int) sim.Proc {
		return NewSplitBrainLocal(rng.SplitN("sb", v))
	}, 36)
	honest := HonestMask(byz)
	if frac := counting.DecidedFraction(outcomes, honest); frac < 0.99 {
		t.Fatalf("decided fraction %g under split-brain", frac)
	}
	// Equivocation is detected when the two versions meet: decisions land
	// at most a couple of rounds past each node's distance to the liar.
	var byzV int
	for v, b := range byz {
		if b {
			byzV = v
		}
	}
	dist := g.BFS(byzV)
	for v, o := range outcomes {
		if byz[v] {
			continue
		}
		if o.Estimate > dist[v]+3 {
			t.Errorf("vertex %d at distance %d decided %d", v, dist[v], o.Estimate)
		}
	}
}

func TestLocalDegreeLiarDetectedImmediately(t *testing.T) {
	const n, d = 128, 6
	g := testGraph(t, n, d, 37)
	rng := xrand.New(38)
	byz, err := RandomPlacement(g, 1, rng.Split("place"))
	if err != nil {
		t.Fatal(err)
	}
	params := counting.DefaultLocalParams(d) // Delta = d: any extra edge is a lie
	outcomes := runLocal(t, g, byz, params, func(v int) sim.Proc {
		return NewDegreeLiarLocal(3, rng.SplitN("liar", v))
	}, 39)
	var byzV int
	for v, b := range byz {
		if b {
			byzV = v
		}
	}
	dist := g.BFS(byzV)
	for v, o := range outcomes {
		if byz[v] || dist[v] != 1 {
			continue
		}
		if !o.Decided || o.Estimate != 1 {
			t.Errorf("liar's neighbor %d decided %+v", v, o)
		}
	}
}
