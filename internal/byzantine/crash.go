package byzantine

import "byzcount/internal/sim"

// Crash wraps any process and fail-stops it at a given round: the node
// behaves correctly until CrashRound, then goes permanently silent while
// still occupying its vertex. Crash faults are strictly weaker than
// Byzantine ones, so every guarantee of the paper's algorithms must hold
// under them a fortiori; the failure-injection tests use this to check
// that the implementations do not quietly depend on every correct node
// staying alive (e.g. for forwarding beacons or continues).
type Crash struct {
	Inner      sim.Proc
	CrashRound int

	crashed bool
}

var _ sim.Proc = (*Crash)(nil)

// NewCrash returns a process that runs inner until crashRound.
func NewCrash(inner sim.Proc, crashRound int) *Crash {
	return &Crash{Inner: inner, CrashRound: crashRound}
}

// Halted is false even after the crash: a crashed node is silent, not
// absent, so neighbors cannot distinguish it from a slow one — matching
// the fail-stop model.
func (c *Crash) Halted() bool { return false }

// Crashed reports whether the fail-stop has occurred.
func (c *Crash) Crashed() bool { return c.crashed }

// Step delegates to the inner process until the crash round.
func (c *Crash) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	if c.crashed || round >= c.CrashRound {
		c.crashed = true
		return nil
	}
	if c.Inner.Halted() {
		return nil
	}
	return c.Inner.Step(env, round, in)
}
