// Package byzantine provides the adversary side of the reproduction:
// placement strategies that decide WHERE the Byzantine nodes sit
// (Section 2's "arbitrarily (adversarially) placed"), and behaviour
// strategies that decide WHAT they do — beacon spam, path tampering,
// silence, topology fabrication, and the value-faking attacks that break
// the baseline protocols of Section 1.2.
//
// Every strategy is a sim.Proc; the engine stamps true sender IDs, so
// none of them can fake its identity over an edge, matching the model.
package byzantine

import (
	"fmt"

	"byzcount/internal/graph"
	"byzcount/internal/xrand"
)

// Placement selects which vertices are Byzantine. It returns a mask with
// exactly `count` true entries (or an error when count is infeasible).
type Placement func(g *graph.Graph, count int, rng *xrand.Rand) ([]bool, error)

// RandomPlacement scatters the Byzantine nodes uniformly — the weaker
// adversary assumed by the prior work of Chatterjee et al. [14].
func RandomPlacement(g *graph.Graph, count int, rng *xrand.Rand) ([]bool, error) {
	n := g.N()
	if count < 0 || count > n {
		return nil, fmt.Errorf("byzantine: cannot place %d nodes in %d vertices", count, n)
	}
	mask := make([]bool, n)
	for _, v := range rng.Sample(n, count) {
		mask[v] = true
	}
	return mask, nil
}

// ClusteredPlacement packs the Byzantine nodes into a BFS ball around a
// random center — the worst-case concentration of Remark 1, where the
// adversary surrounds a region and controls its termination.
func ClusteredPlacement(g *graph.Graph, count int, rng *xrand.Rand) ([]bool, error) {
	n := g.N()
	if count < 0 || count > n {
		return nil, fmt.Errorf("byzantine: cannot place %d nodes in %d vertices", count, n)
	}
	mask := make([]bool, n)
	if count == 0 {
		return mask, nil
	}
	center := rng.Intn(n)
	// Take the `count` closest vertices to the center in BFS order.
	ball := g.Ball(center, n)
	for i := 0; i < count && i < len(ball); i++ {
		mask[ball[i]] = true
	}
	return mask, nil
}

// SpreadPlacement greedily maximizes pairwise distance: each new
// Byzantine node is the vertex farthest from all previously chosen ones.
// This maximizes the fraction of honest nodes with a nearby Byzantine
// neighbor — the adversary that erodes the Good set of Lemma 1 fastest.
func SpreadPlacement(g *graph.Graph, count int, rng *xrand.Rand) ([]bool, error) {
	n := g.N()
	if count < 0 || count > n {
		return nil, fmt.Errorf("byzantine: cannot place %d nodes in %d vertices", count, n)
	}
	mask := make([]bool, n)
	if count == 0 {
		return mask, nil
	}
	first := rng.Intn(n)
	mask[first] = true
	minDist := g.BFS(first)
	for placed := 1; placed < count; placed++ {
		best, bestD := -1, -1
		for v := 0; v < n; v++ {
			if mask[v] || minDist[v] == graph.Unreachable {
				continue
			}
			if minDist[v] > bestD {
				best, bestD = v, minDist[v]
			}
		}
		if best == -1 {
			// Disconnected leftovers: place anywhere free.
			for v := 0; v < n && best == -1; v++ {
				if !mask[v] {
					best = v
				}
			}
		}
		mask[best] = true
		for v, d := range g.BFS(best) {
			if d != graph.Unreachable && (minDist[v] == graph.Unreachable || d < minDist[v]) {
				minDist[v] = d
			}
		}
	}
	return mask, nil
}

// FixedPlacement marks exactly the given vertices — used for the
// Theorem 3 dumbbell bridge and hand-crafted scenarios.
func FixedPlacement(vertices ...int) Placement {
	return func(g *graph.Graph, count int, rng *xrand.Rand) ([]bool, error) {
		if count != len(vertices) {
			return nil, fmt.Errorf("byzantine: FixedPlacement has %d vertices, asked for %d", len(vertices), count)
		}
		mask := make([]bool, g.N())
		for _, v := range vertices {
			if v < 0 || v >= g.N() {
				return nil, fmt.Errorf("byzantine: vertex %d out of range", v)
			}
			if mask[v] {
				return nil, fmt.Errorf("byzantine: vertex %d listed twice", v)
			}
			mask[v] = true
		}
		return mask, nil
	}
}

// Count returns the number of Byzantine vertices in a mask.
func Count(mask []bool) int {
	c := 0
	for _, b := range mask {
		if b {
			c++
		}
	}
	return c
}

// HonestMask returns the complement of a Byzantine mask.
func HonestMask(byz []bool) []bool {
	h := make([]bool, len(byz))
	for i, b := range byz {
		h[i] = !b
	}
	return h
}
