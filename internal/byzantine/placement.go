// Package byzantine provides the adversary side of the reproduction:
// placement strategies that decide WHERE the Byzantine nodes sit
// (Section 2's "arbitrarily (adversarially) placed"), and behaviour
// strategies that decide WHAT they do — beacon spam, path tampering,
// silence, topology fabrication, and the value-faking attacks that break
// the baseline protocols of Section 1.2.
//
// Every strategy is a sim.Proc; the engine stamps true sender IDs, so
// none of them can fake its identity over an edge, matching the model.
//
// Placements target the Substrate abstraction rather than a concrete
// graph, so the same adversary composes with static substrates
// (graph.Graph) and churning ones (dynamic.Network); under membership
// turnover a Roster re-evaluates the Byzantine fraction as joiners
// arrive.
package byzantine

import (
	"fmt"

	"byzcount/internal/xrand"
)

// Substrate is the placement-level view of a network: a dense slot
// space, an aliveness mask, and per-slot adjacency. Both *graph.Graph
// (every slot alive, forever) and *dynamic.Network (slots churn)
// satisfy it — the methods are the structural subset of sim.Topology
// that placements need, so any future topology the engine can run is
// automatically placeable too.
type Substrate interface {
	// Slots is the size of the vertex index space, alive or not.
	Slots() int
	// Alive reports whether slot v currently hosts a node.
	Alive(v int) bool
	// AppendNeighbors appends v's neighbor multiset to buf and returns
	// the extended slice (dead slots append nothing).
	AppendNeighbors(v int, buf []int) []int
}

// unreachable marks slots a substrate BFS never reached (dead slots
// included); it matches graph.Unreachable so distance semantics are
// interchangeable.
const unreachable = -1

// aliveCount returns the number of alive slots.
func aliveCount(s Substrate) int {
	n := 0
	for v := 0; v < s.Slots(); v++ {
		if s.Alive(v) {
			n++
		}
	}
	return n
}

// randomAliveSlot draws a uniformly random alive slot by rejection —
// the same draw sequence dynamic.Network.RandomAlive performs, and a
// single Intn on a fully alive (static) substrate.
func randomAliveSlot(s Substrate, rng *xrand.Rand) int {
	for {
		v := rng.Intn(s.Slots())
		if s.Alive(v) {
			return v
		}
	}
}

// substrateBFS returns the distance from src to every alive slot, with
// unreachable (-1) for dead slots and other components. Neighbors are
// expanded in adjacency order, so on a static graph the visit order is
// exactly graph.BFS's.
func substrateBFS(s Substrate, src int) []int {
	n := s.Slots()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = unreachable
	}
	dist[src] = 0
	queue := make([]int, 1, n)
	queue[0] = src
	var nbrs []int
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		nbrs = s.AppendNeighbors(u, nbrs[:0])
		for _, w := range nbrs {
			if dist[w] == unreachable {
				dist[w] = du + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// substrateBall returns every slot reachable from src in BFS order (src
// first) — the unbounded-radius counterpart of graph.Ball, with the
// identical visit order on static graphs.
func substrateBall(s Substrate, src int) []int {
	n := s.Slots()
	seen := make([]bool, n)
	seen[src] = true
	queue := make([]int, 1, n)
	queue[0] = src
	var nbrs []int
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		nbrs = s.AppendNeighbors(u, nbrs[:0])
		for _, w := range nbrs {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return queue
}

// Placement selects which slots are Byzantine. It returns a mask over
// the substrate's slot space with `count` true entries among the alive
// slots (or an error when count is infeasible; a clustered placement on
// a disconnected substrate may mark fewer).
type Placement func(s Substrate, count int, rng *xrand.Rand) ([]bool, error)

// checkCount validates a placement budget against the alive population
// and returns that population.
func checkCount(s Substrate, count int) (int, error) {
	n := aliveCount(s)
	if count < 0 || count > n {
		return 0, fmt.Errorf("byzantine: cannot place %d nodes in %d vertices", count, n)
	}
	return n, nil
}

// RandomPlacement scatters the Byzantine nodes uniformly over the alive
// slots — the weaker adversary assumed by the prior work of Chatterjee
// et al. [14].
func RandomPlacement(s Substrate, count int, rng *xrand.Rand) ([]bool, error) {
	n, err := checkCount(s, count)
	if err != nil {
		return nil, err
	}
	slots := s.Slots()
	mask := make([]bool, slots)
	if n == slots {
		// Fully alive (the static fast path): sample slot indices
		// directly — the exact draw sequence of the static-graph days,
		// which the published tables pin.
		for _, v := range rng.Sample(slots, count) {
			mask[v] = true
		}
		return mask, nil
	}
	alive := make([]int, 0, n)
	for v := 0; v < slots; v++ {
		if s.Alive(v) {
			alive = append(alive, v)
		}
	}
	for _, i := range rng.Sample(n, count) {
		mask[alive[i]] = true
	}
	return mask, nil
}

// ClusteredPlacement packs the Byzantine nodes into a BFS ball around a
// random alive center — the worst-case concentration of Remark 1, where
// the adversary surrounds a region and controls its termination.
func ClusteredPlacement(s Substrate, count int, rng *xrand.Rand) ([]bool, error) {
	if _, err := checkCount(s, count); err != nil {
		return nil, err
	}
	mask := make([]bool, s.Slots())
	if count == 0 {
		return mask, nil
	}
	center := randomAliveSlot(s, rng)
	// Take the `count` closest slots to the center in BFS order.
	ball := substrateBall(s, center)
	for i := 0; i < count && i < len(ball); i++ {
		mask[ball[i]] = true
	}
	return mask, nil
}

// SpreadPlacement greedily maximizes pairwise distance: each new
// Byzantine node is the alive slot farthest from all previously chosen
// ones. This maximizes the fraction of honest nodes with a nearby
// Byzantine neighbor — the adversary that erodes the Good set of
// Lemma 1 fastest.
func SpreadPlacement(s Substrate, count int, rng *xrand.Rand) ([]bool, error) {
	if _, err := checkCount(s, count); err != nil {
		return nil, err
	}
	slots := s.Slots()
	mask := make([]bool, slots)
	if count == 0 {
		return mask, nil
	}
	first := randomAliveSlot(s, rng)
	mask[first] = true
	minDist := substrateBFS(s, first)
	for placed := 1; placed < count; placed++ {
		best, bestD := -1, -1
		for v := 0; v < slots; v++ {
			if mask[v] || minDist[v] == unreachable {
				continue
			}
			if minDist[v] > bestD {
				best, bestD = v, minDist[v]
			}
		}
		if best == -1 {
			// Disconnected leftovers: place anywhere alive and free.
			for v := 0; v < slots && best == -1; v++ {
				if !mask[v] && s.Alive(v) {
					best = v
				}
			}
		}
		mask[best] = true
		for v, d := range substrateBFS(s, best) {
			if d != unreachable && (minDist[v] == unreachable || d < minDist[v]) {
				minDist[v] = d
			}
		}
	}
	return mask, nil
}

// FixedPlacement marks exactly the given slots — used for the Theorem 3
// dumbbell bridge and hand-crafted scenarios.
func FixedPlacement(vertices ...int) Placement {
	return func(s Substrate, count int, rng *xrand.Rand) ([]bool, error) {
		if count != len(vertices) {
			return nil, fmt.Errorf("byzantine: FixedPlacement has %d vertices, asked for %d", len(vertices), count)
		}
		mask := make([]bool, s.Slots())
		for _, v := range vertices {
			if v < 0 || v >= s.Slots() {
				return nil, fmt.Errorf("byzantine: vertex %d out of range", v)
			}
			if !s.Alive(v) {
				return nil, fmt.Errorf("byzantine: vertex %d is not alive", v)
			}
			if mask[v] {
				return nil, fmt.Errorf("byzantine: vertex %d listed twice", v)
			}
			mask[v] = true
		}
		return mask, nil
	}
}

// Count returns the number of Byzantine vertices in a mask.
func Count(mask []bool) int {
	c := 0
	for _, b := range mask {
		if b {
			c++
		}
	}
	return c
}

// HonestMask returns the complement of a Byzantine mask.
func HonestMask(byz []bool) []bool {
	h := make([]bool, len(byz))
	for i, b := range byz {
		h[i] = !b
	}
	return h
}
