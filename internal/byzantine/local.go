package byzantine

import (
	"sort"

	"byzcount/internal/counting"
	"byzcount/internal/graph"
	"byzcount/internal/sim"
	"byzcount/internal/xrand"
)

// This file implements the attacks against Algorithm 1 (the LOCAL
// deterministic algorithm): consistent fake-network injection (the
// Remark 1 scenario), equivocation (split-brain seals), degree lies, and
// muteness. The fake-network attack is the interesting one — it is
// locally undetectable and can only be caught by the expansion checks.

// FakeWorld is a fabricated network region shared by all Byzantine nodes
// so that their lies are mutually consistent. It holds a random regular
// graph over fresh random IDs, BFS layers from each attachment point, and
// the mapping from Byzantine node IDs to their attachment ("root") fake
// node.
type FakeWorld struct {
	maxDegree int
	adj       map[sim.NodeID][]sim.NodeID
	roots     []sim.NodeID
	nextRoot  int
	attached  map[sim.NodeID]sim.NodeID   // byz ID -> root fake ID
	backRefs  map[sim.NodeID][]sim.NodeID // root fake ID -> attached byz IDs
}

// NewFakeWorld fabricates a consistent fake region of `size` nodes with
// internal degree fakeDegree, leaving room for attachments under the
// global degree bound maxDegree. roots is the number of distinct
// attachment points (Byzantine nodes round-robin over them).
func NewFakeWorld(size, fakeDegree, maxDegree, roots int, rng *xrand.Rand) (*FakeWorld, error) {
	g, err := graph.HND(size, fakeDegree, rng.Split("fakegraph"))
	if err != nil {
		return nil, err
	}
	idStream := rng.Split("fakeids")
	ids := make([]sim.NodeID, size)
	seen := make(map[sim.NodeID]bool, size)
	for i := range ids {
		id := sim.NodeID(idStream.ID())
		for seen[id] {
			id = sim.NodeID(idStream.ID())
		}
		seen[id] = true
		ids[i] = id
	}
	w := &FakeWorld{
		maxDegree: maxDegree,
		adj:       make(map[sim.NodeID][]sim.NodeID, size),
		attached:  make(map[sim.NodeID]sim.NodeID),
		backRefs:  make(map[sim.NodeID][]sim.NodeID),
	}
	for v := 0; v < size; v++ {
		// Deduplicate parallel edges (seals must be simple) straight off
		// the shared CSR row — no per-vertex Neighbors copy.
		var nbrs []sim.NodeID
		for _, u := range g.Adj(v) {
			id := ids[u]
			dup := false
			for _, seen := range nbrs {
				if seen == id {
					dup = true
					break
				}
			}
			if !dup {
				nbrs = append(nbrs, id)
			}
		}
		w.adj[ids[v]] = nbrs
	}
	if roots < 1 {
		roots = 1
	}
	if roots > size {
		roots = size
	}
	// Cluster the attachment points in one BFS ball: a smart adversary
	// wants the fabricated region to unfold to its full depth, so it
	// exposes a compact boundary rather than scattering entry points that
	// would make the whole region a few hops shallow.
	center := rng.Split("roots").Intn(size)
	ball := g.Ball(center, size)
	for i := 0; i < roots; i++ {
		w.roots = append(w.roots, ids[ball[i]])
	}
	return w, nil
}

// Attach registers a Byzantine node and returns the fake node it claims
// an edge to. Attachment is deterministic (round-robin) and idempotent.
func (w *FakeWorld) Attach(byzID sim.NodeID) sim.NodeID {
	if root, ok := w.attached[byzID]; ok {
		return root
	}
	root := w.roots[w.nextRoot%len(w.roots)]
	w.nextRoot++
	w.attached[byzID] = root
	w.backRefs[root] = append(w.backRefs[root], byzID)
	return root
}

// AttachK registers a Byzantine node with k distinct attachment edges and
// returns the fake endpoints. Widening the cut is how an adversary with
// degree headroom (Delta - d extra edges per node) scales the attack: the
// expansion checks only fail to detect the fabricated region once the
// total cut width B*k rivals the expansion budget alpha*n — precisely the
// tolerance boundary of Theorem 1.
func (w *FakeWorld) AttachK(byzID sim.NodeID, k int) []sim.NodeID {
	if k < 1 {
		k = 1
	}
	if k > len(w.roots) {
		k = len(w.roots)
	}
	if root, ok := w.attached[byzID]; ok {
		// Idempotent: return this node's existing attachments.
		out := []sim.NodeID{root}
		for _, r := range w.roots {
			for _, b := range w.backRefs[r] {
				if b == byzID && r != root {
					out = append(out, r)
				}
			}
		}
		return out
	}
	seen := make(map[sim.NodeID]bool, k)
	out := make([]sim.NodeID, 0, k)
	for len(out) < k {
		root := w.roots[w.nextRoot%len(w.roots)]
		w.nextRoot++
		if seen[root] {
			continue
		}
		seen[root] = true
		out = append(out, root)
		w.backRefs[root] = append(w.backRefs[root], byzID)
	}
	w.attached[byzID] = out[0]
	return out
}

// SealOf returns the fabricated seal record for fake node x: its fake
// neighbors plus any Byzantine nodes attached to it, sorted for
// determinism.
func (w *FakeWorld) SealOf(x sim.NodeID) counting.SealRecord {
	nbrs := append([]sim.NodeID(nil), w.adj[x]...)
	nbrs = append(nbrs, w.backRefs[x]...)
	sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
	return counting.SealRecord{Node: x, Neighbors: nbrs}
}

// Layers returns the BFS layers of the fake world starting from root;
// layer k is broadcast by the attached Byzantine node at round k+1 to
// mimic the arrival timing of a genuine flood.
func (w *FakeWorld) Layers(root sim.NodeID) [][]sim.NodeID {
	return w.LayersMulti([]sim.NodeID{root})
}

// LayersMulti is Layers from multiple simultaneous sources.
func (w *FakeWorld) LayersMulti(roots []sim.NodeID) [][]sim.NodeID {
	dist := make(map[sim.NodeID]int, len(w.adj))
	queue := make([]sim.NodeID, 0, len(w.adj))
	layers := [][]sim.NodeID{nil}
	for _, root := range roots {
		if _, ok := dist[root]; !ok {
			dist[root] = 0
			queue = append(queue, root)
			layers[0] = append(layers[0], root)
		}
	}
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		for _, y := range w.adj[x] {
			if _, ok := dist[y]; !ok {
				d := dist[x] + 1
				dist[y] = d
				queue = append(queue, y)
				for len(layers) <= d {
					layers = append(layers, nil)
				}
				layers[d] = append(layers[d], y)
			}
		}
	}
	return layers
}

// FakeNetworkLocal is the Remark 1 adversary for Algorithm 1: it behaves
// like a perfectly consistent honest node whose seal includes one extra
// edge into a large fabricated expander, and it floods the fabricated
// region's seals with genuine-looking timing. No inconsistency or degree
// check can fire (provided the degree bound Delta exceeds the real
// degree); only the expansion machinery can stop it.
type FakeNetworkLocal struct {
	world  *FakeWorld
	edges  int // attachment edges claimed into the fake region
	roots  []sim.NodeID
	layers [][]sim.NodeID
}

var _ sim.Proc = (*FakeNetworkLocal)(nil)
var _ sim.Sequential = (*FakeNetworkLocal)(nil)

// StepsSequentially marks this adversary for the engine's sequential
// pass: all attached nodes mutate one shared FakeWorld, and the
// round-robin attachment order is part of the deterministic execution.
func (f *FakeNetworkLocal) StepsSequentially() {}

// NewFakeNetworkLocal returns a fake-network adversary bound to the
// shared world, claiming `edges` attachment edges (clamped to >= 1).
func NewFakeNetworkLocal(world *FakeWorld, edges int) *FakeNetworkLocal {
	if edges < 1 {
		edges = 1
	}
	return &FakeNetworkLocal{world: world, edges: edges}
}

// Halted is always false.
func (f *FakeNetworkLocal) Halted() bool { return false }

// Step broadcasts the node's own (padded) seal at round 0 and one fake
// BFS layer per subsequent round.
func (f *FakeNetworkLocal) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	if round == 0 {
		f.roots = f.world.AttachK(env.ID, f.edges)
		f.layers = f.world.LayersMulti(f.roots)
		uniq := make(map[sim.NodeID]bool, len(env.NeighborIDs))
		nbrs := make([]sim.NodeID, 0, len(env.NeighborIDs)+len(f.roots))
		for _, id := range env.NeighborIDs {
			if !uniq[id] {
				uniq[id] = true
				nbrs = append(nbrs, id)
			}
		}
		nbrs = append(nbrs, f.roots...)
		return env.Broadcast(counting.LocalDelta{
			Seals: []counting.SealRecord{{Node: env.ID, Neighbors: nbrs}},
		})
	}
	layerIdx := round - 1
	if layerIdx >= len(f.layers) {
		// Fake region exhausted; keep heartbeating to avoid mute checks.
		return env.Broadcast(counting.LocalDelta{})
	}
	seals := make([]counting.SealRecord, 0, len(f.layers[layerIdx]))
	for _, x := range f.layers[layerIdx] {
		seals = append(seals, f.world.SealOf(x))
	}
	return env.Broadcast(counting.LocalDelta{Seals: seals})
}

// SplitBrainLocal equivocates: it partitions its neighbors into two
// groups and seals itself differently toward each (each version padded
// with a different fabricated extra neighbor). Honest forwarding brings
// the two versions together within a couple of rounds and the reseal
// check of View.Merge fires — the detection path of line 18.
type SplitBrainLocal struct {
	rng *xrand.Rand
}

var _ sim.Proc = (*SplitBrainLocal)(nil)

// NewSplitBrainLocal returns an equivocating adversary.
func NewSplitBrainLocal(rng *xrand.Rand) *SplitBrainLocal {
	return &SplitBrainLocal{rng: rng}
}

// Halted is always false.
func (s *SplitBrainLocal) Halted() bool { return false }

// Step sends version A of its seal to even-indexed neighbors and version
// B to odd-indexed ones, then heartbeats.
func (s *SplitBrainLocal) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	if round > 0 {
		return env.Broadcast(counting.LocalDelta{})
	}
	uniq := make(map[sim.NodeID]bool, len(env.NeighborIDs))
	base := make([]sim.NodeID, 0, len(env.NeighborIDs)+1)
	for _, id := range env.NeighborIDs {
		if !uniq[id] {
			uniq[id] = true
			base = append(base, id)
		}
	}
	sealA := counting.SealRecord{Node: env.ID, Neighbors: append(append([]sim.NodeID(nil), base...), sim.NodeID(s.rng.Uint64()))}
	sealB := counting.SealRecord{Node: env.ID, Neighbors: append(append([]sim.NodeID(nil), base...), sim.NodeID(s.rng.Uint64()))}
	out := env.Scratch()
	for k, w := range env.Neighbors {
		seal := sealA
		if k%2 == 1 {
			seal = sealB
		}
		out = append(out, sim.Outgoing{To: w, Payload: counting.LocalDelta{Seals: []counting.SealRecord{seal}}})
	}
	return out
}

// DegreeLiarLocal claims more neighbors than the degree bound allows —
// the crudest fabrication, detected instantly by line 17.
type DegreeLiarLocal struct {
	Extra int
	rng   *xrand.Rand
	sent  bool
}

var _ sim.Proc = (*DegreeLiarLocal)(nil)

// NewDegreeLiarLocal returns a liar that pads its seal with extra
// fabricated neighbors.
func NewDegreeLiarLocal(extra int, rng *xrand.Rand) *DegreeLiarLocal {
	return &DegreeLiarLocal{Extra: extra, rng: rng}
}

// Halted is always false.
func (d *DegreeLiarLocal) Halted() bool { return false }

// Step broadcasts the inflated seal once, then heartbeats.
func (d *DegreeLiarLocal) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	if d.sent {
		return env.Broadcast(counting.LocalDelta{})
	}
	d.sent = true
	nbrs := append([]sim.NodeID(nil), env.NeighborIDs...)
	for i := 0; i < d.Extra; i++ {
		nbrs = append(nbrs, sim.NodeID(d.rng.Uint64()))
	}
	return env.Broadcast(counting.LocalDelta{
		Seals: []counting.SealRecord{{Node: env.ID, Neighbors: nbrs}},
	})
}
