package byzantine

import (
	"testing"

	"byzcount/internal/counting"
	"byzcount/internal/sim"
	"byzcount/internal/xrand"
)

type echoProc struct{ steps int }

func (e *echoProc) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	e.steps++
	return env.Broadcast(counting.Continue{})
}
func (e *echoProc) Halted() bool { return false }

func TestCrashStopsInner(t *testing.T) {
	inner := &echoProc{}
	c := NewCrash(inner, 3)
	env := (&sim.Env{Neighbors: []int{1}}).WithRand(xrand.New(1))
	for r := 0; r < 10; r++ {
		out := c.Step(env, r, nil)
		if r < 3 && len(out) == 0 {
			t.Fatalf("round %d: crashed too early", r)
		}
		if r >= 3 && len(out) != 0 {
			t.Fatalf("round %d: output after crash", r)
		}
	}
	if inner.steps != 3 {
		t.Errorf("inner stepped %d times, want 3", inner.steps)
	}
	if !c.Crashed() {
		t.Error("Crashed() false after crash")
	}
	if c.Halted() {
		t.Error("a crashed node must not report Halted (it is silent, not absent)")
	}
}

func TestCongestSurvivesCrashFaults(t *testing.T) {
	// 10% of nodes fail-stop at random rounds during the run: the
	// remaining correct nodes must still decide bounded estimates (crash
	// faults are weaker than Byzantine faults).
	const n, d = 128, 8
	g := testGraph(t, n, d, 50)
	rng := xrand.New(51)
	crashing, err := RandomPlacement(g, n/10, rng.Split("place"))
	if err != nil {
		t.Fatal(err)
	}
	params := counting.DefaultCongestParams(d)
	params.MaxPhase = 10
	outcomes, _ := runCongest(t, g, crashing, params, func(v int) sim.Proc {
		return NewCrash(counting.NewCongestProc(params), 20+rng.SplitN("when", v).Intn(200))
	}, 52)
	correct := HonestMask(crashing)
	if frac := counting.DecidedFraction(outcomes, correct); frac < 0.99 {
		t.Fatalf("decided fraction %g under crash faults", frac)
	}
	sane := counting.FractionWithinFactor(outcomes, correct, 2, 8)
	if sane < 0.9 {
		t.Errorf("crash faults corrupted estimates: sane fraction %g", sane)
	}
}

func TestLocalCrashActsLikeMute(t *testing.T) {
	// In the LOCAL algorithm a crashed node is indistinguishable from a
	// mute Byzantine node: decisions cascade at distance rate, bounded by
	// the benign decision time — the Theorem 1 shape again.
	const n, d = 128, 8
	g := testGraph(t, n, d, 53)
	rng := xrand.New(54)
	crashing, err := RandomPlacement(g, 1, rng.Split("place"))
	if err != nil {
		t.Fatal(err)
	}
	params := counting.DefaultLocalParams(d)
	outcomes := runLocal(t, g, crashing, params, func(v int) sim.Proc {
		return NewCrash(counting.NewLocalProc(params), 2)
	}, 55)
	correct := HonestMask(crashing)
	if frac := counting.DecidedFraction(outcomes, correct); frac < 0.99 {
		t.Fatalf("decided fraction %g", frac)
	}
	var crashV int
	for v, b := range crashing {
		if b {
			crashV = v
		}
	}
	dist := g.BFS(crashV)
	for v, o := range outcomes {
		if crashing[v] || !o.Decided {
			continue
		}
		// Crash at round 2: node at distance k sees the silence at round
		// ~2+k, and the benign saturation check ends everything by ~diam+2.
		if o.Estimate > dist[v]+4 {
			t.Errorf("vertex %d at distance %d decided %d", v, dist[v], o.Estimate)
		}
	}
}
