package byzantine_test

// Roster tests live in an external test package because they drive the
// roster with a real dynamic.Runner (the dynamic package must not
// become an import of byzantine proper).

import (
	"math"
	"testing"

	"byzcount/internal/byzantine"
	"byzcount/internal/dynamic"
	"byzcount/internal/sim"
	"byzcount/internal/xrand"
)

func TestRosterValidation(t *testing.T) {
	if _, err := byzantine.NewRoster(make([]bool, 8), 8, 1.5, xrand.New(1)); err == nil {
		t.Error("target > 1 accepted")
	}
	if _, err := byzantine.NewRoster(make([]bool, 8), 8, -0.1, xrand.New(1)); err == nil {
		t.Error("negative target accepted")
	}
	if _, err := byzantine.NewRoster(make([]bool, 8), 8, 0.5, nil); err == nil {
		t.Error("nil stream accepted")
	}
}

func TestRosterBookkeeping(t *testing.T) {
	initial := []bool{true, false, true, false}
	r, err := byzantine.NewRoster(initial, 4, 0.5, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if r.Count() != 2 || r.Alive() != 4 || r.Fraction() != 0.5 {
		t.Fatalf("initial state: count=%d alive=%d frac=%v", r.Count(), r.Alive(), r.Fraction())
	}
	if !r.IsByz(0) || r.IsByz(1) {
		t.Error("initial mask not honored")
	}
	r.OnLeave(0)
	if r.Count() != 1 || r.Alive() != 3 {
		t.Errorf("after byz leave: count=%d alive=%d", r.Count(), r.Alive())
	}
	r.OnLeave(1)
	if r.Count() != 1 || r.Alive() != 2 {
		t.Errorf("after honest leave: count=%d alive=%d", r.Count(), r.Alive())
	}
	// Record never consumes the stream and grows the slot space on
	// demand.
	r.Record(9, true)
	if !r.IsByz(9) || r.Count() != 2 || r.Alive() != 3 {
		t.Errorf("after Record: byz(9)=%v count=%d alive=%d", r.IsByz(9), r.Count(), r.Alive())
	}
}

// TestRosterMaintainsFraction is the satellite guard: across 500 rounds
// of real membership turnover (2 leaves + 2 joins per round, Mixed
// randomness, so the membership genuinely rotates) the roster's
// drift-free joiner rule keeps the realized Byzantine fraction pinned
// to the target, every round, within a small band.
func TestRosterMaintainsFraction(t *testing.T) {
	const (
		n      = 128
		d      = 8
		target = 0.25
	)
	rng := xrand.New(7001)
	net, err := dynamic.NewNetwork(n, d, rng.Split("net"))
	if err != nil {
		t.Fatal(err)
	}
	mask, err := byzantine.RandomPlacement(net, int(target*n), rng.Split("place"))
	if err != nil {
		t.Fatal(err)
	}
	roster, err := byzantine.NewRoster(mask, net.NumAlive(), target, rng.Split("roster"))
	if err != nil {
		t.Fatal(err)
	}
	initial := true
	run, err := dynamic.NewRunner(net, dynamic.Churn{Leaves: 2, Joins: 2, Mixed: true}, 7002,
		func(slot dynamic.Slot, id sim.NodeID) sim.Proc {
			if !initial {
				roster.OnJoin(slot)
			}
			return byzantine.Silent{}
		})
	if err != nil {
		t.Fatal(err)
	}
	initial = false
	run.SetLeaveHook(roster.OnLeave)

	maxDev := 0.0
	rounds := 0
	run.Engine().SetStopCondition(func(round int) bool {
		rounds++
		if dev := math.Abs(roster.Fraction() - target); dev > maxDev {
			maxDev = dev
		}
		// The roster's view of the population must track the substrate's
		// exactly — a drifting Alive() count would silently skew the
		// maintained fraction.
		if roster.Alive() != net.NumAlive() {
			t.Fatalf("round %d: roster tracks %d alive, network has %d", round, roster.Alive(), net.NumAlive())
		}
		count := 0
		for s := 0; s < net.Slots(); s++ {
			if net.Alive(s) && roster.IsByz(s) {
				count++
			}
		}
		if count != roster.Count() {
			t.Fatalf("round %d: roster counts %d Byzantine, mask holds %d", round, roster.Count(), count)
		}
		return false
	})
	if _, err := run.Run(500); err != nil {
		t.Fatal(err)
	}
	if rounds != 500 {
		t.Fatalf("ran %d rounds, want 500", rounds)
	}
	if run.Joined() < 900 {
		t.Fatalf("only %d joins in 500 rounds; turnover is degenerate", run.Joined())
	}
	// Departures hit the fraction hypergeometrically and every join
	// re-centers its expectation on the target; over 500 rounds the
	// realized fraction must stay within a few members of it.
	if tol := 6.0 / n; maxDev > tol {
		t.Errorf("Byzantine fraction drifted %.4f from target %.2f (tolerance %.4f)", maxDev, target, tol)
	}
	if end := math.Abs(roster.Fraction() - target); end > 4.0/n {
		t.Errorf("final fraction %.4f is %.4f off target", roster.Fraction(), end)
	}
}
