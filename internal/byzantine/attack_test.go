package byzantine

import (
	"testing"

	"byzcount/internal/counting"
	"byzcount/internal/graph"
	"byzcount/internal/sim"
	"byzcount/internal/xrand"
)

// runCongest wires honest CongestProcs and the given adversary factory
// onto a graph and runs to completion.
func runCongest(t *testing.T, g *graph.Graph, byz []bool, params counting.CongestParams,
	mkByz func(v int) sim.Proc, seed uint64) ([]counting.Outcome, []sim.Proc) {
	t.Helper()
	eng := sim.New(g, sim.WithSeed(seed))
	procs := make([]sim.Proc, g.N())
	for v := range procs {
		if byz[v] {
			procs[v] = mkByz(v)
		} else {
			procs[v] = NewCongestProc(params)
		}
	}
	if err := eng.Attach(procs); err != nil {
		t.Fatal(err)
	}
	// Stop once every honest node has decided AND the schedule passed the
	// max phase (so adversarial stalling cannot hang the test).
	eng.SetStopCondition(func(round int) bool {
		for v, p := range procs {
			if byz[v] {
				continue
			}
			if e, ok := p.(counting.Estimator); ok && !e.Outcome().Decided {
				return false
			}
		}
		return true
	})
	maxRounds := params.Schedule.RoundsThroughPhase(params.MaxPhase + 1)
	if _, err := eng.Run(maxRounds); err != nil {
		t.Fatal(err)
	}
	return counting.Outcomes(procs), procs
}

// NewCongestProc is a tiny local alias to keep call sites short.
func NewCongestProc(p counting.CongestParams) sim.Proc { return counting.NewCongestProc(p) }

func TestCongestBeaconSpamBlacklistBounds(t *testing.T) {
	const n, d, b = 128, 8, 2
	g := testGraph(t, n, d, 11)
	rng := xrand.New(12)
	byz, err := RandomPlacement(g, b, rng.Split("place"))
	if err != nil {
		t.Fatal(err)
	}
	params := counting.DefaultCongestParams(d)
	params.MaxPhase = 10
	outcomes, _ := runCongest(t, g, byz, params, func(v int) sim.Proc {
		return NewBeaconSpammer(params.Schedule, 6, false, rng.SplitN("spam", v))
	}, 13)

	honest := HonestMask(byz)
	if frac := counting.DecidedFraction(outcomes, honest); frac < 0.99 {
		t.Fatalf("decided fraction %g under spam", frac)
	}
	// Blacklisting confines the inflation to the spammers' vicinity: most
	// honest nodes still decide near the benign range (log_d 128 ≈ 2.3,
	// benign decisions land around phases 3-5 at this scale).
	bounded := counting.FractionWithinFactor(outcomes, honest, 2, 7)
	if bounded < 0.7 {
		t.Errorf("only %g of honest nodes bounded under spam with blacklists on", bounded)
	}
}

func TestCongestBeaconSpamAblationInflates(t *testing.T) {
	const n, d, b = 128, 8, 2
	g := testGraph(t, n, d, 14)
	rng := xrand.New(15)
	byz, err := RandomPlacement(g, b, rng.Split("place"))
	if err != nil {
		t.Fatal(err)
	}
	params := counting.DefaultCongestParams(d)
	params.MaxPhase = 8
	params.DisableBlacklist = true
	outcomes, _ := runCongest(t, g, byz, params, func(v int) sim.Proc {
		return NewBeaconSpammer(params.Schedule, 6, false, rng.SplitN("spam", v))
	}, 16)

	honest := HonestMask(byz)
	// Without blacklists the spam reaches everyone once i+2 covers the
	// diameter, so no node can ever conclude "no beacon": estimates are
	// dragged to the MaxPhase safety net.
	inflated := counting.FractionWithinFactor(outcomes, honest, float64(params.MaxPhase), 1e18)
	if inflated < 0.9 {
		t.Errorf("ablation: only %g of honest nodes inflated to MaxPhase; blacklist-off should break the bound", inflated)
	}
}

func TestCongestBlacklistVsAblationContrast(t *testing.T) {
	// The paired contrast of E7: identical runs except for the blacklist
	// switch must produce strictly larger mean estimates when disabled.
	const n, d, b = 128, 8, 2
	g := testGraph(t, n, d, 17)
	rng := xrand.New(18)
	byz, err := RandomPlacement(g, b, rng.Split("place"))
	if err != nil {
		t.Fatal(err)
	}
	mean := func(disable bool) float64 {
		params := counting.DefaultCongestParams(d)
		params.MaxPhase = 8
		params.DisableBlacklist = disable
		outcomes, _ := runCongest(t, g, byz, params, func(v int) sim.Proc {
			return NewBeaconSpammer(params.Schedule, 6, false, rng.SplitN("spam", v))
		}, 19)
		sum, cnt := 0.0, 0
		for v, o := range outcomes {
			if !byz[v] && o.Decided {
				sum += float64(o.Estimate)
				cnt++
			}
		}
		return sum / float64(cnt)
	}
	withBL := mean(false)
	withoutBL := mean(true)
	if withoutBL <= withBL+1 {
		t.Errorf("ablation contrast too weak: with=%g without=%g", withBL, withoutBL)
	}
}

func TestCongestSilentAdversary(t *testing.T) {
	const n, d, b = 128, 8, 8
	g := testGraph(t, n, d, 20)
	rng := xrand.New(21)
	byz, err := ClusteredPlacement(g, b, rng.Split("place"))
	if err != nil {
		t.Fatal(err)
	}
	params := counting.DefaultCongestParams(d)
	outcomes, _ := runCongest(t, g, byz, params, func(v int) sim.Proc {
		return Silent{}
	}, 22)
	honest := HonestMask(byz)
	if frac := counting.DecidedFraction(outcomes, honest); frac < 0.99 {
		t.Fatalf("decided fraction %g under silence", frac)
	}
	// Silence can only starve, never inflate: every estimate stays at or
	// below the benign ceiling.
	for v, o := range outcomes {
		if byz[v] {
			continue
		}
		if o.Estimate > 8 {
			t.Errorf("vertex %d inflated to %d under a silent adversary", v, o.Estimate)
		}
	}
}

func TestCongestPathTamperer(t *testing.T) {
	const n, d, b = 128, 8, 2
	g := testGraph(t, n, d, 23)
	rng := xrand.New(24)
	byz, err := RandomPlacement(g, b, rng.Split("place"))
	if err != nil {
		t.Fatal(err)
	}
	// Frame 16 random honest IDs.
	eng := sim.New(g, sim.WithSeed(25))
	var frame []sim.NodeID
	for v := 0; v < n && len(frame) < 16; v++ {
		if !byz[v] {
			frame = append(frame, eng.ID(v))
		}
	}
	params := counting.DefaultCongestParams(d)
	outcomes, _ := runCongest(t, g, byz, params, func(v int) sim.Proc {
		return NewPathTamperer(params.Schedule, frame, rng.SplitN("tamper", v))
	}, 25)
	honest := HonestMask(byz)
	if frac := counting.DecidedFraction(outcomes, honest); frac < 0.99 {
		t.Fatalf("decided fraction %g under tampering", frac)
	}
	// Framing can cause early decisions for some nodes but most stay in a
	// sane band.
	sane := counting.FractionWithinFactor(outcomes, honest, 2, 10)
	if sane < 0.8 {
		t.Errorf("only %g of honest nodes sane under tampering", sane)
	}
}

func TestCongestContinueFlooderDoesNotChangeEstimates(t *testing.T) {
	const n, d = 64, 8
	g := testGraph(t, n, d, 26)
	rng := xrand.New(27)
	byz, err := RandomPlacement(g, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	params := counting.DefaultCongestParams(d)
	params.MaxPhase = 8
	outcomes, _ := runCongest(t, g, byz, params, func(v int) sim.Proc {
		return ContinueFlooder{Schedule: params.Schedule}
	}, 28)
	honest := HonestMask(byz)
	if frac := counting.DecidedFraction(outcomes, honest); frac < 0.99 {
		t.Fatalf("decided fraction %g under continue flooding", frac)
	}
	sane := counting.FractionWithinFactor(outcomes, honest, 2, 8)
	if sane < 0.9 {
		t.Errorf("continue flooding changed estimates: sane fraction %g", sane)
	}
}
