package byzantine

import (
	"testing"

	"byzcount/internal/graph"
	"byzcount/internal/xrand"
)

func testGraph(t *testing.T, n, d int, seed uint64) *graph.Graph {
	t.Helper()
	g, err := graph.HND(n, d, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRandomPlacementCount(t *testing.T) {
	g := testGraph(t, 100, 4, 1)
	rng := xrand.New(2)
	for _, count := range []int{0, 1, 10, 100} {
		mask, err := RandomPlacement(g, count, rng)
		if err != nil {
			t.Fatal(err)
		}
		if Count(mask) != count {
			t.Errorf("count = %d, want %d", Count(mask), count)
		}
	}
	if _, err := RandomPlacement(g, 101, rng); err == nil {
		t.Error("overfull placement accepted")
	}
	if _, err := RandomPlacement(g, -1, rng); err == nil {
		t.Error("negative placement accepted")
	}
}

func TestClusteredPlacementIsBall(t *testing.T) {
	g := testGraph(t, 200, 4, 3)
	rng := xrand.New(4)
	mask, err := ClusteredPlacement(g, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	if Count(mask) != 20 {
		t.Fatalf("count = %d", Count(mask))
	}
	// The placed set must be connected-ish: max pairwise distance small
	// compared to random placement. Compute max distance among placed.
	var placed []int
	for v, b := range mask {
		if b {
			placed = append(placed, v)
		}
	}
	maxDist := 0
	d0 := g.BFS(placed[0])
	for _, v := range placed {
		if d0[v] > maxDist {
			maxDist = d0[v]
		}
	}
	// A BFS ball of 20 nodes in a degree-4 graph has radius <= 3, so two
	// placed vertices are at most 6 apart.
	if maxDist > 6 {
		t.Errorf("clustered placement spans distance %d", maxDist)
	}
}

func TestClusteredPlacementZero(t *testing.T) {
	g := testGraph(t, 50, 4, 5)
	mask, err := ClusteredPlacement(g, 0, xrand.New(6))
	if err != nil || Count(mask) != 0 {
		t.Fatalf("zero placement: %v %d", err, Count(mask))
	}
}

func TestSpreadPlacementMaximizesDistance(t *testing.T) {
	g := testGraph(t, 200, 4, 7)
	rng := xrand.New(8)
	spread, err := SpreadPlacement(g, 8, rng.Split("s"))
	if err != nil {
		t.Fatal(err)
	}
	clustered, err := ClusteredPlacement(g, 8, rng.Split("c"))
	if err != nil {
		t.Fatal(err)
	}
	minPair := func(mask []bool) int {
		var placed []int
		for v, b := range mask {
			if b {
				placed = append(placed, v)
			}
		}
		best := 1 << 30
		for _, v := range placed {
			dist := g.BFS(v)
			for _, w := range placed {
				if w != v && dist[w] < best {
					best = dist[w]
				}
			}
		}
		return best
	}
	if minPair(spread) <= minPair(clustered) {
		t.Errorf("spread min-pair distance %d should exceed clustered %d",
			minPair(spread), minPair(clustered))
	}
}

func TestFixedPlacement(t *testing.T) {
	g := testGraph(t, 50, 4, 9)
	p := FixedPlacement(3, 7, 11)
	mask, err := p(g, 3, xrand.New(10))
	if err != nil {
		t.Fatal(err)
	}
	if !mask[3] || !mask[7] || !mask[11] || Count(mask) != 3 {
		t.Errorf("mask wrong: %v", mask)
	}
	if _, err := p(g, 2, xrand.New(10)); err == nil {
		t.Error("count mismatch accepted")
	}
	if _, err := FixedPlacement(99)(graph.New(10), 1, xrand.New(1)); err == nil {
		t.Error("out-of-range vertex accepted")
	}
	if _, err := FixedPlacement(1, 1)(graph.New(10), 2, xrand.New(1)); err == nil {
		t.Error("duplicate vertex accepted")
	}
}

func TestHonestMask(t *testing.T) {
	byz := []bool{true, false, true}
	h := HonestMask(byz)
	if h[0] || !h[1] || h[2] {
		t.Errorf("HonestMask = %v", h)
	}
}
