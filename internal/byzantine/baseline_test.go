package byzantine

import (
	"testing"

	"byzcount/internal/counting"
	"byzcount/internal/sim"
	"byzcount/internal/xrand"
)

func TestGeoMaxFakerPoisonsFlood(t *testing.T) {
	const n, fake = 128, 1 << 18
	g := testGraph(t, n, 8, 70)
	eng := sim.New(g, sim.WithSeed(71))
	procs := make([]sim.Proc, n)
	for v := range procs {
		if v == 0 {
			procs[v] = &GeoMaxFaker{FakeValue: fake} // Period 0 -> every round
		} else {
			procs[v] = counting.NewGeometricProc(16)
		}
	}
	if err := eng.Attach(procs); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(2000); err != nil {
		t.Fatal(err)
	}
	honest := make([]bool, n)
	for v := 1; v < n; v++ {
		honest[v] = true
	}
	for _, e := range counting.DecidedEstimates(counting.Outcomes(procs), honest) {
		if e != fake {
			t.Fatalf("estimate %d, want the fake %d everywhere", e, fake)
		}
	}
}

func TestSupportMinFakerInflates(t *testing.T) {
	const n, k = 128, 16
	g := testGraph(t, n, 8, 72)
	eng := sim.New(g, sim.WithSeed(73))
	procs := make([]sim.Proc, n)
	for v := range procs {
		if v == 0 {
			procs[v] = &SupportMinFaker{K: k} // zero Value/Period exercise the defaults
		} else {
			procs[v] = counting.NewSupportProc(k, 16)
		}
	}
	if err := eng.Attach(procs); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(2000); err != nil {
		t.Fatal(err)
	}
	est := procs[1].(*counting.SupportProc).EstimateN()
	if est < float64(n)*1000 {
		t.Fatalf("support estimate %g not inflated", est)
	}
}

func TestTreeCountInflaterCorruptsTotal(t *testing.T) {
	const n, inflation = 100, 1 << 16
	g := testGraph(t, n, 4, 74)
	eng := sim.New(g, sim.WithSeed(75))
	procs := make([]sim.Proc, n)
	for v := range procs {
		switch v {
		case 5:
			procs[v] = &TreeCountInflater{Inflation: inflation}
		default:
			procs[v] = counting.NewTreeCountProc(v == 0)
		}
	}
	if err := eng.Attach(procs); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(20 * n); err != nil {
		t.Fatal(err)
	}
	root := procs[0].(*counting.TreeCountProc)
	o := root.Outcome()
	if !o.Decided {
		t.Fatal("root never decided")
	}
	if o.Estimate == n {
		t.Fatalf("total %d is exact despite the inflater", o.Estimate)
	}
	if o.Estimate < inflation/2 {
		t.Fatalf("total %d not visibly inflated", o.Estimate)
	}
}

func TestAttachKIdempotent(t *testing.T) {
	rng := xrand.New(76)
	w, err := NewFakeWorld(64, 4, 16, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	first := w.AttachK(sim.NodeID(1), 3)
	if len(first) != 3 {
		t.Fatalf("AttachK returned %d roots", len(first))
	}
	second := w.AttachK(sim.NodeID(1), 3)
	if len(second) != len(first) {
		t.Fatalf("idempotent AttachK returned %d roots, want %d", len(second), len(first))
	}
	asSet := func(xs []sim.NodeID) map[sim.NodeID]bool {
		m := map[sim.NodeID]bool{}
		for _, x := range xs {
			m[x] = true
		}
		return m
	}
	f, s := asSet(first), asSet(second)
	for x := range f {
		if !s[x] {
			t.Fatalf("idempotent AttachK changed the root set: %v vs %v", first, second)
		}
	}
	// Clamped k.
	if got := w.AttachK(sim.NodeID(2), 100); len(got) > 8 {
		t.Fatalf("AttachK exceeded the root count: %d", len(got))
	}
	if got := w.AttachK(sim.NodeID(3), 0); len(got) != 1 {
		t.Fatalf("AttachK(0) = %d roots, want clamp to 1", len(got))
	}
}

func TestBeaconSpammerEveryRound(t *testing.T) {
	sched := counting.Schedule{StartPhase: 2, Gamma: 0.5}
	sp := NewBeaconSpammer(sched, 3, true, xrand.New(77))
	env := (&sim.Env{Neighbors: []int{1}}).WithRand(xrand.New(78))
	sends := 0
	// Phase 2 iteration: offsets 0..8; beacon window sends at 0..3.
	for r := 0; r < 9; r++ {
		if out := sp.Step(env, r, nil); len(out) > 0 {
			sends++
			b := out[0].Payload.(counting.Beacon)
			if len(b.Path) != 3 {
				t.Fatalf("prefix length %d", len(b.Path))
			}
		}
	}
	if sends != 4 {
		t.Fatalf("EveryRound spammer sent %d times in one iteration, want 4", sends)
	}
	if sp.Halted() {
		t.Error("spammer halted")
	}
}
