package byzantine

import (
	"fmt"

	"byzcount/internal/xrand"
)

// Roster maintains a Byzantine placement as the membership of a mutable
// substrate turns over. A static placement decides the mask once; under
// churn the adversary's budget is a *fraction* of the live population,
// so the roster re-evaluates it at every arrival: the joiner-is-
// Byzantine decision is drawn from the scenario's dedicated split
// stream, which keeps whole churn+adversary runs pure functions of the
// root seed (the draw sequence depends only on the membership history,
// which is itself seed-determined).
//
// The drift-free rule: a joiner turns Byzantine with probability
// p = clamp(target*(alive+1) - byz, 0, 1), so the expected Byzantine
// count after the join is exactly target*(alive+1) and the realized
// fraction tracks the target within 1/alive however long the run turns
// members over (pinned by TestRosterMaintainsFraction).
type Roster struct {
	target float64
	rng    *xrand.Rand
	byz    []bool
	nByz   int
	nAlive int
}

// NewRoster builds a roster from an initial placement mask (one entry
// per substrate slot; dead slots must be false). target is the
// Byzantine fraction to maintain under turnover and rng the stream the
// joiner decisions consume.
func NewRoster(initial []bool, alive int, target float64, rng *xrand.Rand) (*Roster, error) {
	if target < 0 || target > 1 {
		return nil, fmt.Errorf("byzantine: roster target %v outside [0,1]", target)
	}
	if rng == nil {
		return nil, fmt.Errorf("byzantine: roster needs a random stream")
	}
	r := &Roster{
		target: target,
		rng:    rng,
		byz:    append([]bool(nil), initial...),
		nAlive: alive,
	}
	r.nByz = Count(initial)
	return r, nil
}

// IsByz reports whether slot v currently hosts a Byzantine node.
func (r *Roster) IsByz(v int) bool { return v >= 0 && v < len(r.byz) && r.byz[v] }

// Count returns the current number of Byzantine members.
func (r *Roster) Count() int { return r.nByz }

// Alive returns the current live population the roster tracks.
func (r *Roster) Alive() int { return r.nAlive }

// Fraction returns the realized Byzantine fraction (0 when empty).
func (r *Roster) Fraction() float64 {
	if r.nAlive == 0 {
		return 0
	}
	return float64(r.nByz) / float64(r.nAlive)
}

// Mask returns the roster's current per-slot Byzantine mask (roster-
// owned; do not mutate).
func (r *Roster) Mask() []bool { return r.byz }

// OnLeave records the departure of slot v's occupant.
func (r *Roster) OnLeave(v int) {
	if v < 0 || v >= len(r.byz) {
		return
	}
	if r.byz[v] {
		r.nByz--
		r.byz[v] = false
	}
	r.nAlive--
}

// Record registers an externally decided arrival at slot v without
// consuming the roster's stream — for scripted scenarios ("exactly the
// first joiner is Byzantine") where the decision is part of the spec,
// not the randomness.
func (r *Roster) Record(v int, isByz bool) {
	for v >= len(r.byz) {
		r.byz = append(r.byz, false)
	}
	r.byz[v] = isByz
	if isByz {
		r.nByz++
	}
	r.nAlive++
}

// OnJoin decides whether the node arriving at slot v is Byzantine,
// records the decision, and returns it. The decision consumes the
// roster's stream via the drift-free Bernoulli rule documented on
// Roster.
func (r *Roster) OnJoin(v int) bool {
	for v >= len(r.byz) {
		r.byz = append(r.byz, false)
	}
	p := r.target*float64(r.nAlive+1) - float64(r.nByz)
	isByz := r.rng.Bernoulli(p)
	r.byz[v] = isByz
	if isByz {
		r.nByz++
	}
	r.nAlive++
	return isByz
}
