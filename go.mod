module byzcount

go 1.24
