// Impossibility demo (Theorem 3): without vertex expansion, no algorithm
// can approximate the network size. Two expander "bells" are joined only
// through a single Byzantine bridge node. The left side's estimates are
// the same whether the right side has 128 nodes or 1024 — the honest
// nodes provably cannot tell what hides behind the bridge.
package main

import (
	"flag"
	"fmt"
	"log"

	"byzcount/internal/counting"
	"byzcount/internal/graph"
	"byzcount/internal/sim"
	"byzcount/internal/stats"
	"byzcount/internal/xrand"
)

func main() {
	nLeftFlag := flag.Int("n", 128, "left-bell size (the right bell is n and 8n)")
	flag.Parse()
	nLeft := *nLeftFlag
	const (
		d    = 8
		seed = 31
	)
	for _, nRight := range []int{nLeft, 8 * nLeft} {
		rng := xrand.New(seed) // same seed: identical left bell both times
		g, bridge, err := graph.Dumbbell(nLeft, nRight, d, rng.Split("graph"))
		if err != nil {
			log.Fatal(err)
		}
		h := g.EstimateVertexExpansion(8, rng.Split("sweep"))

		params := counting.DefaultCongestParams(d)
		params.MaxPhase = 12
		eng := sim.New(g, sim.WithSeed(rng.Split("eng").Uint64()))
		procs := make([]sim.Proc, g.N())
		for v := range procs {
			if v == bridge {
				procs[v] = silent{} // the Byzantine cut vertex
			} else {
				procs[v] = counting.NewCongestProc(params)
			}
		}
		if err := eng.Attach(procs); err != nil {
			log.Fatal(err)
		}
		eng.SetStopCondition(func(round int) bool {
			for v, p := range procs {
				if v == bridge {
					continue
				}
				if e, ok := p.(counting.Estimator); ok && !e.Outcome().Decided {
					return false
				}
			}
			return true
		})
		if _, err := eng.Run(params.Schedule.RoundsThroughPhase(params.MaxPhase + 1)); err != nil {
			log.Fatal(err)
		}

		left := stats.NewHistogram()
		right := stats.NewHistogram()
		for v, o := range counting.Outcomes(procs) {
			if v == bridge || !o.Decided {
				continue
			}
			if v < nLeft {
				left.Add(o.Estimate)
			} else {
				right.Add(o.Estimate)
			}
		}
		lm, _ := left.Mode()
		rm, _ := right.Mode()
		fmt.Printf("dumbbell %d–[bridge]–%d  (expansion h≈%.4f, true log2(n)=%.2f)\n",
			nLeft, nRight, h, counting.Log2(nLeft+nRight+1))
		fmt.Printf("  left-side estimates:  mode=%d  histogram=%s\n", lm, left)
		fmt.Printf("  right-side estimates: mode=%d  histogram=%s\n\n", rm, right)
	}
	fmt.Println("the left side's histogram does not change when the right side grows 8x:")
	fmt.Println("without expansion the bridge hides everything behind it (Theorem 3)")
}

// silent is the Byzantine bridge: it relays nothing in either direction.
type silent struct{}

func (silent) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing { return nil }
func (silent) Halted() bool                                                   { return false }
