// Quickstart: estimate log(n) on a random regular network whose size the
// nodes do not know, using the paper's randomized CONGEST algorithm
// (Algorithm 2), and compare with the true value.
package main

import (
	"flag"
	"fmt"
	"log"

	"byzcount/internal/counting"
	"byzcount/internal/graph"
	"byzcount/internal/sim"
	"byzcount/internal/stats"
	"byzcount/internal/xrand"
)

func main() {
	n := flag.Int("n", 1024, "network size (unknown to the nodes!)")
	flag.Parse()
	const (
		d    = 8 // H(n,d): union of d/2 random Hamiltonian cycles
		seed = 7
	)
	rng := xrand.New(seed)

	// 1. Build the network substrate.
	g, err := graph.HND(*n, d, rng.Split("graph"))
	if err != nil {
		log.Fatal(err)
	}

	// 2. Attach one counting process per node. Nodes know only their own
	//    degree, their random ID, and the protocol constants.
	params := counting.DefaultCongestParams(d)
	eng := sim.New(g, sim.WithSeed(rng.Split("engine").Uint64()))
	procs := make([]sim.Proc, *n)
	for v := range procs {
		procs[v] = counting.NewCongestProc(params)
	}
	if err := eng.Attach(procs); err != nil {
		log.Fatal(err)
	}

	// 3. Run to termination (benign network: all nodes halt on their own,
	//    Corollary 1).
	rounds, err := eng.Run(params.Schedule.RoundsThroughPhase(params.MaxPhase + 1))
	if err != nil {
		log.Fatal(err)
	}

	// 4. Report.
	outcomes := counting.Outcomes(procs)
	hist := stats.NewHistogram()
	for _, o := range outcomes {
		if o.Decided {
			hist.Add(o.Estimate)
		}
	}
	mode, count := hist.Mode()
	m := eng.Metrics()
	fmt.Printf("network: H(n=%d, d=%d)   (n unknown to the nodes)\n", *n, d)
	fmt.Printf("finished in %d rounds, %d messages, largest message %d bits\n",
		rounds, m.Messages, m.MaxMsgBits)
	fmt.Printf("estimate histogram: %s\n", hist)
	fmt.Printf("modal estimate: %d (held by %d/%d nodes)\n", mode, count, *n)
	fmt.Printf("truth: log_%d(n) = %.2f, log2(n) = %.2f\n", d, counting.LogD(*n, d), counting.Log2(*n))
	fmt.Println("the modal estimate is a constant-factor estimate of log n (Theorem 2)")
}
