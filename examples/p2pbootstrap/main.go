// P2P bootstrap: the Section 1.1 application pipeline. A peer-to-peer
// network of unknown size first runs Byzantine counting to obtain an
// estimate of log n, then uses that estimate to parameterize the
// sampling-plus-majority Byzantine agreement protocol of Augustine,
// Pandurangan & Robinson (PODC'13) — the protocol that otherwise assumes
// log n is known a priori.
package main

import (
	"flag"
	"fmt"
	"log"

	"byzcount/internal/agreement"
	"byzcount/internal/byzantine"
	"byzcount/internal/counting"
	"byzcount/internal/graph"
	"byzcount/internal/sim"
	"byzcount/internal/stats"
	"byzcount/internal/xrand"
)

func main() {
	nFlag := flag.Int("n", 512, "network size")
	flag.Parse()
	n := *nFlag
	const (
		d    = 8
		nByz = 4
		seed = 11
	)
	rng := xrand.New(seed)
	g, err := graph.HND(n, d, rng.Split("graph"))
	if err != nil {
		log.Fatal(err)
	}
	byz, err := byzantine.RandomPlacement(g, nByz, rng.Split("place"))
	if err != nil {
		log.Fatal(err)
	}
	honest := byzantine.HonestMask(byz)

	// Phase 1: Byzantine counting (Algorithm 2) under beacon spam.
	params := counting.DefaultCongestParams(d)
	params.MaxPhase = 12
	eng := sim.New(g, sim.WithSeed(rng.Split("eng1").Uint64()))
	procs := make([]sim.Proc, n)
	for v := range procs {
		if byz[v] {
			procs[v] = byzantine.NewBeaconSpammer(params.Schedule, 6, false, rng.SplitN("spam", v))
		} else {
			procs[v] = counting.NewCongestProc(params)
		}
	}
	if err := eng.Attach(procs); err != nil {
		log.Fatal(err)
	}
	eng.SetStopCondition(func(round int) bool {
		for v, p := range procs {
			if byz[v] {
				continue
			}
			if e, ok := p.(counting.Estimator); ok && !e.Outcome().Decided {
				return false
			}
		}
		return true
	})
	rounds, err := eng.Run(params.Schedule.RoundsThroughPhase(params.MaxPhase + 1))
	if err != nil {
		log.Fatal(err)
	}
	outcomes := counting.Outcomes(procs)
	hist := stats.NewHistogram()
	for _, e := range counting.DecidedEstimates(outcomes, honest) {
		hist.Add(e)
	}
	logEst, _ := hist.Mode()
	fmt.Printf("phase 1 (counting): %d rounds, modal log-estimate %d (truth log_%d n = %.2f)\n",
		rounds, logEst, d, counting.LogD(n, d))

	// Phase 2: agreement, parameterized by the counting estimate. Honest
	// nodes start with a 70/30 split; Byzantine nodes flip tokens.
	aParams := agreement.FromEstimate(logEst)
	eng2 := sim.New(g, sim.WithSeed(rng.Split("eng2").Uint64()))
	procs2 := make([]sim.Proc, n)
	for v := range procs2 {
		if byz[v] {
			procs2[v] = &agreement.ValueFlipper{Prefer: 0, Extra: 1}
			continue
		}
		var bit byte = 1
		if v%10 < 3 {
			bit = 0
		}
		procs2[v] = agreement.NewProc(aParams, bit)
	}
	if err := eng2.Attach(procs2); err != nil {
		log.Fatal(err)
	}
	if _, err := eng2.Run(aParams.TotalRounds() + 4); err != nil {
		log.Fatal(err)
	}
	success := agreement.AgreementFraction(procs2, honest, 1)
	fmt.Printf("phase 2 (agreement): walks of %d steps, %d iterations -> %.1f%% of honest nodes agree on the majority bit\n",
		aParams.WalkLen, aParams.Iterations, 100*success)
	fmt.Println("the counting estimate replaced the protocol's a-priori knowledge of log n (Section 1.1)")
}
