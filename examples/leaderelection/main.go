// Leader election: the second application named in Section 1. All known
// Byzantine leader-election protocols ([4,31,32]) assume an estimate of
// log n; this example derives that estimate with the counting protocol
// and then runs sampling-based election — self-nomination with
// probability c/n-hat and max-ID flooding for Θ(log n) rounds — and
// contrasts it with what happens when no estimate is available.
package main

import (
	"flag"
	"fmt"
	"log"

	"byzcount/internal/agreement"
	"byzcount/internal/counting"
	"byzcount/internal/graph"
	"byzcount/internal/sim"
	"byzcount/internal/stats"
	"byzcount/internal/xrand"
)

func main() {
	nFlag := flag.Int("n", 512, "network size")
	flag.Parse()
	n := *nFlag
	const (
		d    = 8
		seed = 17
	)
	rng := xrand.New(seed)
	g, err := graph.HND(n, d, rng.Split("graph"))
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: estimate log n (benign here; see p2pbootstrap for the
	// Byzantine pipeline).
	params := counting.DefaultCongestParams(d)
	eng := sim.New(g, sim.WithSeed(rng.Split("eng1").Uint64()))
	procs := make([]sim.Proc, n)
	for v := range procs {
		procs[v] = counting.NewCongestProc(params)
	}
	if err := eng.Attach(procs); err != nil {
		log.Fatal(err)
	}
	if _, err := eng.Run(params.Schedule.RoundsThroughPhase(params.MaxPhase + 1)); err != nil {
		log.Fatal(err)
	}
	hist := stats.NewHistogram()
	for _, o := range counting.Outcomes(procs) {
		if o.Decided {
			hist.Add(o.Estimate)
		}
	}
	logEst, _ := hist.Mode()
	fmt.Printf("phase 1 (counting): modal log-estimate %d (n-hat = %d^%d = %.0f, true n = %d)\n",
		logEst, d, logEst, pow(d, logEst), n)

	// Phase 2: election with the derived parameters.
	frac, leader := elect(g, rng.Split("elect"), agreement.LeaderFromEstimate(logEst, d))
	fmt.Printf("phase 2 (election):  %.1f%% of nodes elected leader %x\n", 100*frac, leader)

	// Contrast: no estimate — over-nomination and a too-short flood.
	badFrac, _ := elect(g, rng.Split("bad"), agreement.LeaderParams{NHat: 8, C: 4, FloodRounds: 1})
	fmt.Printf("without an estimate: %.1f%% agreement (over-nomination splinters the election)\n", 100*badFrac)
}

func elect(g *graph.Graph, rng *xrand.Rand, params agreement.LeaderParams) (float64, sim.NodeID) {
	eng := sim.New(g, sim.WithSeed(rng.Uint64()))
	procs := make([]sim.Proc, g.N())
	for v := range procs {
		procs[v] = agreement.NewLeaderProc(params)
	}
	if err := eng.Attach(procs); err != nil {
		log.Fatal(err)
	}
	if _, err := eng.Run(params.FloodRounds + 4); err != nil {
		log.Fatal(err)
	}
	return agreement.LeaderAgreement(procs, nil)
}

func pow(base, exp int) float64 {
	out := 1.0
	for i := 0; i < exp; i++ {
		out *= float64(base)
	}
	return out
}
