// Adversary lab: the same network, five adversaries. Shows (a) why the
// folklore geometric protocol is hopeless against a single Byzantine
// node, and (b) how Algorithm 2's blacklisting confines beacon spam,
// comparing benign / spam / spam-without-blacklists / silent runs.
package main

import (
	"flag"
	"fmt"
	"log"

	"byzcount/internal/byzantine"
	"byzcount/internal/counting"
	"byzcount/internal/graph"
	"byzcount/internal/sim"
	"byzcount/internal/stats"
	"byzcount/internal/xrand"
)

const (
	d    = 8
	seed = 23
)

var n = 256 // -n flag

func main() {
	flag.IntVar(&n, "n", n, "network size")
	flag.Parse()
	rng := xrand.New(seed)
	g, err := graph.HND(n, d, rng.Split("graph"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: H(n=%d, d=%d), truth log_%d(n)=%.2f log2(n)=%.2f\n\n",
		n, d, d, counting.LogD(n, d), counting.Log2(n))

	// The folklore baseline first: exact benignly, destroyed by ONE liar.
	geo(g, rng, 0)
	geo(g, rng, 1)
	fmt.Println()

	// The paper's CONGEST algorithm under increasingly hostile setups.
	congest(g, rng, "benign           ", 0, false, nil)
	congest(g, rng, "beacon spam      ", 12, false, nil)
	congest(g, rng, "spam, no blacklist", 12, true, nil)
	congest(g, rng, "silent cluster   ", 12, false, byzantine.ClusteredPlacement)
}

func geo(g *graph.Graph, rng *xrand.Rand, nByz int) {
	byz := make([]bool, g.N())
	if nByz > 0 {
		mask, err := byzantine.RandomPlacement(g, nByz, rng.Split("geoplace"))
		if err != nil {
			log.Fatal(err)
		}
		byz = mask
	}
	eng := sim.New(g, sim.WithSeed(rng.SplitN("geo", nByz).Uint64()))
	procs := make([]sim.Proc, g.N())
	for v := range procs {
		if byz[v] {
			procs[v] = &byzantine.GeoMaxFaker{FakeValue: 1 << 20, Period: 1}
		} else {
			procs[v] = counting.NewGeometricProc(16)
		}
	}
	if err := eng.Attach(procs); err != nil {
		log.Fatal(err)
	}
	if _, err := eng.Run(4000); err != nil {
		log.Fatal(err)
	}
	vals := counting.DecidedEstimates(counting.Outcomes(procs), byzantine.HonestMask(byz))
	fmt.Printf("geometric baseline, %d byzantine: median estimate %.0f (want ~log2 n = %.1f)\n",
		nByz, stats.Median(stats.Ints(vals)), counting.Log2(g.N()))
}

func congest(g *graph.Graph, rng *xrand.Rand, label string, nByz int,
	disableBL bool, place byzantine.Placement) {
	if place == nil {
		place = byzantine.RandomPlacement
	}
	byz := make([]bool, g.N())
	if nByz > 0 {
		mask, err := place(g, nByz, rng.Split("place"+label))
		if err != nil {
			log.Fatal(err)
		}
		byz = mask
	}
	params := counting.DefaultCongestParams(d)
	params.MaxPhase = 10
	params.DisableBlacklist = disableBL
	eng := sim.New(g, sim.WithSeed(rng.Split("eng"+label).Uint64()))
	procs := make([]sim.Proc, g.N())
	for v := range procs {
		if byz[v] {
			if label[:6] == "silent" {
				procs[v] = byzantine.Silent{}
			} else {
				procs[v] = byzantine.NewBeaconSpammer(params.Schedule, 6, false, rng.SplitN("spam"+label, v))
			}
		} else {
			procs[v] = counting.NewCongestProc(params)
		}
	}
	if err := eng.Attach(procs); err != nil {
		log.Fatal(err)
	}
	eng.SetStopCondition(func(round int) bool {
		for v, p := range procs {
			if byz[v] {
				continue
			}
			if e, ok := p.(counting.Estimator); ok && !e.Outcome().Decided {
				return false
			}
		}
		return true
	})
	rounds, err := eng.Run(params.Schedule.RoundsThroughPhase(params.MaxPhase + 1))
	if err != nil {
		log.Fatal(err)
	}
	honest := byzantine.HonestMask(byz)
	outcomes := counting.Outcomes(procs)
	hist := stats.NewHistogram()
	for _, e := range counting.DecidedEstimates(outcomes, honest) {
		hist.Add(e)
	}
	mode, _ := hist.Mode()
	fmt.Printf("congest | %s | byz=%2d rounds=%6d mode=%d within±1=%.2f histogram=%s\n",
		label, nByz, rounds, mode, hist.Fraction(mode-1, mode+1), hist)
}
