package main

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"byzcount/internal/sweep"
)

// sweepChildEnv marks a re-exec of the test binary as the sweep child:
// instead of running tests, TestMain runs `byzcount sweep -out $dir`
// with the shared grid flags, so the parent test can deliver a real
// SIGTERM to a real process mid-sweep.
const sweepChildEnv = "BYZCOUNT_SWEEP_CHILD_DIR"

func TestMain(m *testing.M) {
	if dir := os.Getenv(sweepChildEnv); dir != "" {
		if err := run(append(sweepGridArgs(true), "-progress", "-out", dir)); err != nil {
			fmt.Fprintln(os.Stderr, "child:", err)
			os.Exit(3)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// sweepGridArgs is the grid both the clean run and the interrupted
// child execute — identical flags are what makes the byte-identity
// comparison meaningful. The smoke grid (default) runs in well under a
// second; the SIGTERM test uses the heavy grid so that when the signal
// lands there is still most of a second of work left to interrupt.
func sweepGridArgs(heavy bool) []string {
	n := "48,64"
	if heavy {
		n = "512,768"
	}
	return []string{"sweep",
		"-proto", "congest", "-n", n, "-byz-frac", "0,0.1",
		"-adversary", "silent", "-stop-frac", "1",
		"-seed", "7", "-trials", "4", "-parallel", "2"}
}

func TestSweepCmdFlagValidation(t *testing.T) {
	if err := run([]string{"sweep"}); err == nil || !strings.Contains(err.Error(), "exactly one") {
		t.Errorf("no -out/-resume: %v", err)
	}
	if err := run([]string{"sweep", "-out", "a", "-resume", "b"}); err == nil || !strings.Contains(err.Error(), "exactly one") {
		t.Errorf("both -out and -resume: %v", err)
	}
}

func TestSweepCmdEndToEnd(t *testing.T) {
	dir := t.TempDir()
	if err := run(append(sweepGridArgs(false), "-out", dir)); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{sweep.ManifestName, sweep.LogName, sweep.CheckpointName, "table.txt", "summary.jsonl"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("sweep did not write %s: %v", name, err)
		}
	}
	man, err := sweep.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.Seed != 7 || man.Trials != 4 {
		t.Errorf("manifest seed/trials: %+v", man)
	}
	// A fresh sweep into the same directory must refuse.
	if err := run(append(sweepGridArgs(false), "-out", dir)); err == nil {
		t.Error("second -out into an existing sweep directory succeeded")
	}
	// A resume of a complete sweep replays everything and succeeds.
	if err := run([]string{"sweep", "-resume", dir}); err != nil {
		t.Errorf("no-op resume: %v", err)
	}
}

// TestSweepCmdSIGTERMResume is the end-to-end robustness test: a real
// child process is SIGTERMed mid-sweep, exits nonzero with a resumable
// directory, and the resumed run's table.txt is byte-identical to an
// uninterrupted run's.
func TestSweepCmdSIGTERMResume(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	cleanDir := t.TempDir()
	if err := run(append(sweepGridArgs(true), "-out", cleanDir)); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join(cleanDir, "table.txt"))
	if err != nil {
		t.Fatal(err)
	}

	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), sweepChildEnv+"="+dir)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Watch the child's -progress lines and SIGTERM it once a couple of
	// cells have landed in the log — early enough that most of the grid
	// is still ahead of it (cells take tens of milliseconds; signal
	// delivery is microseconds).
	signaled := false
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		var done, total int
		if _, err := fmt.Sscanf(sc.Text(), "sweep: %d/%d cells", &done, &total); err != nil {
			continue
		}
		if !signaled && done >= 2 {
			if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
				t.Fatal(err)
			}
			signaled = true
		}
	}
	err = cmd.Wait()
	if !signaled {
		// The grid finished before the signal landed — the interruption
		// path was not exercised; a larger grid would be needed. Don't
		// fail spuriously on a fast machine, but say so.
		t.Skipf("child completed before SIGTERM (err=%v); grid too small for this machine", err)
	}
	if err == nil {
		t.Fatal("SIGTERMed child exited zero")
	}
	// The directory must be resumable and the resumed table identical.
	if err := run([]string{"sweep", "-resume", dir}); err != nil {
		t.Fatalf("resume after SIGTERM: %v", err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "table.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("resumed table differs from uninterrupted run:\n--- resumed ---\n%s--- clean ---\n%s", got, want)
	}
	// The log replayed: the checkpoint must show a completed grid.
	ck, err := sweep.ReadCheckpoint(dir)
	if err != nil || ck == nil || ck.Interrupted || ck.Completed != ck.Total {
		t.Errorf("post-resume checkpoint: %+v err=%v", ck, err)
	}
}

func TestBenchDiffToleranceOverrideCmd(t *testing.T) {
	dir := t.TempDir()
	old := filepath.Join(dir, "old.json")
	cur := filepath.Join(dir, "new.json")
	write := func(path string, ns float64) {
		data := fmt.Sprintf(`{"schema":"byzcount-bench/v1","results":[{"name":"engine/x","ns_per_op":%g}]}`, ns)
		if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(old, 100)
	write(cur, 200)
	// 2x slowdown: fails the default 0.25 tolerance...
	if err := run([]string{"bench", "-diff", old, cur}); err == nil {
		t.Error("2x slowdown passed the default tolerance")
	}
	// ...passes with a loosening override...
	if err := run([]string{"bench", "-diff", "-tolerance-override", "engine/*=1.5", old, cur}); err != nil {
		t.Errorf("override did not loosen the gate: %v", err)
	}
	// ...and a malformed override fails flag parsing.
	if err := run([]string{"bench", "-diff", "-tolerance-override", "bogus", old, cur}); err == nil {
		t.Error("malformed override accepted")
	}
}
