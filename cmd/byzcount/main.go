// Command byzcount runs the Byzantine counting protocols and the
// reproduction experiments from the command line.
//
// Usage:
//
//	byzcount list
//	byzcount expt <id> [-seed N] [-trials N] [-quick]
//	byzcount all [-seed N] [-trials N] [-quick]
//	byzcount run [-proto congest|local|geometric|support] [-n N] [-d D]
//	             [-byz B] [-attack spam|silent|fake] [-seed N]
//	             [-churn K [-churn-stop R]]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"byzcount/internal/byzantine"
	"byzcount/internal/counting"
	"byzcount/internal/dynamic"
	"byzcount/internal/expt"
	"byzcount/internal/graph"
	"byzcount/internal/perf"
	"byzcount/internal/report"
	"byzcount/internal/sim"
	"byzcount/internal/stats"
	"byzcount/internal/xrand"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "byzcount:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "list":
		fmt.Println("experiments (see DESIGN.md for the claim each reproduces):")
		for _, id := range expt.IDs() {
			fmt.Println(" ", id)
		}
		return nil
	case "expt":
		return exptCmd(args[1:], false)
	case "all":
		return exptCmd(args[1:], true)
	case "run":
		return runCmd(args[1:])
	case "bench":
		return benchCmd(args[1:])
	case "graph":
		return graphCmd(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  byzcount list                         list experiment IDs
  byzcount expt <id> [flags]            run one experiment and print its table
  byzcount all [flags]                  run every experiment
  byzcount run [flags]                  run a single protocol instance
  byzcount bench [flags]                run the perf suite and write BENCH.json
  byzcount graph [flags]                generate a substrate and print its statistics
flags for expt/all: -seed N  -trials N  -quick  -parallel N
flags for run:      -proto congest|local|geometric|support  -n N  -d D
                    -byz B  -attack spam|silent|fake  -seed N  -parallel N
                    -churn K  -churn-stop R
(-parallel defaults to GOMAXPROCS; outputs are identical for every value)
(-churn K runs on the dynamically maintained H(n,d): K leaves + K joins
 between every pair of rounds, quiescing at round R; benign runs only)
flags for bench:    -quick  -out FILE  -filter SUBSTR  -parallel N
flags for graph:    -kind hnd|regular|smallworld|ring|torus|dumbbell  -n N  -d D
                    -seed N  -out FILE`)
}

func exptCmd(args []string, all bool) error {
	fs := flag.NewFlagSet("expt", flag.ContinueOnError)
	seed := fs.Uint64("seed", 42, "root random seed")
	trials := fs.Int("trials", 3, "trials per row")
	quick := fs.Bool("quick", false, "shrunken sweeps")
	format := fs.String("format", "table", "output format: table|csv")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0),
		"max concurrent (row, trial) cells; tables are identical for every value")
	var id string
	rest := args
	if !all {
		if len(args) == 0 {
			return fmt.Errorf("expt requires an experiment id")
		}
		id = args[0]
		rest = args[1:]
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	cfg := expt.Config{Seed: *seed, Trials: *trials, Quick: *quick, Parallel: *parallel}
	ids := []string{id}
	if all {
		ids = expt.IDs()
	}
	for _, x := range ids {
		tbl, err := expt.Run(x, cfg)
		if err != nil {
			return err
		}
		if *format == "csv" {
			fmt.Printf("# %s — %s\n%s\n", tbl.ID, tbl.Title, tbl.CSV())
		} else {
			fmt.Println(tbl.Render())
		}
	}
	return nil
}

// benchCmd runs the standard perf suite (engine micro-benchmarks plus
// the E1-E15 quick regenerations), prints one line per benchmark, and
// records the machine-readable trajectory in BENCH.json — the artifact
// CI archives on every run so performance changes leave a trace.
func benchCmd(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "shrunken iteration budget (CI smoke)")
	out := fs.String("out", "BENCH.json", "write the JSON record here (empty disables)")
	filter := fs.String("filter", "", "only run benchmarks whose name contains this substring")
	parallel := fs.Int("parallel", 8, "worker count for the parallel engine benchmark")
	if err := fs.Parse(args); err != nil {
		return err
	}
	suite := perf.Suite(perf.SuiteConfig{Quick: *quick, Parallel: *parallel, Filter: *filter})
	if len(suite) == 0 {
		return fmt.Errorf("no benchmarks match filter %q", *filter)
	}
	rec := perf.NewRecord(*quick)
	start := time.Now()
	fmt.Printf("%-40s %14s %12s %12s %14s %14s\n",
		"benchmark", "ns/op", "B/op", "allocs/op", "msgs/s", "rounds/s")
	for _, b := range suite {
		res, err := b.Measure()
		if err != nil {
			return err
		}
		fmt.Printf("%-40s %14.0f %12.0f %12.1f %14s %14s\n",
			res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp,
			rate(res.Metrics, "msgs_per_sec"), rate(res.Metrics, "rounds_per_sec"))
		rec.Results = append(rec.Results, res)
	}
	rec.WallSecs = time.Since(start).Seconds()
	fmt.Printf("done: %d benchmarks in %.1fs (git %s, GOMAXPROCS %d)\n",
		len(rec.Results), rec.WallSecs, rec.GitSHA, rec.GOMAXPROCS)
	if *out != "" {
		if err := rec.WriteFile(*out); err != nil {
			return err
		}
		fmt.Printf("record written to %s\n", *out)
	}
	return nil
}

// rate formats an optional metric for the bench table.
func rate(metrics map[string]float64, key string) string {
	v, ok := metrics[key]
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%.3g", v)
}

func graphCmd(args []string) error {
	fs := flag.NewFlagSet("graph", flag.ContinueOnError)
	kind := fs.String("kind", "hnd", "hnd|regular|smallworld|ring|torus|dumbbell")
	n := fs.Int("n", 256, "network size (per side for dumbbell)")
	d := fs.Int("d", 8, "degree parameter")
	seed := fs.Uint64("seed", 1, "random seed")
	out := fs.String("out", "", "write edge list to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := xrand.New(*seed)
	var g *graph.Graph
	var err error
	switch *kind {
	case "hnd":
		g, err = graph.HND(*n, *d, rng)
	case "regular":
		g, err = graph.SimpleRegular(*n, *d, 100, rng)
	case "smallworld":
		g, err = graph.WattsStrogatz(*n, max(*d/2, 1), 0.1, rng)
	case "ring":
		g, err = graph.Ring(*n)
	case "torus":
		side := 1
		for side*side < *n {
			side++
		}
		g, err = graph.Torus(side, side)
	case "dumbbell":
		g, _, err = graph.Dumbbell(*n, *n, *d, rng)
	default:
		return fmt.Errorf("unknown graph kind %q", *kind)
	}
	if err != nil {
		return err
	}
	fmt.Printf("kind=%s n=%d m=%d min_deg=%d max_deg=%d simple=%v connected=%v\n",
		*kind, g.N(), g.M(), g.MinDegree(), g.MaxDegree(), g.IsSimple(), g.IsConnected())
	if g.IsConnected() {
		if diam, err := g.ApproxDiameter(0); err == nil {
			fmt.Printf("approx_diameter=%d\n", diam)
		}
	}
	fmt.Printf("vertex_expansion_estimate=%.4f (BFS sweep upper bound)\n",
		g.EstimateVertexExpansion(8, rng.Split("sweep")))
	fmt.Printf("cheeger_spectral_lower_bound=%.4f\n",
		g.CheegerBoundSpectral(100, rng.Split("spectral")))
	r := graph.TreeLikeRadius(g.N(), *d)
	fmt.Printf("treelike_fraction(r=%d)=%.4f\n", r, g.TreeLikeFraction(r, *d))
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := g.WriteEdgeList(f); err != nil {
			return err
		}
		fmt.Printf("edge list written to %s\n", *out)
	}
	return nil
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	proto := fs.String("proto", "congest", "protocol: congest|local|geometric|support")
	n := fs.Int("n", 256, "network size")
	d := fs.Int("d", 8, "degree (even for H(n,d))")
	byzN := fs.Int("byz", 0, "number of Byzantine nodes")
	attack := fs.String("attack", "spam", "attack: spam|silent|fake")
	seed := fs.Uint64("seed", 1, "random seed")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0),
		"engine step-shard workers; runs are identical for every value")
	churn := fs.Int("churn", 0,
		"leaves and joins applied between every pair of rounds (0 = static network)")
	churnStop := fs.Int("churn-stop", 0,
		"disable churn from this round on (0 = churn for the whole run)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := xrand.New(*seed)
	if *churn > 0 {
		return runChurn(*proto, *n, *d, *byzN, *seed, *parallel, *churn, *churnStop, rng)
	}
	g, err := graph.HND(*n, *d, rng.Split("graph"))
	if err != nil {
		return err
	}
	var byz []bool
	if *byzN > 0 {
		byz, err = byzantine.RandomPlacement(g, *byzN, rng.Split("place"))
		if err != nil {
			return err
		}
	} else {
		byz = make([]bool, g.N())
	}

	eng := sim.NewEngine(g, rng.Split("engine").Uint64())
	eng.SetParallelism(*parallel)
	procs := make([]sim.Proc, g.N())

	congestParams, localParams, maxRounds, err := protoParams(*proto, *n, *d)
	if err != nil {
		return err
	}

	var world *byzantine.FakeWorld
	if *attack == "fake" {
		world, err = byzantine.NewFakeWorld(2*(*n), *d, *d+2, max(*byzN, 1), rng.Split("world"))
		if err != nil {
			return err
		}
	}
	for v := range procs {
		if byz[v] {
			switch *attack {
			case "silent":
				procs[v] = byzantine.Silent{}
			case "fake":
				procs[v] = byzantine.NewFakeNetworkLocal(world, 1)
			default: // spam
				switch *proto {
				case "congest":
					procs[v] = byzantine.NewBeaconSpammer(congestParams.Schedule, 6, false, rng.SplitN("spam", v))
				case "geometric":
					procs[v] = &byzantine.GeoMaxFaker{FakeValue: 1 << 20, Period: 1}
				case "support":
					procs[v] = &byzantine.SupportMinFaker{K: 32, Period: 4}
				default:
					procs[v] = byzantine.Silent{}
				}
			}
			continue
		}
		procs[v] = benignProc(*proto, congestParams, localParams)
	}
	if err := eng.Attach(procs); err != nil {
		return err
	}
	eng.SetStopCondition(func(round int) bool {
		for v, p := range procs {
			if byz[v] {
				continue
			}
			if e, ok := p.(counting.Estimator); ok && !e.Outcome().Decided {
				return false
			}
		}
		return true
	})
	rounds, err := eng.Run(maxRounds)
	if err != nil {
		return err
	}

	m := eng.Metrics()
	fmt.Printf("protocol=%s n=%d d=%d byz=%d attack=%s seed=%d\n",
		*proto, *n, *d, *byzN, *attack, *seed)
	fmt.Printf("rounds=%d messages=%d bits=%d max_msg_bits=%d\n",
		rounds, m.Messages, m.Bits, m.MaxMsgBits)
	printDecisions(counting.Outcomes(procs), byzantine.HonestMask(byz), *n, *d, m, "")
	return nil
}

// protoParams resolves a protocol's parameter set and round budget —
// shared by the static and churn run paths so tuning lives in one place.
func protoParams(proto string, n, d int) (counting.CongestParams, counting.LocalParams, int, error) {
	var congestParams counting.CongestParams
	var localParams counting.LocalParams
	var maxRounds int
	switch proto {
	case "congest":
		congestParams = counting.DefaultCongestParams(d)
		congestParams.MaxPhase = 12
		maxRounds = congestParams.Schedule.RoundsThroughPhase(congestParams.MaxPhase + 1)
	case "local":
		localParams = counting.DefaultLocalParams(d + 2)
		maxRounds = localParams.MaxRounds + 8
	case "geometric", "support":
		maxRounds = 50 * n
	default:
		return congestParams, localParams, 0, fmt.Errorf("unknown protocol %q", proto)
	}
	return congestParams, localParams, maxRounds, nil
}

// benignProc builds one honest process for the given protocol.
func benignProc(proto string, congestParams counting.CongestParams, localParams counting.LocalParams) sim.Proc {
	switch proto {
	case "local":
		return counting.NewLocalProc(localParams)
	case "geometric":
		return counting.NewGeometricProc(16)
	case "support":
		return counting.NewSupportProc(32, 16)
	default:
		return counting.NewCongestProc(congestParams)
	}
}

// printDecisions renders the decision metrics and traffic series shared
// by the static and churn run reports; note is appended to the
// decided_fraction line.
func printDecisions(outcomes []counting.Outcome, honest []bool, n, d int, m sim.Metrics, note string) {
	hist := stats.NewHistogram()
	for _, e := range counting.DecidedEstimates(outcomes, honest) {
		hist.Add(e)
	}
	fmt.Printf("decided_fraction=%.4f%s\n", counting.DecidedFraction(outcomes, honest), note)
	fmt.Printf("estimate histogram (value:count): %s\n", hist)
	fmt.Printf("reference: log2(n)=%.2f log_%d(n)=%.2f\n",
		counting.Log2(n), d, counting.LogD(n, d))
	if len(m.MessagesByRound) > 1 {
		series := report.Downsample(report.Ints(m.MessagesByRound), 100)
		fmt.Printf("traffic per round (downsampled): %s\n", report.Sparkline(series))
	}
}

// runChurn executes one benign protocol instance on the dynamically
// maintained H(n,d) topology under join/leave churn, on the unified
// engine (so -parallel applies to churn runs exactly as to static ones).
func runChurn(proto string, n, d, byzN int, seed uint64, parallel, churn, churnStop int, rng *xrand.Rand) error {
	if byzN > 0 {
		return fmt.Errorf("churn runs are benign-only for now; drop -byz or -churn")
	}
	net, err := dynamic.NewNetwork(n, d, rng.Split("net"))
	if err != nil {
		return err
	}
	congestParams, localParams, maxRounds, err := protoParams(proto, n, d)
	if err != nil {
		return err
	}
	factory := func(slot dynamic.Slot, id sim.NodeID) sim.Proc {
		return benignProc(proto, congestParams, localParams)
	}
	run, err := dynamic.NewRunner(net,
		dynamic.Churn{Leaves: churn, Joins: churn, StopAfter: churnStop, Mixed: true},
		rng.Split("engine").Uint64(), factory)
	if err != nil {
		return err
	}
	run.SetParallelism(parallel)
	rounds, err := run.Run(maxRounds)
	if err != nil {
		return err
	}
	if err := net.Validate(); err != nil {
		return fmt.Errorf("topology invariant broken after run: %w", err)
	}

	procs, _ := run.AliveProcs()
	m := run.Metrics()
	fmt.Printf("protocol=%s n=%d d=%d churn=%d/round churn_stop=%d seed=%d\n",
		proto, n, d, churn, churnStop, seed)
	fmt.Printf("rounds=%d joined=%d left=%d alive=%d\n",
		rounds, run.Joined(), run.Left(), net.NumAlive())
	fmt.Printf("messages=%d bits=%d max_msg_bits=%d\n", m.Messages, m.Bits, m.MaxMsgBits)
	printDecisions(counting.Outcomes(procs), byzantine.HonestMask(make([]bool, len(procs))),
		n, d, m, " (over nodes alive at the end)")
	return nil
}
