// Command byzcount runs the Byzantine counting protocols and the
// reproduction experiments from the command line.
//
// Usage:
//
//	byzcount list
//	byzcount expt <id> [-seed N] [-trials N] [-quick]
//	byzcount all [-seed N] [-trials N] [-quick]
//	byzcount run [-proto congest|local|geometric|support|kmv|walk|tree]
//	             [-n N] [-d D] [-byz B] [-attack spam|silent|fake|crash]
//	             [-placement random|clustered|spread] [-seed N]
//	             [-churn K [-churn-stop R]]
//	byzcount matrix [-proto P,P] [-substrate S,S] [-adversary A,A]
//	             [-placement P,P] [-n N,N] [-byz-frac F,F] [-churn K,K]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"byzcount/internal/counting"
	"byzcount/internal/expt"
	"byzcount/internal/graph"
	"byzcount/internal/perf"
	"byzcount/internal/report"
	"byzcount/internal/sim"
	"byzcount/internal/stats"
	"byzcount/internal/xrand"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "byzcount:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "list":
		fmt.Println("experiments (see DESIGN.md for the claim each reproduces):")
		for _, id := range expt.IDs() {
			fmt.Println(" ", id)
		}
		fmt.Println("scenario axes (byzcount matrix / run):")
		fmt.Println("  protocols: ", strings.Join(expt.ProtocolNames(), " "))
		fmt.Println("  substrates:", strings.Join(expt.SubstrateNames(), " "))
		fmt.Println("  adversaries:", strings.Join(expt.AdversaryNames(), " "))
		fmt.Println("  placements:", strings.Join(expt.PlacementNames(), " "))
		return nil
	case "expt":
		return exptCmd(args[1:], false)
	case "all":
		return exptCmd(args[1:], true)
	case "run":
		return runCmd(args[1:])
	case "matrix":
		return matrixCmd(args[1:])
	case "sweep":
		return sweepCmd(args[1:])
	case "bench":
		return benchCmd(args[1:])
	case "graph":
		return graphCmd(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  byzcount list                         list experiment IDs and scenario axes
  byzcount expt <id> [flags]            run one experiment and print its table
  byzcount all [flags]                  run every experiment
  byzcount run [flags]                  run a single scenario instance
  byzcount matrix [flags]               run a slice of the scenario grid
  byzcount sweep [flags]                durable matrix: crash-recoverable, resumable
  byzcount bench [flags]                run the perf suite and write BENCH.json
  byzcount graph [flags]                generate a substrate and print its statistics
flags for expt/all: -seed N  -trials N  -quick  -parallel N  -subcache=false
flags for run:      -proto congest|local|geometric|support|kmv|walk|tree  -n N  -d D
                    -substrate S (see list; implicit families scale to n=10^6)
                    -byz B  -attack spam|silent|fake|crash
                    -placement random|clustered|spread  -seed N  -parallel N
                    -max-phase P  -churn K  -churn-stop R (churn requires -substrate hnd)
                    -delay SPEC (unit|uniform:MIN-MAX|geo:P@CAP|region:G/NEAR/FAR|gst:R/SPEC)
                    -gst R (jitter before round R, synchronous after)
                    -drop P  -fault SPEC (drop:P|partition:G@FROM[-HEAL])
                    -tickskip=false (disable virtual-tick fast-forwarding)
(-parallel defaults to GOMAXPROCS; outputs are identical for every value)
(-churn K runs on the dynamically maintained H(n,d): K leaves + K joins
 between every pair of rounds, quiescing at round R; with -byz B the
 roster maintains the Byzantine fraction B/n as the membership churns)
(-delay/-fault run the virtual-time scheduler: per-message latency and
 fault verdicts are drawn from per-sender streams, so outputs stay
 identical for every -parallel value; omitting both keeps the
 synchronous engine)
(-tickskip is a run-only execution-shape knob, not a matrix axis:
 skipping empty virtual ticks leaves every table byte-identical, so a
 matrix over it would sweep indistinguishable cells; setting it
 explicitly errors unless the protocol is tick-driven under -delay/-fault)
flags for matrix:   comma-separated axis lists -proto -substrate -adversary
                    -placement -n -byz-frac -churn -delay -fault,
                    plus -churn-stop R  -d D
                    -max-phase P  -stop-frac F  -seed N  -trials N  -parallel N
                    -format table|csv  -subcache=false
flags for sweep:    the matrix grid flags, plus exactly one of
                    -out DIR (fresh sweep) | -resume DIR (continue one)
                    -retries N  -cell-timeout D  -progress
                    (SIGINT/SIGTERM drain in-flight cells and leave DIR
                     resumable; resumed tables are byte-identical to an
                     uninterrupted run; panicking cells are quarantined
                     with their sub-seed and the rest of the grid completes,
                     exit status nonzero)
flags for bench:    -quick  -out FILE  -filter SUBSTR  -parallel N
                    -scaling (n x workers sweep on the implicit lattice)
                    -require-clean (refuse a dirty-tree snapshot)
                    -diff [-tolerance F] OLD.json NEW.json (exit 1 past tolerance)
                    -tolerance-override name=F|prefix*=F (repeatable, for -diff)
flags for graph:    -kind hnd|regular|smallworld|ring|torus|dumbbell  -n N  -d D
                    -seed N  -out FILE`)
}

func exptCmd(args []string, all bool) error {
	fs := flag.NewFlagSet("expt", flag.ContinueOnError)
	seed := fs.Uint64("seed", 42, "root random seed")
	trials := fs.Int("trials", 3, "trials per row")
	quick := fs.Bool("quick", false, "shrunken sweeps")
	format := fs.String("format", "table", "output format: table|csv")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0),
		"max concurrent (row, trial) cells; tables are identical for every value")
	subcache := fs.Bool("subcache", true,
		"reuse identically drawn substrates across cells (tables are identical either way)")
	var id string
	rest := args
	if !all {
		if len(args) == 0 {
			return fmt.Errorf("expt requires an experiment id")
		}
		id = args[0]
		rest = args[1:]
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	expt.SetSubstrateCache(*subcache)
	cfg := expt.Config{Seed: *seed, Trials: *trials, Quick: *quick, Parallel: *parallel}
	ids := []string{id}
	if all {
		ids = expt.IDs()
	}
	for _, x := range ids {
		tbl, err := expt.Run(x, cfg)
		if err != nil {
			return err
		}
		if *format == "csv" {
			fmt.Printf("# %s — %s\n%s\n", tbl.ID, tbl.Title, tbl.CSV())
		} else {
			fmt.Println(tbl.Render())
		}
	}
	return nil
}

// benchCmd runs the standard perf suite (engine micro-benchmarks plus
// the E1-E18 quick regenerations), prints one line per benchmark, and
// records the machine-readable trajectory in BENCH.json — the artifact
// CI archives on every run so performance changes leave a trace.
func benchCmd(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "shrunken iteration budget (CI smoke)")
	out := fs.String("out", "BENCH.json", "write the JSON record here (empty disables)")
	filter := fs.String("filter", "", "only run benchmarks whose name contains this substring")
	parallel := fs.Int("parallel", 8, "worker count for the parallel engine benchmark")
	scaling := fs.Bool("scaling", false,
		"run the multi-core scaling sweep (implicit lattice, n x workers) instead of the standard suite")
	diff := fs.Bool("diff", false,
		"compare two records instead of benchmarking: bench -diff [-tolerance F] old.json new.json")
	tolerance := fs.Float64("tolerance", 0.25,
		"allowed relative ns/op slowdown per workload for -diff (0.25 = 1.25x)")
	overrides := map[string]float64{}
	fs.Func("tolerance-override",
		"per-workload -diff tolerance as name=tol or prefix*=tol (repeatable; exact beats prefix, longest prefix wins)",
		func(spec string) error { return perf.ParseOverride(overrides, spec) })
	requireClean := fs.Bool("require-clean", false,
		"refuse to snapshot from a dirty working tree (CI sets this: a dirty record's git_sha lies)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *diff {
		return benchDiff(fs.Args(), *tolerance, overrides)
	}
	suite := perf.Suite(perf.SuiteConfig{Quick: *quick, Parallel: *parallel, Filter: *filter})
	if *scaling {
		suite = perf.ScalingSuite(perf.ScalingConfig{Quick: *quick, Filter: *filter})
	}
	if len(suite) == 0 {
		return fmt.Errorf("no benchmarks match filter %q", *filter)
	}
	rec := perf.NewRecord(*quick)
	if rec.GitDirty {
		if *requireClean {
			return fmt.Errorf("working tree is dirty and -require-clean is set; commit or stash before snapshotting")
		}
		fmt.Fprintln(os.Stderr, "bench: WARNING: working tree is dirty — the record's git_sha does not identify"+
			" the measured code (git_dirty=true will be recorded)")
	}
	start := time.Now()
	fmt.Printf("%-40s %14s %12s %12s %14s %14s\n",
		"benchmark", "ns/op", "B/op", "allocs/op", "msgs/s", "rounds/s")
	for _, b := range suite {
		res, err := b.Measure()
		if err != nil {
			return err
		}
		fmt.Printf("%-40s %14.0f %12.0f %12.1f %14s %14s\n",
			res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp,
			rate(res.Metrics, "msgs_per_sec"), rate(res.Metrics, "rounds_per_sec"))
		rec.Results = append(rec.Results, res)
	}
	rec.WallSecs = time.Since(start).Seconds()
	fmt.Printf("done: %d benchmarks in %.1fs (git %s, GOMAXPROCS %d)\n",
		len(rec.Results), rec.WallSecs, rec.GitSHA, rec.GOMAXPROCS)
	if *out != "" {
		if err := rec.WriteFile(*out); err != nil {
			return err
		}
		fmt.Printf("record written to %s\n", *out)
	}
	return nil
}

// benchDiff compares two BENCH.json records and fails loudly when any
// common workload slowed past the tolerance — the enforcement half of
// the committed-snapshot trajectory.
func benchDiff(paths []string, tolerance float64, overrides map[string]float64) error {
	if len(paths) != 2 {
		return fmt.Errorf("bench -diff takes exactly two records: bench -diff old.json new.json")
	}
	rep, err := perf.DiffOverrides(paths[0], paths[1], tolerance, overrides)
	if err != nil {
		return err
	}
	fmt.Print(rep.Render())
	if regs := rep.Regressions(); len(regs) > 0 {
		return fmt.Errorf("%d workload(s) regressed past tolerance (worst: %s at %.2fx, tol %.0f%%)",
			len(regs), regs[0].Name, regs[0].Ratio, rep.ToleranceFor(regs[0].Name)*100)
	}
	fmt.Printf("no regressions past %.0f%% tolerance (%d common, %d added, %d removed)\n",
		tolerance*100, len(rep.Common), len(rep.Added), len(rep.Removed))
	return nil
}

// rate formats an optional metric for the bench table.
func rate(metrics map[string]float64, key string) string {
	v, ok := metrics[key]
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%.3g", v)
}

func graphCmd(args []string) error {
	fs := flag.NewFlagSet("graph", flag.ContinueOnError)
	kind := fs.String("kind", "hnd", "hnd|regular|smallworld|ring|torus|dumbbell")
	n := fs.Int("n", 256, "network size (per side for dumbbell)")
	d := fs.Int("d", 8, "degree parameter")
	seed := fs.Uint64("seed", 1, "random seed")
	out := fs.String("out", "", "write edge list to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := xrand.New(*seed)
	var g *graph.Graph
	var err error
	switch *kind {
	case "hnd":
		g, err = graph.HND(*n, *d, rng)
	case "regular":
		g, err = graph.SimpleRegular(*n, *d, 100, rng)
	case "smallworld":
		g, err = graph.WattsStrogatz(*n, max(*d/2, 1), 0.1, rng)
	case "ring":
		g, err = graph.Ring(*n)
	case "torus":
		side := 1
		for side*side < *n {
			side++
		}
		g, err = graph.Torus(side, side)
	case "dumbbell":
		g, _, err = graph.Dumbbell(*n, *n, *d, rng)
	default:
		return fmt.Errorf("unknown graph kind %q", *kind)
	}
	if err != nil {
		return err
	}
	fmt.Printf("kind=%s n=%d m=%d min_deg=%d max_deg=%d simple=%v connected=%v\n",
		*kind, g.N(), g.M(), g.MinDegree(), g.MaxDegree(), g.IsSimple(), g.IsConnected())
	if g.IsConnected() {
		if diam, err := g.ApproxDiameter(0); err == nil {
			fmt.Printf("approx_diameter=%d\n", diam)
		}
	}
	fmt.Printf("vertex_expansion_estimate=%.4f (BFS sweep upper bound)\n",
		g.EstimateVertexExpansion(8, rng.Split("sweep")))
	fmt.Printf("cheeger_spectral_lower_bound=%.4f\n",
		g.CheegerBoundSpectral(100, rng.Split("spectral")))
	r := graph.TreeLikeRadius(g.N(), *d)
	fmt.Printf("treelike_fraction(r=%d)=%.4f\n", r, g.TreeLikeFraction(r, *d))
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := g.WriteEdgeList(f); err != nil {
			return err
		}
		fmt.Printf("edge list written to %s\n", *out)
	}
	return nil
}

// attackAdversaries maps a CLI -attack value to the scenario-registry
// adversary for each protocol ("" = every protocol). The names here are
// the CLI's stable vocabulary; the registry holds the implementations.
var attackAdversaries = map[string]map[string]string{
	"spam": {
		"congest":   "spam",
		"geometric": "geo-max",
		"support":   "support-min",
		"kmv":       "kmv-poison",
		"tree":      "tree-inflate",
		"":          "silent", // protocols with no value-faking attack
	},
	"silent": {"": "silent"},
	"fake":   {"": "fake"},
	"crash":  {"": "crash"},
}

// attackNames returns the valid -attack values, sorted.
func attackNames() []string {
	out := make([]string, 0, len(attackAdversaries))
	for k := range attackAdversaries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// resolveAttack validates an -attack value and resolves it to the
// adversary axis name for the given protocol.
func resolveAttack(attack, proto string) (string, error) {
	byProto, ok := attackAdversaries[attack]
	if !ok {
		return "", fmt.Errorf("unknown attack %q (valid: %s)", attack, strings.Join(attackNames(), "|"))
	}
	if adv, ok := byProto[proto]; ok {
		return adv, nil
	}
	return byProto[""], nil
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	proto := fs.String("proto", "congest", "protocol: congest|local|geometric|support|kmv|walk|tree")
	substrate := fs.String("substrate", "hnd",
		"substrate family (see `byzcount list`; *-implicit and lattice families never materialize adjacency)")
	n := fs.Int("n", 256, "network size")
	d := fs.Int("d", 8, "degree (even for H(n,d))")
	byzN := fs.Int("byz", 0, "number of Byzantine nodes (a fraction byz/n is maintained under churn)")
	attack := fs.String("attack", "spam", "attack: spam|silent|fake|crash")
	placement := fs.String("placement", "random", "placement: random|clustered|spread")
	maxPhase := fs.Int("max-phase", 12,
		"congest phase cap; low values bound the round count at n=10^6 scale")
	seed := fs.Uint64("seed", 1, "random seed")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0),
		"engine step-shard workers; runs are identical for every value")
	churn := fs.Int("churn", 0,
		"leaves and joins applied between every pair of rounds (0 = static network)")
	churnStop := fs.Int("churn-stop", 0,
		"disable churn from this round on (0 = churn for the whole run)")
	delay := fs.String("delay", "",
		"delivery-latency model spec (unit|uniform:MIN-MAX|geo:P@CAP|region:G/NEAR/FAR|gst:R/SPEC); empty = synchronous engine")
	gst := fs.Int("gst", 0,
		"global stabilization round: jitter (-delay, default uniform:1-4) before round R, synchronous after")
	drop := fs.Float64("drop", 0, "iid per-message drop probability (shorthand for -fault drop:P)")
	fault := fs.String("fault", "",
		"message-fault model spec (drop:P|partition:G@FROM[-HEAL]); overrides -drop")
	tickSkip := fs.Bool("tickskip", true,
		"fast-forward empty virtual ticks (requires -delay/-fault and a tick-driven protocol; outputs are identical either way)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Only an explicitly typed -tickskip reaches the engine: the default
	// is already "on", and an explicit setting fail-fasts on runs that
	// structurally cannot consult it (see expt.RunOptions.TickSkip).
	var tickSkipOpt *bool
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "tickskip" {
			tickSkipOpt = tickSkip
		}
	})
	if *churnStop > 0 && *churn == 0 {
		return fmt.Errorf("-churn-stop %d without -churn K has no effect; pass -churn or drop -churn-stop", *churnStop)
	}
	delaySpec := *delay
	if *gst > 0 {
		inner := delaySpec
		if inner == "" {
			inner = "uniform:1-4"
		}
		delaySpec = fmt.Sprintf("gst:%d/%s", *gst, inner)
	}
	faultSpec := *fault
	if faultSpec == "" && *drop > 0 {
		faultSpec = fmt.Sprintf("drop:%g", *drop)
	}
	adversary, err := resolveAttack(*attack, *proto)
	if err != nil {
		return err
	}
	sc := expt.Scenario{
		Proto:     *proto,
		Substrate: *substrate,
		Adversary: adversary,
		Placement: *placement,
		N:         *n,
		D:         *d,
		Byz:       *byzN,
		MaxPhase:  *maxPhase,
		StopFrac:  1,
		Churn:     expt.ChurnProfile{Leaves: *churn, Joins: *churn, StopAfter: *churnStop, Mixed: true},
		Delay:     delaySpec,
		Fault:     faultSpec,
	}
	out, err := expt.RunScenario(sc, xrand.New(*seed), expt.RunOptions{Workers: *parallel, TickSkip: tickSkipOpt})
	if err != nil {
		return err
	}

	m := out.Metrics
	fmt.Printf("protocol=%s n=%d d=%d byz=%d attack=%s placement=%s seed=%d\n",
		*proto, *n, *d, *byzN, *attack, *placement, *seed)
	if out.Runner != nil {
		fmt.Printf("churn=%d/round churn_stop=%d rounds=%d joined=%d left=%d alive=%d byz_alive=%d\n",
			*churn, *churnStop, out.Rounds, out.Runner.Joined(), out.Runner.Left(),
			out.Net.NumAlive(), out.Roster.Count())
	} else {
		fmt.Printf("rounds=%d\n", out.Rounds)
	}
	if delaySpec != "" || faultSpec != "" {
		fmt.Printf("delay=%s fault=%s dropped=%d\n",
			orDash(delaySpec), orDash(faultSpec), m.Dropped)
	}
	fmt.Printf("messages=%d bits=%d max_msg_bits=%d\n", m.Messages, m.Bits, m.MaxMsgBits)
	note := ""
	if out.Runner != nil {
		note = " (over nodes alive at the end)"
	}
	printDecisions(out.Outcomes, out.Honest, *n, *d, m, note)
	return nil
}

// orDash renders an empty axis spec as "-" in the run report.
func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// splitList parses a comma-separated CLI list.
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// splitInts parses a comma-separated int list.
func splitInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q in list %q", p, s)
		}
		out = append(out, v)
	}
	return out, nil
}

// splitFloats parses a comma-separated float list.
func splitFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range splitList(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q in list %q", p, s)
		}
		out = append(out, v)
	}
	return out, nil
}

// matrixCmd enumerates a slice of the scenario grid — the cross-product
// of every comma-separated axis list — and runs it through the
// concurrent sweep driver.
// matrixFlags registers the shared grid flags (axes, shape, seed,
// trials, parallelism) on fs and returns a builder that assembles the
// Matrix and Config after fs.Parse. `byzcount matrix` and `byzcount
// sweep` accept the identical grid vocabulary — the sweep is the
// durable execution of the same cells.
func matrixFlags(fs *flag.FlagSet) func() (expt.Matrix, expt.Config, error) {
	protos := fs.String("proto", "congest", "comma-separated protocol axis")
	substrates := fs.String("substrate", "hnd", "comma-separated substrate axis")
	adversaries := fs.String("adversary", "none", "comma-separated adversary axis")
	placements := fs.String("placement", "random", "comma-separated placement axis")
	ns := fs.String("n", "256", "comma-separated network sizes")
	byzFracs := fs.String("byz-frac", "0", "comma-separated Byzantine fractions (0 = benign)")
	churns := fs.String("churn", "0", "comma-separated churn rates (leaves=joins per round)")
	churnStop := fs.Int("churn-stop", 150, "disable churn from this round on (0 = churn forever)")
	delays := fs.String("delay", "", "comma-separated delivery-latency model specs (empty = synchronous)")
	faults := fs.String("fault", "", "comma-separated message-fault model specs (empty = none)")
	d := fs.Int("d", 8, "degree parameter")
	maxPhase := fs.Int("max-phase", 8, "congest phase cap (bounds hostile cells)")
	stopFrac := fs.Float64("stop-frac", 0, "static cells: stop once this fraction of honest nodes decided")
	seed := fs.Uint64("seed", 42, "root random seed")
	trials := fs.Int("trials", 3, "trials per cell")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0),
		"max concurrent cells; tables are identical for every value")
	subcache := fs.Bool("subcache", true,
		"reuse identically drawn substrates across cells (tables are identical either way)")
	return func() (expt.Matrix, expt.Config, error) {
		expt.SetSubstrateCache(*subcache)
		nList, err := splitInts(*ns)
		if err != nil {
			return expt.Matrix{}, expt.Config{}, err
		}
		fracList, err := splitFloats(*byzFracs)
		if err != nil {
			return expt.Matrix{}, expt.Config{}, err
		}
		churnList, err := splitInts(*churns)
		if err != nil {
			return expt.Matrix{}, expt.Config{}, err
		}
		profiles := make([]expt.ChurnProfile, 0, len(churnList))
		for _, k := range churnList {
			profiles = append(profiles, expt.ChurnProfile{Leaves: k, Joins: k, StopAfter: *churnStop, Mixed: true})
		}
		m := expt.Matrix{
			Protos:      splitList(*protos),
			Substrates:  splitList(*substrates),
			Adversaries: splitList(*adversaries),
			Placements:  splitList(*placements),
			Ns:          nList,
			ByzFracs:    fracList,
			Churns:      profiles,
			Delays:      splitList(*delays),
			Faults:      splitList(*faults),
			D:           *d,
			MaxPhase:    *maxPhase,
			StopFrac:    *stopFrac,
		}
		return m, expt.Config{Seed: *seed, Trials: *trials, Parallel: *parallel}, nil
	}
}

func matrixCmd(args []string) error {
	fs := flag.NewFlagSet("matrix", flag.ContinueOnError)
	build := matrixFlags(fs)
	format := fs.String("format", "table", "output format: table|csv")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, cfg, err := build()
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	tbl, err := expt.RunMatrixCtx(ctx, cfg, m)
	if err != nil {
		return err
	}
	if *format == "csv" {
		fmt.Printf("# %s\n%s\n", tbl.Title, tbl.CSV())
	} else {
		fmt.Println(tbl.Render())
	}
	return nil
}

// sweepCmd is the durable matrix: the same grid as matrixCmd executed
// through the WAL-backed crash-recoverable driver. SIGINT/SIGTERM
// drain in-flight cells, flush the log, and leave a resumable
// directory; `-resume` picks an interrupted sweep back up and produces
// tables byte-identical to an uninterrupted run.
func sweepCmd(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	build := matrixFlags(fs)
	out := fs.String("out", "", "sweep directory to create (manifest + cell log + outputs)")
	resume := fs.String("resume", "", "resume the interrupted sweep in this directory (grid flags are ignored; the manifest wins)")
	retries := fs.Int("retries", 0, "retries per transiently failing cell before quarantine (0 = default 2, negative = none)")
	cellTimeout := fs.Duration("cell-timeout", 0, "per-cell attempt timeout; exceeded cells are quarantined (0 = none)")
	progress := fs.Bool("progress", false, "print a progress line after every completed cell")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*out == "") == (*resume == "") {
		return fmt.Errorf("sweep needs exactly one of -out DIR (fresh) or -resume DIR (continue)")
	}
	m, cfg, err := build()
	if err != nil {
		return err
	}
	sha, _ := perf.GitState()
	opts := expt.SweepOptions{
		Retries:     *retries,
		CellTimeout: *cellTimeout,
		GitSHA:      sha,
	}
	if *progress {
		opts.OnCell = func(done, total int) {
			fmt.Printf("sweep: %d/%d cells\n", done, total)
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	dir := *out
	var sum *expt.SweepSummary
	if *resume != "" {
		dir = *resume
		sum, err = expt.ResumeMatrixSweep(ctx, dir, cfg, opts)
	} else {
		sum, err = expt.RunMatrixSweep(ctx, cfg, m, dir, opts)
	}
	if sum != nil && sum.Interrupted {
		return fmt.Errorf("interrupted with %d/%d cells done; resume with: byzcount sweep -resume %s",
			sum.Completed+len(sum.Quarantined), sum.Total, dir)
	}
	if err != nil {
		return err
	}
	fmt.Println(sum.Table.Render())
	fmt.Printf("sweep complete: %d cells (%d replayed from log) -> %s\n", sum.Total, sum.Replayed, dir)
	if n := len(sum.Quarantined); n > 0 {
		for _, q := range sum.Quarantined {
			fmt.Fprintf(os.Stderr, "quarantined: %s trial %d (seed %d, %d attempts): %s\n",
				q.Row, q.Trial, q.Seed, q.Attempts, q.Err)
		}
		return fmt.Errorf("%d cell(s) quarantined; healthy cells completed (see %s/summary.jsonl)", n, dir)
	}
	return nil
}

// printDecisions renders the decision metrics and traffic series shared
// by the static and churn run reports; note is appended to the
// decided_fraction line.
func printDecisions(outcomes []counting.Outcome, honest []bool, n, d int, m sim.Metrics, note string) {
	hist := stats.NewHistogram()
	for _, e := range counting.DecidedEstimates(outcomes, honest) {
		hist.Add(e)
	}
	fmt.Printf("decided_fraction=%.4f%s\n", counting.DecidedFraction(outcomes, honest), note)
	fmt.Printf("estimate histogram (value:count): %s\n", hist)
	fmt.Printf("reference: log2(n)=%.2f log_%d(n)=%.2f\n",
		counting.Log2(n), d, counting.LogD(n, d))
	if len(m.MessagesByRound) > 1 {
		series := report.Downsample(report.Ints(m.MessagesByRound), 100)
		fmt.Printf("traffic per round (downsampled): %s\n", report.Sparkline(series))
	}
}
