package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"byzcount/internal/perf"
)

func TestRunNoArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing subcommand accepted")
	}
}

func TestRunUnknownSubcommand(t *testing.T) {
	if err := run([]string{"bogus"}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
}

func TestRunHelp(t *testing.T) {
	if err := run([]string{"help"}); err != nil {
		t.Fatalf("help failed: %v", err)
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Fatalf("list failed: %v", err)
	}
}

func TestExptRequiresID(t *testing.T) {
	if err := run([]string{"expt"}); err == nil {
		t.Fatal("expt without id accepted")
	}
}

func TestExptUnknownID(t *testing.T) {
	if err := run([]string{"expt", "E99", "-quick", "-trials", "1"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestExptQuick(t *testing.T) {
	if err := run([]string{"expt", "E8", "-quick", "-trials", "1"}); err != nil {
		t.Fatalf("expt E8 failed: %v", err)
	}
}

func TestExptCSVFormat(t *testing.T) {
	if err := run([]string{"expt", "E8", "-quick", "-trials", "1", "-format", "csv"}); err != nil {
		t.Fatalf("csv format failed: %v", err)
	}
}

func TestRunProtocolCongest(t *testing.T) {
	if err := run([]string{"run", "-proto", "congest", "-n", "64", "-d", "8", "-byz", "2"}); err != nil {
		t.Fatalf("run congest failed: %v", err)
	}
}

func TestRunProtocolLocalFakeAttack(t *testing.T) {
	if err := run([]string{"run", "-proto", "local", "-n", "64", "-d", "8", "-byz", "2", "-attack", "fake"}); err != nil {
		t.Fatalf("run local fake failed: %v", err)
	}
}

func TestRunProtocolGeometricSilent(t *testing.T) {
	if err := run([]string{"run", "-proto", "geometric", "-n", "64", "-byz", "1", "-attack", "silent"}); err != nil {
		t.Fatalf("run geometric failed: %v", err)
	}
}

func TestRunProtocolSupport(t *testing.T) {
	if err := run([]string{"run", "-proto", "support", "-n", "64", "-byz", "1"}); err != nil {
		t.Fatalf("run support failed: %v", err)
	}
}

func TestRunUnknownProtocol(t *testing.T) {
	if err := run([]string{"run", "-proto", "bogus"}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestRunUnknownAttackFailsFast(t *testing.T) {
	err := run([]string{"run", "-proto", "congest", "-n", "64", "-byz", "2", "-attack", "bogus"})
	if err == nil {
		t.Fatal("unknown attack accepted")
	}
	// The error must teach the valid vocabulary, not just reject.
	for _, want := range []string{"crash", "fake", "silent", "spam"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("attack error %q does not list %q", err, want)
		}
	}
}

func TestRunChurnStopWithoutChurnRejected(t *testing.T) {
	err := run([]string{"run", "-proto", "congest", "-n", "64", "-churn-stop", "50"})
	if err == nil {
		t.Fatal("-churn-stop without -churn accepted (it used to be silently ignored)")
	}
	if !strings.Contains(err.Error(), "-churn") {
		t.Errorf("error %q does not explain the missing flag", err)
	}
}

func TestRunUnknownPlacementFailsFast(t *testing.T) {
	err := run([]string{"run", "-proto", "congest", "-n", "64", "-byz", "2", "-placement", "bogus"})
	if err == nil {
		t.Fatal("unknown placement accepted")
	}
	if !strings.Contains(err.Error(), "clustered") {
		t.Errorf("placement error %q does not list the valid placements", err)
	}
}

// TestRunChurnWithByzantine: the cross-product the CLI used to reject
// ("churn runs are benign-only for now") runs end-to-end.
func TestRunChurnWithByzantine(t *testing.T) {
	if err := run([]string{"run", "-proto", "congest", "-n", "64", "-d", "8",
		"-byz", "3", "-attack", "spam", "-churn", "2", "-churn-stop", "30", "-seed", "5"}); err != nil {
		t.Fatalf("churn+byzantine run failed: %v", err)
	}
}

func TestRunChurnCrashAttack(t *testing.T) {
	if err := run([]string{"run", "-proto", "congest", "-n", "64", "-byz", "4",
		"-attack", "crash", "-churn", "1", "-churn-stop", "20", "-seed", "5"}); err != nil {
		t.Fatalf("churn+crash run failed: %v", err)
	}
}

func TestMatrixRuns(t *testing.T) {
	if err := run([]string{"matrix", "-proto", "congest", "-adversary", "none,spam",
		"-byz-frac", "0,0.05", "-churn", "0,2", "-n", "48", "-trials", "1", "-max-phase", "6"}); err != nil {
		t.Fatalf("matrix failed: %v", err)
	}
}

func TestMatrixUnknownAxisValue(t *testing.T) {
	if err := run([]string{"matrix", "-adversary", "bogus", "-n", "48", "-trials", "1"}); err == nil {
		t.Fatal("unknown adversary axis value accepted")
	}
	if err := run([]string{"matrix", "-n", "48,oops"}); err == nil {
		t.Fatal("malformed -n list accepted")
	}
}

func TestMatrixAllIncompatibleIsError(t *testing.T) {
	// spam needs congest: a grid slice with only incompatible cells must
	// say so instead of printing an empty table.
	if err := run([]string{"matrix", "-proto", "geometric", "-adversary", "spam",
		"-byz-frac", "0.05", "-n", "48", "-trials", "1"}); err == nil {
		t.Fatal("empty (all-skipped) matrix accepted")
	}
}

func TestBenchWritesRecord(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH.json")
	if err := run([]string{"bench", "-quick", "-filter", "engine/flood/serial", "-out", out}); err != nil {
		t.Fatalf("bench failed: %v", err)
	}
	rec, err := perf.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Results) != 1 || rec.Results[0].Name != "engine/flood/serial/n=1024" {
		t.Errorf("unexpected results: %+v", rec.Results)
	}
	if rec.Results[0].NsPerOp <= 0 || rec.Results[0].Metrics["msgs_per_sec"] <= 0 {
		t.Errorf("degenerate measurement: %+v", rec.Results[0])
	}
	if !rec.Quick {
		t.Error("quick flag not recorded")
	}
}

func TestBenchRejectsEmptyFilter(t *testing.T) {
	if err := run([]string{"bench", "-quick", "-filter", "no-such-benchmark"}); err == nil {
		t.Fatal("filter matching nothing accepted")
	}
}

func TestGraphCmdKinds(t *testing.T) {
	for _, kind := range []string{"hnd", "regular", "smallworld", "ring", "torus", "dumbbell"} {
		if err := run([]string{"graph", "-kind", kind, "-n", "64", "-d", "4"}); err != nil {
			t.Fatalf("graph %s failed: %v", kind, err)
		}
	}
	if err := run([]string{"graph", "-kind", "bogus"}); err == nil {
		t.Fatal("unknown graph kind accepted")
	}
}

func TestGraphCmdWritesEdgeList(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.edges")
	if err := run([]string{"graph", "-kind", "ring", "-n", "16", "-out", out}); err != nil {
		t.Fatalf("graph -out failed: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "n 16\n") {
		t.Errorf("edge list header wrong: %q", string(data[:16]))
	}
	if strings.Count(string(data), "\n") != 17 { // header + 16 edges
		t.Errorf("edge list line count wrong:\n%s", data)
	}
}
