// Package bench is the benchmark harness of the reproduction: one
// testing.B benchmark per experiment E1-E15 (each regenerates its table
// in quick mode; see DESIGN.md for the experiment index), plus
// micro-benchmarks for the substrates the experiments stand on.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package bench

import (
	"fmt"
	"testing"

	"byzcount/internal/counting"
	"byzcount/internal/expt"
	"byzcount/internal/graph"
	"byzcount/internal/sim"
	"byzcount/internal/xrand"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cfg := expt.Config{Seed: uint64(42 + i), Trials: 1, Quick: true}
		tbl, err := expt.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// The experiment benchmarks: each regenerates the corresponding table.

func BenchmarkE1(b *testing.B)  { benchExperiment(b, "E1") }  // Theorem 1 sweep
func BenchmarkE2(b *testing.B)  { benchExperiment(b, "E2") }  // Theorem 1 tolerance
func BenchmarkE3(b *testing.B)  { benchExperiment(b, "E3") }  // Theorem 2 sweep
func BenchmarkE4(b *testing.B)  { benchExperiment(b, "E4") }  // Remark 2 distribution
func BenchmarkE5(b *testing.B)  { benchExperiment(b, "E5") }  // Corollary 1 benign
func BenchmarkE6(b *testing.B)  { benchExperiment(b, "E6") }  // Section 1.2 baselines
func BenchmarkE7(b *testing.B)  { benchExperiment(b, "E7") }  // blacklist ablation
func BenchmarkE8(b *testing.B)  { benchExperiment(b, "E8") }  // Lemma 2 tree-like
func BenchmarkE9(b *testing.B)  { benchExperiment(b, "E9") }  // message sizes
func BenchmarkE10(b *testing.B) { benchExperiment(b, "E10") } // Theorem 3 dumbbell
func BenchmarkE11(b *testing.B) { benchExperiment(b, "E11") } // Section 1.1 application
func BenchmarkE12(b *testing.B) { benchExperiment(b, "E12") } // placement sensitivity
func BenchmarkE13(b *testing.B) { benchExperiment(b, "E13") } // crash-fault churn (extension)
func BenchmarkE14(b *testing.B) { benchExperiment(b, "E14") } // topology sensitivity (extension)
func BenchmarkE15(b *testing.B) { benchExperiment(b, "E15") } // join/leave churn (extension)

// Substrate micro-benchmarks.

func BenchmarkHNDGeneration(b *testing.B) {
	for _, n := range []int{1024, 8192} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := xrand.New(1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := graph.HND(n, 8, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBFS(b *testing.B) {
	rng := xrand.New(2)
	g, err := graph.HND(8192, 8, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BFS(i % g.N())
	}
}

func BenchmarkTreeLikeCheck(b *testing.B) {
	rng := xrand.New(3)
	g, err := graph.HND(4096, 8, rng)
	if err != nil {
		b.Fatal(err)
	}
	r := graph.TreeLikeRadius(4096, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.IsLocallyTreeLike(i%g.N(), r, 8)
	}
}

// floodBenchProc is a minimal engine-throughput workload: every node
// broadcasts a small payload every round.
type floodBenchProc struct{ rounds int }

type benchPayload struct{}

func (benchPayload) SizeBits() int { return 64 }

func (f *floodBenchProc) Step(env *sim.Env, round int, in []sim.Incoming) []sim.Outgoing {
	f.rounds++
	return env.Broadcast(benchPayload{})
}
func (f *floodBenchProc) Halted() bool { return false }

func BenchmarkEngineRoundThroughput(b *testing.B) {
	rng := xrand.New(4)
	g, err := graph.HND(1024, 8, rng)
	if err != nil {
		b.Fatal(err)
	}
	eng := sim.NewEngine(g, 5)
	procs := make([]sim.Proc, g.N())
	for v := range procs {
		procs[v] = &floodBenchProc{}
	}
	if err := eng.Attach(procs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := eng.Run(b.N); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	msgs := eng.Metrics().Messages
	if b.N > 0 {
		b.ReportMetric(float64(msgs)/float64(b.N), "msgs/round")
	}
}

func BenchmarkCongestBenignRun(b *testing.B) {
	rng := xrand.New(6)
	g, err := graph.HND(256, 8, rng)
	if err != nil {
		b.Fatal(err)
	}
	params := counting.DefaultCongestParams(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(g, uint64(i))
		procs := make([]sim.Proc, g.N())
		for v := range procs {
			procs[v] = counting.NewCongestProc(params)
		}
		if err := eng.Attach(procs); err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Run(params.Schedule.RoundsThroughPhase(params.MaxPhase + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocalBenignRun(b *testing.B) {
	rng := xrand.New(7)
	g, err := graph.HND(128, 8, rng)
	if err != nil {
		b.Fatal(err)
	}
	params := counting.DefaultLocalParams(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(g, uint64(i))
		procs := make([]sim.Proc, g.N())
		for v := range procs {
			procs[v] = counting.NewLocalProc(params)
		}
		if err := eng.Attach(procs); err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Run(params.MaxRounds + 8); err != nil {
			b.Fatal(err)
		}
	}
}
