// Package bench is the benchmark harness of the reproduction: one
// testing.B benchmark per experiment E1-E18 (each regenerates its table
// in quick mode; see DESIGN.md for the experiment index), plus
// micro-benchmarks for the substrates the experiments stand on.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package bench

import (
	"fmt"
	"runtime"
	"testing"

	"byzcount/internal/counting"
	"byzcount/internal/expt"
	"byzcount/internal/graph"
	"byzcount/internal/perf"
	"byzcount/internal/sim"
	"byzcount/internal/xrand"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	benchExperimentCfg(b, id, 1)
}

func benchExperimentCfg(b *testing.B, id string, parallel int) {
	b.Helper()
	// The seed is pinned: every iteration regenerates the identical
	// table, so ns/op measures one workload and is comparable across
	// runs and commits (a seed varying with i would average over
	// different graphs and adversary draws).
	for i := 0; i < b.N; i++ {
		cfg := expt.Config{Seed: 42, Trials: 1, Quick: true, Parallel: parallel}
		tbl, err := expt.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// The experiment benchmarks: each regenerates the corresponding table.

func BenchmarkE1(b *testing.B)  { benchExperiment(b, "E1") }  // Theorem 1 sweep
func BenchmarkE2(b *testing.B)  { benchExperiment(b, "E2") }  // Theorem 1 tolerance
func BenchmarkE3(b *testing.B)  { benchExperiment(b, "E3") }  // Theorem 2 sweep
func BenchmarkE4(b *testing.B)  { benchExperiment(b, "E4") }  // Remark 2 distribution
func BenchmarkE5(b *testing.B)  { benchExperiment(b, "E5") }  // Corollary 1 benign
func BenchmarkE6(b *testing.B)  { benchExperiment(b, "E6") }  // Section 1.2 baselines
func BenchmarkE7(b *testing.B)  { benchExperiment(b, "E7") }  // blacklist ablation
func BenchmarkE8(b *testing.B)  { benchExperiment(b, "E8") }  // Lemma 2 tree-like
func BenchmarkE9(b *testing.B)  { benchExperiment(b, "E9") }  // message sizes
func BenchmarkE10(b *testing.B) { benchExperiment(b, "E10") } // Theorem 3 dumbbell
func BenchmarkE11(b *testing.B) { benchExperiment(b, "E11") } // Section 1.1 application
func BenchmarkE12(b *testing.B) { benchExperiment(b, "E12") } // placement sensitivity
func BenchmarkE13(b *testing.B) { benchExperiment(b, "E13") } // crash-fault churn (extension)
func BenchmarkE14(b *testing.B) { benchExperiment(b, "E14") } // topology sensitivity (extension)
func BenchmarkE15(b *testing.B) { benchExperiment(b, "E15") } // join/leave churn (extension)
func BenchmarkE16(b *testing.B) { benchExperiment(b, "E16") } // spam + churn (extension)
func BenchmarkE17(b *testing.B) { benchExperiment(b, "E17") } // placement under churn (extension)
func BenchmarkE18(b *testing.B) { benchExperiment(b, "E18") } // byzantine joiner (extension)

// Driver-level parallel benchmarks: the same table regenerated through
// the sweep driver with all (row, trial) cells running concurrently.
// Tables are byte-identical to the serial variants; only wall-clock
// changes. Trials=3 gives the driver enough cells per row to spread.

func benchExperimentParallel(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cfg := expt.Config{Seed: 42, Trials: 3, Quick: true,
			Parallel: runtime.GOMAXPROCS(0)}
		if _, err := expt.Run(id, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func benchExperimentSerial3(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cfg := expt.Config{Seed: 42, Trials: 3, Quick: true, Parallel: 1}
		if _, err := expt.Run(id, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1DriverSerial(b *testing.B)   { benchExperimentSerial3(b, "E1") }
func BenchmarkE1DriverParallel(b *testing.B) { benchExperimentParallel(b, "E1") }
func BenchmarkE3DriverSerial(b *testing.B)   { benchExperimentSerial3(b, "E3") }
func BenchmarkE3DriverParallel(b *testing.B) { benchExperimentParallel(b, "E3") }
func BenchmarkE9DriverSerial(b *testing.B)   { benchExperimentSerial3(b, "E9") }
func BenchmarkE9DriverParallel(b *testing.B) { benchExperimentParallel(b, "E9") }

// Substrate micro-benchmarks.

func BenchmarkHNDGeneration(b *testing.B) {
	for _, n := range []int{1024, 8192} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := xrand.New(1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := graph.HND(n, 8, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWattsStrogatzGeneration times the small-world generator. The
// seed (map-dedup) implementation measured 3.68 ms/op with 13651
// allocs/op at n=4096 on the 1-core CI-class box; the sorted-adjacency
// binary-search rewrite measured 1.27 ms/op with 4223 allocs/op on the
// same box (see CHANGES.md for the full before/after table).
func BenchmarkWattsStrogatzGeneration(b *testing.B) {
	rng := xrand.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := graph.WattsStrogatz(4096, 4, 0.2, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimpleRegularGeneration times the Steger-Wormald generator
// (per-vertex sorted slab vs the seed's n hash maps per attempt).
func BenchmarkSimpleRegularGeneration(b *testing.B) {
	rng := xrand.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := graph.SimpleRegular(1024, 8, 100, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGraphFinalize times the two-pass CSR finalize + sorted-dedup
// view in isolation (rebuilt from the edge log each iteration via Clone).
func BenchmarkGraphFinalize(b *testing.B) {
	g, err := graph.HND(4096, 8, xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := g.Clone()
		c.Adj(0)
		c.SortedAdj(0)
	}
}

// BenchmarkAppendBall times the zero-alloc ball accessor the placement
// machinery and expansion sweeps lean on.
func BenchmarkAppendBall(b *testing.B) {
	g, err := graph.HND(4096, 8, xrand.New(2))
	if err != nil {
		b.Fatal(err)
	}
	var buf []int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.AppendBall(buf[:0], i%g.N(), 3)
	}
}

func BenchmarkBFS(b *testing.B) {
	rng := xrand.New(2)
	g, err := graph.HND(8192, 8, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BFS(i % g.N())
	}
}

func BenchmarkTreeLikeCheck(b *testing.B) {
	rng := xrand.New(3)
	g, err := graph.HND(4096, 8, rng)
	if err != nil {
		b.Fatal(err)
	}
	r := graph.TreeLikeRadius(4096, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.IsLocallyTreeLike(i%g.N(), r, 8)
	}
}

// roundRunner is the surface shared by *sim.Engine and *dynamic.Runner
// that the round-throughput benchmarks drive.
type roundRunner interface {
	Run(maxRounds int) (int, error)
	Metrics() sim.Metrics
}

// benchRoundThroughput measures steady-state round throughput on eng.
// The warm-up run grows every scratch buffer and inbox slab to its
// high-water mark before the timer starts, so allocs/op reports the
// steady state: 0.
func benchRoundThroughput(b *testing.B, eng roundRunner) {
	b.Helper()
	if _, err := eng.Run(64); err != nil {
		b.Fatal(err)
	}
	msgsBefore := eng.Metrics().Messages
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := eng.Run(b.N); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	msgs := eng.Metrics().Messages - msgsBefore
	if b.N > 0 {
		b.ReportMetric(float64(msgs)/float64(b.N), "msgs/round")
		elapsed := b.Elapsed().Seconds()
		if elapsed > 0 {
			b.ReportMetric(float64(msgs)/elapsed/1e6, "Mmsgs/sec")
		}
	}
}

// benchEngineRoundThroughput times the shared flood workload
// (perf.NewFloodEngine — the same workload the BENCH.json trajectory
// records as engine/flood/*).
func benchEngineRoundThroughput(b *testing.B, workers int) {
	eng, err := perf.NewFloodEngine(1024, 8, workers)
	if err != nil {
		b.Fatal(err)
	}
	benchRoundThroughput(b, eng)
}

func BenchmarkEngineRoundThroughput(b *testing.B) {
	benchEngineRoundThroughput(b, 1)
}

// BenchmarkEngineRoundThroughputParallel shards Step calls across
// GOMAXPROCS workers. The execution (and the msgs/round metric) is
// bit-identical to the serial benchmark; Mmsgs/sec measures the
// speedup. On a single-core runner this degenerates to the serial
// engine plus goroutine overhead — compare the two only on multi-core.
func BenchmarkEngineRoundThroughputParallel(b *testing.B) {
	benchEngineRoundThroughput(b, runtime.GOMAXPROCS(0))
}

// BenchmarkEngineRoundThroughputParallel8 pins 8 workers regardless of
// GOMAXPROCS, so shard/merge overhead is measurable even on small
// machines.
func BenchmarkEngineRoundThroughputParallel8(b *testing.B) {
	benchEngineRoundThroughput(b, 8)
}

// benchVTFloodThroughput times the flood workload on the virtual-time
// scheduler (perf.NewVTFloodEngine — BENCH.json's engine/vt-flood/*):
// every message takes a per-edge latency draw and rides the calendar
// ring to its delivery round. "unit" is the degenerate synchronous
// configuration (the price of the event queue alone, bit-identical
// transcripts to the legacy path); "uniform:1-4" spreads each round's
// sends over a four-round window, the real reordering case. Allocs/op
// reports the steady state: 0, pinned by TestSteadyStateAllocsVT*.
func benchVTFloodThroughput(b *testing.B, workers int, delaySpec string) {
	eng, err := perf.NewVTFloodEngine(1024, 8, workers, delaySpec)
	if err != nil {
		b.Fatal(err)
	}
	benchRoundThroughput(b, eng)
}

func BenchmarkEngineVTUnitRoundThroughput(b *testing.B) {
	benchVTFloodThroughput(b, 1, "unit")
}

func BenchmarkEngineVTJitterRoundThroughput(b *testing.B) {
	benchVTFloodThroughput(b, 1, "uniform:1-4")
}

// BenchmarkEngineVTJitterRoundThroughputParallel8: jittered delivery on
// the sharded engine — workers bucket (destination shard, ring slot)
// pairs locally and the coordinator merges them in sender order, so the
// execution is bit-identical to the serial run.
func BenchmarkEngineVTJitterRoundThroughputParallel8(b *testing.B) {
	benchVTFloodThroughput(b, 8, "uniform:1-4")
}

// BenchmarkEngineVTSparseRoundThroughput times the pulse/relay workload
// (perf.NewVTSparseEngine — BENCH.json's engine/vt-flood/sparse/*):
// vertex 0 pulses a TTL-limited broadcast every 8 rounds, message-driven
// relays propagate it under uniform:1-4 jitter, and the engine's
// occupancy lane delivers and clears only the ring rows that received
// something. The Parallel8 variant runs the same lane on the sharded
// engine — per-shard union walks, occupancy folded in during merge —
// and the Full variant runs the identical workload with unmarked
// relays — every tick pays the O(n)-row scan — so the trio isolates the
// sparse lane's win and its multi-core behavior.
func BenchmarkEngineVTSparseRoundThroughput(b *testing.B) {
	eng, err := perf.NewVTSparseEngine(1024, 8, 1, false)
	if err != nil {
		b.Fatal(err)
	}
	benchRoundThroughput(b, eng)
}

func BenchmarkEngineVTSparseRoundThroughputParallel8(b *testing.B) {
	eng, err := perf.NewVTSparseEngine(1024, 8, 8, false)
	if err != nil {
		b.Fatal(err)
	}
	benchRoundThroughput(b, eng)
}

func BenchmarkEngineVTSparseRoundThroughputFull(b *testing.B) {
	eng, err := perf.NewVTSparseEngine(1024, 8, 1, true)
	if err != nil {
		b.Fatal(err)
	}
	benchRoundThroughput(b, eng)
}

// benchVTSkipThroughput times the token workload (perf.NewVTSkipEngine
// — BENCH.json's engine/vt-skip/*): one token circulating a ring
// lattice under uniform:1-4 jitter, so most virtual ticks deliver
// nothing. With skipping on, the scheduler fast-forwards through empty
// ticks in O(1) each (an O(shards) reduction on the parallel engine,
// which bypasses the pool entirely on a skipped tick); with skipping
// off (or with unmarked relays, the Full variant) every tick executes.
// One iteration is one virtual tick either way — skipped ticks still
// advance the clock and the metrics.
func benchVTSkipThroughput(b *testing.B, workers int, dense, skip bool) {
	eng, err := perf.NewVTSkipEngine(1024, workers, dense)
	if err != nil {
		b.Fatal(err)
	}
	eng.SetTickSkip(skip)
	benchRoundThroughput(b, eng)
}

func BenchmarkEngineVTSkipRoundThroughput(b *testing.B) {
	benchVTSkipThroughput(b, 1, false, true)
}

func BenchmarkEngineVTSkipRoundThroughputParallel8(b *testing.B) {
	benchVTSkipThroughput(b, 8, false, true)
}

func BenchmarkEngineVTSkipRoundThroughputNoSkip(b *testing.B) {
	benchVTSkipThroughput(b, 1, false, false)
}

func BenchmarkEngineVTSkipRoundThroughputFull(b *testing.B) {
	benchVTSkipThroughput(b, 1, true, true)
}

// benchEngineChurnThroughput times the churn flood workload
// (perf.NewChurnFloodEngine — the same workload BENCH.json records as
// engine/churn-flood/*): every round two nodes leave, two join, the
// cycles repair locally, and the touched vertices re-resolve their
// neighborhoods against the bumped topology epoch. Allocs/op reports
// the steady state: 0, exactly like the static flood.
func benchEngineChurnThroughput(b *testing.B, workers int) {
	run, err := perf.NewChurnFloodEngine(1024, 8, workers, 2)
	if err != nil {
		b.Fatal(err)
	}
	benchRoundThroughput(b, run)
}

func BenchmarkEngineChurnRoundThroughput(b *testing.B) {
	benchEngineChurnThroughput(b, 1)
}

// BenchmarkEngineChurnRoundThroughputParallel8: the churn flood on the
// sharded engine (bit-identical execution; membership changes apply
// between rounds on the coordinator).
func BenchmarkEngineChurnRoundThroughputParallel8(b *testing.B) {
	benchEngineChurnThroughput(b, 8)
}

// benchEngineChurnByzThroughput times the combined churn + adversary
// workload (perf.NewChurnByzEngine — BENCH.json's engine/churn-byz/*):
// two leaves and two joins per round while a roster keeps 1/16 of the
// membership Byzantine, honest slots flooding and Byzantine slots
// spamming beacon-sized payloads. Allocs/op reports the steady state: 0.
func benchEngineChurnByzThroughput(b *testing.B, workers int) {
	run, err := perf.NewChurnByzEngine(1024, 8, workers, 2)
	if err != nil {
		b.Fatal(err)
	}
	benchRoundThroughput(b, run)
}

func BenchmarkEngineChurnByzRoundThroughput(b *testing.B) {
	benchEngineChurnByzThroughput(b, 1)
}

func BenchmarkEngineChurnByzRoundThroughputParallel8(b *testing.B) {
	benchEngineChurnByzThroughput(b, 8)
}

// benchLatticeRoundThroughput times the flood on an implicit C_n^4
// ring lattice (perf.NewLatticeFloodEngine — the scaling lane's cell
// workload, BENCH.json's scaling/flood/*): neighborhoods come from
// closed-form arithmetic resolved lazily into degree-hinted slabs, so
// this measures the engine's round loop without any materialized
// adjacency behind it. Allocs/op reports the steady state: 0.
func benchLatticeRoundThroughput(b *testing.B, workers int) {
	eng, err := perf.NewLatticeFloodEngine(4096, 4, workers)
	if err != nil {
		b.Fatal(err)
	}
	benchRoundThroughput(b, eng)
}

func BenchmarkLatticeRoundThroughput(b *testing.B) {
	benchLatticeRoundThroughput(b, 1)
}

func BenchmarkLatticeRoundThroughputParallel8(b *testing.B) {
	benchLatticeRoundThroughput(b, 8)
}

// BenchmarkImplicitEngineConstruction times standing up a topology
// engine over an implicit lattice — the path the million-vertex lane
// takes. The budget is three degree-hinted slab carves plus the slot
// arrays; compare against BenchmarkGraphFinalize for the materialized
// counterpart's cost.
func BenchmarkImplicitEngineConstruction(b *testing.B) {
	lat, err := graph.NewRingLattice(4096, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.New(lat, sim.WithSeed(7))
	}
}

func BenchmarkCongestBenignRun(b *testing.B) {
	rng := xrand.New(6)
	g, err := graph.HND(256, 8, rng)
	if err != nil {
		b.Fatal(err)
	}
	params := counting.DefaultCongestParams(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := sim.New(g, sim.WithSeed(uint64(i)))
		procs := make([]sim.Proc, g.N())
		for v := range procs {
			procs[v] = counting.NewCongestProc(params)
		}
		if err := eng.Attach(procs); err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Run(params.Schedule.RoundsThroughPhase(params.MaxPhase + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocalBenignRun(b *testing.B) {
	rng := xrand.New(7)
	g, err := graph.HND(128, 8, rng)
	if err != nil {
		b.Fatal(err)
	}
	params := counting.DefaultLocalParams(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := sim.New(g, sim.WithSeed(uint64(i)))
		procs := make([]sim.Proc, g.N())
		for v := range procs {
			procs[v] = counting.NewLocalProc(params)
		}
		if err := eng.Attach(procs); err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Run(params.MaxRounds + 8); err != nil {
			b.Fatal(err)
		}
	}
}
